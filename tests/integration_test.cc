// End-to-end tests across the full pipeline the paper's applications
// use: simulate sequences -> search parsimonious trees -> build
// consensus trees -> score them with cousin-pair similarity; and the
// kernel-tree pipeline over overlapping groups.

#include <gtest/gtest.h>

#include <map>

#include "core/multi_tree_mining.h"
#include "core/naive_mining.h"
#include "tree/newick.h"
#include "gen/yule_generator.h"
#include "phylo/consensus.h"
#include "phylo/kernel_trees.h"
#include "phylo/similarity.h"
#include "seq/jukes_cantor.h"
#include "seq/parsimony_search.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(IntegrationTest, ConsensusQualityPipeline) {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(101);
  Tree truth = RandomCoalescentTree(MakeTaxa(12), rng, labels, 0.08);
  SimulateOptions sim;
  sim.num_sites = 60;  // low signal => many near-ties
  Alignment alignment = SimulateAlignment(truth, sim, rng);

  ParsimonySearchOptions search;
  search.max_trees = 10;
  search.num_restarts = 2;
  std::vector<ScoredTree> scored =
      SearchParsimoniousTrees(alignment, search, labels);
  ASSERT_GE(scored.size(), 3u);
  std::vector<Tree> trees;
  for (ScoredTree& st : scored) trees.push_back(std::move(st.tree));

  MiningOptions mining;  // Table 2 defaults
  std::map<std::string, double> score_by_method;
  for (ConsensusMethod method : kAllConsensusMethods) {
    Result<Tree> consensus = ConsensusTree(trees, method);
    ASSERT_TRUE(consensus.ok()) << ConsensusMethodName(method) << ": "
                                << consensus.status().ToString();
    const double score = AverageSimilarityScore(*consensus, trees, mining);
    EXPECT_GE(score, 0.0);
    score_by_method[ConsensusMethodName(method)] = score;
  }
  // Strict consensus is the least resolved; majority refines it, so its
  // similarity score should be at least as high.
  EXPECT_GE(score_by_method["majority"], score_by_method["strict"] - 1e-9);
}

TEST(IntegrationTest, ForestMiningMatchesPerTreeRecount) {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(103);
  YulePhylogenyOptions gen;
  gen.min_nodes = 30;
  gen.max_nodes = 60;
  gen.alphabet_size = 50;
  std::vector<Tree> forest;
  for (int i = 0; i < 25; ++i) {
    forest.push_back(GenerateYulePhylogeny(gen, rng, labels));
  }
  MultiTreeMiningOptions opt;
  opt.min_support = 3;
  auto frequent = MineMultipleTrees(forest, opt);
  ASSERT_FALSE(frequent.empty());
  // Recount the support of every reported pair with the naive miner.
  for (const FrequentCousinPair& p : frequent) {
    int support = 0;
    for (const Tree& t : forest) {
      for (const CousinPairItem& item :
           MineSingleTreeNaive(t, opt.per_tree)) {
        if (item.label1 == p.label1 && item.label2 == p.label2 &&
            item.twice_distance == p.twice_distance) {
          ++support;
          break;
        }
      }
    }
    EXPECT_EQ(support, p.support)
        << FormatFrequentPair(*labels, p);
  }
}

TEST(IntegrationTest, KernelTreesAcrossOverlappingGroups) {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(107);
  // Three groups over partially overlapping taxon subsets of a 20-taxon
  // world, each group = parsimonious-ish variants of one model tree.
  std::vector<std::string> world = MakeTaxa(20);
  std::vector<std::vector<Tree>> groups;
  for (int g = 0; g < 3; ++g) {
    std::vector<std::string> subset;
    for (int i = 0; i < 20; ++i) {
      if (i % 3 == g || i % 2 == 0) subset.push_back(world[i]);
    }
    Tree model = RandomCoalescentTree(subset, rng, labels, 0.08);
    SimulateOptions sim;
    sim.num_sites = 80;
    Alignment a = SimulateAlignment(model, sim, rng);
    ParsimonySearchOptions search;
    search.max_trees = 4;
    search.num_restarts = 1;
    std::vector<Tree> group;
    for (ScoredTree& st : SearchParsimoniousTrees(a, search, labels)) {
      group.push_back(std::move(st.tree));
    }
    ASSERT_FALSE(group.empty());
    groups.push_back(std::move(group));
  }
  KernelTreeResult result = FindKernelTrees(groups);
  ASSERT_EQ(result.selected.size(), 3u);
  for (size_t g = 0; g < groups.size(); ++g) {
    EXPECT_GE(result.selected[g], 0);
    EXPECT_LT(result.selected[g],
              static_cast<int32_t>(groups[g].size()));
  }
  EXPECT_GE(result.average_pairwise_distance, 0.0);
  EXPECT_LE(result.average_pairwise_distance, 1.0);
}

TEST(IntegrationTest, NewickForestToFrequentPatterns) {
  // The Fig. 8-style workflow: read a study's trees, mine co-occurring
  // patterns with Table 2 defaults.
  const std::string study =
      "(((Gnetum,Welwitschia)gnt,Ephedra)gne,Angiosperms,Outgroup);"
      "(((Gnetum,Welwitschia)gnt,Angiosperms)ant,Ephedra,Outgroup);"
      "((Gnetum,Welwitschia)gnt,(Ephedra,Angiosperms)x,Outgroup);";
  auto forest = ParseNewickForest(study);
  ASSERT_TRUE(forest.ok());
  MultiTreeMiningOptions opt;  // minsup 2, maxdist 1.5, minoccur 1
  auto frequent = MineMultipleTrees(*forest, opt);
  const LabelTable& labels = (*forest)[0].labels();
  // (Gnetum, Welwitschia) at distance 0 must be frequent with support 3.
  bool found = false;
  for (const FrequentCousinPair& p : frequent) {
    if (p.label1 == labels.Find("Gnetum") &&
        p.label2 == labels.Find("Welwitschia") && p.twice_distance == 0) {
      EXPECT_EQ(p.support, 3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cousins
