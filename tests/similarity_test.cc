#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

#include "core/single_tree_mining.h"
#include "phylo/similarity.h"
#include "test_util.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(SimilarityTest, SelfSimilarityCountsSharedPairs) {
  Tree t = MustParse("((A,B)x,(C,D)y)r;");
  MiningOptions opt;
  opt.twice_maxdist = 3;
  // Every shared pair contributes exactly 1 against itself.
  auto items = MineSingleTree(t, opt);
  std::set<std::pair<LabelId, LabelId>> label_pairs;
  for (const CousinPairItem& item : items) {
    label_pairs.insert({item.label1, item.label2});
  }
  EXPECT_DOUBLE_EQ(CousinSimilarityScore(t, t, opt),
                   static_cast<double>(label_pairs.size()));
}

TEST(SimilarityTest, GeometricDecayWithDistanceGap) {
  auto labels = std::make_shared<LabelTable>();
  // In c1, (A, B) are siblings (d = 0); in t1 they are first cousins
  // (d = 1): |Δd| = 1 contributes 1/2.
  Tree c1 = MustParse("(A,B);", labels);
  Tree t1 = MustParse("((A)x,(B)y);", labels);
  MiningOptions opt;
  opt.twice_maxdist = 4;
  EXPECT_DOUBLE_EQ(CousinSimilarityScore(c1, t1, opt), 0.5);
}

TEST(SimilarityTest, HalfDistanceGapDecaysBySqrt2) {
  auto labels = std::make_shared<LabelTable>();
  Tree c1 = MustParse("(A,B);", labels);          // d = 0
  Tree t1 = MustParse("((A)x,B);", labels);       // d = 0.5
  MiningOptions opt;
  opt.twice_maxdist = 4;
  EXPECT_NEAR(CousinSimilarityScore(c1, t1, opt), std::exp2(-0.5), 1e-12);
}

TEST(SimilarityTest, DisjointLabelSetsScoreZero) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(A,B);", labels);
  Tree b = MustParse("(C,D);", labels);
  EXPECT_DOUBLE_EQ(CousinSimilarityScore(a, b), 0.0);
}

TEST(SimilarityTest, PairsBeyondMaxdistExcluded) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(A,B);", labels);
  // In b, A and B are second cousins (d = 2) — beyond maxdist 1.5, so
  // the pair is absent from b's item set and contributes nothing.
  Tree b = MustParse("(((A)p)q,((B)u)v)r;", labels);
  MiningOptions opt;  // default maxdist 1.5
  EXPECT_DOUBLE_EQ(CousinSimilarityScore(a, b, opt), 0.0);
}

TEST(SimilarityTest, AverageOverOriginals) {
  auto labels = std::make_shared<LabelTable>();
  Tree consensus = MustParse("(A,B);", labels);
  std::vector<Tree> originals = {
      MustParse("(A,B);", labels),        // contributes 1
      MustParse("((A)x,(B)y);", labels),  // contributes 1/2
  };
  MiningOptions opt;
  opt.twice_maxdist = 4;
  EXPECT_DOUBLE_EQ(AverageSimilarityScore(consensus, originals, opt), 0.75);
}

TEST(SimilarityTest, MoreFaithfulConsensusScoresHigher) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> originals = {
      MustParse("((A,B),(C,D));", labels),
      MustParse("((A,B),(C,D));", labels),
      MustParse("((A,B),C,D);", labels),
  };
  MiningOptions opt;
  opt.twice_maxdist = 3;
  Tree faithful = MustParse("((A,B),(C,D));", labels);
  Tree star = MustParse("(A,B,C,D);", labels);
  EXPECT_GT(AverageSimilarityScore(faithful, originals, opt),
            AverageSimilarityScore(star, originals, opt));
}

TEST(SimilarityTest, ItemVectorOverloadMatchesTreeOverload) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B)x,(C,D)y)r;", labels);
  Tree b = MustParse("((A,C)x,(B,D)y)r;", labels);
  MiningOptions opt;
  opt.twice_maxdist = 3;
  EXPECT_DOUBLE_EQ(
      CousinSimilarityScore(a, b, opt),
      CousinSimilarityScore(MineSingleTree(a, opt), MineSingleTree(b, opt)));
}

TEST(SimilarityTest, SymmetricInArguments) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B)x,(C,D)y)r;", labels);
  Tree b = MustParse("((A,C)x,(B,D)y)r;", labels);
  MiningOptions opt;
  opt.twice_maxdist = 4;
  EXPECT_DOUBLE_EQ(CousinSimilarityScore(a, b, opt),
                   CousinSimilarityScore(b, a, opt));
}

}  // namespace
}  // namespace cousins
