// RetryTransient's contract: only transient (kUnavailable) failures
// are ever retried, permanent failures and successes return on the
// first attempt, exhaustion surfaces the last transient Status, and
// the injected "retry.transient" fault site simulates attempt
// failures without running the wrapped operation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/fault_injection.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/status.h"

namespace cousins {
namespace {

/// Captures every observer callback so tests can assert the exact
/// retry schedule. Installed per-test; the fixture restores the
/// default (null) observer afterwards.
struct ObservedFailure {
  std::string op;
  uint64_t attempt = 0;
  bool will_retry = false;
};
std::vector<ObservedFailure>* g_observed = nullptr;

void RecordFailure(const char* op, uint64_t attempt, bool will_retry) {
  if (g_observed != nullptr) {
    g_observed->push_back({op, attempt, will_retry});
  }
}

class RetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().DisarmAll();
    g_observed = &observed_;
    retry::SetRetryObserver(&RecordFailure);
  }
  void TearDown() override {
    retry::SetRetryObserver(nullptr);
    g_observed = nullptr;
    fault::FaultRegistry::Global().DisarmAll();
  }

  /// A fast policy so exhaustion tests don't sleep for real.
  static RetryPolicy FastPolicy(int attempts) {
    RetryPolicy policy = RetryPolicy::Default();
    policy.max_attempts = attempts;
    policy.initial_delay = std::chrono::milliseconds(0);
    policy.max_delay = std::chrono::milliseconds(0);
    return policy;
  }

  std::vector<ObservedFailure> observed_;
};

TEST_F(RetryTest, SuccessOnFirstAttemptRunsExactlyOnce) {
  int calls = 0;
  Status st = RetryTransient(FastPolicy(3), "test.ok", [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(observed_.empty());
}

TEST_F(RetryTest, TransientFailureIsRetriedUntilSuccess) {
  int calls = 0;
  Status st = RetryTransient(FastPolicy(3), "test.flaky", [&]() {
    return ++calls < 3 ? Status::Unavailable("disk hiccup") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(observed_.size(), 2u);
  EXPECT_EQ(observed_[0].op, "test.flaky");
  EXPECT_EQ(observed_[0].attempt, 1u);
  EXPECT_TRUE(observed_[0].will_retry);
  EXPECT_EQ(observed_[1].attempt, 2u);
  EXPECT_TRUE(observed_[1].will_retry);
}

TEST_F(RetryTest, PermanentFailureIsNeverRetried) {
  int calls = 0;
  Status st = RetryTransient(FastPolicy(5), "test.permanent", [&]() {
    ++calls;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  // The observer reports transient failures only; a permanent error is
  // not part of any retry schedule.
  EXPECT_TRUE(observed_.empty());
}

TEST_F(RetryTest, ExhaustionReturnsTheLastTransientStatus) {
  int calls = 0;
  Status st = RetryTransient(FastPolicy(3), "test.down", [&]() {
    ++calls;
    return Status::Unavailable("still down #" + std::to_string(calls));
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(st.IsTransient());
  EXPECT_NE(st.message().find("still down #3"), std::string::npos);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(observed_.size(), 3u);
  EXPECT_FALSE(observed_.back().will_retry);
}

TEST_F(RetryTest, NonePolicyFailsFastOnTransientErrors) {
  int calls = 0;
  Status st = RetryTransient(RetryPolicy::None(), "test.strict", [&]() {
    ++calls;
    return Status::Unavailable("transient");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(observed_.size(), 1u);
  EXPECT_FALSE(observed_[0].will_retry);
}

TEST_F(RetryTest, ValueFlavorReturnsTheValueAfterRetries) {
  int calls = 0;
  Result<int> out = RetryTransientValue(
      FastPolicy(3), "test.value", [&]() -> Result<int> {
        if (++calls < 2) return Status::Unavailable("not yet");
        return 41 + 1;
      });
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, 42);
  EXPECT_EQ(calls, 2);
}

TEST_F(RetryTest, ValueFlavorPropagatesPermanentFailureImmediately) {
  int calls = 0;
  Result<int> out = RetryTransientValue(
      FastPolicy(3), "test.value_perm", [&]() -> Result<int> {
        ++calls;
        return Status::Corruption("bad bytes");
      });
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
}

TEST_F(RetryTest, ArmedFaultSiteSimulatesOneTransientAttempt) {
  // The armed hit fails attempt 1 *before* fn runs; attempt 2 then
  // succeeds — the retried surface never saw a real error at all.
  fault::FaultRegistry::Global().Arm("retry.transient", 1);
  int calls = 0;
  Status st = RetryTransient(FastPolicy(3), "test.injected", [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(observed_.size(), 1u);
  EXPECT_EQ(observed_[0].attempt, 1u);
  EXPECT_TRUE(observed_[0].will_retry);
}

TEST_F(RetryTest, RetryScheduleIsDeterministicForAFixedSeed) {
  // Same seed → the jittered backoff draws the same delays, so the
  // whole schedule (observable through the observer) replays exactly.
  auto run = [](uint64_t seed) {
    std::vector<ObservedFailure> log;
    g_observed = &log;
    RetryPolicy policy = RetryPolicy::Default(seed);
    policy.initial_delay = std::chrono::milliseconds(0);
    policy.max_delay = std::chrono::milliseconds(0);
    Status st = RetryTransient(policy, "test.replay", []() {
      return Status::Unavailable("down");
    });
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    return log.size();
  };
  EXPECT_EQ(run(17), run(17));
  g_observed = &observed_;
}

}  // namespace
}  // namespace cousins
