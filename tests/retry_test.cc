// RetryTransient's contract: only transient (kUnavailable) failures
// are ever retried, permanent failures and successes return on the
// first attempt, exhaustion surfaces the last transient Status, and
// the injected "retry.transient" fault site simulates attempt
// failures without running the wrapped operation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/fault_injection.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/status.h"

namespace cousins {
namespace {

/// Captures every observer callback so tests can assert the exact
/// retry schedule. Installed per-test; the fixture restores the
/// default (null) observer afterwards.
struct ObservedFailure {
  std::string op;
  uint64_t attempt = 0;
  bool will_retry = false;
};
std::vector<ObservedFailure>* g_observed = nullptr;

void RecordFailure(const char* op, uint64_t attempt, bool will_retry) {
  if (g_observed != nullptr) {
    g_observed->push_back({op, attempt, will_retry});
  }
}

class RetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().DisarmAll();
    g_observed = &observed_;
    retry::SetRetryObserver(&RecordFailure);
  }
  void TearDown() override {
    retry::SetRetryObserver(nullptr);
    g_observed = nullptr;
    fault::FaultRegistry::Global().DisarmAll();
  }

  /// A fast policy so exhaustion tests don't sleep for real.
  static RetryPolicy FastPolicy(int attempts) {
    RetryPolicy policy = RetryPolicy::Default();
    policy.max_attempts = attempts;
    policy.initial_delay = std::chrono::milliseconds(0);
    policy.max_delay = std::chrono::milliseconds(0);
    return policy;
  }

  std::vector<ObservedFailure> observed_;
};

TEST_F(RetryTest, SuccessOnFirstAttemptRunsExactlyOnce) {
  int calls = 0;
  Status st = RetryTransient(FastPolicy(3), "test.ok", [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(observed_.empty());
}

TEST_F(RetryTest, TransientFailureIsRetriedUntilSuccess) {
  int calls = 0;
  Status st = RetryTransient(FastPolicy(3), "test.flaky", [&]() {
    return ++calls < 3 ? Status::Unavailable("disk hiccup") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(observed_.size(), 2u);
  EXPECT_EQ(observed_[0].op, "test.flaky");
  EXPECT_EQ(observed_[0].attempt, 1u);
  EXPECT_TRUE(observed_[0].will_retry);
  EXPECT_EQ(observed_[1].attempt, 2u);
  EXPECT_TRUE(observed_[1].will_retry);
}

TEST_F(RetryTest, PermanentFailureIsNeverRetried) {
  int calls = 0;
  Status st = RetryTransient(FastPolicy(5), "test.permanent", [&]() {
    ++calls;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  // The observer reports transient failures only; a permanent error is
  // not part of any retry schedule.
  EXPECT_TRUE(observed_.empty());
}

TEST_F(RetryTest, ExhaustionReturnsTheLastTransientStatus) {
  int calls = 0;
  Status st = RetryTransient(FastPolicy(3), "test.down", [&]() {
    ++calls;
    return Status::Unavailable("still down #" + std::to_string(calls));
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(st.IsTransient());
  EXPECT_NE(st.message().find("still down #3"), std::string::npos);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(observed_.size(), 3u);
  EXPECT_FALSE(observed_.back().will_retry);
}

TEST_F(RetryTest, NonePolicyFailsFastOnTransientErrors) {
  int calls = 0;
  Status st = RetryTransient(RetryPolicy::None(), "test.strict", [&]() {
    ++calls;
    return Status::Unavailable("transient");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(observed_.size(), 1u);
  EXPECT_FALSE(observed_[0].will_retry);
}

TEST_F(RetryTest, ValueFlavorReturnsTheValueAfterRetries) {
  int calls = 0;
  Result<int> out = RetryTransientValue(
      FastPolicy(3), "test.value", [&]() -> Result<int> {
        if (++calls < 2) return Status::Unavailable("not yet");
        return 41 + 1;
      });
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, 42);
  EXPECT_EQ(calls, 2);
}

TEST_F(RetryTest, ValueFlavorPropagatesPermanentFailureImmediately) {
  int calls = 0;
  Result<int> out = RetryTransientValue(
      FastPolicy(3), "test.value_perm", [&]() -> Result<int> {
        ++calls;
        return Status::Corruption("bad bytes");
      });
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
}

TEST_F(RetryTest, ArmedFaultSiteSimulatesOneTransientAttempt) {
  // The armed hit fails attempt 1 *before* fn runs; attempt 2 then
  // succeeds — the retried surface never saw a real error at all.
  fault::FaultRegistry::Global().Arm("retry.transient", 1);
  int calls = 0;
  Status st = RetryTransient(FastPolicy(3), "test.injected", [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(observed_.size(), 1u);
  EXPECT_EQ(observed_[0].attempt, 1u);
  EXPECT_TRUE(observed_[0].will_retry);
}

/// Recorded inter-attempt delays, captured via retry::SetSleepFn so
/// the exact backoff+jitter schedule is assertable without sleeping.
std::vector<double>* g_slept_ms = nullptr;

void RecordSleep(std::chrono::duration<double, std::milli> delay) {
  if (g_slept_ms != nullptr) g_slept_ms->push_back(delay.count());
}

/// Runs an always-transient operation under `policy` and returns the
/// recorded sleep schedule (max_attempts - 1 delays).
std::vector<double> ScheduleOf(const RetryPolicy& policy) {
  std::vector<double> slept;
  g_slept_ms = &slept;
  retry::SetSleepFn(&RecordSleep);
  Status st = RetryTransient(policy, "test.schedule",
                             []() { return Status::Unavailable("down"); });
  retry::SetSleepFn(nullptr);
  g_slept_ms = nullptr;
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  return slept;
}

TEST_F(RetryTest, JitteredDelaysReplayBitIdenticallyForTheSameSeed) {
  RetryPolicy policy = RetryPolicy::Default(/*jitter_seed=*/99);
  policy.max_attempts = 6;
  const std::vector<double> first = ScheduleOf(policy);
  const std::vector<double> second = ScheduleOf(policy);
  ASSERT_EQ(first.size(), 5u);
  // Bit-identical, not approximately equal: the jitter draw is a
  // deterministic function of (seed, attempt), nothing else.
  EXPECT_EQ(first, second);
}

TEST_F(RetryTest, DifferentSeedsDrawDifferentJitter) {
  RetryPolicy a = RetryPolicy::Default(/*jitter_seed=*/1);
  RetryPolicy b = RetryPolicy::Default(/*jitter_seed=*/2);
  a.max_attempts = b.max_attempts = 6;
  EXPECT_NE(ScheduleOf(a), ScheduleOf(b));
}

TEST_F(RetryTest, EveryDelayStaysInsideTheJitterEnvelope) {
  RetryPolicy policy = RetryPolicy::Default(/*jitter_seed=*/7);
  policy.max_attempts = 4;
  policy.initial_delay = std::chrono::milliseconds(2);
  policy.backoff_multiplier = 2.0;
  policy.max_delay = std::chrono::milliseconds(50);
  policy.jitter_fraction = 0.25;
  const std::vector<double> slept = ScheduleOf(policy);
  ASSERT_EQ(slept.size(), 3u);
  double base = 2.0;
  for (const double delay : slept) {
    EXPECT_GE(delay, base * 0.75);
    EXPECT_LE(delay, base * 1.25);
    base *= 2.0;
  }
}

TEST_F(RetryTest, BackoffClampsAtMaxDelayBeforeJitter) {
  RetryPolicy policy = RetryPolicy::Default(/*jitter_seed=*/3);
  policy.max_attempts = 10;
  policy.initial_delay = std::chrono::milliseconds(2);
  policy.backoff_multiplier = 2.0;
  policy.max_delay = std::chrono::milliseconds(10);
  policy.jitter_fraction = 0.25;
  const std::vector<double> slept = ScheduleOf(policy);
  ASSERT_EQ(slept.size(), 9u);
  for (const double delay : slept) {
    // 2 → 4 → 8 → clamp at 10; jitter widens by at most 25%.
    EXPECT_LE(delay, 10.0 * 1.25);
  }
  // The tail of the schedule has reached the clamp.
  EXPECT_GE(slept.back(), 10.0 * 0.75);
}

TEST_F(RetryTest, ZeroJitterFractionYieldsTheExactExponentialLadder) {
  RetryPolicy policy = RetryPolicy::Default(/*jitter_seed=*/5);
  policy.max_attempts = 4;
  policy.initial_delay = std::chrono::milliseconds(2);
  policy.jitter_fraction = 0.0;
  const std::vector<double> slept = ScheduleOf(policy);
  ASSERT_EQ(slept.size(), 3u);
  EXPECT_DOUBLE_EQ(slept[0], 2.0);
  EXPECT_DOUBLE_EQ(slept[1], 4.0);
  EXPECT_DOUBLE_EQ(slept[2], 8.0);
}

TEST_F(RetryTest, RetryScheduleIsDeterministicForAFixedSeed) {
  // Same seed → the jittered backoff draws the same delays, so the
  // whole schedule (observable through the observer) replays exactly.
  auto run = [](uint64_t seed) {
    std::vector<ObservedFailure> log;
    g_observed = &log;
    RetryPolicy policy = RetryPolicy::Default(seed);
    policy.initial_delay = std::chrono::milliseconds(0);
    policy.max_delay = std::chrono::milliseconds(0);
    Status st = RetryTransient(policy, "test.replay", []() {
      return Status::Unavailable("down");
    });
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    return log.size();
  };
  EXPECT_EQ(run(17), run(17));
  g_observed = &observed_;
}

}  // namespace
}  // namespace cousins
