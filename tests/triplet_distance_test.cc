#include <gtest/gtest.h>

#include "gen/yule_generator.h"
#include "phylo/triplet_distance.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(TripletDistanceTest, IdenticalTreesZero) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(((A,B),C),D);", labels);
  Tree b = MustParse("(((B,A),C),D);", labels);
  auto r = TripletDistance(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->triplets, 4);  // C(4,3)
  EXPECT_EQ(r->disagreements, 0);
  EXPECT_DOUBLE_EQ(r->normalized, 0.0);
}

TEST(TripletDistanceTest, SingleDisagreement) {
  auto labels = std::make_shared<LabelTable>();
  // Only {A, B, C} is resolved differently (AB|C vs AC|B); the triplets
  // involving D agree... check: ((A,B),C),D vs ((A,C),B),D.
  Tree a = MustParse("(((A,B),C),D);", labels);
  Tree b = MustParse("(((A,C),B),D);", labels);
  auto r = TripletDistance(a, b);
  ASSERT_TRUE(r.ok());
  // Triplets: ABC differs; ABD: a says AB|D, b says AB? in b lca(A,B) is
  // the ABC node, lca(A,B,D) is root => AB|D agrees... ACD: a: AC|D via
  // ABC node; b: AC|D via (A,C) => agree; BCD: a: BC|D; b: BC|D => agree.
  EXPECT_EQ(r->disagreements, 1);
  EXPECT_DOUBLE_EQ(r->normalized, 0.25);
}

TEST(TripletDistanceTest, StarVsResolved) {
  auto labels = std::make_shared<LabelTable>();
  Tree star = MustParse("(A,B,C);", labels);
  Tree resolved = MustParse("((A,B),C);", labels);
  auto r = TripletDistance(star, resolved);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->triplets, 1);
  EXPECT_EQ(r->disagreements, 1);  // star vs AB|C
}

TEST(TripletDistanceTest, SymmetricAndBounded) {
  Rng rng(77);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa = MakeTaxa(10);
  for (int trial = 0; trial < 8; ++trial) {
    Tree a = RandomCoalescentTree(taxa, rng, labels);
    Tree b = RandomCoalescentTree(taxa, rng, labels);
    auto ab = TripletDistance(a, b);
    auto ba = TripletDistance(b, a);
    ASSERT_TRUE(ab.ok() && ba.ok());
    EXPECT_EQ(ab->disagreements, ba->disagreements);
    EXPECT_EQ(ab->triplets, 120);  // C(10,3)
    EXPECT_GE(ab->normalized, 0.0);
    EXPECT_LE(ab->normalized, 1.0);
  }
}

TEST(TripletDistanceTest, RequiresSameTaxa) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B),C);", labels);
  Tree b = MustParse("((A,B),D);", labels);
  EXPECT_FALSE(TripletDistance(a, b).ok());
}

TEST(TripletDistanceTest, FewerThanThreeTaxa) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(A,B);", labels);
  Tree b = MustParse("(B,A);", labels);
  auto r = TripletDistance(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->triplets, 0);
  EXPECT_DOUBLE_EQ(r->normalized, 0.0);
}

}  // namespace
}  // namespace cousins
