#include <gtest/gtest.h>

#include <cmath>

#include "gen/yule_generator.h"
#include "phylo/tree_stats.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(TreeStatsTest, FullyResolvedBalanced) {
  auto stats = ComputeTreeStats(MustParse("((A,B),(C,D));")).value();
  EXPECT_EQ(stats.num_taxa, 4);
  EXPECT_EQ(stats.num_internal, 3);
  EXPECT_DOUBLE_EQ(stats.resolution, 1.0);  // 2 clusters / (4-2)
  EXPECT_DOUBLE_EQ(stats.colless, 0.0);
  EXPECT_DOUBLE_EQ(stats.sackin, 2.0);
}

TEST(TreeStatsTest, StarIsUnresolved) {
  auto stats = ComputeTreeStats(MustParse("(A,B,C,D,E);")).value();
  EXPECT_DOUBLE_EQ(stats.resolution, 0.0);
  EXPECT_DOUBLE_EQ(stats.colless, 0.0);
  EXPECT_DOUBLE_EQ(stats.sackin, 1.0);
}

TEST(TreeStatsTest, CaterpillarMaximizesColless) {
  auto stats =
      ComputeTreeStats(MustParse("((((A,B),C),D),E);")).value();
  EXPECT_DOUBLE_EQ(stats.resolution, 1.0);
  // Colless sum = |1-1| + |2-1| + |3-1| + |4-1| = 6; norm (n-1)(n-2)/2=6.
  EXPECT_DOUBLE_EQ(stats.colless, 1.0);
}

TEST(TreeStatsTest, PartialResolution) {
  auto stats = ComputeTreeStats(MustParse("((A,B),C,D,E);")).value();
  EXPECT_DOUBLE_EQ(stats.resolution, 1.0 / 3.0);
}

TEST(TreeStatsTest, TinyTrees) {
  EXPECT_DOUBLE_EQ(ComputeTreeStats(MustParse("A;")).value().resolution,
                   1.0);
  EXPECT_DOUBLE_EQ(ComputeTreeStats(MustParse("(A,B);")).value().resolution,
                   1.0);
}

TEST(TreeStatsTest, ErrorsOnDuplicateTaxa) {
  EXPECT_FALSE(ComputeTreeStats(MustParse("(A,A);")).ok());
}

TEST(TreeStatsTest, RandomBinaryTreesBounded) {
  Rng rng(61);
  for (int trial = 0; trial < 15; ++trial) {
    Tree t = RandomCoalescentTree(MakeTaxa(12), rng);
    auto stats = ComputeTreeStats(t).value();
    EXPECT_DOUBLE_EQ(stats.resolution, 1.0);  // binary => fully resolved
    EXPECT_GE(stats.colless, 0.0);
    EXPECT_LE(stats.colless, 1.0);
    EXPECT_GE(stats.sackin, std::log2(12.0) - 1);  // >= balanced depth-ish
  }
}

}  // namespace
}  // namespace cousins
