// TallyMap unit tests plus the accumulator regression suite: the
// forest-wide tables must never grow reactively on a Table 3-shaped
// workload (label-cardinality presizing), and the reusable per-tree
// scratch must stop rehashing once warm (steady-state allocation-free
// mining).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/multi_tree_mining.h"
#include "core/pair_count_map.h"
#include "core/tally_map.h"
#include "gen/fanout_generator.h"
#include "tree/label_table.h"
#include "util/rng.h"

namespace cousins {
namespace {

using internal::PackLabelPair;
using internal::TallyMap;

TEST(TallyMap, DefaultConstructionAllocatesNothing) {
  TallyMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), 0u);
}

TEST(TallyMap, AddInsertsAndAccumulates) {
  TallyMap map;
  EXPECT_TRUE(map.Add(42, 1, 10));
  EXPECT_FALSE(map.Add(42, 2, 5));
  EXPECT_TRUE(map.Add(7, 1, 1));
  EXPECT_EQ(map.size(), 2u);

  int32_t support_42 = 0;
  int64_t occ_42 = 0;
  int entries = 0;
  map.ForEach([&](uint64_t key, int32_t support, int64_t occ) {
    ++entries;
    if (key == 42) {
      support_42 = support;
      occ_42 = occ;
    }
  });
  EXPECT_EQ(entries, 2);
  EXPECT_EQ(support_42, 3);
  EXPECT_EQ(occ_42, 15);
}

TEST(TallyMap, GrowthPreservesEveryEntry) {
  TallyMap map;
  constexpr int kEntries = 10000;  // far past several doublings
  for (int i = 0; i < kEntries; ++i) {
    map.Add(PackLabelPair(i, i + 1), 1, i);
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(kEntries));
  EXPECT_GT(map.stats().grows, 0);
  std::vector<bool> seen(kEntries, false);
  map.ForEach([&](uint64_t key, int32_t support, int64_t occ) {
    const auto i = static_cast<int>(internal::UnpackFirst(key));
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kEntries);
    EXPECT_FALSE(seen[i]) << "duplicate key after rehash";
    seen[i] = true;
    EXPECT_EQ(support, 1);
    EXPECT_EQ(occ, i);
  });
  for (int i = 0; i < kEntries; ++i) EXPECT_TRUE(seen[i]) << i;
}

TEST(TallyMap, ReserveLivePreventsReactiveGrowth) {
  TallyMap map;
  constexpr int kEntries = 5000;
  map.ReserveLive(kEntries);
  const size_t presized = map.capacity();
  for (int i = 0; i < kEntries; ++i) {
    map.Add(PackLabelPair(i, i), 1, 1);
  }
  EXPECT_EQ(map.stats().grows, 0);
  EXPECT_EQ(map.capacity(), presized);
  // The promised load factor: live entries stay under 0.7 of capacity.
  EXPECT_LT(map.size() * 10, map.capacity() * 7);
}

TEST(TallyMap, ReserveLiveOnWarmTableKeepsEntries) {
  TallyMap map;
  for (int i = 0; i < 100; ++i) map.Add(PackLabelPair(i, i), 2, 3);
  const int64_t grows_before = map.stats().grows;
  map.ReserveLive(100000);
  EXPECT_EQ(map.stats().grows, grows_before) << "presize counted as grow";
  EXPECT_EQ(map.size(), 100u);
  int entries = 0;
  map.ForEach([&](uint64_t, int32_t support, int64_t occ) {
    ++entries;
    EXPECT_EQ(support, 2);
    EXPECT_EQ(occ, 3);
  });
  EXPECT_EQ(entries, 100);
}

TEST(TallyMap, SaturatesInsteadOfWrapping) {
  TallyMap map;
  map.Add(1, INT32_MAX, INT64_MAX);
  map.Add(1, 1, 1);
  map.ForEach([&](uint64_t, int32_t support, int64_t occ) {
    EXPECT_EQ(support, INT32_MAX);
    EXPECT_EQ(occ, INT64_MAX);
  });
}

TEST(TallyMap, SubtractToZeroHidesEntryAndShrinksLive) {
  TallyMap map;
  EXPECT_EQ(map.Add(42, 2, 10), 1);
  EXPECT_EQ(map.Add(7, 1, 1), 1);
  EXPECT_EQ(map.live(), 2u);
  // Partial subtraction: entry stays visible, no live change.
  EXPECT_EQ(map.Subtract(42, 1, 4), 0);
  int entries = 0;
  map.ForEach([&](uint64_t key, int32_t support, int64_t occ) {
    ++entries;
    if (key == 42) {
      EXPECT_EQ(support, 1);
      EXPECT_EQ(occ, 6);
    }
  });
  EXPECT_EQ(entries, 2);
  // Subtraction to zero-net: hidden from ForEach, live shrinks, the
  // slot itself stays occupied until the next rehash purges it.
  EXPECT_EQ(map.Subtract(42, 1, 6), -1);
  EXPECT_EQ(map.live(), 1u);
  EXPECT_EQ(map.size(), 2u);
  entries = 0;
  map.ForEach([&](uint64_t key, int32_t, int64_t) {
    ++entries;
    EXPECT_EQ(key, 7u);
  });
  EXPECT_EQ(entries, 1);
}

TEST(TallyMap, SubtractClampsAndIgnoresMissingKeys) {
  TallyMap map;
  map.Add(42, 1, 3);
  // Over-subtraction clamps at zero and reports the single transition.
  EXPECT_EQ(map.Subtract(42, 100, 100), -1);
  // Subtracting an already-dead entry is a no-op, not a second -1.
  EXPECT_EQ(map.Subtract(42, 1, 1), 0);
  // A key that was never added is a no-op (and must not insert).
  EXPECT_EQ(map.Subtract(999, 1, 1), 0);
  EXPECT_EQ(map.live(), 0u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(TallyMap, ReAddRevivesZeroNetEntry) {
  TallyMap map;
  map.Add(42, 1, 5);
  map.Subtract(42, 1, 5);
  EXPECT_EQ(map.live(), 0u);
  // Reviving a dead slot is a fresh insert from the caller's
  // perspective: counts restart, live grows back.
  EXPECT_EQ(map.Add(42, 3, 7), 1);
  EXPECT_EQ(map.live(), 1u);
  map.ForEach([&](uint64_t, int32_t support, int64_t occ) {
    EXPECT_EQ(support, 3);
    EXPECT_EQ(occ, 7);
  });
}

TEST(TallyMap, PurgeBeforeGrowDropsZeroNetSlots) {
  // An add/subtract churn workload must not balloon capacity: when the
  // occupied slots would trigger a grow but most are zero-net, the
  // rehash purges in place instead of doubling.
  TallyMap map;
  constexpr int kChurn = 20000;
  for (int i = 0; i < kChurn; ++i) {
    map.Add(PackLabelPair(i, i + 1), 1, 1);
    if (i >= 16) {
      // Keep a 16-entry live window; everything older goes zero-net.
      map.Subtract(PackLabelPair(i - 16, i - 15), 1, 1);
    }
  }
  EXPECT_EQ(map.live(), 16u);
  // Capacity stays bounded by the live set, not the churn volume
  // (kChurn entries at 0.7 load would need 32Ki slots without purging).
  EXPECT_LE(map.capacity(), 4096u);
  int entries = 0;
  map.ForEach([&](uint64_t, int32_t support, int64_t occ) {
    ++entries;
    EXPECT_EQ(support, 1);
    EXPECT_EQ(occ, 1);
  });
  EXPECT_EQ(entries, 16);
}

TEST(WideTallyMap, SubtractMirrorsTallyMapSemantics) {
  internal::WideTallyMap map;
  EXPECT_EQ(map.Add(42, 9, 2, 10), 1);
  EXPECT_EQ(map.Subtract(42, 9, 1, 4), 0);
  EXPECT_EQ(map.Subtract(42, 9, 1, 6), -1);
  EXPECT_EQ(map.live(), 0u);
  int entries = 0;
  map.ForEach([&](uint64_t, uint32_t, int32_t, int64_t) { ++entries; });
  EXPECT_EQ(entries, 0);
  // Distinct aux under the same key is a distinct entry.
  EXPECT_EQ(map.Add(42, 8, 1, 1), 1);
  EXPECT_EQ(map.Subtract(42, 9, 1, 1), 0) << "wrong aux must not match";
  EXPECT_EQ(map.live(), 1u);
}

/// Streams `num_trees` of a Table 3-shaped corpus (200-node fanout-5
/// trees over a 200-label alphabet — the Figure 6 workload) into the
/// miner; rng/labels carry across calls so the stream is one corpus.
void StreamFig6Forest(MultiTreeMiner* miner, int num_trees, Rng* rng,
                      const std::shared_ptr<LabelTable>& labels) {
  const FanoutTreeOptions gen;  // defaults are the Table 3 values
  for (int i = 0; i < num_trees; ++i) {
    miner->AddTree(GenerateFanoutTree(gen, *rng, labels));
  }
}

TEST(AccumulatorRegression, NoTallyGrowthOnFig6Workload) {
  // The 200-label alphabet bounds distinct pairs at 20,100 — well under
  // the presize cap — so EnsureTallyCapacity must make every reactive
  // grow unnecessary, however many trees stream through.
  MultiTreeMiner miner;
  Rng rng(6000);
  auto labels = std::make_shared<LabelTable>();
  StreamFig6Forest(&miner, 200, &rng, labels);
  const MultiTreeMiner::AccumulatorStats stats = miner.accumulator_stats();
  EXPECT_EQ(stats.tally_grows, 0)
      << "forest tally tables grew reactively despite presizing";
  EXPECT_GT(stats.tally_entries, 0);
}

TEST(AccumulatorRegression, ScratchRehashesStopOnceWarm) {
  // The per-tree scratch accumulators grow only while discovering the
  // workload's working-set size; identically-shaped trees afterwards
  // must mine allocation-free.
  MultiTreeMiner miner;
  Rng rng(6000);
  auto labels = std::make_shared<LabelTable>();
  StreamFig6Forest(&miner, 50, &rng, labels);
  const int64_t warm = miner.accumulator_stats().scratch_rehashes;
  StreamFig6Forest(&miner, 50, &rng, labels);  // 50 more, same shape
  EXPECT_EQ(miner.accumulator_stats().scratch_rehashes, warm)
      << "warm scratch kept rehashing on a steady-state workload";
}

TEST(LabelTable, HeterogeneousLookupFindsInternedNames) {
  LabelTable table;
  const LabelId id = table.Intern("Homo sapiens");
  // Probe with a string_view into a larger buffer — no std::string may
  // be required (and none is constructed by the transparent index).
  const std::string text = "xxHomo sapiensyy";
  const std::string_view probe(text.data() + 2, 12);
  EXPECT_EQ(table.Find(probe), id);
  EXPECT_EQ(table.Intern(probe), id) << "re-intern must dedupe";
  EXPECT_EQ(table.Find("Pan troglodytes"), kNoLabel);
  EXPECT_EQ(table.size(), 1u);
}

TEST(LabelTable, ReserveKeepsIdsAndNamesStable) {
  LabelTable table;
  const LabelId a = table.Intern("a");
  table.Reserve(10000);
  EXPECT_EQ(table.Find("a"), a);
  EXPECT_EQ(table.Name(a), "a");
  const LabelId b = table.Intern("b");
  EXPECT_EQ(b, a + 1);
}

}  // namespace
}  // namespace cousins
