#include <gtest/gtest.h>

#include "gen/yule_generator.h"
#include "phylo/tree_distance.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(TreeDistanceTest, IdenticalTreesDistanceZero) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B)x,(C,D)y)r;", labels);
  Tree b = MustParse("((B,A)x,(D,C)y)r;", labels);  // reordered siblings
  for (CousinItemAbstraction abstraction : kAllAbstractions) {
    EXPECT_DOUBLE_EQ(CousinTreeDistance(a, b, abstraction), 0.0)
        << AbstractionName(abstraction);
  }
}

TEST(TreeDistanceTest, DisjointLabelSetsDistanceOne) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(A,B);", labels);
  Tree b = MustParse("(C,D);", labels);
  for (CousinItemAbstraction abstraction : kAllAbstractions) {
    EXPECT_DOUBLE_EQ(CousinTreeDistance(a, b, abstraction), 1.0);
  }
}

TEST(TreeDistanceTest, Symmetric) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B)x,(C,D)y)r;", labels);
  Tree b = MustParse("((A,C)x,(B,D)y)r;", labels);
  for (CousinItemAbstraction abstraction : kAllAbstractions) {
    EXPECT_DOUBLE_EQ(CousinTreeDistance(a, b, abstraction),
                     CousinTreeDistance(b, a, abstraction));
  }
}

TEST(TreeDistanceTest, BoundedByZeroOne) {
  Rng rng(31);
  auto labels = std::make_shared<LabelTable>();
  YulePhylogenyOptions gen;
  gen.min_nodes = 20;
  gen.max_nodes = 50;
  gen.alphabet_size = 30;
  for (int i = 0; i < 10; ++i) {
    Tree a = GenerateYulePhylogeny(gen, rng, labels);
    Tree b = GenerateYulePhylogeny(gen, rng, labels);
    for (CousinItemAbstraction abstraction : kAllAbstractions) {
      const double d = CousinTreeDistance(a, b, abstraction);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(TreeDistanceTest, DistanceAbstractionDiscriminatesPlacement) {
  auto labels = std::make_shared<LabelTable>();
  // Same label pairs everywhere, but (A, B) is a sibling pair in `a`
  // and a first-cousin pair in `b`: the labels-only profile matches,
  // the distance-aware profile does not.
  Tree a = MustParse("(A,B);", labels);
  Tree b = MustParse("((A)x,(B)y);", labels);
  MiningOptions opt;
  opt.twice_maxdist = 4;
  const double labels_only =
      CousinTreeDistance(a, b, CousinItemAbstraction::kLabelsOnly, opt);
  const double with_dist =
      CousinTreeDistance(a, b, CousinItemAbstraction::kDistance, opt);
  // b also has (A,y),(x,B),(x,y) pairs, so even labels-only differs —
  // but distance-aware must be at least as far.
  EXPECT_GE(with_dist, labels_only);
  // Restrict to the shared pair by comparing profiles directly.
  auto pa = CousinProfile(a, CousinItemAbstraction::kDistance, opt);
  auto pb = CousinProfile(b, CousinItemAbstraction::kDistance, opt);
  EXPECT_GT(ProfileDistance(pa, pb), 0.0);
}

TEST(TreeDistanceTest, OccurrenceAbstractionUsesMultisetSemantics) {
  auto labels = std::make_shared<LabelTable>();
  // (a, b, 0) occurs twice in t1, once in t2. Occurrence-aware profiles:
  // |∩| = min(2,1) = 1, |∪| = max(2,1) = 2 (plus other items).
  Tree t1 = MustParse("((a,b)x,(a,b)x)r;", labels);
  Tree t2 = MustParse("(a,b);", labels);
  MiningOptions opt;
  opt.twice_maxdist = 0;  // siblings only to keep the example tiny
  auto p1 = CousinProfile(t1, CousinItemAbstraction::kOccurrence, opt);
  auto p2 = CousinProfile(t2, CousinItemAbstraction::kOccurrence, opt);
  // t1 sibling items: (a,b) x2 and the internal pair (x,x) x1;
  // t2: (a,b) x1. ∩ = min(2,1) = 1; ∪ = max(2,1) + 1 = 3.
  EXPECT_DOUBLE_EQ(ProfileDistance(p1, p2), 1.0 - 1.0 / 3.0);
}

TEST(TreeDistanceTest, LabelsOnlyIgnoresMultiplicity) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = MustParse("((a,b)x,(a,b)x)r;", labels);
  Tree t2 = MustParse("(a,b);", labels);
  MiningOptions opt;
  opt.twice_maxdist = 0;
  auto p1 = CousinProfile(t1, CousinItemAbstraction::kLabelsOnly, opt);
  auto p2 = CousinProfile(t2, CousinItemAbstraction::kLabelsOnly, opt);
  // t1 sibling label pairs: {a,b} and {x,x}; t2: {a,b}. 1/2 overlap.
  EXPECT_DOUBLE_EQ(ProfileDistance(p1, p2), 1.0 - 1.0 / 2.0);
}

TEST(TreeDistanceTest, WorksAcrossDifferentTaxonSets) {
  // The selling point vs. COMPONENT: partially overlapping taxa.
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B)x,C)r;", labels);
  Tree b = MustParse("((A,B)x,D)r;", labels);
  const double d = CousinTreeDistance(
      a, b, CousinItemAbstraction::kDistanceAndOccurrence);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);  // the shared (A, B) sibling pair overlaps
}

TEST(TreeDistanceTest, EmptyProfilesDistanceZero) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(A)r;", labels);  // no cousin pairs
  Tree b = MustParse("(B)r;", labels);
  EXPECT_DOUBLE_EQ(CousinTreeDistance(
                       a, b, CousinItemAbstraction::kLabelsOnly),
                   0.0);
}

TEST(TreeDistanceTest, AbstractionNames) {
  EXPECT_EQ(AbstractionName(CousinItemAbstraction::kLabelsOnly), "labels");
  EXPECT_EQ(AbstractionName(CousinItemAbstraction::kDistance), "dist");
  EXPECT_EQ(AbstractionName(CousinItemAbstraction::kOccurrence), "occur");
  EXPECT_EQ(AbstractionName(CousinItemAbstraction::kDistanceAndOccurrence),
            "dist_occur");
}

TEST(TreeDistanceTest, ProfileItemsCollapseUnderAbstraction) {
  auto labels = std::make_shared<LabelTable>();
  // (c, e) occurs at two distances; labels-only collapses to one item.
  Tree t = MustParse("((c,e)x,(c)y)r;", labels);
  MiningOptions opt;
  opt.twice_maxdist = 4;
  auto full = CousinProfile(
      t, CousinItemAbstraction::kDistanceAndOccurrence, opt);
  auto labels_only =
      CousinProfile(t, CousinItemAbstraction::kLabelsOnly, opt);
  EXPECT_GT(full.size(), labels_only.size());
  for (const CousinPairItem& item : labels_only) {
    EXPECT_EQ(item.twice_distance, kAnyDistance);
    EXPECT_EQ(item.occurrences, 1);
  }
}

}  // namespace
}  // namespace cousins
