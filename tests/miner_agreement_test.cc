// Property tests: the three single-tree miners (fast exact-LCA sweep,
// paper-faithful Fig. 3 transcription, brute-force oracle) must produce
// identical canonical item vectors on every tree, and the result must
// not depend on sibling order (the trees are unordered).

#include <gtest/gtest.h>

#include <tuple>

#include "core/naive_mining.h"
#include "core/paper_mining.h"
#include "core/single_tree_mining.h"
#include "gen/fanout_generator.h"
#include "gen/uniform_generator.h"
#include "gen/yule_generator.h"
#include "test_util.h"
#include "tree/builder.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::ItemsToString;

void ExpectAllMinersAgree(const Tree& t, const MiningOptions& opt) {
  auto fast = MineSingleTree(t, opt);
  auto paper = MineSingleTreePaper(t, opt);
  auto naive = MineSingleTreeNaive(t, opt);
  ASSERT_EQ(fast, naive) << "fast vs naive, maxdist(x2)="
                         << opt.twice_maxdist << "\nfast:\n"
                         << ItemsToString(t.labels(), fast) << "naive:\n"
                         << ItemsToString(t.labels(), naive);
  ASSERT_EQ(paper, naive) << "paper vs naive, maxdist(x2)="
                          << opt.twice_maxdist;
}

// Sweep (seed, twice_maxdist) across tree families.
class MinerAgreement
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(MinerAgreement, UniformTrees) {
  auto [seed, twice_maxdist] = GetParam();
  Rng rng(seed);
  UniformTreeOptions opts;
  opts.tree_size = 80;
  opts.alphabet_size = 8;  // many repeated labels
  Tree t = GenerateUniformTree(opts, rng);
  MiningOptions mining;
  mining.twice_maxdist = twice_maxdist;
  ExpectAllMinersAgree(t, mining);
}

TEST_P(MinerAgreement, FanoutTrees) {
  auto [seed, twice_maxdist] = GetParam();
  Rng rng(seed + 500);
  FanoutTreeOptions opts;
  opts.tree_size = 120;
  opts.fanout = static_cast<int32_t>(2 + seed % 7);
  opts.alphabet_size = 10;
  Tree t = GenerateFanoutTree(opts, rng);
  MiningOptions mining;
  mining.twice_maxdist = twice_maxdist;
  ExpectAllMinersAgree(t, mining);
}

TEST_P(MinerAgreement, Phylogenies) {
  auto [seed, twice_maxdist] = GetParam();
  Rng rng(seed + 900);
  YulePhylogenyOptions opts;
  opts.min_nodes = 40;
  opts.max_nodes = 90;
  opts.alphabet_size = 30;  // small alphabet: repeated taxa across leaves
  Tree t = GenerateYulePhylogeny(opts, rng);
  MiningOptions mining;
  mining.twice_maxdist = twice_maxdist;
  ExpectAllMinersAgree(t, mining);
}

TEST_P(MinerAgreement, PartiallyLabeledTrees) {
  auto [seed, twice_maxdist] = GetParam();
  Rng rng(seed + 1300);
  UniformTreeOptions opts;
  opts.tree_size = 70;
  opts.alphabet_size = 6;
  opts.labeled_fraction = 0.5;
  Tree t = GenerateUniformTree(opts, rng);
  MiningOptions mining;
  mining.twice_maxdist = twice_maxdist;
  ExpectAllMinersAgree(t, mining);
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndMaxdist, MinerAgreement,
    ::testing::Combine(::testing::Range<uint64_t>(0, 8),
                       ::testing::Values(0, 1, 2, 3, 4, 6)));

/// Rebuilds `tree` with children attached in a seed-shuffled order.
Tree ShuffleSiblings(const Tree& tree, Rng& rng) {
  TreeBuilder b(tree.labels_ptr());
  struct Frame {
    NodeId orig;
    NodeId parent;
  };
  std::vector<Frame> stack = {{tree.root(), kNoNode}};
  while (!stack.empty()) {
    auto [orig, parent] = stack.back();
    stack.pop_back();
    NodeId copy = parent == kNoNode
                      ? b.AddRoot()
                      : b.AddChildWithLabelId(parent, tree.label(orig));
    if (parent == kNoNode && tree.has_label(orig)) {
      b.SetLabel(copy, tree.label_name(orig));
    }
    std::vector<NodeId> kids = tree.children(orig);
    for (size_t i = kids.size(); i > 1; --i) {
      std::swap(kids[i - 1], kids[rng.Uniform(i)]);
    }
    for (NodeId c : kids) stack.push_back({c, copy});
  }
  return std::move(b).Build();
}

class SiblingOrderInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SiblingOrderInvariance, MiningIgnoresSiblingOrder) {
  Rng rng(GetParam());
  UniformTreeOptions opts;
  opts.tree_size = 90;
  opts.alphabet_size = 9;
  Tree t = GenerateUniformTree(opts, rng);
  Tree shuffled = ShuffleSiblings(t, rng);
  MiningOptions mining;
  mining.twice_maxdist = 4;
  EXPECT_EQ(MineSingleTree(t, mining), MineSingleTree(shuffled, mining));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiblingOrderInvariance,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace cousins
