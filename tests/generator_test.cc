#include <gtest/gtest.h>

#include <set>

#include "gen/fanout_generator.h"
#include "gen/uniform_generator.h"
#include "gen/yule_generator.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(FanoutGeneratorTest, ExactSizeAndFanout) {
  Rng rng(1);
  FanoutTreeOptions opts;
  opts.tree_size = 31;  // complete 5-ary would be 1+5+25
  opts.fanout = 5;
  Tree t = GenerateFanoutTree(opts, rng);
  EXPECT_EQ(t.size(), 31);
  // Every internal node except possibly the last-filled has <= fanout
  // children; no node exceeds fanout.
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_LE(t.children(v).size(), 5u);
  }
}

TEST(FanoutGeneratorTest, SingleNode) {
  Rng rng(2);
  FanoutTreeOptions opts;
  opts.tree_size = 1;
  Tree t = GenerateFanoutTree(opts, rng);
  EXPECT_EQ(t.size(), 1);
  EXPECT_TRUE(t.is_leaf(0));
}

TEST(FanoutGeneratorTest, LabelsComeFromAlphabet) {
  Rng rng(3);
  FanoutTreeOptions opts;
  opts.tree_size = 200;
  opts.alphabet_size = 7;
  Tree t = GenerateFanoutTree(opts, rng);
  std::set<std::string> seen;
  for (NodeId v = 0; v < t.size(); ++v) {
    ASSERT_TRUE(t.has_label(v));
    seen.insert(t.label_name(v));
  }
  EXPECT_LE(seen.size(), 7u);
  EXPECT_GE(seen.size(), 5u);  // overwhelmingly likely
  for (const std::string& name : seen) {
    EXPECT_EQ(name[0], 'L');
  }
}

TEST(FanoutGeneratorTest, LabeledFractionZero) {
  Rng rng(4);
  FanoutTreeOptions opts;
  opts.tree_size = 50;
  opts.labeled_fraction = 0.0;
  Tree t = GenerateFanoutTree(opts, rng);
  for (NodeId v = 0; v < t.size(); ++v) EXPECT_FALSE(t.has_label(v));
}

TEST(FanoutGeneratorTest, BushyVsDeep) {
  Rng rng(5);
  FanoutTreeOptions opts;
  opts.tree_size = 200;
  opts.fanout = 2;
  const int32_t deep_height = GenerateFanoutTree(opts, rng).height();
  opts.fanout = 50;
  const int32_t bushy_height = GenerateFanoutTree(opts, rng).height();
  EXPECT_GT(deep_height, bushy_height);
}

TEST(FanoutGeneratorTest, DeterministicGivenSeed) {
  FanoutTreeOptions opts;
  Rng a(42);
  Rng b(42);
  Tree ta = GenerateFanoutTree(opts, a);
  Tree tb = GenerateFanoutTree(opts, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (NodeId v = 0; v < ta.size(); ++v) {
    EXPECT_EQ(ta.parent(v), tb.parent(v));
  }
}

TEST(UniformGeneratorTest, CorrectSizeAndValidity) {
  Rng rng(6);
  for (int32_t n : {1, 2, 3, 10, 100}) {
    UniformTreeOptions opts;
    opts.tree_size = n;
    Tree t = GenerateUniformTree(opts, rng);
    EXPECT_EQ(t.size(), n);
    for (NodeId v = 1; v < t.size(); ++v) EXPECT_LT(t.parent(v), v);
  }
}

TEST(UniformGeneratorTest, ShapesVary) {
  Rng rng(7);
  UniformTreeOptions opts;
  opts.tree_size = 50;
  std::set<int32_t> heights;
  for (int i = 0; i < 50; ++i) {
    heights.insert(GenerateUniformTree(opts, rng).height());
  }
  EXPECT_GT(heights.size(), 5u);  // samples many different shapes
}

TEST(YuleGeneratorTest, NodeCountWithinBounds) {
  Rng rng(8);
  YulePhylogenyOptions opts;
  for (int i = 0; i < 30; ++i) {
    Tree t = GenerateYulePhylogeny(opts, rng);
    EXPECT_GE(t.size(), opts.min_nodes);
    // A final multifurcation may overshoot by at most max_children - 1.
    EXPECT_LE(t.size(), opts.max_nodes + opts.max_children - 1);
  }
}

TEST(YuleGeneratorTest, InternalUnlabeledLeavesLabeled) {
  Rng rng(9);
  YulePhylogenyOptions opts;
  Tree t = GenerateYulePhylogeny(opts, rng);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.is_leaf(v)) {
      EXPECT_TRUE(t.has_label(v));
    } else {
      EXPECT_FALSE(t.has_label(v));
      EXPECT_GE(t.children(v).size(), 2u);
      EXPECT_LE(t.children(v).size(),
                static_cast<size_t>(opts.max_children));
    }
  }
}

TEST(YuleGeneratorTest, MostSpeciationsBinary) {
  Rng rng(10);
  YulePhylogenyOptions opts;
  int binary = 0;
  int internal = 0;
  for (int i = 0; i < 10; ++i) {
    Tree t = GenerateYulePhylogeny(opts, rng);
    for (NodeId v = 0; v < t.size(); ++v) {
      if (t.is_leaf(v)) continue;
      ++internal;
      binary += t.children(v).size() == 2;
    }
  }
  EXPECT_GT(binary, internal * 3 / 4);  // "most internal nodes have 2"
}

TEST(CoalescentTest, LeavesAreExactlyTheTaxa) {
  Rng rng(11);
  std::vector<std::string> taxa = MakeTaxa(16);
  Tree t = RandomCoalescentTree(taxa, rng);
  std::set<std::string> leaves;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.is_leaf(v)) {
      ASSERT_TRUE(t.has_label(v));
      leaves.insert(t.label_name(v));
    } else {
      EXPECT_EQ(t.children(v).size(), 2u);  // strictly binary
    }
  }
  EXPECT_EQ(leaves.size(), 16u);
  EXPECT_EQ(t.size(), 31);  // 2n-1 nodes for a binary tree on n leaves
}

TEST(CoalescentTest, SingleTaxon) {
  Rng rng(12);
  Tree t = RandomCoalescentTree({"only"}, rng);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.label_name(0), "only");
}

TEST(CoalescentTest, BranchLengthsPositive) {
  Rng rng(13);
  Tree t = RandomCoalescentTree(MakeTaxa(8), rng, nullptr, 0.2);
  for (NodeId v = 1; v < t.size(); ++v) {
    EXPECT_GT(t.branch_length(v), 0.0);
    EXPECT_LT(t.branch_length(v), 10.0);  // exp tail, sanity bound
  }
}

TEST(MakeTaxaTest, NamesAndCount) {
  std::vector<std::string> taxa = MakeTaxa(3);
  ASSERT_EQ(taxa.size(), 3u);
  EXPECT_EQ(taxa[0], "taxon0");
  EXPECT_EQ(taxa[2], "taxon2");
}

}  // namespace
}  // namespace cousins
