#include <gtest/gtest.h>

#include "freetree/free_tree.h"
#include "freetree/free_tree_mining.h"
#include "gen/uniform_generator.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

/// The Fig. 11-style example: a path a - b - c - d with a side leaf.
Result<FreeTree> PathWithLeaf() {
  auto labels = std::make_shared<LabelTable>();
  std::vector<LabelId> node_labels = {
      labels->Intern("a"), labels->Intern("b"), labels->Intern("c"),
      labels->Intern("d"), labels->Intern("e")};
  // a-b, b-c, c-d, b-e.
  return FreeTree::Create(node_labels, {{0, 1}, {1, 2}, {2, 3}, {1, 4}},
                          labels);
}

int64_t Occ(const FreeTree& g, const std::vector<CousinPairItem>& items,
            const std::string& a, const std::string& b, int twice_d) {
  LabelId la = g.labels().Find(a);
  LabelId lb = g.labels().Find(b);
  if (la > lb) std::swap(la, lb);
  for (const CousinPairItem& item : items) {
    if (item.label1 == la && item.label2 == lb &&
        item.twice_distance == twice_d) {
      return item.occurrences;
    }
  }
  return 0;
}

TEST(FreeTreeTest, CreateValidatesEdgeCount) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<LabelId> two = {labels->Intern("a"), labels->Intern("b")};
  EXPECT_FALSE(FreeTree::Create(two, {}, labels).ok());
  EXPECT_FALSE(
      FreeTree::Create(two, {{0, 1}, {0, 1}}, labels).ok());
  EXPECT_TRUE(FreeTree::Create(two, {{0, 1}}, labels).ok());
}

TEST(FreeTreeTest, CreateValidatesConnectivity) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<LabelId> four(4, kNoLabel);
  // 4 nodes, 3 edges, but one edge duplicated => disconnected.
  EXPECT_FALSE(
      FreeTree::Create(four, {{0, 1}, {0, 1}, {2, 3}}, labels).ok());
}

TEST(FreeTreeTest, CreateValidatesEndpoints) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<LabelId> two = {kNoLabel, kNoLabel};
  EXPECT_FALSE(FreeTree::Create(two, {{0, 2}}, labels).ok());
  EXPECT_FALSE(FreeTree::Create(two, {{0, 0}}, labels).ok());
  EXPECT_FALSE(FreeTree::Create({}, {}, labels).ok());
}

TEST(FreeTreeTest, FromRootedTreePreservesStructure) {
  Tree t = MustParse("((x,y)a,z)r;");
  FreeTree g = FreeTree::FromRootedTree(t);
  EXPECT_EQ(g.size(), t.size());
  EXPECT_EQ(g.edge_count(), t.size() - 1);
  // Root has degree 2 (child a, child z); a has degree 3.
  EXPECT_EQ(g.neighbors(0).size(), 2u);
}

TEST(FreeTreeTest, RootAtEdgeShape) {
  Result<FreeTree> g = PathWithLeaf();
  ASSERT_TRUE(g.ok());
  for (int32_t e = 0; e < g->edge_count(); ++e) {
    FreeTree::Rooted rooted = g->RootAtEdge(e);
    EXPECT_EQ(rooted.tree.size(), g->size() + 1);
    EXPECT_FALSE(rooted.tree.has_label(rooted.tree.root()));
    EXPECT_EQ(rooted.tree.children(rooted.tree.root()).size(), 2u);
    EXPECT_EQ(rooted.orig_id[rooted.tree.root()], -1);
    // Every free-tree node appears exactly once.
    std::vector<int> seen(g->size(), 0);
    for (NodeId v = 0; v < rooted.tree.size(); ++v) {
      if (rooted.orig_id[v] >= 0) ++seen[rooted.orig_id[v]];
      // Labels must match the mapped free-tree node.
      if (rooted.orig_id[v] >= 0) {
        EXPECT_EQ(rooted.tree.label(v), g->label(rooted.orig_id[v]));
      }
    }
    for (int count : seen) EXPECT_EQ(count, 1);
  }
}

TEST(FreeTreeMiningTest, PathDistances) {
  // Path a-b-c-d plus leaf e on b. Eq. (7): d = (#edges - 2) / 2.
  Result<FreeTree> g = PathWithLeaf();
  ASSERT_TRUE(g.ok());
  MiningOptions opt;
  opt.twice_maxdist = 4;
  auto items = MineFreeTreeBfs(*g, opt);
  // 2 edges apart: distance 0.
  EXPECT_EQ(Occ(*g, items, "a", "c", 0), 1);
  EXPECT_EQ(Occ(*g, items, "a", "e", 0), 1);
  EXPECT_EQ(Occ(*g, items, "c", "e", 0), 1);
  // 3 edges: 0.5.
  EXPECT_EQ(Occ(*g, items, "a", "d", 1), 1);
  EXPECT_EQ(Occ(*g, items, "d", "e", 1), 1);
  // Adjacent nodes are never cousins.
  EXPECT_EQ(Occ(*g, items, "a", "b", 0), 0);
  for (const CousinPairItem& item : items) {
    EXPECT_GE(item.twice_distance, 0);
  }
}

TEST(FreeTreeMiningTest, RootedAlgorithmMatchesBfs) {
  Result<FreeTree> g = PathWithLeaf();
  ASSERT_TRUE(g.ok());
  MiningOptions opt;
  opt.twice_maxdist = 6;
  auto bfs = MineFreeTreeBfs(*g, opt);
  for (int32_t e = 0; e < g->edge_count(); ++e) {
    EXPECT_EQ(MineFreeTree(*g, opt, e), bfs) << "rooted at edge " << e;
  }
}

TEST(FreeTreeMiningTest, SingleNodeAndSingleEdge) {
  auto labels = std::make_shared<LabelTable>();
  FreeTree one =
      FreeTree::Create({labels->Intern("a")}, {}, labels).value();
  EXPECT_TRUE(MineFreeTree(one).empty());
  EXPECT_TRUE(MineFreeTreeBfs(one).empty());
  FreeTree two = FreeTree::Create({labels->Intern("a"),
                                   labels->Intern("b")},
                                  {{0, 1}}, labels)
                     .value();
  // Two adjacent nodes: no cousin pairs.
  EXPECT_TRUE(MineFreeTree(two).empty());
  EXPECT_TRUE(MineFreeTreeBfs(two).empty());
}

class FreeTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FreeTreeProperty, RootEdgeChoiceIsIrrelevant) {
  Rng rng(GetParam());
  UniformTreeOptions opts;
  opts.tree_size = 40;
  opts.alphabet_size = 6;
  Tree t = GenerateUniformTree(opts, rng);
  FreeTree g = FreeTree::FromRootedTree(t);
  MiningOptions mining;
  mining.twice_maxdist = 4;
  auto reference = MineFreeTreeBfs(g, mining);
  for (int32_t e = 0; e < g.edge_count(); e += 3) {
    EXPECT_EQ(MineFreeTree(g, mining, e), reference)
        << "seed=" << GetParam() << " edge=" << e;
  }
}

TEST_P(FreeTreeProperty, MinOccurConsistent) {
  Rng rng(GetParam() + 77);
  UniformTreeOptions opts;
  opts.tree_size = 35;
  opts.alphabet_size = 4;
  Tree t = GenerateUniformTree(opts, rng);
  FreeTree g = FreeTree::FromRootedTree(t);
  MiningOptions strict;
  strict.twice_maxdist = 4;
  strict.min_occur = 3;
  MiningOptions loose = strict;
  loose.min_occur = 1;
  auto all = MineFreeTreeBfs(g, loose);
  auto filtered = MineFreeTreeBfs(g, strict);
  std::vector<CousinPairItem> expected;
  for (const CousinPairItem& item : all) {
    if (item.occurrences >= 3) expected.push_back(item);
  }
  EXPECT_EQ(filtered, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreeTreeProperty,
                         ::testing::Range<uint64_t>(0, 10));


TEST(MultipleFreeTreesTest, SupportCountsAcrossGraphs) {
  auto labels = std::make_shared<LabelTable>();
  // Three free trees; (a, c) at 2 edges (distance 0) in two of them.
  auto mk = [&](const char* newick) {
    return FreeTree::FromRootedTree(MustParse(newick, labels));
  };
  std::vector<FreeTree> graphs = {mk("((a)b,c)x;"), mk("(a,c)y;"),
                                  mk("((a)m)n;")};
  // Graph 1: path a-b-x-c: a..c = 3 edges -> 0.5; x labeled: a-x 2 edges.
  // Graph 2: a-y-c: 2 edges -> distance 0.
  MultiTreeMiningOptions opt;
  opt.min_support = 1;
  auto mined = MineMultipleFreeTrees(graphs, opt);
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  bool found_half = false;
  for (const FrequentCousinPair& p : *mined) {
    if (p.label1 == std::min(labels->Find("a"), labels->Find("c")) &&
        p.label2 == std::max(labels->Find("a"), labels->Find("c"))) {
      if (p.twice_distance == 1) {
        EXPECT_EQ(p.support, 1);  // graph 1 only
        found_half = true;
      }
      if (p.twice_distance == 0) {
        EXPECT_EQ(p.support, 1);  // graph 2
      }
    }
  }
  EXPECT_TRUE(found_half);
}

TEST(MultipleFreeTreesTest, IgnoreDistanceMergesAcrossDistances) {
  auto labels = std::make_shared<LabelTable>();
  auto mk = [&](const char* newick) {
    return FreeTree::FromRootedTree(MustParse(newick, labels));
  };
  std::vector<FreeTree> graphs = {mk("((a)b,c)x;"), mk("(a,c)y;")};
  MultiTreeMiningOptions opt;
  opt.min_support = 2;
  opt.ignore_distance = true;
  auto mined = MineMultipleFreeTrees(graphs, opt);
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  bool found = false;
  for (const FrequentCousinPair& p : *mined) {
    if (p.label1 == std::min(labels->Find("a"), labels->Find("c")) &&
        p.label2 == std::max(labels->Find("a"), labels->Find("c")) &&
        p.twice_distance == kAnyDistance) {
      EXPECT_EQ(p.support, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Regression: graphs over different label tables used to abort the
// process via COUSINS_CHECK; the pipeline surfaces kInvalidArgument.
TEST(MultipleFreeTreesTest, MixedLabelTablesIsInvalidArgumentNotAbort) {
  auto labels1 = std::make_shared<LabelTable>();
  auto labels2 = std::make_shared<LabelTable>();
  std::vector<FreeTree> graphs = {
      FreeTree::FromRootedTree(MustParse("(a,c)x;", labels1)),
      FreeTree::FromRootedTree(MustParse("(a,c)y;", labels2))};
  auto mined = MineMultipleFreeTrees(graphs);
  ASSERT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), StatusCode::kInvalidArgument);
}

// ToRootedTree must preserve pairwise path lengths (unlike RootAtEdge,
// which subdivides an edge), so the pipeline's free-tree variant sees
// the same distances as the BFS reference on the original graph.
TEST(FreeTreeTest, ToRootedTreePreservesDistances) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 1234);
    UniformTreeOptions opts;
    opts.tree_size = 24;
    opts.alphabet_size = 3;
    Tree t = GenerateUniformTree(opts, rng);
    FreeTree g = FreeTree::FromRootedTree(t);
    Tree rerooted = g.ToRootedTree();
    MiningOptions mopt;
    mopt.twice_maxdist = 6;
    auto expected = MineFreeTreeBfs(g, mopt);
    auto actual = MineFreeTreeBfs(FreeTree::FromRootedTree(rerooted), mopt);
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cousins
