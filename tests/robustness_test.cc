// Failure-injection / robustness tests: malformed input must come back
// as Status errors, never crashes or silent misparses.

#include <gtest/gtest.h>

#include <string>

#include "seq/alignment.h"
#include "tree/newick.h"
#include "tree/nexus.h"
#include "util/rng.h"

namespace cousins {
namespace {

// Random strings over Newick's structural alphabet: every outcome must
// be a clean ok/error, and ok outcomes must re-serialize and re-parse.
class NewickFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NewickFuzz, RandomStructuralStringsNeverCrash) {
  static constexpr char kAlphabet[] = "(),;:'ab1.- \t";
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < len; ++i) {
      input += kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
    }
    Result<Tree> parsed = ParseNewick(input);
    if (!parsed.ok()) continue;
    // Whatever parsed must survive a round trip.
    Result<Tree> again = ParseNewick(ToNewick(*parsed), parsed->labels_ptr());
    ASSERT_TRUE(again.ok()) << "input: " << input;
    EXPECT_EQ(again->size(), parsed->size()) << "input: " << input;
  }
}

TEST_P(NewickFuzz, TruncationsOfValidTreesNeverCrash) {
  const std::string valid =
      "(('Homo sapiens':0.1,Pan:0.2)hominini:0.3,(Gorilla,Pongo)x)r;";
  Rng rng(GetParam() + 99);
  for (size_t cut = 0; cut <= valid.size(); ++cut) {
    Result<Tree> parsed = ParseNewick(valid.substr(0, cut));
    // Either outcome is fine; no crash and no empty-success.
    if (parsed.ok()) {
      EXPECT_GT(parsed->size(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NewickFuzz, ::testing::Range<uint64_t>(0, 6));

TEST(NexusRobustnessTest, GarbageAndTruncations) {
  const std::string valid =
      "#NEXUS\nBEGIN TREES;\nTRANSLATE 1 a, 2 b;\nTREE t = (1,2);\nEND;\n";
  for (size_t cut = 0; cut <= valid.size(); cut += 3) {
    auto result = ParseNexusTrees(valid.substr(0, cut));
    if (result.ok()) {
      for (const NamedTree& nt : *result) EXPECT_GT(nt.tree.size(), 0);
    }
  }
  EXPECT_TRUE(ParseNexusTrees("BEGIN TREES; END; BEGIN TREES;").ok());
  EXPECT_FALSE(
      ParseNexusTrees("BEGIN TREES; TRANSLATE 1; TREE t=(1,2); END;").ok());
}

TEST(FastaRobustnessTest, Truncations) {
  const std::string valid = ">alpha\nACGTAC\n>beta\nTTGGCC\n";
  for (size_t cut = 0; cut <= valid.size(); ++cut) {
    auto result = ParseFasta(valid.substr(0, cut));
    if (result.ok()) {
      EXPECT_GE(result->num_taxa(), 0);
    }
  }
}

TEST(NewickRobustnessTest, DeepNestingDoesNotOverflow) {
  // 20k-deep nesting exercises the iterative/recursive paths. The
  // recursive-descent parser uses one stack frame per depth; 20k is
  // within any sane stack budget and documents the practical bound.
  const int depth = 20000;
  std::string input;
  for (int i = 0; i < depth; ++i) input += '(';
  input += 'a';
  for (int i = 0; i < depth; ++i) input += ')';
  input += ';';
  Result<Tree> parsed = ParseNewick(input);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), depth + 1);
  EXPECT_EQ(parsed->height(), depth);
}

TEST(NewickRobustnessTest, HugeBranchLengthAndWeirdNumbers) {
  EXPECT_TRUE(ParseNewick("(a:1e308,b:0.0);").ok());
  EXPECT_TRUE(ParseNewick("(a:-1,b:2);").ok());  // negative allowed
  EXPECT_FALSE(ParseNewick("(a:1e,b);").ok());
  EXPECT_FALSE(ParseNewick("(a:1..2,b);").ok());
}

}  // namespace
}  // namespace cousins
