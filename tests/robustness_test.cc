// Failure-injection / robustness tests: malformed input must come back
// as Status errors, never crashes or silent misparses.

#include <gtest/gtest.h>

#include <iterator>
#include <string>

#include "seq/alignment.h"
#include "tree/newick.h"
#include "tree/nexus.h"
#include "util/rng.h"

namespace cousins {
namespace {

// Random strings over Newick's structural alphabet: every outcome must
// be a clean ok/error, and ok outcomes must re-serialize and re-parse.
class NewickFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NewickFuzz, RandomStructuralStringsNeverCrash) {
  static constexpr char kAlphabet[] = "(),;:'ab1.- \t";
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < len; ++i) {
      input += kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
    }
    Result<Tree> parsed = ParseNewick(input);
    if (!parsed.ok()) continue;
    // Whatever parsed must survive a round trip.
    Result<Tree> again = ParseNewick(ToNewick(*parsed), parsed->labels_ptr());
    ASSERT_TRUE(again.ok()) << "input: " << input;
    EXPECT_EQ(again->size(), parsed->size()) << "input: " << input;
  }
}

TEST_P(NewickFuzz, TruncationsOfValidTreesNeverCrash) {
  const std::string valid =
      "(('Homo sapiens':0.1,Pan:0.2)hominini:0.3,(Gorilla,Pongo)x)r;";
  Rng rng(GetParam() + 99);
  for (size_t cut = 0; cut <= valid.size(); ++cut) {
    Result<Tree> parsed = ParseNewick(valid.substr(0, cut));
    // Either outcome is fine; no crash and no empty-success.
    if (parsed.ok()) {
      EXPECT_GT(parsed->size(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NewickFuzz, ::testing::Range<uint64_t>(0, 6));

TEST(NexusRobustnessTest, GarbageAndTruncations) {
  const std::string valid =
      "#NEXUS\nBEGIN TREES;\nTRANSLATE 1 a, 2 b;\nTREE t = (1,2);\nEND;\n";
  for (size_t cut = 0; cut <= valid.size(); cut += 3) {
    auto result = ParseNexusTrees(valid.substr(0, cut));
    if (result.ok()) {
      for (const NamedTree& nt : *result) EXPECT_GT(nt.tree.size(), 0);
    }
  }
  EXPECT_TRUE(ParseNexusTrees("BEGIN TREES; END; BEGIN TREES;").ok());
  EXPECT_FALSE(
      ParseNexusTrees("BEGIN TREES; TRANSLATE 1; TREE t=(1,2); END;").ok());
}

TEST(FastaRobustnessTest, Truncations) {
  const std::string valid = ">alpha\nACGTAC\n>beta\nTTGGCC\n";
  for (size_t cut = 0; cut <= valid.size(); ++cut) {
    auto result = ParseFasta(valid.substr(0, cut));
    if (result.ok()) {
      EXPECT_GE(result->num_taxa(), 0);
    }
  }
}

// Random strings over the NEXUS structural alphabet, including the
// tokens the statement splitter keys on — every outcome must be a
// clean ok/error, and parsed trees must be non-empty.
class NexusFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NexusFuzz, RandomStructuralStringsNeverCrash) {
  static const char* kTokens[] = {
      "#NEXUS",    "BEGIN",  "TREES", ";",  "TRANSLATE", "TREE",
      "END",       "=",      "(",     ")",  ",",         "'",
      "[",         "]",      "a",     "1",  ":0.5",      "\n",
      " ",         "t"};
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < len; ++i) {
      input += kTokens[rng.Uniform(std::size(kTokens))];
    }
    auto result = ParseNexusTrees(input);
    if (!result.ok()) continue;
    for (const NamedTree& nt : *result) EXPECT_GT(nt.tree.size(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NexusFuzz, ::testing::Range<uint64_t>(0, 6));

TEST(ParseLimitsTest, HostileNestingIsARefusalNotACrash) {
  // 100k-deep nesting is over the default depth cap; the limit must
  // refuse it with a clean trip status (and the explicit-stack parser
  // must not touch the machine stack getting there).
  const int depth = 100000;
  std::string input;
  input.reserve(2 * depth + 2);
  for (int i = 0; i < depth; ++i) input += '(';
  input += 'a';
  for (int i = 0; i < depth; ++i) input += ')';
  input += ';';
  Result<Tree> parsed = ParseNewick(input);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed.status().message().find("depth"), std::string::npos);
}

TEST(ParseLimitsTest, MultiMegabyteLabelIsRefused) {
  const std::string label(8 << 20, 'x');  // 8 MiB, far over the 64 KiB cap
  {
    Result<Tree> parsed = ParseNewick("(" + label + ",b);");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  }
  {
    Result<Tree> parsed = ParseNewick("('" + label + "',b);");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  }
  // NEXUS TRANSLATE names go through the same cap.
  auto nexus = ParseNexusTrees("#NEXUS\nBEGIN TREES;\nTRANSLATE 1 " + label +
                               ";\nTREE t = (1,2);\nEND;\n");
  ASSERT_FALSE(nexus.ok());
  EXPECT_EQ(nexus.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParseLimitsTest, CustomLimitsAreHonored) {
  ParseLimits tight;
  tight.max_nodes = 3;
  EXPECT_TRUE(ParseNewick("(a,b);", nullptr, tight).ok());
  Result<Tree> too_many = ParseNewick("(a,b,c,d);", nullptr, tight);
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kResourceExhausted);

  ParseLimits small_input;
  small_input.max_input_bytes = 4;
  EXPECT_EQ(ParseNewick("(a,b);", nullptr, small_input).status().code(),
            StatusCode::kResourceExhausted);

  // Unlimited() restores pre-limit behavior for trusted inputs.
  EXPECT_TRUE(ParseNewick("(a,b,c,d);", nullptr, ParseLimits::Unlimited())
                  .ok());
}

TEST(ParseLimitsTest, UnterminatedCommentsAndQuotesAreErrors) {
  EXPECT_FALSE(ParseNewick("(a,b[unclosed comment);").ok());
  EXPECT_FALSE(ParseNewick("(a,'unclosed quote);").ok());
  auto nexus = ParseNexusTrees(
      "#NEXUS\nBEGIN TREES;\nTREE t = (a,b); [never closed\nEND;\n");
  ASSERT_FALSE(nexus.ok());
  EXPECT_NE(nexus.status().message().find("unterminated"),
            std::string::npos);
}

TEST(NewickForestTest, QuotedSemicolonDoesNotShearATree) {
  // A quoted taxon containing ';' must not split the forest there.
  auto forest = ParseNewickForest("('a;b',c);\n(d,e);\n");
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->size(), 2u);
  const Tree& first = (*forest)[0];
  bool found = false;
  for (NodeId v = 0; v < first.size(); ++v) {
    if (first.has_label(v) && first.label_name(v) == "a;b") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NewickForestTest, QuotedNewlineAndHashSurviveSplitting) {
  // '\n' inside a quoted label must not end the "line" for comment
  // stripping, and '#' inside quotes must not start a comment.
  auto forest = ParseNewickForest("# real comment\n('x\ny',c);\n('#not',d);");
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->size(), 2u);
  bool found_newline = false;
  bool found_hash = false;
  for (const Tree& tree : *forest) {
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (!tree.has_label(v)) continue;
      if (tree.label_name(v) == "x\ny") found_newline = true;
      if (tree.label_name(v) == "#not") found_hash = true;
    }
  }
  EXPECT_TRUE(found_newline);
  EXPECT_TRUE(found_hash);
}

TEST(NewickRobustnessTest, DeepNestingDoesNotOverflow) {
  // 20k-deep nesting must parse fine: the parser keeps its nesting
  // stack on the heap, so depth is bounded only by ParseLimits
  // (default 24,000), never by the machine stack — even under
  // sanitizers, whose frames are several times larger.
  const int depth = 20000;
  std::string input;
  for (int i = 0; i < depth; ++i) input += '(';
  input += 'a';
  for (int i = 0; i < depth; ++i) input += ')';
  input += ';';
  Result<Tree> parsed = ParseNewick(input);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), depth + 1);
  EXPECT_EQ(parsed->height(), depth);
}

TEST(NewickRobustnessTest, HugeBranchLengthAndWeirdNumbers) {
  EXPECT_TRUE(ParseNewick("(a:1e308,b:0.0);").ok());
  EXPECT_TRUE(ParseNewick("(a:-1,b:2);").ok());  // negative allowed
  EXPECT_FALSE(ParseNewick("(a:1e,b);").ok());
  EXPECT_FALSE(ParseNewick("(a:1..2,b);").ok());
}

}  // namespace
}  // namespace cousins
