// Multi-process mining subsystem (src/proc/): shard plans whose
// windowed parse is observationally identical to the sequential
// lenient parse, the CRC-framed crash-safe lease journal, lease-expiry
// boundary timing on a fake clock, and the fork/supervise/merge
// pipeline — clean runs, injected worker kills/stalls/crashes, resume
// from a completed journal, and a mini fault sweep over every
// parent-visible proc.* site.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"
#include "core/multi_tree_mining.h"
#include "core/quarantine.h"
#include "proc/lease_ledger.h"
#include "proc/shard_plan.h"
#include "proc/supervisor.h"
#include "tree/newick.h"
#include "tree/parse_limits.h"
#include "util/fault_injection.h"
#include "util/governance.h"

namespace cousins::proc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cousins_proc_" + name;
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good());
}

void AppendRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
  ASSERT_TRUE(out.good());
}

// ---------------------------------------------------------------------
// Shard plan: windowed parse over the plan == sequential lenient parse.
// ---------------------------------------------------------------------

/// Adversarial forest: quoted ';' and '#' that must not be treated as
/// entry/comment markers, comment lines, CRLF and LF line endings,
/// blank lines, an entry spanning multiple lines, malformed entries,
/// and a final entry without a trailing newline.
std::string AdversarialForest() {
  return
      "# leading comment with ; and ( and '\r\n"
      "('a;x',b)r;\r\n"
      "\r\n"
      "('q#y',c);\n"
      "(a,\n"
      "   (b,c));\n"
      "# comment between entries; (((\n"
      "((broken;\n"
      "   \n"
      "(d,'e;;#f');\r\n"
      ")(also broken;\n"
      "(g,h);";
}

struct WindowedParse {
  std::vector<std::string> trees;  // ToNewick renderings
  std::vector<int64_t> indices;
  std::vector<ForestEntryError> errors;
  std::shared_ptr<LabelTable> labels;
};

/// Parses every shard of `plan` in shard order through the windowed
/// parser, sharing one label table across shards (the sequential
/// intern order the supervisor's merge reproduces).
WindowedParse ParseViaWindows(const std::string& text,
                              const ShardPlan& plan) {
  WindowedParse out;
  out.labels = std::make_shared<LabelTable>();
  for (const ForestShard& shard : plan.shards) {
    std::vector<ForestEntryError> errors;
    const Status st = ParseNewickForestWindow(
        std::string_view(text).substr(shard.byte_begin,
                                      shard.byte_end - shard.byte_begin),
        shard.origin(), out.labels, ParseLimits(),
        [&](Tree tree, int64_t index) -> Status {
          out.trees.push_back(ToNewick(tree));
          out.indices.push_back(index);
          return Status::OK();
        },
        &errors);
    EXPECT_TRUE(st.ok()) << st.ToString();
    for (ForestEntryError& error : errors) {
      out.errors.push_back(std::move(error));
    }
    // Per-shard entry accounting: trees + errors so far == the plan's
    // running entry tally.
    EXPECT_EQ(static_cast<int64_t>(out.trees.size()) +
                  static_cast<int64_t>(out.errors.size()),
              shard.entry_begin + shard.entry_count)
        << "shard " << shard.id << " entry accounting";
  }
  return out;
}

void ExpectPlanEquivalence(const std::string& text, int64_t target_bytes,
                           int64_t min_shards) {
  auto seq_labels = std::make_shared<LabelTable>();
  Result<LenientForest> seq = ParseNewickForestLenient(text, seq_labels);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  ShardPlanOptions options;
  options.target_shard_bytes = target_bytes;
  options.min_shards = min_shards;
  const ShardPlan plan = BuildShardPlan(text, options);

  // Coverage invariants: contiguous, gap-free, whole-file.
  ASSERT_FALSE(plan.shards.empty());
  EXPECT_EQ(plan.shards.front().byte_begin, 0u);
  EXPECT_EQ(plan.shards.back().byte_end, text.size());
  for (size_t i = 1; i < plan.shards.size(); ++i) {
    EXPECT_EQ(plan.shards[i].byte_begin, plan.shards[i - 1].byte_end);
    EXPECT_LT(plan.shards[i].byte_begin, plan.shards[i].byte_end);
  }

  const WindowedParse win = ParseViaWindows(text, plan);

  ASSERT_EQ(win.trees.size(), seq->trees.size());
  for (size_t i = 0; i < win.trees.size(); ++i) {
    EXPECT_EQ(win.trees[i], ToNewick(seq->trees[i])) << "tree " << i;
  }
  EXPECT_EQ(win.indices, seq->source_indices);

  ASSERT_EQ(win.errors.size(), seq->errors.size());
  for (size_t i = 0; i < win.errors.size(); ++i) {
    const ForestEntryError& w = win.errors[i];
    const ForestEntryError& s = seq->errors[i];
    EXPECT_EQ(w.tree_index, s.tree_index) << "error " << i;
    EXPECT_EQ(w.byte_offset, s.byte_offset) << "error " << i;
    EXPECT_EQ(w.line, s.line) << "error " << i;
    EXPECT_EQ(w.column, s.column) << "error " << i;
    EXPECT_EQ(w.status.code(), s.status.code()) << "error " << i;
    EXPECT_EQ(w.status.message(), s.status.message()) << "error " << i;
    EXPECT_EQ(w.snippet, s.snippet) << "error " << i;
  }

  // Same labels interned in the same order.
  ASSERT_EQ(win.labels->size(), seq_labels->size());
  for (size_t id = 0; id < win.labels->size(); ++id) {
    EXPECT_EQ(win.labels->Name(static_cast<LabelId>(id)),
              seq_labels->Name(static_cast<LabelId>(id)));
  }
}

TEST(ShardPlanTest, FinestGrainedPlanReproducesSequentialParse) {
  // target_shard_bytes=1 cuts at every eligible point — the maximally
  // adversarial plan.
  ExpectPlanEquivalence(AdversarialForest(), /*target_bytes=*/1,
                        /*min_shards=*/1);
}

TEST(ShardPlanTest, CoarsePlansReproduceSequentialParse) {
  ExpectPlanEquivalence(AdversarialForest(), /*target_bytes=*/40,
                        /*min_shards=*/1);
  ExpectPlanEquivalence(AdversarialForest(), /*target_bytes=*/0,
                        /*min_shards=*/4);
}

TEST(ShardPlanTest, SingleShardPlanIsTheWholeFile) {
  const std::string text = "(a,b);\n(c,d);\n";
  ShardPlanOptions options;  // default 4 MiB target
  const ShardPlan plan = BuildShardPlan(text, options);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].byte_begin, 0u);
  EXPECT_EQ(plan.shards[0].byte_end, text.size());
  EXPECT_EQ(plan.shards[0].entry_count, 2);
  EXPECT_EQ(plan.total_entries, 2);
}

TEST(ShardPlanTest, FingerprintCoversGeometry) {
  const std::string text = AdversarialForest();
  ShardPlanOptions a;
  a.target_shard_bytes = 1;
  ShardPlanOptions b;
  b.target_shard_bytes = 40;
  const ShardPlan plan_a = BuildShardPlan(text, a);
  const ShardPlan plan_b = BuildShardPlan(text, b);
  EXPECT_EQ(plan_a.fingerprint, BuildShardPlan(text, a).fingerprint);
  EXPECT_NE(plan_a.fingerprint, plan_b.fingerprint);
}

// ---------------------------------------------------------------------
// Lease journal: round-trip, torn tails, corruption, valid_prefix.
// ---------------------------------------------------------------------

TEST(LeaseJournalTest, RoundTripsEveryRecordKind) {
  const std::string path = TempPath("journal_roundtrip");
  {
    Result<LeaseJournal> journal = LeaseJournal::Open(path, true);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendPlan(0xDEADBEEF, 1024, 4, 17).ok());
    ASSERT_TRUE(journal->AppendGrant(2, 1, 4242).ok());
    ASSERT_TRUE(journal->AppendBeat(2, 64).ok());
    ASSERT_TRUE(journal->AppendDone(2, 130).ok());
    ASSERT_TRUE(journal->AppendRevoke(3).ok());
  }
  size_t valid_prefix = 0;
  Result<std::vector<LeaseRecord>> records =
      ReplayLeaseJournal(path, &valid_prefix);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ((*records)[0].kind, LeaseRecord::Kind::kPlan);
  EXPECT_EQ((*records)[0].a, 0xDEADBEEF);
  EXPECT_EQ((*records)[0].b, 1024);
  EXPECT_EQ((*records)[0].c, 4);
  EXPECT_EQ((*records)[0].d, 17);
  EXPECT_EQ((*records)[1].kind, LeaseRecord::Kind::kGrant);
  EXPECT_EQ((*records)[1].shard, 2);
  EXPECT_EQ((*records)[1].a, 1);
  EXPECT_EQ((*records)[1].b, 4242);
  EXPECT_EQ((*records)[2].kind, LeaseRecord::Kind::kBeat);
  EXPECT_EQ((*records)[3].kind, LeaseRecord::Kind::kDone);
  EXPECT_EQ((*records)[3].a, 130);
  EXPECT_EQ((*records)[4].kind, LeaseRecord::Kind::kRevoke);
  EXPECT_EQ((*records)[4].shard, 3);
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(valid_prefix, bytes->size());
}

TEST(LeaseJournalTest, UnterminatedTailIsDroppedWithShorterValidPrefix) {
  const std::string path = TempPath("journal_torn");
  {
    Result<LeaseJournal> journal = LeaseJournal::Open(path, true);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendPlan(1, 2, 3, 4).ok());
    ASSERT_TRUE(journal->AppendDone(0, 9).ok());
  }
  Result<std::string> before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());
  // A crash mid-append leaves an unterminated fragment.
  AppendRaw(path, "DONE 1 9 #deadbe");
  size_t valid_prefix = 0;
  Result<std::vector<LeaseRecord>> records =
      ReplayLeaseJournal(path, &valid_prefix);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 2u);
  EXPECT_EQ(valid_prefix, before->size());
}

TEST(LeaseJournalTest, CorruptTerminatedFinalLineIsATornTail) {
  const std::string path = TempPath("journal_badfinal");
  {
    Result<LeaseJournal> journal = LeaseJournal::Open(path, true);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendPlan(1, 2, 3, 4).ok());
  }
  Result<std::string> before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());
  AppendRaw(path, "DONE 1 9 #00000000\n");  // wrong CRC, terminated
  size_t valid_prefix = 0;
  Result<std::vector<LeaseRecord>> records =
      ReplayLeaseJournal(path, &valid_prefix);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 1u);
  EXPECT_EQ(valid_prefix, before->size());
}

TEST(LeaseJournalTest, MidFileCorruptionIsAHardError) {
  const std::string path = TempPath("journal_midfile");
  {
    Result<LeaseJournal> journal = LeaseJournal::Open(path, true);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendPlan(1, 2, 3, 4).ok());
  }
  AppendRaw(path, "GRANT zap #ffffffff\n");
  {
    Result<LeaseJournal> journal = LeaseJournal::Open(path, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendDone(0, 5).ok());
  }
  Result<std::vector<LeaseRecord>> records = ReplayLeaseJournal(path);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
}

TEST(LeaseJournalTest, MissingJournalIsNotFound) {
  Result<std::vector<LeaseRecord>> records =
      ReplayLeaseJournal(TempPath("journal_missing_nonexistent"));
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kNotFound);
}

TEST(LeaseRecordLineTest, RejectsTamperedFrames) {
  LeaseRecord record;
  EXPECT_FALSE(ParseLeaseRecordLine("", &record));
  EXPECT_FALSE(ParseLeaseRecordLine("DONE 1 2", &record));  // no CRC
  EXPECT_FALSE(ParseLeaseRecordLine("DONE 1 2 #zzzzzzzz", &record));
  EXPECT_FALSE(ParseLeaseRecordLine("DONE 1 #00000000", &record));
  EXPECT_FALSE(ParseLeaseRecordLine("NOPE 1 2 #00000000", &record));
  // A genuine frame survives…
  const std::string path = TempPath("journal_oneline");
  {
    Result<LeaseJournal> journal = LeaseJournal::Open(path, true);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendDone(7, 8).ok());
  }
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string line = *bytes;
  ASSERT_FALSE(line.empty());
  line.pop_back();  // strip '\n'
  EXPECT_TRUE(ParseLeaseRecordLine(line, &record));
  EXPECT_EQ(record.kind, LeaseRecord::Kind::kDone);
  EXPECT_EQ(record.shard, 7);
  // …and flipping one payload byte kills it.
  std::string flipped = line;
  flipped[5] ^= 1;
  EXPECT_FALSE(ParseLeaseRecordLine(flipped, &record));
}

// ---------------------------------------------------------------------
// Lease expiry boundaries on a fake clock — no sleeping.
// ---------------------------------------------------------------------

TEST(LeaseTableTest, ExpiryIsStrictlyGreaterThanTimeout) {
  using std::chrono::milliseconds;
  const LeaseTable::TimePoint t0 =
      LeaseTable::TimePoint{} + milliseconds(1'000'000);
  LeaseTable table;
  table.Grant(7, /*slot=*/1, t0);
  ASSERT_TRUE(table.held(7));
  EXPECT_EQ(table.holder(7), 1);
  const milliseconds timeout(100);
  // Just under and exactly at the threshold: still live.
  EXPECT_TRUE(table.Expired(t0 + milliseconds(99), timeout).empty());
  EXPECT_TRUE(table.Expired(t0 + milliseconds(100), timeout).empty());
  // One past: expired.
  const std::vector<int64_t> expired =
      table.Expired(t0 + milliseconds(101), timeout);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 7);
}

TEST(LeaseTableTest, BeatResetsTheExpiryWindow) {
  using std::chrono::milliseconds;
  const LeaseTable::TimePoint t0 =
      LeaseTable::TimePoint{} + milliseconds(5'000'000);
  LeaseTable table;
  table.Grant(3, 0, t0);
  table.Beat(3, t0 + milliseconds(80));
  const milliseconds timeout(100);
  EXPECT_TRUE(table.Expired(t0 + milliseconds(180), timeout).empty());
  EXPECT_EQ(table.Expired(t0 + milliseconds(181), timeout).size(), 1u);
}

TEST(LeaseTableTest, BeatOnUnleasedShardIsIgnoredAndReleaseDrops) {
  using std::chrono::milliseconds;
  const LeaseTable::TimePoint t0 =
      LeaseTable::TimePoint{} + milliseconds(1000);
  LeaseTable table;
  table.Beat(9, t0);  // late heartbeat of a revoked lease: no-op
  EXPECT_FALSE(table.held(9));
  EXPECT_EQ(table.holder(9), -1);
  EXPECT_EQ(table.size(), 0u);
  table.Grant(9, 2, t0);
  EXPECT_EQ(table.size(), 1u);
  table.Release(9);
  EXPECT_FALSE(table.held(9));
  EXPECT_TRUE(table.Expired(t0 + milliseconds(10'000), milliseconds(1))
                  .empty());
}

TEST(LeaseTableTest, ExpiredReportsAllStaleLeasesSorted) {
  using std::chrono::milliseconds;
  const LeaseTable::TimePoint t0 =
      LeaseTable::TimePoint{} + milliseconds(1000);
  LeaseTable table;
  table.Grant(5, 0, t0);
  table.Grant(1, 1, t0);
  table.Grant(3, 2, t0 + milliseconds(500));  // still fresh
  const std::vector<int64_t> expired =
      table.Expired(t0 + milliseconds(600), milliseconds(100));
  EXPECT_EQ(expired, (std::vector<int64_t>{1, 5}));
}

// ---------------------------------------------------------------------
// Supervisor end-to-end (in-process; workers are forked children of
// the test binary and only ever leave via _exit).
// ---------------------------------------------------------------------

/// A deterministic forest over a small alphabet, with `dirty`
/// controlling whether malformed entries and comment noise are mixed
/// in (for lenient runs).
std::string BuildForest(int entries, bool dirty) {
  std::string text;
  for (int i = 0; i < entries; ++i) {
    if (dirty && i % 17 == 5) {
      text += "((unbalanced;\n";
      continue;
    }
    if (dirty && i % 23 == 7) {
      text += "# interleaved comment ;((\n";
    }
    const int a = i % 7;
    const int b = (i * 3 + 1) % 7;
    const int c = (i * 5 + 2) % 7;
    text += "(L" + std::to_string(a) + ",(L" + std::to_string(b) + ",L" +
            std::to_string(c) + "));";
    text += (dirty && i % 11 == 3) ? "\r\n" : "\n";
  }
  return text;
}

struct SequentialReference {
  std::string checkpoint_bytes;
  std::vector<FrequentCousinPair> pairs;
  int tree_count = 0;
  size_t quarantined = 0;
};

/// The sequential lenient pipeline the multi-process run must
/// reproduce byte for byte: one label table over the whole file,
/// parse-stage quarantines from the lenient parse, mining-stage
/// quarantines from AddTreeDegraded, one final checkpoint.
SequentialReference MineSequentially(const std::string& text,
                                     const std::string& source_name,
                                     const MultiTreeMiningOptions& options,
                                     bool lenient) {
  SequentialReference out;
  auto labels = std::make_shared<LabelTable>();
  MultiTreeMiner miner(options);
  miner.BindLabels(labels);
  QuarantineLedger ledger;
  if (lenient) {
    Result<LenientForest> forest = ParseNewickForestLenient(text, labels);
    EXPECT_TRUE(forest.ok());
    for (const ForestEntryError& error : forest->errors) {
      QuarantineParseError(source_name, error, &ledger);
    }
    DegradedModeConfig degraded;
    degraded.lenient = true;
    degraded.ledger = &ledger;
    degraded.source_name = source_name;
    for (size_t i = 0; i < forest->trees.size(); ++i) {
      EXPECT_TRUE(miner
                      .AddTreeDegraded(forest->trees[i],
                                       forest->source_indices[i],
                                       MiningContext::Unlimited(), degraded)
                      .ok());
    }
  } else {
    Result<std::vector<Tree>> trees = ParseNewickForest(text, labels);
    EXPECT_TRUE(trees.ok());
    for (const Tree& tree : *trees) miner.AddTree(tree);
  }
  out.checkpoint_bytes =
      miner.SerializeCheckpoint(ledger.empty() ? nullptr : &ledger);
  out.pairs = miner.FrequentPairs();
  out.tree_count = miner.tree_count();
  out.quarantined = ledger.size();
  return out;
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }

  /// Baseline proc options over a fresh checkpoint path. Scrubs any
  /// checkpoint/journal/snapshot left at the same path by a previous
  /// test-binary invocation (TempDir is stable across runs), so tests
  /// that depend on the journal's absence stay hermetic.
  MultiProcessOptions ProcOptions(const std::string& tag, int workers) {
    MultiProcessOptions proc;
    proc.workers = workers;
    proc.checkpoint_path = TempPath(tag + ".ckpt");
    proc.min_shards = 6;
    std::remove(proc.checkpoint_path.c_str());
    const std::string journal = LeaseJournalPath(proc.checkpoint_path);
    std::remove(journal.c_str());
    for (int shard = 0; shard < 64; ++shard) {
      std::remove(ShardSnapshotPath(journal, shard).c_str());
    }
    return proc;
  }

  /// Asserts `run` reproduced the sequential reference bit for bit:
  /// frequent pairs, tree count, and the final checkpoint file.
  void ExpectMatchesSequential(const MultiProcessRun& run,
                               const MultiProcessOptions& proc,
                               const SequentialReference& seq) {
    EXPECT_EQ(run.mining.pairs, seq.pairs);
    EXPECT_EQ(run.mining.trees_processed, seq.tree_count);
    Result<std::string> final_bytes =
        ReadFileToString(proc.checkpoint_path);
    ASSERT_TRUE(final_bytes.ok());
    EXPECT_EQ(*final_bytes, seq.checkpoint_bytes);
  }
};

TEST_F(SupervisorTest, CleanStrictRunMatchesSequentialByteForByte) {
  const std::string text = BuildForest(120, /*dirty=*/false);
  const std::string forest_path = TempPath("clean.nwk");
  WriteFile(forest_path, text);
  MultiTreeMiningOptions options;
  const SequentialReference seq =
      MineSequentially(text, forest_path, options, /*lenient=*/false);

  const MultiProcessOptions proc = ProcOptions("clean", 3);
  Result<MultiProcessRun> run =
      MineForestMultiProcess(forest_path, options, proc, nullptr);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectMatchesSequential(*run, proc, seq);
  EXPECT_GE(run->shards_total, 6);
  EXPECT_EQ(run->workers_died, 0);
  EXPECT_EQ(run->leases_reissued, 0);
  EXPECT_GT(run->rss_peak_kb, 0);
  // Every shard was mined by exactly one worker slot.
  int64_t mined = 0;
  for (const WorkerReport& worker : run->workers) {
    EXPECT_EQ(worker.exit_code, 0);
    EXPECT_EQ(worker.term_signal, 0);
    EXPECT_EQ(worker.restarts, 0);
    mined += static_cast<int64_t>(worker.shards_mined.size());
  }
  EXPECT_EQ(mined, run->shards_total);
}

TEST_F(SupervisorTest, DirtyLenientRunMatchesSequentialLedgerAndBytes) {
  const std::string text = BuildForest(150, /*dirty=*/true);
  const std::string forest_path = TempPath("dirty.nwk");
  WriteFile(forest_path, text);
  MultiTreeMiningOptions options;
  const SequentialReference seq =
      MineSequentially(text, forest_path, options, /*lenient=*/true);
  ASSERT_GT(seq.quarantined, 0u);

  MultiProcessOptions proc = ProcOptions("dirty", 3);
  proc.lenient = true;
  proc.source_name = forest_path;
  QuarantineLedger ledger;
  Result<MultiProcessRun> run =
      MineForestMultiProcess(forest_path, options, proc, &ledger);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectMatchesSequential(*run, proc, seq);
  EXPECT_EQ(ledger.size(), seq.quarantined);
}

TEST_F(SupervisorTest, KilledWorkerIsReapedAndItsShardReissued) {
  const std::string text = BuildForest(120, /*dirty=*/false);
  const std::string forest_path = TempPath("killed.nwk");
  WriteFile(forest_path, text);
  MultiTreeMiningOptions options;
  const SequentialReference seq =
      MineSequentially(text, forest_path, options, /*lenient=*/false);

  fault::FaultRegistry::Global().Arm("proc.kill_worker", 1);
  const MultiProcessOptions proc = ProcOptions("killed", 3);
  Result<MultiProcessRun> run =
      MineForestMultiProcess(forest_path, options, proc, nullptr);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectMatchesSequential(*run, proc, seq);
  EXPECT_GE(run->workers_died, 1);
  EXPECT_GE(run->leases_reissued, 1);
  bool some_sigkill = false;
  bool some_restart = false;
  for (const WorkerReport& worker : run->workers) {
    some_sigkill |= worker.term_signal == SIGKILL;
    some_restart |= worker.restarts > 0;
  }
  // The victim's slot was respawned (it died long before shutdown), so
  // its final incarnation exits cleanly — the restart count and death
  // tally carry the evidence.
  EXPECT_TRUE(some_restart || some_sigkill);
}

TEST_F(SupervisorTest, StalledWorkerIsRecoveredByLeaseExpiry) {
  const std::string text = BuildForest(120, /*dirty=*/false);
  const std::string forest_path = TempPath("stalled.nwk");
  WriteFile(forest_path, text);
  MultiTreeMiningOptions options;
  const SequentialReference seq =
      MineSequentially(text, forest_path, options, /*lenient=*/false);

  fault::FaultRegistry::Global().Arm("proc.stop_worker", 1);
  MultiProcessOptions proc = ProcOptions("stalled", 3);
  // Short lease so the drill detects the SIGSTOP'd worker quickly;
  // healthy workers heartbeat every lease_timeout/4.
  proc.lease_timeout = std::chrono::milliseconds(300);
  Result<MultiProcessRun> run =
      MineForestMultiProcess(forest_path, options, proc, nullptr);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectMatchesSequential(*run, proc, seq);
  EXPECT_GE(run->workers_died, 1);
  EXPECT_GE(run->leases_reissued, 1);
}

TEST_F(SupervisorTest, CrashLoopingWorkersExhaustTheRespawnBudget) {
  const std::string text = BuildForest(60, /*dirty=*/false);
  const std::string forest_path = TempPath("crashloop.nwk");
  WriteFile(forest_path, text);
  // Children inherit the armed registry across fork, so EVERY worker
  // (original and respawned) crashes on its first work item.
  fault::FaultRegistry::Global().Arm("proc.worker.crash", 1);
  MultiProcessOptions proc = ProcOptions("crashloop", 2);
  proc.max_respawns = 3;
  MultiTreeMiningOptions options;
  Result<MultiProcessRun> run =
      MineForestMultiProcess(forest_path, options, proc, nullptr);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("respawn"), std::string::npos)
      << run.status().ToString();
}

TEST_F(SupervisorTest, ResumeReadoptsCompletedShardsWithoutRemining) {
  const std::string text = BuildForest(120, /*dirty=*/false);
  const std::string forest_path = TempPath("resume.nwk");
  WriteFile(forest_path, text);
  MultiTreeMiningOptions options;
  const SequentialReference seq =
      MineSequentially(text, forest_path, options, /*lenient=*/false);

  const MultiProcessOptions first = ProcOptions("resume", 3);
  Result<MultiProcessRun> run1 =
      MineForestMultiProcess(forest_path, options, first, nullptr);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();

  // Resume over the completed journal: every DONE shard readopts from
  // its validating snapshot; nothing is re-mined, outputs re-merge to
  // the same bytes.
  MultiProcessOptions second = first;
  second.resume = true;
  Result<MultiProcessRun> run2 =
      MineForestMultiProcess(forest_path, options, second, nullptr);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  ExpectMatchesSequential(*run2, second, seq);
  EXPECT_EQ(run2->shards_recovered, run2->shards_total);
  EXPECT_EQ(run2->leases_reissued, 0);

  // A torn tail on the journal (crash artifact) must not break resume.
  AppendRaw(LeaseJournalPath(second.checkpoint_path), "GRANT 0 0 99");
  Result<MultiProcessRun> run3 =
      MineForestMultiProcess(forest_path, options, second, nullptr);
  ASSERT_TRUE(run3.ok()) << run3.status().ToString();
  ExpectMatchesSequential(*run3, second, seq);
}

TEST_F(SupervisorTest, ResumeRefusesAChangedForest) {
  const std::string forest_path = TempPath("changed.nwk");
  WriteFile(forest_path, BuildForest(80, /*dirty=*/false));
  MultiTreeMiningOptions options;
  const MultiProcessOptions first = ProcOptions("changed", 2);
  Result<MultiProcessRun> run1 =
      MineForestMultiProcess(forest_path, options, first, nullptr);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();

  WriteFile(forest_path, BuildForest(81, /*dirty=*/false));
  MultiProcessOptions second = first;
  second.resume = true;
  Result<MultiProcessRun> run2 =
      MineForestMultiProcess(forest_path, options, second, nullptr);
  ASSERT_FALSE(run2.ok());
  EXPECT_EQ(run2.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SupervisorTest, ResumeWithoutAJournalIsAFreshRun) {
  const std::string text = BuildForest(60, /*dirty=*/false);
  const std::string forest_path = TempPath("freshresume.nwk");
  WriteFile(forest_path, text);
  MultiTreeMiningOptions options;
  const SequentialReference seq =
      MineSequentially(text, forest_path, options, /*lenient=*/false);
  MultiProcessOptions proc = ProcOptions("freshresume", 2);
  proc.resume = true;  // --resume on a first run: nothing to replay
  Result<MultiProcessRun> run =
      MineForestMultiProcess(forest_path, options, proc, nullptr);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectMatchesSequential(*run, proc, seq);
  EXPECT_EQ(run->shards_recovered, 0);
}

TEST_F(SupervisorTest, InvalidConfigurationsAreRejectedUpFront) {
  const std::string forest_path = TempPath("badconfig.nwk");
  WriteFile(forest_path, "(a,b);\n");
  MultiTreeMiningOptions options;
  MultiProcessOptions proc;
  proc.checkpoint_path = "";  // required
  EXPECT_EQ(MineForestMultiProcess(forest_path, options, proc, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  proc = MultiProcessOptions{};
  proc.checkpoint_path = TempPath("badconfig.ckpt");
  proc.workers = 0;
  EXPECT_EQ(MineForestMultiProcess(forest_path, options, proc, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  proc = MultiProcessOptions{};
  proc.checkpoint_path = TempPath("badconfig.ckpt");
  proc.lenient = true;  // lenient requires a ledger
  EXPECT_EQ(MineForestMultiProcess(forest_path, options, proc, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MineForestMultiProcess(TempPath("no_such_forest.nwk"), options,
                                   ProcOptions("noforest", 2), nullptr)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(SupervisorTest, EmptyForestCompletesWithAnEmptyResult) {
  const std::string forest_path = TempPath("empty.nwk");
  WriteFile(forest_path, "");
  MultiTreeMiningOptions options;
  const MultiProcessOptions proc = ProcOptions("empty", 2);
  Result<MultiProcessRun> run =
      MineForestMultiProcess(forest_path, options, proc, nullptr);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->mining.trees_processed, 0);
  EXPECT_TRUE(run->mining.pairs.empty());
}

// ---------------------------------------------------------------------
// Mini fault sweep: every parent-visible proc.* site either recovers
// with bit-identical results or fails as a clean Status — never a
// crash, never silently-wrong output.
// ---------------------------------------------------------------------

TEST_F(SupervisorTest, EveryProcFaultSiteRecoversOrFailsClean) {
  const std::string text = BuildForest(90, /*dirty=*/false);
  const std::string forest_path = TempPath("sweep.nwk");
  WriteFile(forest_path, text);
  MultiTreeMiningOptions options;
  const SequentialReference seq =
      MineSequentially(text, forest_path, options, /*lenient=*/false);

  // Discovery run registers the parent-side sites.
  {
    const MultiProcessOptions proc = ProcOptions("sweep_discover", 2);
    ASSERT_TRUE(
        MineForestMultiProcess(forest_path, options, proc, nullptr).ok());
  }
  std::vector<std::string> sites;
  for (const std::string& site :
       fault::FaultRegistry::Global().SiteNames()) {
    // proc.supervisor.die would _exit this test binary — the CLI crash
    // drill covers it end-to-end instead.
    if (site.rfind("proc.", 0) == 0 && site != "proc.supervisor.die") {
      sites.push_back(site);
    }
  }
  // Worker-side site: registers only inside forked children, so the
  // parent's registry never lists it — add it by hand.
  sites.push_back("proc.worker.crash");
  ASSERT_GE(sites.size(), 5u) << "site discovery regressed";

  int sweep = 0;
  for (const std::string& site : sites) {
    SCOPED_TRACE("fault site " + site);
    fault::FaultRegistry::Global().DisarmAll();
    fault::FaultRegistry::Global().Arm(site, 1);
    MultiProcessOptions proc =
        ProcOptions("sweep_" + std::to_string(sweep++), 2);
    // Keep stall recovery (proc.stop_worker) fast.
    proc.lease_timeout = std::chrono::milliseconds(300);
    Result<MultiProcessRun> run =
        MineForestMultiProcess(forest_path, options, proc, nullptr);
    if (run.ok()) {
      EXPECT_EQ(run->mining.pairs, seq.pairs);
      EXPECT_EQ(run->mining.trees_processed, seq.tree_count);
    } else {
      EXPECT_NE(run.status().code(), StatusCode::kOk);
      EXPECT_FALSE(run.status().message().empty());
    }
  }
}

}  // namespace
}  // namespace cousins::proc
