#include <gtest/gtest.h>

#include "core/parallel_mining.h"
#include "gen/fanout_generator.h"
#include "gen/yule_generator.h"
#include "util/rng.h"

namespace cousins {
namespace {

std::vector<Tree> RandomForest(int count, uint64_t seed,
                               std::shared_ptr<LabelTable> labels) {
  Rng rng(seed);
  YulePhylogenyOptions gen;
  gen.min_nodes = 30;
  gen.max_nodes = 80;
  gen.alphabet_size = 60;
  std::vector<Tree> trees;
  for (int i = 0; i < count; ++i) {
    trees.push_back(GenerateYulePhylogeny(gen, rng, labels));
  }
  return trees;
}

class ParallelMining : public ::testing::TestWithParam<int32_t> {};

TEST_P(ParallelMining, MatchesSequentialExactly) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(40, 123, labels);
  MultiTreeMiningOptions opt;
  opt.min_support = 2;
  auto sequential = MineMultipleTrees(trees, opt);
  auto parallel = MineMultipleTreesParallel(trees, opt, GetParam());
  EXPECT_EQ(sequential, parallel) << "threads=" << GetParam();
}

TEST_P(ParallelMining, MatchesSequentialIgnoringDistance) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(30, 321, labels);
  MultiTreeMiningOptions opt;
  opt.min_support = 3;
  opt.ignore_distance = true;
  EXPECT_EQ(MineMultipleTrees(trees, opt),
            MineMultipleTreesParallel(trees, opt, GetParam()));
}

TEST_P(ParallelMining, EmptyForestAnyThreadCount) {
  EXPECT_TRUE(MineMultipleTreesParallel({}, {}, GetParam()).empty());
}

TEST_P(ParallelMining, SingleTreeForest) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(1, 7, labels);
  MultiTreeMiningOptions opt;
  opt.min_support = 1;
  EXPECT_EQ(MineMultipleTrees(trees, opt),
            MineMultipleTreesParallel(trees, opt, GetParam()));
}

TEST_P(ParallelMining, MoreThreadsThanTreesMatchesSequential) {
  // Fewer trees than any thread count in the matrix: idle shards must
  // not perturb the merged result.
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(GetParam() > 1 ? GetParam() - 1 : 1,
                                         77, labels);
  MultiTreeMiningOptions opt;
  opt.min_support = 1;
  EXPECT_EQ(MineMultipleTrees(trees, opt),
            MineMultipleTreesParallel(trees, opt, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelMining,
                         ::testing::Values(1, 2, 3, 8));

TEST(ParallelMiningTest, DefaultThreadCountWorks) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(10, 9, labels);
  MultiTreeMiningOptions opt;
  EXPECT_EQ(MineMultipleTrees(trees, opt),
            MineMultipleTreesParallel(trees, opt, 0));
}

TEST(ParallelMiningTest, MoreThreadsThanTrees) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(3, 77, labels);
  MultiTreeMiningOptions opt;
  opt.min_support = 1;
  EXPECT_EQ(MineMultipleTrees(trees, opt),
            MineMultipleTreesParallel(trees, opt, 64));
}

TEST(ParallelMiningTest, EmptyForest) {
  EXPECT_TRUE(MineMultipleTreesParallel({}, {}, 4).empty());
}

TEST(MergeFromTest, AccumulatesAcrossMiners) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(12, 55, labels);
  MultiTreeMiningOptions opt;
  opt.min_support = 2;
  MultiTreeMiner whole(opt);
  for (const Tree& t : trees) whole.AddTree(t);
  MultiTreeMiner left(opt);
  MultiTreeMiner right(opt);
  for (size_t i = 0; i < trees.size(); ++i) {
    (i % 2 == 0 ? left : right).AddTree(trees[i]);
  }
  left.MergeFrom(right);
  EXPECT_EQ(left.tree_count(), whole.tree_count());
  EXPECT_EQ(left.FrequentPairs(), whole.FrequentPairs());
}

}  // namespace
}  // namespace cousins
