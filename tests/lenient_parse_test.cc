// Lenient forest parsing: malformed entries are isolated with their
// positions and snippets while the healthy entries still parse, the
// (trees, errors) pair partitions the input's entries, and whole-input
// limits stay hard errors even in lenient mode. Covers both the
// Newick ';'-forest and the NEXUS TREES-block flavors.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tree/newick.h"
#include "tree/nexus.h"
#include "tree/parse_limits.h"
#include "util/status.h"

namespace cousins {
namespace {

TEST(LenientNewickForestTest, AllGoodEntriesMatchStrictParsing) {
  const std::string text = "((a,b),c);\n(d,(e,f));\n# comment\n(g,h);\n";
  auto labels = std::make_shared<LabelTable>();
  Result<LenientForest> lenient = ParseNewickForestLenient(text, labels);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_TRUE(lenient->errors.empty());
  ASSERT_EQ(lenient->trees.size(), 3u);
  EXPECT_EQ(lenient->source_indices, (std::vector<int64_t>{0, 1, 2}));

  auto strict_labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> strict =
      ParseNewickForest(text, strict_labels);
  ASSERT_TRUE(strict.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ToNewick(lenient->trees[i]), ToNewick((*strict)[i])) << i;
  }
}

TEST(LenientNewickForestTest, BadEntriesAreIsolatedWithPositions) {
  // Entry 0 fine, entry 1 unbalanced, entry 2 fine, entry 3 garbage.
  const std::string text = "(a,b);\n(c,(d,e);\n(f,g);\n)();\n";
  Result<LenientForest> lenient = ParseNewickForestLenient(text);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  ASSERT_EQ(lenient->trees.size(), 2u);
  EXPECT_EQ(lenient->source_indices, (std::vector<int64_t>{0, 2}));
  ASSERT_EQ(lenient->errors.size(), 2u);

  const ForestEntryError& unbalanced = lenient->errors[0];
  EXPECT_EQ(unbalanced.tree_index, 1);
  EXPECT_EQ(unbalanced.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(unbalanced.line, 2u) << unbalanced.status.ToString();
  EXPECT_FALSE(unbalanced.snippet.empty());

  EXPECT_EQ(lenient->errors[1].tree_index, 3);
  EXPECT_EQ(lenient->errors[1].line, 4u);
}

TEST(LenientNewickForestTest, TreesAndErrorsPartitionTheEntries) {
  std::string text;
  for (int i = 0; i < 20; ++i) {
    text += i % 3 == 1 ? "((x,;\n" : "(t" + std::to_string(i) + ",u);\n";
  }
  Result<LenientForest> lenient = ParseNewickForestLenient(text);
  ASSERT_TRUE(lenient.ok());
  ASSERT_EQ(lenient->trees.size(), lenient->source_indices.size());
  EXPECT_EQ(lenient->trees.size() + lenient->errors.size(), 20u);
  std::vector<bool> seen(20, false);
  for (int64_t i : lenient->source_indices) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, 20);
    EXPECT_FALSE(seen[static_cast<size_t>(i)]) << i;
    seen[static_cast<size_t>(i)] = true;
    EXPECT_NE(i % 3, 1) << "poisoned entry parsed as a tree";
  }
  for (const ForestEntryError& e : lenient->errors) {
    EXPECT_FALSE(seen[static_cast<size_t>(e.tree_index)]) << e.tree_index;
    seen[static_cast<size_t>(e.tree_index)] = true;
    EXPECT_EQ(e.tree_index % 3, 1);
  }
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_TRUE(seen[i]) << i;
}

TEST(LenientNewickForestTest, PerEntryLimitTripsAreIsolated) {
  ParseLimits limits;
  limits.max_label_bytes = 8;
  const std::string text =
      "(short,ok);\n(a_label_far_over_the_cap,x);\n(fine,too);\n";
  Result<LenientForest> lenient = ParseNewickForestLenient(text, nullptr,
                                                           limits);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->trees.size(), 2u);
  ASSERT_EQ(lenient->errors.size(), 1u);
  EXPECT_EQ(lenient->errors[0].tree_index, 1);
  EXPECT_EQ(lenient->errors[0].status.code(),
            StatusCode::kResourceExhausted);
}

TEST(LenientNewickForestTest, WholeInputByteCapStaysAHardError) {
  ParseLimits limits;
  limits.max_input_bytes = 10;
  Result<LenientForest> lenient =
      ParseNewickForestLenient("(a,b);(c,d);(e,f);", nullptr, limits);
  ASSERT_FALSE(lenient.ok());
  EXPECT_EQ(lenient.status().code(), StatusCode::kResourceExhausted);
}

TEST(LenientNewickForestTest, BomAndCrlfInputBehavesLikeCleanInput) {
  const std::string dirty = "\xEF\xBB\xBF(a,b);\r\n(c,(d;\r(e,f);\r\n";
  Result<LenientForest> lenient = ParseNewickForestLenient(dirty);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->trees.size(), 2u);
  ASSERT_EQ(lenient->errors.size(), 1u);
  EXPECT_EQ(lenient->errors[0].tree_index, 1);
  // Positions are reported in the BOM-stripped text with CRLF and lone
  // CR each counting as one line break.
  EXPECT_EQ(lenient->errors[0].line, 2u);
}

TEST(LenientNexusForestTest, BadTreeStatementsAreIsolated) {
  const std::string text =
      "#NEXUS\n"
      "BEGIN TREES;\n"
      "  TREE one = ((a,b),c);\n"
      "  TREE two = ((a,b,c);\n"
      "  TREE three = (b,(a,c));\n"
      "END;\n";
  auto labels = std::make_shared<LabelTable>();
  Result<LenientNamedForest> lenient =
      ParseNexusForestLenient(text, labels);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  ASSERT_EQ(lenient->trees.size(), 2u);
  EXPECT_EQ(lenient->trees[0].name, "one");
  EXPECT_EQ(lenient->trees[1].name, "three");
  EXPECT_EQ(lenient->source_indices, (std::vector<int64_t>{0, 2}));
  ASSERT_EQ(lenient->errors.size(), 1u);
  EXPECT_EQ(lenient->errors[0].tree_index, 1);
  EXPECT_EQ(lenient->errors[0].line, 4u)
      << lenient->errors[0].status.ToString();
  EXPECT_FALSE(lenient->errors[0].snippet.empty());
}

TEST(LenientNexusForestTest, CleanFileMatchesStrictParsing) {
  std::vector<NamedTree> named;
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> trees = ParseNewickForest(
      "((a,b),(c,d));(a,(b,(c,d)));", labels);
  ASSERT_TRUE(trees.ok());
  for (size_t i = 0; i < trees->size(); ++i) {
    named.push_back({"t" + std::to_string(i), std::move((*trees)[i])});
  }
  const std::string text = ToNexus(named);

  auto lenient_labels = std::make_shared<LabelTable>();
  Result<LenientNamedForest> lenient =
      ParseNexusForestLenient(text, lenient_labels);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_TRUE(lenient->errors.empty());
  auto strict_labels = std::make_shared<LabelTable>();
  Result<std::vector<NamedTree>> strict =
      ParseNexusTrees(text, strict_labels);
  ASSERT_TRUE(strict.ok());
  ASSERT_EQ(lenient->trees.size(), strict->size());
  for (size_t i = 0; i < strict->size(); ++i) {
    EXPECT_EQ(lenient->trees[i].name, (*strict)[i].name);
    EXPECT_EQ(ToNewick(lenient->trees[i].tree), ToNewick((*strict)[i].tree));
  }
}

TEST(LenientNexusForestTest, FileLevelDefectsStayHardErrors) {
  // An unterminated bracket comment poisons everything after it; the
  // lenient parser refuses the file rather than guessing.
  Result<LenientNamedForest> lenient = ParseNexusForestLenient(
      "#NEXUS\nBEGIN TREES;\n TREE a = (x,y); [oops\nEND;\n");
  EXPECT_FALSE(lenient.ok());
}

}  // namespace
}  // namespace cousins
