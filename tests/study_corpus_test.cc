#include <gtest/gtest.h>

#include <set>

#include "core/multi_tree_mining.h"
#include "gen/study_corpus.h"
#include "phylo/clusters.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(StudyCorpusTest, RespectsSizeBounds) {
  Rng rng(5);
  StudyCorpusOptions opt;
  opt.num_studies = 20;
  opt.min_taxa = 6;
  opt.max_taxa = 12;
  opt.min_trees_per_study = 2;
  opt.max_trees_per_study = 4;
  auto corpus = GenerateStudyCorpus(opt, rng);
  ASSERT_EQ(corpus.size(), 20u);
  for (const Study& study : corpus) {
    EXPECT_GE(study.trees.size(), 2u);
    EXPECT_LE(study.trees.size(), 4u);
    TaxonIndex taxa = TaxonIndex::FromTree(study.trees[0]).value();
    EXPECT_GE(taxa.size(), 6);
    EXPECT_LE(taxa.size(), 12);
  }
}

TEST(StudyCorpusTest, TreesWithinAStudyShareTaxa) {
  Rng rng(6);
  StudyCorpusOptions opt;
  opt.num_studies = 10;
  auto corpus = GenerateStudyCorpus(opt, rng);
  for (const Study& study : corpus) {
    // All trees of a study must pass the same-taxa validation.
    EXPECT_TRUE(TaxonIndex::FromTrees(study.trees).ok());
  }
}

TEST(StudyCorpusTest, SharedLabelTableAcrossStudies) {
  Rng rng(7);
  StudyCorpusOptions opt;
  opt.num_studies = 5;
  auto corpus = GenerateStudyCorpus(opt, rng);
  for (const Study& study : corpus) {
    for (const Tree& t : study.trees) {
      EXPECT_EQ(t.labels_ptr().get(),
                corpus[0].trees[0].labels_ptr().get());
    }
  }
}

TEST(StudyCorpusTest, PerturbedVariantsDiffer) {
  Rng rng(8);
  StudyCorpusOptions opt;
  opt.num_studies = 10;
  opt.min_trees_per_study = 3;
  opt.max_trees_per_study = 3;
  opt.min_taxa = 15;
  opt.max_taxa = 20;
  opt.perturbation_moves = 4;
  auto corpus = GenerateStudyCorpus(opt, rng);
  int differing_studies = 0;
  for (const Study& study : corpus) {
    TaxonIndex taxa = TaxonIndex::FromTrees(study.trees).value();
    auto base = TreeClusters(study.trees[0], taxa).value();
    for (size_t i = 1; i < study.trees.size(); ++i) {
      if (TreeClusters(study.trees[i], taxa).value() != base) {
        ++differing_studies;
        break;
      }
    }
  }
  EXPECT_GE(differing_studies, 8);  // perturbation nearly always bites
}

TEST(StudyCorpusTest, PerStudyMiningFindsSharedPatterns) {
  // §5.1's workflow: per-study frequent pairs exist because variants of
  // one model tree share most local structure.
  Rng rng(9);
  StudyCorpusOptions opt;
  opt.num_studies = 15;
  opt.min_trees_per_study = 3;
  opt.max_trees_per_study = 5;
  auto corpus = GenerateStudyCorpus(opt, rng);
  int studies_with_patterns = 0;
  for (const Study& study : corpus) {
    MultiTreeMiningOptions mining;  // Table 2 defaults
    if (!MineMultipleTrees(study.trees, mining).empty()) {
      ++studies_with_patterns;
    }
  }
  EXPECT_GE(studies_with_patterns, 13);
}

TEST(StudyCorpusTest, EmptyCorpus) {
  Rng rng(10);
  StudyCorpusOptions opt;
  opt.num_studies = 0;
  EXPECT_TRUE(GenerateStudyCorpus(opt, rng).empty());
}

}  // namespace
}  // namespace cousins
