#include <gtest/gtest.h>

#include <set>

#include "gen/yule_generator.h"
#include "phylo/clusters.h"
#include "phylo/consensus.h"
#include "test_util.h"
#include "tree/canonical.h"
#include "tree/newick.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

std::vector<Tree> ParseForest(const std::string& text,
                              std::shared_ptr<LabelTable> labels) {
  return ParseNewickForest(text, std::move(labels)).value();
}

std::set<Bitset> ClustersOf(const Tree& t, const TaxonIndex& taxa) {
  auto v = TreeClusters(t, taxa).value();
  return {v.begin(), v.end()};
}

TEST(ConsensusTest, IdenticalInputsReproduceTheTree) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees =
      ParseForest("((A,B),(C,D));((A,B),(C,D));((A,B),(C,D));", labels);
  for (ConsensusMethod method : kAllConsensusMethods) {
    Tree c = ConsensusTree(trees, method).value();
    EXPECT_TRUE(UnorderedIsomorphic(
        c, MustParse("((A,B),(C,D));", labels)))
        << ConsensusMethodName(method);
  }
}

TEST(ConsensusTest, StrictKeepsOnlyUnanimousClusters) {
  auto labels = std::make_shared<LabelTable>();
  // {A,B} in all three; {C,D} in two of three.
  std::vector<Tree> trees = ParseForest(
      "((A,B),(C,D),E);((A,B),(C,D),E);((A,B),C,D,E);", labels);
  Tree c = ConsensusTree(trees, ConsensusMethod::kStrict).value();
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  std::set<Bitset> clusters = ClustersOf(c, taxa);
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(ConsensusTest, MajorityKeepsMajorityClusters) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = ParseForest(
      "((A,B),(C,D),E);((A,B),(C,D),E);((A,B),C,D,E);", labels);
  Tree c = ConsensusTree(trees, ConsensusMethod::kMajority).value();
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  std::set<Bitset> clusters = ClustersOf(c, taxa);
  EXPECT_EQ(clusters.size(), 2u);  // {A,B} (3/3) and {C,D} (2/3)
}

TEST(ConsensusTest, MajorityThresholdIsStrict) {
  auto labels = std::make_shared<LabelTable>();
  // {A,B} in exactly half the trees: > 0.5 fails, so excluded.
  std::vector<Tree> trees =
      ParseForest("((A,B),C,D);((A,B),C,D);(A,B,(C,D));(A,B,(C,D));",
                  labels);
  Tree c = ConsensusTree(trees, ConsensusMethod::kMajority).value();
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  EXPECT_TRUE(ClustersOf(c, taxa).empty());
}

TEST(ConsensusTest, SemiStrictKeepsCompatibleClusters) {
  auto labels = std::make_shared<LabelTable>();
  // Tree 1 resolves {A,B}; tree 2 is a star. {A,B} is compatible with
  // both, so semi-strict keeps it while strict does not.
  std::vector<Tree> trees = ParseForest("((A,B),C,D);(A,B,C,D);", labels);
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  Tree semi = ConsensusTree(trees, ConsensusMethod::kSemiStrict).value();
  EXPECT_EQ(ClustersOf(semi, taxa).size(), 1u);
  Tree strict = ConsensusTree(trees, ConsensusMethod::kStrict).value();
  EXPECT_TRUE(ClustersOf(strict, taxa).empty());
}

TEST(ConsensusTest, SemiStrictDropsConflictingClusters) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees =
      ParseForest("((A,B),C,D);((B,C),A,D);", labels);
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  Tree semi = ConsensusTree(trees, ConsensusMethod::kSemiStrict).value();
  EXPECT_TRUE(ClustersOf(semi, taxa).empty());
}

TEST(ConsensusTest, NelsonPicksHeaviestClique) {
  auto labels = std::make_shared<LabelTable>();
  // {A,B} replicated 2x and {A,B,C} replicated 2x are compatible (total
  // 4); {C,D} replicated 2x conflicts with {A,B,C} (shares C, not
  // nested) and alone weighs 2.
  std::vector<Tree> trees = ParseForest(
      "(((A,B)x,C)y,D,E);"
      "(((A,B)x,C)y,D,E);"
      "((A,B)x,(C,D)z,E);"
      "(A,B,(C,D)z,E);",
      labels);
  // Counts: {A,B}: 3, {A,B,C}: 2, {C,D}: 2.
  // Cliques: {AB, ABC} = 5 vs {AB, CD} = 5 vs ... wait {A,B} and {C,D}
  // are disjoint hence compatible: {AB(3), CD(2)} = 5, {AB(3), ABC(2)}
  // = 5 — tie. Make ABC win by adding one more supporting tree.
  trees.push_back(MustParse("(((A,B)x,C)y,D,E);", labels));
  // Now {A,B}: 4, {A,B,C}: 3, {C,D}: 2 — best clique {AB, ABC} = 7.
  Tree c = ConsensusTree(trees, ConsensusMethod::kNelson).value();
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  std::set<Bitset> clusters = ClustersOf(c, taxa);
  EXPECT_EQ(clusters.size(), 2u);
  Bitset ab(taxa.size());
  ab.Set(taxa.index_of(labels->Find("A")));
  ab.Set(taxa.index_of(labels->Find("B")));
  EXPECT_TRUE(clusters.contains(ab));
}

TEST(ConsensusTest, AdamsPreservesCommonNesting) {
  auto labels = std::make_shared<LabelTable>();
  // Classic Adams example: both trees agree A,B are "together deep down"
  // relative to D even though the exact clusters differ.
  std::vector<Tree> trees =
      ParseForest("(((A,B),C),D);(((A,C),B),D);", labels);
  Tree adams = ConsensusTree(trees, ConsensusMethod::kAdams).value();
  // Root partition product: tree1 root blocks {ABC|D}, tree2 {ACB|D} =>
  // blocks {A,B,C} and {D}. Within {A,B,C}: tree1 LCA splits {AB|C},
  // tree2 splits {AC|B}; product = {A}{B}{C} (a star).
  Tree expected = MustParse("((A,B,C),D);", labels);
  EXPECT_TRUE(UnorderedIsomorphic(adams, expected))
      << ToNewick(adams);
}

TEST(ConsensusTest, AdamsOnIdenticalTreesKeepsShape) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees =
      ParseForest("(((A,B),C),D);(((A,B),C),D);", labels);
  Tree adams = ConsensusTree(trees, ConsensusMethod::kAdams).value();
  EXPECT_TRUE(
      UnorderedIsomorphic(adams, MustParse("(((A,B),C),D);", labels)));
}

TEST(ConsensusTest, SingleTreeConsensusIsIdentityForClusterMethods) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> one = {MustParse("(((A,B),C),(D,E));", labels)};
  for (ConsensusMethod method : kAllConsensusMethods) {
    if (method == ConsensusMethod::kNelson) continue;  // needs count >= 2
    Tree c = ConsensusTree(one, method).value();
    EXPECT_TRUE(UnorderedIsomorphic(c, one[0]))
        << ConsensusMethodName(method);
  }
}

TEST(ConsensusTest, ErrorsOnMismatchedTaxa) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees =
      ParseForest("((A,B),C);((A,B),D);", labels);
  for (ConsensusMethod method : kAllConsensusMethods) {
    EXPECT_FALSE(ConsensusTree(trees, method).ok());
  }
}

TEST(ConsensusTest, MethodNames) {
  EXPECT_EQ(ConsensusMethodName(ConsensusMethod::kStrict), "strict");
  EXPECT_EQ(ConsensusMethodName(ConsensusMethod::kMajority), "majority");
  EXPECT_EQ(ConsensusMethodName(ConsensusMethod::kSemiStrict), "semi");
  EXPECT_EQ(ConsensusMethodName(ConsensusMethod::kAdams), "Adams");
  EXPECT_EQ(ConsensusMethodName(ConsensusMethod::kNelson), "Nelson");
}

// Structural properties on random parsimonious-like tree sets.
class ConsensusProperty : public ::testing::TestWithParam<uint64_t> {};

std::vector<Tree> RandomTreeSet(uint64_t seed, int32_t num_taxa,
                                int32_t num_trees,
                                std::shared_ptr<LabelTable> labels) {
  Rng rng(seed);
  std::vector<std::string> taxa = MakeTaxa(num_taxa);
  std::vector<Tree> trees;
  for (int32_t i = 0; i < num_trees; ++i) {
    trees.push_back(RandomCoalescentTree(taxa, rng, labels));
  }
  return trees;
}

TEST_P(ConsensusProperty, StrictClustersAreSubsetOfMajorityAndSemi) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomTreeSet(GetParam(), 12, 7, labels);
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  std::set<Bitset> strict = ClustersOf(
      ConsensusTree(trees, ConsensusMethod::kStrict).value(), taxa);
  std::set<Bitset> majority = ClustersOf(
      ConsensusTree(trees, ConsensusMethod::kMajority).value(), taxa);
  std::set<Bitset> semi = ClustersOf(
      ConsensusTree(trees, ConsensusMethod::kSemiStrict).value(), taxa);
  for (const Bitset& c : strict) {
    EXPECT_TRUE(majority.contains(c));
    EXPECT_TRUE(semi.contains(c));
  }
}

TEST_P(ConsensusProperty, MajorityClustersAppearInMostTrees) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomTreeSet(GetParam() + 50, 10, 5, labels);
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  std::set<Bitset> majority = ClustersOf(
      ConsensusTree(trees, ConsensusMethod::kMajority).value(), taxa);
  for (const Bitset& c : majority) {
    int count = 0;
    for (const Tree& t : trees) count += ClustersOf(t, taxa).contains(c);
    EXPECT_GT(count * 2, static_cast<int>(trees.size()));
  }
}

TEST_P(ConsensusProperty, AllMethodsPreserveTaxa) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomTreeSet(GetParam() + 99, 14, 6, labels);
  for (ConsensusMethod method : kAllConsensusMethods) {
    Tree c = ConsensusTree(trees, method).value();
    TaxonIndex original = TaxonIndex::FromTrees(trees).value();
    TaxonIndex consensus_taxa = TaxonIndex::FromTree(c).value();
    EXPECT_EQ(consensus_taxa.size(), original.size())
        << ConsensusMethodName(method);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusProperty,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace cousins
