#include <gtest/gtest.h>

#include "gen/uniform_generator.h"
#include "gen/yule_generator.h"
#include "seq/fitch.h"
#include "seq/jukes_cantor.h"
#include "seq/sankoff.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

Alignment Make(const std::vector<std::pair<std::string, std::string>>& rows) {
  std::string fasta;
  for (const auto& [name, seq] : rows) {
    fasta += ">" + name + "\n" + seq + "\n";
  }
  return ParseFasta(fasta).value();
}

TEST(CostMatrixTest, UnitCosts) {
  SubstitutionCosts c = UnitCosts();
  for (int i = 0; i < kNumBases; ++i) {
    for (int j = 0; j < kNumBases; ++j) {
      EXPECT_EQ(c[i][j], i == j ? 0 : 1);
    }
  }
}

TEST(CostMatrixTest, TransitionTransversion) {
  SubstitutionCosts c = TransitionTransversionCosts(1, 2);
  // A<->G and C<->T are transitions.
  EXPECT_EQ(c[0][2], 1);
  EXPECT_EQ(c[2][0], 1);
  EXPECT_EQ(c[1][3], 1);
  EXPECT_EQ(c[0][1], 2);
  EXPECT_EQ(c[0][3], 2);
  EXPECT_EQ(c[2][3], 2);
  EXPECT_EQ(c[0][0], 0);
}

TEST(SankoffTest, MatchesFitchOnBinaryExamples) {
  Alignment a = Make({{"w", "AC"}, {"x", "AG"}, {"y", "GC"}, {"z", "GG"}});
  for (const char* newick :
       {"((w,x),(y,z));", "((w,y),(x,z));", "((w,z),(x,y));",
        "(((w,x),y),z);"}) {
    Tree t = MustParse(newick);
    EXPECT_EQ(SankoffScore(t, a, UnitCosts()).value(),
              FitchScore(t, a).value())
        << newick;
  }
}

TEST(SankoffTest, MultifurcatingStar) {
  // Star over A, A, G, G, T: best root state saves 2 -> cost 3.
  Alignment a = Make({{"p", "A"}, {"q", "A"}, {"r", "G"}, {"s", "G"},
                      {"t", "T"}});
  Tree star = MustParse("(p,q,r,s,t);");
  EXPECT_EQ(SankoffScore(star, a, UnitCosts()).value(), 3);
  EXPECT_EQ(HartiganScore(star, a).value(), 3);
}

TEST(SankoffTest, WeightedCostsChangeTheScore) {
  // One A->G difference: a transition. Under 1:2 weighting a site with
  // an A/G split costs 1; an A/C split costs 2.
  Alignment transitions = Make({{"x", "A"}, {"y", "G"}});
  Alignment transversions = Make({{"x", "A"}, {"y", "C"}});
  Tree t = MustParse("(x,y);");
  SubstitutionCosts weighted = TransitionTransversionCosts(1, 2);
  EXPECT_EQ(SankoffScore(t, transitions, weighted).value(), 1);
  EXPECT_EQ(SankoffScore(t, transversions, weighted).value(), 2);
}

TEST(SankoffTest, ErrorsMirrorFitch) {
  Alignment a = Make({{"w", "A"}});
  EXPECT_FALSE(SankoffScore(Tree(), a, UnitCosts()).ok());
  EXPECT_FALSE(SankoffScore(MustParse("(w,x);"), a, UnitCosts()).ok());
  EXPECT_FALSE(
      SankoffScore(MustParse("(w,x);"), Alignment(), UnitCosts()).ok());
  EXPECT_FALSE(HartiganScore(MustParse("(w,);"), a).ok());
}

class GeneralizedParsimonyProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneralizedParsimonyProperty, HartiganEqualsSankoffUnitCosts) {
  Rng rng(GetParam());
  // Random multifurcating tree over taxa as leaves.
  YulePhylogenyOptions gen;
  gen.min_nodes = 15;
  gen.max_nodes = 40;
  gen.multifurcation_prob = 0.5;
  gen.max_children = 5;
  gen.alphabet_size = 1000000;  // unique-ish taxa
  Tree shape = GenerateYulePhylogeny(gen, rng);
  // Random sequences for its leaves.
  std::string fasta;
  int32_t taxa = 0;
  for (NodeId v = 0; v < shape.size(); ++v) {
    if (!shape.is_leaf(v)) continue;
    ++taxa;
    fasta += ">" + shape.label_name(v) + "\n";
    for (int s = 0; s < 20; ++s) fasta += "ACGT"[rng.Uniform(4)];
    fasta += "\n";
  }
  Result<Alignment> alignment = ParseFasta(fasta);
  if (!alignment.ok()) return;  // duplicate taxon draw; skip
  Result<int64_t> sankoff = SankoffScore(shape, *alignment, UnitCosts());
  Result<int64_t> hartigan = HartiganScore(shape, *alignment);
  ASSERT_TRUE(sankoff.ok()) << sankoff.status().ToString();
  ASSERT_TRUE(hartigan.ok());
  EXPECT_EQ(*sankoff, *hartigan) << "taxa=" << taxa;
}

TEST_P(GeneralizedParsimonyProperty, AllThreeAgreeOnBinaryTrees) {
  Rng rng(GetParam() + 400);
  Tree truth = RandomCoalescentTree(MakeTaxa(10), rng, nullptr, 0.2);
  SimulateOptions sim;
  sim.num_sites = 40;
  Alignment a = SimulateAlignment(truth, sim, rng);
  const int64_t fitch = FitchScore(truth, a).value();
  EXPECT_EQ(SankoffScore(truth, a, UnitCosts()).value(), fitch);
  EXPECT_EQ(HartiganScore(truth, a).value(), fitch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizedParsimonyProperty,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace cousins
