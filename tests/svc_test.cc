// Daemon subsystem tests (src/svc): WAL framing and replay semantics
// (torn tail tolerated, mid-file corruption refused, wrong options
// refused), the framed wire protocol, admission control, the service's
// request semantics (ingest/retract/query/health/drain), and the crash
// contract — an abandoned (never-drained) service restarted over its
// WAL answers queries byte-identically to a batch mining run over the
// acknowledged batches, across miner variants and thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/item_io.h"
#include "core/parallel_mining.h"
#include "gen/yule_generator.h"
#include "svc/admission.h"
#include "svc/daemon.h"
#include "svc/protocol.h"
#include "svc/wal.h"
#include "tree/newick.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cousins {
namespace {

using fault::FaultRegistry;
using svc::CousinService;
using svc::ParsedResponse;
using svc::Request;
using svc::Response;
using svc::ServiceConfig;
using svc::SvcWal;
using svc::SvcWalRecord;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Removes a WAL store (a v2 segment directory — or a leftover v1
/// file) between tests.
void RemoveStore(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
}

/// Path of the active (highest-sequence) segment inside a v2 WAL
/// directory — the file the next append lands in, and the only one a
/// torn-tail test may legally damage.
std::string ActiveSegmentPath(const std::string& wal_dir) {
  std::string best;
  for (const auto& entry : std::filesystem::directory_iterator(wal_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && name > best) best = name;
  }
  EXPECT_FALSE(best.empty()) << "no segment in " << wal_dir;
  return wal_dir + "/" + best;
}

/// A small deterministic Newick batch; distinct seeds give disjoint
/// batches over a shared 30-label alphabet (so cross-batch pairs gain
/// support and retraction visibly subtracts).
std::string MakeBatch(uint64_t seed, int trees) {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(seed);
  YulePhylogenyOptions gen;
  gen.min_nodes = 8;
  gen.max_nodes = 16;
  gen.alphabet_size = 30;
  std::string text;
  for (int i = 0; i < trees; ++i) {
    text += ToNewick(GenerateYulePhylogeny(gen, rng, labels));
    text += ";\n";
  }
  return text;
}

Request MakeRequest(std::string verb, std::vector<std::string> args = {},
                    std::string payload = "") {
  Request request;
  request.verb = std::move(verb);
  request.args = std::move(args);
  request.payload = std::move(payload);
  return request;
}

ServiceConfig BaseConfig(const std::string& wal_path) {
  ServiceConfig config;
  config.mining.min_support = 2;
  config.wal_path = wal_path;
  return config;
}

/// What the daemon must answer after recovery: the batch pipeline's
/// frequent CSV over the concatenated acknowledged batches, mined
/// under the same options.
std::string BatchPipelineCsv(const std::vector<std::string>& payloads,
                             const MultiTreeMiningOptions& options,
                             int threads) {
  std::string text;
  for (const std::string& payload : payloads) text += payload;
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> trees = ParseNewickForest(text, labels);
  EXPECT_TRUE(trees.ok()) << trees.status().ToString();
  Result<MultiTreeMiningRun> run = MineMultipleTreesParallelGoverned(
      *trees, options, MiningContext::Unlimited(), threads);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return FrequentPairsToCsv(*labels, run->pairs);
}

std::string QueryFrequent(CousinService& service) {
  Response response =
      service.Handle(MakeRequest("QUERY", {"frequent-pairs"}));
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  return response.payload;
}

// --- WAL ---------------------------------------------------------------

TEST(SvcWalTest, EscapeRoundTripsControlBytes) {
  const std::string payload = "((a,b),c);\n(d,e);\r\n back\\slash";
  const std::string escaped = svc::EscapeWalPayload(payload);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  Result<std::string> back = svc::UnescapeWalPayload(escaped);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);
  EXPECT_FALSE(svc::UnescapeWalPayload("dangling\\").ok());
  EXPECT_FALSE(svc::UnescapeWalPayload("bad\\q").ok());
}

TEST(SvcWalTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("svc_wal_roundtrip");
  std::remove(path.c_str());
  {
    Result<SvcWal> wal = SvcWal::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal->AppendHeader(1234).ok());
    ASSERT_TRUE(wal->AppendBatch(1, "((a,b),c);\nmore;\n").ok());
    ASSERT_TRUE(wal->AppendBatch(2, "(d,e);").ok());
    ASSERT_TRUE(wal->AppendRetract(1).ok());
  }
  Result<std::vector<SvcWalRecord>> records = svc::ReplaySvcWal(path, 1234);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].kind, SvcWalRecord::Kind::kBatch);
  EXPECT_EQ((*records)[0].id, 1);
  EXPECT_EQ((*records)[0].payload, "((a,b),c);\nmore;\n");
  EXPECT_EQ((*records)[1].kind, SvcWalRecord::Kind::kBatch);
  EXPECT_EQ((*records)[1].id, 2);
  EXPECT_EQ((*records)[2].kind, SvcWalRecord::Kind::kRetract);
  EXPECT_EQ((*records)[2].id, 1);
  std::remove(path.c_str());
}

TEST(SvcWalTest, WrongFingerprintRefused) {
  const std::string path = TempPath("svc_wal_fingerprint");
  std::remove(path.c_str());
  {
    Result<SvcWal> wal = SvcWal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->AppendHeader(1234).ok());
    ASSERT_TRUE(wal->AppendBatch(1, "(a,b);").ok());
  }
  Result<std::vector<SvcWalRecord>> records = svc::ReplaySvcWal(path, 9999);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SvcWalTest, TornTailDroppedButMidFileCorruptionRefused) {
  const std::string path = TempPath("svc_wal_torn");
  std::remove(path.c_str());
  {
    Result<SvcWal> wal = SvcWal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->AppendHeader(7).ok());
    ASSERT_TRUE(wal->AppendBatch(1, "(a,b);").ok());
    ASSERT_TRUE(wal->AppendBatch(2, "(c,d);").ok());
  }
  Result<std::string> text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  const size_t full = text->size();

  // Every truncation point inside the final record must replay as
  // "batch 2 was never acknowledged", with the valid prefix ending
  // exactly after batch 1's line.
  const size_t second_line_start = text->find("\n", text->find("BATCH 1")) + 1;
  for (const size_t cut : {full - 1, second_line_start + 3}) {
    ASSERT_TRUE(WriteFileAtomic(path, text->substr(0, cut)).ok());
    size_t valid_prefix = 0;
    Result<std::vector<SvcWalRecord>> records =
        svc::ReplaySvcWal(path, 7, &valid_prefix);
    ASSERT_TRUE(records.ok()) << "cut=" << cut << ": "
                              << records.status().ToString();
    ASSERT_EQ(records->size(), 1u) << "cut=" << cut;
    EXPECT_EQ((*records)[0].id, 1);
    EXPECT_EQ(valid_prefix, second_line_start);
  }

  // A damaged record with more content after it is not a crash
  // artifact — replay must refuse the whole journal.
  std::string corrupted = *text;
  corrupted[text->find("BATCH 1") + 2] ^= 0x20;  // inside batch 1's line
  ASSERT_TRUE(WriteFileAtomic(path, corrupted).ok());
  Result<std::vector<SvcWalRecord>> refused = svc::ReplaySvcWal(path, 7);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// --- Protocol ----------------------------------------------------------

TEST(SvcProtocolTest, FrameRoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string body = "INGEST deadline-ms=100\n((a,b),c);\n";
  ASSERT_TRUE(svc::WriteFrame(fds[1], body).ok());
  ASSERT_TRUE(svc::WriteFrame(fds[1], "HEALTH\n").ok());
  close(fds[1]);
  std::string got;
  Result<bool> read = svc::ReadFrame(fds[0], &got);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_TRUE(*read);
  EXPECT_EQ(got, body);
  read = svc::ReadFrame(fds[0], &got);
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(*read);
  EXPECT_EQ(got, "HEALTH\n");
  // Closed writer at a frame boundary is a clean EOF, not an error.
  read = svc::ReadFrame(fds[0], &got);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(*read);
  close(fds[0]);
}

TEST(SvcProtocolTest, CorruptAndOversizedFramesRefused) {
  // CRC mismatch: a valid length word, garbage CRC.
  {
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    const unsigned char frame[] = {4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef,
                                   'B', 'O', 'D', 'Y'};
    ASSERT_EQ(write(fds[1], frame, sizeof(frame)),
              static_cast<ssize_t>(sizeof(frame)));
    close(fds[1]);
    std::string got;
    Result<bool> read = svc::ReadFrame(fds[0], &got);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
    close(fds[0]);
  }
  // A length word past kMaxFrameBytes must be refused before any
  // allocation-sized read.
  {
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    const unsigned char frame[] = {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0};
    ASSERT_EQ(write(fds[1], frame, sizeof(frame)),
              static_cast<ssize_t>(sizeof(frame)));
    close(fds[1]);
    std::string got;
    Result<bool> read = svc::ReadFrame(fds[0], &got);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
    close(fds[0]);
  }
  // EOF mid-frame (a torn write) is corruption, not a clean EOF.
  {
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    const unsigned char partial[] = {9, 0, 0};
    ASSERT_EQ(write(fds[1], partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
    close(fds[1]);
    std::string got;
    Result<bool> read = svc::ReadFrame(fds[0], &got);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
    close(fds[0]);
  }
}

TEST(SvcProtocolTest, RequestAndResponseParsing) {
  Result<Request> request =
      svc::ParseRequest("ingest deadline-ms=250\n(a,b);\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->verb, "INGEST");
  ASSERT_EQ(request->args.size(), 1u);
  EXPECT_EQ(request->args[0], "deadline-ms=250");
  EXPECT_EQ(request->payload, "(a,b);\n");
  EXPECT_FALSE(svc::ParseRequest("").ok());
  EXPECT_FALSE(svc::ParseRequest("\npayload").ok());

  Response shed;
  shed.status = Status::Unavailable("queue full");
  shed.retry_after_ms = 75;
  Result<ParsedResponse> parsed =
      svc::ParseResponse(svc::RenderResponse(shed));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->code_name, "Unavailable");
  EXPECT_EQ(parsed->retry_after_ms, 75);
  EXPECT_NE(parsed->message.find("queue full"), std::string::npos);

  Response ok;
  ok.payload = "a,b\n1,2\n";
  parsed = svc::ParseResponse(svc::RenderResponse(ok));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->payload, "a,b\n1,2\n");
}

// --- Admission ---------------------------------------------------------

TEST(SvcAdmissionTest, QueueDepthAndByteWatermarkShed) {
  svc::AdmissionConfig config;
  config.max_inflight = 2;
  config.max_inflight_bytes = 100;
  config.retry_after_ms = 33;
  svc::AdmissionController controller(config);

  svc::AdmissionDecision a = controller.TryAdmit(40);
  svc::AdmissionDecision b = controller.TryAdmit(40);
  EXPECT_TRUE(a.admitted);
  EXPECT_TRUE(b.admitted);
  // Queue depth: third concurrent request sheds whatever its size.
  svc::AdmissionDecision c = controller.TryAdmit(1);
  EXPECT_FALSE(c.admitted);
  EXPECT_EQ(c.retry_after_ms, 33);
  EXPECT_FALSE(c.reason.empty());
  controller.Release(40);
  // Byte watermark: depth is fine now, but 40 + 80 > 100.
  svc::AdmissionDecision d = controller.TryAdmit(80);
  EXPECT_FALSE(d.admitted);
  svc::AdmissionDecision e = controller.TryAdmit(50);
  EXPECT_TRUE(e.admitted);
  EXPECT_EQ(controller.shed(), 2);
  EXPECT_EQ(controller.admitted_total(), 3);
  EXPECT_EQ(controller.inflight(), 2);
}

// --- Service semantics -------------------------------------------------

TEST(SvcServiceTest, IngestQueryRetractLifecycle) {
  const std::string wal = TempPath("svc_service_lifecycle");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  config.checkpoint_path = TempPath("svc_service_ckpt");
  config.health_report_path = TempPath("svc_service_health");
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const std::string batch1 = MakeBatch(101, 4);
  const std::string batch2 = MakeBatch(202, 3);
  Response r1 = (*service)->Handle(MakeRequest("INGEST", {}, batch1));
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  EXPECT_NE(r1.payload.find("id=1"), std::string::npos);
  Response r2 = (*service)->Handle(MakeRequest("INGEST", {}, batch2));
  ASSERT_TRUE(r2.status.ok());
  EXPECT_NE(r2.payload.find("id=2"), std::string::npos);

  // QUERY answers exactly the batch pipeline over both batches.
  EXPECT_EQ(QueryFrequent(**service),
            BatchPipelineCsv({batch1, batch2}, config.mining, 1));

  // Retraction: unknown id is NotFound; a live id subtracts its
  // contribution exactly — back to the batch-1-only answer.
  Response missing = (*service)->Handle(MakeRequest("RETRACT", {"99"}));
  EXPECT_EQ(missing.status.code(), StatusCode::kNotFound);
  Response retract = (*service)->Handle(MakeRequest("RETRACT", {"2"}));
  ASSERT_TRUE(retract.status.ok()) << retract.status.ToString();
  EXPECT_EQ(QueryFrequent(**service),
            BatchPipelineCsv({batch1}, config.mining, 1));
  // Retracting it again is NotFound, not a double subtraction.
  EXPECT_EQ((*service)->Handle(MakeRequest("RETRACT", {"2"})).status.code(),
            StatusCode::kNotFound);

  // HEALTH reflects the live state and never fails.
  Response health = (*service)->Handle(MakeRequest("HEALTH"));
  ASSERT_TRUE(health.status.ok());
  EXPECT_NE(health.payload.find("\"live_batches\":1"), std::string::npos);
  EXPECT_NE(health.payload.find("\"draining\":false"), std::string::npos);

  // QUERY support: every returned row carries the queried labels.
  Response support = (*service)->Handle(
      MakeRequest("QUERY", {"support", "t1", "t2", "0"}));
  ASSERT_TRUE(support.status.ok());

  // DRAIN: mutations refuse, queries and health keep answering.
  Response drain = (*service)->Handle(MakeRequest("DRAIN"));
  ASSERT_TRUE(drain.status.ok());
  Response late = (*service)->Handle(MakeRequest("INGEST", {}, batch2));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(
      (*service)->Handle(MakeRequest("QUERY", {"frequent-pairs"})).status.ok());
  EXPECT_TRUE((*service)->Handle(MakeRequest("HEALTH")).status.ok());
  ASSERT_TRUE((*service)->FinishDrain().ok());
  EXPECT_TRUE(ReadFileToString(config.checkpoint_path).ok());
  Result<std::string> report = ReadFileToString(config.health_report_path);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("\"draining\":true"), std::string::npos);

  RemoveStore(wal);
  std::remove(config.checkpoint_path.c_str());
  std::remove(config.health_report_path.c_str());
}

TEST(SvcServiceTest, UnknownVerbAndOversizedBatchRejected) {
  const std::string wal = TempPath("svc_service_reject");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  config.max_batch_bytes = 16;
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->Handle(MakeRequest("BOGUS")).status.code(),
            StatusCode::kInvalidArgument);
  Response big = (*service)->Handle(
      MakeRequest("INGEST", {}, "((a,b),(c,d));((e,f),(g,h));"));
  EXPECT_EQ(big.status.code(), StatusCode::kInvalidArgument);
  // A rejected batch must not consume an id or touch state.
  Response ok = (*service)->Handle(MakeRequest("INGEST", {}, "(a,b);"));
  ASSERT_TRUE(ok.status.ok());
  EXPECT_NE(ok.payload.find("id=1"), std::string::npos);
  RemoveStore(wal);
}

TEST(SvcServiceTest, ByteWatermarkShedsWithRetryAfterWhileHealthAnswers) {
  const std::string wal = TempPath("svc_service_shed");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  config.admission.max_inflight_bytes = 8;  // any real batch sheds
  config.admission.retry_after_ms = 44;
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok());
  Response shed =
      (*service)->Handle(MakeRequest("INGEST", {}, "((a,b),(c,d));"));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.retry_after_ms, 44);
  // The overload contract: every rejection is accounted, and HEALTH
  // answers while the service refuses work.
  EXPECT_EQ((*service)->admission().shed(), 1);
  Response health = (*service)->Handle(MakeRequest("HEALTH"));
  ASSERT_TRUE(health.status.ok());
  EXPECT_NE(health.payload.find("\"shed\":1"), std::string::npos);
  RemoveStore(wal);
}

TEST(SvcServiceTest, PerRequestDeadlineTripsAsGovernance) {
  const std::string wal = TempPath("svc_service_deadline");
  RemoveStore(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(BaseConfig(wal));
  ASSERT_TRUE(service.ok());
  // A zero-millisecond client deadline is already expired at the first
  // governance checkpoint: the ingest trips, nothing is applied.
  Response tripped = (*service)->Handle(
      MakeRequest("INGEST", {"deadline-ms=0"}, MakeBatch(7, 50)));
  EXPECT_TRUE(IsGovernanceTrip(tripped.status)) << tripped.status.ToString();
  Response ok = (*service)->Handle(MakeRequest("INGEST", {}, "(a,b);"));
  ASSERT_TRUE(ok.status.ok());
  EXPECT_NE(ok.payload.find("id=1"), std::string::npos)
      << "tripped ingest must not have consumed an id";
  RemoveStore(wal);
}

// --- Crash contract ----------------------------------------------------

TEST(SvcServiceTest, AbandonedServiceReplaysByteIdentical) {
  for (const MinerVariant variant :
       {MinerVariant::kCousin, MinerVariant::kFreeTree}) {
    for (const int threads : {1, 3}) {
      SCOPED_TRACE("variant=" + std::to_string(static_cast<int>(variant)) +
                   " threads=" + std::to_string(threads));
      const std::string wal = TempPath("svc_replay_equiv");
      RemoveStore(wal);
      ServiceConfig config = BaseConfig(wal);
      config.mining.variant = variant;
      const std::vector<std::string> batches = {
          MakeBatch(11, 5), MakeBatch(22, 4), MakeBatch(33, 6)};

      std::string live_csv;
      {
        Result<std::unique_ptr<CousinService>> service =
            CousinService::Start(config);
        ASSERT_TRUE(service.ok()) << service.status().ToString();
        for (const std::string& batch : batches) {
          ASSERT_TRUE(
              (*service)->Handle(MakeRequest("INGEST", {}, batch)).status.ok());
        }
        live_csv = QueryFrequent(**service);
        // The service is destroyed here without DRAIN — the kill -9
        // stand-in. The WAL is the only thing that survives.
      }

      Result<std::unique_ptr<CousinService>> revived =
          CousinService::Start(config);
      ASSERT_TRUE(revived.ok()) << revived.status().ToString();
      EXPECT_EQ((*revived)->replayed_batches(), 3);
      const std::string recovered_csv = QueryFrequent(**revived);
      EXPECT_EQ(recovered_csv, live_csv);
      // The byte-identity contract: recovery == a batch-CLI-shaped run
      // over the acknowledged batches, at every thread count.
      EXPECT_EQ(recovered_csv,
                BatchPipelineCsv(batches, config.mining, threads));
      RemoveStore(wal);
    }
  }
}

TEST(SvcServiceTest, ReplayHonorsRetractionsAndContinuesIds) {
  const std::string wal = TempPath("svc_replay_retract");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  const std::string batch1 = MakeBatch(44, 4);
  const std::string batch2 = MakeBatch(55, 4);
  std::string live_csv;
  {
    Result<std::unique_ptr<CousinService>> service =
        CousinService::Start(config);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(
        (*service)->Handle(MakeRequest("INGEST", {}, batch1)).status.ok());
    ASSERT_TRUE(
        (*service)->Handle(MakeRequest("INGEST", {}, batch2)).status.ok());
    ASSERT_TRUE(
        (*service)->Handle(MakeRequest("RETRACT", {"1"})).status.ok());
    live_csv = QueryFrequent(**service);
  }
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  // Replay reproduces the pre-crash answer byte for byte. (It is NOT
  // compared against a from-scratch run over batch 2 alone: a
  // retracted batch's labels stay interned, so label ids — and with
  // them row order — legitimately differ from a run that never saw
  // batch 1. The counted subtraction is exact; the rendering order is
  // an interning artifact.)
  EXPECT_EQ(QueryFrequent(**revived), live_csv);
  // New ingests continue past every id the WAL ever issued.
  Response next = (*revived)->Handle(MakeRequest("INGEST", {}, batch1));
  ASSERT_TRUE(next.status.ok());
  EXPECT_NE(next.payload.find("id=3"), std::string::npos);
  RemoveStore(wal);
}

TEST(SvcServiceTest, TornFinalRecordReplaysAsUnacknowledged) {
  const std::string wal = TempPath("svc_replay_torn");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  const std::string batch1 = MakeBatch(66, 4);
  const std::string batch2 = MakeBatch(77, 4);
  {
    Result<std::unique_ptr<CousinService>> service =
        CousinService::Start(config);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(
        (*service)->Handle(MakeRequest("INGEST", {}, batch1)).status.ok());
    ASSERT_TRUE(
        (*service)->Handle(MakeRequest("INGEST", {}, batch2)).status.ok());
  }
  // Tear the final record at several seeded offsets: every prefix
  // strictly inside batch 2's line must recover to batch 1 alone. In
  // the v2 layout the damage lands in the active segment file.
  const std::string segment = ActiveSegmentPath(wal);
  Result<std::string> text = ReadFileToString(segment);
  ASSERT_TRUE(text.ok());
  const size_t batch2_start = text->find("BATCH 2");
  ASSERT_NE(batch2_start, std::string::npos);
  for (const size_t cut :
       {text->size() - 1, batch2_start + 9, batch2_start}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    ASSERT_TRUE(WriteFileAtomic(segment, text->substr(0, cut)).ok());
    Result<std::unique_ptr<CousinService>> revived =
        CousinService::Start(config);
    ASSERT_TRUE(revived.ok()) << revived.status().ToString();
    EXPECT_EQ((*revived)->replayed_batches(), 1);
    EXPECT_EQ(QueryFrequent(**revived),
              BatchPipelineCsv({batch1}, config.mining, 1));
    // The torn tail was trimmed on Start: a fresh ingest must append
    // cleanly and survive the next replay.
    Response next = (*revived)->Handle(MakeRequest("INGEST", {}, batch2));
    ASSERT_TRUE(next.status.ok()) << next.status.ToString();
    EXPECT_NE(next.payload.find("id=2"), std::string::npos);
    revived->reset();
    Result<std::unique_ptr<CousinService>> again =
        CousinService::Start(config);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(QueryFrequent(**again),
              BatchPipelineCsv({batch1, batch2}, config.mining, 1));
  }
  RemoveStore(wal);
}

TEST(SvcServiceTest, MidFileCorruptionRefusesToStart) {
  const std::string wal = TempPath("svc_replay_corrupt");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  {
    Result<std::unique_ptr<CousinService>> service =
        CousinService::Start(config);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)
                    ->Handle(MakeRequest("INGEST", {}, MakeBatch(88, 3)))
                    .status.ok());
    ASSERT_TRUE((*service)
                    ->Handle(MakeRequest("INGEST", {}, MakeBatch(99, 3)))
                    .status.ok());
  }
  const std::string segment = ActiveSegmentPath(wal);
  Result<std::string> text = ReadFileToString(segment);
  ASSERT_TRUE(text.ok());
  std::string corrupted = *text;
  corrupted[text->find("BATCH 1") + 10] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(segment, corrupted).ok());
  Result<std::unique_ptr<CousinService>> refused =
      CousinService::Start(config);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCorruption);
  RemoveStore(wal);
}

TEST(SvcServiceTest, OptionsMismatchRefusesToStart) {
  const std::string wal = TempPath("svc_replay_options");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  {
    Result<std::unique_ptr<CousinService>> service =
        CousinService::Start(config);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)
                    ->Handle(MakeRequest("INGEST", {}, MakeBatch(12, 3)))
                    .status.ok());
  }
  ServiceConfig changed = config;
  changed.mining.min_support = 5;
  Result<std::unique_ptr<CousinService>> refused =
      CousinService::Start(changed);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  // The original options still open it fine.
  Result<std::unique_ptr<CousinService>> ok = CousinService::Start(config);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  RemoveStore(wal);
}

// --- Storage engine ----------------------------------------------------

TEST(SvcStorageTest, HealthReportsStorageSchema) {
  const std::string wal = TempPath("svc_storage_health");
  RemoveStore(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(BaseConfig(wal));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(
      (*service)->Handle(MakeRequest("INGEST", {}, MakeBatch(5, 3))).status.ok());
  Response health = (*service)->Handle(MakeRequest("HEALTH"));
  ASSERT_TRUE(health.status.ok());
  // The storage section's schema is a pinned operator contract: every
  // key below is consumed by tools/daemon_drill.sh and dashboards.
  for (const char* key :
       {"\"storage\":{\"segments\":1", "\"wal_bytes\":", "\"sealed_bytes\":0",
        "\"last_compaction\":0", "\"replayed_records\":0", "\"recovery_ms\":",
        "\"read_only\":false", "\"reason\":\"\""}) {
    EXPECT_NE(health.payload.find(key), std::string::npos)
        << "missing " << key << " in " << health.payload;
  }
  RemoveStore(wal);
}

TEST(SvcStorageTest, CompactionBoundsReplayToTheTail) {
  const std::string wal = TempPath("svc_storage_compact");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  const std::vector<std::string> batches = {
      MakeBatch(301, 4), MakeBatch(302, 4), MakeBatch(303, 4),
      MakeBatch(304, 3), MakeBatch(305, 3), MakeBatch(306, 3)};
  std::string live_csv;
  {
    Result<std::unique_ptr<CousinService>> service =
        CousinService::Start(config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*service)
                      ->Handle(MakeRequest("INGEST", {}, batches[i]))
                      .status.ok());
    }
    Response compacted = (*service)->Handle(MakeRequest("COMPACT"));
    ASSERT_TRUE(compacted.status.ok()) << compacted.status.ToString();
    EXPECT_NE(compacted.payload.find("compaction=1"), std::string::npos);
    for (int i = 4; i < 6; ++i) {
      ASSERT_TRUE((*service)
                      ->Handle(MakeRequest("INGEST", {}, batches[i]))
                      .status.ok());
    }
    live_csv = QueryFrequent(**service);
    // Abandoned without DRAIN: the kill -9 stand-in.
  }
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  // All six batches are live, but only the two post-compaction records
  // were replayed from segments — the snapshot anchored the rest.
  EXPECT_EQ((*revived)->replayed_batches(), 6);
  EXPECT_EQ((*revived)->replayed_records(), 2);
  EXPECT_EQ(QueryFrequent(**revived), live_csv);
  EXPECT_EQ(QueryFrequent(**revived),
            BatchPipelineCsv(batches, config.mining, 1));
  Response health = (*revived)->Handle(MakeRequest("HEALTH"));
  ASSERT_TRUE(health.status.ok());
  EXPECT_NE(health.payload.find("\"last_compaction\":1"), std::string::npos);
  EXPECT_NE(health.payload.find("\"replayed_records\":2"), std::string::npos);
  // Ids continue past everything the store ever issued.
  Response next =
      (*revived)->Handle(MakeRequest("INGEST", {}, MakeBatch(307, 2)));
  ASSERT_TRUE(next.status.ok());
  EXPECT_NE(next.payload.find("id=7"), std::string::npos);
  RemoveStore(wal);
}

TEST(SvcStorageTest, RotationAndAutoCompactionPreserveAnswers) {
  const std::string wal = TempPath("svc_storage_rotate");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  config.wal_segment_bytes = 256;  // every batch rotates
  config.wal_compact_bytes = 1;    // every sealed byte auto-compacts
  const std::vector<std::string> batches = {
      MakeBatch(401, 3), MakeBatch(402, 3), MakeBatch(403, 3)};
  std::string live_csv;
  {
    Result<std::unique_ptr<CousinService>> service =
        CousinService::Start(config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    for (const std::string& batch : batches) {
      ASSERT_TRUE(
          (*service)->Handle(MakeRequest("INGEST", {}, batch)).status.ok());
    }
    live_csv = QueryFrequent(**service);
  }
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->replayed_batches(), 3);
  EXPECT_EQ(QueryFrequent(**revived), live_csv);
  EXPECT_EQ(QueryFrequent(**revived),
            BatchPipelineCsv(batches, config.mining, 1));
  RemoveStore(wal);
}

TEST(SvcStorageTest, RetentionHorizonBlocksOldRetractsButKeepsTallies) {
  const std::string wal = TempPath("svc_storage_retention");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  config.retain_batches = 1;
  const std::string batch1 = MakeBatch(501, 4);
  const std::string batch2 = MakeBatch(502, 4);
  std::string live_csv;
  {
    Result<std::unique_ptr<CousinService>> service =
        CousinService::Start(config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ASSERT_TRUE(
        (*service)->Handle(MakeRequest("INGEST", {}, batch1)).status.ok());
    ASSERT_TRUE(
        (*service)->Handle(MakeRequest("INGEST", {}, batch2)).status.ok());
    ASSERT_TRUE((*service)->Handle(MakeRequest("COMPACT")).status.ok());
    // Batch 1 fell past the horizon: still tallied, no longer
    // retractable. Batch 2 (most recent) keeps its payload.
    Response blocked = (*service)->Handle(MakeRequest("RETRACT", {"1"}));
    EXPECT_EQ(blocked.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(blocked.status.message().find("retention"), std::string::npos)
        << blocked.status.ToString();
    Response allowed = (*service)->Handle(MakeRequest("RETRACT", {"2"}));
    ASSERT_TRUE(allowed.status.ok()) << allowed.status.ToString();
    EXPECT_EQ(QueryFrequent(**service),
              BatchPipelineCsv({batch1}, config.mining, 1));
    live_csv = QueryFrequent(**service);
  }
  // The tail RETRACT replays against the snapshot-restored state.
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(QueryFrequent(**revived), live_csv);
  RemoveStore(wal);
}

TEST(SvcStorageTest, MigratesV1SingleFileWalInPlace) {
  const std::string wal = TempPath("svc_storage_migrate");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  const std::string batch1 = MakeBatch(601, 4);
  const std::string batch2 = MakeBatch(602, 4);
  // A PR-8-era daemon left a single-file v1 journal behind.
  {
    Result<SvcWal> v1 = SvcWal::Open(wal);
    ASSERT_TRUE(v1.ok()) << v1.status().ToString();
    ASSERT_TRUE(
        v1->AppendHeader(svc::MiningOptionsFingerprint(config.mining)).ok());
    ASSERT_TRUE(v1->AppendBatch(1, batch1).ok());
    ASSERT_TRUE(v1->AppendBatch(2, batch2).ok());
  }
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->replayed_batches(), 2);
  // The file is now a v2 directory with a manifest.
  EXPECT_TRUE(std::filesystem::is_directory(wal));
  EXPECT_TRUE(std::filesystem::exists(wal + "/MANIFEST"));
  EXPECT_EQ(QueryFrequent(**service),
            BatchPipelineCsv({batch1, batch2}, config.mining, 1));
  // Ids continue past the v1 journal's; a restart replays from the
  // migration snapshot (zero tail records).
  Response next = (*service)->Handle(MakeRequest("INGEST", {}, MakeBatch(603, 2)));
  ASSERT_TRUE(next.status.ok());
  EXPECT_NE(next.payload.find("id=3"), std::string::npos);
  const std::string live_csv = QueryFrequent(**service);
  service->reset();
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->replayed_batches(), 3);
  EXPECT_EQ((*revived)->replayed_records(), 1);  // only the post-migration ingest
  EXPECT_EQ(QueryFrequent(**revived), live_csv);
  RemoveStore(wal);
}

TEST(SvcStorageTest, CompactRunsWhileDraining) {
  // COMPACT is the storage-recovery verb: it must stay reachable while
  // the daemon drains (and under overload — it bypasses admission).
  const std::string wal = TempPath("svc_storage_drain_compact");
  RemoveStore(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(BaseConfig(wal));
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)
                  ->Handle(MakeRequest("INGEST", {}, MakeBatch(701, 3)))
                  .status.ok());
  ASSERT_TRUE((*service)->Handle(MakeRequest("DRAIN")).status.ok());
  Response compacted = (*service)->Handle(MakeRequest("COMPACT"));
  ASSERT_TRUE(compacted.status.ok()) << compacted.status.ToString();
  // Draining still refuses mutations after the compaction.
  EXPECT_EQ((*service)
                ->Handle(MakeRequest("INGEST", {}, MakeBatch(702, 2)))
                .status.code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE((*service)->FinishDrain().ok());
  RemoveStore(wal);
}

// --- Fault sites -------------------------------------------------------

TEST(SvcFaultTest, WalAppendFaultLeavesStateUntouched) {
  const std::string wal = TempPath("svc_fault_wal_append");
  RemoveStore(wal);
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(BaseConfig(wal));
  ASSERT_TRUE(service.ok());
  const std::string batch = MakeBatch(13, 3);

  registry.Arm("svc.wal.append", 1);
  Response failed = (*service)->Handle(MakeRequest("INGEST", {}, batch));
  registry.DisarmAll();
  EXPECT_EQ(failed.status.code(), StatusCode::kUnavailable);
  // Nothing was applied: the retry lands on the same id and yields the
  // same final state as a never-faulted run.
  Response retried = (*service)->Handle(MakeRequest("INGEST", {}, batch));
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  EXPECT_NE(retried.payload.find("id=1"), std::string::npos);
  service->reset();
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(BaseConfig(wal));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->replayed_batches(), 1);
  RemoveStore(wal);
}

TEST(SvcFaultTest, SwapFaultLosesAckButNotDurability) {
  const std::string wal = TempPath("svc_fault_swap");
  RemoveStore(wal);
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  ServiceConfig config = BaseConfig(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok());
  const std::string batch = MakeBatch(14, 3);

  registry.Arm("svc.swap", 1);
  Response failed = (*service)->Handle(MakeRequest("INGEST", {}, batch));
  registry.DisarmAll();
  EXPECT_EQ(failed.status.code(), StatusCode::kUnavailable);
  // The classic WAL ambiguity window: the ack was lost but the batch
  // is durable — a restart replays it.
  service->reset();
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->replayed_batches(), 1);
  EXPECT_EQ(QueryFrequent(**revived),
            BatchPipelineCsv({batch}, config.mining, 1));
  RemoveStore(wal);
}

// --- Serving over a byte stream ----------------------------------------

TEST(SvcServeTest, ServeConnectionOverPipes) {
  const std::string wal = TempPath("svc_serve_pipes");
  RemoveStore(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(BaseConfig(wal));
  ASSERT_TRUE(service.ok());

  int to_server[2];
  int to_client[2];
  ASSERT_EQ(pipe(to_server), 0);
  ASSERT_EQ(pipe(to_client), 0);
  std::thread server([&] {
    svc::ServeConnection(to_server[0], to_client[1], **service, nullptr);
    close(to_server[0]);
    close(to_client[1]);
  });

  auto roundtrip = [&](const std::string& body) {
    EXPECT_TRUE(svc::WriteFrame(to_server[1], body).ok());
    std::string response_body;
    Result<bool> got = svc::ReadFrame(to_client[0], &response_body);
    EXPECT_TRUE(got.ok() && *got);
    Result<ParsedResponse> parsed = svc::ParseResponse(response_body);
    EXPECT_TRUE(parsed.ok());
    return *parsed;
  };

  ParsedResponse ingest = roundtrip("INGEST\n" + MakeBatch(15, 3));
  EXPECT_TRUE(ingest.ok) << ingest.message;
  ParsedResponse query = roundtrip("QUERY frequent-pairs\n");
  EXPECT_TRUE(query.ok);
  EXPECT_NE(query.payload.find("label1"), std::string::npos);
  // A garbage verb comes back as a clean ERR on the same connection.
  ParsedResponse bogus = roundtrip("NONSENSE\n");
  EXPECT_FALSE(bogus.ok);
  EXPECT_EQ(bogus.code_name, "InvalidArgument");
  close(to_server[1]);  // client hangs up; server loop exits on EOF
  server.join();
  close(to_client[0]);
  RemoveStore(wal);
}

}  // namespace
}  // namespace cousins
