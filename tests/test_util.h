// Shared helpers for the cousins test suite.

#ifndef COUSINS_TESTS_TEST_UTIL_H_
#define COUSINS_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/cousin_pair.h"
#include "tree/newick.h"
#include "tree/tree.h"
#include "util/check.h"

namespace cousins {
namespace testing_util {

/// Parses a Newick string or aborts — for literal test fixtures.
inline Tree MustParse(const std::string& newick,
                      std::shared_ptr<LabelTable> labels = nullptr) {
  Result<Tree> t = ParseNewick(newick, std::move(labels));
  COUSINS_CHECK(t.ok());
  return std::move(t).value();
}

/// A genealogy realizing the paper's §2 worked example around node c:
///
///   gg -> { gp, u1 }
///   gp -> { p, aunt },  p -> { c, s },  aunt -> { e }
///   u1 -> { g, u2 },    u2 -> { h },    h -> { f }
///
/// Heights below the relevant LCAs give: dist(c,s)=0 (siblings),
/// dist(c,aunt)=0.5 (aunt-niece), dist(c,e)=1 (first cousins),
/// dist(c,g)=1.5 (first cousin once removed), dist(c,h)=2 (second
/// cousins), dist(c,f)=2.5 (second cousin once removed).
inline Tree FamilyTree(std::shared_ptr<LabelTable> labels = nullptr) {
  return MustParse("(((c,s)p,(e)aunt)gp,(g,((f)h)u2)u1)gg;",
                   std::move(labels));
}

/// First node carrying label `name`, or kNoNode.
inline NodeId FindByLabel(const Tree& tree, const std::string& name) {
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (tree.has_label(v) && tree.label_name(v) == name) return v;
  }
  return kNoNode;
}

/// Formats items for readable gtest failure messages.
inline std::string ItemsToString(const LabelTable& labels,
                                 const std::vector<CousinPairItem>& items) {
  std::string out;
  for (const CousinPairItem& item : items) {
    out += FormatCousinPairItem(labels, item);
    out += "\n";
  }
  return out;
}

}  // namespace testing_util
}  // namespace cousins

#endif  // COUSINS_TESTS_TEST_UTIL_H_
