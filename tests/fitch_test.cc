#include <gtest/gtest.h>

#include "gen/yule_generator.h"
#include "seq/fitch.h"
#include "seq/jukes_cantor.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

Alignment Make(const std::vector<std::pair<std::string, std::string>>& rows) {
  std::string fasta;
  for (const auto& [name, seq] : rows) {
    fasta += ">" + name + "\n" + seq + "\n";
  }
  return ParseFasta(fasta).value();
}

TEST(FitchTest, HandComputedFourTaxa) {
  // Site pattern A A G G on ((A1,A2),(G1,G2)) needs 1 change;
  // on ((A1,G1),(A2,G2)) it needs 2.
  Alignment a = Make({{"w", "A"}, {"x", "A"}, {"y", "G"}, {"z", "G"}});
  Tree grouped = MustParse("((w,x),(y,z));");
  Tree split = MustParse("((w,y),(x,z));");
  EXPECT_EQ(FitchScore(grouped, a).value(), 1);
  EXPECT_EQ(FitchScore(split, a).value(), 2);
}

TEST(FitchTest, ConstantSitesCostNothing) {
  Alignment a =
      Make({{"w", "AAAA"}, {"x", "AAAA"}, {"y", "AAAA"}, {"z", "AAAA"}});
  Tree t = MustParse("((w,x),(y,z));");
  EXPECT_EQ(FitchScore(t, a).value(), 0);
}

TEST(FitchTest, SitesAreAdditive) {
  Alignment a = Make({{"w", "AC"}, {"x", "AG"}, {"y", "GC"}, {"z", "GG"}});
  Tree t = MustParse("((w,x),(y,z));");
  Alignment site1 = Make({{"w", "A"}, {"x", "A"}, {"y", "G"}, {"z", "G"}});
  Alignment site2 = Make({{"w", "C"}, {"x", "G"}, {"y", "C"}, {"z", "G"}});
  EXPECT_EQ(FitchScore(t, a).value(),
            FitchScore(t, site1).value() + FitchScore(t, site2).value());
}

TEST(FitchTest, ScoreBoundsPerSite) {
  // Any site costs at most (#distinct bases present - 1) and at least
  // (#distinct - 1 >= 1 when not constant ... >= 1 if non-constant).
  Alignment a = Make({{"w", "A"}, {"x", "C"}, {"y", "G"}, {"z", "T"}});
  Tree t = MustParse("((w,x),(y,z));");
  EXPECT_EQ(FitchScore(t, a).value(), 3);
}

TEST(FitchTest, TrueTopologyScoresBest) {
  // Simulate on a clock-like model tree; its Fitch score should not
  // exceed a random tree's on the same data (overwhelmingly lower).
  Rng rng(7);
  std::vector<std::string> taxa = MakeTaxa(12);
  Tree truth = RandomCoalescentTree(taxa, rng, nullptr, 0.05);
  SimulateOptions opt;
  opt.num_sites = 300;
  Alignment a = SimulateAlignment(truth, opt, rng);
  const int64_t true_score = FitchScore(truth, a).value();
  int wins = 0;
  for (int i = 0; i < 10; ++i) {
    Tree random_tree = RandomCoalescentTree(taxa, rng, truth.labels_ptr());
    wins += FitchScore(random_tree, a).value() >= true_score;
  }
  EXPECT_GE(wins, 9);
}

TEST(FitchTest, ErrorsOnMissingTaxon) {
  Alignment a = Make({{"w", "A"}, {"x", "A"}});
  Tree t = MustParse("((w,x),(y,z));");
  Result<int64_t> r = FitchScore(t, a);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FitchTest, ErrorsOnMultifurcation) {
  Alignment a = Make({{"w", "A"}, {"x", "A"}, {"y", "A"}});
  Tree t = MustParse("(w,x,y);");
  EXPECT_FALSE(FitchScore(t, a).ok());
}

TEST(FitchTest, ErrorsOnUnlabeledLeafAndEmptyInputs) {
  Alignment a = Make({{"w", "A"}, {"x", "A"}});
  EXPECT_FALSE(FitchScore(MustParse("(w,);"), a).ok());
  EXPECT_FALSE(FitchScore(Tree(), a).ok());
  EXPECT_FALSE(FitchScore(MustParse("(w,x);"), Alignment()).ok());
}

}  // namespace
}  // namespace cousins
