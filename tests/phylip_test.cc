#include <gtest/gtest.h>

#include "seq/phylip.h"

namespace cousins {
namespace {

TEST(PhylipTest, SequentialFormat) {
  auto a = ParsePhylip("2 6\nhuman  ACGTAC\nchimp  ACGTAA\n");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->num_taxa(), 2);
  EXPECT_EQ(a->num_sites(), 6);
  EXPECT_EQ(a->rows[0].taxon, "human");
  EXPECT_EQ(a->rows[1].bases[5], 0u);  // A
}

TEST(PhylipTest, InterleavedFormat) {
  auto a = ParsePhylip(
      "2 8\n"
      "human  ACGT\n"
      "chimp  ACGA\n"
      "TTTT\n"
      "GGGG\n");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->num_sites(), 8);
  EXPECT_EQ(a->rows[0].bases[4], 3u);  // T
  EXPECT_EQ(a->rows[1].bases[4], 2u);  // G
}

TEST(PhylipTest, SpacesInsideSequencesIgnored) {
  auto a = ParsePhylip("1 8\nx  ACGT ACGT\n");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_sites(), 8);
}

TEST(PhylipTest, Errors) {
  EXPECT_FALSE(ParsePhylip("").ok());
  EXPECT_FALSE(ParsePhylip("junk\nx ACG\n").ok());     // bad header
  EXPECT_FALSE(ParsePhylip("2 4\nx ACGT\n").ok());     // too few rows
  EXPECT_FALSE(ParsePhylip("1 4\nx ACG\n").ok());      // short sequence
  EXPECT_FALSE(ParsePhylip("1 4\nx ACGTT\n").ok());    // long sequence
  EXPECT_FALSE(ParsePhylip("1 4\nx ACNZ\n").ok());     // invalid base
  EXPECT_FALSE(ParsePhylip("0 4\n").ok());             // zero taxa
}

TEST(PhylipTest, RoundTrip) {
  const std::string text = "2 4\nalpha  ACGT\nbeta  TGCA\n";
  Alignment a = ParsePhylip(text).value();
  Alignment b = ParsePhylip(ToPhylip(a)).value();
  ASSERT_EQ(b.num_taxa(), a.num_taxa());
  for (int i = 0; i < a.num_taxa(); ++i) {
    EXPECT_EQ(b.rows[i].taxon, a.rows[i].taxon);
    EXPECT_EQ(b.rows[i].bases, a.rows[i].bases);
  }
}

TEST(PhylipTest, InteroperatesWithFasta) {
  Alignment a = ParsePhylip("2 4\nx  ACGT\ny  TTTT\n").value();
  Alignment b = ParseFasta(">x\nACGT\n>y\nTTTT\n").value();
  ASSERT_EQ(a.num_taxa(), b.num_taxa());
  for (int i = 0; i < a.num_taxa(); ++i) {
    EXPECT_EQ(a.rows[i].taxon, b.rows[i].taxon);
    EXPECT_EQ(a.rows[i].bases, b.rows[i].bases);
  }
}

}  // namespace
}  // namespace cousins
