#include <gtest/gtest.h>

#include "gen/uniform_generator.h"
#include "gen/yule_generator.h"
#include "tree/lca.h"
#include "tree/newick.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(LcaTest, HandComputedExamples) {
  //      r
  //     a   b     (a, b children of r)
  //  x   y   z    (x, y under a; z under b)
  Tree t = ParseNewick("((x,y)a,(z)b)r;").value();
  LcaIndex lca(t);
  const NodeId r = 0;
  const NodeId a = t.children(r)[0];
  const NodeId x = t.children(a)[0];
  const NodeId y = t.children(a)[1];
  const NodeId b = t.children(r)[1];
  const NodeId z = t.children(b)[0];

  EXPECT_EQ(lca.Lca(x, y), a);
  EXPECT_EQ(lca.Lca(x, z), r);
  EXPECT_EQ(lca.Lca(a, b), r);
  EXPECT_EQ(lca.Lca(x, a), a);  // ancestor of itself
  EXPECT_EQ(lca.Lca(x, x), x);
  EXPECT_EQ(lca.Lca(r, z), r);
}

TEST(LcaTest, PathLength) {
  Tree t = ParseNewick("((x,y)a,(z)b)r;").value();
  LcaIndex lca(t);
  const NodeId a = t.children(0)[0];
  const NodeId x = t.children(a)[0];
  const NodeId y = t.children(a)[1];
  const NodeId b = t.children(0)[1];
  const NodeId z = t.children(b)[0];
  EXPECT_EQ(lca.PathLength(x, x), 0);
  EXPECT_EQ(lca.PathLength(x, y), 2);
  EXPECT_EQ(lca.PathLength(x, z), 4);
  EXPECT_EQ(lca.PathLength(x, a), 1);
}

TEST(LcaTest, SingleNodeTree) {
  Tree t = ParseNewick("A;").value();
  LcaIndex lca(t);
  EXPECT_EQ(lca.Lca(0, 0), 0);
}

TEST(LcaTest, ChainTree) {
  Tree t = ParseNewick("((((e)d)c)b)a;").value();
  LcaIndex lca(t);
  for (NodeId u = 0; u < t.size(); ++u) {
    for (NodeId v = u; v < t.size(); ++v) {
      EXPECT_EQ(lca.Lca(u, v), u);  // ids are preorder along the chain
    }
  }
}

class LcaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LcaProperty, MatchesNaiveOnUniformTrees) {
  Rng rng(GetParam());
  UniformTreeOptions opts;
  opts.tree_size = 120;
  Tree t = GenerateUniformTree(opts, rng);
  LcaIndex lca(t);
  for (int trial = 0; trial < 300; ++trial) {
    const auto u = static_cast<NodeId>(rng.Uniform(t.size()));
    const auto v = static_cast<NodeId>(rng.Uniform(t.size()));
    EXPECT_EQ(lca.Lca(u, v), NaiveLca(t, u, v))
        << "u=" << u << " v=" << v;
  }
}

TEST_P(LcaProperty, MatchesNaiveOnPhylogenies) {
  Rng rng(GetParam() + 1000);
  YulePhylogenyOptions opts;
  Tree t = GenerateYulePhylogeny(opts, rng);
  LcaIndex lca(t);
  for (int trial = 0; trial < 300; ++trial) {
    const auto u = static_cast<NodeId>(rng.Uniform(t.size()));
    const auto v = static_cast<NodeId>(rng.Uniform(t.size()));
    EXPECT_EQ(lca.Lca(u, v), NaiveLca(t, u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcaProperty,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace cousins
