// Tests for the NUMA topology layer (util/topology.h) and the
// transparent-hugepage policy layer (util/hugepage.h): dense socket
// re-indexing from raw package ids, the contiguous-block worker ->
// socket assignment the scheduler relies on for same-socket stealing,
// and policy-gated madvise behavior.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/hugepage.h"
#include "util/topology.h"

namespace cousins {
namespace {

TEST(TopologyTest, EmptyPackageIdsIsOneSocket) {
  const CpuTopology topo = TopologyFromPackageIds({});
  EXPECT_EQ(topo.sockets, 1);
  EXPECT_TRUE(topo.cpu_socket.empty());
}

TEST(TopologyTest, SingleSocketCollapsesToZero) {
  const CpuTopology topo = TopologyFromPackageIds({3, 3, 3, 3});
  EXPECT_EQ(topo.sockets, 1);
  EXPECT_EQ(topo.cpu_socket, (std::vector<int32_t>{0, 0, 0, 0}));
}

TEST(TopologyTest, DenseReindexInFirstSeenOrder) {
  // Raw package ids need not be dense or ordered; the dense index is
  // assigned in first-seen order so cpu 0 always lands on socket 0.
  const CpuTopology topo = TopologyFromPackageIds({7, 7, 2, 2, 7, 9});
  EXPECT_EQ(topo.sockets, 3);
  EXPECT_EQ(topo.cpu_socket, (std::vector<int32_t>{0, 0, 1, 1, 0, 2}));
}

TEST(TopologyTest, DetectReturnsAtLeastOneSocket) {
  const CpuTopology& topo = CpuTopology::Detect();
  EXPECT_GE(topo.sockets, 1);
  for (int32_t socket : topo.cpu_socket) {
    EXPECT_GE(socket, 0);
    EXPECT_LT(socket, topo.sockets);
  }
  // Cached: the same object comes back.
  EXPECT_EQ(&topo, &CpuTopology::Detect());
}

TEST(TopologyTest, SocketForWorkerSingleSocketIsAlwaysZero) {
  const CpuTopology topo = TopologyFromPackageIds({0, 0});
  for (int32_t w = 0; w < 8; ++w) {
    EXPECT_EQ(SocketForWorker(topo, w, 8), 0);
  }
}

TEST(TopologyTest, SocketForWorkerSplitsContiguousBlocks) {
  const CpuTopology topo = TopologyFromPackageIds({0, 0, 1, 1});
  // 8 workers over 2 sockets: first block of 4 on socket 0, rest on 1.
  std::vector<int32_t> got;
  for (int32_t w = 0; w < 8; ++w) got.push_back(SocketForWorker(topo, w, 8));
  EXPECT_EQ(got, (std::vector<int32_t>{0, 0, 0, 0, 1, 1, 1, 1}));
  // Blocks stay contiguous and sizes differ by at most one when the
  // split is uneven.
  got.clear();
  for (int32_t w = 0; w < 5; ++w) got.push_back(SocketForWorker(topo, w, 5));
  EXPECT_EQ(got, (std::vector<int32_t>{0, 0, 0, 1, 1}));
}

TEST(TopologyTest, SocketForWorkerMoreSocketsThanWorkers) {
  const CpuTopology topo = TopologyFromPackageIds({0, 1, 2, 3});
  for (int32_t w = 0; w < 2; ++w) {
    const int32_t socket = SocketForWorker(topo, w, 2);
    EXPECT_GE(socket, 0);
    EXPECT_LT(socket, 4);
  }
}

/// Restores the auto policy when a test scope ends.
struct HugePagePolicyGuard {
  ~HugePagePolicyGuard() { SetHugePagePolicy(HugePagePolicy::kAuto); }
};

TEST(HugePageTest, ParsesPolicyNames) {
  HugePagePolicy policy = HugePagePolicy::kOff;
  EXPECT_TRUE(ParseHugePagePolicy("auto", &policy));
  EXPECT_EQ(policy, HugePagePolicy::kAuto);
  EXPECT_TRUE(ParseHugePagePolicy("on", &policy));
  EXPECT_EQ(policy, HugePagePolicy::kOn);
  EXPECT_TRUE(ParseHugePagePolicy("off", &policy));
  EXPECT_EQ(policy, HugePagePolicy::kOff);
  EXPECT_FALSE(ParseHugePagePolicy("", &policy));
  EXPECT_FALSE(ParseHugePagePolicy("ON", &policy));
  EXPECT_EQ(policy, HugePagePolicy::kOff);  // untouched on failure
}

TEST(HugePageTest, PolicyNamesRoundTrip) {
  for (HugePagePolicy policy : {HugePagePolicy::kAuto, HugePagePolicy::kOn,
                                HugePagePolicy::kOff}) {
    HugePagePolicy parsed = HugePagePolicy::kAuto;
    EXPECT_TRUE(ParseHugePagePolicy(HugePagePolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
}

TEST(HugePageTest, SetPolicyOverridesActive) {
  HugePagePolicyGuard guard;
  SetHugePagePolicy(HugePagePolicy::kOff);
  EXPECT_EQ(ActiveHugePagePolicy(), HugePagePolicy::kOff);
  SetHugePagePolicy(HugePagePolicy::kOn);
  EXPECT_EQ(ActiveHugePagePolicy(), HugePagePolicy::kOn);
}

TEST(HugePageTest, OffPolicyNeverAdvises) {
  HugePagePolicyGuard guard;
  SetHugePagePolicy(HugePagePolicy::kOff);
  std::vector<char> big(8 << 20);
  EXPECT_EQ(AdviseHugePages(big.data(), big.size()), 0u);
}

TEST(HugePageTest, SmallRangesAreNeverAdvised) {
  HugePagePolicyGuard guard;
  SetHugePagePolicy(HugePagePolicy::kOn);
  std::vector<char> small(64 << 10);
  EXPECT_EQ(AdviseHugePages(small.data(), small.size()), 0u);
  EXPECT_EQ(AdviseHugePages(nullptr, 0), 0u);
}

TEST(HugePageTest, AutoThresholdIsHigherThanOnThreshold) {
  HugePagePolicyGuard guard;
  // 3 MiB: above the kOn threshold (one 2 MiB huge page) but below the
  // kAuto threshold (4 MiB), so only kOn may advise it.
  std::vector<char> mid(3 << 20);
  SetHugePagePolicy(HugePagePolicy::kAuto);
  EXPECT_EQ(AdviseHugePages(mid.data(), mid.size()), 0u);
  SetHugePagePolicy(HugePagePolicy::kOn);
  const size_t advised = AdviseHugePages(mid.data(), mid.size());
  // Best-effort: the kernel may reject the hint, but when it advises,
  // the advised range is page-aligned and within the buffer.
  EXPECT_LE(advised, mid.size());
}

TEST(HugePageTest, LargeRangeAdvisesUnderAuto) {
  HugePagePolicyGuard guard;
  SetHugePagePolicy(HugePagePolicy::kAuto);
  std::vector<char> big(8 << 20);
  const size_t advised = AdviseHugePages(big.data(), big.size());
  EXPECT_LE(advised, big.size());
#if defined(__linux__)
  // On Linux the hint lands on any kernel with THP compiled in; accept
  // 0 only if madvise genuinely refused (rare, e.g. THP disabled).
  if (advised != 0) {
    EXPECT_GE(advised, size_t{2} << 20);
  }
#endif
}

}  // namespace
}  // namespace cousins
