#include <gtest/gtest.h>

#include "core/updown.h"
#include "test_util.h"

namespace cousins {
namespace {

using testing_util::MustParse;

int64_t Occ(const Tree& t, const std::vector<UpDownItem>& items,
            const std::string& from, const std::string& to, int32_t up,
            int32_t down) {
  for (const UpDownItem& item : items) {
    if (item.from == t.labels().Find(from) &&
        item.to == t.labels().Find(to) && item.up == up &&
        item.down == down) {
      return item.occurrences;
    }
  }
  return 0;
}

TEST(UpDownTest, BasicKinships) {
  Tree t = MustParse("((c,s)p,w)r;");
  UpDownOptions opt;
  auto items = UpDownHistogram(t, opt);
  // Siblings: up 1, down 1 in both directions.
  EXPECT_EQ(Occ(t, items, "c", "s", 1, 1), 1);
  EXPECT_EQ(Occ(t, items, "s", "c", 1, 1), 1);
  // Parent-child pairs ARE included, unlike cousin distance.
  EXPECT_EQ(Occ(t, items, "c", "p", 1, 0), 1);
  EXPECT_EQ(Occ(t, items, "p", "c", 0, 1), 1);
  // Aunt-niece: c up 2 to r, down 1 to w.
  EXPECT_EQ(Occ(t, items, "c", "w", 2, 1), 1);
  EXPECT_EQ(Occ(t, items, "w", "c", 1, 2), 1);
}

TEST(UpDownTest, CapsApply) {
  Tree t = MustParse("((((x)a)b)l,(y)m)r;");
  UpDownOptions opt;
  opt.max_up = 2;
  opt.max_down = 2;
  auto items = UpDownHistogram(t, opt);
  // x needs up=4 to reach r: dropped.
  EXPECT_EQ(Occ(t, items, "x", "y", 4, 2), 0);
  for (const UpDownItem& item : items) {
    EXPECT_LE(item.up, 2);
    EXPECT_LE(item.down, 2);
  }
}

TEST(UpDownTest, UnlabeledNodesSkipped) {
  Tree t = MustParse("((a,b),(c));");
  for (const UpDownItem& item : UpDownHistogram(t)) {
    EXPECT_GE(item.from, 0);
    EXPECT_GE(item.to, 0);
  }
}

TEST(UpDownTest, SelfSimilarityIsOne) {
  Tree t = testing_util::FamilyTree();
  auto h = UpDownHistogram(t);
  EXPECT_DOUBLE_EQ(UpDownSimilarity(h, h), 1.0);
}

TEST(UpDownTest, DisjointHistogramsSimilarityZero) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(a,b);", labels);
  Tree b = MustParse("(x,y);", labels);
  EXPECT_DOUBLE_EQ(UpDownSimilarity(UpDownHistogram(a), UpDownHistogram(b)),
                   0.0);
}

TEST(UpDownTest, EmptyHistogramsSimilarityOne) {
  EXPECT_DOUBLE_EQ(UpDownSimilarity({}, {}), 1.0);
}

TEST(UpDownTest, SimilarityBetweenZeroAndOne) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((a,b)p,c)r;", labels);
  Tree b = MustParse("((a,c)p,b)r;", labels);
  const double s =
      UpDownSimilarity(UpDownHistogram(a), UpDownHistogram(b));
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(UpDownTest, MinOccurFilters) {
  Tree t = MustParse("((a,a)x,(a,a)y)r;");
  UpDownOptions opt;
  opt.min_occur = 4;
  for (const UpDownItem& item : UpDownHistogram(t, opt)) {
    EXPECT_GE(item.occurrences, 4);
  }
}

}  // namespace
}  // namespace cousins
