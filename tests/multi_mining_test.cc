#include <gtest/gtest.h>

#include "core/multi_tree_mining.h"
#include "gen/yule_generator.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

/// Finds support of (a, b) at twice-distance d (kAnyDistance allowed).
int Support(const LabelTable& labels,
            const std::vector<FrequentCousinPair>& pairs,
            const std::string& a, const std::string& b, int twice_d) {
  LabelId la = labels.Find(a);
  LabelId lb = labels.Find(b);
  if (la > lb) std::swap(la, lb);
  for (const FrequentCousinPair& p : pairs) {
    if (p.label1 == la && p.label2 == lb && p.twice_distance == twice_d) {
      return p.support;
    }
  }
  return 0;
}

/// The §2 "frequent cousin pair" example: T1 has (c, e) at distance 1,
/// T2 has (c, e) at 2.5 (not counted at 1), T3 has (c, e) at 1 and at 0.
std::vector<Tree> Section2Forest(std::shared_ptr<LabelTable> labels) {
  std::vector<Tree> trees;
  // (c, e) first cousins.
  trees.push_back(MustParse("((c)x,(e)y)r;", labels));
  // (c, e) second cousins once removed (heights 3 and 4 below the root).
  trees.push_back(MustParse("(((c)a)b,(((e)w)v)u)r;", labels));
  // (c, e) both siblings (distance 0) and first cousins (distance 1).
  trees.push_back(MustParse("((c,e)x,(c)y)r;", labels));
  return trees;
}

TEST(MultiTreeMiningTest, SupportWithDistance) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = Section2Forest(labels);
  MultiTreeMiningOptions opt;
  opt.per_tree.twice_maxdist = 5;
  opt.min_support = 2;
  auto pairs = MineMultipleTrees(trees, opt);
  // (c, e) at distance 1 occurs in trees 1 and 3 => support 2.
  EXPECT_EQ(Support(*labels, pairs, "c", "e", 2), 2);
  // At distance 2.5 only tree 2 has it: below minsup, absent.
  EXPECT_EQ(Support(*labels, pairs, "c", "e", 5), 0);
}

TEST(MultiTreeMiningTest, SupportIgnoringDistance) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = Section2Forest(labels);
  MultiTreeMiningOptions opt;
  opt.per_tree.twice_maxdist = 5;
  opt.min_support = 3;
  opt.ignore_distance = true;
  auto pairs = MineMultipleTrees(trees, opt);
  // Ignoring distance, (c, e) occurs in all three trees.
  EXPECT_EQ(Support(*labels, pairs, "c", "e", kAnyDistance), 3);
}

TEST(MultiTreeMiningTest, IgnoreDistanceCountsTreeOnce) {
  auto labels = std::make_shared<LabelTable>();
  // (c, e) occurs at two distances within the single tree; support = 1.
  std::vector<Tree> trees = {MustParse("((c,e)x,(c)y)r;", labels)};
  MultiTreeMiningOptions opt;
  opt.per_tree.twice_maxdist = 4;
  opt.min_support = 1;
  opt.ignore_distance = true;
  auto pairs = MineMultipleTrees(trees, opt);
  EXPECT_EQ(Support(*labels, pairs, "c", "e", kAnyDistance), 1);
}

TEST(MultiTreeMiningTest, MinSupportFilters) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = {
      MustParse("(a,b);", labels),
      MustParse("(a,b);", labels),
      MustParse("(a,c);", labels),
  };
  MultiTreeMiningOptions opt;
  opt.min_support = 2;
  auto pairs = MineMultipleTrees(trees, opt);
  EXPECT_EQ(Support(*labels, pairs, "a", "b", 0), 2);
  EXPECT_EQ(Support(*labels, pairs, "a", "c", 0), 0);  // support 1
}

TEST(MultiTreeMiningTest, TotalOccurrencesAccumulate) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = {
      MustParse("(a,b,(a,b)x);", labels),  // (a,b,0) occurs twice here
      MustParse("(a,b);", labels),
  };
  MultiTreeMiningOptions opt;
  opt.min_support = 2;
  auto pairs = MineMultipleTrees(trees, opt);
  for (const FrequentCousinPair& p : pairs) {
    if (p.label1 == labels->Find("a") && p.label2 == labels->Find("b") &&
        p.twice_distance == 0) {
      EXPECT_EQ(p.support, 2);
      EXPECT_EQ(p.total_occurrences, 3);
      return;
    }
  }
  FAIL() << "(a, b, 0) not found";
}

TEST(MultiTreeMiningTest, ResultsSortedBySupport) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = {
      MustParse("(a,b);", labels),
      MustParse("(a,b,c);", labels),
      MustParse("(a,b,c);", labels),
  };
  MultiTreeMiningOptions opt;
  opt.min_support = 1;
  auto pairs = MineMultipleTrees(trees, opt);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i - 1].support, pairs[i].support);
  }
  ASSERT_FALSE(pairs.empty());
  EXPECT_EQ(pairs[0].support, 3);  // (a, b, 0) in all three
}

TEST(MultiTreeMiningTest, StreamingEqualsBatch) {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(17);
  YulePhylogenyOptions gen;
  gen.min_nodes = 30;
  gen.max_nodes = 60;
  gen.alphabet_size = 40;
  std::vector<Tree> trees;
  for (int i = 0; i < 20; ++i) {
    trees.push_back(GenerateYulePhylogeny(gen, rng, labels));
  }
  MultiTreeMiningOptions opt;
  opt.min_support = 2;
  MultiTreeMiner streaming(opt);
  for (const Tree& t : trees) streaming.AddTree(t);
  EXPECT_EQ(streaming.tree_count(), 20);
  auto batch = MineMultipleTrees(trees, opt);
  auto streamed = streaming.FrequentPairs();
  EXPECT_EQ(batch, streamed);
}

TEST(MultiTreeMiningTest, PerTreeMinOccurApplies) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = {
      MustParse("(a,b,(a,b)x);", labels),  // (a,b,0) twice
      MustParse("(a,b);", labels),         // (a,b,0) once
  };
  MultiTreeMiningOptions opt;
  opt.per_tree.min_occur = 2;
  opt.min_support = 1;
  auto pairs = MineMultipleTrees(trees, opt);
  // Only the first tree passes the per-tree occurrence bar.
  EXPECT_EQ(Support(*labels, pairs, "a", "b", 0), 1);
}

TEST(MultiTreeMiningTest, FormatFrequentPair) {
  auto labels = std::make_shared<LabelTable>();
  labels->Intern("Gnetum");
  labels->Intern("Welwitschia");
  FrequentCousinPair p{labels->Find("Gnetum"), labels->Find("Welwitschia"),
                       0, 4, 4};
  EXPECT_EQ(FormatFrequentPair(*labels, p),
            "(Gnetum, Welwitschia, 0) support=4 occ=4");
  p.twice_distance = kAnyDistance;
  EXPECT_EQ(FormatFrequentPair(*labels, p),
            "(Gnetum, Welwitschia, @) support=4 occ=4");
}

TEST(MultiTreeMiningTest, EmptyForest) {
  MultiTreeMiner miner;
  EXPECT_EQ(miner.tree_count(), 0);
  EXPECT_TRUE(miner.FrequentPairs().empty());
}

TEST(MultiTreeMiningOptionsTest, EqualityIsMemberwise) {
  MultiTreeMiningOptions a;
  EXPECT_EQ(a, MultiTreeMiningOptions{});

  // Every field participates — a divergence in ANY of them must break
  // equality, so MergeFrom's compatibility check can never miss one.
  MultiTreeMiningOptions b = a;
  b.min_support = a.min_support + 1;
  EXPECT_NE(a, b);

  b = a;
  b.ignore_distance = !a.ignore_distance;
  EXPECT_NE(a, b);

  b = a;
  b.per_tree.twice_maxdist = a.per_tree.twice_maxdist + 1;
  EXPECT_NE(a, b);

  b = a;
  b.per_tree.min_occur = a.per_tree.min_occur + 1;
  EXPECT_NE(a, b);
}

TEST(MultiTreeMiningOptionsDeathTest, MergeFromRejectsMismatchedOptions) {
  MultiTreeMiningOptions opt;
  MultiTreeMiningOptions other = opt;
  other.per_tree.min_occur = opt.per_tree.min_occur + 1;
  MultiTreeMiner left(opt);
  MultiTreeMiner right(other);
  EXPECT_DEATH(left.MergeFrom(right), "options");
}

}  // namespace
}  // namespace cousins
