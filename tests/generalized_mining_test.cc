#include <gtest/gtest.h>

#include <tuple>

#include "core/generalized_mining.h"
#include "core/single_tree_mining.h"
#include "gen/uniform_generator.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::FamilyTree;
using testing_util::MustParse;

int64_t Occ(const Tree& t, const std::vector<GeneralizedPairItem>& items,
            const std::string& a, const std::string& b, int32_t horizontal,
            int32_t vertical) {
  LabelId la = t.labels().Find(a);
  LabelId lb = t.labels().Find(b);
  if (la > lb) std::swap(la, lb);
  for (const GeneralizedPairItem& item : items) {
    if (item.label1 == la && item.label2 == lb &&
        item.horizontal == horizontal && item.vertical == vertical) {
      return item.occurrences;
    }
  }
  return 0;
}

TEST(GeneralizedMiningTest, FamilyTreeKinship) {
  Tree t = FamilyTree();
  GeneralizedMiningOptions opt;
  opt.max_horizontal = 3;
  opt.max_vertical = 3;
  auto items = MineGeneralized(t, opt);
  EXPECT_EQ(Occ(t, items, "c", "s", 0, 0), 1);     // siblings
  EXPECT_EQ(Occ(t, items, "aunt", "c", 0, 1), 1);  // aunt-niece
  EXPECT_EQ(Occ(t, items, "c", "e", 1, 0), 1);     // first cousins
  EXPECT_EQ(Occ(t, items, "c", "g", 1, 1), 1);     // once removed
  EXPECT_EQ(Occ(t, items, "c", "h", 2, 0), 1);     // second cousins
  EXPECT_EQ(Occ(t, items, "c", "f", 2, 1), 1);
}

TEST(GeneralizedMiningTest, LiftsTheGenerationCutoff) {
  // x at height 1, y at height 3: vertical gap 2 — undefined for the
  // Fig. 2 distance, but mined here as (h=0, v=2).
  Tree t = MustParse("(x,((y)a)b)r;");
  GeneralizedMiningOptions opt;
  opt.max_horizontal = 2;
  opt.max_vertical = 2;
  auto items = MineGeneralized(t, opt);
  EXPECT_EQ(Occ(t, items, "x", "y", 0, 2), 1);
  // The classic miner must not see this pair.
  MiningOptions classic;
  classic.twice_maxdist = 10;
  for (const CousinPairItem& item : MineSingleTree(t, classic)) {
    EXPECT_FALSE(item.label1 == t.labels().Find("x") &&
                 item.label2 == t.labels().Find("y"));
  }
}

TEST(GeneralizedMiningTest, VerticalCapZeroKeepsEqualHeightsOnly) {
  Tree t = FamilyTree();
  GeneralizedMiningOptions opt;
  opt.max_horizontal = 3;
  opt.max_vertical = 0;
  for (const GeneralizedPairItem& item : MineGeneralized(t, opt)) {
    EXPECT_EQ(item.vertical, 0);
  }
}

TEST(GeneralizedMiningTest, MinOccurFilters) {
  Tree t = MustParse("((a,a)x,(a,a)y)r;");
  GeneralizedMiningOptions opt;
  opt.max_horizontal = 1;
  opt.max_vertical = 1;
  opt.min_occur = 3;
  auto items = MineGeneralized(t, opt);
  for (const GeneralizedPairItem& item : items) {
    EXPECT_GE(item.occurrences, 3);
  }
  // (a, a) cross pairs at (h=1, v=0): 2*2 = 4 >= 3 kept.
  EXPECT_EQ(Occ(t, items, "a", "a", 1, 0), 4);
  // sibling pairs within each: occurrences 2 < 3, dropped.
  EXPECT_EQ(Occ(t, items, "a", "a", 0, 0), 0);
}

TEST(GeneralizedMiningTest, FormatItem) {
  LabelTable labels;
  labels.Intern("a");
  labels.Intern("b");
  GeneralizedPairItem item{labels.Find("a"), labels.Find("b"), 1, 2, 7};
  EXPECT_EQ(FormatGeneralizedItem(labels, item), "(a, b, h=1, v=2, 7)");
}

// Property: with vertical cap 1, generalized items map exactly onto the
// classic cousin-pair items via twice_d = 2·horizontal + vertical.
class GeneralizedVsClassic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneralizedVsClassic, CapOneEquivalence) {
  Rng rng(GetParam());
  UniformTreeOptions gen;
  gen.tree_size = 80;
  gen.alphabet_size = 8;
  Tree t = GenerateUniformTree(gen, rng);

  GeneralizedMiningOptions gopt;
  gopt.max_horizontal = 2;
  gopt.max_vertical = 1;
  std::vector<CousinPairItem> mapped;
  for (const GeneralizedPairItem& item : MineGeneralized(t, gopt)) {
    mapped.push_back(CousinPairItem{item.label1, item.label2,
                                    2 * item.horizontal + item.vertical,
                                    item.occurrences});
  }
  CanonicalizeItems(&mapped);

  MiningOptions copt;
  copt.twice_maxdist = 5;  // h<=2, v<=1 <=> d <= 2.5
  EXPECT_EQ(mapped, MineSingleTree(t, copt));
}

TEST_P(GeneralizedVsClassic, FastMatchesNaive) {
  Rng rng(GetParam() + 100);
  UniformTreeOptions gen;
  gen.tree_size = 70;
  gen.alphabet_size = 6;
  gen.labeled_fraction = 0.7;
  Tree t = GenerateUniformTree(gen, rng);
  for (int32_t maxh : {0, 1, 2}) {
    for (int32_t maxv : {0, 1, 2, 3}) {
      GeneralizedMiningOptions opt;
      opt.max_horizontal = maxh;
      opt.max_vertical = maxv;
      EXPECT_EQ(MineGeneralized(t, opt), MineGeneralizedNaive(t, opt))
          << "h=" << maxh << " v=" << maxv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizedVsClassic,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace cousins
