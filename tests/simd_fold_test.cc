// Kernel-dispatch and SIMD fold-kernel tests: mode parsing and
// resolution, and the cross-tier identity contract — the scalar and
// AVX2 kernels must produce identical accumulator *layouts* (not just
// contents), because downstream item emission walks tables in slot
// order. The randomized property tests pit the tiers against each
// other over duplicate-label runs, saturation-boundary counts, and
// every vector-remainder tail length.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/kernel_dispatch.h"
#include "core/mining_scratch.h"
#include "core/pair_count_map.h"
#include "core/simd_fold.h"
#include "core/single_tree_mining.h"
#include "gen/fanout_generator.h"
#include "util/rng.h"

namespace cousins {
namespace {

using internal::ActiveKernels;
using internal::Avx2KernelsIfSupported;
using internal::FlatCounts;
using internal::FoldBuffer;
using internal::FoldKernels;
using internal::PackLabelPair;
using internal::PairCountMap;
using internal::ScalarKernels;

/// Restores the auto dispatch mode when a test scope ends, so a forced
/// mode never leaks into sibling tests.
struct SimdModeGuard {
  ~SimdModeGuard() { SetSimdMode(SimdMode::kAuto); }
};

/// The full observable state of an accumulator, in slot (ForEach)
/// order — equal vectors mean byte-identical table layouts.
std::vector<std::pair<uint64_t, int64_t>> Layout(const PairCountMap& m) {
  std::vector<std::pair<uint64_t, int64_t>> out;
  m.ForEach([&](uint64_t key, int64_t count) { out.push_back({key, count}); });
  return out;
}

TEST(SimdDispatchTest, ParsesModeNames) {
  SimdMode mode = SimdMode::kAvx2;
  EXPECT_TRUE(ParseSimdMode("auto", &mode));
  EXPECT_EQ(mode, SimdMode::kAuto);
  EXPECT_TRUE(ParseSimdMode("avx2", &mode));
  EXPECT_EQ(mode, SimdMode::kAvx2);
  EXPECT_TRUE(ParseSimdMode("scalar", &mode));
  EXPECT_EQ(mode, SimdMode::kScalar);
  EXPECT_FALSE(ParseSimdMode("", &mode));
  EXPECT_FALSE(ParseSimdMode("sse", &mode));
  EXPECT_FALSE(ParseSimdMode("AVX2", &mode));
}

TEST(SimdDispatchTest, NamesRoundTrip) {
  for (SimdMode mode :
       {SimdMode::kAuto, SimdMode::kAvx2, SimdMode::kScalar}) {
    SimdMode parsed = SimdMode::kAuto;
    EXPECT_TRUE(ParseSimdMode(SimdModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
}

TEST(SimdDispatchTest, ForcedScalarAlwaysResolvesScalar) {
  SimdModeGuard guard;
  SetSimdMode(SimdMode::kScalar);
  EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
  EXPECT_EQ(ActiveKernels().tier, SimdTier::kScalar);
}

TEST(SimdDispatchTest, AutoMatchesCpuCapability) {
  SimdModeGuard guard;
  SetSimdMode(SimdMode::kAuto);
  EXPECT_EQ(ActiveSimdTier(),
            CpuSupportsAvx2() ? SimdTier::kAvx2 : SimdTier::kScalar);
}

TEST(SimdDispatchTest, ForcedAvx2FallsBackWhenUnsupported) {
  SimdModeGuard guard;
  SetSimdMode(SimdMode::kAvx2);
  // Supported: the forced tier runs. Unsupported: the library demotes
  // to scalar (with a one-time notice) instead of crashing.
  EXPECT_EQ(ActiveSimdTier(),
            CpuSupportsAvx2() ? SimdTier::kAvx2 : SimdTier::kScalar);
}

TEST(SimdDispatchTest, KernelTablesAreConsistent) {
  const FoldKernels& scalar = ScalarKernels();
  EXPECT_EQ(scalar.tier, SimdTier::kScalar);
  EXPECT_NE(scalar.add_product, nullptr);
  EXPECT_NE(scalar.normalize, nullptr);
  EXPECT_NE(scalar.pack_item_keys, nullptr);
  const FoldKernels* avx2 = Avx2KernelsIfSupported();
  EXPECT_EQ(avx2 != nullptr, CpuSupportsAvx2());
  if (avx2 != nullptr) {
    EXPECT_EQ(avx2->tier, SimdTier::kAvx2);
    EXPECT_NE(avx2->add_product, scalar.add_product);
  }
}

TEST(SimdDispatchTest, ScalarKernelCountsFallbacks) {
  FlatCounts a = {{1, 2}};
  FlatCounts b = {{2, 3}};
  PairCountMap acc;
  FoldBuffer buf;
  ScalarKernels().add_product(a, b, +1, &acc, &buf);
  EXPECT_EQ(buf.scalar_fallbacks, 1);
  EXPECT_EQ(buf.simd_batches, 0);
}

/// Random label multiset: labels drawn from a small alphabet (forcing
/// duplicate-label runs), counts from a mix of small values and
/// near-saturation magnitudes.
FlatCounts RandomCounts(Rng& rng, size_t size, int32_t alphabet,
                        bool huge_counts) {
  FlatCounts out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    const auto label =
        static_cast<LabelId>(rng.Uniform(static_cast<uint64_t>(alphabet)));
    int64_t count;
    if (huge_counts && rng.Uniform(4) == 0) {
      // Large enough that a few products saturate the accumulator
      // (2^31 * 2^31 = 2^62; two of those overflow int64 and clamp),
      // small enough that a single product never overflows the
      // multiply itself.
      count = int64_t{1} << 31;
    } else {
      count = static_cast<int64_t>(rng.Uniform(16)) + 1;
    }
    out.push_back({label, count});
  }
  return out;
}

TEST(SimdFoldPropertyTest, AddProductMatchesScalarLayoutExactly) {
  const FoldKernels* avx2 = Avx2KernelsIfSupported();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    // Sizes sweep the remainder tails 0–7 and past the 4-lane width;
    // occasional large b rows cross the flush threshold.
    const size_t na = rng.Uniform(12);
    size_t nb = rng.Uniform(12);
    if (round % 17 == 0) nb = 600;  // 8 rows x 600 > 4096: forces a flush
    const bool huge = round % 3 == 0;
    const FlatCounts a = RandomCounts(rng, na, 8, huge);
    const FlatCounts b = RandomCounts(rng, nb, 8, huge);
    const int64_t sign = rng.Uniform(2) == 0 ? 1 : -1;

    PairCountMap scalar_acc;
    PairCountMap avx2_acc;
    FoldBuffer scalar_buf;
    FoldBuffer avx2_buf;
    // Two passes per round so the second lands on a warm, partly
    // saturated table.
    for (int pass = 0; pass < 2; ++pass) {
      ScalarKernels().add_product(a, b, sign, &scalar_acc, &scalar_buf);
      avx2->add_product(a, b, sign, &avx2_acc, &avx2_buf);
    }
    ASSERT_EQ(Layout(scalar_acc), Layout(avx2_acc))
        << "round " << round << " na=" << na << " nb=" << nb;
    ASSERT_EQ(scalar_acc.size(), avx2_acc.size());
  }
}

TEST(SimdFoldPropertyTest, Avx2CountsBatchesAndFallbacks) {
  const FoldKernels* avx2 = Avx2KernelsIfSupported();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 on this machine";
  FoldBuffer buf;
  PairCountMap acc;
  const FlatCounts a = {{1, 1}, {2, 1}};
  const FlatCounts wide = {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}};
  avx2->add_product(a, wide, +1, &acc, &buf);
  EXPECT_EQ(buf.simd_batches, 2);  // two rows x one 4-lane batch
  EXPECT_EQ(buf.scalar_fallbacks, 0);
  const FlatCounts narrow = {{1, 1}, {2, 1}, {3, 1}};
  avx2->add_product(a, narrow, +1, &acc, &buf);  // nb < 4: scalar path
  EXPECT_EQ(buf.simd_batches, 2);
  EXPECT_EQ(buf.scalar_fallbacks, 1);
}

TEST(SimdFoldPropertyTest, NormalizeMatchesScalarOnRandomInputs) {
  const FoldKernels* avx2 = Avx2KernelsIfSupported();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(424242);
  FoldBuffer buf;
  for (int round = 0; round < 300; ++round) {
    // Small sizes hit the insertion path and the tails; > 24 hits the
    // packed-sort path. A tiny alphabet forces long duplicate runs.
    const size_t n =
        round % 5 == 0 ? 25 + rng.Uniform(200) : rng.Uniform(12);
    const int32_t alphabet = 1 + static_cast<int32_t>(rng.Uniform(6));
    FlatCounts scalar_counts = RandomCounts(rng, n, alphabet, false);
    FlatCounts avx2_counts = scalar_counts;
    ScalarKernels().normalize(&scalar_counts, nullptr);
    avx2->normalize(&avx2_counts, &buf);
    ASSERT_EQ(scalar_counts, avx2_counts) << "round " << round;
  }
}

TEST(SimdFoldPropertyTest, NormalizeHandlesDegenerateSizes) {
  const FoldKernels* avx2 = Avx2KernelsIfSupported();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 on this machine";
  FoldBuffer buf;
  FlatCounts empty;
  avx2->normalize(&empty, &buf);
  EXPECT_TRUE(empty.empty());
  FlatCounts one = {{7, 3}};
  avx2->normalize(&one, &buf);
  EXPECT_EQ(one, (FlatCounts{{7, 3}}));
  // All-equal labels collapse to a single summed entry.
  FlatCounts runs(40, {5, 2});
  avx2->normalize(&runs, &buf);
  EXPECT_EQ(runs, (FlatCounts{{5, 80}}));
}

TEST(SimdFoldPropertyTest, PackItemKeysMatchesScalarForAllTails) {
  const FoldKernels* avx2 = Avx2KernelsIfSupported();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(777);
  for (size_t n = 0; n < 40; ++n) {  // covers every remainder 0–7 twice
    std::vector<CousinPairItem> items;
    items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      CousinPairItem item;
      item.label1 = static_cast<LabelId>(rng.Uniform(1 << 20));
      item.label2 = static_cast<LabelId>(rng.Uniform(1 << 20));
      item.twice_distance = static_cast<int>(rng.Uniform(4));
      item.occurrences = static_cast<int64_t>(rng.Uniform(100));
      items.push_back(item);
    }
    std::vector<uint64_t> scalar_keys(n, 0);
    std::vector<uint64_t> avx2_keys(n, 1);
    internal::PackItemKeysScalar(items.data(), n, scalar_keys.data());
    avx2->pack_item_keys(items.data(), n, avx2_keys.data());
    ASSERT_EQ(scalar_keys, avx2_keys) << "n=" << n;
  }
}

TEST(SimdFoldPropertyTest, MinedItemsIdenticalAcrossTiers) {
  if (Avx2KernelsIfSupported() == nullptr) {
    GTEST_SKIP() << "no AVX2 on this machine";
  }
  SimdModeGuard guard;
  Rng rng(99);
  FanoutTreeOptions gen;
  gen.tree_size = 150;
  gen.fanout = 4;
  gen.alphabet_size = 30;
  MiningOptions options;
  options.twice_maxdist = 3;
  options.min_occur = 1;
  for (int round = 0; round < 10; ++round) {
    const Tree tree = GenerateFanoutTree(gen, rng);
    SetSimdMode(SimdMode::kScalar);
    const std::vector<CousinPairItem> scalar_items =
        MineSingleTree(tree, options);
    SetSimdMode(SimdMode::kAvx2);
    const std::vector<CousinPairItem> avx2_items =
        MineSingleTree(tree, options);
    ASSERT_EQ(scalar_items.size(), avx2_items.size()) << "round " << round;
    for (size_t i = 0; i < scalar_items.size(); ++i) {
      EXPECT_EQ(scalar_items[i].label1, avx2_items[i].label1);
      EXPECT_EQ(scalar_items[i].label2, avx2_items[i].label2);
      EXPECT_EQ(scalar_items[i].twice_distance,
                avx2_items[i].twice_distance);
      EXPECT_EQ(scalar_items[i].occurrences, avx2_items[i].occurrences);
    }
  }
}

}  // namespace
}  // namespace cousins
