#include <gtest/gtest.h>

#include "core/naive_mining.h"
#include "core/paper_mining.h"
#include "core/single_tree_mining.h"
#include "test_util.h"

namespace cousins {
namespace {

using testing_util::ItemsToString;
using testing_util::MustParse;

/// Looks up the occurrence count of (a, b, d) in canonical items.
int64_t Occ(const Tree& t, const std::vector<CousinPairItem>& items,
            const std::string& a, const std::string& b, int twice_d) {
  LabelId la = t.labels().Find(a);
  LabelId lb = t.labels().Find(b);
  if (la > lb) std::swap(la, lb);
  for (const CousinPairItem& item : items) {
    if (item.label1 == la && item.label2 == lb &&
        item.twice_distance == twice_d) {
      return item.occurrences;
    }
  }
  return 0;
}

TEST(SingleTreeMiningTest, SiblingsOnly) {
  Tree t = MustParse("(a,b,c);");
  MiningOptions opt;
  opt.twice_maxdist = 0;
  auto items = MineSingleTree(t, opt);
  ASSERT_EQ(items.size(), 3u) << ItemsToString(t.labels(), items);
  EXPECT_EQ(Occ(t, items, "a", "b", 0), 1);
  EXPECT_EQ(Occ(t, items, "a", "c", 0), 1);
  EXPECT_EQ(Occ(t, items, "b", "c", 0), 1);
}

TEST(SingleTreeMiningTest, TableOneStyleItemTable) {
  // A small tree with repeated labels, as in the paper's Table 1
  // discussion: the pair (b, c) appears as siblings twice, so its item
  // is (b, c, 0, 2); (a, a) is a same-label cousin pair.
  Tree t = MustParse("((b,c)x,(b,c)y,(a,a)z)r;");
  MiningOptions opt;
  opt.twice_maxdist = 2;
  auto items = MineSingleTree(t, opt);
  EXPECT_EQ(Occ(t, items, "b", "c", 0), 2);  // within x and within y
  EXPECT_EQ(Occ(t, items, "a", "a", 0), 1);  // the two a-leaves
  EXPECT_EQ(Occ(t, items, "b", "c", 2), 2);  // cross x-y first cousins
  EXPECT_EQ(Occ(t, items, "b", "b", 2), 1);
  EXPECT_EQ(Occ(t, items, "c", "c", 2), 1);
  EXPECT_EQ(Occ(t, items, "a", "b", 2), 4);  // z's two a's vs both b's
  EXPECT_EQ(Occ(t, items, "x", "y", 0), 1);  // labeled internals pair too
}

TEST(SingleTreeMiningTest, AuntNieceCounts) {
  Tree t = MustParse("((u,v)p,w)r;");
  MiningOptions opt;
  opt.twice_maxdist = 1;
  auto items = MineSingleTree(t, opt);
  EXPECT_EQ(Occ(t, items, "u", "v", 0), 1);
  EXPECT_EQ(Occ(t, items, "p", "w", 0), 1);
  EXPECT_EQ(Occ(t, items, "u", "w", 1), 1);  // aunt-niece
  EXPECT_EQ(Occ(t, items, "v", "w", 1), 1);
  EXPECT_EQ(items.size(), 4u) << ItemsToString(t.labels(), items);
}

TEST(SingleTreeMiningTest, FamilyTreeDistances) {
  Tree t = testing_util::FamilyTree();
  MiningOptions opt;
  opt.twice_maxdist = 5;
  auto items = MineSingleTree(t, opt);
  EXPECT_EQ(Occ(t, items, "c", "s", 0), 1);
  EXPECT_EQ(Occ(t, items, "aunt", "c", 1), 1);
  EXPECT_EQ(Occ(t, items, "c", "e", 2), 1);
  EXPECT_EQ(Occ(t, items, "c", "g", 3), 1);
  EXPECT_EQ(Occ(t, items, "c", "h", 4), 1);
  EXPECT_EQ(Occ(t, items, "c", "f", 5), 1);
}

TEST(SingleTreeMiningTest, MaxdistCutsOff) {
  Tree t = testing_util::FamilyTree();
  MiningOptions opt;
  opt.twice_maxdist = 2;
  auto items = MineSingleTree(t, opt);
  EXPECT_EQ(Occ(t, items, "c", "e", 2), 1);
  EXPECT_EQ(Occ(t, items, "c", "g", 3), 0);
  for (const CousinPairItem& item : items) {
    EXPECT_LE(item.twice_distance, 2);
  }
}

TEST(SingleTreeMiningTest, MinOccurFilters) {
  Tree t = MustParse("((b,c)x,(b,c)y)r;");
  MiningOptions opt;
  opt.twice_maxdist = 2;
  opt.min_occur = 2;
  auto items = MineSingleTree(t, opt);
  for (const CousinPairItem& item : items) {
    EXPECT_GE(item.occurrences, 2);
  }
  EXPECT_EQ(Occ(t, items, "b", "c", 0), 2);
  EXPECT_EQ(Occ(t, items, "x", "y", 0), 0);  // occurs once; filtered
}

TEST(SingleTreeMiningTest, UnlabeledNodesNeverPair) {
  Tree t = MustParse("((a,b),(c));");  // unlabeled internals
  MiningOptions opt;
  opt.twice_maxdist = 4;
  auto items = MineSingleTree(t, opt);
  for (const CousinPairItem& item : items) {
    EXPECT_GE(item.label1, 0);
    EXPECT_GE(item.label2, 0);
  }
  EXPECT_EQ(Occ(t, items, "a", "b", 0), 1);
  EXPECT_EQ(Occ(t, items, "a", "c", 2), 1);
}

TEST(SingleTreeMiningTest, EmptyAndTinyTrees) {
  EXPECT_TRUE(MineSingleTree(Tree()).empty());
  EXPECT_TRUE(MineSingleTree(MustParse("a;")).empty());
  EXPECT_TRUE(MineSingleTree(MustParse("(a)b;")).empty());  // chain only
}

TEST(SingleTreeMiningTest, NegativeMaxdistYieldsNothing) {
  MiningOptions opt;
  opt.twice_maxdist = -1;
  EXPECT_TRUE(MineSingleTree(MustParse("(a,b);"), opt).empty());
}

TEST(SingleTreeMiningTest, SameLabelPairHalving) {
  // Five 'a' siblings: C(5,2) = 10 unordered pairs.
  Tree t = MustParse("(a,a,a,a,a);");
  MiningOptions opt;
  opt.twice_maxdist = 0;
  auto items = MineSingleTree(t, opt);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].occurrences, 10);
}

TEST(SingleTreeMiningTest, CrossSubtreeSameLabel) {
  // Two a's under x, three under y: cross pairs = 2*3 = 6 at d=1,
  // within-x pair = 1, within-y pairs = 3 at d=0.
  Tree t = MustParse("((a,a)x,(a,a,a)y)r;");
  MiningOptions opt;
  opt.twice_maxdist = 2;
  auto items = MineSingleTree(t, opt);
  EXPECT_EQ(Occ(t, items, "a", "a", 0), 4);
  EXPECT_EQ(Occ(t, items, "a", "a", 2), 6);
}

TEST(SingleTreeMiningTest, OutputIsCanonical) {
  Tree t = testing_util::FamilyTree();
  MiningOptions opt;
  opt.twice_maxdist = 5;
  auto items = MineSingleTree(t, opt);
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_LE(items[i].label1, items[i].label2);
    if (i > 0) {
      EXPECT_LT(items[i - 1], items[i]);
    }
  }
}

TEST(SingleTreeMiningTest, DeepChainHasNoCousins) {
  // A pure path has no two nodes with a common ancestor and height >= 1
  // on both sides.
  Tree t = MustParse("((((e)d)c)b)a;");
  MiningOptions opt;
  opt.twice_maxdist = 10;
  EXPECT_TRUE(MineSingleTree(t, opt).empty());
}

TEST(SingleTreeMiningTest, PaperAndNaiveMinersAgreeOnExamples) {
  for (const char* newick :
       {"(a,b,c);", "((b,c)x,(b,c)y,(a,a)z)r;", "((u,v)p,w)r;",
        "((a,a)x,(a,a,a)y)r;", "((((e)d)c)b)a;", "(a,(b,(c,(d,(e,f)))));"}) {
    Tree t = MustParse(newick);
    for (int twice_maxdist : {0, 1, 2, 3, 4, 7}) {
      MiningOptions opt;
      opt.twice_maxdist = twice_maxdist;
      auto fast = MineSingleTree(t, opt);
      auto paper = MineSingleTreePaper(t, opt);
      auto naive = MineSingleTreeNaive(t, opt);
      EXPECT_EQ(fast, paper) << newick << " maxdist=" << twice_maxdist;
      EXPECT_EQ(fast, naive) << newick << " maxdist=" << twice_maxdist;
    }
  }
}

}  // namespace
}  // namespace cousins
