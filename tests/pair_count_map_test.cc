#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <utility>

#include "core/pair_count_map.h"
#include "util/overflow.h"
#include "util/rng.h"

namespace cousins {
namespace {

using internal::PackLabelPair;
using internal::PairCountMap;
using internal::UnpackFirst;
using internal::UnpackSecond;

TEST(PackLabelPairTest, CanonicalizesOrder) {
  EXPECT_EQ(PackLabelPair(3, 7), PackLabelPair(7, 3));
  EXPECT_NE(PackLabelPair(3, 7), PackLabelPair(3, 8));
}

TEST(PackLabelPairTest, RoundTrips) {
  const uint64_t key = PackLabelPair(12345, 678);
  EXPECT_EQ(UnpackFirst(key), 678);   // min in the high word
  EXPECT_EQ(UnpackSecond(key), 12345);
  const uint64_t same = PackLabelPair(42, 42);
  EXPECT_EQ(UnpackFirst(same), 42);
  EXPECT_EQ(UnpackSecond(same), 42);
}

TEST(PairCountMapTest, AddAndIterate) {
  PairCountMap m;
  m.Add(PackLabelPair(1, 2), 5);
  m.Add(PackLabelPair(2, 1), 3);  // same key
  m.Add(PackLabelPair(1, 3), 7);
  EXPECT_EQ(m.size(), 2u);
  std::map<uint64_t, int64_t> seen;
  m.ForEach([&](uint64_t key, int64_t count) { seen[key] = count; });
  EXPECT_EQ(seen[PackLabelPair(1, 2)], 8);
  EXPECT_EQ(seen[PackLabelPair(1, 3)], 7);
}

TEST(PairCountMapTest, ZeroDeltaIsNoop) {
  PairCountMap m;
  m.Add(PackLabelPair(1, 2), 0);
  EXPECT_EQ(m.size(), 0u);
}

TEST(PairCountMapTest, NegativeDeltasSupported) {
  PairCountMap m;
  m.Add(PackLabelPair(4, 5), 10);
  m.Add(PackLabelPair(4, 5), -4);
  int64_t value = 0;
  m.ForEach([&](uint64_t, int64_t count) { value = count; });
  EXPECT_EQ(value, 6);
}

TEST(PairCountMapTest, ClearResets) {
  PairCountMap m;
  for (int i = 0; i < 100; ++i) m.Add(PackLabelPair(i, i + 1), 1);
  EXPECT_EQ(m.size(), 100u);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  int entries = 0;
  m.ForEach([&](uint64_t, int64_t) { ++entries; });
  EXPECT_EQ(entries, 0);
}

TEST(PairCountMapTest, ForEachSkipsZeroNetEntries) {
  PairCountMap m;
  m.Add(PackLabelPair(1, 2), 5);
  m.Add(PackLabelPair(3, 4), 2);
  m.Add(PackLabelPair(1, 2), -5);  // nets to zero
  std::map<uint64_t, int64_t> seen;
  m.ForEach([&](uint64_t key, int64_t count) { seen[key] = count; });
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[PackLabelPair(3, 4)], 2);
}

TEST(PairCountMapTest, AddCancelCyclesKeepCapacityBounded) {
  // Inclusion–exclusion emits +delta then -delta for the same pair; a
  // long stream over DISTINCT pairs must not grow the table, because no
  // point-in-time census ever holds more than one live entry. Before
  // zero-net purging, every cancelled pair still occupied a slot, the
  // load factor ratcheted up, and capacity doubled without bound.
  PairCountMap m;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t key = PackLabelPair(i, i + 1);
    m.Add(key, 3);
    m.Add(key, -3);
  }
  EXPECT_LE(m.capacity(), 256u);
  int entries = 0;
  m.ForEach([&](uint64_t, int64_t) { ++entries; });
  EXPECT_EQ(entries, 0);
}

TEST(PairCountMapTest, GrowsWhenLiveEntriesDemandIt) {
  // Genuine growth still happens: 1000 live entries need >= 2048 slots
  // at the 0.7 load ceiling.
  PairCountMap m;
  for (int i = 0; i < 1000; ++i) m.Add(PackLabelPair(i, i + 1), 1);
  EXPECT_GE(m.capacity(), 2048u);
  int entries = 0;
  m.ForEach([&](uint64_t, int64_t) { ++entries; });
  EXPECT_EQ(entries, 1000);
}

TEST(PairCountMapTest, AdditionSaturatesAtInt64Boundaries) {
  // Adversarial corpora can push counts toward the int64 edge; the
  // accumulator must clamp there, never wrap into negative counts that
  // ForEach would drop as zero-net.
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  PairCountMap m;
  const uint64_t key = PackLabelPair(1, 2);
  m.Add(key, kMax - 1);
  m.Add(key, 5);  // would overflow; clamps to kMax
  int64_t value = 0;
  m.ForEach([&](uint64_t, int64_t count) { value = count; });
  EXPECT_EQ(value, kMax);
  m.Add(key, 1);  // already saturated: stays put
  m.ForEach([&](uint64_t, int64_t count) { value = count; });
  EXPECT_EQ(value, kMax);

  PairCountMap low;
  const uint64_t key2 = PackLabelPair(3, 4);
  low.Add(key2, kMin + 1);
  low.Add(key2, -5);  // would underflow; clamps to kMin
  low.ForEach([&](uint64_t, int64_t count) { value = count; });
  EXPECT_EQ(value, kMin);

  // SaturatingAddInt guards the 32-bit support counters the same way.
  constexpr int kIntMax = std::numeric_limits<int>::max();
  EXPECT_EQ(SaturatingAddInt(kIntMax, 1), kIntMax);
  EXPECT_EQ(SaturatingAddInt(kIntMax - 1, 1), kIntMax);
  EXPECT_EQ(SaturatingAddInt(std::numeric_limits<int>::min(), -1),
            std::numeric_limits<int>::min());
  EXPECT_EQ(SaturatingAddInt(2, 3), 5);
}

TEST(PairCountMapTest, GrowsPastInitialCapacityCorrectly) {
  // Stress rehash: verify against std::map on tens of thousands of
  // random updates.
  PairCountMap m;
  std::map<uint64_t, int64_t> reference;
  Rng rng(17);
  for (int i = 0; i < 50000; ++i) {
    const auto a = static_cast<LabelId>(rng.Uniform(500));
    const auto b = static_cast<LabelId>(rng.Uniform(500));
    const auto delta = static_cast<int64_t>(rng.UniformInt(-3, 5));
    if (delta == 0) continue;
    const uint64_t key = PackLabelPair(a, b);
    m.Add(key, delta);
    reference[key] += delta;
  }
  // Zero-net entries may be dropped at rehash (documented); compare the
  // nonzero contents only.
  std::map<uint64_t, int64_t> actual;
  m.ForEach([&](uint64_t key, int64_t count) {
    if (count != 0) actual[key] = count;
  });
  std::erase_if(reference, [](const auto& kv) { return kv.second == 0; });
  EXPECT_EQ(actual, reference);
}

}  // namespace
}  // namespace cousins
