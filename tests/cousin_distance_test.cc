#include <gtest/gtest.h>

#include "core/cousin_distance.h"
#include "test_util.h"
#include "tree/lca.h"

namespace cousins {
namespace {

using testing_util::FamilyTree;
using testing_util::FindByLabel;

TEST(HeightsToDistanceTest, PaperFig2Definition) {
  // Equal heights h: d = h - 1.
  EXPECT_EQ(TwiceDistanceFromHeights(1, 1), 0);  // siblings
  EXPECT_EQ(TwiceDistanceFromHeights(2, 2), 2);  // first cousins
  EXPECT_EQ(TwiceDistanceFromHeights(3, 3), 4);  // second cousins
  EXPECT_EQ(TwiceDistanceFromHeights(4, 4), 6);
  // Gap of one generation: d = min - 0.5.
  EXPECT_EQ(TwiceDistanceFromHeights(1, 2), 1);  // aunt-niece (0.5)
  EXPECT_EQ(TwiceDistanceFromHeights(2, 1), 1);  // symmetric
  EXPECT_EQ(TwiceDistanceFromHeights(2, 3), 3);  // once removed (1.5)
  EXPECT_EQ(TwiceDistanceFromHeights(3, 4), 5);  // 2.5
  // Gap >= 2 is undefined (the paper's cutoff).
  EXPECT_EQ(TwiceDistanceFromHeights(1, 3), kUndefinedDistance);
  EXPECT_EQ(TwiceDistanceFromHeights(2, 5), kUndefinedDistance);
  // Heights below 1 mean ancestor-related; undefined.
  EXPECT_EQ(TwiceDistanceFromHeights(0, 1), kUndefinedDistance);
  EXPECT_EQ(TwiceDistanceFromHeights(0, 0), kUndefinedDistance);
}

TEST(LevelArithmeticTest, Eq1And2MatchPaper) {
  // d = 0: both nodes are 1 below the LCA.
  EXPECT_EQ(MyLevel(0), 1);
  EXPECT_EQ(MyCousinLevel(0), 1);
  // d = 0.5 (aunt-niece): deeper node 2 below, shallower 1 below.
  EXPECT_EQ(MyLevel(1), 2);
  EXPECT_EQ(MyCousinLevel(1), 1);
  // d = 1 (first cousins): both 2 below.
  EXPECT_EQ(MyLevel(2), 2);
  EXPECT_EQ(MyCousinLevel(2), 2);
  // d = 1.5: 3 and 2.
  EXPECT_EQ(MyLevel(3), 3);
  EXPECT_EQ(MyCousinLevel(3), 2);
  // d = 2: 3 and 3.
  EXPECT_EQ(MyLevel(4), 3);
  EXPECT_EQ(MyCousinLevel(4), 3);
  // d = 2.5: 4 and 3.
  EXPECT_EQ(MyLevel(5), 4);
  EXPECT_EQ(MyCousinLevel(5), 3);
}

TEST(LevelArithmeticTest, LevelsInvertDistance) {
  for (int twice_d = 0; twice_d <= 20; ++twice_d) {
    EXPECT_EQ(TwiceDistanceFromHeights(MyLevel(twice_d),
                                       MyCousinLevel(twice_d)),
              twice_d);
  }
}

// The worked example of §2: c against its relatives in T1.
TEST(CousinDistanceTest, PaperSection2WorkedExample) {
  Tree t = FamilyTree();
  LcaIndex lca(t);
  const NodeId c = FindByLabel(t, "c");
  auto dist = [&](const std::string& other) {
    return TwiceCousinDistance(t, lca, c, FindByLabel(t, other));
  };
  EXPECT_EQ(dist("s"), 0);     // siblings: 0
  EXPECT_EQ(dist("aunt"), 1);  // aunt-niece: 0.5
  EXPECT_EQ(dist("e"), 2);     // first cousins: 1
  EXPECT_EQ(dist("g"), 3);     // first cousin once removed: 1.5
  EXPECT_EQ(dist("h"), 4);     // second cousins: 2
  EXPECT_EQ(dist("f"), 5);     // second cousins once removed: 2.5
}

TEST(CousinDistanceTest, SymmetricInArguments) {
  Tree t = FamilyTree();
  LcaIndex lca(t);
  for (NodeId u = 0; u < t.size(); ++u) {
    for (NodeId v = 0; v < t.size(); ++v) {
      EXPECT_EQ(TwiceCousinDistance(t, lca, u, v),
                TwiceCousinDistance(t, lca, v, u));
    }
  }
}

TEST(CousinDistanceTest, ParentChildAndAncestorsUndefined) {
  Tree t = FamilyTree();
  LcaIndex lca(t);
  const NodeId c = FindByLabel(t, "c");
  const NodeId p = FindByLabel(t, "p");
  const NodeId gp = FindByLabel(t, "gp");
  const NodeId gg = FindByLabel(t, "gg");
  EXPECT_EQ(TwiceCousinDistance(t, lca, c, p), kUndefinedDistance);
  EXPECT_EQ(TwiceCousinDistance(t, lca, c, gp), kUndefinedDistance);
  EXPECT_EQ(TwiceCousinDistance(t, lca, c, gg), kUndefinedDistance);
}

TEST(CousinDistanceTest, SelfUndefined) {
  Tree t = FamilyTree();
  LcaIndex lca(t);
  const NodeId c = FindByLabel(t, "c");
  EXPECT_EQ(TwiceCousinDistance(t, lca, c, c), kUndefinedDistance);
}

TEST(CousinDistanceTest, UnlabeledNodesUndefined) {
  Tree t = testing_util::MustParse("((c,s),(e));");  // unlabeled internals
  LcaIndex lca(t);
  const NodeId c = FindByLabel(t, "c");
  // c's uncle (the unlabeled internal node above e) has no label.
  const NodeId uncle = t.parent(FindByLabel(t, "e"));
  EXPECT_EQ(TwiceCousinDistance(t, lca, c, uncle), kUndefinedDistance);
}

TEST(CousinDistanceTest, GenerationGapTwoUndefined) {
  // x at height 1, y at height 3 under the root.
  Tree t = testing_util::MustParse("(x,(((y)a)b))r;");
  LcaIndex lca(t);
  EXPECT_EQ(TwiceCousinDistance(t, lca, FindByLabel(t, "x"),
                                FindByLabel(t, "y")),
            kUndefinedDistance);
}

}  // namespace
}  // namespace cousins
