#include <gtest/gtest.h>

#include <set>

#include "gen/yule_generator.h"
#include "phylo/clusters.h"
#include "phylo/consensus.h"
#include "tree/canonical.h"
#include "tree/newick.h"
#include "util/rng.h"

namespace cousins {
namespace {

std::set<Bitset> ClustersOf(const Tree& t, const TaxonIndex& taxa) {
  auto v = TreeClusters(t, taxa).value();
  return {v.begin(), v.end()};
}

TEST(GreedyConsensusTest, RefinesMajority) {
  auto labels = std::make_shared<LabelTable>();
  // {A,B} in 2/3 (majority); {C,D} in 1/3 only but compatible with
  // everything kept: greedy adds it, majority does not.
  auto forest = ParseNewickForest(
      "((A,B),(C,D),E);((A,B),C,D,E);((A,C),B,D,E);", labels);
  ASSERT_TRUE(forest.ok());
  TaxonIndex taxa = TaxonIndex::FromTrees(*forest).value();
  Tree majority =
      ConsensusTree(*forest, ConsensusMethod::kMajority).value();
  Tree greedy = ConsensusTree(*forest, ConsensusMethod::kGreedy).value();
  std::set<Bitset> majority_clusters = ClustersOf(majority, taxa);
  std::set<Bitset> greedy_clusters = ClustersOf(greedy, taxa);
  for (const Bitset& c : majority_clusters) {
    EXPECT_TRUE(greedy_clusters.contains(c));
  }
  EXPECT_GT(greedy_clusters.size(), majority_clusters.size());
}

TEST(GreedyConsensusTest, PrefersMoreReplicatedOnConflict) {
  auto labels = std::make_shared<LabelTable>();
  // {A,B} appears twice, conflicting {B,C} once: greedy keeps {A,B}.
  auto forest = ParseNewickForest(
      "((A,B),C,D);((A,B),C,D);((B,C),A,D);", labels);
  ASSERT_TRUE(forest.ok());
  TaxonIndex taxa = TaxonIndex::FromTrees(*forest).value();
  Tree greedy = ConsensusTree(*forest, ConsensusMethod::kGreedy).value();
  Bitset ab(taxa.size());
  ab.Set(taxa.index_of(labels->Find("A")));
  ab.Set(taxa.index_of(labels->Find("B")));
  EXPECT_TRUE(ClustersOf(greedy, taxa).contains(ab));
}

TEST(GreedyConsensusTest, PropertySupersetOfMajorityOnRandomSets) {
  Rng rng(606);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa_names = MakeTaxa(10);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Tree> trees;
    for (int i = 0; i < 7; ++i) {
      trees.push_back(RandomCoalescentTree(taxa_names, rng, labels));
    }
    TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
    std::set<Bitset> majority = ClustersOf(
        ConsensusTree(trees, ConsensusMethod::kMajority).value(), taxa);
    std::set<Bitset> greedy = ClustersOf(
        ConsensusTree(trees, ConsensusMethod::kGreedy).value(), taxa);
    for (const Bitset& c : majority) {
      EXPECT_TRUE(greedy.contains(c)) << "trial " << trial;
    }
  }
}

TEST(GreedyConsensusTest, MethodNameAndExtendedList) {
  EXPECT_EQ(ConsensusMethodName(ConsensusMethod::kGreedy), "greedy");
  bool found = false;
  for (ConsensusMethod m : kAllConsensusMethodsExtended) {
    found |= m == ConsensusMethod::kGreedy;
  }
  EXPECT_TRUE(found);
  for (ConsensusMethod m : kAllConsensusMethods) {
    EXPECT_NE(m, ConsensusMethod::kGreedy);  // paper set stays pure
  }
}

}  // namespace
}  // namespace cousins
