#include <gtest/gtest.h>

#include "gen/uniform_generator.h"
#include "tree/canonical.h"
#include "tree/newick.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(NewickParseTest, SingleLeaf) {
  Result<Tree> t = ParseNewick("A;");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->size(), 1);
  EXPECT_EQ(t->label_name(0), "A");
}

TEST(NewickParseTest, SimpleCherry) {
  Result<Tree> t = ParseNewick("(A,B);");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 3);
  EXPECT_FALSE(t->has_label(t->root()));
  EXPECT_EQ(t->children(t->root()).size(), 2u);
  EXPECT_EQ(t->leaf_count(), 2);
}

TEST(NewickParseTest, InternalLabels) {
  Result<Tree> t = ParseNewick("((A,B)ab,C)root;");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->label_name(t->root()), "root");
  NodeId ab = t->children(t->root())[0];
  EXPECT_EQ(t->label_name(ab), "ab");
}

TEST(NewickParseTest, TrailingSemicolonOptional) {
  EXPECT_TRUE(ParseNewick("(A,B)").ok());
  EXPECT_TRUE(ParseNewick("(A,B);").ok());
}

TEST(NewickParseTest, BranchLengths) {
  Result<Tree> t = ParseNewick("(A:0.5,B:1.25e1)r:3;");
  ASSERT_TRUE(t.ok());
  NodeId a = t->children(t->root())[0];
  NodeId b = t->children(t->root())[1];
  EXPECT_DOUBLE_EQ(t->branch_length(a), 0.5);
  EXPECT_DOUBLE_EQ(t->branch_length(b), 12.5);
}

TEST(NewickParseTest, QuotedLabels) {
  Result<Tree> t = ParseNewick("('Homo sapiens','it''s',B);");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->label_name(t->children(0)[0]), "Homo sapiens");
  EXPECT_EQ(t->label_name(t->children(0)[1]), "it's");
}

TEST(NewickParseTest, WhitespaceAndComments) {
  Result<Tree> t = ParseNewick("  ( A , [a comment] B ) r ;  ");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 3);
  EXPECT_EQ(t->label_name(0), "r");
}

TEST(NewickParseTest, MultifurcationAndNesting) {
  Result<Tree> t = ParseNewick("(A,B,C,(D,E,F)def)r;");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->children(t->root()).size(), 4u);
  EXPECT_EQ(t->leaf_count(), 6);
}

TEST(NewickParseTest, ErrorEmpty) {
  EXPECT_FALSE(ParseNewick("").ok());
  EXPECT_FALSE(ParseNewick("   ").ok());
}

TEST(NewickParseTest, ErrorUnbalanced) {
  EXPECT_FALSE(ParseNewick("((A,B);").ok());
  EXPECT_FALSE(ParseNewick("(A,B));").ok());
}

TEST(NewickParseTest, ErrorTrailingGarbage) {
  EXPECT_FALSE(ParseNewick("(A,B); extra").ok());
}

TEST(NewickParseTest, ErrorBadBranchLength) {
  EXPECT_FALSE(ParseNewick("(A:xyz,B);").ok());
  EXPECT_FALSE(ParseNewick("(A:,B);").ok());
}

TEST(NewickParseTest, ErrorUnterminatedQuote) {
  EXPECT_FALSE(ParseNewick("('abc,B);").ok());
}

TEST(NewickParseTest, ErrorsReportLineAndColumn) {
  // The ')' making the tree unbalanced sits on line 2, column 3.
  Result<Tree> t = ParseNewick("(A,\nB))x;");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().ToString().find("trailing characters"), std::string::npos);
  EXPECT_NE(t.status().ToString().find("line 2, column 3"), std::string::npos);

  Result<Tree> missing = ParseNewick("(A,(B,C);");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("expected ',' or ')'"),
            std::string::npos);
  EXPECT_NE(missing.status().ToString().find("line 1, column 9"),
            std::string::npos);

  Result<Tree> unterminated = ParseNewick("(A,(B,C)");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().ToString().find("unterminated '(' opened"),
            std::string::npos);
  EXPECT_NE(unterminated.status().ToString().find("line 1, column 1"),
            std::string::npos);

  Result<Tree> bad_length = ParseNewick("(A:xyz,B);");
  ASSERT_FALSE(bad_length.ok());
  EXPECT_NE(bad_length.status().ToString().find("bad branch length 'xyz'"), std::string::npos);
  EXPECT_NE(bad_length.status().ToString().find("line 1, column 4"), std::string::npos);

  Result<Tree> quote = ParseNewick("('abc,B);");
  ASSERT_FALSE(quote.ok());
  EXPECT_NE(quote.status().ToString().find("unterminated quoted label"), std::string::npos);
  EXPECT_NE(quote.status().ToString().find("line 1, column 2"), std::string::npos);
}

TEST(NewickParseTest, SharedLabelTable) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = ParseNewick("(A,B);", labels).value();
  Tree t2 = ParseNewick("(B,A);", labels).value();
  EXPECT_EQ(t1.labels_ptr().get(), t2.labels_ptr().get());
  EXPECT_EQ(t1.label(t1.children(0)[0]), t2.label(t2.children(0)[1]));
}

TEST(NewickForestTest, ParsesMultipleTrees) {
  Result<std::vector<Tree>> forest =
      ParseNewickForest("(A,B);\n# comment line\n(C,(A,B));\n\n(A,C);");
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  EXPECT_EQ(forest->size(), 3u);
  EXPECT_EQ((*forest)[1].leaf_count(), 3);
  // All trees share the forest's label table.
  EXPECT_EQ((*forest)[0].labels_ptr().get(),
            (*forest)[2].labels_ptr().get());
}

TEST(NewickForestTest, PropagatesParseErrors) {
  EXPECT_FALSE(ParseNewickForest("(A,B);((C;").ok());
}

TEST(NewickForestTest, ErrorsPointIntoOriginalText) {
  // The forest reader strips the '#' comment line into an internal
  // buffer before parsing; the reported position must nevertheless be
  // the line/column in the ORIGINAL text — here the unbalanced third
  // tree starts at line 3, column 1 (line 1 is the comment).
  Result<std::vector<Tree>> forest =
      ParseNewickForest("# header\n(A,B);\n(C,(D,E);\n");
  ASSERT_FALSE(forest.ok());
  EXPECT_NE(forest.status().ToString().find("unterminated '(' opened"), std::string::npos);
  EXPECT_NE(forest.status().ToString().find("line 3, column 1"), std::string::npos);
}

TEST(NewickWriteTest, SimpleRoundTrip) {
  const std::string in = "((A,B)ab,C)r;";
  Tree t = ParseNewick(in).value();
  EXPECT_EQ(ToNewick(t), in);
}

TEST(NewickWriteTest, QuotesWhenNeeded) {
  Tree t = ParseNewick("('Homo sapiens','a''b');").value();
  EXPECT_EQ(ToNewick(t), "('Homo sapiens','a''b');");
}

TEST(NewickWriteTest, BranchLengthsOption) {
  Tree t = ParseNewick("(A:0.5,B:2)r;").value();
  NewickWriteOptions opts;
  opts.write_branch_lengths = true;
  EXPECT_EQ(ToNewick(t, opts), "(A:0.5,B:2)r;");
}

TEST(NewickWriteTest, SuppressInternalLabels) {
  Tree t = ParseNewick("((A,B)ab,C)r;").value();
  NewickWriteOptions opts;
  opts.write_internal_labels = false;
  EXPECT_EQ(ToNewick(t, opts), "((A,B),C);");
}

// Property: parse(write(T)) is isomorphic to T for random trees.
class NewickRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NewickRoundTrip, RandomTreeSurvivesRoundTrip) {
  Rng rng(GetParam());
  UniformTreeOptions opts;
  opts.tree_size = 60;
  opts.alphabet_size = 15;
  opts.labeled_fraction = 0.8;
  Tree t = GenerateUniformTree(opts, rng);
  Result<Tree> back = ParseNewick(ToNewick(t), t.labels_ptr());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(UnorderedIsomorphic(t, *back));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NewickRoundTrip,
                         ::testing::Range<uint64_t>(0, 20));

TEST(NewickDirtyInputTest, LeadingUtf8BomIsStripped) {
  Result<Tree> t = ParseNewick("\xEF\xBB\xBF(A,(B,C));");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(ToNewick(*t), "(A,(B,C));");
  // Error positions are reported in the BOM-less text — column 9, not
  // 12 — matching what an editor displays.
  Result<Tree> bad = ParseNewick("\xEF\xBB\xBF(A,(B,C);");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 1, column 9"),
            std::string::npos)
      << bad.status().ToString();
}

TEST(NewickDirtyInputTest, CrlfAndLoneCrEachCountAsOneLineBreak) {
  // CRLF line endings parse like LF and never split a position count.
  Result<Tree> crlf = ParseNewick("(A,\r\n(B,\r\nC));");
  ASSERT_TRUE(crlf.ok()) << crlf.status().ToString();
  EXPECT_EQ(ToNewick(*crlf), "(A,(B,C));");

  // "\r\n" is ONE break (line 3, not 5) and the column restarts at it.
  Result<Tree> bad = ParseNewick("(A,\r\n(B,\r\nC));extra");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 3, column 5"),
            std::string::npos)
      << bad.status().ToString();

  // Classic-Mac lone '\r' is also a line break.
  Result<Tree> lone = ParseNewick("(A,\r(B,C);");
  ASSERT_FALSE(lone.ok());
  EXPECT_NE(lone.status().ToString().find("line 2, column 6"),
            std::string::npos)
      << lone.status().ToString();
}

TEST(NewickDirtyInputTest, ForestSplittingHandlesBomAndCrlf) {
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> forest = ParseNewickForest(
      "\xEF\xBB\xBF(a,b);\r\n# a comment line\r\n(c,(d,e));\r(f,g);",
      labels);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  ASSERT_EQ(forest->size(), 3u);
  EXPECT_EQ(ToNewick((*forest)[1]), "(c,(d,e));");
}

}  // namespace
}  // namespace cousins
