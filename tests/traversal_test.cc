#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/uniform_generator.h"
#include "tree/newick.h"
#include "tree/traversal.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(TraversalTest, PreorderIsIdentity) {
  Tree t = ParseNewick("((x,y)a,(z)b)r;").value();
  std::vector<NodeId> pre = PreorderIds(t);
  ASSERT_EQ(pre.size(), 6u);
  for (NodeId v = 0; v < t.size(); ++v) EXPECT_EQ(pre[v], v);
}

TEST(TraversalTest, PostorderChildrenBeforeParents) {
  Rng rng(3);
  UniformTreeOptions opts;
  opts.tree_size = 100;
  Tree t = GenerateUniformTree(opts, rng);
  std::vector<NodeId> post = PostorderIds(t);
  std::vector<int32_t> position(t.size());
  for (size_t i = 0; i < post.size(); ++i) position[post[i]] = i;
  for (NodeId v = 1; v < t.size(); ++v) {
    EXPECT_LT(position[v], position[t.parent(v)]);
  }
}

TEST(TraversalTest, SubtreeSizes) {
  Tree t = ParseNewick("((x,y)a,(z)b)r;").value();
  std::vector<int32_t> sizes = SubtreeSizes(t);
  EXPECT_EQ(sizes[0], 6);                       // r
  EXPECT_EQ(sizes[t.children(0)[0]], 3);        // a
  EXPECT_EQ(sizes[t.children(0)[1]], 2);        // b
}

TEST(TraversalTest, SubtreeSizesSumInvariant) {
  Rng rng(4);
  UniformTreeOptions opts;
  opts.tree_size = 150;
  Tree t = GenerateUniformTree(opts, rng);
  std::vector<int32_t> sizes = SubtreeSizes(t);
  EXPECT_EQ(sizes[0], t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    int32_t child_total = 0;
    for (NodeId c : t.children(v)) child_total += sizes[c];
    EXPECT_EQ(sizes[v], child_total + 1);
  }
}

TEST(TraversalTest, ClimbUp) {
  Tree t = ParseNewick("((((e)d)c)b)a;").value();
  EXPECT_EQ(ClimbUp(t, 4, 0), 4);
  EXPECT_EQ(ClimbUp(t, 4, 2), 2);
  EXPECT_EQ(ClimbUp(t, 4, 4), 0);
  EXPECT_EQ(ClimbUp(t, 4, 5), kNoNode);   // past the root
  EXPECT_EQ(ClimbUp(t, 4, 100), kNoNode);
  EXPECT_EQ(ClimbUp(t, 0, 1), kNoNode);
}

TEST(TraversalTest, SubtreeLeafLabels) {
  Tree t = ParseNewick("((x,y)a,(z)b)r;").value();
  NodeId a = t.children(0)[0];
  std::vector<LabelId> leaf_labels = SubtreeLeafLabels(t, a);
  std::set<std::string> names;
  for (LabelId l : leaf_labels) names.insert(t.labels().Name(l));
  EXPECT_EQ(names, (std::set<std::string>{"x", "y"}));
  // Whole tree.
  EXPECT_EQ(SubtreeLeafLabels(t, 0).size(), 3u);
  // A leaf's own subtree.
  NodeId x = t.children(a)[0];
  ASSERT_EQ(SubtreeLeafLabels(t, x).size(), 1u);
}

TEST(TraversalTest, SubtreeLeafLabelsSkipsUnlabeledLeaves) {
  Tree t = ParseNewick("(x,,y);").value();  // middle leaf unlabeled
  EXPECT_EQ(SubtreeLeafLabels(t, 0).size(), 2u);
}

}  // namespace
}  // namespace cousins
