// QuarantineLedger semantics: deduplicated Add, canonical Entries()
// ordering regardless of arrival order, per-code histogram — and the
// ledger's checkpoint round trip: a lenient run's checkpoint carries
// its ledger, restore merges (never double-records), and a strict
// resume of a lenient checkpoint is refused rather than silently
// dropping the quarantine record.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/multi_tree_mining.h"
#include "core/quarantine.h"
#include "gen/yule_generator.h"
#include "util/rng.h"
#include "util/status.h"

namespace cousins {
namespace {

QuarantineEntry MakeEntry(int64_t index, QuarantineStage stage,
                          const std::string& message) {
  QuarantineEntry entry;
  entry.tree_index = index;
  entry.source = "forest.nwk";
  entry.code = StatusCode::kInvalidArgument;
  entry.message = message;
  entry.stage = stage;
  return entry;
}

TEST(QuarantineLedgerTest, AddDropsExactDuplicates) {
  QuarantineLedger ledger;
  ledger.Add(MakeEntry(3, QuarantineStage::kParse, "unbalanced"));
  ledger.Add(MakeEntry(3, QuarantineStage::kParse, "unbalanced"));
  EXPECT_EQ(ledger.size(), 1u);
  // Any differing field makes it a distinct entry.
  ledger.Add(MakeEntry(3, QuarantineStage::kMine, "unbalanced"));
  ledger.Add(MakeEntry(3, QuarantineStage::kParse, "oversized"));
  EXPECT_EQ(ledger.size(), 3u);
}

TEST(QuarantineLedgerTest, EntriesAreCanonicallyOrdered) {
  QuarantineLedger ledger;
  ledger.Add(MakeEntry(7, QuarantineStage::kParse, "late"));
  ledger.Add(MakeEntry(2, QuarantineStage::kMine, "mid"));
  ledger.Add(MakeEntry(2, QuarantineStage::kParse, "early"));
  const std::vector<QuarantineEntry> entries = ledger.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].tree_index, 2);
  EXPECT_EQ(entries[0].stage, QuarantineStage::kParse);
  EXPECT_EQ(entries[1].tree_index, 2);
  EXPECT_EQ(entries[1].stage, QuarantineStage::kMine);
  EXPECT_EQ(entries[2].tree_index, 7);
}

TEST(QuarantineLedgerTest, ConcurrentAddsAllLand) {
  QuarantineLedger ledger;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ledger, t]() {
      for (int i = 0; i < 50; ++i) {
        ledger.Add(MakeEntry(t * 100 + i, QuarantineStage::kMine, "x"));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(ledger.size(), 200u);
}

TEST(QuarantineLedgerTest, CodeHistogramCountsByStatusCodeName) {
  QuarantineLedger ledger;
  QuarantineEntry bad = MakeEntry(0, QuarantineStage::kParse, "a");
  ledger.Add(bad);
  bad.tree_index = 1;
  ledger.Add(bad);
  QuarantineEntry big = MakeEntry(2, QuarantineStage::kParse, "b");
  big.code = StatusCode::kResourceExhausted;
  ledger.Add(big);
  const auto histogram = ledger.CodeHistogram();
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram.at(std::string(
                StatusCodeName(StatusCode::kInvalidArgument))),
            2);
  EXPECT_EQ(histogram.at(std::string(
                StatusCodeName(StatusCode::kResourceExhausted))),
            1);
}

TEST(QuarantineLedgerTest, StageNamesAreStable) {
  EXPECT_EQ(QuarantineStageName(QuarantineStage::kParse), "parse");
  EXPECT_EQ(QuarantineStageName(QuarantineStage::kMine), "mine");
  EXPECT_EQ(QuarantineStageName(QuarantineStage::kConsensus), "consensus");
  EXPECT_EQ(QuarantineStageName(QuarantineStage::kBootstrap), "bootstrap");
}

class LedgerCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    labels_ = std::make_shared<LabelTable>();
    Rng rng(11);
    YulePhylogenyOptions gen;
    gen.min_nodes = 10;
    gen.max_nodes = 20;
    for (int i = 0; i < 5; ++i) {
      miner_.AddTree(GenerateYulePhylogeny(gen, rng, labels_));
    }
  }

  MultiTreeMiningOptions options_;
  std::shared_ptr<LabelTable> labels_;
  MultiTreeMiner miner_{MultiTreeMiningOptions{}};
};

TEST_F(LedgerCheckpointTest, LedgerRoundTripsThroughTheCheckpoint) {
  QuarantineLedger ledger;
  QuarantineEntry parse_error = MakeEntry(4, QuarantineStage::kParse, "bad");
  parse_error.byte_offset = 120;
  parse_error.line = 5;
  parse_error.column = 17;
  parse_error.snippet = "((a,(b";
  ledger.Add(parse_error);
  ledger.Add(MakeEntry(9, QuarantineStage::kMine, "fold failed"));

  const std::string bytes = miner_.SerializeCheckpoint(&ledger);
  QuarantineLedger restored_ledger;
  Result<MultiTreeMiner> restored = MultiTreeMiner::RestoreFromCheckpoint(
      bytes, options_, labels_, &restored_ledger);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->AllTallies(), miner_.AllTallies());
  EXPECT_EQ(restored_ledger.Entries(), ledger.Entries());
  // Re-serializing restored state reproduces the bytes exactly.
  EXPECT_EQ(restored->SerializeCheckpoint(&restored_ledger), bytes);
}

TEST_F(LedgerCheckpointTest, RestoreMergesIntoANonEmptyLedger) {
  QuarantineLedger ledger;
  ledger.Add(MakeEntry(4, QuarantineStage::kParse, "bad"));
  const std::string bytes = miner_.SerializeCheckpoint(&ledger);

  // The resuming caller re-parsed its input and already re-recorded
  // entry 4, plus found a new problem; the checkpoint's copy of entry 4
  // must not double-record.
  QuarantineLedger resumed;
  resumed.Add(MakeEntry(4, QuarantineStage::kParse, "bad"));
  resumed.Add(MakeEntry(6, QuarantineStage::kParse, "also bad"));
  ASSERT_TRUE(MultiTreeMiner::RestoreFromCheckpoint(bytes, options_, labels_,
                                                    &resumed)
                  .ok());
  EXPECT_EQ(resumed.size(), 2u);
}

TEST_F(LedgerCheckpointTest, StrictResumeOfALenientCheckpointIsRefused) {
  QuarantineLedger ledger;
  ledger.Add(MakeEntry(4, QuarantineStage::kParse, "bad"));
  const std::string bytes = miner_.SerializeCheckpoint(&ledger);
  Result<MultiTreeMiner> restored =
      MultiTreeMiner::RestoreFromCheckpoint(bytes, options_, labels_);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LedgerCheckpointTest, EmptyLedgerSerializesIdenticallyToNull) {
  QuarantineLedger empty;
  EXPECT_EQ(miner_.SerializeCheckpoint(&empty), miner_.SerializeCheckpoint());
  // And a ledger-less checkpoint restores fine without a ledger.
  EXPECT_TRUE(MultiTreeMiner::RestoreFromCheckpoint(
                  miner_.SerializeCheckpoint(), options_, labels_)
                  .ok());
}

}  // namespace
}  // namespace cousins
