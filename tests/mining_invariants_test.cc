// Cross-cutting invariants of the mining pipeline, property-tested over
// parameter grids.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "core/cousin_distance.h"
#include "core/single_tree_mining.h"
#include "gen/fanout_generator.h"
#include "gen/uniform_generator.h"
#include "tree/builder.h"
#include "tree/lca.h"
#include "util/rng.h"

namespace cousins {
namespace {

/// Rebuilds `tree` replacing label i by permuted[i] names.
Tree PermuteLabels(const Tree& tree, Rng& rng) {
  const auto n = static_cast<int32_t>(tree.labels().size());
  std::vector<int32_t> perm(n);
  for (int32_t i = 0; i < n; ++i) perm[i] = i;
  for (int32_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.Uniform(i + 1)]);
  }
  auto fresh = std::make_shared<LabelTable>();
  TreeBuilder b(fresh);
  struct Frame {
    NodeId orig;
    NodeId parent;
  };
  std::vector<Frame> stack = {{tree.root(), kNoNode}};
  while (!stack.empty()) {
    auto [orig, parent] = stack.back();
    stack.pop_back();
    std::string name;
    if (tree.has_label(orig)) {
      name = "renamed" + std::to_string(perm[tree.label(orig)]);
    }
    NodeId copy = parent == kNoNode ? b.AddRoot(name)
                                    : b.AddChild(parent, name);
    for (NodeId c : tree.children(orig)) stack.push_back({c, copy});
  }
  return std::move(b).Build();
}

class MiningInvariants
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(MiningInvariants, TotalOccurrencesEqualQualifyingNodePairs) {
  // Σ item occurrences == number of node pairs with defined distance
  // <= maxdist (counted directly via the LCA definition).
  auto [seed, twice_maxdist] = GetParam();
  Rng rng(seed);
  UniformTreeOptions gen;
  gen.tree_size = 70;
  gen.alphabet_size = 7;
  gen.labeled_fraction = 0.8;
  Tree t = GenerateUniformTree(gen, rng);

  MiningOptions opt;
  opt.twice_maxdist = twice_maxdist;
  int64_t mined_total = 0;
  for (const CousinPairItem& item : MineSingleTree(t, opt)) {
    mined_total += item.occurrences;
  }

  LcaIndex lca(t);
  int64_t direct = 0;
  for (NodeId u = 0; u < t.size(); ++u) {
    for (NodeId v = u + 1; v < t.size(); ++v) {
      const int d = TwiceCousinDistance(t, lca, u, v);
      direct += d != kUndefinedDistance && d <= twice_maxdist;
    }
  }
  EXPECT_EQ(mined_total, direct);
}

TEST_P(MiningInvariants, MaxdistMonotone) {
  // Items at maxdist D are exactly the <=D subset of items at D+1.
  auto [seed, twice_maxdist] = GetParam();
  Rng rng(seed + 7000);
  FanoutTreeOptions gen;
  gen.tree_size = 100;
  gen.alphabet_size = 12;
  Tree t = GenerateFanoutTree(gen, rng);

  MiningOptions small;
  small.twice_maxdist = twice_maxdist;
  MiningOptions big;
  big.twice_maxdist = twice_maxdist + 1;
  auto small_items = MineSingleTree(t, small);
  std::vector<CousinPairItem> filtered;
  for (const CousinPairItem& item : MineSingleTree(t, big)) {
    if (item.twice_distance <= twice_maxdist) filtered.push_back(item);
  }
  EXPECT_EQ(small_items, filtered);
}

TEST_P(MiningInvariants, LabelPermutationInvariance) {
  // Renaming labels bijectively permutes items without changing their
  // multiset of (distance, occurrences).
  auto [seed, twice_maxdist] = GetParam();
  Rng rng(seed + 9000);
  UniformTreeOptions gen;
  gen.tree_size = 60;
  gen.alphabet_size = 6;
  Tree t = GenerateUniformTree(gen, rng);
  Tree renamed = PermuteLabels(t, rng);

  MiningOptions opt;
  opt.twice_maxdist = twice_maxdist;
  auto a = MineSingleTree(t, opt);
  auto b = MineSingleTree(renamed, opt);
  ASSERT_EQ(a.size(), b.size());
  std::multiset<std::pair<int, int64_t>> profile_a;
  std::multiset<std::pair<int, int64_t>> profile_b;
  for (const CousinPairItem& item : a) {
    profile_a.insert({item.twice_distance, item.occurrences});
  }
  for (const CousinPairItem& item : b) {
    profile_b.insert({item.twice_distance, item.occurrences});
  }
  EXPECT_EQ(profile_a, profile_b);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MiningInvariants,
    ::testing::Combine(::testing::Range<uint64_t>(0, 6),
                       ::testing::Values(0, 1, 2, 3, 5)));

}  // namespace
}  // namespace cousins
