#include <gtest/gtest.h>

#include "gen/yule_generator.h"
#include "seq/ambiguity.h"
#include "seq/fitch.h"
#include "seq/jukes_cantor.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(IupacTest, ExactBases) {
  EXPECT_EQ(IupacToMask('A'), 0b0001);
  EXPECT_EQ(IupacToMask('c'), 0b0010);
  EXPECT_EQ(IupacToMask('G'), 0b0100);
  EXPECT_EQ(IupacToMask('t'), 0b1000);
  EXPECT_EQ(IupacToMask('U'), 0b1000);  // RNA
}

TEST(IupacTest, AmbiguityCodes) {
  EXPECT_EQ(IupacToMask('R'), 0b0101);  // A|G
  EXPECT_EQ(IupacToMask('Y'), 0b1010);  // C|T
  EXPECT_EQ(IupacToMask('N'), 0b1111);
  EXPECT_EQ(IupacToMask('-'), 0b1111);
  EXPECT_EQ(IupacToMask('?'), 0b1111);
  EXPECT_EQ(IupacToMask('B'), 0b1110);  // not A
  EXPECT_EQ(IupacToMask('V'), 0b0111);  // not T
  EXPECT_EQ(IupacToMask('Z'), 0);       // invalid
}

TEST(ParseFastaIupacTest, AcceptsGapsAndCodes) {
  auto a = ParseFastaIupac(">x\nACGT-N\n>y\nRYWSKM\n");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->num_taxa(), 2);
  EXPECT_EQ(a->num_sites(), 6);
  EXPECT_EQ(a->rows[0].masks[4], 0b1111);
}

TEST(ParseFastaIupacTest, RejectsInvalid) {
  EXPECT_FALSE(ParseFastaIupac(">x\nAC!T\n").ok());
  EXPECT_FALSE(ParseFastaIupac(">x\nAC\n>y\nACGT\n").ok());
}

TEST(FitchAmbiguousTest, MatchesPlainFitchOnExactData) {
  Rng rng(21);
  Tree truth = RandomCoalescentTree(MakeTaxa(9), rng, nullptr, 0.15);
  SimulateOptions sim;
  sim.num_sites = 60;
  Alignment exact = SimulateAlignment(truth, sim, rng);
  EXPECT_EQ(FitchScoreAmbiguous(truth, ToMasked(exact)).value(),
            FitchScore(truth, exact).value());
}

TEST(FitchAmbiguousTest, GapsAddNoCost) {
  // All-N rows are parsimony-free regardless of topology.
  auto a = ParseFastaIupac(">w\nNNNN\n>x\nNNNN\n>y\nNNNN\n>z\nNNNN\n");
  ASSERT_TRUE(a.ok());
  Tree t = MustParse("((w,x),(y,z));");
  EXPECT_EQ(FitchScoreAmbiguous(t, *a).value(), 0);
}

TEST(FitchAmbiguousTest, AmbiguityOnlyLowersTheScore) {
  // A A G G needs 1 change; replacing one G by N lets the tree explain
  // the site with 0 extra freedom but the changed pattern A A N G still
  // needs... N can take A or G, intersection logic gives 1 or fewer.
  auto exact = ParseFastaIupac(">w\nA\n>x\nA\n>y\nG\n>z\nG\n");
  auto fuzzy = ParseFastaIupac(">w\nA\n>x\nA\n>y\nN\n>z\nG\n");
  Tree t = MustParse("((w,x),(y,z));");
  const int64_t exact_score = FitchScoreAmbiguous(t, *exact).value();
  const int64_t fuzzy_score = FitchScoreAmbiguous(t, *fuzzy).value();
  EXPECT_LE(fuzzy_score, exact_score);
  EXPECT_EQ(exact_score, 1);
}

TEST(FitchAmbiguousTest, PartialAmbiguityResolvesOptimally) {
  // R = {A,G}: site pattern A R G G costs nothing extra beyond A ? G G
  // resolved as G... w=A x=R y=G z=G on ((w,x),(y,z)):
  //   (w,x): {A} ∩ {A,G} = {A}; (y,z): {G}; root: {A} ∩ {G} = ∅ -> 1.
  auto a = ParseFastaIupac(">w\nA\n>x\nR\n>y\nG\n>z\nG\n");
  Tree t = MustParse("((w,x),(y,z));");
  EXPECT_EQ(FitchScoreAmbiguous(t, *a).value(), 1);
}

TEST(FitchAmbiguousTest, ErrorsMirrorPlainFitch) {
  auto a = ParseFastaIupac(">w\nA\n>x\nA\n");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(FitchScoreAmbiguous(MustParse("(w,x,y);"), *a).ok());
  EXPECT_FALSE(FitchScoreAmbiguous(MustParse("(w,q);"), *a).ok());
  EXPECT_FALSE(FitchScoreAmbiguous(Tree(), *a).ok());
  EXPECT_FALSE(
      FitchScoreAmbiguous(MustParse("(w,x);"), MaskedAlignment()).ok());
}

}  // namespace
}  // namespace cousins
