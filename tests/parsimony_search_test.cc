#include <gtest/gtest.h>

#include <set>

#include "gen/yule_generator.h"
#include "phylo/clusters.h"
#include "seq/fitch.h"
#include "seq/jukes_cantor.h"
#include "seq/neighbor_joining.h"
#include "seq/parsimony_search.h"
#include "tree/canonical.h"
#include "util/rng.h"

namespace cousins {
namespace {

Alignment SimulatedData(uint64_t seed, int32_t num_taxa, int32_t sites,
                        std::shared_ptr<LabelTable> labels) {
  Rng rng(seed);
  Tree truth = RandomCoalescentTree(MakeTaxa(num_taxa), rng, labels, 0.08);
  SimulateOptions opt;
  opt.num_sites = sites;
  return SimulateAlignment(truth, opt, rng);
}

TEST(ParsimonySearchTest, ReturnsDistinctSortedTrees) {
  auto labels = std::make_shared<LabelTable>();
  Alignment a = SimulatedData(3, 10, 120, labels);
  ParsimonySearchOptions opt;
  opt.max_trees = 12;
  opt.num_restarts = 2;
  auto trees = SearchParsimoniousTrees(a, opt, labels);
  ASSERT_GE(trees.size(), 2u);
  EXPECT_LE(trees.size(), 12u);
  std::set<std::string> canon;
  for (size_t i = 0; i < trees.size(); ++i) {
    EXPECT_TRUE(canon.insert(CanonicalForm(trees[i].tree)).second)
        << "duplicate topology at " << i;
    if (i > 0) {
      EXPECT_GE(trees[i].score, trees[i - 1].score);
    }
    // Scores are faithful.
    EXPECT_EQ(trees[i].score, FitchScore(trees[i].tree, a).value());
  }
}

TEST(ParsimonySearchTest, AllTreesContainAllTaxa) {
  auto labels = std::make_shared<LabelTable>();
  Alignment a = SimulatedData(5, 9, 100, labels);
  ParsimonySearchOptions opt;
  opt.max_trees = 8;
  for (const ScoredTree& st : SearchParsimoniousTrees(a, opt, labels)) {
    EXPECT_EQ(st.tree.leaf_count(), 9);
    EXPECT_TRUE(TaxonIndex::FromTree(st.tree).ok());
  }
}

TEST(ParsimonySearchTest, BeatsOrMatchesNeighborJoining) {
  auto labels = std::make_shared<LabelTable>();
  Alignment a = SimulatedData(7, 12, 150, labels);
  ParsimonySearchOptions opt;
  opt.max_trees = 5;
  auto trees = SearchParsimoniousTrees(a, opt, labels);
  ASSERT_FALSE(trees.empty());
  const int64_t nj_score =
      FitchScore(NeighborJoiningTree(a, labels), a).value();
  EXPECT_LE(trees[0].score, nj_score);
}

TEST(ParsimonySearchTest, DeterministicGivenSeed) {
  auto labels1 = std::make_shared<LabelTable>();
  auto labels2 = std::make_shared<LabelTable>();
  Alignment a1 = SimulatedData(11, 8, 80, labels1);
  Alignment a2 = SimulatedData(11, 8, 80, labels2);
  ParsimonySearchOptions opt;
  opt.max_trees = 6;
  auto t1 = SearchParsimoniousTrees(a1, opt, labels1);
  auto t2 = SearchParsimoniousTrees(a2, opt, labels2);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].score, t2[i].score);
    EXPECT_EQ(CanonicalForm(t1[i].tree), CanonicalForm(t2[i].tree));
  }
}

TEST(ParsimonySearchTest, PlateauCollectsEquallyParsimoniousTrees) {
  // Low-signal data (few sites) produces score ties; the plateau walk
  // should surface several equally parsimonious topologies.
  auto labels = std::make_shared<LabelTable>();
  Alignment a = SimulatedData(13, 10, 30, labels);
  ParsimonySearchOptions opt;
  opt.max_trees = 20;
  opt.num_restarts = 3;
  auto trees = SearchParsimoniousTrees(a, opt, labels);
  ASSERT_GE(trees.size(), 3u);
  int ties = 0;
  for (const ScoredTree& st : trees) ties += st.score == trees[0].score;
  EXPECT_GE(ties, 2) << "expected at least two equally parsimonious trees";
}

}  // namespace
}  // namespace cousins
