// BenchReport's write path: a successful Finish lands the JSON report
// on disk; a failed write removes the torn file and prints a warning
// without changing the bench verdict (the report is a side channel).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_report.h"
#include "util/fault_injection.h"

namespace cousins {
namespace {

std::string ReportPath(const std::string& dir, const std::string& name) {
  return dir + "/BENCH_" + name + ".json";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class BenchReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(setenv("COUSINS_BENCH_REPORT_DIR",
                     ::testing::TempDir().c_str(), 1),
              0);
    fault::FaultRegistry::Global().DisarmAll();
  }
  void TearDown() override {
    unsetenv("COUSINS_BENCH_REPORT_DIR");
    fault::FaultRegistry::Global().DisarmAll();
  }
};

TEST_F(BenchReportTest, FinishWritesTheReportAndReturnsTheVerdict) {
  const std::string path =
      ReportPath(::testing::TempDir(), "report_roundtrip");
  std::remove(path.c_str());
  bench::BenchReport report("report_roundtrip");
  report.AddParam("threads", int64_t{3});
  report.AddResult("pairs", int64_t{42});
  report.SetN(42);
  EXPECT_TRUE(report.Finish(true));
  const std::string body = ReadAll(path);
  EXPECT_NE(body.find("\"report_roundtrip\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"pairs\""), std::string::npos);
  std::remove(path.c_str());

  bench::BenchReport failing("report_bad_shape");
  EXPECT_FALSE(failing.Finish(false));
  std::remove(ReportPath(::testing::TempDir(), "report_bad_shape").c_str());
}

TEST_F(BenchReportTest, TransientWriteFaultIsRetriedAndTheReportSurvives) {
  const std::string path =
      ReportPath(::testing::TempDir(), "report_retried");
  std::remove(path.c_str());
  // A single one-shot fault fails the first write attempt; the retry
  // rewrites the report whole.
  fault::FaultRegistry::Global().Arm("bench.report.write", 1);
  bench::BenchReport report("report_retried");
  report.SetN(1);
  EXPECT_TRUE(report.Finish(true));
  fault::FaultRegistry::Global().DisarmAll();
  const std::string body = ReadAll(path);
  EXPECT_NE(body.find("\"report_retried\""), std::string::npos) << body;
  std::remove(path.c_str());
}

TEST_F(BenchReportTest, ExhaustedWriteRetriesRemoveTheTornReport) {
  const std::string path =
      ReportPath(::testing::TempDir(), "report_torn");
  std::remove(path.c_str());
  // Random mode with denominator 1 fires on every hit, so every retry
  // attempt fails and the policy exhausts.
  fault::FaultRegistry::Global().ArmRandom(7, 1);
  bench::BenchReport report("report_torn");
  report.SetN(1);
  // The verdict is the shape check, not the telemetry write.
  EXPECT_TRUE(report.Finish(true));
  fault::FaultRegistry::Global().DisarmAll();
  // No half-written JSON left behind to poison mechanical diffing.
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "torn report survived at " << path;
}

}  // namespace
}  // namespace cousins
