#include <gtest/gtest.h>

#include "seq/alignment.h"

namespace cousins {
namespace {

TEST(BaseCodingTest, RoundTrip) {
  for (uint8_t b = 0; b < kNumBases; ++b) {
    EXPECT_EQ(CharToBase(BaseToChar(b)), b);
  }
  EXPECT_EQ(CharToBase('a'), 0);
  EXPECT_EQ(CharToBase('t'), 3);
  EXPECT_EQ(CharToBase('N'), -1);
  EXPECT_EQ(CharToBase('-'), -1);
}

TEST(FastaTest, ParsesTwoSequences) {
  Result<Alignment> a = ParseFasta(">tax1\nACGT\n>tax2\nTGCA\n");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->num_taxa(), 2);
  EXPECT_EQ(a->num_sites(), 4);
  EXPECT_EQ(a->rows[0].taxon, "tax1");
  EXPECT_EQ(a->rows[0].bases, (std::vector<uint8_t>{0, 1, 2, 3}));
  EXPECT_EQ(a->RowOf("tax2"), 1);
  EXPECT_EQ(a->RowOf("nope"), -1);
}

TEST(FastaTest, MultilineSequencesAndCase) {
  Result<Alignment> a = ParseFasta(">x\nac\ngt\n>y\nACGT\n");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_sites(), 4);
  EXPECT_EQ(a->rows[0].bases, a->rows[1].bases);
}

TEST(FastaTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseFasta(">x\nACG\n>y\nACGT\n").ok());
}

TEST(FastaTest, RejectsInvalidBase) {
  EXPECT_FALSE(ParseFasta(">x\nACGN\n").ok());
}

TEST(FastaTest, RejectsSequenceBeforeHeader) {
  EXPECT_FALSE(ParseFasta("ACGT\n>x\nACGT\n").ok());
}

TEST(FastaTest, RejectsEmptyName) {
  EXPECT_FALSE(ParseFasta(">\nACGT\n").ok());
}

TEST(FastaTest, EmptyInputIsEmptyAlignment) {
  Result<Alignment> a = ParseFasta("");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_taxa(), 0);
  EXPECT_EQ(a->num_sites(), 0);
}

TEST(FastaTest, RoundTrip) {
  const std::string text = ">alpha\nACGTAC\n>beta\nTTGGCC\n";
  Alignment a = ParseFasta(text).value();
  EXPECT_EQ(ToFasta(a), text);
}

}  // namespace
}  // namespace cousins
