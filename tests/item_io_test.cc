#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/item_io.h"
#include "core/multi_tree_mining.h"
#include "core/single_tree_mining.h"
#include "test_util.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(ItemIoTest, RoundTripsMinedItems) {
  Tree t = testing_util::FamilyTree();
  MiningOptions opt;
  opt.twice_maxdist = 5;
  std::vector<CousinPairItem> items = MineSingleTree(t, opt);
  const std::string csv = ItemsToCsv(t.labels(), items);

  LabelTable fresh;
  Result<std::vector<CousinPairItem>> back = ItemsFromCsv(csv, &fresh);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), items.size());
  // Label ids are table-relative (label1 <= label2 is an id order), so
  // compare name-normalized tuples.
  auto normalize = [](const LabelTable& labels,
                      const std::vector<CousinPairItem>& v) {
    std::multiset<std::tuple<std::string, std::string, int, int64_t>> out;
    for (const CousinPairItem& item : v) {
      std::string a = labels.Name(item.label1);
      std::string b = labels.Name(item.label2);
      if (a > b) std::swap(a, b);
      out.insert({a, b, item.twice_distance, item.occurrences});
    }
    return out;
  };
  EXPECT_EQ(normalize(fresh, *back), normalize(t.labels(), items));
}

TEST(ItemIoTest, QuotedLabelsSurvive) {
  LabelTable labels;
  CousinPairItem item{labels.Intern("Homo sapiens"),
                      labels.Intern("with,comma"), 3, 2};
  const std::string csv = ItemsToCsv(labels, {item});
  LabelTable fresh;
  auto back = ItemsFromCsv(csv, &fresh);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ(fresh.Name((*back)[0].label1), "Homo sapiens");
  EXPECT_EQ(fresh.Name((*back)[0].label2), "with,comma");
  EXPECT_EQ((*back)[0].twice_distance, 3);
}

TEST(ItemIoTest, WildcardDistanceRoundTrips) {
  LabelTable labels;
  CousinPairItem item{labels.Intern("a"), labels.Intern("b"), kAnyDistance,
                      7};
  LabelTable fresh;
  auto back = ItemsFromCsv(ItemsToCsv(labels, {item}), &fresh);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].twice_distance, kAnyDistance);
  EXPECT_EQ((*back)[0].occurrences, 7);
}

TEST(ItemIoTest, SkipsCommentsAndBlankLines) {
  LabelTable labels;
  auto back = ItemsFromCsv(
      "# produced by cousins\nlabel1,label2,distance,occurrences\n\n"
      "a,b,1.5,2\n",
      &labels);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].twice_distance, 3);
}

TEST(ItemIoTest, RejectsMalformedRows) {
  LabelTable labels;
  EXPECT_FALSE(ItemsFromCsv("h\na,b,1.5\n", &labels).ok());       // 3 fields
  EXPECT_FALSE(ItemsFromCsv("h\na,b,x,1\n", &labels).ok());       // bad dist
  EXPECT_FALSE(ItemsFromCsv("h\na,b,0.3,1\n", &labels).ok());     // not /0.5
  EXPECT_FALSE(ItemsFromCsv("h\na,b,1,many\n", &labels).ok());    // bad occ
  EXPECT_FALSE(ItemsFromCsv("h\n\"a,b,1,1\n", &labels).ok());     // quote
}

TEST(ItemIoTest, EmptyCsvIsEmpty) {
  LabelTable labels;
  auto back = ItemsFromCsv("", &labels);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(ItemIoTest, FrequentPairsCsv) {
  LabelTable labels;
  FrequentCousinPair pair{labels.Intern("Gnetum"),
                          labels.Intern("Welwitschia"), 0, 4, 4};
  const std::string csv = FrequentPairsToCsv(labels, {pair});
  EXPECT_EQ(csv,
            "label1,label2,distance,support,occurrences\n"
            "Gnetum,Welwitschia,0,4,4\n");
}

}  // namespace
}  // namespace cousins
