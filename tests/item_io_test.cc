#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/item_io.h"
#include "core/multi_tree_mining.h"
#include "core/single_tree_mining.h"
#include "test_util.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(ItemIoTest, RoundTripsMinedItems) {
  Tree t = testing_util::FamilyTree();
  MiningOptions opt;
  opt.twice_maxdist = 5;
  std::vector<CousinPairItem> items = MineSingleTree(t, opt);
  const std::string csv = ItemsToCsv(t.labels(), items);

  LabelTable fresh;
  Result<std::vector<CousinPairItem>> back = ItemsFromCsv(csv, &fresh);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), items.size());
  // Label ids are table-relative (label1 <= label2 is an id order), so
  // compare name-normalized tuples.
  auto normalize = [](const LabelTable& labels,
                      const std::vector<CousinPairItem>& v) {
    std::multiset<std::tuple<std::string, std::string, int, int64_t>> out;
    for (const CousinPairItem& item : v) {
      std::string a = labels.Name(item.label1);
      std::string b = labels.Name(item.label2);
      if (a > b) std::swap(a, b);
      out.insert({a, b, item.twice_distance, item.occurrences});
    }
    return out;
  };
  EXPECT_EQ(normalize(fresh, *back), normalize(t.labels(), items));
}

TEST(ItemIoTest, QuotedLabelsSurvive) {
  LabelTable labels;
  CousinPairItem item{labels.Intern("Homo sapiens"),
                      labels.Intern("with,comma"), 3, 2};
  const std::string csv = ItemsToCsv(labels, {item});
  LabelTable fresh;
  auto back = ItemsFromCsv(csv, &fresh);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ(fresh.Name((*back)[0].label1), "Homo sapiens");
  EXPECT_EQ(fresh.Name((*back)[0].label2), "with,comma");
  EXPECT_EQ((*back)[0].twice_distance, 3);
}

TEST(ItemIoTest, WildcardDistanceRoundTrips) {
  LabelTable labels;
  CousinPairItem item{labels.Intern("a"), labels.Intern("b"), kAnyDistance,
                      7};
  LabelTable fresh;
  auto back = ItemsFromCsv(ItemsToCsv(labels, {item}), &fresh);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].twice_distance, kAnyDistance);
  EXPECT_EQ((*back)[0].occurrences, 7);
}

TEST(ItemIoTest, SkipsCommentsAndBlankLines) {
  LabelTable labels;
  auto back = ItemsFromCsv(
      "# produced by cousins\nlabel1,label2,distance,occurrences\n\n"
      "a,b,1.5,2\n",
      &labels);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].twice_distance, 3);
}

TEST(ItemIoTest, RejectsMalformedRows) {
  LabelTable labels;
  const std::string h = "label1,label2,distance,occurrences\n";
  EXPECT_FALSE(ItemsFromCsv(h + "a,b,1.5\n", &labels).ok());    // 3 fields
  EXPECT_FALSE(ItemsFromCsv(h + "a,b,x,1\n", &labels).ok());    // bad dist
  EXPECT_FALSE(ItemsFromCsv(h + "a,b,0.3,1\n", &labels).ok());  // not /0.5
  EXPECT_FALSE(ItemsFromCsv(h + "a,b,1,many\n", &labels).ok());  // bad occ
  EXPECT_FALSE(ItemsFromCsv(h + "\"a,b,1,1\n", &labels).ok());   // quote
}

TEST(ItemIoTest, RejectsMissingOrWrongHeader) {
  LabelTable labels;
  // A headerless CSV must error, not silently drop its first data row.
  Result<std::vector<CousinPairItem>> r =
      ItemsFromCsv("a,b,1.5,2\nc,d,1,3\n", &labels);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("header"), std::string::npos);
  EXPECT_FALSE(ItemsFromCsv("h\na,b,1.5,2\n", &labels).ok());
  // Wrong column set (frequent-pair header on item parser) is rejected too.
  EXPECT_FALSE(
      ItemsFromCsv("label1,label2,distance,support,occurrences\na,b,1,2,3\n",
                   &labels)
          .ok());
}

TEST(ItemIoTest, EmptyCsvIsEmpty) {
  LabelTable labels;
  auto back = ItemsFromCsv("", &labels);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(ItemIoTest, FrequentPairsCsv) {
  LabelTable labels;
  FrequentCousinPair pair{labels.Intern("Gnetum"),
                          labels.Intern("Welwitschia"), 0, 4, 4};
  const std::string csv = FrequentPairsToCsv(labels, {pair});
  EXPECT_EQ(csv,
            "label1,label2,distance,support,occurrences\n"
            "Gnetum,Welwitschia,0,4,4\n");
}

TEST(ItemIoTest, FrequentPairsCsvRoundTrips) {
  LabelTable labels;
  const std::vector<FrequentCousinPair> pairs = {
      {labels.Intern("Gnetum"), labels.Intern("Welwitschia"), 0, 4, 9},
      {labels.Intern("Ginkgoales"), labels.Intern("Ephedra"), 3, 2, 2},
      {labels.Intern("Homo sapiens"), labels.Intern("with,comma"),
       kAnyDistance, 7, 11},
  };
  const std::string csv = FrequentPairsToCsv(labels, pairs);
  LabelTable fresh;
  Result<std::vector<FrequentCousinPair>> back =
      FrequentPairsFromCsv(csv, &fresh);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    std::string a = fresh.Name((*back)[i].label1);
    std::string b = fresh.Name((*back)[i].label2);
    if (a > b) std::swap(a, b);
    std::string ea = labels.Name(pairs[i].label1);
    std::string eb = labels.Name(pairs[i].label2);
    if (ea > eb) std::swap(ea, eb);
    EXPECT_EQ(a, ea);
    EXPECT_EQ(b, eb);
    EXPECT_EQ((*back)[i].twice_distance, pairs[i].twice_distance);
    EXPECT_EQ((*back)[i].support, pairs[i].support);
    EXPECT_EQ((*back)[i].total_occurrences, pairs[i].total_occurrences);
  }
  // Re-rendering from the round-tripped pairs reproduces the CSV.
  EXPECT_EQ(FrequentPairsToCsv(fresh, *back), csv);
}

TEST(ItemIoTest, FrequentPairsFromCsvRejectsMalformedRows) {
  LabelTable labels;
  auto bad = [&](const std::string& row, const char* diagnostic) {
    Result<std::vector<FrequentCousinPair>> r = FrequentPairsFromCsv(
        "label1,label2,distance,support,occurrences\n" + row + "\n", &labels);
    EXPECT_FALSE(r.ok()) << row;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << row;
      EXPECT_NE(r.status().ToString().find(diagnostic), std::string::npos)
          << row << " -> " << r.status().ToString();
    }
  };
  bad("a,b,1.5,2", "expected 5 fields, got 4");              // missing occ
  bad("a,b,1.5,2,3,4", "expected 5 fields, got 6");          // extra field
  bad("a,b,x,2,2", "distance");                              // bad distance
  bad("a,b,0.3,2,2", "distance");                            // not 0.5-grain
  bad("a,b,1.5,many,2", "bad support 'many'");               // bad support
  bad("a,b,1.5,2,lots", "bad occurrence count 'lots'");      // bad occ
  bad("a,b,1.5,2,", "bad occurrence count ''");              // empty occ
  bad("\"a,b,1.5,2,2", "quote");                             // torn quote

  // Header/comments/blank lines are still skipped; a valid row parses.
  Result<std::vector<FrequentCousinPair>> ok = FrequentPairsFromCsv(
      "# comment\nlabel1,label2,distance,support,occurrences\n\n"
      "a,b,1.5,2,5\n",
      &labels);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->size(), 1u);
  EXPECT_EQ((*ok)[0].twice_distance, 3);
  EXPECT_EQ((*ok)[0].support, 2);
  EXPECT_EQ((*ok)[0].total_occurrences, 5);

  // A headerless CSV errors instead of silently dropping the first row.
  Result<std::vector<FrequentCousinPair>> headerless =
      FrequentPairsFromCsv("a,b,1.5,2,5\nc,d,1,2,3\n", &labels);
  ASSERT_FALSE(headerless.ok());
  EXPECT_EQ(headerless.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(headerless.status().ToString().find("header"), std::string::npos);
}

}  // namespace
}  // namespace cousins
