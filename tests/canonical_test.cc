#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/uniform_generator.h"
#include "tree/builder.h"
#include "tree/canonical.h"
#include "tree/newick.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(CanonicalTest, SiblingOrderIrrelevant) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = ParseNewick("((A,B)x,(C,D)y)r;", labels).value();
  Tree b = ParseNewick("((D,C)y,(B,A)x)r;", labels).value();
  EXPECT_EQ(CanonicalForm(a), CanonicalForm(b));
  EXPECT_TRUE(UnorderedIsomorphic(a, b));
}

TEST(CanonicalTest, DifferentTopologiesDiffer) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = ParseNewick("((A,B),C);", labels).value();
  Tree b = ParseNewick("((A,C),B);", labels).value();
  EXPECT_NE(CanonicalForm(a), CanonicalForm(b));
  EXPECT_FALSE(UnorderedIsomorphic(a, b));
}

TEST(CanonicalTest, LabelsMatter) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = ParseNewick("(A,B);", labels).value();
  Tree b = ParseNewick("(A,C);", labels).value();
  EXPECT_FALSE(UnorderedIsomorphic(a, b));
}

TEST(CanonicalTest, UnlabeledVsLabeledDiffer) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = ParseNewick("(A,B)r;", labels).value();
  Tree b = ParseNewick("(A,B);", labels).value();
  EXPECT_FALSE(UnorderedIsomorphic(a, b));
}

TEST(CanonicalTest, SizeMismatchShortCircuits) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = ParseNewick("(A,B);", labels).value();
  Tree b = ParseNewick("(A,B,C);", labels).value();
  EXPECT_FALSE(UnorderedIsomorphic(a, b));
}

/// Rebuilds `tree` with every child list order reversed.
Tree ReverseChildren(const Tree& tree) {
  TreeBuilder b(tree.labels_ptr());
  struct Frame {
    NodeId orig;
    NodeId parent;
  };
  std::vector<Frame> stack = {{tree.root(), kNoNode}};
  while (!stack.empty()) {
    auto [orig, parent] = stack.back();
    stack.pop_back();
    NodeId copy = parent == kNoNode
                      ? b.AddRoot()
                      : b.AddChildWithLabelId(parent, tree.label(orig));
    if (parent == kNoNode && tree.has_label(orig)) {
      b.SetLabel(copy, tree.label_name(orig));
    }
    // Pushing in forward order pops (and therefore adds) in reverse.
    for (NodeId c : tree.children(orig)) stack.push_back({c, copy});
  }
  return std::move(b).Build();
}

class CanonicalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalProperty, InvariantUnderChildReversal) {
  Rng rng(GetParam());
  UniformTreeOptions opts;
  opts.tree_size = 80;
  opts.alphabet_size = 6;  // heavy label collisions stress the encoding
  Tree t = GenerateUniformTree(opts, rng);
  Tree reversed = ReverseChildren(t);
  EXPECT_TRUE(UnorderedIsomorphic(t, reversed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace cousins
