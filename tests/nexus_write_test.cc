#include <gtest/gtest.h>

#include "tree/canonical.h"
#include "tree/nexus.h"
#include "tree/newick.h"

namespace cousins {
namespace {

std::vector<NamedTree> Sample(std::shared_ptr<LabelTable> labels) {
  std::vector<NamedTree> trees;
  trees.push_back(
      {"mp1", ParseNewick("((Homo,Pan),Gorilla);", labels).value()});
  trees.push_back(
      {"mp2", ParseNewick("((Homo,Gorilla),Pan);", labels).value()});
  return trees;
}

TEST(NexusWriteTest, RoundTripsWithTranslateTable) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<NamedTree> original = Sample(labels);
  const std::string nexus = ToNexus(original);
  EXPECT_NE(nexus.find("#NEXUS"), std::string::npos);
  EXPECT_NE(nexus.find("TRANSLATE"), std::string::npos);

  auto back = ParseNexusTrees(nexus, labels);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*back)[i].name, original[i].name);
    EXPECT_TRUE(
        UnorderedIsomorphic((*back)[i].tree, original[i].tree));
  }
}

TEST(NexusWriteTest, RoundTripsWithoutTranslateTable) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<NamedTree> original = Sample(labels);
  NexusWriteOptions options;
  options.use_translate_table = false;
  const std::string nexus = ToNexus(original, options);
  EXPECT_EQ(nexus.find("TRANSLATE"), std::string::npos);
  auto back = ParseNexusTrees(nexus, labels);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(
        UnorderedIsomorphic((*back)[i].tree, original[i].tree));
  }
}

TEST(NexusWriteTest, QuotedTaxaInTranslateTable) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<NamedTree> trees;
  trees.push_back(
      {"t", ParseNewick("('Homo sapiens','Pan, maybe');", labels).value()});
  const std::string nexus = ToNexus(trees);
  auto back = ParseNexusTrees(nexus, labels);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << nexus;
  EXPECT_TRUE(UnorderedIsomorphic((*back)[0].tree, trees[0].tree));
}

TEST(NexusWriteTest, UnnamedTreesGetIndexes) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<NamedTree> trees;
  trees.push_back({"", ParseNewick("(a,b);", labels).value()});
  const std::string nexus = ToNexus(trees);
  auto back = ParseNexusTrees(nexus, labels);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].name, "tree_0");
}

TEST(NexusWriteTest, BranchLengthsOption) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<NamedTree> trees;
  trees.push_back({"t", ParseNewick("(a:0.5,b:2.5);", labels).value()});
  NexusWriteOptions options;
  options.write_branch_lengths = true;
  const std::string nexus = ToNexus(trees, options);
  auto back = ParseNexusTrees(nexus, labels);
  ASSERT_TRUE(back.ok());
  const Tree& t = (*back)[0].tree;
  double total = 0;
  for (NodeId v = 1; v < t.size(); ++v) total += t.branch_length(v);
  EXPECT_DOUBLE_EQ(total, 3.0);
}

}  // namespace
}  // namespace cousins
