#include <gtest/gtest.h>

#include <utility>

#include "tree/builder.h"
#include "tree/tree.h"

namespace cousins {
namespace {

TEST(LabelTableTest, InternIsIdempotent) {
  LabelTable t;
  LabelId a = t.Intern("alpha");
  LabelId b = t.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("alpha"), a);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.Name(a), "alpha");
  EXPECT_EQ(t.Find("beta"), b);
  EXPECT_EQ(t.Find("missing"), kNoLabel);
}

TEST(TreeBuilderTest, SingleNode) {
  TreeBuilder b;
  b.AddRoot("only");
  Tree t = std::move(b).Build();
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(0), kNoNode);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.label_name(0), "only");
  EXPECT_EQ(t.depth(0), 0);
  EXPECT_EQ(t.leaf_count(), 1);
  EXPECT_EQ(t.height(), 0);
}

TEST(TreeBuilderTest, EmptyTree) {
  TreeBuilder b;
  Tree t = std::move(b).Build();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

TEST(TreeBuilderTest, PreorderNumbering) {
  TreeBuilder b;
  NodeId r = b.AddRoot("r");
  NodeId a = b.AddChild(r, "a");
  b.AddChild(r, "b");
  b.AddChild(a, "x");
  Tree t = std::move(b).Build();
  ASSERT_EQ(t.size(), 4);
  // Preorder: every node's parent has a smaller id.
  for (NodeId v = 1; v < t.size(); ++v) {
    EXPECT_LT(t.parent(v), v);
    EXPECT_EQ(t.depth(v), t.depth(t.parent(v)) + 1);
  }
  // First-added child's subtree comes first: r, a, x, b.
  EXPECT_EQ(t.label_name(0), "r");
  EXPECT_EQ(t.label_name(1), "a");
  EXPECT_EQ(t.label_name(2), "x");
  EXPECT_EQ(t.label_name(3), "b");
}

TEST(TreeBuilderTest, BuildReportsPermutation) {
  TreeBuilder b;
  NodeId r = b.AddRoot("r");
  NodeId a = b.AddChild(r, "a");
  NodeId c = b.AddChild(r, "c");
  NodeId x = b.AddChild(a, "x");
  std::vector<NodeId> old_to_new;
  Tree t = std::move(b).Build(&old_to_new);
  ASSERT_EQ(old_to_new.size(), 4u);
  EXPECT_EQ(t.label_name(old_to_new[r]), "r");
  EXPECT_EQ(t.label_name(old_to_new[a]), "a");
  EXPECT_EQ(t.label_name(old_to_new[c]), "c");
  EXPECT_EQ(t.label_name(old_to_new[x]), "x");
}

TEST(TreeBuilderTest, LeafCountAndHeight) {
  TreeBuilder b;
  NodeId r = b.AddRoot();
  NodeId a = b.AddChild(r);
  b.AddChild(r);
  b.AddChild(a);
  b.AddChild(a);
  Tree t = std::move(b).Build();
  EXPECT_EQ(t.leaf_count(), 3);
  EXPECT_EQ(t.height(), 2);
}

TEST(TreeBuilderTest, UnlabeledNodes) {
  TreeBuilder b;
  NodeId r = b.AddRoot();
  b.AddChild(r, "x");
  Tree t = std::move(b).Build();
  EXPECT_FALSE(t.has_label(0));
  EXPECT_TRUE(t.has_label(1));
  EXPECT_EQ(t.label(0), kNoLabel);
}

TEST(TreeBuilderTest, SetLabelOverridesAndClears) {
  TreeBuilder b;
  NodeId r = b.AddRoot("old");
  b.SetLabel(r, "new");
  Tree t = std::move(b).Build();
  EXPECT_EQ(t.label_name(0), "new");
}

TEST(TreeBuilderTest, BranchLengths) {
  TreeBuilder b;
  NodeId r = b.AddRoot();
  NodeId a = b.AddChild(r, "a", 0.25);
  b.SetBranchLength(a, 0.5);
  b.AddChild(r, "b", 1.75);
  Tree t = std::move(b).Build();
  EXPECT_DOUBLE_EQ(t.branch_length(0), 0.0);  // root
  EXPECT_DOUBLE_EQ(t.branch_length(1), 0.5);  // a (preorder id 1)
  EXPECT_DOUBLE_EQ(t.branch_length(2), 1.75);
}

TEST(TreeBuilderTest, SharedLabelTableAcrossTrees) {
  auto labels = std::make_shared<LabelTable>();
  TreeBuilder b1(labels);
  b1.AddRoot("shared");
  Tree t1 = std::move(b1).Build();
  TreeBuilder b2(labels);
  b2.AddRoot("shared");
  Tree t2 = std::move(b2).Build();
  EXPECT_EQ(t1.label(0), t2.label(0));
  EXPECT_EQ(t1.labels_ptr().get(), t2.labels_ptr().get());
}

TEST(TreeBuilderTest, ChildrenOrderPreserved) {
  TreeBuilder b;
  NodeId r = b.AddRoot();
  b.AddChild(r, "first");
  b.AddChild(r, "second");
  b.AddChild(r, "third");
  Tree t = std::move(b).Build();
  const auto& kids = t.children(0);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(t.label_name(kids[0]), "first");
  EXPECT_EQ(t.label_name(kids[1]), "second");
  EXPECT_EQ(t.label_name(kids[2]), "third");
}

TEST(TreeBuilderTest, DeepChain) {
  TreeBuilder b;
  NodeId v = b.AddRoot();
  for (int i = 0; i < 999; ++i) v = b.AddChild(v);
  Tree t = std::move(b).Build();
  EXPECT_EQ(t.size(), 1000);
  EXPECT_EQ(t.height(), 999);
  EXPECT_EQ(t.leaf_count(), 1);
}

}  // namespace
}  // namespace cousins
