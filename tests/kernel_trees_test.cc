#include <gtest/gtest.h>

#include <limits>

#include "gen/yule_generator.h"
#include "phylo/kernel_trees.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

std::vector<std::vector<Tree>> TwoObviousGroups(
    std::shared_ptr<LabelTable> labels) {
  // Group 1 trees: one matches group 2's trees exactly, one is alien.
  std::vector<std::vector<Tree>> groups(2);
  groups[0].push_back(MustParse("((A,B)x,(C,D)y)r;", labels));
  groups[0].push_back(MustParse("((P,Q)x,(R,S)y)r;", labels));
  groups[1].push_back(MustParse("((A,B)x,(C,D)y)r;", labels));
  groups[1].push_back(MustParse("((A,C)x,(B,D)y)r;", labels));
  return groups;
}

TEST(KernelTreesTest, PicksMatchingRepresentatives) {
  auto labels = std::make_shared<LabelTable>();
  auto groups = TwoObviousGroups(labels);
  KernelTreeResult result = FindKernelTrees(groups);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.selected, (std::vector<int32_t>{0, 0}));
  EXPECT_DOUBLE_EQ(result.average_pairwise_distance, 0.0);
}

TEST(KernelTreesTest, SingleGroupTrivial) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::vector<Tree>> groups(1);
  groups[0].push_back(MustParse("((A,B)x,C)r;", labels));
  groups[0].push_back(MustParse("((A,C)x,B)r;", labels));
  KernelTreeResult result = FindKernelTrees(groups);
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.average_pairwise_distance, 0.0);
  ASSERT_EQ(result.selected.size(), 1u);
}

TEST(KernelTreesTest, LocalSearchMatchesExhaustiveOnSmallInstances) {
  Rng rng(41);
  auto labels = std::make_shared<LabelTable>();
  YulePhylogenyOptions gen;
  gen.min_nodes = 15;
  gen.max_nodes = 30;
  gen.alphabet_size = 25;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::vector<Tree>> groups(3);
    for (auto& group : groups) {
      for (int i = 0; i < 4; ++i) {
        group.push_back(GenerateYulePhylogeny(gen, rng, labels));
      }
    }
    KernelTreeOptions exhaustive;
    KernelTreeResult exact = FindKernelTrees(groups, exhaustive);
    ASSERT_TRUE(exact.exact);

    KernelTreeOptions local = exhaustive;
    local.exhaustive_limit = 1;  // force local search
    KernelTreeResult approx = FindKernelTrees(groups, local);
    EXPECT_FALSE(approx.exact);
    EXPECT_NEAR(approx.average_pairwise_distance,
                exact.average_pairwise_distance, 1e-9)
        << "trial " << trial;
  }
}

TEST(KernelTreesTest, ExhaustiveBeatsArbitraryChoice) {
  Rng rng(43);
  auto labels = std::make_shared<LabelTable>();
  YulePhylogenyOptions gen;
  gen.min_nodes = 15;
  gen.max_nodes = 30;
  gen.alphabet_size = 20;
  std::vector<std::vector<Tree>> groups(3);
  for (auto& group : groups) {
    for (int i = 0; i < 3; ++i) {
      group.push_back(GenerateYulePhylogeny(gen, rng, labels));
    }
  }
  KernelTreeOptions opt;
  KernelTreeResult best = FindKernelTrees(groups, opt);
  // The optimum is no worse than the all-zeros selection.
  double all_zero = 0.0;
  int pairs = 0;
  for (size_t a = 0; a < groups.size(); ++a) {
    for (size_t b = a + 1; b < groups.size(); ++b) {
      all_zero += CousinTreeDistance(groups[a][0], groups[b][0],
                                     opt.abstraction, opt.mining);
      ++pairs;
    }
  }
  EXPECT_LE(best.average_pairwise_distance, all_zero / pairs + 1e-12);
}

TEST(KernelTreesTest, AbstractionAffectsSelectionSpaceConsistently) {
  auto labels = std::make_shared<LabelTable>();
  auto groups = TwoObviousGroups(labels);
  for (CousinItemAbstraction abstraction : kAllAbstractions) {
    KernelTreeOptions opt;
    opt.abstraction = abstraction;
    KernelTreeResult result = FindKernelTrees(groups, opt);
    // The identical pair is optimal under every abstraction.
    EXPECT_EQ(result.selected, (std::vector<int32_t>{0, 0}))
        << AbstractionName(abstraction);
  }
}

}  // namespace
}  // namespace cousins
