#include <gtest/gtest.h>

#include "gen/yule_generator.h"
#include "phylo/clusters.h"
#include "tree/canonical.h"
#include "tree/restrict.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

std::vector<LabelId> Ids(const Tree& t,
                         const std::vector<std::string>& names) {
  std::vector<LabelId> out;
  for (const std::string& n : names) out.push_back(t.labels().Find(n));
  return out;
}

TEST(RestrictTest, KeepsInducedTopology) {
  Tree t = MustParse("(((A,B)ab,C)abc,(D,E)de)r;");
  Result<Tree> r = RestrictToLabels(t, Ids(t, {"A", "B", "D"}));
  ASSERT_TRUE(r.ok());
  Tree expected = MustParse("((A,B)ab,D)r;", t.labels_ptr());
  EXPECT_TRUE(UnorderedIsomorphic(*r, expected));
}

TEST(RestrictTest, CollapsesUnaryChains) {
  Tree t = MustParse("(((A,B)ab,C)abc,D)r;");
  Result<Tree> r = RestrictToLabels(t, Ids(t, {"A", "B"}));
  ASSERT_TRUE(r.ok());
  // Only the (A,B) cherry survives; abc/r collapse away entirely, so
  // the result's root is the ab node.
  EXPECT_EQ(r->leaf_count(), 2);
  EXPECT_EQ(r->size(), 3);
  EXPECT_EQ(r->label_name(r->root()), "ab");
}

TEST(RestrictTest, SingleKeptLeaf) {
  Tree t = MustParse("((A,B),C);");
  Result<Tree> r = RestrictToLabels(t, Ids(t, {"C"}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1);
  EXPECT_EQ(r->label_name(r->root()), "C");
}

TEST(RestrictTest, BranchLengthsSumAcrossSuppressedNodes) {
  Tree t = MustParse("(((A:1,B:1)x:2,C:1)y:3,D:10)r;");
  Result<Tree> r = RestrictToLabels(t, Ids(t, {"A", "B", "D"}));
  ASSERT_TRUE(r.ok());
  // y is suppressed: x absorbs y's edge, so x's branch is 2 + 3 = 5.
  for (NodeId v = 0; v < r->size(); ++v) {
    if (r->has_label(v) && r->label_name(v) == "x") {
      EXPECT_DOUBLE_EQ(r->branch_length(v), 5.0);
    }
  }
}

TEST(RestrictTest, NoMatchingLeafFails) {
  Tree t = MustParse("((A,B),C);");
  EXPECT_FALSE(RestrictToLabels(t, {}).ok());
  LabelId bogus = t.labels_ptr()->Intern("Z");
  EXPECT_FALSE(RestrictToLabels(t, {bogus}).ok());
}

TEST(RestrictTest, FullSetIsIdentityModuloUnaryChains) {
  Tree t = MustParse("((A,B)x,(C,D)y)r;");
  TaxonIndex taxa = TaxonIndex::FromTree(t).value();
  std::vector<LabelId> all;
  for (int32_t i = 0; i < taxa.size(); ++i) all.push_back(taxa.label_of(i));
  Result<Tree> r = RestrictToLabels(t, all);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(UnorderedIsomorphic(*r, t));
}

TEST(RestrictTest, RestrictionPreservesClusters) {
  // Property: clusters of the restricted tree = nontrivial projections
  // of the original clusters.
  Rng rng(91);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa = MakeTaxa(14);
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = RandomCoalescentTree(taxa, rng, labels);
    // Keep a random half of the taxa.
    std::vector<LabelId> keep;
    for (const std::string& name : taxa) {
      if (rng.NextBool(0.5)) keep.push_back(labels->Find(name));
    }
    if (keep.size() < 3) continue;
    Result<Tree> r = RestrictToLabels(t, keep);
    ASSERT_TRUE(r.ok());
    TaxonIndex sub = TaxonIndex::FromTree(*r).value();
    EXPECT_EQ(sub.size(), static_cast<int32_t>(keep.size()));
    // Each cluster of the restriction must be the projection of some
    // original cluster (or the complement-side of one).
    std::vector<Bitset> restricted = TreeClusters(*r, sub).value();
    TaxonIndex full = TaxonIndex::FromTree(t).value();
    std::vector<Bitset> original = TreeClusters(t, full).value();
    for (const Bitset& rc : restricted) {
      bool matched = false;
      for (const Bitset& oc : original) {
        // Project oc to the kept taxa and compare.
        Bitset projected(sub.size());
        for (int32_t i = 0; i < full.size(); ++i) {
          if (!oc.Test(i)) continue;
          const int32_t j = sub.index_of(full.label_of(i));
          if (j >= 0) projected.Set(j);
        }
        if (projected == rc) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace cousins
