// Deterministic fault injection: the registry's arming semantics
// ("fail site S on its k-th hit, exactly once"), the spec grammar, the
// seeded-random sweep mode, and the faults.* telemetry bridge.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/fault_injection.h"

namespace cousins {
namespace {

using fault::FaultRegistry;

/// Disarms everything around each test so armings cannot leak between
/// tests (hit/trigger counters are cumulative by design and are only
/// ever compared relatively).
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(FaultInjectionTest, DisarmedSitesNeverFire) {
  FaultRegistry& registry = FaultRegistry::Global();
  const uint64_t before = registry.Triggers("test.disarmed");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::Fired("test.disarmed"));
  }
  EXPECT_EQ(registry.Triggers("test.disarmed"), before);
  EXPECT_GE(registry.Hits("test.disarmed"), 100u);
}

TEST_F(FaultInjectionTest, FiresOnExactlyTheKthHitAndOnlyOnce) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.Arm("test.kth", 3);
  EXPECT_FALSE(fault::Fired("test.kth"));
  EXPECT_FALSE(fault::Fired("test.kth"));
  EXPECT_TRUE(fault::Fired("test.kth"));  // 3rd hit from arming
  // Exactly once: the arming is consumed.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fault::Fired("test.kth"));
  }
}

TEST_F(FaultInjectionTest, RearmingRestartsTheHitCount) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.Arm("test.rearm", 2);
  EXPECT_FALSE(fault::Fired("test.rearm"));
  registry.Arm("test.rearm", 2);  // restart: next firing is 2 hits away
  EXPECT_FALSE(fault::Fired("test.rearm"));
  EXPECT_TRUE(fault::Fired("test.rearm"));
}

TEST_F(FaultInjectionTest, InjectionPointThrowsFaultInjectedError) {
  FaultRegistry::Global().Arm("test.throwing", 1);
  try {
    fault::InjectionPoint("test.throwing");
    FAIL() << "armed InjectionPoint did not throw";
  } catch (const fault::FaultInjectedError& e) {
    EXPECT_STREQ(e.what(), "injected fault at test.throwing");
  }
  // Consumed: a second pass is clean.
  fault::InjectionPoint("test.throwing");
}

TEST_F(FaultInjectionTest, HitAndTriggerCountersTrackEachSite) {
  FaultRegistry& registry = FaultRegistry::Global();
  const uint64_t hits = registry.Hits("test.counted");
  const uint64_t triggers = registry.Triggers("test.counted");
  const uint64_t total = registry.TotalTriggers();
  registry.Arm("test.counted", 2);
  (void)fault::Fired("test.counted");
  (void)fault::Fired("test.counted");
  (void)fault::Fired("test.counted");
  EXPECT_EQ(registry.Hits("test.counted"), hits + 3);
  EXPECT_EQ(registry.Triggers("test.counted"), triggers + 1);
  EXPECT_EQ(registry.TotalTriggers(), total + 1);
}

TEST_F(FaultInjectionTest, SiteNamesEnumeratesEveryHitSiteSorted) {
  (void)fault::Fired("test.zeta");
  (void)fault::Fired("test.alpha");
  const std::vector<std::string> names = FaultRegistry::Global().SiteNames();
  auto find = [&](const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(find("test.alpha"));
  EXPECT_TRUE(find("test.zeta"));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(FaultInjectionTest, SpecParsesSiteTermsAndRandomMode) {
  FaultRegistry& registry = FaultRegistry::Global();
  EXPECT_TRUE(registry.ArmFromSpec("test.spec_a:1, test.spec_b:2").ok());
  EXPECT_TRUE(fault::Fired("test.spec_a"));
  EXPECT_FALSE(fault::Fired("test.spec_b"));
  EXPECT_TRUE(fault::Fired("test.spec_b"));

  EXPECT_TRUE(registry.ArmFromSpec("random:7:1").ok());
  // Denominator 1: every hit fires.
  EXPECT_TRUE(fault::Fired("test.spec_random"));
  registry.DisarmAll();
  EXPECT_FALSE(fault::Fired("test.spec_random"));
}

TEST_F(FaultInjectionTest, MalformedSpecsAreRejected) {
  FaultRegistry& registry = FaultRegistry::Global();
  for (const char* bad : {"site", "site:", "site:0", "site:abc",
                          "site:1:2", "random:1", "random:x:2",
                          "random:1:0", "a:1,b"}) {
    Status st = registry.ArmFromSpec(bad);
    EXPECT_FALSE(st.ok()) << "spec '" << bad << "' was accepted";
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << bad;
  }
  // Valid terms before the malformed one may have been applied.
  registry.DisarmAll();
}

TEST_F(FaultInjectionTest, RandomModeFiresDeterministicallyPerSeed) {
  FaultRegistry& registry = FaultRegistry::Global();
  // The trigger decision is a pure function of (seed, site, hit index),
  // so a fresh site's first 64 hits are a replayable sequence; record
  // two to show the mode is probabilistic but site-decorrelated.
  auto sequence = [&](const char* site) {
    registry.ArmRandom(1234, 4);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fault::Fired(site));
    registry.DisarmAll();
    return fired;
  };
  const std::vector<bool> first = sequence("test.random.one");
  const std::vector<bool> other = sequence("test.random.two");
  int triggers = 0;
  for (const bool f : first) triggers += f ? 1 : 0;
  // With denominator 4 over 64 hits, some but not all fire.
  EXPECT_GT(triggers, 0);
  EXPECT_LT(triggers, 64);
  // Different sites see different (decorrelated) sequences.
  EXPECT_NE(first, other);
}

TEST_F(FaultInjectionTest, RandomDenominatorOneFiresEveryHit) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.ArmRandom(5, 1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(fault::Fired("test.random.always"));
  }
  registry.DisarmAll();
}

TEST_F(FaultInjectionTest, TriggersAreMirroredIntoFaultCounters) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Reset();
  FaultRegistry::Global().Arm("test.telemetry", 1);
  EXPECT_TRUE(fault::Fired("test.telemetry"));
  EXPECT_EQ(metrics.GetCounter("faults.triggered").value(), 1);
  EXPECT_EQ(metrics.GetCounter("faults.test.telemetry").value(), 1);
  metrics.Reset();
}

}  // namespace
}  // namespace cousins
