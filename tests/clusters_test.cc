#include <gtest/gtest.h>

#include <algorithm>

#include "gen/yule_generator.h"
#include "phylo/clusters.h"
#include "test_util.h"
#include "tree/canonical.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

Bitset MakeCluster(const TaxonIndex& taxa, const LabelTable& labels,
                   const std::vector<std::string>& names) {
  Bitset b(taxa.size());
  for (const std::string& name : names) {
    b.Set(taxa.index_of(labels.Find(name)));
  }
  return b;
}

TEST(TaxonIndexTest, FromTreeCollectsLeaves) {
  Tree t = MustParse("((A,B)x,(C,D)y)r;");
  Result<TaxonIndex> idx = TaxonIndex::FromTree(t);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->size(), 4);
  EXPECT_GE(idx->index_of(t.labels().Find("A")), 0);
  EXPECT_EQ(idx->index_of(t.labels().Find("x")), -1);  // internal label
}

TEST(TaxonIndexTest, RejectsDuplicateTaxa) {
  EXPECT_FALSE(TaxonIndex::FromTree(MustParse("(A,A);")).ok());
}

TEST(TaxonIndexTest, RejectsUnlabeledLeaf) {
  EXPECT_FALSE(TaxonIndex::FromTree(MustParse("(A,);")).ok());
}

TEST(TaxonIndexTest, FromTreesRequiresIdenticalTaxa) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> same = {MustParse("((A,B),C);", labels),
                            MustParse("(A,(B,C));", labels)};
  EXPECT_TRUE(TaxonIndex::FromTrees(same).ok());
  std::vector<Tree> diff = {MustParse("((A,B),C);", labels),
                            MustParse("(A,(B,D));", labels)};
  EXPECT_FALSE(TaxonIndex::FromTrees(diff).ok());
  std::vector<Tree> more = {MustParse("((A,B),C);", labels),
                            MustParse("(A,B,C,D);", labels)};
  EXPECT_FALSE(TaxonIndex::FromTrees(more).ok());
  EXPECT_FALSE(TaxonIndex::FromTrees({}).ok());
}

TEST(TreeClustersTest, NontrivialClustersOnly) {
  Tree t = MustParse("((A,B)x,(C,D)y)r;");
  TaxonIndex taxa = TaxonIndex::FromTree(t).value();
  std::vector<Bitset> clusters = TreeClusters(t, taxa).value();
  // {A,B} and {C,D}; the root cluster {A,B,C,D} is trivial.
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_NE(std::find(clusters.begin(), clusters.end(),
                      MakeCluster(taxa, t.labels(), {"A", "B"})),
            clusters.end());
  EXPECT_NE(std::find(clusters.begin(), clusters.end(),
                      MakeCluster(taxa, t.labels(), {"C", "D"})),
            clusters.end());
}

TEST(TreeClustersTest, UnaryChainsDeduplicate) {
  Tree t = MustParse("(((A,B)x)y,C)r;");  // x and y hold the same cluster
  TaxonIndex taxa = TaxonIndex::FromTree(t).value();
  std::vector<Bitset> clusters = TreeClusters(t, taxa).value();
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(TreeClustersTest, CaterpillarClusters) {
  Tree t = MustParse("((((A,B)w,C)x,D)y,E)r;");
  TaxonIndex taxa = TaxonIndex::FromTree(t).value();
  std::vector<Bitset> clusters = TreeClusters(t, taxa).value();
  EXPECT_EQ(clusters.size(), 3u);  // {A,B}, {A,B,C}, {A,B,C,D}
}

TEST(BuildTreeFromClustersTest, RoundTripsTreeClusters) {
  Rng rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    YulePhylogenyOptions gen;
    gen.min_nodes = 20;
    gen.max_nodes = 40;
    gen.alphabet_size = 1000000;  // effectively unique taxa
    Tree t = GenerateYulePhylogeny(gen, rng);
    Result<TaxonIndex> taxa = TaxonIndex::FromTree(t);
    if (!taxa.ok()) continue;  // rare duplicate taxon draw
    std::vector<Bitset> clusters = TreeClusters(t, *taxa).value();
    Tree rebuilt =
        BuildTreeFromClusters(clusters, *taxa, t.labels_ptr()).value();
    std::vector<Bitset> rebuilt_clusters =
        TreeClusters(rebuilt, *taxa).value();
    EXPECT_EQ(clusters, rebuilt_clusters) << "trial " << trial;
  }
}

TEST(BuildTreeFromClustersTest, EmptyClusterSetGivesStar) {
  Tree t = MustParse("((A,B)x,(C,D)y)r;");
  TaxonIndex taxa = TaxonIndex::FromTree(t).value();
  Tree star = BuildTreeFromClusters({}, taxa, t.labels_ptr()).value();
  EXPECT_EQ(star.size(), 5);  // root + 4 leaves
  EXPECT_EQ(star.children(star.root()).size(), 4u);
}

TEST(BuildTreeFromClustersTest, RejectsIncompatibleClusters) {
  Tree t = MustParse("(A,B,C,D);");
  TaxonIndex taxa = TaxonIndex::FromTree(t).value();
  std::vector<Bitset> bad = {
      MakeCluster(taxa, t.labels(), {"A", "B"}),
      MakeCluster(taxa, t.labels(), {"B", "C"}),
  };
  EXPECT_FALSE(BuildTreeFromClusters(bad, taxa, t.labels_ptr()).ok());
}

TEST(BuildTreeFromClustersTest, NestedChain) {
  Tree t = MustParse("(A,B,C,D,E);");
  TaxonIndex taxa = TaxonIndex::FromTree(t).value();
  std::vector<Bitset> chain = {
      MakeCluster(taxa, t.labels(), {"A", "B"}),
      MakeCluster(taxa, t.labels(), {"A", "B", "C"}),
      MakeCluster(taxa, t.labels(), {"A", "B", "C", "D"}),
  };
  Tree built = BuildTreeFromClusters(chain, taxa, t.labels_ptr()).value();
  auto expected = MustParse("((((A,B),C),D),E);", t.labels_ptr());
  EXPECT_TRUE(UnorderedIsomorphic(built, expected));
}

TEST(BuildTreeFromClustersTest, IgnoresTrivialAndDuplicateClusters) {
  Tree t = MustParse("(A,B,C);");
  TaxonIndex taxa = TaxonIndex::FromTree(t).value();
  Bitset ab = MakeCluster(taxa, t.labels(), {"A", "B"});
  Bitset all = MakeCluster(taxa, t.labels(), {"A", "B", "C"});
  Bitset single = MakeCluster(taxa, t.labels(), {"C"});
  Tree built = BuildTreeFromClusters({ab, ab, all, single}, taxa,
                                     t.labels_ptr())
                   .value();
  auto expected = MustParse("((A,B),C);", t.labels_ptr());
  EXPECT_TRUE(UnorderedIsomorphic(built, expected));
}

}  // namespace
}  // namespace cousins
