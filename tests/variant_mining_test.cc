// Unit tests of the unified-miner building blocks: saturating
// arithmetic boundaries, the (key, aux) WideTallyMap, aux-word
// packing, and the per-tree variant folds against their reference
// implementations.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/generalized_mining.h"
#include "core/single_tree_mining.h"
#include "core/tally_map.h"
#include "core/variant_mining.h"
#include "freetree/free_tree.h"
#include "freetree/free_tree_mining.h"
#include "gen/uniform_generator.h"
#include "test_util.h"
#include "tree/builder.h"
#include "util/overflow.h"
#include "util/rng.h"

namespace cousins {
namespace {

using internal::MineFreeVariantScratch;
using internal::MineGeneralizedScratch;
using internal::PackBucket;
using internal::PackHV;
using internal::UnpackBucket;
using internal::UnpackH;
using internal::UnpackV;
using internal::VariantScratch;
using internal::WideTallyMap;
using testing_util::MustParse;

constexpr int64_t kMax64 = std::numeric_limits<int64_t>::max();
constexpr int64_t kMin64 = std::numeric_limits<int64_t>::min();

TEST(OverflowTest, SaturatingSubBoundaries) {
  EXPECT_EQ(SaturatingSub(5, 3), 2);
  EXPECT_EQ(SaturatingSub(-5, -3), -2);
  EXPECT_EQ(SaturatingSub(kMin64, 1), kMin64);
  EXPECT_EQ(SaturatingSub(kMax64, -1), kMax64);
  EXPECT_EQ(SaturatingSub(0, kMin64), kMax64);
}

TEST(OverflowTest, SaturatingMulBoundaries) {
  EXPECT_EQ(SaturatingMul(6, 7), 42);
  EXPECT_EQ(SaturatingMul(-6, 7), -42);
  EXPECT_EQ(SaturatingMul(kMax64, 2), kMax64);
  EXPECT_EQ(SaturatingMul(kMin64, 2), kMin64);
  EXPECT_EQ(SaturatingMul(kMax64, -2), kMin64);
  EXPECT_EQ(SaturatingMul(kMin64, -1), kMax64);
  EXPECT_EQ(SaturatingMul(kMax64, 0), 0);
}

TEST(VariantPackingTest, HvRoundTrip) {
  for (int32_t h : {0, 1, 7, 0xFFFF}) {
    for (int32_t v : {0, 1, 255, 0xFFFF}) {
      const uint32_t aux = PackHV(h, v);
      EXPECT_EQ(UnpackH(aux), h);
      EXPECT_EQ(UnpackV(aux), v);
    }
  }
}

TEST(VariantPackingTest, BucketRoundTripIsBitExact) {
  for (int32_t bucket : {0, 1, -1, 12345, -12345,
                         std::numeric_limits<int32_t>::max(),
                         std::numeric_limits<int32_t>::min()}) {
    EXPECT_EQ(UnpackBucket(PackBucket(bucket)), bucket);
  }
}

TEST(WideTallyMapTest, AuxWordSeparatesEntries) {
  WideTallyMap map;
  EXPECT_TRUE(map.Add(42, 1, 1, 10));
  EXPECT_TRUE(map.Add(42, 2, 1, 20));   // same key, new aux: fresh
  EXPECT_FALSE(map.Add(42, 1, 1, 5));   // existing composite: folded
  EXPECT_EQ(map.size(), 2u);
  int64_t occ_aux1 = 0, occ_aux2 = 0;
  int32_t sup_aux1 = 0;
  map.ForEach([&](uint64_t key, uint32_t aux, int32_t support,
                  int64_t occurrences) {
    EXPECT_EQ(key, 42u);
    if (aux == 1) {
      occ_aux1 = occurrences;
      sup_aux1 = support;
    } else {
      EXPECT_EQ(aux, 2u);
      occ_aux2 = occurrences;
    }
  });
  EXPECT_EQ(occ_aux1, 15);
  EXPECT_EQ(sup_aux1, 2);
  EXPECT_EQ(occ_aux2, 20);
}

TEST(WideTallyMapTest, AddSaturates) {
  WideTallyMap map;
  map.Add(7, 0, std::numeric_limits<int32_t>::max(), kMax64);
  map.Add(7, 0, 1, 1);
  map.ForEach([&](uint64_t, uint32_t, int32_t support, int64_t occurrences) {
    EXPECT_EQ(support, std::numeric_limits<int32_t>::max());
    EXPECT_EQ(occurrences, kMax64);
  });
}

TEST(WideTallyMapTest, ClearKeepsCapacity) {
  WideTallyMap map;
  for (uint64_t k = 0; k < 200; ++k) map.Add(k, 0, 1, 1);
  const size_t capacity = map.capacity();
  EXPECT_GT(capacity, 64u);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), capacity);
  // Refilling the same keys must not grow again.
  const int64_t grows = map.stats().grows;
  for (uint64_t k = 0; k < 200; ++k) map.Add(k, 0, 1, 1);
  EXPECT_EQ(map.stats().grows, grows);
}

TEST(WideTallyMapTest, GrowPreservesEntries) {
  WideTallyMap map;
  for (uint64_t k = 0; k < 1000; ++k) map.Add(k, static_cast<uint32_t>(k), 1, int64_t{2} * k);
  EXPECT_EQ(map.size(), 1000u);
  size_t seen = 0;
  map.ForEach([&](uint64_t key, uint32_t aux, int32_t support,
                  int64_t occurrences) {
    ++seen;
    EXPECT_EQ(aux, static_cast<uint32_t>(key));
    EXPECT_EQ(support, 1);
    EXPECT_EQ(occurrences, static_cast<int64_t>(2 * key));
  });
  EXPECT_EQ(seen, 1000u);
}

// The free-tree fold over a rooted tree must agree with the §6
// reference (path-length BFS over the explicit FreeTree) across random
// shapes — this is the contract that lets the forest pipeline run the
// free variant on rooted inputs directly.
TEST(FreeVariantTest, MatchesFreeTreeBfsReference) {
  UniformTreeOptions opts;
  opts.tree_size = 28;
  opts.alphabet_size = 4;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Tree t = GenerateUniformTree(opts, rng);
    for (int twice_maxdist : {0, 3, 6}) {
      MiningOptions mopt;
      mopt.twice_maxdist = twice_maxdist;
      VariantScratch scratch;
      ASSERT_TRUE(MineFreeVariantScratch(t, mopt, MiningContext::Unlimited(),
                                         &scratch)
                      .ok());
      EXPECT_EQ(scratch.free_items,
                MineFreeTreeBfs(FreeTree::FromRootedTree(t), mopt))
          << "seed " << seed << " twice_maxdist " << twice_maxdist;
    }
  }
}

// MineFreeTree (the paper's root-at-an-edge reduction) must agree with
// the BFS reference whichever root edge is picked, and both with the
// pipeline fold — the three-way §6 equivalence.
TEST(FreeVariantTest, EveryRootEdgeAgreesWithTheFold) {
  UniformTreeOptions opts;
  opts.tree_size = 18;
  opts.alphabet_size = 3;
  Rng rng(99);
  Tree t = GenerateUniformTree(opts, rng);
  FreeTree g = FreeTree::FromRootedTree(t);
  MiningOptions mopt;
  mopt.twice_maxdist = 5;
  VariantScratch scratch;
  ASSERT_TRUE(
      MineFreeVariantScratch(t, mopt, MiningContext::Unlimited(), &scratch)
          .ok());
  const std::vector<CousinPairItem> reference = MineFreeTreeBfs(g, mopt);
  EXPECT_EQ(scratch.free_items, reference);
  for (int32_t e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(MineFreeTree(g, mopt, e), reference) << "root edge " << e;
  }
}

// Fast generalized miner vs the all-pairs oracle across random trees
// and cap combinations. The fast path now routes through the shared
// governed fold, so this also pins MineGeneralizedScratch.
TEST(GeneralizedVariantTest, FastMatchesNaiveSweep) {
  UniformTreeOptions opts;
  opts.tree_size = 24;
  opts.alphabet_size = 3;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    Tree t = GenerateUniformTree(opts, rng);
    for (auto [h, v] : {std::pair<int32_t, int32_t>{0, 0},
                        {1, 2},
                        {3, 1},
                        {4, 4}}) {
      GeneralizedMiningOptions gopt;
      gopt.max_horizontal = h;
      gopt.max_vertical = v;
      EXPECT_EQ(MineGeneralized(t, gopt), MineGeneralizedNaive(t, gopt))
          << "seed " << seed << " caps (" << h << ", " << v << ")";
    }
  }
}

TEST(GeneralizedVariantTest, ScratchFoldMatchesPublicEntryPoint) {
  Tree t = testing_util::FamilyTree();
  GeneralizedMiningOptions gopt;
  gopt.max_horizontal = 2;
  gopt.max_vertical = 2;
  MiningOptions mopt;
  mopt.min_occur = 1;
  GeneralizedVariantOptions caps;
  caps.max_horizontal = 2;
  caps.max_vertical = 2;
  VariantScratch scratch;
  ASSERT_TRUE(MineGeneralizedScratch(t, mopt, caps,
                                     MiningContext::Unlimited(), &scratch)
                  .ok());
  EXPECT_EQ(scratch.gen_items, MineGeneralized(t, gopt));
}

// Regression (was UB): cx*cy - same_child in the generalized counters
// used raw signed arithmetic. A single node with many identically
// labeled children drives cx*cy toward n² — with saturating math the
// counts stay clamped and finite instead of overflowing.
TEST(GeneralizedVariantTest, HighMultiplicityCountsStayFinite) {
  TreeBuilder b;
  NodeId root = b.AddRoot("r");
  for (int i = 0; i < 300; ++i) b.AddChild(root, "x");
  Tree t = std::move(b).Build();
  GeneralizedMiningOptions gopt;
  gopt.max_horizontal = 0;
  gopt.max_vertical = 0;
  auto items = MineGeneralized(t, gopt);
  ASSERT_EQ(items.size(), 1u);
  // C(300, 2) sibling pairs of (x, x): exact, no wraparound.
  EXPECT_EQ(items[0].occurrences, 300 * 299 / 2);
  EXPECT_EQ(items[0], MineGeneralizedNaive(t, gopt)[0]);
}

}  // namespace
}  // namespace cousins
