// Degraded-mode execution: the lenient-equivalence property (mining a
// poisoned forest leniently produces exactly the tallies of a strict
// run over the forest minus the poisoned entries, across thread counts
// and checkpoint cadences), the worker stall watchdog drill, the
// lenient crash→resume drill (bit-identical tallies AND ledger), and
// the degraded consensus/bootstrap facades.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/multi_tree_mining.h"
#include "core/parallel_mining.h"
#include "core/quarantine.h"
#include "gen/yule_generator.h"
#include "obs/metrics.h"
#include "phylo/bootstrap.h"
#include "phylo/consensus.h"
#include "seq/jukes_cantor.h"
#include "seq/neighbor_joining.h"
#include "tree/newick.h"
#include "util/fault_injection.h"
#include "util/governance.h"
#include "util/rng.h"

namespace cousins {
namespace {

/// A ';'-separated Newick forest of `count` generated phylogenies.
std::vector<std::string> ForestEntries(int count, uint64_t seed) {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(seed);
  YulePhylogenyOptions gen;
  gen.min_nodes = 15;
  gen.max_nodes = 40;
  gen.alphabet_size = 50;
  std::vector<std::string> entries;
  for (int i = 0; i < count; ++i) {
    entries.push_back(ToNewick(GenerateYulePhylogeny(gen, rng, labels)));
  }
  return entries;
}

std::string JoinEntries(const std::vector<std::string>& entries) {
  std::string text;
  for (const std::string& e : entries) {
    text += e;
    text += "\n";
  }
  return text;
}

/// Replaces the entries at `poisoned` indices with malformed Newick.
std::string PoisonedText(std::vector<std::string> entries,
                         const std::set<int64_t>& poisoned) {
  for (int64_t i : poisoned) {
    entries[static_cast<size_t>(i)] = "((broken,(entry;";
  }
  return JoinEntries(entries);
}

/// Mimics the CLI's lenient ingestion: parse leniently, quarantine the
/// parse failures, and hand back the surviving trees + their stable
/// source indices.
LenientForest LenientIngest(const std::string& text,
                            std::shared_ptr<LabelTable> labels,
                            QuarantineLedger* ledger) {
  Result<LenientForest> parsed = ParseNewickForestLenient(text, labels);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const ForestEntryError& e : parsed->errors) {
    QuarantineEntry entry;
    entry.tree_index = e.tree_index;
    entry.source = "forest.nwk";
    entry.byte_offset = e.byte_offset;
    entry.line = e.line;
    entry.column = e.column;
    entry.code = e.status.code();
    entry.message = std::string(e.status.message());
    entry.snippet = e.snippet;
    entry.stage = QuarantineStage::kParse;
    ledger->Add(entry);
  }
  return *std::move(parsed);
}

/// Renders pairs by label name so runs over different label tables
/// (lenient parsing interns labels from half-parsed bad entries)
/// compare by content.
std::vector<std::string> Rendered(const LabelTable& labels,
                                  const std::vector<FrequentCousinPair>& ps) {
  std::vector<std::string> out;
  for (const FrequentCousinPair& p : ps) {
    out.push_back(FormatFrequentPair(labels, p));
  }
  return out;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cousins_degraded_" + name;
}

class LenientEquivalence
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t>> {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }
};

TEST_P(LenientEquivalence, LenientTalliesEqualStrictOnHealthySubset) {
  const int32_t threads = std::get<0>(GetParam());
  const int32_t every = std::get<1>(GetParam());
  const std::vector<std::string> entries = ForestEntries(500, 97);
  const std::set<int64_t> poisoned = {0, 7, 63, 64, 250, 498, 499};

  // Strict baseline: the forest minus the poisoned entries.
  std::vector<std::string> healthy;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (poisoned.count(static_cast<int64_t>(i)) == 0) {
      healthy.push_back(entries[i]);
    }
  }
  auto strict_labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> strict_trees =
      ParseNewickForest(JoinEntries(healthy), strict_labels);
  ASSERT_TRUE(strict_trees.ok()) << strict_trees.status().ToString();
  MultiTreeMiningOptions options;
  options.min_support = 5;
  Result<MultiTreeMiningRun> strict = MineMultipleTreesParallelGoverned(
      *strict_trees, options, MiningContext::Unlimited(), threads);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  ASSERT_FALSE(strict->truncated);

  // Lenient run over the poisoned text.
  auto lenient_labels = std::make_shared<LabelTable>();
  QuarantineLedger ledger;
  LenientForest forest = LenientIngest(PoisonedText(entries, poisoned),
                                       lenient_labels, &ledger);
  ASSERT_EQ(forest.trees.size(), entries.size() - poisoned.size());
  DegradedModeConfig degraded;
  degraded.lenient = true;
  degraded.ledger = &ledger;
  degraded.source_indices = &forest.source_indices;
  degraded.source_name = "forest.nwk";

  Result<MultiTreeMiningRun> lenient = Status::Internal("not run");
  const std::string path =
      TempPath("equiv_" + std::to_string(threads) + "_" +
               std::to_string(every));
  std::remove(path.c_str());
  if (every == 0) {
    lenient = MineMultipleTreesParallelGoverned(
        forest.trees, options, MiningContext::Unlimited(), degraded,
        threads);
  } else {
    MiningCheckpointConfig config;
    config.path = path;
    config.every_trees = every;
    lenient = MineMultipleTreesCheckpointed(forest.trees, options,
                                            MiningContext::Unlimited(),
                                            config, degraded, threads);
  }
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  ASSERT_FALSE(lenient->truncated) << lenient->termination.ToString();

  EXPECT_EQ(Rendered(*lenient_labels, lenient->pairs),
            Rendered(*strict_labels, strict->pairs));

  // The ledger names exactly the poisoned entries, parse stage.
  const std::vector<QuarantineEntry> quarantined = ledger.Entries();
  ASSERT_EQ(quarantined.size(), poisoned.size());
  std::set<int64_t> recorded;
  for (const QuarantineEntry& e : quarantined) {
    recorded.insert(e.tree_index);
    EXPECT_EQ(e.stage, QuarantineStage::kParse);
    EXPECT_EQ(e.source, "forest.nwk");
  }
  EXPECT_EQ(recorded, poisoned);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByCadence, LenientEquivalence,
    ::testing::Combine(::testing::Values(1, 3), ::testing::Values(0, 64)));

TEST(WatchdogTest, HealthyRunUnderTheWatchdogIsUnchanged) {
  fault::FaultRegistry::Global().DisarmAll();
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> trees =
      ParseNewickForest(JoinEntries(ForestEntries(80, 5)), labels);
  ASSERT_TRUE(trees.ok());
  MultiTreeMiningOptions options;
  options.min_support = 3;
  Result<MultiTreeMiningRun> plain = MineMultipleTreesParallelGoverned(
      *trees, options, MiningContext::Unlimited(), 3);
  ASSERT_TRUE(plain.ok());

  DegradedModeConfig degraded;
  degraded.watchdog_interval = std::chrono::milliseconds(5000);
  Result<MultiTreeMiningRun> watched = MineMultipleTreesParallelGoverned(
      *trees, options, MiningContext::Unlimited(), degraded, 3);
  ASSERT_TRUE(watched.ok()) << watched.status().ToString();
  EXPECT_FALSE(watched->truncated);
  EXPECT_EQ(watched->pairs, plain->pairs);
}

TEST(WatchdogTest, StalledShardTripsDeadlineAndCancelsSiblings) {
  fault::FaultRegistry::Global().DisarmAll();
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> trees =
      ParseNewickForest(JoinEntries(ForestEntries(120, 6)), labels);
  ASSERT_TRUE(trees.ok());
  MultiTreeMiningOptions options;
  options.min_support = 3;

  const int64_t stalls_before =
      obs::MetricsRegistry::Global().GetCounter("watchdog.stalls").value();
  DegradedModeConfig degraded;
  degraded.watchdog_interval = std::chrono::milliseconds(100);
  fault::FaultRegistry::Global().Arm("watchdog.stall", 1);
  const auto start = std::chrono::steady_clock::now();
  Result<MultiTreeMiningRun> run = MineMultipleTreesParallelGoverned(
      *trees, options, MiningContext::Unlimited(), degraded, 3);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  fault::FaultRegistry::Global().DisarmAll();

  // A stall is a governance trip: a partial, truncated run naming the
  // stuck shard — not a hang and not a hard error.
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->truncated);
  EXPECT_EQ(run->termination.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsGovernanceTrip(run->termination));
  EXPECT_NE(run->termination.message().find("watchdog"), std::string::npos)
      << run->termination.ToString();
  EXPECT_NE(run->termination.message().find("shard"), std::string::npos);
  // Sibling cancellation bounds the whole run to a few intervals, not
  // the natural runtime of the stalled worker (which never finishes).
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_GE(
      obs::MetricsRegistry::Global().GetCounter("watchdog.stalls").value(),
      stalls_before + 1);
}

TEST(LenientResumeTest, KilledLenientRunResumesToIdenticalTalliesAndLedger) {
  fault::FaultRegistry::Global().DisarmAll();
  const std::vector<std::string> entries = ForestEntries(200, 44);
  const std::set<int64_t> poisoned = {3, 77, 150};
  const std::string text = PoisonedText(entries, poisoned);
  MultiTreeMiningOptions options;
  options.min_support = 4;
  MiningCheckpointConfig config;
  config.every_trees = 16;

  // Uninterrupted lenient baseline.
  auto base_labels = std::make_shared<LabelTable>();
  QuarantineLedger base_ledger;
  LenientForest base_forest = LenientIngest(text, base_labels, &base_ledger);
  DegradedModeConfig base_degraded;
  base_degraded.lenient = true;
  base_degraded.ledger = &base_ledger;
  base_degraded.source_indices = &base_forest.source_indices;
  config.path = TempPath("resume_base");
  std::remove(config.path.c_str());
  Result<MultiTreeMiningRun> baseline = MineMultipleTreesCheckpointed(
      base_forest.trees, options, MiningContext::Unlimited(), config,
      base_degraded, 3);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_FALSE(baseline->truncated);
  std::remove(config.path.c_str());

  // Kill a lenient run mid-flight with an injected worker fault.
  config.path = TempPath("resume_killed");
  std::remove(config.path.c_str());
  auto killed_labels = std::make_shared<LabelTable>();
  QuarantineLedger killed_ledger;
  LenientForest killed_forest =
      LenientIngest(text, killed_labels, &killed_ledger);
  DegradedModeConfig killed_degraded;
  killed_degraded.lenient = true;
  killed_degraded.ledger = &killed_ledger;
  killed_degraded.source_indices = &killed_forest.source_indices;
  fault::FaultRegistry::Global().Arm("parallel.worker", 8);
  Result<MultiTreeMiningRun> killed = MineMultipleTreesCheckpointed(
      killed_forest.trees, options, MiningContext::Unlimited(), config,
      killed_degraded, 3);
  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_FALSE(killed.ok() && !killed->truncated)
      << "the armed fault never fired";

  // Resume in a fresh process image: new label table, new ledger seeded
  // only by re-parsing the input (as the CLI does on restart). The
  // checkpoint's ledger section merges in; dedup keeps one copy.
  auto resumed_labels = std::make_shared<LabelTable>();
  QuarantineLedger resumed_ledger;
  LenientForest resumed_forest =
      LenientIngest(text, resumed_labels, &resumed_ledger);
  DegradedModeConfig resumed_degraded;
  resumed_degraded.lenient = true;
  resumed_degraded.ledger = &resumed_ledger;
  resumed_degraded.source_indices = &resumed_forest.source_indices;
  config.resume = true;
  Result<MultiTreeMiningRun> resumed = MineMultipleTreesCheckpointed(
      resumed_forest.trees, options, MiningContext::Unlimited(), config,
      resumed_degraded, 3);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_FALSE(resumed->truncated) << resumed->termination.ToString();

  EXPECT_EQ(Rendered(*resumed_labels, resumed->pairs),
            Rendered(*base_labels, baseline->pairs));
  EXPECT_EQ(resumed_ledger.Entries(), base_ledger.Entries());
  std::remove(config.path.c_str());
}

TEST(DegradedConsensusTest, StrictModeMatchesConsensusTree) {
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> trees = ParseNewickForest(
      "((A,B),(C,D),E);((A,B),(C,D),E);((A,B),C,D,E);", labels);
  ASSERT_TRUE(trees.ok());
  Tree strict =
      ConsensusTree(*trees, ConsensusMethod::kMajority).value();
  Tree degraded = ConsensusTreeDegraded(*trees, ConsensusMethod::kMajority,
                                        {}, DegradedModeConfig{})
                      .value();
  EXPECT_EQ(ToNewick(strict), ToNewick(degraded));
}

TEST(DegradedConsensusTest, MismatchedTaxaAreQuarantinedInLenientMode) {
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> trees = ParseNewickForest(
      "((A,B),(C,D));((A,B),(C,D));((A,B),(X,Y));(A,(B,(C,D)));", labels);
  ASSERT_TRUE(trees.ok());
  // Strict refuses the forest outright.
  ASSERT_FALSE(ConsensusTree(*trees, ConsensusMethod::kStrict).ok());

  QuarantineLedger ledger;
  DegradedModeConfig degraded;
  degraded.lenient = true;
  degraded.ledger = &ledger;
  degraded.source_name = "trees.nwk";
  Result<Tree> consensus = ConsensusTreeDegraded(
      *trees, ConsensusMethod::kStrict, {}, degraded);
  ASSERT_TRUE(consensus.ok()) << consensus.status().ToString();

  ASSERT_EQ(ledger.size(), 1u);
  const QuarantineEntry entry = ledger.Entries()[0];
  EXPECT_EQ(entry.tree_index, 2);
  EXPECT_EQ(entry.stage, QuarantineStage::kConsensus);

  // The result is the strict consensus of the three kept trees.
  std::vector<Tree> kept = {(*trees)[0], (*trees)[1], (*trees)[3]};
  Tree expected = ConsensusTree(kept, ConsensusMethod::kStrict).value();
  EXPECT_EQ(ToNewick(*consensus), ToNewick(expected));
}

TEST(DegradedBootstrapTest, FailedReplicateIsSkippedInLenientMode) {
  fault::FaultRegistry::Global().DisarmAll();
  Rng rng(53);
  Tree truth = RandomCoalescentTree(MakeTaxa(8), rng, nullptr, 0.1);
  SimulateOptions sim;
  sim.num_sites = 200;
  Alignment a = SimulateAlignment(truth, sim, rng);
  Tree nj = NeighborJoiningTree(a, truth.labels_ptr());
  BootstrapOptions opt;
  opt.replicates = 20;

  // Strict: the injected replicate failure surfaces immediately.
  fault::FaultRegistry::Global().Arm("bootstrap.replicate", 3);
  Rng strict_rng(7);
  Result<std::vector<ClusterSupport>> strict =
      BootstrapSupport(nj, a, opt, strict_rng);
  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInternal);

  // Lenient: the replicate is quarantined and support renormalizes
  // over the 19 survivors.
  QuarantineLedger ledger;
  DegradedModeConfig degraded;
  degraded.lenient = true;
  degraded.ledger = &ledger;
  fault::FaultRegistry::Global().Arm("bootstrap.replicate", 3);
  Rng lenient_rng(7);
  Result<std::vector<ClusterSupport>> supports =
      BootstrapSupportDegraded(nj, a, opt, lenient_rng, degraded);
  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(supports.ok()) << supports.status().ToString();
  EXPECT_FALSE(supports->empty());
  for (const ClusterSupport& s : *supports) {
    EXPECT_GE(s.support, 0.0);
    EXPECT_LE(s.support, 1.0);
  }
  ASSERT_EQ(ledger.size(), 1u);
  const QuarantineEntry entry = ledger.Entries()[0];
  EXPECT_EQ(entry.stage, QuarantineStage::kBootstrap);
  EXPECT_EQ(entry.tree_index, 2);  // the third replicate, 0-based
  EXPECT_EQ(entry.code, StatusCode::kInternal);
}

}  // namespace
}  // namespace cousins
