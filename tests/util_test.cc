#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace cousins {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tree");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tree");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tree");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::OutOfRange("").code(),      Status::FailedPrecondition("").code(),
      Status::Corruption("").code(),      Status::Unimplemented("").code(),
      Status::Internal("").code(),
  };
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> Doubled(int x) {
  COUSINS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(-4).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringsTest, FormatHalfDistance) {
  EXPECT_EQ(FormatHalfDistance(0), "0");
  EXPECT_EQ(FormatHalfDistance(1), "0.5");
  EXPECT_EQ(FormatHalfDistance(2), "1");
  EXPECT_EQ(FormatHalfDistance(3), "1.5");
  EXPECT_EQ(FormatHalfDistance(4), "2");
  EXPECT_EQ(FormatHalfDistance(5), "2.5");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  char buffer[256];
  std::FILE* f = fmemopen(buffer, sizeof(buffer), "w");
  ASSERT_NE(f, nullptr);
  CsvWriter w(f);
  w.WriteRow({"plain", "with,comma", "with\"quote"});
  std::fclose(f);
  EXPECT_STREQ(buffer, "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, CommentLine) {
  char buffer[256];
  std::FILE* f = fmemopen(buffer, sizeof(buffer), "w");
  ASSERT_NE(f, nullptr);
  CsvWriter w(f);
  w.WriteComment("paper: linear");
  std::fclose(f);
  EXPECT_STREQ(buffer, "# paper: linear\n");
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  double lap = sw.Restart();
  EXPECT_GE(lap, 0.0);
  EXPECT_LE(sw.ElapsedSeconds(), lap + 1.0);
}

}  // namespace
}  // namespace cousins
