#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace cousins::obs {
namespace {

// The registry is process-global; every test works in its own uniquely
// named metrics and calls Reset() where counts matter.

TEST(CounterTest, AddAccumulates) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test.counter.add");
  c.Reset();
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.value(), 7);
}

TEST(CounterTest, RegistryReturnsSameInstance) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_EQ(&reg.GetCounter("test.counter.same"),
            &reg.GetCounter("test.counter.same"));
}

TEST(CounterTest, ConcurrentAddsDoNotLose) {
  Counter& c = MetricsRegistry::Global().GetCounter("test.counter.mt");
  c.Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000);
}

TEST(HistogramTest, RecordsCountSumMinMax) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.hist.basic");
  h.Reset();
  h.Record(5);
  h.Record(100);
  h.Record(2);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 107);
  EXPECT_EQ(h.min(), 2);
  EXPECT_EQ(h.max(), 100);
}

TEST(HistogramTest, LogScaleBucketing) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.hist.bucket");
  h.Reset();
  // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4..7 -> bucket 3.
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(7);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.hist.neg");
  h.Reset();
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
}

TEST(MetricsRegistryTest, RuntimeDisableMakesUpdatesNoops) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test.counter.disable");
  Histogram& h = reg.GetHistogram("test.hist.disable");
  c.Reset();
  h.Reset();
  reg.set_enabled(false);
  c.Add(10);
  h.Record(10);
  reg.set_enabled(true);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.Add(1);
  EXPECT_EQ(c.value(), 1);
}

TEST(MetricsRegistryTest, SnapshotCarriesValues) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snap.counter").Reset();
  reg.GetCounter("test.snap.counter").Add(42);
  reg.GetHistogram("test.snap.hist").Reset();
  reg.GetHistogram("test.snap.hist").Record(9);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test.snap.counter"), 42);
  const HistogramSnapshot& h = snap.histograms.at("test.snap.hist");
  EXPECT_EQ(h.count, 1);
  EXPECT_EQ(h.sum, 9);
  EXPECT_EQ(h.min, 9);
  EXPECT_EQ(h.max, 9);
}

TEST(MetricsRegistryTest, SnapshotWritesValidJson) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.counter").Reset();
  reg.GetCounter("test.json.counter").Add(7);
  JsonWriter json;
  json.BeginObject();
  json.Key("metrics");
  reg.Snapshot().WriteJson(&json);
  json.EndObject();
  EXPECT_NE(json.str().find("\"test.json.counter\": 7"), std::string::npos);
}

TEST(MetricsMacrosTest, CounterAndHistogramMacrosRecord) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.macro.counter").Reset();
  reg.GetHistogram("test.macro.hist").Reset();
  COUSINS_METRIC_COUNTER_ADD("test.macro.counter", 5);
  COUSINS_METRIC_COUNTER_ADD("test.macro.counter", 6);
  COUSINS_METRIC_HISTOGRAM_RECORD("test.macro.hist", 12);
#if COUSINS_METRICS_ENABLED
  EXPECT_EQ(reg.GetCounter("test.macro.counter").value(), 11);
  EXPECT_EQ(reg.GetHistogram("test.macro.hist").count(), 1);
#else
  EXPECT_EQ(reg.GetCounter("test.macro.counter").value(), 0);
  EXPECT_EQ(reg.GetHistogram("test.macro.hist").count(), 0);
#endif
}

TEST(MetricsMacrosTest, ScopedTimerRecordsWallAndCpu) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetHistogram("test.macro.timer.wall_us").Reset();
  reg.GetHistogram("test.macro.timer.cpu_us").Reset();
  {
    COUSINS_METRIC_SCOPED_TIMER("test.macro.timer");
  }
#if COUSINS_METRICS_ENABLED
  EXPECT_EQ(reg.GetHistogram("test.macro.timer.wall_us").count(), 1);
  EXPECT_EQ(reg.GetHistogram("test.macro.timer.cpu_us").count(), 1);
#endif
}

TEST(JsonWriterTest, ObjectsArraysAndScalars) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("name", "bench");
  json.KeyValue("n", int64_t{42});
  json.KeyValue("ratio", 0.5);
  json.KeyValue("ok", true);
  json.Key("list");
  json.BeginArray();
  json.Int(1);
  json.Int(2);
  json.EndArray();
  json.EndObject();
  const std::string out = json.str();
  EXPECT_NE(out.find("\"name\": \"bench\""), std::string::npos);
  EXPECT_NE(out.find("\"n\": 42"), std::string::npos);
  EXPECT_NE(out.find("\"ratio\": 0.5"), std::string::npos);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("s", "a\"b\\c\nd");
  json.EndObject();
  EXPECT_NE(json.str().find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(JsonWriterTest, DoublesAlwaysParseAsNumbers) {
  JsonWriter json;
  json.BeginObject();
  // Whole doubles keep a ".0" so readers round-trip them as floats, and
  // exponent forms stay JSON numbers.
  json.KeyValue("whole", 3.0);
  json.KeyValue("tiny", 1.5e-8);
  json.EndObject();
  EXPECT_NE(json.str().find("\"whole\": 3.0"), std::string::npos);
  EXPECT_NE(json.str().find("e-08"), std::string::npos);
}

}  // namespace
}  // namespace cousins::obs
