#include <gtest/gtest.h>

#include <set>

#include "gen/yule_generator.h"
#include "phylo/clusters.h"
#include "seq/fitch.h"
#include "seq/jukes_cantor.h"
#include "seq/parsimony_search.h"
#include "test_util.h"
#include "tree/canonical.h"
#include "tree/edit.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::FindByLabel;
using testing_util::MustParse;

TEST(SprMoveTest, RegraftsLeafAcrossTheTree) {
  auto labels = std::make_shared<LabelTable>();
  Tree t = MustParse("(((A,B)ab,C)abc,D)r;", labels);
  // Prune A, regraft above D: A's old parent ab is suppressed.
  Result<Tree> moved =
      SprMove(t, FindByLabel(t, "A"), FindByLabel(t, "D"));
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  Tree expected = MustParse("((B,C)abc,(A,D))r;", labels);
  EXPECT_TRUE(UnorderedIsomorphic(*moved, expected))
      << ToNewick(*moved);
}

TEST(SprMoveTest, RegraftsSubtree) {
  auto labels = std::make_shared<LabelTable>();
  Tree t = MustParse("(((A,B)ab,C)abc,(D,E)de)r;", labels);
  Result<Tree> moved =
      SprMove(t, FindByLabel(t, "ab"), FindByLabel(t, "D"));
  ASSERT_TRUE(moved.ok());
  Tree expected = MustParse("(C,(((A,B)ab,D),E)de)r;", labels);
  EXPECT_TRUE(UnorderedIsomorphic(*moved, expected))
      << ToNewick(*moved);
}

TEST(SprMoveTest, RegraftAboveRootCreatesNewRoot) {
  auto labels = std::make_shared<LabelTable>();
  Tree t = MustParse("((A,B)ab,(C,D)cd)r;", labels);
  Result<Tree> moved = SprMove(t, FindByLabel(t, "A"), t.root());
  ASSERT_TRUE(moved.ok());
  // r becomes (B, cd) after the splice... r keeps label r with children
  // B and cd; new root holds {old r, A}.
  Tree expected = MustParse("((B,(C,D)cd)r,A);", labels);
  EXPECT_TRUE(UnorderedIsomorphic(*moved, expected))
      << ToNewick(*moved);
}

TEST(SprMoveTest, InvalidMovesRejected) {
  Tree t = MustParse("(((A,B)ab,C)abc,D)r;");
  EXPECT_FALSE(SprMove(t, t.root(), FindByLabel(t, "A")).ok());
  EXPECT_FALSE(
      SprMove(t, FindByLabel(t, "ab"), FindByLabel(t, "A")).ok());
  EXPECT_FALSE(
      SprMove(t, FindByLabel(t, "A"), FindByLabel(t, "A")).ok());
  EXPECT_FALSE(SprMove(t, -1, 0).ok());
  // Regraft onto the suppressed parent's vanished edge.
  EXPECT_FALSE(
      SprMove(t, FindByLabel(t, "A"), FindByLabel(t, "ab")).ok());
}

TEST(SprMoveTest, PreservesLeavesAndBinaryShape) {
  Rng rng(17);
  Tree t = RandomCoalescentTree(MakeTaxa(12), rng);
  TaxonIndex original = TaxonIndex::FromTree(t).value();
  int applied = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto prune = static_cast<NodeId>(rng.Uniform(t.size()));
    const auto regraft = static_cast<NodeId>(rng.Uniform(t.size()));
    Result<Tree> moved = SprMove(t, prune, regraft);
    if (!moved.ok()) continue;
    ++applied;
    EXPECT_EQ(moved->size(), t.size());
    EXPECT_EQ(moved->leaf_count(), t.leaf_count());
    TaxonIndex taxa = TaxonIndex::FromTree(*moved).value();
    EXPECT_EQ(taxa.size(), original.size());
    for (NodeId v = 0; v < moved->size(); ++v) {
      if (!moved->is_leaf(v)) {
        EXPECT_EQ(moved->children(v).size(), 2u);
      }
    }
  }
  EXPECT_GT(applied, 50);
}

TEST(SprMoveTest, NniIsASpecialCaseOfSpr) {
  // Topologically, every NNI rearrangement is reachable by one SPR
  // (with unlabeled internals, the phylogenetic case — SPR suppresses
  // and creates internal nodes, so it cannot preserve internal labels).
  auto labels = std::make_shared<LabelTable>();
  Tree t = MustParse("(((A,B),C),D);", labels);
  // NNI: swap C with B -> (((A,C),B),D) shape.
  Tree nni = SwapSubtrees(t, FindByLabel(t, "C"),
                          FindByLabel(t, "B")).value();
  bool found = false;
  for (NodeId prune = 0; prune < t.size() && !found; ++prune) {
    for (NodeId regraft = 0; regraft < t.size() && !found; ++regraft) {
      Result<Tree> moved = SprMove(t, prune, regraft);
      if (moved.ok() && UnorderedIsomorphic(*moved, nni)) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SprSearchTest, SprNeverWorseThanNniOnly) {
  auto labels_nni = std::make_shared<LabelTable>();
  auto labels_spr = std::make_shared<LabelTable>();
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto make_alignment = [&](std::shared_ptr<LabelTable> labels) {
      Rng rng(seed);
      Tree truth =
          RandomCoalescentTree(MakeTaxa(12), rng, std::move(labels), 0.1);
      SimulateOptions sim;
      sim.num_sites = 120;
      return SimulateAlignment(truth, sim, rng);
    };
    ParsimonySearchOptions nni;
    nni.max_trees = 3;
    nni.num_restarts = 1;
    ParsimonySearchOptions spr = nni;
    spr.spr_samples = 40;
    const auto nni_best =
        SearchParsimoniousTrees(make_alignment(labels_nni), nni,
                                labels_nni)[0].score;
    const auto spr_best =
        SearchParsimoniousTrees(make_alignment(labels_spr), spr,
                                labels_spr)[0].score;
    EXPECT_LE(spr_best, nni_best) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cousins
