// Resource governance: deadlines, budgets, cancellation and fault
// containment across the mining stack.
//
// The two load-bearing properties:
//  1. A governed context whose limits never trip yields bit-identical
//     results to the ungoverned entry points (the governance checks may
//     not perturb the algorithms).
//  2. A tripped limit yields a clean, truncated-flagged partial result
//     with the matching trip code — never a crash, hang or abort.

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "core/parallel_mining.h"
#include "core/single_tree_mining.h"
#include "gen/yule_generator.h"
#include "obs/metrics.h"
#include "phylo/cooccurrence.h"
#include "test_util.h"
#include "phylo/kernel_trees.h"
#include "phylo/similarity.h"
#include "util/fault_injection.h"
#include "util/governance.h"
#include "util/rng.h"

namespace cousins {
namespace {

std::vector<Tree> RandomForest(int count, uint64_t seed,
                               std::shared_ptr<LabelTable> labels,
                               int min_nodes = 30, int max_nodes = 80) {
  Rng rng(seed);
  YulePhylogenyOptions gen;
  gen.min_nodes = min_nodes;
  gen.max_nodes = max_nodes;
  gen.alphabet_size = 60;
  std::vector<Tree> trees;
  for (int i = 0; i < count; ++i) {
    trees.push_back(GenerateYulePhylogeny(gen, rng, labels));
  }
  return trees;
}

MiningContext ExpiredDeadline() {
  MiningContext context;
  context.set_timeout(std::chrono::milliseconds(0));
  return context;
}

TEST(CancellationTokenTest, InertTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  token.Cancel();  // no-op
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, CopiesShareOneFlag) {
  CancellationToken token = CancellationToken::Create();
  CancellationToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancellationTokenTest, ChildSeesParentButNotViceVersa) {
  CancellationToken parent = CancellationToken::Create();
  CancellationToken child = CancellationToken::ChildOf(parent);
  EXPECT_FALSE(child.cancelled());
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());  // never propagates upward

  CancellationToken child2 = CancellationToken::ChildOf(parent);
  parent.Cancel();
  EXPECT_TRUE(child2.cancelled());  // propagates downward
}

TEST(MiningContextTest, UngovernedChecksAreAlwaysOk) {
  const MiningContext& context = MiningContext::Unlimited();
  EXPECT_FALSE(context.governed());
  EXPECT_TRUE(context.Check().ok());
  EXPECT_TRUE(context.CheckWork(1 << 30, int64_t{1} << 40, 1 << 20).ok());
}

TEST(MiningContextTest, TripCodesAndClassification) {
  MiningContext context = ExpiredDeadline();
  EXPECT_EQ(context.Check().code(), StatusCode::kDeadlineExceeded);

  CancellationToken token = CancellationToken::Create();
  token.Cancel();
  MiningContext cancelled;
  cancelled.set_cancellation(token);
  EXPECT_EQ(cancelled.Check().code(), StatusCode::kCancelled);

  ResourceBudget budget;
  budget.max_pair_map_entries = 10;
  MiningContext budgeted;
  budgeted.set_budget(budget);
  EXPECT_TRUE(budgeted.CheckWork(10, 0, 0).ok());
  EXPECT_EQ(budgeted.CheckWork(11, 0, 0).code(),
            StatusCode::kResourceExhausted);

  EXPECT_TRUE(IsGovernanceTrip(Status::Cancelled("x")));
  EXPECT_TRUE(IsGovernanceTrip(Status::DeadlineExceeded("x")));
  EXPECT_TRUE(IsGovernanceTrip(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsGovernanceTrip(Status::OK()));
  EXPECT_FALSE(IsGovernanceTrip(Status::Internal("x")));
}

TEST(GovernedSingleTreeTest, UntrippedGovernedRunIsBitIdentical) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(5, 11, labels);
  MiningOptions options;
  MiningContext roomy;
  roomy.set_timeout(std::chrono::hours(1));
  roomy.set_cancellation(CancellationToken::Create());
  for (const Tree& tree : trees) {
    SingleTreeMiningRun run = MineSingleTreeGoverned(tree, options, roomy);
    EXPECT_FALSE(run.truncated);
    EXPECT_TRUE(run.termination.ok());
    EXPECT_EQ(run.items, MineSingleTree(tree, options));
  }
}

TEST(GovernedSingleTreeTest, ExpiredDeadlineTripsWithPartialItems) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(1, 5, labels, 400, 500);
  SingleTreeMiningRun run =
      MineSingleTreeGoverned(trees[0], MiningOptions(), ExpiredDeadline());
  EXPECT_TRUE(run.truncated);
  EXPECT_EQ(run.termination.code(), StatusCode::kDeadlineExceeded);
  // Partial means a subset of the complete result's size.
  EXPECT_LE(run.items.size(),
            MineSingleTree(trees[0], MiningOptions()).size());
}

TEST(GovernedSingleTreeTest, PreCancelledTokenTripsImmediately) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(1, 6, labels);
  CancellationToken token = CancellationToken::Create();
  token.Cancel();
  MiningContext context;
  context.set_cancellation(token);
  SingleTreeMiningRun run =
      MineSingleTreeGoverned(trees[0], MiningOptions(), context);
  EXPECT_TRUE(run.truncated);
  EXPECT_EQ(run.termination.code(), StatusCode::kCancelled);
  EXPECT_TRUE(run.items.empty());
}

TEST(GovernedSingleTreeTest, ItemBudgetCapsEmission) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(1, 7, labels);
  const size_t full = MineSingleTree(trees[0], MiningOptions()).size();
  ASSERT_GT(full, 3u);
  ResourceBudget budget;
  budget.max_items = 3;
  MiningContext context;
  context.set_budget(budget);
  SingleTreeMiningRun run =
      MineSingleTreeGoverned(trees[0], MiningOptions(), context);
  EXPECT_TRUE(run.truncated);
  EXPECT_EQ(run.termination.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(run.items.size(), 3u);
}

TEST(GovernedSingleTreeTest, ItemBudgetTripShortCircuitsEmitScan) {
  // Regression: once the item cap trips, the emit loop must stop
  // scanning the remaining per-distance accumulator tables instead of
  // walking (and probing) all twice_maxdist+1 of them. The tree has
  // items at twice-distance 0, so a cap of 1 trips inside the first
  // table and exactly one table may be scanned.
  Tree t = testing_util::MustParse("((u,v)p,w)r;");
  MiningOptions opt;
  opt.twice_maxdist = 3;
  ResourceBudget budget;
  budget.max_items = 1;
  MiningContext context;
  context.set_budget(budget);
  obs::Counter& scanned = obs::MetricsRegistry::Global().GetCounter(
      "mine.single.emit_tables_scanned");
  const int64_t before = scanned.value();
  SingleTreeMiningRun run = MineSingleTreeGoverned(t, opt, context);
  EXPECT_TRUE(run.truncated);
  EXPECT_EQ(run.termination.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(run.items.size(), 1u);
  EXPECT_EQ(scanned.value() - before, 1);
}

TEST(GovernedSingleTreeTest, PairMapEntryBudgetTripsMidMining) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(1, 8, labels, 600, 700);
  ResourceBudget budget;
  budget.max_pair_map_entries = 16;
  MiningContext context;
  context.set_budget(budget);
  SingleTreeMiningRun run =
      MineSingleTreeGoverned(trees[0], MiningOptions(), context);
  EXPECT_TRUE(run.truncated);
  EXPECT_EQ(run.termination.code(), StatusCode::kResourceExhausted);
}

TEST(GovernedMultiTreeTest, UntrippedGovernedRunIsBitIdentical) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(25, 42, labels);
  MultiTreeMiningOptions options;
  options.min_support = 2;
  MiningContext roomy;
  roomy.set_timeout(std::chrono::hours(1));
  Result<MultiTreeMiningRun> run =
      MineMultipleTreesGoverned(trees, options, roomy);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->truncated);
  EXPECT_EQ(run->trees_processed, 25);
  EXPECT_EQ(run->pairs, MineMultipleTrees(trees, options));
}

TEST(GovernedMultiTreeTest, MismatchedLabelTablesAreAHardError) {
  auto labels_a = std::make_shared<LabelTable>();
  auto labels_b = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(1, 1, labels_a);
  std::vector<Tree> other = RandomForest(1, 2, labels_b);
  trees.push_back(other[0]);
  Result<MultiTreeMiningRun> run = MineMultipleTreesGoverned(
      trees, MultiTreeMiningOptions(), MiningContext::Unlimited());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(GovernedMultiTreeTest, DeadlineTripYieldsPrefixTally) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(50, 43, labels);
  Result<MultiTreeMiningRun> run = MineMultipleTreesGoverned(
      trees, MultiTreeMiningOptions(), ExpiredDeadline());
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->truncated);
  EXPECT_EQ(run->termination.code(), StatusCode::kDeadlineExceeded);
  // An already-expired deadline trips before the first tree completes.
  EXPECT_EQ(run->trees_processed, 0);
  EXPECT_TRUE(run->pairs.empty());
}

TEST(GovernedMultiTreeTest, TallyBudgetTripsPartWayThroughTheForest) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(30, 44, labels);
  ResourceBudget budget;
  budget.max_pair_map_entries = 200;
  MiningContext context;
  context.set_budget(budget);
  // Per-tree accumulators stay under 200 entries only for a while; the
  // growing cross-tree tally trips somewhere inside the forest.
  Result<MultiTreeMiningRun> run =
      MineMultipleTreesGoverned(trees, MultiTreeMiningOptions(), context);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->truncated);
  EXPECT_EQ(run->termination.code(), StatusCode::kResourceExhausted);
  EXPECT_LT(run->trees_processed, 30);
}

class GovernedParallel : public ::testing::TestWithParam<int32_t> {};

TEST_P(GovernedParallel, UntrippedGovernedRunMatchesSequential) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(40, 123, labels);
  MultiTreeMiningOptions options;
  options.min_support = 2;
  MiningContext roomy;
  roomy.set_timeout(std::chrono::hours(1));
  roomy.set_cancellation(CancellationToken::Create());
  Result<MultiTreeMiningRun> run = MineMultipleTreesParallelGoverned(
      trees, options, roomy, GetParam());
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->truncated);
  EXPECT_EQ(run->trees_processed, 40);
  EXPECT_EQ(run->pairs, MineMultipleTrees(trees, options));
}

TEST_P(GovernedParallel, WorkerExceptionBecomesStatusNotTerminate) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(24, 9, labels);
  // Every worker body passes the parallel.worker site — including the
  // single-threaded inline path, which is contained exactly like a
  // spawned worker.
  fault::FaultRegistry::Global().Arm("parallel.worker", 1);
  Result<MultiTreeMiningRun> run = MineMultipleTreesParallelGoverned(
      trees, MultiTreeMiningOptions(), MiningContext::Unlimited(),
      GetParam());
  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("faulted"), std::string::npos);
  EXPECT_NE(
      run.status().message().find("injected fault at parallel.worker"),
      std::string::npos);
}

TEST_P(GovernedParallel, DeadlineTripIsACleanTruncatedRun) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(32, 10, labels);
  Result<MultiTreeMiningRun> run = MineMultipleTreesParallelGoverned(
      trees, MultiTreeMiningOptions(), ExpiredDeadline(), GetParam());
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->truncated);
  EXPECT_EQ(run->termination.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(run->trees_processed, 32);
}

TEST_P(GovernedParallel, CallerCancellationSurfacesAsCancelled) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(16, 12, labels);
  CancellationToken token = CancellationToken::Create();
  token.Cancel();  // cancelled before the run even starts
  MiningContext context;
  context.set_cancellation(token);
  Result<MultiTreeMiningRun> run = MineMultipleTreesParallelGoverned(
      trees, MultiTreeMiningOptions(), context, GetParam());
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->truncated);
  EXPECT_EQ(run->termination.code(), StatusCode::kCancelled);
  EXPECT_EQ(run->trees_processed, 0);
}

INSTANTIATE_TEST_SUITE_P(Threads, GovernedParallel,
                         ::testing::Values(1, 2, 3, 8));

TEST(GovernanceMetricsTest, TripsAndFaultsShowUpInTheSnapshot) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(8, 20, labels);

  // Deadline trip.
  (void)MineMultipleTreesGoverned(trees, MultiTreeMiningOptions(),
                                  ExpiredDeadline());
  // Worker fault, via the always-compiled parallel.worker site.
  fault::FaultRegistry::Global().Arm("parallel.worker", 1);
  (void)MineMultipleTreesParallelGoverned(
      trees, MultiTreeMiningOptions(), MiningContext::Unlimited(), 2);
  fault::FaultRegistry::Global().DisarmAll();

  EXPECT_GE(
      registry.GetCounter("governance.deadline_exceeded").value(), 1);
  EXPECT_GE(registry.GetCounter("governance.worker_faults").value(), 1);
  EXPECT_GE(registry.GetCounter("governance.hard_failures").value(), 1);
  EXPECT_GE(registry.GetCounter("faults.triggered").value(), 1);
  EXPECT_GE(registry.GetCounter("faults.parallel.worker").value(), 1);
  registry.Reset();
}

TEST(GovernedSimilarityTest, MatchesUngovernedAndValidatesInput) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(6, 30, labels);
  const Tree consensus = trees[0];
  std::vector<Tree> originals(trees.begin() + 1, trees.end());

  Result<SimilarityRun> run = AverageSimilarityScoreGoverned(
      consensus, originals, MiningOptions(), MiningContext::Unlimited());
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->truncated);
  EXPECT_EQ(run->originals_scored, 5);
  EXPECT_DOUBLE_EQ(run->average,
                   AverageSimilarityScore(consensus, originals));

  EXPECT_EQ(AverageSimilarityScoreGoverned(consensus, {}, MiningOptions(),
                                           MiningContext::Unlimited())
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  Result<SimilarityRun> tripped = AverageSimilarityScoreGoverned(
      consensus, originals, MiningOptions(), ExpiredDeadline());
  ASSERT_TRUE(tripped.ok());
  EXPECT_TRUE(tripped->truncated);
  EXPECT_EQ(tripped->termination.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tripped->originals_scored, 0);
}

TEST(GovernedKernelTreesTest, MatchesUngovernedAndValidatesInput) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> pool = RandomForest(9, 31, labels);
  std::vector<std::vector<Tree>> groups = {
      {pool[0], pool[1], pool[2]},
      {pool[3], pool[4], pool[5]},
      {pool[6], pool[7], pool[8]},
  };
  KernelTreeOptions options;
  Result<KernelTreeRun> run =
      FindKernelTreesGoverned(groups, options, MiningContext::Unlimited());
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->truncated);
  KernelTreeResult legacy = FindKernelTrees(groups, options);
  EXPECT_EQ(run->result.selected, legacy.selected);
  EXPECT_DOUBLE_EQ(run->result.average_pairwise_distance,
                   legacy.average_pairwise_distance);
  EXPECT_EQ(run->result.exact, legacy.exact);

  EXPECT_EQ(FindKernelTreesGoverned({}, options, MiningContext::Unlimited())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FindKernelTreesGoverned({{pool[0]}, {}}, options,
                                    MiningContext::Unlimited())
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  Result<KernelTreeRun> tripped =
      FindKernelTreesGoverned(groups, options, ExpiredDeadline());
  ASSERT_TRUE(tripped.ok());
  EXPECT_TRUE(tripped->truncated);
  EXPECT_EQ(tripped->termination.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(tripped->result.selected.empty());
}

TEST(CooccurrenceTest, FacadeMatchesDirectMinersSequentialAndParallel) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(20, 32, labels);
  MultiTreeMiningOptions mining;
  mining.min_support = 2;
  const auto expected = MineMultipleTrees(trees, mining);

  for (int32_t threads : {1, 0, 4}) {
    CooccurrenceOptions options;
    options.mining = mining;
    options.num_threads = threads;
    Result<MultiTreeMiningRun> run = MineCooccurrencePatterns(trees, options);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    EXPECT_FALSE(run->truncated);
    EXPECT_EQ(run->pairs, expected) << "threads=" << threads;
  }

  CooccurrenceOptions options;
  options.mining = mining;
  Result<MultiTreeMiningRun> tripped =
      MineCooccurrencePatterns(trees, options, ExpiredDeadline());
  ASSERT_TRUE(tripped.ok());
  EXPECT_TRUE(tripped->truncated);
}

}  // namespace
}  // namespace cousins
