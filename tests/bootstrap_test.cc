#include <gtest/gtest.h>

#include <algorithm>

#include "gen/yule_generator.h"
#include "phylo/bootstrap.h"
#include "seq/jukes_cantor.h"
#include "seq/neighbor_joining.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(BootstrapTest, SupportsAreInUnitInterval) {
  Rng rng(31);
  Tree truth = RandomCoalescentTree(MakeTaxa(8), rng, nullptr, 0.1);
  SimulateOptions sim;
  sim.num_sites = 200;
  Alignment a = SimulateAlignment(truth, sim, rng);
  Tree nj = NeighborJoiningTree(a, truth.labels_ptr());
  BootstrapOptions opt;
  opt.replicates = 50;
  auto supports = BootstrapSupport(nj, a, opt, rng);
  ASSERT_TRUE(supports.ok()) << supports.status().ToString();
  EXPECT_FALSE(supports->empty());
  for (const ClusterSupport& s : *supports) {
    EXPECT_GE(s.support, 0.0);
    EXPECT_LE(s.support, 1.0);
    EXPECT_FALSE(nj.is_leaf(s.node));
  }
}

TEST(BootstrapTest, StrongSignalGivesHighSupport) {
  // Long alignment + clock-like tree: NJ is extremely stable, so every
  // reference cluster should be recovered by nearly all replicates.
  Rng rng(33);
  Tree truth = RandomCoalescentTree(MakeTaxa(6), rng, nullptr, 0.15);
  SimulateOptions sim;
  sim.num_sites = 4000;
  Alignment a = SimulateAlignment(truth, sim, rng);
  Tree nj = NeighborJoiningTree(a, truth.labels_ptr());
  BootstrapOptions opt;
  opt.replicates = 30;
  auto supports = BootstrapSupport(nj, a, opt, rng).value();
  // Rooted clusters that span NJ's arbitrary root placement can be
  // unstable even under strong signal, so assert that the best clusters
  // are rock solid and the average is clearly above chance.
  double mean = 0;
  double best = 0;
  for (const ClusterSupport& s : supports) {
    mean += s.support;
    best = std::max(best, s.support);
  }
  mean /= static_cast<double>(supports.size());
  EXPECT_GT(best, 0.9);
  EXPECT_GT(mean, 0.4);
}

TEST(BootstrapTest, NoSignalGivesLowSupport) {
  // One site carries almost no phylogenetic information; supports for a
  // random reference tree's clusters should be far from 1.
  Rng rng(35);
  Tree reference = RandomCoalescentTree(MakeTaxa(8), rng, nullptr, 0.1);
  SimulateOptions sim;
  sim.num_sites = 4;
  Alignment a = SimulateAlignment(reference, sim, rng);
  BootstrapOptions opt;
  opt.replicates = 40;
  auto supports = BootstrapSupport(reference, a, opt, rng).value();
  double mean = 0;
  for (const ClusterSupport& s : supports) mean += s.support;
  mean /= static_cast<double>(supports.size());
  EXPECT_LT(mean, 0.9);
}

TEST(BootstrapTest, ErrorsOnBadInput) {
  Rng rng(37);
  Tree truth = RandomCoalescentTree(MakeTaxa(5), rng, nullptr, 0.1);
  SimulateOptions sim;
  sim.num_sites = 50;
  Alignment a = SimulateAlignment(truth, sim, rng);
  BootstrapOptions opt;
  opt.replicates = 0;
  EXPECT_FALSE(BootstrapSupport(truth, a, opt, rng).ok());
  opt.replicates = 5;
  EXPECT_FALSE(BootstrapSupport(truth, Alignment(), opt, rng).ok());
  Tree other = RandomCoalescentTree(MakeTaxa(9), rng, truth.labels_ptr());
  EXPECT_FALSE(BootstrapSupport(other, a, opt, rng).ok());
}

}  // namespace
}  // namespace cousins
