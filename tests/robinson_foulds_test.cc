#include <gtest/gtest.h>

#include "gen/yule_generator.h"
#include "phylo/robinson_foulds.h"
#include "phylo/tree_distance.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(RobinsonFouldsTest, IdenticalTreesDistanceZero) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B),(C,D));", labels);
  Tree b = MustParse("((B,A),(D,C));", labels);
  auto r = RobinsonFoulds(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->distance, 0.0);
  EXPECT_DOUBLE_EQ(r->normalized, 0.0);
}

TEST(RobinsonFouldsTest, CompletelyConflictingResolution) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B),(C,D));", labels);
  Tree b = MustParse("((A,C),(B,D));", labels);
  auto r = RobinsonFoulds(a, b);
  ASSERT_TRUE(r.ok());
  // Each tree has 2 nontrivial clusters, none shared: (2 + 2) / 2 = 2.
  EXPECT_DOUBLE_EQ(r->distance, 2.0);
  EXPECT_DOUBLE_EQ(r->normalized, 1.0);
}

TEST(RobinsonFouldsTest, PartialOverlap) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(((A,B),C),D,E);", labels);  // {AB}, {ABC}
  Tree b = MustParse("(((A,B),D),C,E);", labels);  // {AB}, {ABD}
  auto r = RobinsonFoulds(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->distance, 1.0);  // symmetric diff {ABC},{ABD} / 2
  EXPECT_DOUBLE_EQ(r->normalized, 0.5);
}

TEST(RobinsonFouldsTest, StarVsResolved) {
  auto labels = std::make_shared<LabelTable>();
  Tree star = MustParse("(A,B,C,D);", labels);
  Tree resolved = MustParse("((A,B),(C,D));", labels);
  auto r = RobinsonFoulds(star, resolved);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->distance, 1.0);  // (0 + 2) / 2
  EXPECT_DOUBLE_EQ(r->normalized, 1.0);
}

TEST(RobinsonFouldsTest, TwoStarsDistanceZero) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("(A,B,C);", labels);
  Tree b = MustParse("(C,A,B);", labels);
  auto r = RobinsonFoulds(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->distance, 0.0);
  EXPECT_DOUBLE_EQ(r->normalized, 0.0);
}

TEST(RobinsonFouldsTest, RequiresIdenticalTaxa) {
  auto labels = std::make_shared<LabelTable>();
  Tree a = MustParse("((A,B),C);", labels);
  Tree b = MustParse("((A,B),D);", labels);
  EXPECT_FALSE(RobinsonFoulds(a, b).ok());
  // This is exactly the case the cousin-pair distance handles (§5.3).
  EXPECT_LT(CousinTreeDistance(a, b, CousinItemAbstraction::kLabelsOnly),
            1.0);
}

TEST(RobinsonFouldsTest, SymmetricAndBounded) {
  Rng rng(55);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa = MakeTaxa(12);
  for (int trial = 0; trial < 10; ++trial) {
    Tree a = RandomCoalescentTree(taxa, rng, labels);
    Tree b = RandomCoalescentTree(taxa, rng, labels);
    auto ab = RobinsonFoulds(a, b);
    auto ba = RobinsonFoulds(b, a);
    ASSERT_TRUE(ab.ok() && ba.ok());
    EXPECT_DOUBLE_EQ(ab->distance, ba->distance);
    EXPECT_GE(ab->normalized, 0.0);
    EXPECT_LE(ab->normalized, 1.0);
  }
}

TEST(RobinsonFouldsTest, CorrelatesWithCousinDistanceOnSameTaxa) {
  // Both measures must call identical trees identical; on a pair of
  // random resolved trees both must be positive.
  Rng rng(56);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa = MakeTaxa(10);
  Tree a = RandomCoalescentTree(taxa, rng, labels);
  Tree b = RandomCoalescentTree(taxa, rng, labels);
  auto rf = RobinsonFoulds(a, b);
  ASSERT_TRUE(rf.ok());
  const double cousin = CousinTreeDistance(
      a, b, CousinItemAbstraction::kDistanceAndOccurrence);
  if (rf->distance > 0) {
    EXPECT_GT(cousin, 0.0);
  }
  auto self = RobinsonFoulds(a, a);
  EXPECT_DOUBLE_EQ(self->distance, 0.0);
  EXPECT_DOUBLE_EQ(CousinTreeDistance(
                       a, a, CousinItemAbstraction::kDistanceAndOccurrence),
                   0.0);
}

}  // namespace
}  // namespace cousins
