#include <gtest/gtest.h>

#include <unordered_set>

#include "util/bitset.h"
#include "util/rng.h"

namespace cousins {
namespace {

TEST(BitsetTest, SetTestReset) {
  Bitset b(100);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3);
}

TEST(BitsetTest, NoneAndCount) {
  Bitset b(70);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0);
  b.Set(69);
  EXPECT_FALSE(b.None());
  EXPECT_EQ(b.Count(), 1);
}

TEST(BitsetTest, SubsetAndIntersect) {
  Bitset a(10);
  Bitset b(10);
  a.Set(1);
  a.Set(2);
  b.Set(1);
  b.Set(2);
  b.Set(3);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  Bitset c(10);
  c.Set(5);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(c.IsSubsetOf(c));
}

TEST(BitsetTest, EmptySetIsSubsetOfAll) {
  Bitset empty(10);
  Bitset b(10);
  b.Set(3);
  EXPECT_TRUE(empty.IsSubsetOf(b));
  EXPECT_TRUE(empty.IsSubsetOf(empty));
  EXPECT_FALSE(empty.Intersects(b));
}

TEST(BitsetTest, OrAndAssign) {
  Bitset a(130);
  Bitset b(130);
  a.Set(0);
  a.Set(128);
  b.Set(64);
  a |= b;
  EXPECT_EQ(a.Count(), 3);
  Bitset c(130);
  c.Set(64);
  c.Set(1);
  a &= c;
  EXPECT_EQ(a.Count(), 1);
  EXPECT_TRUE(a.Test(64));
}

TEST(BitsetTest, OnesAscending) {
  Bitset b(200);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  std::vector<int32_t> ones = b.Ones();
  EXPECT_EQ(ones, (std::vector<int32_t>{5, 64, 199}));
}

TEST(BitsetTest, EqualityAndOrdering) {
  Bitset a(10);
  Bitset b(10);
  EXPECT_EQ(a, b);
  a.Set(3);
  EXPECT_NE(a, b);
  EXPECT_TRUE(b < a);  // empty words < set words
}

TEST(BitsetTest, HashCollisionsAreRare) {
  Rng rng(5);
  std::unordered_set<size_t> hashes;
  const int kSets = 500;
  for (int i = 0; i < kSets; ++i) {
    Bitset b(128);
    for (int j = 0; j < 10; ++j) {
      b.Set(static_cast<int32_t>(rng.Uniform(128)));
    }
    hashes.insert(b.Hash());
  }
  // Distinct random sets should nearly all hash distinctly.
  EXPECT_GT(static_cast<int>(hashes.size()), kSets - 10);
}

TEST(ClustersCompatibleTest, DisjointNestedOverlapping) {
  Bitset a(8);
  Bitset b(8);
  Bitset c(8);
  a.Set(0);
  a.Set(1);
  b.Set(2);
  b.Set(3);
  c.Set(1);
  c.Set(2);
  EXPECT_TRUE(ClustersCompatible(a, b));   // disjoint
  EXPECT_FALSE(ClustersCompatible(a, c));  // overlapping, not nested
  Bitset big(8);
  big.Set(0);
  big.Set(1);
  big.Set(2);
  EXPECT_TRUE(ClustersCompatible(a, big));  // nested
  EXPECT_TRUE(ClustersCompatible(big, a));  // symmetric
}

}  // namespace
}  // namespace cousins
