#include <gtest/gtest.h>

#include "gen/yule_generator.h"
#include "phylo/supertree.h"
#include "test_util.h"
#include "tree/canonical.h"
#include "tree/restrict.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(SupertreeTest, MergesOverlappingCompatibleSources) {
  auto labels = std::make_shared<LabelTable>();
  // Two caterpillars sharing A, B, C; jointly they define a 5-taxon
  // caterpillar.
  std::vector<Tree> sources = {
      MustParse("(((A,B),C),D);", labels),
      MustParse("(((A,B),C),E);", labels),
  };
  Result<Tree> super = BuildSupertree(sources);
  ASSERT_TRUE(super.ok()) << super.status().ToString();
  EXPECT_EQ(super->leaf_count(), 5);
  for (const Tree& s : sources) {
    EXPECT_TRUE(Displays(*super, s).value());
  }
}

TEST(SupertreeTest, SingleSourceRoundTrips) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> sources = {MustParse("(((A,B),C),(D,E));", labels)};
  Result<Tree> super = BuildSupertree(sources);
  ASSERT_TRUE(super.ok());
  EXPECT_TRUE(Displays(*super, sources[0]).value());
  EXPECT_TRUE(UnorderedIsomorphic(*super, sources[0]));
}

TEST(SupertreeTest, DisjointSourcesJoinAtRoot) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> sources = {
      MustParse("((A,B),C);", labels),
      MustParse("((X,Y),Z);", labels),
  };
  Result<Tree> super = BuildSupertree(sources);
  ASSERT_TRUE(super.ok());
  EXPECT_EQ(super->leaf_count(), 6);
  for (const Tree& s : sources) {
    EXPECT_TRUE(Displays(*super, s).value());
  }
}

TEST(SupertreeTest, StrictModeRejectsIncompatibleSources) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> sources = {
      MustParse("((A,B),C);", labels),
      MustParse("((B,C),A);", labels),
  };
  Result<Tree> super = BuildSupertree(sources);
  ASSERT_FALSE(super.ok());
  EXPECT_EQ(super.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SupertreeTest, GreedyModeResolvesConflicts) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> sources = {
      MustParse("((A,B),C);", labels),
      MustParse("((B,C),A);", labels),
  };
  SupertreeOptions options;
  options.strict = false;
  Result<Tree> super = BuildSupertree(sources, options);
  ASSERT_TRUE(super.ok());
  EXPECT_EQ(super->leaf_count(), 3);
  // The first source survives the greedy drop of the last one.
  EXPECT_TRUE(Displays(*super, sources[0]).value());
}

TEST(SupertreeTest, ErrorsOnEmptyOrDuplicateTaxa) {
  auto labels = std::make_shared<LabelTable>();
  EXPECT_FALSE(BuildSupertree({}).ok());
  std::vector<Tree> dup = {MustParse("(A,A);", labels)};
  EXPECT_FALSE(BuildSupertree(dup).ok());
}

TEST(SupertreeTest, DisplaysDetectsNonDisplay) {
  auto labels = std::make_shared<LabelTable>();
  Tree super = MustParse("(((A,B),C),D);", labels);
  Tree shown = MustParse("((A,B),C);", labels);
  Tree hidden = MustParse("((A,C),B);", labels);
  EXPECT_TRUE(Displays(super, shown).value());
  EXPECT_FALSE(Displays(super, hidden).value());
}

// Property: restrictions of one underlying tree are always compatible,
// and the supertree displays every restriction.
class SupertreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SupertreeProperty, RestrictionsReassembleAndDisplay) {
  Rng rng(GetParam());
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa = MakeTaxa(14);
  Tree truth = RandomCoalescentTree(taxa, rng, labels);
  std::vector<Tree> sources;
  for (int s = 0; s < 4; ++s) {
    std::vector<LabelId> keep;
    for (const std::string& name : taxa) {
      if (rng.NextBool(0.6)) keep.push_back(labels->Find(name));
    }
    if (keep.size() < 3) continue;
    sources.push_back(RestrictToLabels(truth, keep).value());
  }
  if (sources.empty()) return;
  Result<Tree> super = BuildSupertree(sources);
  ASSERT_TRUE(super.ok()) << super.status().ToString();
  for (const Tree& s : sources) {
    EXPECT_TRUE(Displays(*super, s).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupertreeProperty,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace cousins
