#include <gtest/gtest.h>

#include <cmath>

#include "gen/yule_generator.h"
#include "seq/jukes_cantor.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

TEST(SimulateTest, ZeroLengthBranchesCopySequences) {
  Tree t = MustParse("(A:0,B:0)r;");
  Rng rng(1);
  SimulateOptions opt;
  opt.num_sites = 200;
  Alignment a = SimulateAlignment(t, opt, rng);
  ASSERT_EQ(a.num_taxa(), 2);
  EXPECT_EQ(a.rows[0].bases, a.rows[1].bases);
}

TEST(SimulateTest, LongBranchesSaturateAtThreeQuartersMismatch) {
  Tree t = MustParse("(A:100,B:100)r;");
  Rng rng(2);
  SimulateOptions opt;
  opt.num_sites = 5000;
  Alignment a = SimulateAlignment(t, opt, rng);
  int mismatches = 0;
  for (int s = 0; s < opt.num_sites; ++s) {
    mismatches += a.rows[0].bases[s] != a.rows[1].bases[s];
  }
  EXPECT_NEAR(mismatches / 5000.0, 0.75, 0.03);
}

TEST(SimulateTest, MismatchRateTracksBranchLength) {
  // p = (3/4)(1 - e^{-4t/3}); for t = 0.3 per branch (0.6 total path),
  // expected leaf-leaf mismatch ≈ 0.75(1 - e^{-0.8}) ≈ 0.4129.
  Tree t = MustParse("(A:0.3,B:0.3)r;");
  Rng rng(3);
  SimulateOptions opt;
  opt.num_sites = 20000;
  Alignment a = SimulateAlignment(t, opt, rng);
  int mismatches = 0;
  for (int s = 0; s < opt.num_sites; ++s) {
    mismatches += a.rows[0].bases[s] != a.rows[1].bases[s];
  }
  EXPECT_NEAR(mismatches / 20000.0, 0.4129, 0.02);
}

TEST(SimulateTest, AllLeavesPresent) {
  Rng rng(4);
  Tree t = RandomCoalescentTree(MakeTaxa(16), rng);
  SimulateOptions opt;
  opt.num_sites = 50;
  Alignment a = SimulateAlignment(t, opt, rng);
  EXPECT_EQ(a.num_taxa(), 16);
  EXPECT_EQ(a.num_sites(), 50);
  for (int i = 0; i < 16; ++i) {
    EXPECT_GE(a.RowOf("taxon" + std::to_string(i)), 0);
  }
}

TEST(SimulateTest, RateScalesBranches) {
  Tree t = MustParse("(A:1,B:1)r;");
  SimulateOptions slow;
  slow.num_sites = 5000;
  slow.rate = 0.01;
  Rng rng1(5);
  Alignment a = SimulateAlignment(t, slow, rng1);
  int mismatches = 0;
  for (int s = 0; s < slow.num_sites; ++s) {
    mismatches += a.rows[0].bases[s] != a.rows[1].bases[s];
  }
  EXPECT_LT(mismatches / 5000.0, 0.05);
}

TEST(JukesCantorDistanceTest, IdenticalSequencesZero) {
  std::vector<uint8_t> s = {0, 1, 2, 3, 0, 1};
  EXPECT_DOUBLE_EQ(JukesCantorDistance(s, s), 0.0);
}

TEST(JukesCantorDistanceTest, KnownValue) {
  // 1 mismatch in 10 sites: d = -(3/4) ln(1 - (4/3)(0.1)).
  std::vector<uint8_t> a = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  std::vector<uint8_t> b = {1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_NEAR(JukesCantorDistance(a, b),
              -0.75 * std::log(1.0 - 0.4 / 3.0), 1e-12);
}

TEST(JukesCantorDistanceTest, SaturationClamped) {
  std::vector<uint8_t> a = {0, 0, 0, 0};
  std::vector<uint8_t> b = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(JukesCantorDistance(a, b), 10.0);
}

TEST(JukesCantorMatrixTest, SymmetricZeroDiagonal) {
  Rng rng(6);
  Tree t = RandomCoalescentTree(MakeTaxa(6), rng);
  SimulateOptions opt;
  opt.num_sites = 100;
  Alignment a = SimulateAlignment(t, opt, rng);
  auto m = JukesCantorMatrix(a);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(m[i][i], 0.0);
    for (int j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
      EXPECT_GE(m[i][j], 0.0);
    }
  }
}

}  // namespace
}  // namespace cousins
