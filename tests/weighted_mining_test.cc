#include <gtest/gtest.h>

#include "core/single_tree_mining.h"
#include "core/weighted_mining.h"
#include "test_util.h"

namespace cousins {
namespace {

using testing_util::MustParse;

int64_t Occ(const Tree& t, const std::vector<WeightedPairItem>& items,
            const std::string& a, const std::string& b, int twice_d,
            int32_t bucket) {
  LabelId la = t.labels().Find(a);
  LabelId lb = t.labels().Find(b);
  if (la > lb) std::swap(la, lb);
  for (const WeightedPairItem& item : items) {
    if (item.label1 == la && item.label2 == lb &&
        item.twice_distance == twice_d && item.weight_bucket == bucket) {
      return item.occurrences;
    }
  }
  return 0;
}

TEST(WeightedMiningTest, UnitWeightsBucketByTopologicalPath) {
  // Default branch length 1: weighted path == edge count == h_u + h_v.
  Tree t = MustParse("((u,v)p,w)r;");
  WeightedMiningOptions opt;
  opt.twice_maxdist = 2;
  auto items = MineWeighted(t, opt);
  EXPECT_EQ(Occ(t, items, "u", "v", 0, 2), 1);  // siblings: path 2
  EXPECT_EQ(Occ(t, items, "u", "w", 1, 3), 1);  // aunt-niece: path 3
  EXPECT_EQ(Occ(t, items, "p", "w", 0, 2), 1);
}

TEST(WeightedMiningTest, BranchLengthsSeparateEqualTopologies) {
  // Two sibling pairs with very different weighted separations.
  Tree t = MustParse("((a:0.1,b:0.1)x,(c:5,d:5)y)r;");
  WeightedMiningOptions opt;
  opt.twice_maxdist = 0;
  opt.bucket_width = 1.0;
  auto items = MineWeighted(t, opt);
  EXPECT_EQ(Occ(t, items, "a", "b", 0, 0), 1);   // 0.2 -> bucket 0
  EXPECT_EQ(Occ(t, items, "c", "d", 0, 10), 1);  // 10 -> bucket 10
}

TEST(WeightedMiningTest, BucketWidthControlsGranularity) {
  Tree t = MustParse("((a:0.1,b:0.1)x,(c:5,d:5)y)r;");
  WeightedMiningOptions opt;
  opt.twice_maxdist = 0;
  opt.bucket_width = 100.0;  // everything lands in bucket 0
  auto items = MineWeighted(t, opt);
  EXPECT_EQ(Occ(t, items, "a", "b", 0, 0), 1);
  EXPECT_EQ(Occ(t, items, "c", "d", 0, 0), 1);
}

TEST(WeightedMiningTest, CollapsedBucketsMatchUnweightedItems) {
  // With one giant bucket, dropping the bucket recovers the unweighted
  // miner's items exactly.
  Tree t = testing_util::FamilyTree();
  WeightedMiningOptions wopt;
  wopt.twice_maxdist = 5;
  wopt.bucket_width = 1e9;
  std::vector<CousinPairItem> collapsed;
  for (const WeightedPairItem& item : MineWeighted(t, wopt)) {
    EXPECT_EQ(item.weight_bucket, 0);
    collapsed.push_back(CousinPairItem{item.label1, item.label2,
                                       item.twice_distance,
                                       item.occurrences});
  }
  CanonicalizeItems(&collapsed);
  MiningOptions opt;
  opt.twice_maxdist = 5;
  EXPECT_EQ(collapsed, MineSingleTree(t, opt));
}

TEST(WeightedMiningTest, TopologicalCutoffStillApplies) {
  Tree t = testing_util::FamilyTree();
  WeightedMiningOptions opt;
  opt.twice_maxdist = 2;
  for (const WeightedPairItem& item : MineWeighted(t, opt)) {
    EXPECT_LE(item.twice_distance, 2);
  }
}

TEST(WeightedMiningTest, MinOccurFilters) {
  Tree t = MustParse("((a,b)x,(a,b)y)r;");
  WeightedMiningOptions opt;
  opt.twice_maxdist = 2;
  opt.min_occur = 2;
  auto items = MineWeighted(t, opt);
  for (const WeightedPairItem& item : items) {
    EXPECT_GE(item.occurrences, 2);
  }
  // (a, b) cross pairs: both at distance 1, weighted path 4, twice.
  EXPECT_EQ(Occ(t, items, "a", "b", 2, 4), 2);
}

TEST(WeightedMiningTest, EmptyAndDegenerate) {
  EXPECT_TRUE(MineWeighted(Tree()).empty());
  EXPECT_TRUE(MineWeighted(MustParse("a;")).empty());
}

TEST(WeightedMiningTest, Format) {
  LabelTable labels;
  labels.Intern("a");
  labels.Intern("b");
  WeightedPairItem item{labels.Find("a"), labels.Find("b"), 3, 7, 2};
  EXPECT_EQ(FormatWeightedItem(labels, item), "(a, b, 1.5, w7, 2)");
}

}  // namespace
}  // namespace cousins
