#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/single_tree_mining.h"
#include "core/variant_mining.h"
#include "core/weighted_mining.h"
#include "test_util.h"
#include "tree/builder.h"

namespace cousins {
namespace {

using testing_util::MustParse;

std::vector<WeightedPairItem> MustMineWeighted(
    const Tree& t, const WeightedMiningOptions& opt = {}) {
  auto items = MineWeighted(t, opt);
  EXPECT_TRUE(items.ok()) << items.status().message();
  return items.ok() ? std::move(items).value()
                    : std::vector<WeightedPairItem>{};
}

int64_t Occ(const Tree& t, const std::vector<WeightedPairItem>& items,
            const std::string& a, const std::string& b, int twice_d,
            int32_t bucket) {
  LabelId la = t.labels().Find(a);
  LabelId lb = t.labels().Find(b);
  if (la > lb) std::swap(la, lb);
  for (const WeightedPairItem& item : items) {
    if (item.label1 == la && item.label2 == lb &&
        item.twice_distance == twice_d && item.weight_bucket == bucket) {
      return item.occurrences;
    }
  }
  return 0;
}

TEST(WeightedMiningTest, UnitWeightsBucketByTopologicalPath) {
  // Default branch length 1: weighted path == edge count == h_u + h_v.
  Tree t = MustParse("((u,v)p,w)r;");
  WeightedMiningOptions opt;
  opt.twice_maxdist = 2;
  auto items = MustMineWeighted(t, opt);
  EXPECT_EQ(Occ(t, items, "u", "v", 0, 2), 1);  // siblings: path 2
  EXPECT_EQ(Occ(t, items, "u", "w", 1, 3), 1);  // aunt-niece: path 3
  EXPECT_EQ(Occ(t, items, "p", "w", 0, 2), 1);
}

TEST(WeightedMiningTest, BranchLengthsSeparateEqualTopologies) {
  // Two sibling pairs with very different weighted separations.
  Tree t = MustParse("((a:0.1,b:0.1)x,(c:5,d:5)y)r;");
  WeightedMiningOptions opt;
  opt.twice_maxdist = 0;
  opt.bucket_width = 1.0;
  auto items = MustMineWeighted(t, opt);
  EXPECT_EQ(Occ(t, items, "a", "b", 0, 0), 1);   // 0.2 -> bucket 0
  EXPECT_EQ(Occ(t, items, "c", "d", 0, 10), 1);  // 10 -> bucket 10
}

TEST(WeightedMiningTest, BucketWidthControlsGranularity) {
  Tree t = MustParse("((a:0.1,b:0.1)x,(c:5,d:5)y)r;");
  WeightedMiningOptions opt;
  opt.twice_maxdist = 0;
  opt.bucket_width = 100.0;  // everything lands in bucket 0
  auto items = MustMineWeighted(t, opt);
  EXPECT_EQ(Occ(t, items, "a", "b", 0, 0), 1);
  EXPECT_EQ(Occ(t, items, "c", "d", 0, 0), 1);
}

TEST(WeightedMiningTest, CollapsedBucketsMatchUnweightedItems) {
  // With one giant bucket, dropping the bucket recovers the unweighted
  // miner's items exactly.
  Tree t = testing_util::FamilyTree();
  WeightedMiningOptions wopt;
  wopt.twice_maxdist = 5;
  wopt.bucket_width = 1e9;
  std::vector<CousinPairItem> collapsed;
  for (const WeightedPairItem& item : MustMineWeighted(t, wopt)) {
    EXPECT_EQ(item.weight_bucket, 0);
    collapsed.push_back(CousinPairItem{item.label1, item.label2,
                                       item.twice_distance,
                                       item.occurrences});
  }
  CanonicalizeItems(&collapsed);
  MiningOptions opt;
  opt.twice_maxdist = 5;
  EXPECT_EQ(collapsed, MineSingleTree(t, opt));
}

TEST(WeightedMiningTest, TopologicalCutoffStillApplies) {
  Tree t = testing_util::FamilyTree();
  WeightedMiningOptions opt;
  opt.twice_maxdist = 2;
  for (const WeightedPairItem& item : MustMineWeighted(t, opt)) {
    EXPECT_LE(item.twice_distance, 2);
  }
}

TEST(WeightedMiningTest, MinOccurFilters) {
  Tree t = MustParse("((a,b)x,(a,b)y)r;");
  WeightedMiningOptions opt;
  opt.twice_maxdist = 2;
  opt.min_occur = 2;
  auto items = MustMineWeighted(t, opt);
  for (const WeightedPairItem& item : items) {
    EXPECT_GE(item.occurrences, 2);
  }
  // (a, b) cross pairs: both at distance 1, weighted path 4, twice.
  EXPECT_EQ(Occ(t, items, "a", "b", 2, 4), 2);
}

TEST(WeightedMiningTest, EmptyAndDegenerate) {
  EXPECT_TRUE(MustMineWeighted(Tree()).empty());
  EXPECT_TRUE(MustMineWeighted(MustParse("a;")).empty());
}

// Regression (was UB): a NaN branch length flowed into
// static_cast<int32_t>(floor(NaN / width)). Now the tree is rejected
// whole with kInvalidArgument naming the offending edge.
TEST(WeightedMiningTest, NanBranchLengthIsRejected) {
  TreeBuilder b;
  NodeId r = b.AddRoot("r");
  b.AddChild(r, "a", std::numeric_limits<double>::quiet_NaN());
  b.AddChild(r, "b", 1.0);
  Tree t = std::move(b).Build();
  auto items = MineWeighted(t);
  ASSERT_FALSE(items.ok());
  EXPECT_EQ(items.status().code(), StatusCode::kInvalidArgument);
}

// Regression (was UB): infinite branch lengths made the quotient +inf.
TEST(WeightedMiningTest, InfiniteBranchLengthIsRejected) {
  TreeBuilder b;
  NodeId r = b.AddRoot("r");
  b.AddChild(r, "a", std::numeric_limits<double>::infinity());
  b.AddChild(r, "b", 1.0);
  Tree t = std::move(b).Build();
  auto items = MineWeighted(t);
  ASSERT_FALSE(items.ok());
  EXPECT_EQ(items.status().code(), StatusCode::kInvalidArgument);
}

// Regression (was UB): finite-but-huge branch lengths push the bucket
// quotient past int32 range; it must saturate, not wrap or trap.
TEST(WeightedMiningTest, HugeFiniteWeightedPathSaturatesBucket) {
  TreeBuilder b;
  NodeId r = b.AddRoot("r");
  b.AddChild(r, "a", 1e300);
  b.AddChild(r, "b", 1e300);
  Tree t = std::move(b).Build();
  WeightedMiningOptions opt;
  opt.twice_maxdist = 0;
  opt.bucket_width = 1e-9;
  auto items = MustMineWeighted(t, opt);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].weight_bucket, std::numeric_limits<int32_t>::max());
}

TEST(WeightedMiningTest, NonPositiveBucketWidthIsInvalidArgument) {
  Tree t = MustParse("(a,b)r;");
  WeightedMiningOptions opt;
  opt.bucket_width = 0.0;
  EXPECT_FALSE(MineWeighted(t, opt).ok());
  opt.bucket_width = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(MineWeighted(t, opt).ok());
}

TEST(WeightedMiningTest, ClampWeightBucketBoundaries) {
  using internal::ClampWeightBucket;
  EXPECT_EQ(ClampWeightBucket(3.7, 1.0), 3);
  EXPECT_EQ(ClampWeightBucket(-0.5, 1.0), -1);
  EXPECT_EQ(ClampWeightBucket(1e300, 1.0),
            std::numeric_limits<int32_t>::max());
  EXPECT_EQ(ClampWeightBucket(-1e300, 1.0),
            std::numeric_limits<int32_t>::min());
  // Exactly 2^31 must already saturate (2^31 - 1 fits, 2^31 does not).
  EXPECT_EQ(ClampWeightBucket(2147483648.0, 1.0),
            std::numeric_limits<int32_t>::max());
  EXPECT_EQ(ClampWeightBucket(2147483647.0, 1.0),
            std::numeric_limits<int32_t>::max());
  EXPECT_EQ(ClampWeightBucket(-2147483648.0, 1.0),
            std::numeric_limits<int32_t>::min());
}

TEST(WeightedMiningTest, Format) {
  LabelTable labels;
  labels.Intern("a");
  labels.Intern("b");
  WeightedPairItem item{labels.Find("a"), labels.Find("b"), 3, 7, 2};
  EXPECT_EQ(FormatWeightedItem(labels, item), "(a, b, 1.5, w7, 2)");
}

}  // namespace
}  // namespace cousins
