#include <gtest/gtest.h>

#include <set>

#include "gen/yule_generator.h"
#include "phylo/clustering.h"
#include "test_util.h"
#include "tree/canonical.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

/// Two well-separated families of trees: perturbations of ((A..F
/// caterpillar)) vs. perturbations of a balanced shape over disjoint
/// sibling pairs.
std::vector<Tree> TwoFamilies(std::shared_ptr<LabelTable> labels) {
  std::vector<Tree> trees;
  // Family 1: caterpillars (indices 0..2).
  trees.push_back(MustParse("(((((A,B),C),D),E),F);", labels));
  trees.push_back(MustParse("(((((A,B),C),D),F),E);", labels));
  trees.push_back(MustParse("(((((B,A),C),E),D),F);", labels));
  // Family 2: balanced (indices 3..5).
  trees.push_back(MustParse("((A,D),(B,E),(C,F));", labels));
  trees.push_back(MustParse("((A,D),(B,E),(F,C));", labels));
  trees.push_back(MustParse("((D,A),(E,B),(C,F));", labels));
  return trees;
}

TEST(ClusteringTest, SeparatesObviousFamilies) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = TwoFamilies(labels);
  ClusteringOptions opt;
  opt.k = 2;
  auto result = ClusterTrees(trees, opt);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignment.size(), 6u);
  // Trees 0-2 together, trees 3-5 together.
  EXPECT_EQ(result->assignment[0], result->assignment[1]);
  EXPECT_EQ(result->assignment[0], result->assignment[2]);
  EXPECT_EQ(result->assignment[3], result->assignment[4]);
  EXPECT_EQ(result->assignment[3], result->assignment[5]);
  EXPECT_NE(result->assignment[0], result->assignment[3]);
}

TEST(ClusteringTest, MedoidsBelongToTheirClusters) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = TwoFamilies(labels);
  ClusteringOptions opt;
  opt.k = 2;
  auto result = ClusterTrees(trees, opt);
  ASSERT_TRUE(result.ok());
  for (int32_t c = 0; c < opt.k; ++c) {
    EXPECT_EQ(result->assignment[result->medoids[c]], c);
  }
}

TEST(ClusteringTest, SingleClusterMinimizesTotalDistance) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = TwoFamilies(labels);
  ClusteringOptions opt;
  opt.k = 1;
  auto result = ClusterTrees(trees, opt);
  ASSERT_TRUE(result.ok());
  // Verify optimality against every possible medoid by brute force.
  double best = 1e18;
  for (size_t m = 0; m < trees.size(); ++m) {
    double total = 0;
    for (const Tree& t : trees) {
      total += CousinTreeDistance(trees[m], t, opt.abstraction, opt.mining);
    }
    best = std::min(best, total);
  }
  EXPECT_NEAR(result->total_distance, best, 1e-9);
}

TEST(ClusteringTest, KEqualsNGivesZeroDistance) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = TwoFamilies(labels);
  ClusteringOptions opt;
  opt.k = static_cast<int32_t>(trees.size());
  auto result = ClusterTrees(trees, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_distance, 0.0);
}

TEST(ClusteringTest, RejectsBadK) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = TwoFamilies(labels);
  ClusteringOptions opt;
  opt.k = 0;
  EXPECT_FALSE(ClusterTrees(trees, opt).ok());
  opt.k = 7;
  EXPECT_FALSE(ClusterTrees(trees, opt).ok());
}

TEST(ClusteringTest, DeterministicGivenSeed) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = TwoFamilies(labels);
  ClusteringOptions opt;
  opt.k = 2;
  auto a = ClusterTrees(trees, opt);
  auto b = ClusterTrees(trees, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->medoids, b->medoids);
}

TEST(ClusteringTest, ClusterConsensusSummarizesEachFamily) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = TwoFamilies(labels);
  ClusteringOptions opt;
  opt.k = 2;
  auto consensus = ClusterConsensus(trees, opt,
                                    ConsensusMethod::kMajority);
  ASSERT_TRUE(consensus.ok()) << consensus.status().ToString();
  ASSERT_EQ(consensus->size(), 2u);
  // One consensus contains the caterpillar's (A,B) cherry; the other
  // contains (A,D). Identify by cluster content rather than order.
  std::set<std::string> forms;
  for (const Tree& t : *consensus) forms.insert(CanonicalForm(t));
  EXPECT_EQ(forms.size(), 2u);
}

TEST(ClusteringTest, WorksOnRandomPhylogenies) {
  Rng rng(71);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa = MakeTaxa(10);
  std::vector<Tree> trees;
  for (int i = 0; i < 12; ++i) {
    trees.push_back(RandomCoalescentTree(taxa, rng, labels));
  }
  for (int32_t k : {1, 2, 3, 4}) {
    ClusteringOptions opt;
    opt.k = k;
    auto result = ClusterTrees(trees, opt);
    ASSERT_TRUE(result.ok());
    std::set<int32_t> used(result->assignment.begin(),
                           result->assignment.end());
    EXPECT_LE(static_cast<int32_t>(used.size()), k);
    for (int32_t c : result->assignment) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, k);
    }
  }
}

TEST(ClusteringTest, MoreClustersNeverIncreaseTotalDistance) {
  Rng rng(72);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa = MakeTaxa(8);
  std::vector<Tree> trees;
  for (int i = 0; i < 10; ++i) {
    trees.push_back(RandomCoalescentTree(taxa, rng, labels));
  }
  double prev = 1e18;
  for (int32_t k : {1, 2, 4, 8}) {
    ClusteringOptions opt;
    opt.k = k;
    opt.restarts = 6;
    auto result = ClusterTrees(trees, opt);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->total_distance, prev + 1e-9) << "k=" << k;
    prev = result->total_distance;
  }
}

}  // namespace
}  // namespace cousins
