#include <gtest/gtest.h>

#include "tree/newick.h"
#include "tree/render.h"

namespace cousins {
namespace {

TEST(RenderTest, SimpleTree) {
  Tree t = ParseNewick("((x,y)a,b)r;").value();
  const std::string art = RenderAscii(t);
  EXPECT_EQ(art,
            "r\n"
            "├── a\n"
            "│   ├── x\n"
            "│   └── y\n"
            "└── b\n");
}

TEST(RenderTest, UnlabeledNodesAsStar) {
  Tree t = ParseNewick("(x,y);").value();
  const std::string art = RenderAscii(t);
  EXPECT_EQ(art,
            "*\n"
            "├── x\n"
            "└── y\n");
}

TEST(RenderTest, SingleNode) {
  Tree t = ParseNewick("only;").value();
  EXPECT_EQ(RenderAscii(t), "only\n");
  EXPECT_EQ(RenderAscii(Tree()), "");
}

TEST(RenderTest, ShowIdsAndBranchLengths) {
  Tree t = ParseNewick("(x:2.5)r;").value();
  RenderOptions options;
  options.show_ids = true;
  options.show_branch_lengths = true;
  EXPECT_EQ(RenderAscii(t, options),
            "r (#0)\n"
            "└── x (#1):2.5\n");
}

TEST(RenderTest, EveryNodeOnItsOwnLine) {
  Tree t = ParseNewick("((a,b,c)x,(d,(e,f)g)h)r;").value();
  const std::string art = RenderAscii(t);
  int lines = 0;
  for (char c : art) lines += c == '\n';
  EXPECT_EQ(lines, t.size());
}

}  // namespace
}  // namespace cousins
