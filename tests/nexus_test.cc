#include <gtest/gtest.h>

#include "tree/canonical.h"
#include "tree/nexus.h"
#include "tree/newick.h"

namespace cousins {
namespace {

TEST(NexusTest, ParsesTreesBlockWithTranslate) {
  const std::string nexus = R"(#NEXUS
BEGIN TAXA;
  DIMENSIONS NTAX=3;
END;
BEGIN TREES;
  TRANSLATE
    1 Homo_sapiens,
    2 Pan_troglodytes,
    3 Gorilla_gorilla;
  TREE tree1 = [&R] ((1,2),3);
  TREE tree2 = ((1,3),2);
END;
)";
  auto result = ParseNexusTrees(nexus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].name, "tree1");
  EXPECT_EQ((*result)[1].name, "tree2");
  const Tree& t1 = (*result)[0].tree;
  Tree expected =
      ParseNewick("((Homo_sapiens,Pan_troglodytes),Gorilla_gorilla);",
                  t1.labels_ptr())
          .value();
  EXPECT_TRUE(UnorderedIsomorphic(t1, expected));
}

TEST(NexusTest, QuotedTranslateNames) {
  const std::string nexus = R"(
begin trees;
  translate 1 'Homo sapiens', 2 'Pan';
  tree t = (1,2);
end;
)";
  auto result = ParseNexusTrees(nexus);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  const Tree& t = (*result)[0].tree;
  bool found = false;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.has_label(v) && t.label_name(v) == "Homo sapiens") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NexusTest, NoTranslateTableKeepsLabels) {
  const std::string nexus =
      "BEGIN TREES; TREE a = ((x,y),z); END;";
  auto result = ParseNexusTrees(nexus);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  const Tree& t = (*result)[0].tree;
  Tree expected = ParseNewick("((x,y),z);", t.labels_ptr()).value();
  EXPECT_TRUE(UnorderedIsomorphic(t, expected));
}

TEST(NexusTest, CaseInsensitiveKeywords) {
  const std::string nexus =
      "Begin Trees; Tree T1 = (a,b); End;";
  auto result = ParseNexusTrees(nexus);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(NexusTest, IgnoresOtherBlocksAndStatements) {
  const std::string nexus = R"(#NEXUS
BEGIN CHARACTERS;
  MATRIX x ACGT;
END;
BEGIN TREES;
  LINK Taxa = taxa1;
  TREE only = (a,(b,c));
END;
BEGIN NOTES;
  TEXT whatever;
END;
)";
  auto result = ParseNexusTrees(nexus);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(NexusTest, MultipleTreesBlocksAndSharedLabels) {
  const std::string nexus = R"(
BEGIN TREES; TRANSLATE 1 alpha, 2 beta; TREE a = (1,2); END;
BEGIN TREES; TREE b = (alpha,beta); END;
)";
  auto labels = std::make_shared<LabelTable>();
  auto result = ParseNexusTrees(nexus, labels);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  // Second block has no translate table; labels line up anyway.
  EXPECT_TRUE(
      UnorderedIsomorphic((*result)[0].tree, (*result)[1].tree));
}

TEST(NexusTest, BranchLengthsSurviveTranslation) {
  const std::string nexus =
      "BEGIN TREES; TRANSLATE 1 a, 2 b; TREE t = (1:0.5,2:1.5); END;";
  auto result = ParseNexusTrees(nexus);
  ASSERT_TRUE(result.ok());
  const Tree& t = (*result)[0].tree;
  double total = 0;
  for (NodeId v = 1; v < t.size(); ++v) total += t.branch_length(v);
  EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(NexusTest, ErrorOnBadTreeStatement) {
  EXPECT_FALSE(
      ParseNexusTrees("BEGIN TREES; TREE broken (a,b); END;").ok());
  EXPECT_FALSE(
      ParseNexusTrees("BEGIN TREES; TREE t = ((a,b); END;").ok());
}

TEST(NexusTest, EmptyInputYieldsNoTrees) {
  auto result = ParseNexusTrees("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  auto no_block = ParseNexusTrees("#NEXUS\nBEGIN TAXA; END;");
  ASSERT_TRUE(no_block.ok());
  EXPECT_TRUE(no_block->empty());
}

TEST(NexusTest, CommentsStripped) {
  const std::string nexus =
      "BEGIN TREES; TREE t = [comment [nested]] (a,b); END;";
  auto result = ParseNexusTrees(nexus);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(NexusTest, BomAndCrlfFileParsesLikeACleanOne) {
  // A TreeBASE-style export saved on Windows: UTF-8 BOM plus CRLF line
  // endings. The "#NEXUS" header must still be recognized and every
  // statement parse as if the file were clean.
  const std::string dirty =
      "\xEF\xBB\xBF#NEXUS\r\n"
      "BEGIN TREES;\r\n"
      "  TRANSLATE 1 alpha, 2 beta, 3 gamma;\r\n"
      "  TREE one = ((1,2),3);\r\n"
      "END;\r\n";
  const std::string clean =
      "#NEXUS\n"
      "BEGIN TREES;\n"
      "  TRANSLATE 1 alpha, 2 beta, 3 gamma;\n"
      "  TREE one = ((1,2),3);\n"
      "END;\n";
  auto labels = std::make_shared<LabelTable>();
  auto result = ParseNexusTrees(dirty, labels);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  auto expected = ParseNexusTrees(clean, labels);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  EXPECT_EQ(ToNewick((*result)[0].tree), ToNewick((*expected)[0].tree));

  // Classic-Mac lone-'\r' line endings terminate the header line too.
  auto mac = ParseNexusTrees("#NEXUS\rBEGIN TREES;\rTREE t = (a,b);\rEND;");
  ASSERT_TRUE(mac.ok()) << mac.status().ToString();
  EXPECT_EQ(mac->size(), 1u);
}

}  // namespace
}  // namespace cousins
