// Crash-safe checkpoint/resume: codec round trips, resume equivalence
// (a run interrupted at any boundary and resumed produces bit-identical
// tallies), atomic-write guarantees, and rejection of every corruption
// mode — truncation, bit flips, version skew, options mismatch — with a
// distinct error and no crash.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/checkpoint.h"
#include "core/item_io.h"
#include "core/multi_tree_mining.h"
#include "core/parallel_mining.h"
#include "gen/yule_generator.h"
#include "util/fault_injection.h"
#include "util/governance.h"
#include "util/rng.h"

namespace cousins {
namespace {

std::vector<Tree> RandomForest(int count, uint64_t seed,
                               std::shared_ptr<LabelTable> labels,
                               int min_nodes = 30, int max_nodes = 80) {
  Rng rng(seed);
  YulePhylogenyOptions gen;
  gen.min_nodes = min_nodes;
  gen.max_nodes = max_nodes;
  gen.alphabet_size = 60;
  std::vector<Tree> trees;
  for (int i = 0; i < count; ++i) {
    trees.push_back(GenerateYulePhylogeny(gen, rng, labels));
  }
  return trees;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cousins_ckpt_" + name;
}

/// Serializes the state of mining the first `prefix` trees — exactly
/// what the checkpointed driver would have written at that boundary
/// before being killed.
std::string CheckpointOfPrefix(const std::vector<Tree>& trees, size_t prefix,
                               const MultiTreeMiningOptions& options) {
  MultiTreeMiner miner(options);
  for (size_t i = 0; i < prefix; ++i) miner.AddTree(trees[i]);
  return miner.SerializeCheckpoint();
}

/// Flips one bit and fixes nothing else — restore must reject it.
std::string FlipBit(std::string bytes, size_t byte, int bit) {
  bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
  return bytes;
}

TEST(CheckpointCodecTest, RoundTripRestoresTalliesCursorAndOptions) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(12, 7, labels);
  MultiTreeMiningOptions options;
  options.min_support = 3;
  MultiTreeMiner miner(options);
  for (const Tree& tree : trees) miner.AddTree(tree);

  const std::string bytes = miner.SerializeCheckpoint();
  Result<MultiTreeMiner> restored =
      MultiTreeMiner::RestoreFromCheckpoint(bytes, options, labels);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->tree_count(), 12);
  EXPECT_EQ(restored->AllTallies(), miner.AllTallies());
  EXPECT_EQ(restored->FrequentPairs(), miner.FrequentPairs());
  // Re-serializing the restored miner reproduces the bytes exactly.
  EXPECT_EQ(restored->SerializeCheckpoint(), bytes);
}

TEST(CheckpointCodecTest, RestoreIntoFreshLabelTableRemapsByName) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(6, 8, labels);
  MultiTreeMiningOptions options;
  MultiTreeMiner miner(options);
  for (const Tree& tree : trees) miner.AddTree(tree);
  const std::string bytes = miner.SerializeCheckpoint();

  // A resumed process re-parses its input, interning labels in whatever
  // order the file presents them; seed the new table differently so
  // every id shifts.
  auto fresh = std::make_shared<LabelTable>();
  fresh->Intern("zzz-not-in-the-forest");
  Result<MultiTreeMiner> restored =
      MultiTreeMiner::RestoreFromCheckpoint(bytes, options, fresh);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // Compare by rendered names: ids differ, the named tallies must not.
  const auto original = miner.AllTallies();
  const auto remapped = restored->AllTallies();
  ASSERT_EQ(original.size(), remapped.size());
  std::vector<std::string> want;
  std::vector<std::string> got;
  for (const FrequentCousinPair& p : original) {
    want.push_back(FormatFrequentPair(*labels, p));
  }
  for (const FrequentCousinPair& p : remapped) {
    got.push_back(FormatFrequentPair(*fresh, p));
  }
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(want, got);
}

class ResumeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int32_t>> {};

TEST_P(ResumeEquivalence, ResumedRunMatchesUninterruptedBitForBit) {
  const int interrupt_after = std::get<0>(GetParam());
  const int32_t threads = std::get<1>(GetParam());
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(500, 99, labels, 10, 30);
  MultiTreeMiningOptions options;
  options.min_support = 5;
  const std::vector<FrequentCousinPair> baseline =
      MineMultipleTrees(trees, options);

  // Simulate a run killed right after the checkpoint at
  // `interrupt_after` trees, then resume it over the full forest.
  const std::string path =
      TempPath("resume_" + std::to_string(interrupt_after) + "_" +
               std::to_string(threads));
  ASSERT_TRUE(
      WriteFileAtomic(path,
                      CheckpointOfPrefix(trees, interrupt_after, options))
          .ok());
  MiningCheckpointConfig config;
  config.path = path;
  config.every_trees = 64;
  config.resume = true;
  Result<MultiTreeMiningRun> resumed = MineMultipleTreesCheckpointed(
      trees, options, MiningContext::Unlimited(), config, threads);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->truncated);
  EXPECT_EQ(resumed->trees_processed, 500);
  EXPECT_EQ(resumed->pairs, baseline);
  EXPECT_EQ(FrequentPairsToCsv(*labels, resumed->pairs),
            FrequentPairsToCsv(*labels, baseline));

  // The completion checkpoint restores to the full 500-tree state.
  Result<std::string> final_bytes = ReadFileToString(path);
  ASSERT_TRUE(final_bytes.ok());
  Result<MultiTreeMiner> final_state =
      MultiTreeMiner::RestoreFromCheckpoint(*final_bytes, options, labels);
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(final_state->tree_count(), 500);
  EXPECT_EQ(final_state->FrequentPairs(), baseline);
  std::remove(path.c_str());
}

// k = 0 (nothing yet), 1, K-1, K (exact boundary), last tree: the
// interrupt points the issue calls out, across sequential and sharded
// resume.
INSTANTIATE_TEST_SUITE_P(
    InterruptPoints, ResumeEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 63, 64, 499),
                       ::testing::Values(1, 3)));

TEST(CheckpointDriverTest, GovernanceTripCheckpointsAndResumeCompletes) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(120, 21, labels);
  MultiTreeMiningOptions options;
  const std::vector<FrequentCousinPair> baseline =
      MineMultipleTrees(trees, options);
  const std::string path = TempPath("trip_resume");

  ResourceBudget budget;
  budget.max_pair_map_entries = 500;
  MiningContext tight;
  tight.set_budget(budget);
  MiningCheckpointConfig config;
  config.path = path;
  config.every_trees = 16;
  Result<MultiTreeMiningRun> tripped = MineMultipleTreesCheckpointed(
      trees, options, tight, config, 1);
  ASSERT_TRUE(tripped.ok()) << tripped.status().ToString();
  ASSERT_TRUE(tripped->truncated);
  EXPECT_EQ(tripped->termination.code(), StatusCode::kResourceExhausted);
  EXPECT_LT(tripped->trees_processed, 120);

  // The on-trip checkpoint holds the exact prefix the run reported.
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  Result<MultiTreeMiner> state =
      MultiTreeMiner::RestoreFromCheckpoint(*bytes, options, labels);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->tree_count(), tripped->trees_processed);

  // Resume without the budget: completes to the baseline.
  config.resume = true;
  Result<MultiTreeMiningRun> resumed = MineMultipleTreesCheckpointed(
      trees, options, MiningContext::Unlimited(), config, 1);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->truncated);
  EXPECT_EQ(resumed->pairs, baseline);
  std::remove(path.c_str());
}

TEST(CheckpointDriverTest, ParallelTripCheckpointsABoundaryNotMidBatch) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(90, 22, labels);
  MultiTreeMiningOptions options;
  const std::vector<FrequentCousinPair> baseline =
      MineMultipleTrees(trees, options);
  const std::string path = TempPath("parallel_trip");

  ResourceBudget budget;
  budget.max_pair_map_entries = 400;
  MiningContext tight;
  tight.set_budget(budget);
  MiningCheckpointConfig config;
  config.path = path;
  config.every_trees = 16;
  Result<MultiTreeMiningRun> tripped = MineMultipleTreesCheckpointed(
      trees, options, tight, config, 3);
  ASSERT_TRUE(tripped.ok()) << tripped.status().ToString();
  ASSERT_TRUE(tripped->truncated);

  // Strided shards stop mid-batch in an order that is not a forest
  // prefix, so the checkpoint must be the last batch boundary: a
  // multiple of every_trees, never ahead of the partial result.
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  Result<MultiTreeMiner> state =
      MultiTreeMiner::RestoreFromCheckpoint(*bytes, options, labels);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->tree_count() % 16, 0);
  EXPECT_LE(state->tree_count(), tripped->trees_processed);

  config.resume = true;
  Result<MultiTreeMiningRun> resumed = MineMultipleTreesCheckpointed(
      trees, options, MiningContext::Unlimited(), config, 3);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->pairs, baseline);
  std::remove(path.c_str());
}

TEST(CheckpointDriverTest, MissingFileIsAFreshStartAndCursorPastEndFails) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(10, 23, labels);
  MultiTreeMiningOptions options;
  MiningCheckpointConfig config;
  config.path = TempPath("never_written");
  config.resume = true;
  std::remove(config.path.c_str());
  Result<MultiTreeMiningRun> run = MineMultipleTreesCheckpointed(
      trees, options, MiningContext::Unlimited(), config, 1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->trees_processed, 10);
  EXPECT_EQ(run->pairs, MineMultipleTrees(trees, options));
  std::remove(config.path.c_str());

  // A checkpoint of 10 trees cannot resume a 4-tree forest.
  const std::string path = TempPath("cursor_past_end");
  ASSERT_TRUE(
      WriteFileAtomic(path, CheckpointOfPrefix(trees, 10, options)).ok());
  std::vector<Tree> shorter(trees.begin(), trees.begin() + 4);
  config.path = path;
  Result<MultiTreeMiningRun> bad = MineMultipleTreesCheckpointed(
      shorter, options, MiningContext::Unlimited(), config, 1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("beyond the forest size"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, WriteFileAtomicReplacesAndReadRoundTrips) {
  const std::string path = TempPath("atomic_rw");
  ASSERT_TRUE(WriteFileAtomic(path, "first contents").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second contents").ok());
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "second contents");
  std::remove(path.c_str());

  EXPECT_EQ(ReadFileToString(TempPath("nonexistent")).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointFileTest, FailedWriteLeavesThePreviousCheckpointIntact) {
  const std::string path = TempPath("atomic_fail");
  ASSERT_TRUE(WriteFileAtomic(path, "survives").ok());
  for (const char* site : {"checkpoint.open", "checkpoint.write",
                           "checkpoint.flush", "checkpoint.rename"}) {
    fault::FaultRegistry::Global().Arm(site, 1);
    Status st = WriteFileAtomic(path, "torn replacement");
    fault::FaultRegistry::Global().DisarmAll();
    ASSERT_FALSE(st.ok()) << site;
    // Atomic-write failures are transient (retryable) by taxonomy.
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << site;
    EXPECT_TRUE(st.IsTransient()) << site;
    Result<std::string> bytes = ReadFileToString(path);
    ASSERT_TRUE(bytes.ok()) << site;
    EXPECT_EQ(*bytes, "survives") << site;
    // No stray temp file survives a failed write.
    EXPECT_EQ(ReadFileToString(path + ".tmp").status().code(),
              StatusCode::kNotFound)
        << site;
  }
  std::remove(path.c_str());
}

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    labels_ = std::make_shared<LabelTable>();
    trees_ = RandomForest(3, 31, labels_, 10, 20);
    bytes_ = CheckpointOfPrefix(trees_, 3, options_);
  }

  Status Restore(const std::string& bytes) const {
    Result<MultiTreeMiner> restored =
        MultiTreeMiner::RestoreFromCheckpoint(bytes, options_, labels_);
    return restored.ok() ? Status::OK() : restored.status();
  }

  /// Recomputes the trailing CRC so validation reaches the named check.
  static std::string WithFixedCrc(std::string bytes) {
    const uint32_t crc =
        internal::Crc32(bytes.data(), bytes.size() - 4);
    for (int i = 0; i < 4; ++i) {
      bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
          static_cast<char>((crc >> (8 * i)) & 0xFFu);
    }
    return bytes;
  }

  MultiTreeMiningOptions options_;
  std::shared_ptr<LabelTable> labels_;
  std::vector<Tree> trees_;
  std::string bytes_;
};

TEST_F(CheckpointCorruptionTest, EverySingleBitFlipIsRejected) {
  ASSERT_TRUE(Restore(bytes_).ok());
  // CRC32 detects all single-bit errors, so flipping any one bit
  // anywhere — header, body, or the checksum itself — must fail.
  for (size_t byte = 0; byte < bytes_.size(); ++byte) {
    const int bit = static_cast<int>(byte % 8);  // one bit per byte
    Status st = Restore(FlipBit(bytes_, byte, bit));
    EXPECT_FALSE(st.ok()) << "bit " << bit << " of byte " << byte
                          << " flipped undetected";
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "byte " << byte;
  }
}

TEST_F(CheckpointCorruptionTest, TruncationAtEveryBoundaryIsRejected) {
  for (size_t len = 0; len < bytes_.size(); len += 64) {
    Status st = Restore(bytes_.substr(0, len));
    EXPECT_FALSE(st.ok()) << "truncated to " << len << " bytes";
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << len;
  }
  // One byte short: the total-size field catches it before the CRC.
  Status st = Restore(bytes_.substr(0, bytes_.size() - 1));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("truncated checkpoint"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, DistinctErrorsForEachHeaderProblem) {
  EXPECT_NE(Restore("").message().find("checkpoint too short"),
            std::string::npos);

  std::string bad_magic = bytes_;
  bad_magic[0] = 'X';
  EXPECT_NE(Restore(bad_magic).message().find("bad checkpoint magic"),
            std::string::npos);

  // Version skew with a recomputed CRC: the version check itself must
  // reject it, not the checksum.
  std::string skewed = bytes_;
  skewed[8] = 4;  // version field, little-endian (current version is 3)
  EXPECT_NE(Restore(WithFixedCrc(skewed))
                .message()
                .find("unsupported checkpoint version 4"),
            std::string::npos);

  // Older versions (pre-quarantine v1, pre-variant v2) are likewise
  // refused, never silently reinterpreted.
  std::string v1 = bytes_;
  v1[8] = 1;
  EXPECT_NE(Restore(WithFixedCrc(v1))
                .message()
                .find("unsupported checkpoint version 1"),
            std::string::npos);
  std::string v2 = bytes_;
  v2[8] = 2;
  EXPECT_NE(Restore(WithFixedCrc(v2))
                .message()
                .find("unsupported checkpoint version 2"),
            std::string::npos);

  std::string crc_only = bytes_;
  crc_only[crc_only.size() - 1] =
      static_cast<char>(crc_only[crc_only.size() - 1] ^ 0xFF);
  EXPECT_NE(
      Restore(crc_only).message().find("checkpoint checksum mismatch"),
      std::string::npos);
}

TEST_F(CheckpointCorruptionTest, OptionsMismatchIsAFailedPrecondition) {
  MultiTreeMiningOptions other = options_;
  other.min_support = options_.min_support + 5;
  Result<MultiTreeMiner> restored =
      MultiTreeMiner::RestoreFromCheckpoint(bytes_, other, labels_);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(
      restored.status().message().find("mining options mismatch"),
      std::string::npos);
}

}  // namespace
}  // namespace cousins
