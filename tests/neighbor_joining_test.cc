#include <gtest/gtest.h>

#include <set>

#include "gen/yule_generator.h"
#include "phylo/clusters.h"
#include "seq/jukes_cantor.h"
#include "seq/neighbor_joining.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

/// True iff {a, b} form a cherry (sibling leaves) somewhere in `t`.
bool IsCherry(const Tree& t, const std::string& a, const std::string& b) {
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.children(v).size() != 2) continue;
    NodeId l = t.children(v)[0];
    NodeId r = t.children(v)[1];
    if (!t.is_leaf(l) || !t.is_leaf(r)) continue;
    std::set<std::string> pair = {t.label_name(l), t.label_name(r)};
    if (pair == std::set<std::string>{a, b}) return true;
  }
  return false;
}

TEST(NeighborJoiningTest, RecoversAdditiveTreeCherries) {
  // Distances from the additive tree ((A:1,B:1):2,(C:1,D:1):2) with the
  // root edge split: d(A,B)=2, d(C,D)=2, cross pairs = 6.
  std::vector<std::vector<double>> d = {
      {0, 2, 6, 6},
      {2, 0, 6, 6},
      {6, 6, 0, 2},
      {6, 6, 2, 0},
  };
  Tree t = NeighborJoiningFromMatrix({"A", "B", "C", "D"}, d, nullptr);
  EXPECT_EQ(t.leaf_count(), 4);
  EXPECT_TRUE(IsCherry(t, "A", "B") || IsCherry(t, "C", "D"));
  // NJ on 4 taxa resolves both cherries of the true unrooted topology;
  // rooting on the last edge keeps at least one intact, and neither
  // wrong cherry may appear.
  EXPECT_FALSE(IsCherry(t, "A", "C"));
  EXPECT_FALSE(IsCherry(t, "A", "D"));
  EXPECT_FALSE(IsCherry(t, "B", "C"));
  EXPECT_FALSE(IsCherry(t, "B", "D"));
}

TEST(NeighborJoiningTest, TwoTaxa) {
  std::vector<std::vector<double>> d = {{0, 3}, {3, 0}};
  Tree t = NeighborJoiningFromMatrix({"A", "B"}, d, nullptr);
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t.leaf_count(), 2);
  EXPECT_DOUBLE_EQ(t.branch_length(1) + t.branch_length(2), 3.0);
}

TEST(NeighborJoiningTest, BinaryWithAllTaxa) {
  Rng rng(11);
  Tree truth = RandomCoalescentTree(MakeTaxa(10), rng, nullptr, 0.1);
  SimulateOptions opt;
  opt.num_sites = 400;
  Alignment a = SimulateAlignment(truth, opt, rng);
  Tree nj = NeighborJoiningTree(a, truth.labels_ptr());
  EXPECT_EQ(nj.leaf_count(), 10);
  for (NodeId v = 0; v < nj.size(); ++v) {
    if (!nj.is_leaf(v)) {
      EXPECT_EQ(nj.children(v).size(), 2u);
    }
  }
  // Every taxon appears exactly once.
  EXPECT_TRUE(TaxonIndex::FromTree(nj).ok());
}

TEST(NeighborJoiningTest, RecoversSimulatedCladesMostly) {
  // With generous sequence data, NJ should recover most nontrivial
  // clusters of a clock-like model tree.
  Rng rng(13);
  Tree truth = RandomCoalescentTree(MakeTaxa(8), rng, nullptr, 0.08);
  SimulateOptions opt;
  opt.num_sites = 2000;
  Alignment a = SimulateAlignment(truth, opt, rng);
  Tree nj = NeighborJoiningTree(a, truth.labels_ptr());
  TaxonIndex taxa = TaxonIndex::FromTree(truth).value();
  auto truth_clusters = TreeClusters(truth, taxa).value();
  auto nj_clusters = TreeClusters(nj, taxa).value();
  std::set<Bitset> nj_set(nj_clusters.begin(), nj_clusters.end());
  int recovered = 0;
  for (const Bitset& c : truth_clusters) recovered += nj_set.contains(c);
  // Rooting may break clusters that span the root, so expect most, not
  // all, of the truth clusters.
  EXPECT_GE(recovered * 2, static_cast<int>(truth_clusters.size()));
}

TEST(NeighborJoiningTest, BranchLengthsNonNegative) {
  Rng rng(17);
  Tree truth = RandomCoalescentTree(MakeTaxa(7), rng, nullptr, 0.1);
  SimulateOptions opt;
  opt.num_sites = 200;
  Alignment a = SimulateAlignment(truth, opt, rng);
  Tree nj = NeighborJoiningTree(a, truth.labels_ptr());
  for (NodeId v = 1; v < nj.size(); ++v) {
    EXPECT_GE(nj.branch_length(v), 0.0);
  }
}

}  // namespace
}  // namespace cousins
