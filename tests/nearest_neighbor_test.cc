#include <gtest/gtest.h>

#include "gen/yule_generator.h"
#include "phylo/nearest_neighbor.h"
#include "test_util.h"
#include "util/rng.h"

namespace cousins {
namespace {

using testing_util::MustParse;

std::vector<Tree> SmallCorpus(std::shared_ptr<LabelTable> labels) {
  std::vector<Tree> corpus;
  corpus.push_back(MustParse("((A,B),(C,D));", labels));
  corpus.push_back(MustParse("((A,C),(B,D));", labels));
  corpus.push_back(MustParse("((A,D),(B,C));", labels));
  corpus.push_back(MustParse("((P,Q),(R,S));", labels));
  return corpus;
}

TEST(NearestNeighborTest, ExactMatchRanksFirstAtDistanceZero) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> corpus = SmallCorpus(labels);
  CousinProfileIndex index(corpus);
  Tree query = MustParse("((B,A),(D,C));", labels);  // == corpus[0]
  auto matches = index.Query(query, 4);
  ASSERT_EQ(matches.size(), 4u);
  EXPECT_EQ(matches[0].index, 0);
  EXPECT_DOUBLE_EQ(matches[0].distance, 0.0);
  // The disjoint-taxa tree is the farthest.
  EXPECT_EQ(matches[3].index, 3);
  EXPECT_DOUBLE_EQ(matches[3].distance, 1.0);
}

TEST(NearestNeighborTest, ResultsAscendAndKClamps) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> corpus = SmallCorpus(labels);
  CousinProfileIndex index(corpus);
  Tree query = MustParse("((A,B),C,D);", labels);
  auto all = index.Query(query, 100);
  ASSERT_EQ(all.size(), 4u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i].distance, all[i - 1].distance);
  }
  EXPECT_EQ(index.Query(query, 2).size(), 2u);
  EXPECT_TRUE(index.Query(query, 0).empty());
}

TEST(NearestNeighborTest, DistanceToMatchesQuery) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> corpus = SmallCorpus(labels);
  CousinProfileIndex index(corpus);
  Tree query = MustParse("((A,B),(C,D));", labels);
  auto matches = index.Query(query, 4);
  for (const TreeMatch& m : matches) {
    EXPECT_DOUBLE_EQ(index.DistanceTo(query, m.index), m.distance);
  }
}

TEST(NearestNeighborTest, FindsPerturbationsOfTheQuery) {
  // Corpus = one family of similar trees + unrelated trees; a family
  // member query must rank family members above the unrelated ones.
  Rng rng(88);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> family_taxa = MakeTaxa(10);
  std::vector<Tree> corpus;
  Tree base = RandomCoalescentTree(family_taxa, rng, labels);
  corpus.push_back(base);
  // Unrelated trees over a disjoint taxon set.
  std::vector<std::string> other_taxa;
  for (int i = 0; i < 10; ++i) {
    other_taxa.push_back("other" + std::to_string(i));
  }
  for (int i = 0; i < 5; ++i) {
    corpus.push_back(RandomCoalescentTree(other_taxa, rng, labels));
  }
  CousinProfileIndex index(corpus);
  auto matches = index.Query(base, 6);
  EXPECT_EQ(matches[0].index, 0);
  EXPECT_DOUBLE_EQ(matches[0].distance, 0.0);
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_DOUBLE_EQ(matches[i].distance, 1.0);  // no shared taxa
  }
}

TEST(NearestNeighborTest, AbstractionChangesRanking) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> corpus = SmallCorpus(labels);
  CousinProfileIndex labels_only(corpus,
                                 CousinItemAbstraction::kLabelsOnly);
  Tree query = MustParse("((A,B),(C,D));", labels);
  auto matches = labels_only.Query(query, 4);
  EXPECT_EQ(matches[0].index, 0);
  EXPECT_DOUBLE_EQ(matches[0].distance, 0.0);
}

}  // namespace
}  // namespace cousins
