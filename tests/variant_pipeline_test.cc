// The unified-miner pipeline contract: every variant (cousin, free,
// generalized, weighted) runs through the governed, degraded-mode,
// work-stealing, checkpointed forest drivers and produces results
// bit-identical to the sequential strict leg — across thread counts,
// checkpoint cadences and lenient mode; governance trips yield exact
// prefixes; checkpoints round-trip per variant and reject
// variant-option skew.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/item_io.h"
#include "core/multi_tree_mining.h"
#include "core/parallel_mining.h"
#include "core/quarantine.h"
#include "gen/yule_generator.h"
#include "tree/builder.h"
#include "util/governance.h"
#include "util/rng.h"

namespace cousins {
namespace {

constexpr MinerVariant kAllVariants[] = {
    MinerVariant::kCousin, MinerVariant::kFreeTree,
    MinerVariant::kGeneralized, MinerVariant::kWeighted};

std::vector<Tree> RandomForest(int count, uint64_t seed,
                               std::shared_ptr<LabelTable> labels,
                               int min_nodes = 10, int max_nodes = 30) {
  Rng rng(seed);
  YulePhylogenyOptions gen;
  gen.min_nodes = min_nodes;
  gen.max_nodes = max_nodes;
  gen.alphabet_size = 20;
  std::vector<Tree> trees;
  for (int i = 0; i < count; ++i) {
    trees.push_back(GenerateYulePhylogeny(gen, rng, labels));
  }
  return trees;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cousins_variant_" + name;
}

MultiTreeMiningOptions OptionsFor(MinerVariant variant) {
  MultiTreeMiningOptions options;
  options.variant = variant;
  options.min_support = 3;
  options.per_tree.twice_maxdist = 3;
  options.generalized.max_horizontal = 2;
  options.generalized.max_vertical = 2;
  options.weighted.bucket_width = 0.25;
  return options;
}

/// The acceptance criterion is a bit-identical rendered result, so
/// equivalence is compared on the variant's CSV rendering.
std::string RenderCsv(const LabelTable& labels,
                      const MultiTreeMiningRun& run, MinerVariant variant) {
  switch (variant) {
    case MinerVariant::kCousin:
    case MinerVariant::kFreeTree:
      return FrequentPairsToCsv(labels, run.pairs);
    case MinerVariant::kGeneralized:
      return GeneralizedPairsToCsv(labels, run.generalized);
    case MinerVariant::kWeighted:
      return WeightedPairsToCsv(labels, run.weighted);
  }
  return "";
}

class VariantPipeline : public ::testing::TestWithParam<MinerVariant> {};

TEST_P(VariantPipeline, ParallelCheckpointedLenientMatchSequentialBitForBit) {
  const MinerVariant variant = GetParam();
  auto labels = std::make_shared<LabelTable>();
  const std::vector<Tree> trees = RandomForest(60, 17, labels);
  const MultiTreeMiningOptions options = OptionsFor(variant);

  Result<MultiTreeMiningRun> reference = MineMultipleTreesGoverned(
      trees, options, MiningContext::Unlimited());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference->truncated);
  const std::string want = RenderCsv(*labels, *reference, variant);
  ASSERT_FALSE(want.empty());

  for (int32_t threads : {1, 3, 8}) {
    for (int32_t every : {0, 8}) {
      for (bool lenient : {false, true}) {
        MiningCheckpointConfig config;
        if (every > 0) {
          config.path = TempPath(
              MinerVariantName(variant) + "_" + std::to_string(threads) +
              "_" + std::to_string(every) + (lenient ? "_lenient" : ""));
          config.every_trees = every;
          std::remove(config.path.c_str());
        }
        QuarantineLedger ledger;
        DegradedModeConfig degraded;
        degraded.lenient = lenient;
        if (lenient) degraded.ledger = &ledger;
        Result<MultiTreeMiningRun> run = MineMultipleTreesCheckpointed(
            trees, options, MiningContext::Unlimited(), config, degraded,
            threads);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        EXPECT_FALSE(run->truncated);
        EXPECT_EQ(run->trees_processed, 60);
        EXPECT_EQ(RenderCsv(*labels, *run, variant), want)
            << MinerVariantName(variant) << " threads=" << threads
            << " every=" << every << " lenient=" << lenient;
        if (lenient) {
          EXPECT_TRUE(ledger.Entries().empty());
        }
        if (every > 0) std::remove(config.path.c_str());
      }
    }
  }
}

// A budget trip must leave a well-formed tally over an exact prefix of
// the forest: re-mining that prefix from scratch reproduces the
// partial result bit for bit — for every variant.
TEST_P(VariantPipeline, GovernanceTripYieldsExactPrefix) {
  const MinerVariant variant = GetParam();
  auto labels = std::make_shared<LabelTable>();
  const std::vector<Tree> trees = RandomForest(80, 31, labels);
  const MultiTreeMiningOptions options = OptionsFor(variant);

  ResourceBudget budget;
  budget.max_pair_map_entries = 60;
  MiningContext tight;
  tight.set_budget(budget);
  Result<MultiTreeMiningRun> tripped = MineMultipleTreesParallelGoverned(
      trees, options, tight, /*num_threads=*/1);
  ASSERT_TRUE(tripped.ok()) << tripped.status().ToString();
  ASSERT_TRUE(tripped->truncated) << MinerVariantName(variant);
  EXPECT_EQ(tripped->termination.code(), StatusCode::kResourceExhausted);
  ASSERT_LT(tripped->trees_processed, 80);

  const std::vector<Tree> prefix(
      trees.begin(), trees.begin() + tripped->trees_processed);
  Result<MultiTreeMiningRun> replay = MineMultipleTreesGoverned(
      prefix, options, MiningContext::Unlimited());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(RenderCsv(*labels, *tripped, variant),
            RenderCsv(*labels, *replay, variant))
      << MinerVariantName(variant);
}

// Kill → resume drill on the free variant: trip a checkpointed run on
// a budget (the "kill"), verify the checkpoint is a restorable exact
// prefix, then resume without the budget and match the uninterrupted
// baseline bit for bit.
TEST(VariantPipelineDrill, FreeVariantKillResumeMatchesBaseline) {
  auto labels = std::make_shared<LabelTable>();
  const std::vector<Tree> trees = RandomForest(100, 53, labels);
  const MultiTreeMiningOptions options = OptionsFor(MinerVariant::kFreeTree);
  Result<MultiTreeMiningRun> baseline = MineMultipleTreesGoverned(
      trees, options, MiningContext::Unlimited());
  ASSERT_TRUE(baseline.ok());

  const std::string path = TempPath("free_kill_resume");
  std::remove(path.c_str());
  ResourceBudget budget;
  budget.max_pair_map_entries = 60;
  MiningContext tight;
  tight.set_budget(budget);
  MiningCheckpointConfig config;
  config.path = path;
  config.every_trees = 8;
  Result<MultiTreeMiningRun> tripped = MineMultipleTreesCheckpointed(
      trees, options, tight, config, /*num_threads=*/1);
  ASSERT_TRUE(tripped.ok()) << tripped.status().ToString();
  ASSERT_TRUE(tripped->truncated);

  // What the "killed" process left on disk restores cleanly and covers
  // exactly the trees the run reported.
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  Result<MultiTreeMiner> state =
      MultiTreeMiner::RestoreFromCheckpoint(*bytes, options, labels);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->tree_count(), tripped->trees_processed);

  config.resume = true;
  Result<MultiTreeMiningRun> resumed = MineMultipleTreesCheckpointed(
      trees, options, MiningContext::Unlimited(), config, /*num_threads=*/3);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->truncated);
  EXPECT_EQ(resumed->trees_processed, 100);
  EXPECT_EQ(FrequentPairsToCsv(*labels, resumed->pairs),
            FrequentPairsToCsv(*labels, baseline->pairs));
  std::remove(path.c_str());
}

TEST_P(VariantPipeline, CheckpointRoundTripsPerVariant) {
  const MinerVariant variant = GetParam();
  auto labels = std::make_shared<LabelTable>();
  const std::vector<Tree> trees = RandomForest(12, 71, labels);
  const MultiTreeMiningOptions options = OptionsFor(variant);
  MultiTreeMiner miner(options);
  for (const Tree& tree : trees) miner.AddTree(tree);

  const std::string bytes = miner.SerializeCheckpoint();
  Result<MultiTreeMiner> restored =
      MultiTreeMiner::RestoreFromCheckpoint(bytes, options, labels);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->tree_count(), 12);
  // Re-serialization is the strongest equality: every tally, aux word
  // and option byte must have survived.
  EXPECT_EQ(restored->SerializeCheckpoint(), bytes);
  MultiTreeMiningRun want, got;
  miner.ExtractResults(&want);
  restored->ExtractResults(&got);
  EXPECT_EQ(RenderCsv(*labels, got, variant),
            RenderCsv(*labels, want, variant));
}

TEST(VariantCheckpointTest, VariantOptionSkewIsFailedPrecondition) {
  auto labels = std::make_shared<LabelTable>();
  const std::vector<Tree> trees = RandomForest(6, 83, labels);

  // A cousin checkpoint must not restore into a generalized run...
  MultiTreeMiner cousin(OptionsFor(MinerVariant::kCousin));
  for (const Tree& tree : trees) cousin.AddTree(tree);
  const std::string cousin_bytes = cousin.SerializeCheckpoint();
  Result<MultiTreeMiner> as_generalized =
      MultiTreeMiner::RestoreFromCheckpoint(
          cousin_bytes, OptionsFor(MinerVariant::kGeneralized), labels);
  ASSERT_FALSE(as_generalized.ok());
  EXPECT_EQ(as_generalized.status().code(),
            StatusCode::kFailedPrecondition);

  // ...nor a weighted checkpoint into a run with a different bucket
  // width (the buckets would silently mean different distances).
  MultiTreeMiner weighted(OptionsFor(MinerVariant::kWeighted));
  for (const Tree& tree : trees) weighted.AddTree(tree);
  const std::string weighted_bytes = weighted.SerializeCheckpoint();
  MultiTreeMiningOptions other_width = OptionsFor(MinerVariant::kWeighted);
  other_width.weighted.bucket_width = 0.5;
  Result<MultiTreeMiner> skewed = MultiTreeMiner::RestoreFromCheckpoint(
      weighted_bytes, other_width, labels);
  ASSERT_FALSE(skewed.ok());
  EXPECT_EQ(skewed.status().code(), StatusCode::kFailedPrecondition);

  // Same-variant, same-knob restore still works (control).
  Result<MultiTreeMiner> control = MultiTreeMiner::RestoreFromCheckpoint(
      weighted_bytes, OptionsFor(MinerVariant::kWeighted), labels);
  EXPECT_TRUE(control.ok()) << control.status().ToString();
}

TEST(VariantValidationTest, MisconfiguredVariantsAreInvalidArgument) {
  auto labels = std::make_shared<LabelTable>();
  const std::vector<Tree> trees = RandomForest(4, 91, labels);

  MultiTreeMiningOptions bad = OptionsFor(MinerVariant::kGeneralized);
  bad.ignore_distance = true;  // "@" has no meaning for (h, v) items
  Result<MultiTreeMiningRun> run = MineMultipleTreesGoverned(
      trees, bad, MiningContext::Unlimited());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);

  bad = OptionsFor(MinerVariant::kGeneralized);
  bad.generalized.max_horizontal = 0x10000;  // overflows the aux half
  EXPECT_EQ(ValidateVariantOptions(bad).code(),
            StatusCode::kInvalidArgument);
  bad.generalized.max_horizontal = -1;
  EXPECT_EQ(ValidateVariantOptions(bad).code(),
            StatusCode::kInvalidArgument);

  bad = OptionsFor(MinerVariant::kWeighted);
  bad.weighted.bucket_width = 0.0;
  EXPECT_EQ(ValidateVariantOptions(bad).code(),
            StatusCode::kInvalidArgument);
  bad.weighted.bucket_width = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ValidateVariantOptions(bad).code(),
            StatusCode::kInvalidArgument);
  bad.weighted.bucket_width = 0.25;
  bad.ignore_distance = true;  // "@" is undefined for bucketed items too
  EXPECT_EQ(ValidateVariantOptions(bad).code(),
            StatusCode::kInvalidArgument);
}

// Degraded-mode integration of the weighted bugfix: one tree with a
// NaN branch length fails the strict run whole, while a lenient run
// quarantines exactly that tree and matches the strict run over the
// healthy subset.
TEST(VariantDegradedTest, LenientQuarantinesNonFiniteWeightedTree) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<Tree> trees = RandomForest(20, 101, labels);
  TreeBuilder b(labels);
  NodeId r = b.AddRoot("r");
  b.AddChild(r, "poison", std::numeric_limits<double>::quiet_NaN());
  b.AddChild(r, "poison2", 1.0);
  const std::vector<Tree> healthy = trees;
  trees.insert(trees.begin() + 10, std::move(b).Build());

  const MultiTreeMiningOptions options = OptionsFor(MinerVariant::kWeighted);
  Result<MultiTreeMiningRun> strict = MineMultipleTreesParallelGoverned(
      trees, options, MiningContext::Unlimited(), /*num_threads=*/1);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);

  QuarantineLedger ledger;
  DegradedModeConfig degraded;
  degraded.lenient = true;
  degraded.ledger = &ledger;
  Result<MultiTreeMiningRun> lenient = MineMultipleTreesParallelGoverned(
      trees, options, MiningContext::Unlimited(), degraded,
      /*num_threads=*/1);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  ASSERT_EQ(ledger.Entries().size(), 1u);
  EXPECT_EQ(ledger.Entries()[0].tree_index, 10);

  Result<MultiTreeMiningRun> want = MineMultipleTreesGoverned(
      healthy, options, MiningContext::Unlimited());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(WeightedPairsToCsv(*labels, lenient->weighted),
            WeightedPairsToCsv(*labels, want->weighted));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantPipeline,
                         ::testing::ValuesIn(kAllVariants),
                         [](const auto& info) {
                           return MinerVariantName(info.param);
                         });

}  // namespace
}  // namespace cousins
