// Full-enumeration fault sweep over the checkpointed mining pipeline:
// parse a Newick forest, mine it with the checkpointed parallel driver,
// render CSV. A disarmed discovery run registers every fault site on
// the pipeline's path; the sweep then fires each site in turn (k-th hit
// for k in {1, 2}) and asserts the three-way contract:
//
//   * the process never crashes, aborts or corrupts state — every
//     injected fault surfaces as a clean outcome (complete run,
//     governance trip, or hard error Status);
//   * a complete run under arming is bit-identical to the baseline
//     (a fault whose k-th hit never arrives must perturb nothing);
//   * after the fault, a disarmed resume from whatever checkpoint
//     survived reproduces the baseline output exactly.
//
// Under the default build this sweeps the always-compiled cold sites
// (worker bodies, checkpoint I/O); under -DCOUSINS_FAULTS=ON the
// hot-path sites (paircount.grow, multiminer.fold/merge, newick.alloc)
// join the enumeration automatically via site self-registration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/item_io.h"
#include "core/parallel_mining.h"
#include "gen/yule_generator.h"
#include "tree/newick.h"
#include "util/fault_injection.h"
#include "util/governance.h"
#include "util/rng.h"

namespace cousins {
namespace {

using fault::FaultRegistry;

/// The pipeline's source input: a ';'-separated Newick forest, so every
/// run exercises parsing (and its fault sites) from scratch.
std::string ForestText() {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(4242);
  YulePhylogenyOptions gen;
  gen.min_nodes = 10;
  gen.max_nodes = 25;
  gen.alphabet_size = 40;
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += ToNewick(GenerateYulePhylogeny(gen, rng, labels));
    text += ";\n";
  }
  return text;
}

struct PipelineOutcome {
  Status status;
  bool truncated = false;
  std::string csv;
};

/// Parse -> checkpointed mine (3 workers, checkpoint every 16 trees) ->
/// CSV. Any injected fault must surface through `status`/`truncated`,
/// never as a crash.
PipelineOutcome RunPipeline(const std::string& text,
                            const std::string& checkpoint_path,
                            bool resume) {
  PipelineOutcome outcome;
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> forest = ParseNewickForest(text, labels);
  if (!forest.ok()) {
    outcome.status = forest.status();
    return outcome;
  }
  MultiTreeMiningOptions options;
  options.min_support = 2;
  MiningCheckpointConfig config;
  config.path = checkpoint_path;
  config.every_trees = 16;
  config.resume = resume;
  Result<MultiTreeMiningRun> run = MineMultipleTreesCheckpointed(
      *forest, options, MiningContext::Unlimited(), config, 3);
  if (!run.ok()) {
    outcome.status = run.status();
    return outcome;
  }
  outcome.truncated = run->truncated;
  if (run->truncated) outcome.status = run->termination;
  outcome.csv = FrequentPairsToCsv(*labels, run->pairs);
  return outcome;
}

TEST(FaultSweepTest, EveryRegisteredSiteFailsCleanAndResumesToBaseline) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  const std::string text = ForestText();
  const std::string path = ::testing::TempDir() + "cousins_sweep_ckpt";

  // Discovery: one disarmed run registers every site on the pipeline's
  // path and pins the baseline output.
  std::remove(path.c_str());
  const PipelineOutcome baseline = RunPipeline(text, path, false);
  ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
  ASSERT_FALSE(baseline.truncated);
  ASSERT_FALSE(baseline.csv.empty());

  const std::vector<std::string> sites = registry.SiteNames();
  // The always-compiled cold sites must be in the enumeration in every
  // build; a rename here that breaks discovery fails loudly.
  for (const char* expected :
       {"parallel.worker", "checkpoint.open", "checkpoint.write",
        "checkpoint.flush", "checkpoint.rename"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "site " << expected << " was not discovered";
  }
#if COUSINS_FAULTS_ENABLED
  for (const char* expected : {"paircount.grow", "multiminer.fold",
                               "multiminer.merge", "newick.alloc"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "hot-path site " << expected << " was not discovered";
  }
#endif

  for (const std::string& site : sites) {
    for (uint64_t k : {uint64_t{1}, uint64_t{2}}) {
      SCOPED_TRACE(site + " k=" + std::to_string(k));
      std::remove(path.c_str());
      registry.DisarmAll();
      registry.Arm(site, k);
      const PipelineOutcome faulted = RunPipeline(text, path, false);
      registry.DisarmAll();

      if (faulted.status.ok() && !faulted.truncated) {
        // The armed hit never arrived (or the site tolerates it): the
        // output must be untouched.
        EXPECT_EQ(faulted.csv, baseline.csv);
      } else if (faulted.truncated) {
        EXPECT_TRUE(IsGovernanceTrip(faulted.status))
            << faulted.status.ToString();
      } else {
        // Hard failure: contained into a diagnosed error — Internal
        // for worker faults, Unavailable for transient I/O sites.
        EXPECT_TRUE(faulted.status.code() == StatusCode::kInternal ||
                    faulted.status.code() == StatusCode::kUnavailable)
            << faulted.status.ToString();
        EXPECT_FALSE(faulted.status.message().empty());
      }

      // Crash-recovery drill: resume disarmed from whatever checkpoint
      // survived the fault (possibly none) and land on the baseline.
      const PipelineOutcome recovered = RunPipeline(text, path, true);
      ASSERT_TRUE(recovered.status.ok()) << recovered.status.ToString();
      EXPECT_FALSE(recovered.truncated);
      EXPECT_EQ(recovered.csv, baseline.csv);
    }
  }

  // checkpoint.read only sits on the resume path, so it joins the
  // registry during the recovery drills above; sweep it explicitly.
  ASSERT_TRUE(
      WriteFileAtomic(path, "placeholder — resume reads then fails").ok());
  registry.Arm("checkpoint.read", 1);
  const PipelineOutcome unreadable = RunPipeline(text, path, true);
  registry.DisarmAll();
  ASSERT_FALSE(unreadable.status.ok());
  EXPECT_EQ(unreadable.status.code(), StatusCode::kUnavailable);
  std::remove(path.c_str());
  const PipelineOutcome fresh = RunPipeline(text, path, true);
  ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
  EXPECT_EQ(fresh.csv, baseline.csv);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cousins
