// Full-enumeration fault sweep over the checkpointed mining pipeline:
// parse a Newick forest, mine it with the checkpointed parallel driver,
// render CSV. A disarmed discovery run registers every fault site on
// the pipeline's path; the sweep then fires each site in turn (k-th hit
// for k in {1, 2}) and asserts the three-way contract:
//
//   * the process never crashes, aborts or corrupts state — every
//     injected fault surfaces as a clean outcome (complete run,
//     governance trip, or hard error Status);
//   * a complete run under arming is bit-identical to the baseline
//     (a fault whose k-th hit never arrives must perturb nothing);
//   * after the fault, a disarmed resume from whatever checkpoint
//     survived reproduces the baseline output exactly.
//
// Under the default build this sweeps the always-compiled cold sites
// (worker bodies, checkpoint I/O); under -DCOUSINS_FAULTS=ON the
// hot-path sites (paircount.grow, multiminer.fold/merge, newick.alloc)
// join the enumeration automatically via site self-registration.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/item_io.h"
#include "core/parallel_mining.h"
#include "gen/yule_generator.h"
#include "svc/daemon.h"
#include "svc/protocol.h"
#include "tree/newick.h"
#include "util/fault_injection.h"
#include "util/governance.h"
#include "util/rng.h"

namespace cousins {
namespace {

using fault::FaultRegistry;

/// The pipeline's source input: a ';'-separated Newick forest, so every
/// run exercises parsing (and its fault sites) from scratch.
std::string ForestText() {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(4242);
  YulePhylogenyOptions gen;
  gen.min_nodes = 10;
  gen.max_nodes = 25;
  gen.alphabet_size = 40;
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += ToNewick(GenerateYulePhylogeny(gen, rng, labels));
    text += ";\n";
  }
  return text;
}

struct PipelineOutcome {
  Status status;
  bool truncated = false;
  std::string csv;
};

/// Parse -> checkpointed mine (3 workers, checkpoint every 16 trees) ->
/// CSV. Any injected fault must surface through `status`/`truncated`,
/// never as a crash.
PipelineOutcome RunPipeline(const std::string& text,
                            const std::string& checkpoint_path,
                            bool resume) {
  PipelineOutcome outcome;
  auto labels = std::make_shared<LabelTable>();
  Result<std::vector<Tree>> forest = ParseNewickForest(text, labels);
  if (!forest.ok()) {
    outcome.status = forest.status();
    return outcome;
  }
  MultiTreeMiningOptions options;
  options.min_support = 2;
  MiningCheckpointConfig config;
  config.path = checkpoint_path;
  config.every_trees = 16;
  config.resume = resume;
  Result<MultiTreeMiningRun> run = MineMultipleTreesCheckpointed(
      *forest, options, MiningContext::Unlimited(), config, 3);
  if (!run.ok()) {
    outcome.status = run.status();
    return outcome;
  }
  outcome.truncated = run->truncated;
  if (run->truncated) outcome.status = run->termination;
  outcome.csv = FrequentPairsToCsv(*labels, run->pairs);
  return outcome;
}

TEST(FaultSweepTest, EveryRegisteredSiteFailsCleanAndResumesToBaseline) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  const std::string text = ForestText();
  const std::string path = ::testing::TempDir() + "cousins_sweep_ckpt";

  // Discovery: one disarmed run registers every site on the pipeline's
  // path and pins the baseline output.
  std::remove(path.c_str());
  const PipelineOutcome baseline = RunPipeline(text, path, false);
  ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
  ASSERT_FALSE(baseline.truncated);
  ASSERT_FALSE(baseline.csv.empty());

  const std::vector<std::string> sites = registry.SiteNames();
  // The always-compiled cold sites must be in the enumeration in every
  // build; a rename here that breaks discovery fails loudly.
  for (const char* expected :
       {"parallel.worker", "checkpoint.open", "checkpoint.write",
        "checkpoint.flush", "checkpoint.rename"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "site " << expected << " was not discovered";
  }
#if COUSINS_FAULTS_ENABLED
  for (const char* expected : {"paircount.grow", "multiminer.fold",
                               "multiminer.merge", "newick.alloc"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "hot-path site " << expected << " was not discovered";
  }
#endif

  for (const std::string& site : sites) {
    for (uint64_t k : {uint64_t{1}, uint64_t{2}}) {
      SCOPED_TRACE(site + " k=" + std::to_string(k));
      std::remove(path.c_str());
      registry.DisarmAll();
      registry.Arm(site, k);
      const PipelineOutcome faulted = RunPipeline(text, path, false);
      registry.DisarmAll();

      if (faulted.status.ok() && !faulted.truncated) {
        // The armed hit never arrived (or the site tolerates it): the
        // output must be untouched.
        EXPECT_EQ(faulted.csv, baseline.csv);
      } else if (faulted.truncated) {
        EXPECT_TRUE(IsGovernanceTrip(faulted.status))
            << faulted.status.ToString();
      } else {
        // Hard failure: contained into a diagnosed error — Internal
        // for worker faults, Unavailable for transient I/O sites.
        EXPECT_TRUE(faulted.status.code() == StatusCode::kInternal ||
                    faulted.status.code() == StatusCode::kUnavailable)
            << faulted.status.ToString();
        EXPECT_FALSE(faulted.status.message().empty());
      }

      // Crash-recovery drill: resume disarmed from whatever checkpoint
      // survived the fault (possibly none) and land on the baseline.
      const PipelineOutcome recovered = RunPipeline(text, path, true);
      ASSERT_TRUE(recovered.status.ok()) << recovered.status.ToString();
      EXPECT_FALSE(recovered.truncated);
      EXPECT_EQ(recovered.csv, baseline.csv);
    }
  }

  // checkpoint.read only sits on the resume path, so it joins the
  // registry during the recovery drills above; sweep it explicitly.
  ASSERT_TRUE(
      WriteFileAtomic(path, "placeholder — resume reads then fails").ok());
  registry.Arm("checkpoint.read", 1);
  const PipelineOutcome unreadable = RunPipeline(text, path, true);
  registry.DisarmAll();
  ASSERT_FALSE(unreadable.status.ok());
  EXPECT_EQ(unreadable.status.code(), StatusCode::kUnavailable);
  std::remove(path.c_str());
  const PipelineOutcome fresh = RunPipeline(text, path, true);
  ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
  EXPECT_EQ(fresh.csv, baseline.csv);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------------
// Daemon sweep: the same full-enumeration discipline over the resident
// service's sites (svc.accept, svc.read, svc.write, svc.wal.append,
// svc.swap), exercised through a real Unix-socket serve loop. The
// contract per armed site: the daemon never crashes, a dropped or
// refused request surfaces as a failed client call (EOF or a clean ERR
// frame), HEALTH stays answerable, and a disarmed restart over the WAL
// recovers to a batch set S with acked ⊆ S ⊆ attempted — an
// acknowledged batch is always durable; an unacknowledged one may be
// (the WAL ambiguity window), but nothing else ever appears.

/// One client request against the serving daemon. Any transport
/// failure (connection refused/dropped by an injected fault) comes
/// back as an error Status, never a crash.
Result<svc::ParsedResponse> SvcCall(const std::string& socket_path,
                                    const std::string& body) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // The serve thread binds asynchronously; retry briefly.
  bool connected = false;
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      connected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!connected) {
    close(fd);
    return Status::Unavailable("cannot connect");
  }
  Status sent = svc::WriteFrame(fd, body);
  if (!sent.ok()) {
    close(fd);
    return sent;
  }
  std::string response_body;
  Result<bool> got = svc::ReadFrame(fd, &response_body);
  close(fd);
  if (!got.ok()) return got.status();
  if (!*got) return Status::Unavailable("connection dropped");
  return svc::ParseResponse(response_body);
}

struct SvcSweepOutcome {
  Status start;              // service construction/replay outcome
  std::vector<bool> acked;   // per attempted batch: OK ack received
  bool health_answered = false;
};

/// Starts the daemon on `wal`, serves it on `socket_path`, pushes
/// `batches` through real client connections, checks HEALTH liveness
/// (with one retry — an armed stream fault may eat one connection),
/// then abandons the service without a drain (kill -9 stand-in).
SvcSweepOutcome RunSvcPipeline(const std::string& wal,
                               const std::string& socket_path,
                               const std::vector<std::string>& batches) {
  SvcSweepOutcome outcome;
  svc::ServiceConfig config;
  config.mining.min_support = 2;
  config.wal_path = wal;
  Result<std::unique_ptr<svc::CousinService>> service =
      svc::CousinService::Start(config);
  outcome.start = service.status();
  if (!service.ok()) return outcome;

  std::atomic<bool> stop{false};
  std::thread server([&] {
    Status served = svc::RunUnixServer(socket_path, **service, &stop);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });
  for (const std::string& batch : batches) {
    Result<svc::ParsedResponse> response =
        SvcCall(socket_path, "INGEST\n" + batch);
    outcome.acked.push_back(response.ok() && response->ok);
  }
  for (int attempt = 0; attempt < 2 && !outcome.health_answered; ++attempt) {
    Result<svc::ParsedResponse> health = SvcCall(socket_path, "HEALTH\n");
    outcome.health_answered = health.ok() && health->ok;
  }
  stop.store(true, std::memory_order_relaxed);
  server.join();
  return outcome;
}

/// The oracle for a candidate surviving batch set: a fresh daemon fed
/// exactly those batches, queried in-process. Daemon-vs-daemon, so the
/// label-interning order matches what WAL replay produces.
std::string SvcOracleCsv(const std::vector<std::string>& batches) {
  const std::string wal = ::testing::TempDir() + "svc_sweep_oracle_wal";
  std::filesystem::remove_all(wal);
  svc::ServiceConfig config;
  config.mining.min_support = 2;
  config.wal_path = wal;
  Result<std::unique_ptr<svc::CousinService>> service =
      svc::CousinService::Start(config);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  for (const std::string& batch : batches) {
    svc::Request ingest;
    ingest.verb = "INGEST";
    ingest.payload = batch;
    EXPECT_TRUE((*service)->Handle(ingest).status.ok());
  }
  svc::Request query;
  query.verb = "QUERY";
  query.args = {"frequent-pairs"};
  const svc::Response response = (*service)->Handle(query);
  EXPECT_TRUE(response.status.ok());
  service->reset();
  std::filesystem::remove_all(wal);
  return response.payload;
}

TEST(FaultSweepTest, SvcSitesFailCleanAndRecoverToAckedState) {
  // An injected stream fault can close the server side mid-request;
  // the resulting client write must surface as EPIPE, not kill us.
  std::signal(SIGPIPE, SIG_IGN);
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  const std::string wal = ::testing::TempDir() + "svc_sweep_wal";
  const std::string socket_path = ::testing::TempDir() + "svc_sweep.sock";
  auto labels = std::make_shared<LabelTable>();
  Rng rng(99);
  YulePhylogenyOptions gen;
  gen.min_nodes = 8;
  gen.max_nodes = 14;
  gen.alphabet_size = 25;
  std::vector<std::string> batches(2);
  for (std::string& batch : batches) {
    for (int i = 0; i < 4; ++i) {
      batch += ToNewick(GenerateYulePhylogeny(gen, rng, labels)) + ";\n";
    }
  }

  // Discovery: a disarmed run over the real socket registers every
  // site on the daemon's path — including the errno-typed fs_ops
  // sub-sites of every storage operation the segmented store touches.
  std::filesystem::remove_all(wal);
  const SvcSweepOutcome baseline =
      RunSvcPipeline(wal, socket_path, batches);
  ASSERT_TRUE(baseline.start.ok()) << baseline.start.ToString();
  for (const bool acked : baseline.acked) ASSERT_TRUE(acked);
  ASSERT_TRUE(baseline.health_answered);
  // A second disarmed run over the surviving store walks the recovery
  // path too (manifest + segment reads), so its sites join the sweep.
  const SvcSweepOutcome rerun = RunSvcPipeline(wal, socket_path, batches);
  ASSERT_TRUE(rerun.start.ok()) << rerun.start.ToString();

  const std::vector<std::string> sites = registry.SiteNames();
  std::vector<std::string> svc_sites;
  for (const std::string& site : sites) {
    if (site.rfind("svc.", 0) == 0) svc_sites.push_back(site);
  }
  for (const char* expected :
       {"svc.accept", "svc.read", "svc.write", "svc.swap", "svc.wal.open",
        "svc.wal.dirsync", "svc.wal.append", "svc.wal.append.enospc",
        "svc.wal.append.eio", "svc.wal.append.short", "svc.wal.append.torn",
        "svc.wal.fsync", "svc.wal.fsync.eio", "svc.manifest.write",
        "svc.manifest.flush", "svc.manifest.rename", "svc.manifest.read"}) {
    EXPECT_NE(std::find(svc_sites.begin(), svc_sites.end(), expected),
              svc_sites.end())
        << "site " << expected << " was not discovered";
  }

  // The admissible-subset oracle answers are fault-independent:
  // compute each candidate once up front instead of per armed site.
  std::vector<std::string> candidates(1u << batches.size());
  for (uint32_t mask = 0; mask < candidates.size(); ++mask) {
    std::vector<std::string> subset;
    for (size_t i = 0; i < batches.size(); ++i) {
      if ((mask >> i) & 1) subset.push_back(batches[i]);
    }
    candidates[mask] = SvcOracleCsv(subset);
  }

  for (const std::string& site : svc_sites) {
    for (uint64_t k : {uint64_t{1}, uint64_t{2}}) {
      SCOPED_TRACE(site + " k=" + std::to_string(k));
      std::filesystem::remove_all(wal);
      registry.DisarmAll();
      registry.Arm(site, k);
      const SvcSweepOutcome faulted =
          RunSvcPipeline(wal, socket_path, batches);
      registry.DisarmAll();

      std::vector<bool> acked = faulted.acked;
      acked.resize(batches.size(), false);
      if (faulted.start.ok()) {
        // Liveness under faults: HEALTH answered within one retry even
        // though the armed site may have eaten a connection.
        EXPECT_TRUE(faulted.health_answered);
      } else {
        // The fault landed during Start (e.g. the header append): a
        // clean refusal, nothing served, nothing acked.
        EXPECT_EQ(faulted.start.code(), StatusCode::kUnavailable)
            << faulted.start.ToString();
      }

      // Recovery: a disarmed restart must succeed (the only crash
      // artifact these faults can leave is a torn, unacknowledged
      // tail) and land on a batch set between acked and attempted.
      svc::ServiceConfig config;
      config.mining.min_support = 2;
      config.wal_path = wal;
      Result<std::unique_ptr<svc::CousinService>> revived =
          svc::CousinService::Start(config);
      ASSERT_TRUE(revived.ok()) << revived.status().ToString();
      svc::Request query;
      query.verb = "QUERY";
      query.args = {"frequent-pairs"};
      const svc::Response recovered = (*revived)->Handle(query);
      ASSERT_TRUE(recovered.status.ok());
      revived->reset();

      bool matched = false;
      std::string expectations;
      // Candidate subsets: every S with acked ⊆ S ⊆ attempted, in
      // batch order (an unacked batch may have reached the WAL before
      // the fault ate its acknowledgement).
      const size_t n = batches.size();
      for (uint32_t mask = 0; mask < (1u << n) && !matched; ++mask) {
        bool admissible = true;
        for (size_t i = 0; i < n; ++i) {
          if (acked[i] && !((mask >> i) & 1)) admissible = false;
        }
        if (!admissible) continue;
        expectations += candidates[mask] + "---\n";
        matched = recovered.payload == candidates[mask];
      }
      EXPECT_TRUE(matched)
          << "recovered state matches no admissible batch set.\ngot:\n"
          << recovered.payload << "candidates:\n"
          << expectations;
    }
  }
  std::filesystem::remove_all(wal);
}

}  // namespace
}  // namespace cousins
