#include <gtest/gtest.h>

#include "tree/canonical.h"
#include "tree/edit.h"
#include "tree/newick.h"

namespace cousins {
namespace {

NodeId Find(const Tree& t, const std::string& name) {
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.has_label(v) && t.label_name(v) == name) return v;
  }
  return kNoNode;
}

TEST(SwapSubtreesTest, SwapsLeaves) {
  auto labels = std::make_shared<LabelTable>();
  Tree t = ParseNewick("((A,B)x,(C,D)y)r;", labels).value();
  Result<Tree> swapped = SwapSubtrees(t, Find(t, "A"), Find(t, "C"));
  ASSERT_TRUE(swapped.ok());
  Tree expected = ParseNewick("((C,B)x,(A,D)y)r;", labels).value();
  EXPECT_TRUE(UnorderedIsomorphic(*swapped, expected));
}

TEST(SwapSubtreesTest, SwapsInternalSubtrees) {
  auto labels = std::make_shared<LabelTable>();
  Tree t = ParseNewick("(((A,B)ab,C)l,(D,(E,F)ef)m)r;", labels).value();
  Result<Tree> swapped = SwapSubtrees(t, Find(t, "ab"), Find(t, "ef"));
  ASSERT_TRUE(swapped.ok());
  Tree expected = ParseNewick("(((E,F)ef,C)l,(D,(A,B)ab)m)r;", labels).value();
  EXPECT_TRUE(UnorderedIsomorphic(*swapped, expected));
}

TEST(SwapSubtreesTest, PreservesSizeAndLabels) {
  Tree t = ParseNewick("((A,B)x,(C,(D,E)de)y)r;").value();
  Result<Tree> swapped = SwapSubtrees(t, Find(t, "B"), Find(t, "de"));
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->size(), t.size());
  EXPECT_EQ(swapped->leaf_count(), t.leaf_count());
  // B is now under y's old position; D,E under x.
  Tree expected = ParseNewick(
      "((A,(D,E)de)x,(C,B)y)r;", t.labels_ptr()).value();
  EXPECT_TRUE(UnorderedIsomorphic(*swapped, expected));
}

TEST(SwapSubtreesTest, RejectsAncestorPairs) {
  Tree t = ParseNewick("((A,B)x,C)r;").value();
  EXPECT_FALSE(SwapSubtrees(t, Find(t, "x"), Find(t, "A")).ok());
  EXPECT_FALSE(SwapSubtrees(t, Find(t, "A"), Find(t, "x")).ok());
}

TEST(SwapSubtreesTest, RejectsRootAndSelf) {
  Tree t = ParseNewick("((A,B)x,C)r;").value();
  EXPECT_FALSE(SwapSubtrees(t, 0, Find(t, "A")).ok());
  EXPECT_FALSE(SwapSubtrees(t, Find(t, "A"), Find(t, "A")).ok());
  EXPECT_FALSE(SwapSubtrees(t, -1, Find(t, "A")).ok());
}

TEST(SwapSubtreesTest, DoubleSwapIsIdentity) {
  Tree t = ParseNewick("((A,B)x,(C,D)y)r;").value();
  Tree once = SwapSubtrees(t, Find(t, "A"), Find(t, "D")).value();
  Tree twice =
      SwapSubtrees(once, Find(once, "A"), Find(once, "D")).value();
  EXPECT_TRUE(UnorderedIsomorphic(t, twice));
}

TEST(SwapSubtreesTest, BranchLengthsTravelWithSubtrees) {
  Tree t = ParseNewick("((A:1,B:2)x:3,(C:4,D:5)y:6)r;").value();
  Tree swapped = SwapSubtrees(t, Find(t, "A"), Find(t, "C")).value();
  EXPECT_DOUBLE_EQ(swapped.branch_length(Find(swapped, "A")), 1.0);
  EXPECT_DOUBLE_EQ(swapped.branch_length(Find(swapped, "C")), 4.0);
}

}  // namespace
}  // namespace cousins
