// Storage-engine fault drills for the segmented WAL (svc/wal_store.h)
// and the daemon's disk-failure discipline (svc/daemon.h):
//
//   * an errno-exact sweep over the fs_ops fault families on the
//     daemon's storage path (ENOSPC, EIO, short write, torn write,
//     failed fsync), asserting per armed fault that the daemon never
//     crashes, every refusal is a clean kUnavailable, and a disarmed
//     restart recovers a batch set S with acked ⊆ S ⊆ attempted;
//   * the fsyncgate rule: a failed fsync poisons its segment — the
//     daemon never retries the fsync and acknowledges, it goes
//     read-only until compaction discards the segment;
//   * read-only degraded mode: mutations shed with a retry-after while
//     QUERY/HEALTH keep serving, and a successful COMPACT exits;
//   * WAL edge shapes on disk: zero-byte and header-only final
//     segments, an empty segment mid-list, damaged sealed segments,
//     header/filename sequence mismatches;
//   * compaction vs. crash: a failure before the manifest swap leaves
//     the prior state fully intact; orphans from a failure after the
//     commit point are retired by the next open;
//   * the dir-fsync-after-create contract on both journals (the WAL
//     segment and the shard-lease ledger).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "core/checkpoint.h"
#include "core/item_io.h"
#include "gen/yule_generator.h"
#include "proc/lease_ledger.h"
#include "svc/daemon.h"
#include "svc/protocol.h"
#include "svc/wal.h"
#include "svc/wal_store.h"
#include "tree/newick.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cousins {
namespace {

using fault::FaultRegistry;
using svc::CousinService;
using svc::Request;
using svc::Response;
using svc::ServiceConfig;
using svc::SvcWal;
using svc::SvcWalRecord;
using svc::WalRecovery;
using svc::WalStore;
using svc::WalStoreConfig;

constexpr uint32_t kFp = 0xC0FFEE;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void RemoveStore(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
}

std::string MakeBatch(uint64_t seed, int trees) {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(seed);
  YulePhylogenyOptions gen;
  gen.min_nodes = 8;
  gen.max_nodes = 14;
  gen.alphabet_size = 25;
  std::string text;
  for (int i = 0; i < trees; ++i) {
    text += ToNewick(GenerateYulePhylogeny(gen, rng, labels));
    text += ";\n";
  }
  return text;
}

Request MakeRequest(std::string verb, std::vector<std::string> args = {},
                    std::string payload = "") {
  Request request;
  request.verb = std::move(verb);
  request.args = std::move(args);
  request.payload = std::move(payload);
  return request;
}

ServiceConfig BaseConfig(const std::string& wal_path) {
  ServiceConfig config;
  config.mining.min_support = 2;
  config.wal_path = wal_path;
  return config;
}

std::string QueryFrequent(CousinService& service) {
  Response response =
      service.Handle(MakeRequest("QUERY", {"frequent-pairs"}));
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  return response.payload;
}

/// Daemon-vs-daemon oracle: the answer a fresh daemon gives over
/// exactly `batches` (same label-interning order WAL replay produces).
std::string OracleCsv(const std::vector<std::string>& batches) {
  const std::string wal = TempPath("storage_fault_oracle");
  RemoveStore(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(BaseConfig(wal));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  for (const std::string& batch : batches) {
    EXPECT_TRUE(
        (*service)->Handle(MakeRequest("INGEST", {}, batch)).status.ok());
  }
  const std::string csv = QueryFrequent(**service);
  service->reset();
  RemoveStore(wal);
  return csv;
}

// --- Errno sweep over the daemon's storage path ------------------------

TEST(StorageErrnoSweepTest, AckedSubsetRecoveredSubsetAttempted) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  const std::string wal = TempPath("storage_errno_sweep");
  const std::vector<std::string> batches = {
      MakeBatch(811, 4), MakeBatch(822, 4), MakeBatch(833, 4)};

  // Candidate answers for every subset, precomputed once.
  std::vector<std::string> candidates(1u << batches.size());
  for (uint32_t mask = 0; mask < candidates.size(); ++mask) {
    std::vector<std::string> subset;
    for (size_t i = 0; i < batches.size(); ++i) {
      if ((mask >> i) & 1) subset.push_back(batches[i]);
    }
    candidates[mask] = OracleCsv(subset);
  }

  // The full errno-typed family of every fs_ops site on the daemon's
  // storage path. k counts hits from Start: the segment header's
  // append/fsync is hit 1, the first two batches are hits 2 and 3.
  const std::vector<std::string> sites = {
      "svc.wal.open",           "svc.wal.open.enospc",
      "svc.wal.open.eio",       "svc.wal.dirsync",
      "svc.wal.dirsync.enospc", "svc.wal.dirsync.eio",
      "svc.wal.append",         "svc.wal.append.enospc",
      "svc.wal.append.eio",     "svc.wal.append.short",
      "svc.wal.append.torn",    "svc.wal.fsync",
      "svc.wal.fsync.enospc",   "svc.wal.fsync.eio",
      "svc.manifest.open.enospc", "svc.manifest.open.eio",
      "svc.manifest.write.short", "svc.manifest.write.torn",
      "svc.manifest.flush.eio",   "svc.manifest.rename.enospc",
      "svc.manifest.dirsync.eio"};

  for (const std::string& site : sites) {
    for (uint64_t k : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
      SCOPED_TRACE(site + " k=" + std::to_string(k));
      RemoveStore(wal);
      registry.DisarmAll();
      registry.Arm(site, k);

      std::vector<bool> acked(batches.size(), false);
      bool mutation_failed = false;
      Result<std::unique_ptr<CousinService>> service =
          CousinService::Start(BaseConfig(wal));
      if (service.ok()) {
        for (size_t i = 0; i < batches.size(); ++i) {
          Response r =
              (*service)->Handle(MakeRequest("INGEST", {}, batches[i]));
          acked[i] = r.status.ok();
          if (!r.status.ok()) {
            mutation_failed = true;
            EXPECT_EQ(r.status.code(), StatusCode::kUnavailable)
                << r.status.ToString();
            EXPECT_FALSE(r.status.message().empty());
          }
        }
        // Reads keep answering whatever storage did.
        EXPECT_TRUE((*service)
                        ->Handle(MakeRequest("QUERY", {"frequent-pairs"}))
                        .status.ok());
        EXPECT_TRUE((*service)->Handle(MakeRequest("HEALTH")).status.ok());
        // An errno-carrying mutation failure must have flipped the
        // daemon read-only (boolean legacy faults stay retryable).
        const bool typed_mutation_site =
            (site.rfind("svc.wal.append.", 0) == 0 ||
             site.rfind("svc.wal.fsync.", 0) == 0);
        if (mutation_failed && typed_mutation_site) {
          EXPECT_TRUE((*service)->read_only());
        }
        service->reset();
      } else {
        // The fault landed during Start: a clean, diagnosed refusal.
        EXPECT_EQ(service.status().code(), StatusCode::kUnavailable)
            << service.status().ToString();
      }
      registry.DisarmAll();

      // Disarmed recovery must succeed — even over a half-initialized
      // directory or a torn active segment — and land on an admissible
      // batch set: acked ⊆ recovered ⊆ attempted.
      Result<std::unique_ptr<CousinService>> revived =
          CousinService::Start(BaseConfig(wal));
      ASSERT_TRUE(revived.ok()) << revived.status().ToString();
      const std::string recovered = QueryFrequent(**revived);
      revived->reset();

      bool matched = false;
      for (uint32_t mask = 0; mask < candidates.size() && !matched;
           ++mask) {
        bool admissible = true;
        for (size_t i = 0; i < batches.size(); ++i) {
          if (acked[i] && !((mask >> i) & 1)) admissible = false;
        }
        if (admissible) matched = recovered == candidates[mask];
      }
      EXPECT_TRUE(matched)
          << "recovered state matches no admissible batch set:\n"
          << recovered;
    }
  }
  RemoveStore(wal);
}

// --- Failure discipline ------------------------------------------------

TEST(StorageFaultTest, FsyncFailurePoisonsSegmentAndNeverRetriesIntoAck) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  const std::string wal = TempPath("storage_fsyncgate");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const std::string batch = MakeBatch(911, 3);

  // The batch's bytes land but the fsync fails: durability is
  // indeterminate (fsyncgate) — the ack must be withheld and the
  // segment poisoned.
  registry.Arm("svc.wal.fsync.eio", 1);
  Response failed = (*service)->Handle(MakeRequest("INGEST", {}, batch));
  registry.DisarmAll();
  EXPECT_EQ(failed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(failed.status.message().find("EIO"), std::string::npos)
      << failed.status.ToString();
  EXPECT_TRUE((*service)->read_only());

  // The poisoned segment never accepts a retry-then-ack: the same
  // batch is shed (with a retry hint), not silently re-fsynced.
  Response retried = (*service)->Handle(MakeRequest("INGEST", {}, batch));
  EXPECT_EQ(retried.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(retried.status.message().find("read-only"), std::string::npos)
      << retried.status.ToString();
  EXPECT_GT(retried.retry_after_ms, 0);

  // Reads keep serving; HEALTH reports the degraded state and why.
  Response health = (*service)->Handle(MakeRequest("HEALTH"));
  ASSERT_TRUE(health.status.ok());
  EXPECT_NE(health.payload.find("\"read_only\":true"), std::string::npos);
  EXPECT_NE(health.payload.find("EIO"), std::string::npos);

  // COMPACT discards the poisoned segment — the one sanctioned exit.
  Response compacted = (*service)->Handle(MakeRequest("COMPACT"));
  ASSERT_TRUE(compacted.status.ok()) << compacted.status.ToString();
  EXPECT_FALSE((*service)->read_only());
  Response ok = (*service)->Handle(MakeRequest("INGEST", {}, batch));
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  // The failed attempt never burned an id.
  EXPECT_NE(ok.payload.find("id=1"), std::string::npos);
  const std::string live = QueryFrequent(**service);
  service->reset();

  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->replayed_batches(), 1);
  EXPECT_EQ(QueryFrequent(**revived), live);
  RemoveStore(wal);
}

TEST(StorageFaultTest, EnospcShedsMutationsUntilCompaction) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  const std::string wal = TempPath("storage_enospc");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const std::string batch1 = MakeBatch(921, 3);
  const std::string batch2 = MakeBatch(922, 3);
  ASSERT_TRUE(
      (*service)->Handle(MakeRequest("INGEST", {}, batch1)).status.ok());

  // The disk fills: ENOSPC before any byte lands. Not poisoned (the
  // segment is still exactly its acked bytes) but errno-carrying, so
  // the daemon sheds mutations rather than grinding against a full
  // disk.
  registry.Arm("svc.wal.append.enospc", 1);
  Response failed = (*service)->Handle(MakeRequest("INGEST", {}, batch2));
  registry.DisarmAll();
  EXPECT_EQ(failed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(failed.status.message().find("ENOSPC"), std::string::npos)
      << failed.status.ToString();
  EXPECT_TRUE((*service)->read_only());
  EXPECT_GT(failed.retry_after_ms, 0);

  // Queries still answer from the published snapshot.
  EXPECT_EQ(QueryFrequent(**service), OracleCsv({batch1}));
  Response health = (*service)->Handle(MakeRequest("HEALTH"));
  ASSERT_TRUE(health.status.ok());
  EXPECT_NE(health.payload.find("ENOSPC"), std::string::npos);

  // Compaction reclaims the log and reopens for writes.
  ASSERT_TRUE((*service)->Handle(MakeRequest("COMPACT")).status.ok());
  EXPECT_FALSE((*service)->read_only());
  Response ok = (*service)->Handle(MakeRequest("INGEST", {}, batch2));
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_NE(ok.payload.find("id=2"), std::string::npos);
  const std::string live = QueryFrequent(**service);
  service->reset();
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(QueryFrequent(**revived), live);
  RemoveStore(wal);
}

TEST(StorageFaultTest, DirFsyncAfterCreateGuardsBothJournals) {
  // A crash right after creat(2) can lose the file itself unless the
  // parent directory is fsynced: both journal Opens own that contract,
  // so an injected directory-fsync failure must fail the open cleanly
  // (and a disarmed retry must succeed).
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  {
    const std::string path = TempPath("storage_dirsync_wal");
    std::remove(path.c_str());
    registry.Arm("svc.wal.dirsync", 1);
    Result<SvcWal> failed = SvcWal::Open(path);
    registry.DisarmAll();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
    Result<SvcWal> retried = SvcWal::Open(path);
    EXPECT_TRUE(retried.ok()) << retried.status().ToString();
    std::remove(path.c_str());
  }
  {
    const std::string path = TempPath("storage_dirsync_lease");
    std::remove(path.c_str());
    registry.Arm("proc.journal.dirsync", 1);
    Result<proc::LeaseJournal> failed =
        proc::LeaseJournal::Open(path, /*truncate=*/true);
    registry.DisarmAll();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
    Result<proc::LeaseJournal> retried =
        proc::LeaseJournal::Open(path, /*truncate=*/true);
    EXPECT_TRUE(retried.ok()) << retried.status().ToString();
    std::remove(path.c_str());
  }
}

// --- WAL edge shapes ---------------------------------------------------

std::string SegName(int64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06lld.wal",
                static_cast<long long>(seq));
  return name;
}

void WriteManifest(const std::string& dir, uint32_t fp,
                   int64_t compaction_id, const std::string& snap,
                   const std::vector<std::string>& segs) {
  std::string body = "SVCMANIFEST 2 " + std::to_string(fp) + " " +
                     std::to_string(compaction_id) + " " +
                     (snap.empty() ? "-" : snap) + " ";
  for (size_t i = 0; i < segs.size(); ++i) {
    if (i > 0) body += ",";
    body += segs[i];
  }
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/MANIFEST", svc::FrameWalLine(body)).ok());
}

/// Builds segment `seq` in `dir` with a header (sequence
/// `header_seq`, defaulting to the file's own) and the given batches.
void MakeSegment(const std::string& dir, uint32_t fp, int64_t seq,
                 const std::vector<std::pair<int64_t, std::string>>& recs,
                 int64_t header_seq = -1) {
  Result<SvcWal> wal = SvcWal::Open(dir + "/" + SegName(seq), true);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(
      wal->AppendSegHeader(fp, header_seq < 0 ? seq : header_seq).ok());
  for (const auto& [id, payload] : recs) {
    ASSERT_TRUE(wal->AppendBatch(id, payload).ok());
  }
}

TEST(WalEdgeShapeTest, ZeroByteAndTornHeaderFinalSegmentsReplayEmpty) {
  const std::string dir = TempPath("storage_edge_zero");
  for (const int64_t keep_bytes : {int64_t{0}, int64_t{5}}) {
    SCOPED_TRACE("keep_bytes=" + std::to_string(keep_bytes));
    RemoveStore(dir);
    {
      WalRecovery recovery;
      Result<WalStore> store =
          WalStore::Open(dir, kFp, WalStoreConfig{}, &recovery);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
    }
    // The crash hit between segment creation and the header fsync:
    // a zero-byte (or torn-header) FINAL segment is legal and empty.
    ASSERT_EQ(::truncate((dir + "/" + SegName(1)).c_str(),
                         static_cast<off_t>(keep_bytes)),
              0);
    WalRecovery recovery;
    Result<WalStore> store =
        WalStore::Open(dir, kFp, WalStoreConfig{}, &recovery);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(recovery.replayed_records, 0);
    // The segment was re-headed: appends land and replay.
    ASSERT_TRUE(store->AppendBatch(1, "(a,b);").ok());
    WalRecovery again;
    Result<WalStore> reopened =
        WalStore::Open(dir, kFp, WalStoreConfig{}, &again);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ASSERT_EQ(again.replayed_records, 1);
    EXPECT_EQ(again.tail[0].kind, SvcWalRecord::Kind::kBatch);
    EXPECT_EQ(again.tail[0].id, 1);
  }
  RemoveStore(dir);
}

TEST(WalEdgeShapeTest, HeaderOnlySegmentMidListIsLegal) {
  const std::string dir = TempPath("storage_edge_midlist");
  RemoveStore(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  // A rotation that raced a quiet period: segment 2 sealed empty
  // (header only) between two populated neighbours.
  MakeSegment(dir, kFp, 1, {{1, "(a,b);"}});
  MakeSegment(dir, kFp, 2, {});
  MakeSegment(dir, kFp, 3, {{2, "(c,d);"}});
  WriteManifest(dir, kFp, 0, "",
                {SegName(1), SegName(2), SegName(3)});
  WalRecovery recovery;
  Result<WalStore> store =
      WalStore::Open(dir, kFp, WalStoreConfig{}, &recovery);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(recovery.segments, 3);
  ASSERT_EQ(recovery.replayed_records, 2);
  EXPECT_EQ(recovery.tail[0].id, 1);
  EXPECT_EQ(recovery.tail[1].id, 2);
  RemoveStore(dir);
}

TEST(WalEdgeShapeTest, DamagedSealedSegmentRefused) {
  const std::string dir = TempPath("storage_edge_sealed");
  for (const bool truncated : {true, false}) {
    SCOPED_TRACE(truncated ? "torn tail" : "flipped byte");
    RemoveStore(dir);
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    MakeSegment(dir, kFp, 1, {{1, "(a,b);"}, {2, "(c,d);"}});
    MakeSegment(dir, kFp, 2, {{3, "(e,f);"}});
    WriteManifest(dir, kFp, 0, "", {SegName(1), SegName(2)});
    const std::string sealed = dir + "/" + SegName(1);
    Result<std::string> text = ReadFileToString(sealed);
    ASSERT_TRUE(text.ok());
    if (truncated) {
      // Torn bytes are a crash artifact only the FINAL segment can
      // carry — a sealed segment was fsync'd whole before the
      // manifest listed its successor.
      ASSERT_EQ(::truncate(sealed.c_str(),
                           static_cast<off_t>(text->size() - 3)),
                0);
    } else {
      std::string damaged = *text;
      damaged[damaged.find("BATCH 1") + 3] ^= 0x04;
      ASSERT_TRUE(WriteFileAtomic(sealed, damaged).ok());
    }
    WalRecovery recovery;
    Result<WalStore> refused =
        WalStore::Open(dir, kFp, WalStoreConfig{}, &recovery);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kCorruption)
        << refused.status().ToString();
  }
  RemoveStore(dir);
}

TEST(WalEdgeShapeTest, HeaderSequenceMustMatchFilename) {
  const std::string dir = TempPath("storage_edge_seq");
  RemoveStore(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  MakeSegment(dir, kFp, 1, {{1, "(a,b);"}}, /*header_seq=*/7);
  WriteManifest(dir, kFp, 0, "", {SegName(1)});
  WalRecovery recovery;
  Result<WalStore> refused =
      WalStore::Open(dir, kFp, WalStoreConfig{}, &recovery);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCorruption)
      << refused.status().ToString();
  RemoveStore(dir);
}

TEST(WalEdgeShapeTest, WrongFingerprintRefusedAtManifest) {
  const std::string dir = TempPath("storage_edge_fp");
  RemoveStore(dir);
  {
    WalRecovery recovery;
    Result<WalStore> store =
        WalStore::Open(dir, kFp, WalStoreConfig{}, &recovery);
    ASSERT_TRUE(store.ok());
  }
  WalRecovery recovery;
  Result<WalStore> refused =
      WalStore::Open(dir, kFp + 1, WalStoreConfig{}, &recovery);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  RemoveStore(dir);
}

// --- Compaction vs. crash ----------------------------------------------

TEST(StorageFaultTest, CompactionFailureBeforeCommitLeavesPriorState) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  const std::string wal = TempPath("storage_compact_precommit");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  const std::vector<std::string> batches = {MakeBatch(931, 3),
                                            MakeBatch(932, 3)};
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  for (const std::string& batch : batches) {
    ASSERT_TRUE(
        (*service)->Handle(MakeRequest("INGEST", {}, batch)).status.ok());
  }
  const std::string live = QueryFrequent(**service);

  // The manifest swap — the commit point — fails: the compaction must
  // report cleanly and the prior {manifest, segments} stay the store.
  registry.Arm("svc.manifest.rename.eio", 1);
  Response failed = (*service)->Handle(MakeRequest("COMPACT"));
  registry.DisarmAll();
  EXPECT_EQ(failed.status.code(), StatusCode::kUnavailable)
      << failed.status.ToString();
  EXPECT_EQ(QueryFrequent(**service), live);

  // kill -9 now: recovery replays the pre-compaction state whole.
  service->reset();
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->replayed_batches(), 2);
  EXPECT_EQ((*revived)->replayed_records(), 2);
  EXPECT_EQ(QueryFrequent(**revived), live);
  // A disarmed COMPACT converges; the next restart replays only the
  // (empty) tail.
  ASSERT_TRUE((*revived)->Handle(MakeRequest("COMPACT")).status.ok());
  revived->reset();
  Result<std::unique_ptr<CousinService>> again =
      CousinService::Start(config);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->replayed_batches(), 2);
  EXPECT_EQ((*again)->replayed_records(), 0);
  EXPECT_EQ(QueryFrequent(**again), live);
  RemoveStore(wal);
}

TEST(StorageFaultTest, OrphansAfterCommitAreRetiredByNextOpen) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.DisarmAll();
  const std::string wal = TempPath("storage_compact_orphans");
  RemoveStore(wal);
  ServiceConfig config = BaseConfig(wal);
  Result<std::unique_ptr<CousinService>> service =
      CousinService::Start(config);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)
                  ->Handle(MakeRequest("INGEST", {}, MakeBatch(941, 3)))
                  .status.ok());
  // Retirement of the old segments fails after the commit point: the
  // compaction still succeeds (the files are unreferenced orphans).
  registry.Arm("svc.wal.retire", 1);
  Response compacted = (*service)->Handle(MakeRequest("COMPACT"));
  registry.DisarmAll();
  ASSERT_TRUE(compacted.status.ok()) << compacted.status.ToString();
  const std::string live = QueryFrequent(**service);
  service->reset();

  // The orphan survives on disk until the next open sweeps it.
  int64_t files_before = 0;
  for (const auto& entry : std::filesystem::directory_iterator(wal)) {
    (void)entry;
    ++files_before;
  }
  Result<std::unique_ptr<CousinService>> revived =
      CousinService::Start(config);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(QueryFrequent(**revived), live);
  revived->reset();
  int64_t files_after = 0;
  for (const auto& entry : std::filesystem::directory_iterator(wal)) {
    (void)entry;
    ++files_after;
  }
  EXPECT_LT(files_after, files_before);
  RemoveStore(wal);
}

}  // namespace
}  // namespace cousins
