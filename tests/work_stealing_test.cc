// Work-stealing determinism matrix: the parallel forest miner must
// render bit-identical frequent-pair CSV to the sequential miner across
// every combination of thread count, stealing on/off, checkpoint
// cadence, and strict/lenient mode — the shard scheduler may only move
// work between threads, never change answers. Plus the containment
// drill: a fault armed at parallel.worker under stealing is contained
// to a Status, and the disarmed rerun matches the baseline again.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/item_io.h"
#include "core/parallel_mining.h"
#include "gen/yule_generator.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace cousins {
namespace {

std::vector<Tree> MatrixForest(std::shared_ptr<LabelTable> labels) {
  // Enough trees that an every-64 cadence spans several batches and an
  // 8-worker deal leaves chunks worth stealing; varied sizes so shard
  // finishing times actually spread.
  Rng rng(97531);
  YulePhylogenyOptions gen;
  gen.min_nodes = 20;
  gen.max_nodes = 90;
  gen.alphabet_size = 50;
  std::vector<Tree> trees;
  for (int i = 0; i < 150; ++i) {
    trees.push_back(GenerateYulePhylogeny(gen, rng, labels));
  }
  return trees;
}

MultiTreeMiningOptions MatrixOptions() {
  MultiTreeMiningOptions opt;
  opt.min_support = 2;
  return opt;
}

/// Canonical rendered output: any tally difference — order included —
/// shows up as a byte difference.
std::string MineToCsv(const std::vector<Tree>& trees,
                      const LabelTable& labels,
                      const DegradedModeConfig& degraded,
                      const std::string& checkpoint_path, int32_t threads) {
  MiningCheckpointConfig config;
  config.path = checkpoint_path;  // empty = no checkpointing
  config.every_trees = 64;
  Result<MultiTreeMiningRun> run = MineMultipleTreesCheckpointed(
      trees, MatrixOptions(), MiningContext::Unlimited(), config, degraded,
      threads);
  EXPECT_TRUE(run.ok()) << run.status().message();
  if (!run.ok()) return "<error>";
  EXPECT_FALSE(run->truncated);
  return FrequentPairsToCsv(labels, run->pairs);
}

// (threads, work_stealing, checkpoint_every, lenient)
using MatrixParam = std::tuple<int32_t, bool, int32_t, bool>;

class StealingMatrix : public ::testing::TestWithParam<MatrixParam> {
  void SetUp() override { fault::FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }
};

TEST_P(StealingMatrix, ParallelCsvIsBitIdenticalToSequential) {
  const auto [threads, stealing, every, lenient] = GetParam();
  auto labels = std::make_shared<LabelTable>();
  const std::vector<Tree> trees = MatrixForest(labels);

  const std::string sequential = FrequentPairsToCsv(
      *labels, MineMultipleTrees(trees, MatrixOptions()));

  QuarantineLedger ledger;
  DegradedModeConfig degraded;
  degraded.scheduler.work_stealing = stealing;
  degraded.scheduler.chunk_trees = 4;  // small chunks: steals do happen
  if (lenient) {
    degraded.lenient = true;
    degraded.ledger = &ledger;
  }

  std::string checkpoint_path;
  if (every > 0) {
    checkpoint_path = ::testing::TempDir() + "cousins_steal_" +
                      std::to_string(threads) + "_" +
                      std::to_string(stealing) + "_" +
                      std::to_string(lenient);
    std::remove(checkpoint_path.c_str());
  }

  EXPECT_EQ(sequential, MineToCsv(trees, *labels, degraded,
                                  checkpoint_path, threads))
      << "threads=" << threads << " stealing=" << stealing
      << " every=" << every << " lenient=" << lenient;
  EXPECT_TRUE(ledger.empty()) << "healthy forest must not quarantine";
  if (!checkpoint_path.empty()) std::remove(checkpoint_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, StealingMatrix,
    ::testing::Combine(::testing::Values(int32_t{1}, int32_t{2}, int32_t{3},
                                         int32_t{8}),
                       ::testing::Bool(),                       // stealing
                       ::testing::Values(int32_t{0}, int32_t{64}),
                       ::testing::Bool()),                      // lenient
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_steal" : "_static") + "_ckpt" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_lenient" : "_strict");
    });

TEST(StealingFaultDrill, WorkerFaultUnderStealingIsContained) {
  fault::FaultRegistry::Global().DisarmAll();
  auto labels = std::make_shared<LabelTable>();
  const std::vector<Tree> trees = MatrixForest(labels);
  const std::string baseline = FrequentPairsToCsv(
      *labels, MineMultipleTrees(trees, MatrixOptions()));

  DegradedModeConfig degraded;  // strict: a worker fault must surface
  degraded.scheduler.work_stealing = true;
  degraded.scheduler.chunk_trees = 4;

  fault::FaultRegistry::Global().Arm("parallel.worker", 2);
  Result<MultiTreeMiningRun> faulted = MineMultipleTreesParallelGoverned(
      trees, MatrixOptions(), MiningContext::Unlimited(), degraded, 3);
  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_FALSE(faulted.ok()) << "armed worker fault did not surface";
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal)
      << faulted.status().message();

  // Containment proven; the disarmed rerun must match the baseline
  // bit-for-bit — the fault left no residue in any shared state.
  Result<MultiTreeMiningRun> rerun = MineMultipleTreesParallelGoverned(
      trees, MatrixOptions(), MiningContext::Unlimited(), degraded, 3);
  ASSERT_TRUE(rerun.ok()) << rerun.status().message();
  EXPECT_EQ(baseline, FrequentPairsToCsv(*labels, rerun->pairs));
}

}  // namespace
}  // namespace cousins
