// Majority-rule threshold sweeps and Nelson determinism.

#include <gtest/gtest.h>

#include <set>

#include "gen/yule_generator.h"
#include "phylo/clusters.h"
#include "phylo/consensus.h"
#include "tree/canonical.h"
#include "util/rng.h"

namespace cousins {
namespace {

std::set<Bitset> ClustersOf(const Tree& t, const TaxonIndex& taxa) {
  auto v = TreeClusters(t, taxa).value();
  return {v.begin(), v.end()};
}

class MajorityThreshold : public ::testing::TestWithParam<double> {};

TEST_P(MajorityThreshold, HigherThresholdsKeepFewerClusters) {
  Rng rng(GetParam() * 1000 + 3);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa_names = MakeTaxa(10);
  std::vector<Tree> trees;
  for (int i = 0; i < 9; ++i) {
    trees.push_back(RandomCoalescentTree(taxa_names, rng, labels));
  }
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();

  ConsensusOptions low;
  low.majority_threshold = GetParam();
  ConsensusOptions high;
  high.majority_threshold = std::min(GetParam() + 0.25, 0.99);

  std::set<Bitset> low_clusters = ClustersOf(
      ConsensusTree(trees, ConsensusMethod::kMajority, low).value(), taxa);
  std::set<Bitset> high_clusters = ClustersOf(
      ConsensusTree(trees, ConsensusMethod::kMajority, high).value(),
      taxa);
  for (const Bitset& c : high_clusters) {
    EXPECT_TRUE(low_clusters.contains(c));
  }
}

TEST_P(MajorityThreshold, ThresholdSemanticsExact) {
  Rng rng(GetParam() * 977 + 11);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa_names = MakeTaxa(8);
  std::vector<Tree> trees;
  for (int i = 0; i < 7; ++i) {
    trees.push_back(RandomCoalescentTree(taxa_names, rng, labels));
  }
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  ConsensusOptions opt;
  opt.majority_threshold = GetParam();
  Tree consensus =
      ConsensusTree(trees, ConsensusMethod::kMajority, opt).value();
  for (const Bitset& c : ClustersOf(consensus, taxa)) {
    int count = 0;
    for (const Tree& t : trees) count += ClustersOf(t, taxa).contains(c);
    EXPECT_GT(count, GetParam() * trees.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MajorityThreshold,
                         ::testing::Values(0.5, 0.6, 0.7, 0.9));

TEST(NelsonDeterminismTest, RepeatedRunsIdentical) {
  Rng rng(404);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa_names = MakeTaxa(10);
  std::vector<Tree> trees;
  for (int i = 0; i < 8; ++i) {
    trees.push_back(RandomCoalescentTree(taxa_names, rng, labels));
  }
  Tree first = ConsensusTree(trees, ConsensusMethod::kNelson).value();
  for (int run = 0; run < 3; ++run) {
    Tree again = ConsensusTree(trees, ConsensusMethod::kNelson).value();
    EXPECT_TRUE(UnorderedIsomorphic(first, again));
  }
}

TEST(NelsonDeterminismTest, CliqueBeatsMajorityWeightWise) {
  // Nelson maximizes total replication over compatible clusters, so its
  // total replication is >= majority's (majority clusters are mutually
  // compatible and all replicated when #trees >= 3).
  Rng rng(505);
  auto labels = std::make_shared<LabelTable>();
  std::vector<std::string> taxa_names = MakeTaxa(9);
  std::vector<Tree> trees;
  for (int i = 0; i < 7; ++i) {
    trees.push_back(RandomCoalescentTree(taxa_names, rng, labels));
  }
  TaxonIndex taxa = TaxonIndex::FromTrees(trees).value();
  auto weight = [&](const Tree& consensus) {
    int total = 0;
    for (const Bitset& c : ClustersOf(consensus, taxa)) {
      for (const Tree& t : trees) total += ClustersOf(t, taxa).contains(c);
    }
    return total;
  };
  Tree nelson = ConsensusTree(trees, ConsensusMethod::kNelson).value();
  Tree majority = ConsensusTree(trees, ConsensusMethod::kMajority).value();
  EXPECT_GE(weight(nelson), weight(majority));
}

}  // namespace
}  // namespace cousins
