#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace cousins::obs {

void JsonWriter::Indent(size_t depth) {
  out_.push_back('\n');
  out_.append(2 * depth, ' ');
}

void JsonWriter::BeginValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  COUSINS_CHECK(stack_.empty() || stack_.back() == Scope::kArray);
  if (!stack_.empty()) {
    if (counts_.back() > 0) out_.push_back(',');
    ++counts_.back();
    Indent(stack_.size());
  }
}

void JsonWriter::OpenScope(Scope scope, char bracket) {
  BeginValue();
  out_.push_back(bracket);
  stack_.push_back(scope);
  counts_.push_back(0);
}

void JsonWriter::CloseScope(Scope scope, char bracket) {
  COUSINS_CHECK(!stack_.empty() && stack_.back() == scope && !after_key_);
  const int count = counts_.back();
  stack_.pop_back();
  counts_.pop_back();
  if (count > 0) Indent(stack_.size());
  out_.push_back(bracket);
}

void JsonWriter::BeginObject() { OpenScope(Scope::kObject, '{'); }
void JsonWriter::EndObject() { CloseScope(Scope::kObject, '}'); }
void JsonWriter::BeginArray() { OpenScope(Scope::kArray, '['); }
void JsonWriter::EndArray() { CloseScope(Scope::kArray, ']'); }

void JsonWriter::Key(std::string_view key) {
  COUSINS_CHECK(!stack_.empty() && stack_.back() == Scope::kObject &&
                !after_key_);
  if (counts_.back() > 0) out_.push_back(',');
  ++counts_.back();
  Indent(stack_.size());
  AppendEscaped(key);
  out_ += ": ";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeginValue();
  AppendEscaped(value);
}

void JsonWriter::Int(int64_t value) {
  BeginValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeginValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  // "%.17g" of an integral double has no '.', 'e', or "inf"/"nan"
  // marker; add ".0" so readers that distinguish int/float round-trip.
  std::string_view written(buf);
  if (written.find_first_of(".eE") == std::string_view::npos) out_ += ".0";
}

void JsonWriter::Bool(bool value) {
  BeginValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeginValue();
  out_ += "null";
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

}  // namespace cousins::obs
