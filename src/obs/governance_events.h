// Governance event recording: maps resource-governance outcomes
// (util/governance.h) onto obs counters, so deadline trips, budget
// trips, cancellations and worker faults show up in every metrics
// snapshot (and hence in BENCH_*.json reports).
//
// Kept separate from util/governance.h so the governance layer itself
// stays free of an obs dependency; the entry points that convert a
// trip into a truncated outcome call RecordGovernanceEvent once.

#ifndef COUSINS_OBS_GOVERNANCE_EVENTS_H_
#define COUSINS_OBS_GOVERNANCE_EVENTS_H_

#include "obs/metrics.h"
#include "util/status.h"

namespace cousins::obs {

/// Bumps the governance.* counter matching `status`; no-op for OK.
/// Counters: governance.cancelled, governance.deadline_exceeded,
/// governance.resource_exhausted, governance.hard_failures.
inline void RecordGovernanceEvent(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      break;
    case StatusCode::kCancelled:
      COUSINS_METRIC_COUNTER_ADD("governance.cancelled", 1);
      break;
    case StatusCode::kDeadlineExceeded:
      COUSINS_METRIC_COUNTER_ADD("governance.deadline_exceeded", 1);
      break;
    case StatusCode::kResourceExhausted:
      COUSINS_METRIC_COUNTER_ADD("governance.resource_exhausted", 1);
      break;
    default:
      COUSINS_METRIC_COUNTER_ADD("governance.hard_failures", 1);
      break;
  }
}

/// Bumps governance.worker_faults (a worker thread threw or failed and
/// was contained by the parallel driver).
inline void RecordWorkerFault() {
  COUSINS_METRIC_COUNTER_ADD("governance.worker_faults", 1);
}

}  // namespace cousins::obs

#endif  // COUSINS_OBS_GOVERNANCE_EVENTS_H_
