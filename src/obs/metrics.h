// Mining telemetry: process-wide counters, log-scale histograms, and
// wall/CPU scoped timers, aggregated by a global MetricsRegistry and
// serializable to JSON (bench reports embed a snapshot).
//
// Cost model — the hot paths this instruments process millions of
// trees, so recording must stay out of the way twice over:
//   * compile time: building with -DCOUSINS_METRICS_ENABLED=0 (CMake
//     option COUSINS_METRICS=OFF) expands every COUSINS_METRIC_* macro
//     to nothing, restoring the uninstrumented binary bit-for-bit on
//     the hot paths;
//   * runtime: recording checks one relaxed atomic flag, toggled by
//     MetricsRegistry::set_enabled() or the COUSINS_METRICS=0
//     environment variable, so a production build can ship with the
//     macros compiled in and still turn telemetry off.
// All recording is thread-safe (relaxed atomics); metric lookup by name
// takes a mutex but every macro caches the pointer in a function-local
// static, so the hot path never locks.

#ifndef COUSINS_OBS_METRICS_H_
#define COUSINS_OBS_METRICS_H_

#ifndef COUSINS_METRICS_ENABLED
#define COUSINS_METRICS_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cousins::obs {

class JsonWriter;

/// True when recording is live (compile-time macro AND runtime flag).
bool MetricsEnabled();

/// Monotonically accumulating 64-bit counter.
class Counter {
 public:
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative integer samples (negative
/// samples clamp to 0). Bucket b >= 1 holds samples whose bit width is
/// b, i.e. the range [2^(b-1), 2^b - 1]; bucket 0 holds zeros. Exact
/// count/sum/min/max are kept alongside the buckets.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void Record(int64_t sample);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max of recorded samples; min() > max() means "empty".
  int64_t min() const { return min_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket b (0, 1, 3, 7, 15, ...).
  static int64_t BucketUpperBound(int b);

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{std::numeric_limits<int64_t>::min()};
};

struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  /// (inclusive upper bound, count), non-empty buckets only.
  std::vector<std::pair<int64_t, int64_t>> buckets;
};

/// Point-in-time copy of every registered metric, JSON-serializable.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Writes {"counters": {...}, "histograms": {...}} as one JSON value.
  void WriteJson(JsonWriter* writer) const;
};

/// Owns all named metrics for the process. References returned by
/// GetCounter/GetHistogram stay valid for the registry's lifetime, so
/// call sites cache them (the COUSINS_METRIC_* macros do this via
/// function-local statics).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Runtime kill switch; also initialized from the COUSINS_METRICS
  /// environment variable ("0"/"off"/"false" disable).
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Zeroes every registered metric (names stay registered). Benches
  /// use this to scope a snapshot to one measured phase.
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records wall time (and, where the platform supports it, thread CPU
/// time) from construction to destruction into `<name>.wall_us` /
/// `<name>.cpu_us` histograms, in microseconds.
class ScopedTimer {
 public:
  ScopedTimer(Histogram* wall_us, Histogram* cpu_us);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Thread CPU clock in microseconds, or -1 if unsupported.
  static int64_t ThreadCpuMicros();

 private:
  Histogram* wall_us_;
  Histogram* cpu_us_;
  std::chrono::steady_clock::time_point wall_start_;
  int64_t cpu_start_us_;
};

namespace internal {
inline Counter& CachedCounter(std::string_view name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Histogram& CachedHistogram(std::string_view name) {
  return MetricsRegistry::Global().GetHistogram(name);
}
}  // namespace internal

}  // namespace cousins::obs

// --- Recording macros -------------------------------------------------
// Metric names are compile-time string literals; each macro resolves the
// metric once (thread-safe static init) and records through the cached
// reference afterwards.

#if COUSINS_METRICS_ENABLED

/// Splices instrumentation-only statements into a function/class body.
#define COUSINS_METRICS_ONLY(...) __VA_ARGS__

#define COUSINS_METRIC_COUNTER_ADD(name, delta)                         \
  do {                                                                  \
    static ::cousins::obs::Counter& cousins_metric_counter_ =           \
        ::cousins::obs::internal::CachedCounter(name);                  \
    cousins_metric_counter_.Add(static_cast<int64_t>(delta));           \
  } while (0)

#define COUSINS_METRIC_HISTOGRAM_RECORD(name, sample)                   \
  do {                                                                  \
    static ::cousins::obs::Histogram& cousins_metric_histogram_ =       \
        ::cousins::obs::internal::CachedHistogram(name);                \
    cousins_metric_histogram_.Record(static_cast<int64_t>(sample));     \
  } while (0)

/// Times the rest of the enclosing scope into `name.wall_us` and
/// `name.cpu_us` histograms.
#define COUSINS_METRIC_SCOPED_TIMER(name)                               \
  static ::cousins::obs::Histogram& cousins_metric_timer_wall_ =        \
      ::cousins::obs::internal::CachedHistogram(name ".wall_us");       \
  static ::cousins::obs::Histogram& cousins_metric_timer_cpu_ =         \
      ::cousins::obs::internal::CachedHistogram(name ".cpu_us");        \
  ::cousins::obs::ScopedTimer cousins_metric_scoped_timer_(             \
      &cousins_metric_timer_wall_, &cousins_metric_timer_cpu_)

#else  // !COUSINS_METRICS_ENABLED

#define COUSINS_METRICS_ONLY(...)
#define COUSINS_METRIC_COUNTER_ADD(name, delta) \
  do {                                          \
  } while (0)
#define COUSINS_METRIC_HISTOGRAM_RECORD(name, sample) \
  do {                                                \
  } while (0)
#define COUSINS_METRIC_SCOPED_TIMER(name) \
  do {                                    \
  } while (0)

#endif  // COUSINS_METRICS_ENABLED

#endif  // COUSINS_OBS_METRICS_H_
