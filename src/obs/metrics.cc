#include "obs/metrics.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "obs/json_writer.h"
#include "util/fault_injection.h"
#include "util/retry.h"

namespace cousins::obs {
namespace {

std::atomic<bool> g_runtime_enabled{true};

/// Mirrors every fault-injection trigger into faults.* counters. The
/// fault registry (util layer) cannot depend on obs, so the bridge is
/// installed from here at static-init time — any binary that links obs
/// (all of them) gets fault telemetry for free. Triggers are rare by
/// construction, so the per-trigger name lookup is fine.
[[maybe_unused]] const bool g_fault_observer_installed = [] {
  fault::FaultRegistry::SetTriggerObserver([](const char* site) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("faults.triggered").Add(1);
    registry.GetCounter(std::string("faults.") + site).Add(1);
  });
  return true;
}();

/// Mirrors retry activity (util/retry.h) into retry.* counters, via the
/// same static-init observer bridge as faults above: retries are rare
/// (transient I/O only), so per-event name lookups are fine.
[[maybe_unused]] const bool g_retry_observer_installed = [] {
  retry::SetRetryObserver([](const char* op, uint64_t /*attempt*/,
                             bool will_retry) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("retry.transient_failures").Add(1);
    registry.GetCounter(will_retry ? "retry.retried" : "retry.exhausted")
        .Add(1);
    registry.GetCounter(std::string("retry.op.") + op).Add(1);
  });
  return true;
}();

/// COUSINS_METRICS=0|off|false disables recording at process start.
bool InitialEnabledFromEnv() {
  const char* value = std::getenv("COUSINS_METRICS");
  if (value == nullptr) return true;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "OFF") != 0 && std::strcmp(value, "false") != 0;
}

/// Lock-free running max/min for histogram bounds.
template <typename Cmp>
void AtomicExtreme(std::atomic<int64_t>* slot, int64_t sample, Cmp better) {
  int64_t current = slot->load(std::memory_order_relaxed);
  while (better(sample, current) &&
         !slot->compare_exchange_weak(current, sample,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

bool MetricsEnabled() {
#if COUSINS_METRICS_ENABLED
  return g_runtime_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void Histogram::Record(int64_t sample) {
  if (!MetricsEnabled()) return;
  if (sample < 0) sample = 0;
  const int b =
      sample == 0 ? 0 : std::bit_width(static_cast<uint64_t>(sample));
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  AtomicExtreme(&min_, sample, [](int64_t a, int64_t b2) { return a < b2; });
  AtomicExtreme(&max_, sample, [](int64_t a, int64_t b2) { return a > b2; });
}

int64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= 63) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << b) - 1;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(std::numeric_limits<int64_t>::min(),
             std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() {
  g_runtime_enabled.store(InitialEnabledFromEnv(),
                          std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: instrumented code may record during other
  // translation units' static destruction, so the registry must never
  // be destroyed.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::set_enabled(bool enabled) {
  g_runtime_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsRegistry::enabled() const {
  return g_runtime_enabled.load(std::memory_order_relaxed);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    if (h.count > 0) {
      h.min = histogram->min();
      h.max = histogram->max();
    }
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const int64_t c = histogram->bucket(b);
      if (c > 0) h.buckets.emplace_back(Histogram::BucketUpperBound(b), c);
    }
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void MetricsSnapshot::WriteJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("counters");
  writer->BeginObject();
  for (const auto& [name, value] : counters) {
    writer->KeyValue(name, value);
  }
  writer->EndObject();
  writer->Key("histograms");
  writer->BeginObject();
  for (const auto& [name, h] : histograms) {
    writer->Key(name);
    writer->BeginObject();
    writer->KeyValue("count", h.count);
    writer->KeyValue("sum", h.sum);
    writer->KeyValue("min", h.min);
    writer->KeyValue("max", h.max);
    if (h.count > 0) {
      writer->KeyValue("mean", static_cast<double>(h.sum) /
                                   static_cast<double>(h.count));
    }
    writer->Key("buckets");
    writer->BeginArray();
    for (const auto& [le, count] : h.buckets) {
      writer->BeginObject();
      writer->KeyValue("le", le);
      writer->KeyValue("count", count);
      writer->EndObject();
    }
    writer->EndArray();
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

ScopedTimer::ScopedTimer(Histogram* wall_us, Histogram* cpu_us)
    : wall_us_(wall_us),
      cpu_us_(cpu_us),
      wall_start_(std::chrono::steady_clock::now()),
      cpu_start_us_(cpu_us == nullptr ? -1 : ThreadCpuMicros()) {}

ScopedTimer::~ScopedTimer() {
  if (!MetricsEnabled()) return;
  if (wall_us_ != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - wall_start_;
    wall_us_->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }
  if (cpu_us_ != nullptr && cpu_start_us_ >= 0) {
    const int64_t now = ThreadCpuMicros();
    if (now >= 0) cpu_us_->Record(now - cpu_start_us_);
  }
}

int64_t ScopedTimer::ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return -1;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
#else
  return -1;
#endif
}

}  // namespace cousins::obs
