// Minimal streaming JSON writer for metrics snapshots and bench
// reports. Hand-rolled on purpose: the repo takes no third-party
// serialization dependency for a format this small, and the writer
// guarantees valid, deterministic, pretty-printed output that diffs
// cleanly across PRs.

#ifndef COUSINS_OBS_JSON_WRITER_H_
#define COUSINS_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cousins::obs {

/// Emits one JSON document into an internal buffer. Usage mirrors the
/// document structure: BeginObject/Key/value.../EndObject. The writer
/// inserts commas and 2-space indentation; callers only describe
/// structure. Keys are only legal inside objects, bare values only
/// inside arrays or after a Key. Misuse aborts (writer bugs would
/// silently corrupt every bench report downstream).
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);
  void String(std::string_view value);
  void Int(int64_t value);
  void Double(double value);  // non-finite values serialize as null
  void Bool(bool value);
  void Null();

  /// Shorthand for Key(key); <value>.
  void KeyValue(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void KeyValue(std::string_view key, const char* value) {
    Key(key);
    String(value);
  }
  void KeyValue(std::string_view key, int64_t value) {
    Key(key);
    Int(value);
  }
  void KeyValue(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void KeyValue(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }

  /// The finished document. Valid once every Begin* has been closed.
  const std::string& str() const { return out_; }

 private:
  enum class Scope : uint8_t { kObject, kArray };

  void BeginValue();  // comma/newline bookkeeping before any value
  void OpenScope(Scope scope, char bracket);
  void CloseScope(Scope scope, char bracket);
  void AppendEscaped(std::string_view s);
  void Indent(size_t depth);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<int> counts_;  // values emitted per open scope
  bool after_key_ = false;
};

}  // namespace cousins::obs

#endif  // COUSINS_OBS_JSON_WRITER_H_
