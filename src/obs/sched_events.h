// Scheduler and accumulator telemetry for the parallel mining hot
// path. Mirrors obs/governance_events.h: core code calls these tiny
// inline recorders so the metric names live in one place and the util/
// core layers keep no direct dependency on registry plumbing. All
// recorders compile to nothing under COUSINS_METRICS=OFF.
//
// Counters:
//   sched.steals   — successful work-stealing transfers (a thief
//                    acquired chunks from a victim's deque)
//   sched.remote_steals — the subset of sched.steals whose victim sat
//                    on a different CPU socket (NUMA traffic; stays 0
//                    on single-socket machines)
//   sched.idle_ns  — wall nanoseconds workers spent out of work
//                    (searching victims or draining empty deques)
// Histogram:
//   accum.probe_len — mean open-addressing probe chain length per
//                     fold batch (one sample per fully-folded tree),
//                     the health signal of the SoA tally accumulator:
//                     growth in this histogram means the table is
//                     clustering and presizing needs a revisit.

#ifndef COUSINS_OBS_SCHED_EVENTS_H_
#define COUSINS_OBS_SCHED_EVENTS_H_

#include <cstdint>

#include "obs/metrics.h"

namespace cousins::obs {

/// Records `count` successful steals by a worker.
inline void RecordSchedSteals(int64_t count) {
  if (count > 0) COUSINS_METRIC_COUNTER_ADD("sched.steals", count);
}

/// Records `count` steals that crossed a socket boundary.
inline void RecordSchedRemoteSteals(int64_t count) {
  if (count > 0) COUSINS_METRIC_COUNTER_ADD("sched.remote_steals", count);
}

/// Records wall time a worker spent without work.
inline void RecordSchedIdleNs(int64_t nanos) {
  if (nanos > 0) COUSINS_METRIC_COUNTER_ADD("sched.idle_ns", nanos);
}

/// Records the mean probe chain length of one fold batch (`probes`
/// slots inspected across `adds` accumulator adds).
inline void RecordAccumProbeLen([[maybe_unused]] int64_t probes,
                                int64_t adds) {
  if (adds > 0) {
    COUSINS_METRIC_HISTOGRAM_RECORD("accum.probe_len", probes / adds);
  }
}

}  // namespace cousins::obs

#endif  // COUSINS_OBS_SCHED_EVENTS_H_
