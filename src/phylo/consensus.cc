#include "phylo/consensus.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "tree/builder.h"
#include "tree/lca.h"

namespace cousins {
namespace {

/// Occurrence count of every distinct nontrivial cluster across trees.
Result<std::vector<std::pair<Bitset, int>>> CountClusters(
    const std::vector<Tree>& trees, const TaxonIndex& taxa) {
  std::unordered_map<Bitset, int, BitsetHash> counts;
  for (const Tree& tree : trees) {
    COUSINS_ASSIGN_OR_RETURN(std::vector<Bitset> clusters,
                             TreeClusters(tree, taxa));
    for (const Bitset& c : clusters) ++counts[c];
  }
  std::vector<std::pair<Bitset, int>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end());  // canonical order
  return out;
}

/// Semi-strict: clusters occurring somewhere and compatible with every
/// cluster of every tree. (Any two survivors are mutually compatible:
/// each occurs in some tree, and the other is compatible with all
/// clusters of that tree.)
std::vector<Bitset> SemiStrictClusters(
    const std::vector<std::pair<Bitset, int>>& counted) {
  std::vector<Bitset> out;
  for (const auto& [cluster, count] : counted) {
    bool ok = true;
    for (const auto& [other, other_count] : counted) {
      if (!ClustersCompatible(cluster, other)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(cluster);
  }
  return out;
}

/// Nelson [30] (operationalized as in Page's COMPONENT manual [31]):
/// among the replicated components (count >= 2), find the clique of
/// mutually compatible clusters with the greatest total replication.
/// Exact branch & bound with a deterministic tie-break; falls back to a
/// greedy clique if the search budget is exhausted (never observed at
/// phylogenetic scales, but the worst case is exponential).
class NelsonClique {
 public:
  explicit NelsonClique(std::vector<std::pair<Bitset, int>> vertices)
      : vertices_(std::move(vertices)) {
    // Heaviest first: improves both pruning and the greedy fallback.
    std::sort(vertices_.begin(), vertices_.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const size_t n = vertices_.size();
    compatible_.assign(n, std::vector<char>(n, 0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        compatible_[i][j] = compatible_[j][i] =
            ClustersCompatible(vertices_[i].first, vertices_[j].first);
      }
    }
    suffix_weight_.assign(n + 1, 0);
    for (size_t i = n; i-- > 0;) {
      suffix_weight_[i] = suffix_weight_[i + 1] + vertices_[i].second;
    }
  }

  std::vector<Bitset> Solve() {
    std::vector<size_t> current;
    Branch(0, 0, &current);
    std::vector<Bitset> out;
    out.reserve(best_set_.size());
    for (size_t i : best_set_) out.push_back(vertices_[i].first);
    return out;
  }

 private:
  void Branch(size_t next, int weight, std::vector<size_t>* current) {
    if (weight > best_weight_) {
      best_weight_ = weight;
      best_set_ = *current;
    }
    if (next >= vertices_.size()) return;
    if (++explored_ > kBudget) return;  // greedy-completed by ordering
    if (weight + suffix_weight_[next] <= best_weight_) return;  // bound
    for (size_t i = next; i < vertices_.size(); ++i) {
      if (weight + suffix_weight_[i] <= best_weight_) break;
      bool fits = true;
      for (size_t j : *current) {
        if (!compatible_[i][j]) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      current->push_back(i);
      Branch(i + 1, weight + vertices_[i].second, current);
      current->pop_back();
    }
  }

  static constexpr int64_t kBudget = 5'000'000;

  std::vector<std::pair<Bitset, int>> vertices_;
  std::vector<std::vector<char>> compatible_;
  std::vector<int> suffix_weight_;
  std::vector<size_t> best_set_;
  int best_weight_ = -1;
  int64_t explored_ = 0;
};

/// Adams consensus: recursively partition the taxa by the product
/// (common refinement) of the trees' root partitions.
class AdamsBuilder {
 public:
  AdamsBuilder(const std::vector<Tree>& trees, const TaxonIndex& taxa,
               std::shared_ptr<LabelTable> labels)
      : trees_(trees), taxa_(taxa), builder_(std::move(labels)) {
    leaf_of_.resize(trees.size());
    for (size_t i = 0; i < trees.size(); ++i) {
      leaf_of_[i].assign(taxa.size(), kNoNode);
      const Tree& t = trees[i];
      for (NodeId v = 0; v < t.size(); ++v) {
        if (t.is_leaf(v)) leaf_of_[i][taxa.index_of(t.label(v))] = v;
      }
      lca_.emplace_back(t);
    }
  }

  Tree Build() {
    std::vector<int32_t> all(taxa_.size());
    for (int32_t t = 0; t < taxa_.size(); ++t) all[t] = t;
    BuildNode(all, kNoNode);
    return std::move(builder_).Build();
  }

 private:
  void BuildNode(const std::vector<int32_t>& group, NodeId parent) {
    if (group.size() == 1) {
      const LabelId label = taxa_.label_of(group[0]);
      if (parent == kNoNode) {
        NodeId r = builder_.AddRoot();
        builder_.SetLabel(r, trees_[0].labels().Name(label));
      } else {
        builder_.AddChildWithLabelId(parent, label);
      }
      return;
    }
    const NodeId self =
        parent == kNoNode ? builder_.AddRoot() : builder_.AddChild(parent);

    // For each tree, the block of each taxon under the LCA of `group`;
    // the product partition groups taxa whose block vectors agree.
    // Keys are per-tree child node ids; std::map gives deterministic
    // block enumeration (refined below by smallest taxon).
    std::vector<NodeId> group_lca(trees_.size());
    for (size_t i = 0; i < trees_.size(); ++i) {
      NodeId lca = leaf_of_[i][group[0]];
      for (size_t g = 1; g < group.size(); ++g) {
        lca = lca_[i].Lca(lca, leaf_of_[i][group[g]]);
      }
      group_lca[i] = lca;
    }
    std::map<std::vector<NodeId>, std::vector<int32_t>> blocks;
    for (int32_t taxon : group) {
      std::vector<NodeId> key;
      key.reserve(trees_.size());
      for (size_t i = 0; i < trees_.size(); ++i) {
        key.push_back(BlockOf(i, group_lca[i], taxon));
      }
      blocks[key].push_back(taxon);
    }
    COUSINS_CHECK(blocks.size() >= 2 &&
                  "LCA of a group always splits it into >= 2 blocks");

    // Deterministic child order: by smallest contained taxon.
    std::vector<const std::vector<int32_t>*> ordered;
    ordered.reserve(blocks.size());
    for (const auto& [key, taxa_in_block] : blocks) {
      ordered.push_back(&taxa_in_block);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto* a, const auto* b) {
                return a->front() < b->front();
              });
    for (const auto* block : ordered) BuildNode(*block, self);
  }

  /// The child of `lca` (= lca of the group in tree i) on the path
  /// toward `taxon`'s leaf.
  NodeId BlockOf(size_t i, NodeId lca, int32_t taxon) {
    const Tree& t = trees_[i];
    NodeId v = leaf_of_[i][taxon];
    COUSINS_CHECK(v != lca);
    while (t.parent(v) != lca) v = t.parent(v);
    return v;
  }

  const std::vector<Tree>& trees_;
  const TaxonIndex& taxa_;
  TreeBuilder builder_;
  std::vector<std::vector<NodeId>> leaf_of_;
  std::vector<LcaIndex> lca_;
};

}  // namespace

std::string ConsensusMethodName(ConsensusMethod method) {
  switch (method) {
    case ConsensusMethod::kStrict:
      return "strict";
    case ConsensusMethod::kMajority:
      return "majority";
    case ConsensusMethod::kSemiStrict:
      return "semi";
    case ConsensusMethod::kAdams:
      return "Adams";
    case ConsensusMethod::kNelson:
      return "Nelson";
    case ConsensusMethod::kGreedy:
      return "greedy";
  }
  return "unknown";
}

Result<Tree> ConsensusTree(const std::vector<Tree>& trees,
                           ConsensusMethod method,
                           const ConsensusOptions& options) {
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex taxa, TaxonIndex::FromTrees(trees));
  const auto labels = trees[0].labels_ptr();

  if (method == ConsensusMethod::kAdams) {
    AdamsBuilder builder(trees, taxa, labels);
    return builder.Build();
  }

  COUSINS_ASSIGN_OR_RETURN(auto counted, CountClusters(trees, taxa));
  std::vector<Bitset> selected;
  switch (method) {
    case ConsensusMethod::kStrict:
      for (const auto& [cluster, count] : counted) {
        if (count == static_cast<int>(trees.size())) {
          selected.push_back(cluster);
        }
      }
      break;
    case ConsensusMethod::kMajority: {
      const double cutoff = options.majority_threshold *
                            static_cast<double>(trees.size());
      for (const auto& [cluster, count] : counted) {
        if (static_cast<double>(count) > cutoff) selected.push_back(cluster);
      }
      break;
    }
    case ConsensusMethod::kSemiStrict:
      selected = SemiStrictClusters(counted);
      break;
    case ConsensusMethod::kNelson: {
      std::vector<std::pair<Bitset, int>> replicated;
      for (const auto& [cluster, count] : counted) {
        if (count >= 2) replicated.emplace_back(cluster, count);
      }
      NelsonClique clique(std::move(replicated));
      selected = clique.Solve();
      break;
    }
    case ConsensusMethod::kGreedy: {
      // Most-replicated first (deterministic tie-break), keep whatever
      // is compatible with everything kept so far.
      std::vector<std::pair<Bitset, int>> ordered(counted.begin(),
                                                  counted.end());
      std::sort(ordered.begin(), ordered.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      for (const auto& [cluster, count] : ordered) {
        bool compatible = true;
        for (const Bitset& kept : selected) {
          if (!ClustersCompatible(cluster, kept)) {
            compatible = false;
            break;
          }
        }
        if (compatible) selected.push_back(cluster);
      }
      break;
    }
    case ConsensusMethod::kAdams:
      COUSINS_CHECK(false);
  }
  return BuildTreeFromClusters(selected, taxa, labels);
}

Result<Tree> ConsensusTreeDegraded(const std::vector<Tree>& trees,
                                   ConsensusMethod method,
                                   const ConsensusOptions& options,
                                   const DegradedModeConfig& degraded) {
  if (!degraded.lenient) return ConsensusTree(trees, method, options);
  COUSINS_CHECK(degraded.ledger != nullptr &&
                "lenient mode requires a quarantine ledger");
  const auto source_index = [&](size_t i) -> int64_t {
    if (degraded.source_indices != nullptr &&
        i < degraded.source_indices->size()) {
      return (*degraded.source_indices)[i];
    }
    return static_cast<int64_t>(i);
  };
  const auto quarantine = [&](size_t i, const Status& st) {
    QuarantineEntry entry;
    entry.tree_index = source_index(i);
    entry.source = degraded.source_name;
    entry.code = st.code();
    entry.message = st.message();
    entry.stage = QuarantineStage::kConsensus;
    degraded.ledger->Add(std::move(entry));
  };

  // The reference taxon set is the first tree's whose taxa index
  // cleanly; trees that disagree with it are quarantined, not fatal.
  std::vector<Tree> kept;
  std::optional<TaxonIndex> reference;
  for (size_t i = 0; i < trees.size(); ++i) {
    Result<TaxonIndex> taxa = TaxonIndex::FromTree(trees[i]);
    if (!taxa.ok()) {
      quarantine(i, taxa.status());
      continue;
    }
    if (!reference.has_value()) {
      reference = std::move(*taxa);
      kept.push_back(trees[i]);
      continue;
    }
    bool matches = taxa->size() == reference->size();
    for (int32_t t = 0; matches && t < taxa->size(); ++t) {
      matches = reference->index_of(taxa->label_of(t)) >= 0;
    }
    if (!matches) {
      quarantine(i, Status::InvalidArgument(
                        "taxon set differs from the reference tree's (" +
                        std::to_string(taxa->size()) + " vs " +
                        std::to_string(reference->size()) + " taxa)"));
      continue;
    }
    kept.push_back(trees[i]);
  }
  if (kept.empty()) {
    return Status::InvalidArgument(
        "no usable trees left for consensus after quarantining " +
        std::to_string(trees.size()) + " input(s)");
  }
  COUSINS_METRIC_COUNTER_ADD("degraded.consensus_kept", kept.size());
  return ConsensusTree(kept, method, options);
}

}  // namespace cousins
