#include "phylo/supertree.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_set>

#include "phylo/clusters.h"
#include "tree/builder.h"
#include "tree/restrict.h"
#include "tree/traversal.h"

namespace cousins {
namespace {

/// Union-find over dense indices.
class Dsu {
 public:
  explicit Dsu(int32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int32_t Find(int32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int32_t a, int32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int32_t> parent_;
};

class SupertreeBuilder {
 public:
  SupertreeBuilder(const std::vector<Tree>& sources,
                   const SupertreeOptions& options,
                   std::shared_ptr<LabelTable> labels)
      : sources_(sources), options_(options), builder_(std::move(labels)) {
    for (const Tree& s : sources) {
      std::vector<LabelId> taxa;
      for (NodeId v = 0; v < s.size(); ++v) {
        if (s.is_leaf(v)) taxa.push_back(s.label(v));
      }
      source_taxa_.emplace_back(taxa.begin(), taxa.end());
    }
  }

  Result<Tree> Build(const std::vector<LabelId>& all_taxa) {
    COUSINS_RETURN_IF_ERROR(BuildNode(all_taxa, kNoNode));
    return std::move(builder_).Build();
  }

 private:
  /// Connected components of S under the union of the active sources'
  /// root partitions (the BUILD merge graph). Returns the component
  /// list, each sorted; components are ordered by smallest label.
  Result<std::vector<std::vector<LabelId>>> Components(
      const std::vector<LabelId>& taxa,
      const std::vector<size_t>& active) {
    std::map<LabelId, int32_t> index;
    for (size_t i = 0; i < taxa.size(); ++i) {
      index[taxa[i]] = static_cast<int32_t>(i);
    }
    Dsu dsu(static_cast<int32_t>(taxa.size()));
    for (size_t s : active) {
      std::vector<LabelId> keep;
      for (LabelId t : taxa) {
        if (source_taxa_[s].contains(t)) keep.push_back(t);
      }
      if (keep.size() < 2) continue;
      COUSINS_ASSIGN_OR_RETURN(Tree restricted,
                               RestrictToLabels(sources_[s], keep));
      // Union taxa within each child cluster of the restricted root.
      for (NodeId c : restricted.children(restricted.root())) {
        std::vector<LabelId> leaves = SubtreeLeafLabels(restricted, c);
        for (size_t i = 1; i < leaves.size(); ++i) {
          dsu.Union(index.at(leaves[0]), index.at(leaves[i]));
        }
      }
    }
    std::map<int32_t, std::vector<LabelId>> groups;
    for (size_t i = 0; i < taxa.size(); ++i) {
      groups[dsu.Find(static_cast<int32_t>(i))].push_back(taxa[i]);
    }
    std::vector<std::vector<LabelId>> components;
    components.reserve(groups.size());
    for (auto& [root, members] : groups) {
      std::sort(members.begin(), members.end());
      components.push_back(std::move(members));
    }
    std::sort(components.begin(), components.end());
    return components;
  }

  Status BuildNode(const std::vector<LabelId>& taxa, NodeId parent) {
    if (taxa.size() == 1) {
      if (parent == kNoNode) {
        NodeId r = builder_.AddRoot();
        builder_.SetLabel(r, builder_.labels()->Name(taxa[0]));
      } else {
        builder_.AddChildWithLabelId(parent, taxa[0]);
      }
      return Status::OK();
    }

    std::vector<size_t> active(sources_.size());
    std::iota(active.begin(), active.end(), size_t{0});
    COUSINS_ASSIGN_OR_RETURN(auto components, Components(taxa, active));
    while (components.size() == 1 && !active.empty()) {
      if (options_.strict) {
        return Status::FailedPrecondition(
            "sources are incompatible: BUILD cannot split a " +
            std::to_string(taxa.size()) + "-taxon component");
      }
      // Greedy: ignore the last contributing source at this level.
      active.pop_back();
      COUSINS_ASSIGN_OR_RETURN(components, Components(taxa, active));
    }
    if (components.size() == 1) {
      // No constraints left: resolve as a star.
      const NodeId self =
          parent == kNoNode ? builder_.AddRoot() : builder_.AddChild(parent);
      for (LabelId t : taxa) builder_.AddChildWithLabelId(self, t);
      return Status::OK();
    }

    const NodeId self =
        parent == kNoNode ? builder_.AddRoot() : builder_.AddChild(parent);
    for (const std::vector<LabelId>& component : components) {
      COUSINS_RETURN_IF_ERROR(BuildNode(component, self));
    }
    return Status::OK();
  }

  const std::vector<Tree>& sources_;
  const SupertreeOptions& options_;
  TreeBuilder builder_;
  std::vector<std::unordered_set<LabelId>> source_taxa_;
};

}  // namespace

Result<Tree> BuildSupertree(const std::vector<Tree>& sources,
                            const SupertreeOptions& options) {
  if (sources.empty()) {
    return Status::InvalidArgument("no source trees");
  }
  std::unordered_set<LabelId> taxon_set;
  for (const Tree& s : sources) {
    COUSINS_CHECK(s.labels_ptr() == sources[0].labels_ptr());
    COUSINS_ASSIGN_OR_RETURN(TaxonIndex idx, TaxonIndex::FromTree(s));
    for (int32_t i = 0; i < idx.size(); ++i) {
      taxon_set.insert(idx.label_of(i));
    }
  }
  std::vector<LabelId> all_taxa(taxon_set.begin(), taxon_set.end());
  std::sort(all_taxa.begin(), all_taxa.end());

  SupertreeBuilder builder(sources, options, sources[0].labels_ptr());
  return builder.Build(all_taxa);
}

Result<bool> Displays(const Tree& supertree, const Tree& source) {
  COUSINS_CHECK(supertree.labels_ptr() == source.labels_ptr());
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex taxa, TaxonIndex::FromTree(source));
  std::vector<LabelId> keep;
  for (int32_t i = 0; i < taxa.size(); ++i) keep.push_back(taxa.label_of(i));
  COUSINS_ASSIGN_OR_RETURN(Tree restricted,
                           RestrictToLabels(supertree, keep));
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex restricted_taxa,
                           TaxonIndex::FromTree(restricted));
  if (restricted_taxa.size() != taxa.size()) return false;
  COUSINS_ASSIGN_OR_RETURN(std::vector<Bitset> source_clusters,
                           TreeClusters(source, taxa));
  COUSINS_ASSIGN_OR_RETURN(std::vector<Bitset> restricted_clusters,
                           TreeClusters(restricted, taxa));
  std::unordered_set<Bitset, BitsetHash> have(restricted_clusters.begin(),
                                              restricted_clusters.end());
  for (const Bitset& c : source_clusters) {
    if (!have.contains(c)) return false;
  }
  return true;
}

}  // namespace cousins
