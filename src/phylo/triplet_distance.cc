#include "phylo/triplet_distance.h"

#include <vector>

#include "phylo/clusters.h"
#include "tree/lca.h"

namespace cousins {
namespace {

/// Resolution of {a, b, c}: 0 = ab|c, 1 = ac|b, 2 = bc|a, 3 = star.
int ResolveTriplet(const Tree& tree, const LcaIndex& lca, NodeId a,
                   NodeId b, NodeId c) {
  const NodeId ab = lca.Lca(a, b);
  const NodeId ac = lca.Lca(a, c);
  const NodeId bc = lca.Lca(b, c);
  const NodeId all = lca.Lca(ab, c);
  const int32_t depth_all = tree.depth(all);
  if (tree.depth(ab) > depth_all) return 0;
  if (tree.depth(ac) > depth_all) return 1;
  if (tree.depth(bc) > depth_all) return 2;
  return 3;
}

}  // namespace

Result<TripletDistanceResult> TripletDistance(const Tree& t1,
                                              const Tree& t2) {
  std::vector<Tree> pair = {t1, t2};
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex taxa, TaxonIndex::FromTrees(pair));
  const int32_t n = taxa.size();

  // Leaf node of each taxon in each tree.
  std::vector<NodeId> leaf1(n, kNoNode);
  std::vector<NodeId> leaf2(n, kNoNode);
  for (NodeId v = 0; v < t1.size(); ++v) {
    if (t1.is_leaf(v)) leaf1[taxa.index_of(t1.label(v))] = v;
  }
  for (NodeId v = 0; v < t2.size(); ++v) {
    if (t2.is_leaf(v)) leaf2[taxa.index_of(t2.label(v))] = v;
  }

  LcaIndex lca1(t1);
  LcaIndex lca2(t2);
  TripletDistanceResult result;
  for (int32_t a = 0; a < n; ++a) {
    for (int32_t b = a + 1; b < n; ++b) {
      for (int32_t c = b + 1; c < n; ++c) {
        ++result.triplets;
        const int r1 =
            ResolveTriplet(t1, lca1, leaf1[a], leaf1[b], leaf1[c]);
        const int r2 =
            ResolveTriplet(t2, lca2, leaf2[a], leaf2[b], leaf2[c]);
        result.disagreements += r1 != r2;
      }
    }
  }
  result.normalized =
      result.triplets == 0
          ? 0.0
          : static_cast<double>(result.disagreements) /
                static_cast<double>(result.triplets);
  return result;
}

}  // namespace cousins
