// Co-occurring pattern discovery (§5.1, Figure 8): frequent cousin
// pairs across a set of phylogenies, e.g. the seed-plant study's
// (Gnetum, Welwitschia) pair at distance 0 in all four trees.
//
// This is a thin governed facade over the forest miners: it picks the
// sequential or sharded-parallel engine, runs it under a MiningContext,
// and reports the outcome in application terms. Phylo callers (benches,
// the CLI, services) go through here so deadlines, budgets and
// cancellation apply uniformly.

#ifndef COUSINS_PHYLO_COOCCURRENCE_H_
#define COUSINS_PHYLO_COOCCURRENCE_H_

#include <cstdint>
#include <vector>

#include "core/checkpoint.h"
#include "core/multi_tree_mining.h"
#include "util/governance.h"
#include "util/result.h"

namespace cousins {

struct CooccurrenceOptions {
  /// Forest mining parameters (minsup, per-tree maxdist/minoccur, "@").
  MultiTreeMiningOptions mining;
  /// 1 = sequential; 0 or >1 = sharded parallel miner with that many
  /// workers (0 = hardware concurrency).
  int32_t num_threads = 1;
  /// Crash-safe checkpoint/resume (core/checkpoint.h); an empty path
  /// disables it. With a path set, the checkpointed driver is used for
  /// any thread count, so interrupted runs resume bit-identically.
  MiningCheckpointConfig checkpoint;
  /// Degraded-mode policy (core/quarantine.h): lenient per-tree
  /// quarantine, transient-I/O retry, and the worker stall watchdog.
  /// The default is fully strict and changes nothing.
  DegradedModeConfig degraded;
};

/// Mines co-occurring cousin-pair patterns across `trees` under
/// `context`. Hard input errors come back as an error Result;
/// governance trips come back OK with a partial, truncated-flagged run
/// covering `trees_processed` fully-mined trees.
Result<MultiTreeMiningRun> MineCooccurrencePatterns(
    const std::vector<Tree>& trees, const CooccurrenceOptions& options = {},
    const MiningContext& context = MiningContext::Unlimited());

}  // namespace cousins

#endif  // COUSINS_PHYLO_COOCCURRENCE_H_
