#include "phylo/robinson_foulds.h"

#include <unordered_set>
#include <vector>

#include "phylo/clusters.h"
#include "util/bitset.h"

namespace cousins {

Result<RobinsonFouldsResult> RobinsonFoulds(const Tree& t1,
                                            const Tree& t2) {
  std::vector<Tree> pair;
  pair.push_back(t1);
  pair.push_back(t2);
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex taxa, TaxonIndex::FromTrees(pair));
  COUSINS_ASSIGN_OR_RETURN(std::vector<Bitset> c1, TreeClusters(t1, taxa));
  COUSINS_ASSIGN_OR_RETURN(std::vector<Bitset> c2, TreeClusters(t2, taxa));

  std::unordered_set<Bitset, BitsetHash> set2(c2.begin(), c2.end());
  size_t shared = 0;
  for (const Bitset& c : c1) shared += set2.contains(c);

  RobinsonFouldsResult result;
  const double symmetric_diff =
      static_cast<double>(c1.size() - shared + c2.size() - shared);
  result.distance = symmetric_diff / 2.0;
  const double max_possible =
      static_cast<double>(c1.size() + c2.size()) / 2.0;
  result.normalized =
      max_possible == 0 ? 0.0 : result.distance / max_possible;
  return result;
}

}  // namespace cousins
