#include "phylo/cooccurrence.h"

#include "core/parallel_mining.h"
#include "obs/metrics.h"

namespace cousins {

Result<MultiTreeMiningRun> MineCooccurrencePatterns(
    const std::vector<Tree>& trees, const CooccurrenceOptions& options,
    const MiningContext& context) {
  COUSINS_METRIC_SCOPED_TIMER("phylo.cooccurrence");
  if (!options.checkpoint.path.empty()) {
    return MineMultipleTreesCheckpointed(trees, options.mining, context,
                                         options.checkpoint,
                                         options.num_threads);
  }
  if (options.num_threads == 1) {
    return MineMultipleTreesGoverned(trees, options.mining, context);
  }
  return MineMultipleTreesParallelGoverned(trees, options.mining, context,
                                           options.num_threads);
}

}  // namespace cousins
