#include "phylo/cooccurrence.h"

#include "core/parallel_mining.h"
#include "obs/metrics.h"

namespace cousins {

Result<MultiTreeMiningRun> MineCooccurrencePatterns(
    const std::vector<Tree>& trees, const CooccurrenceOptions& options,
    const MiningContext& context) {
  COUSINS_METRIC_SCOPED_TIMER("phylo.cooccurrence");
  if (!options.checkpoint.path.empty()) {
    return MineMultipleTreesCheckpointed(trees, options.mining, context,
                                         options.checkpoint,
                                         options.degraded,
                                         options.num_threads);
  }
  // Lenient isolation and the watchdog live in the batch driver, so any
  // degraded run routes through it even on one thread.
  const bool degraded_active =
      options.degraded.lenient ||
      options.degraded.watchdog_interval.count() > 0;
  if (options.num_threads == 1 && !degraded_active) {
    return MineMultipleTreesGoverned(trees, options.mining, context);
  }
  return MineMultipleTreesParallelGoverned(trees, options.mining, context,
                                           options.degraded,
                                           options.num_threads);
}

}  // namespace cousins
