// Cousin-pair tree distance, Eq. (6) of §5.3 — a distance on phylogenies
// that, unlike COMPONENT's measures [31], does not require identical
// taxon sets.
//
//   t_dist(T1, T2) = 1 − |cpi(T1) ∩ cpi(T2)| / |cpi(T1) ∪ cpi(T2)|
//
// (a Jaccard distance; the paper's text calls the ratio itself the
// "distance" but minimizing kernel-tree distance is only meaningful for
// the complement, so we expose the complement and note the convention
// in EXPERIMENTS.md). Per footnote 2, intersection/union of item sets
// with occurrence counts use min/max multiset semantics.
//
// Four abstractions of the cousin pair items give the paper's four
// variants t_dist, t_dist_dist, t_dist_occur, t_dist_dist_occur.

#ifndef COUSINS_PHYLO_TREE_DISTANCE_H_
#define COUSINS_PHYLO_TREE_DISTANCE_H_

#include <string>
#include <vector>

#include "core/cousin_pair.h"
#include "tree/tree.h"

namespace cousins {

enum class CousinItemAbstraction {
  /// (a, b, @, @): label pairs only.
  kLabelsOnly,
  /// (a, b, d, @): label pairs with distances.
  kDistance,
  /// (a, b, @, occ): label pairs with occurrence multiplicities.
  kOccurrence,
  /// (a, b, d, occ): full items.
  kDistanceAndOccurrence,
};

std::string AbstractionName(CousinItemAbstraction abstraction);

inline constexpr CousinItemAbstraction kAllAbstractions[] = {
    CousinItemAbstraction::kLabelsOnly,
    CousinItemAbstraction::kDistance,
    CousinItemAbstraction::kOccurrence,
    CousinItemAbstraction::kDistanceAndOccurrence,
};

/// A tree's cousin-pair profile under an abstraction: canonical items
/// with occurrence 1 where occurrences are abstracted away. Distances
/// computed from profiles of the same abstraction are Eq. (6) values.
std::vector<CousinPairItem> CousinProfile(const Tree& tree,
                                          CousinItemAbstraction abstraction,
                                          const MiningOptions& options = {});

/// Eq. (6) over two precomputed profiles (min/max multiset semantics).
/// Returns a value in [0, 1]; 0 when both profiles are empty.
double ProfileDistance(const std::vector<CousinPairItem>& a,
                       const std::vector<CousinPairItem>& b);

/// Eq. (6) between two trees sharing one LabelTable.
double CousinTreeDistance(const Tree& t1, const Tree& t2,
                          CousinItemAbstraction abstraction,
                          const MiningOptions& options = {});

}  // namespace cousins

#endif  // COUSINS_PHYLO_TREE_DISTANCE_H_
