// Nearest-neighbor search in a phylogeny corpus — the TreeRank
// application [39] the paper builds on: given a query tree, rank the
// database trees by similarity. Here similarity is 1 − t_dist (Eq. 6);
// profiles are precomputed once per corpus so queries cost one profile
// mining plus a linear scan of merge-joins.

#ifndef COUSINS_PHYLO_NEAREST_NEIGHBOR_H_
#define COUSINS_PHYLO_NEAREST_NEIGHBOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "phylo/tree_distance.h"
#include "tree/tree.h"

namespace cousins {

/// A ranked corpus hit.
struct TreeMatch {
  /// Index of the tree within the corpus.
  int32_t index = 0;
  /// Cousin tree distance to the query (smaller = closer).
  double distance = 0.0;

  friend bool operator==(const TreeMatch&, const TreeMatch&) = default;
};

/// Precomputed cousin-pair profiles over a corpus of trees. The corpus
/// trees themselves are not retained.
class CousinProfileIndex {
 public:
  /// Builds profiles for `corpus` under the given abstraction/options.
  /// All trees must share one LabelTable (the query's table).
  CousinProfileIndex(const std::vector<Tree>& corpus,
                     CousinItemAbstraction abstraction =
                         CousinItemAbstraction::kDistanceAndOccurrence,
                     const MiningOptions& mining = {});

  int32_t size() const { return static_cast<int32_t>(profiles_.size()); }

  /// The k nearest corpus trees to `query`, ascending distance
  /// (deterministic index tie-break). k is clamped to the corpus size.
  std::vector<TreeMatch> Query(const Tree& query, int32_t k) const;

  /// Distance of `query` to one corpus entry.
  double DistanceTo(const Tree& query, int32_t index) const;

 private:
  CousinItemAbstraction abstraction_;
  MiningOptions mining_;
  std::vector<std::vector<CousinPairItem>> profiles_;
};

}  // namespace cousins

#endif  // COUSINS_PHYLO_NEAREST_NEIGHBOR_H_
