#include "phylo/nearest_neighbor.h"

#include <algorithm>

#include "util/check.h"

namespace cousins {

CousinProfileIndex::CousinProfileIndex(const std::vector<Tree>& corpus,
                                       CousinItemAbstraction abstraction,
                                       const MiningOptions& mining)
    : abstraction_(abstraction), mining_(mining) {
  profiles_.reserve(corpus.size());
  for (const Tree& tree : corpus) {
    profiles_.push_back(CousinProfile(tree, abstraction_, mining_));
  }
}

std::vector<TreeMatch> CousinProfileIndex::Query(const Tree& query,
                                                 int32_t k) const {
  const std::vector<CousinPairItem> query_profile =
      CousinProfile(query, abstraction_, mining_);
  std::vector<TreeMatch> matches;
  matches.reserve(profiles_.size());
  for (int32_t i = 0; i < size(); ++i) {
    matches.push_back(
        TreeMatch{i, ProfileDistance(query_profile, profiles_[i])});
  }
  std::sort(matches.begin(), matches.end(),
            [](const TreeMatch& a, const TreeMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.index < b.index;
            });
  if (k < 0) k = 0;
  if (k < static_cast<int32_t>(matches.size())) matches.resize(k);
  return matches;
}

double CousinProfileIndex::DistanceTo(const Tree& query,
                                      int32_t index) const {
  COUSINS_CHECK(index >= 0 && index < size());
  return ProfileDistance(CousinProfile(query, abstraction_, mining_),
                         profiles_[index]);
}

}  // namespace cousins
