// Consensus-quality similarity score, Eq. (4)-(5) of §5.2.
//
// sim(C, T) = Σᵢ 1 / 2^{|c_dist_C(cpᵢ) − c_dist_T(cpᵢ)|} over the cousin
// pairs cpᵢ whose labels occur (as a cousin pair item) in both C and T.
// A shared pair with equal distances contributes 1; diverging distances
// decay geometrically.
//
// Phylogeny taxa are unique, so a shared label pair has a single cousin
// distance per tree; for general trees where a pair occurs at several
// distances we take the minimum distance in each tree (a documented
// interpretation of Eq. (4), which implicitly assumes uniqueness).

#ifndef COUSINS_PHYLO_SIMILARITY_H_
#define COUSINS_PHYLO_SIMILARITY_H_

#include <vector>

#include "core/cousin_pair.h"
#include "tree/tree.h"
#include "util/governance.h"
#include "util/result.h"

namespace cousins {

/// sim(C, T) per Eq. (4). Both trees must share one LabelTable.
double CousinSimilarityScore(const Tree& consensus, const Tree& original,
                             const MiningOptions& options = {});

/// Same, over precomputed canonical item vectors (avoids re-mining).
double CousinSimilarityScore(const std::vector<CousinPairItem>& consensus,
                             const std::vector<CousinPairItem>& original);

/// Average similarity of a consensus against the parsimonious set it
/// summarizes, Eq. (5): (Σ_T sim(C, T)) / |set|.
double AverageSimilarityScore(const Tree& consensus,
                              const std::vector<Tree>& originals,
                              const MiningOptions& options = {});

/// Outcome of a governed consensus-evaluation run. On a trip `average`
/// covers the first `originals_scored` originals; a complete run equals
/// AverageSimilarityScore bit for bit.
struct SimilarityRun {
  double average = 0.0;
  int32_t originals_scored = 0;
  bool truncated = false;
  Status termination;
};

/// AverageSimilarityScore under a resource-governance context. Empty
/// `originals` or a label-table mismatch come back as kInvalidArgument
/// instead of aborting; governance trips come back OK with a partial,
/// truncated-flagged run.
Result<SimilarityRun> AverageSimilarityScoreGoverned(
    const Tree& consensus, const std::vector<Tree>& originals,
    const MiningOptions& options, const MiningContext& context);

}  // namespace cousins

#endif  // COUSINS_PHYLO_SIMILARITY_H_
