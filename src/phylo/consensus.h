// The five consensus-tree methods the paper evaluates in §5.2:
// Adams [1], strict [9], majority [26], semi-strict (combinable
// component) [5], and Nelson [30].
//
// All methods take a set of rooted phylogenies over one taxon set and
// return a single rooted consensus phylogeny:
//   - strict:      clusters present in every input tree;
//   - majority:    clusters present in more than half the input trees
//                  (threshold configurable);
//   - semi-strict: clusters present somewhere and compatible with every
//                  input tree (combinable components);
//   - Nelson:      the maximum-replication clique of mutually compatible
//                  clusters (exact max-weight clique, deterministic
//                  tie-break);
//   - Adams:       recursive product of the root partitions.

#ifndef COUSINS_PHYLO_CONSENSUS_H_
#define COUSINS_PHYLO_CONSENSUS_H_

#include <string>
#include <vector>

#include "core/quarantine.h"
#include "phylo/clusters.h"
#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

enum class ConsensusMethod {
  kStrict,
  kMajority,
  kSemiStrict,
  kAdams,
  kNelson,
  /// Majority-rule extended ("greedy") consensus: start from the
  /// majority clusters and keep adding the most-replicated remaining
  /// compatible clusters. Not part of the paper's five; provided as the
  /// standard sixth method for comparison.
  kGreedy,
};

/// Human-readable method name ("majority", ...).
std::string ConsensusMethodName(ConsensusMethod method);

/// The paper's five methods (Fig. 9's comparison set), for sweeping.
inline constexpr ConsensusMethod kAllConsensusMethods[] = {
    ConsensusMethod::kMajority, ConsensusMethod::kNelson,
    ConsensusMethod::kAdams, ConsensusMethod::kStrict,
    ConsensusMethod::kSemiStrict,
};

/// The five plus the greedy extension.
inline constexpr ConsensusMethod kAllConsensusMethodsExtended[] = {
    ConsensusMethod::kMajority, ConsensusMethod::kNelson,
    ConsensusMethod::kAdams,    ConsensusMethod::kStrict,
    ConsensusMethod::kSemiStrict, ConsensusMethod::kGreedy,
};

struct ConsensusOptions {
  /// Majority rule: keep clusters in > majority_threshold · #trees
  /// trees. 0.5 is the standard majority rule.
  double majority_threshold = 0.5;
};

/// Computes the consensus of `trees` (all over the same taxon set,
/// sharing one LabelTable). Fails on empty input or mismatched taxa.
Result<Tree> ConsensusTree(const std::vector<Tree>& trees,
                           ConsensusMethod method,
                           const ConsensusOptions& options = {});

/// ConsensusTree under a degraded-mode policy. With `degraded.lenient`
/// unset this is exactly ConsensusTree. In lenient mode the reference
/// taxon set is the first tree's (more precisely, the first tree whose
/// taxa form a valid index — unlabeled or duplicated leaves disqualify
/// a tree); every tree whose taxon set does not match the reference is
/// quarantined into `degraded.ledger` (stage kConsensus, indexed via
/// `degraded.source_indices` when the caller pre-filtered the forest)
/// and the consensus is computed over the trees that remain. Fails if
/// quarantining leaves no usable tree — a consensus of nothing is not
/// a degraded result, it is no result.
Result<Tree> ConsensusTreeDegraded(const std::vector<Tree>& trees,
                                   ConsensusMethod method,
                                   const ConsensusOptions& options,
                                   const DegradedModeConfig& degraded);

}  // namespace cousins

#endif  // COUSINS_PHYLO_CONSENSUS_H_
