// Nonparametric bootstrap support for clusters (Felsenstein): resample
// alignment columns with replacement, rebuild a tree per replicate, and
// report the fraction of replicates containing each cluster of the
// reference tree. Exercises the full substrate chain
// (alignment -> NJ -> clusters) and gives the consensus/similarity
// analyses a statistically grounded companion.

#ifndef COUSINS_PHYLO_BOOTSTRAP_H_
#define COUSINS_PHYLO_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "seq/alignment.h"
#include "tree/tree.h"
#include "util/result.h"
#include "util/rng.h"

namespace cousins {

struct BootstrapOptions {
  int32_t replicates = 100;
};

struct ClusterSupport {
  /// The internal node of the reference tree the cluster belongs to.
  NodeId node = kNoNode;
  /// Fraction of replicates whose tree contains the cluster, in [0, 1].
  double support = 0.0;
};

/// Bootstrap support of every nontrivial cluster of `reference`
/// (typically the NJ tree of `alignment`), using NJ on each resampled
/// replicate. Fails if reference taxa and alignment disagree.
Result<std::vector<ClusterSupport>> BootstrapSupport(
    const Tree& reference, const Alignment& alignment,
    const BootstrapOptions& options, Rng& rng);

}  // namespace cousins

#endif  // COUSINS_PHYLO_BOOTSTRAP_H_
