// Nonparametric bootstrap support for clusters (Felsenstein): resample
// alignment columns with replacement, rebuild a tree per replicate, and
// report the fraction of replicates containing each cluster of the
// reference tree. Exercises the full substrate chain
// (alignment -> NJ -> clusters) and gives the consensus/similarity
// analyses a statistically grounded companion.

#ifndef COUSINS_PHYLO_BOOTSTRAP_H_
#define COUSINS_PHYLO_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "core/quarantine.h"
#include "seq/alignment.h"
#include "tree/tree.h"
#include "util/result.h"
#include "util/rng.h"

namespace cousins {

struct BootstrapOptions {
  int32_t replicates = 100;
};

struct ClusterSupport {
  /// The internal node of the reference tree the cluster belongs to.
  NodeId node = kNoNode;
  /// Fraction of replicates whose tree contains the cluster, in [0, 1].
  double support = 0.0;
};

/// Bootstrap support of every nontrivial cluster of `reference`
/// (typically the NJ tree of `alignment`), using NJ on each resampled
/// replicate. Fails if reference taxa and alignment disagree.
Result<std::vector<ClusterSupport>> BootstrapSupport(
    const Tree& reference, const Alignment& alignment,
    const BootstrapOptions& options, Rng& rng);

/// BootstrapSupport under a degraded-mode policy. Each replicate
/// passes the cold fault site `bootstrap.replicate`; a replicate that
/// fails (injected fault or a real rebuild error) is, in lenient mode,
/// quarantined into `degraded.ledger` (stage kBootstrap, tree_index =
/// replicate number) and support fractions are normalized over the
/// replicates that succeeded — the estimate degrades in precision, not
/// in correctness. Strict mode surfaces the first failure. Fails if no
/// replicate succeeds.
Result<std::vector<ClusterSupport>> BootstrapSupportDegraded(
    const Tree& reference, const Alignment& alignment,
    const BootstrapOptions& options, Rng& rng,
    const DegradedModeConfig& degraded);

}  // namespace cousins

#endif  // COUSINS_PHYLO_BOOTSTRAP_H_
