// Phylogenetic data clustering under the cousin tree distance — the
// application the paper points to in §7 (future work (ii)), following
// the postprocessing-by-clustering workflow of Stockham, Wang & Warnow
// [37]: when the set of equally parsimonious trees is too heterogeneous
// for one informative consensus, partition it into clusters and derive
// a consensus tree per cluster.
//
// Clustering is k-medoids (PAM-style alternation) over any of the
// Eq. (6) distance variants, with deterministic seeding.

#ifndef COUSINS_PHYLO_CLUSTERING_H_
#define COUSINS_PHYLO_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "phylo/consensus.h"
#include "phylo/tree_distance.h"
#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

struct ClusteringOptions {
  /// Number of clusters.
  int32_t k = 2;
  /// Distance variant (Eq. 6) and mining parameters.
  CousinItemAbstraction abstraction =
      CousinItemAbstraction::kDistanceAndOccurrence;
  MiningOptions mining;
  /// Alternation rounds cap and random restarts.
  int32_t max_iterations = 50;
  int32_t restarts = 4;
  uint64_t seed = 11;
};

struct TreeClustering {
  /// assignment[i] = cluster of trees[i], in [0, k).
  std::vector<int32_t> assignment;
  /// medoid[c] = index into trees of cluster c's medoid.
  std::vector<int32_t> medoids;
  /// Sum over trees of the distance to their cluster medoid.
  double total_distance = 0.0;
};

/// k-medoids clustering of `trees` (all sharing one LabelTable) under
/// the cousin tree distance. Fails if k < 1 or k > |trees|.
Result<TreeClustering> ClusterTrees(const std::vector<Tree>& trees,
                                    const ClusteringOptions& options = {});

/// The [37] workflow: cluster, then build one consensus per cluster.
/// All trees must share one taxon set (a consensus-method requirement).
/// Returns k consensus trees, indexed by cluster.
Result<std::vector<Tree>> ClusterConsensus(
    const std::vector<Tree>& trees, const ClusteringOptions& options = {},
    ConsensusMethod method = ConsensusMethod::kMajority);

}  // namespace cousins

#endif  // COUSINS_PHYLO_CLUSTERING_H_
