#include "phylo/clustering.h"

#include <algorithm>
#include <limits>

#include "util/rng.h"

namespace cousins {
namespace {

/// All-pairs distance matrix from precomputed profiles.
std::vector<std::vector<double>> DistanceMatrix(
    const std::vector<Tree>& trees, const ClusteringOptions& options) {
  const auto n = static_cast<int32_t>(trees.size());
  std::vector<std::vector<CousinPairItem>> profiles;
  profiles.reserve(n);
  for (const Tree& t : trees) {
    profiles.push_back(CousinProfile(t, options.abstraction, options.mining));
  }
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] = ProfileDistance(profiles[i], profiles[j]);
    }
  }
  return d;
}

/// Greedy farthest-point seeding (deterministic given the start pick).
std::vector<int32_t> SeedMedoids(const std::vector<std::vector<double>>& d,
                                 int32_t k, int32_t first) {
  std::vector<int32_t> medoids = {first};
  const auto n = static_cast<int32_t>(d.size());
  while (static_cast<int32_t>(medoids.size()) < k) {
    int32_t best = -1;
    double best_dist = -1.0;
    for (int32_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (int32_t m : medoids) nearest = std::min(nearest, d[i][m]);
      if (nearest > best_dist) {
        best_dist = nearest;
        best = i;
      }
    }
    medoids.push_back(best);
  }
  return medoids;
}

double AssignToMedoids(const std::vector<std::vector<double>>& d,
                       const std::vector<int32_t>& medoids,
                       std::vector<int32_t>* assignment) {
  const auto n = static_cast<int32_t>(d.size());
  assignment->assign(n, 0);
  double total = 0.0;
  for (int32_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < medoids.size(); ++c) {
      const double dist = d[i][medoids[c]];
      if (dist < best) {
        best = dist;
        (*assignment)[i] = static_cast<int32_t>(c);
      }
    }
    total += best;
  }
  return total;
}

}  // namespace

Result<TreeClustering> ClusterTrees(const std::vector<Tree>& trees,
                                    const ClusteringOptions& options) {
  const auto n = static_cast<int32_t>(trees.size());
  if (options.k < 1 || options.k > n) {
    return Status::InvalidArgument(
        "k must be in [1, #trees]; got k=" + std::to_string(options.k) +
        " for " + std::to_string(n) + " trees");
  }
  for (const Tree& t : trees) {
    COUSINS_CHECK(t.labels_ptr() == trees[0].labels_ptr());
  }

  const std::vector<std::vector<double>> d = DistanceMatrix(trees, options);
  Rng rng(options.seed);
  TreeClustering best;
  best.total_distance = std::numeric_limits<double>::infinity();

  for (int32_t restart = 0; restart < std::max(options.restarts, 1);
       ++restart) {
    const auto first =
        restart == 0 ? 0 : static_cast<int32_t>(rng.Uniform(n));
    std::vector<int32_t> medoids = SeedMedoids(d, options.k, first);
    std::vector<int32_t> assignment;
    double total = AssignToMedoids(d, medoids, &assignment);

    for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
      // Update step: each cluster's medoid becomes its member with the
      // smallest intra-cluster distance sum.
      bool changed = false;
      for (int32_t c = 0; c < options.k; ++c) {
        double best_sum = std::numeric_limits<double>::infinity();
        int32_t best_medoid = medoids[c];
        for (int32_t i = 0; i < n; ++i) {
          if (assignment[i] != c) continue;
          double sum = 0.0;
          for (int32_t j = 0; j < n; ++j) {
            if (assignment[j] == c) sum += d[i][j];
          }
          if (sum < best_sum) {
            best_sum = sum;
            best_medoid = i;
          }
        }
        if (best_medoid != medoids[c]) {
          medoids[c] = best_medoid;
          changed = true;
        }
      }
      const double new_total = AssignToMedoids(d, medoids, &assignment);
      if (!changed && new_total >= total - 1e-15) break;
      total = new_total;
    }

    if (total < best.total_distance) {
      best.total_distance = total;
      best.medoids = medoids;
      best.assignment = assignment;
    }
  }
  return best;
}

Result<std::vector<Tree>> ClusterConsensus(const std::vector<Tree>& trees,
                                           const ClusteringOptions& options,
                                           ConsensusMethod method) {
  COUSINS_ASSIGN_OR_RETURN(TreeClustering clustering,
                           ClusterTrees(trees, options));
  std::vector<Tree> out;
  out.reserve(options.k);
  for (int32_t c = 0; c < options.k; ++c) {
    std::vector<Tree> members;
    for (size_t i = 0; i < trees.size(); ++i) {
      if (clustering.assignment[i] == c) members.push_back(trees[i]);
    }
    if (members.empty()) {
      // Farthest-point seeding cannot produce an empty cluster unless
      // there are duplicate trees claiming everything; represent such a
      // cluster by its medoid.
      members.push_back(trees[clustering.medoids[c]]);
    }
    COUSINS_ASSIGN_OR_RETURN(Tree consensus, ConsensusTree(members, method));
    out.push_back(std::move(consensus));
  }
  return out;
}

}  // namespace cousins
