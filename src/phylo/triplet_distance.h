// Rooted triplet distance — with Robinson–Foulds, the other classic
// same-taxa comparison COMPONENT [31] popularized: the fraction of
// 3-taxon subsets {a, b, c} on which two trees disagree about which
// pair is closest. Another baseline for the paper's §7 comparison of
// the cousin-pair distance against established measures.

#ifndef COUSINS_PHYLO_TRIPLET_DISTANCE_H_
#define COUSINS_PHYLO_TRIPLET_DISTANCE_H_

#include <cstdint>

#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

struct TripletDistanceResult {
  /// Number of 3-taxon subsets resolved differently.
  int64_t disagreements = 0;
  /// Total subsets, C(n, 3).
  int64_t triplets = 0;
  /// disagreements / triplets (0 when n < 3).
  double normalized = 0.0;
};

/// Triplet distance between two trees over the same taxa. A triplet is
/// resolved as ab|c when lca(a, b) is a strict descendant of
/// lca(a, b, c); star triplets (multifurcations) count as a distinct
/// resolution. O(n³) with O(1) LCA queries — fine at phylogenetic
/// scales. Fails unless the taxon sets are identical.
Result<TripletDistanceResult> TripletDistance(const Tree& t1,
                                              const Tree& t2);

}  // namespace cousins

#endif  // COUSINS_PHYLO_TRIPLET_DISTANCE_H_
