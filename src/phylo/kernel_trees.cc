#include "phylo/kernel_trees.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cousins {
namespace {

/// Pairwise distances between trees of different groups, computed once
/// from precomputed profiles.
class DistanceTable {
 public:
  DistanceTable(const std::vector<std::vector<Tree>>& groups,
                const KernelTreeOptions& options) {
    offsets_.reserve(groups.size() + 1);
    offsets_.push_back(0);
    for (const auto& group : groups) {
      COUSINS_CHECK(!group.empty());
      offsets_.push_back(offsets_.back() +
                         static_cast<int32_t>(group.size()));
    }
    profiles_.reserve(offsets_.back());
    for (const auto& group : groups) {
      for (const Tree& tree : group) {
        profiles_.push_back(
            CousinProfile(tree, options.abstraction, options.mining));
      }
    }
    const int32_t total = offsets_.back();
    dist_.assign(static_cast<size_t>(total) * total, 0.0);
    for (int32_t i = 0; i < total; ++i) {
      for (int32_t j = i + 1; j < total; ++j) {
        const double d = ProfileDistance(profiles_[i], profiles_[j]);
        dist_[static_cast<size_t>(i) * total + j] = d;
        dist_[static_cast<size_t>(j) * total + i] = d;
      }
    }
    total_ = total;
  }

  double Distance(int32_t group_a, int32_t index_a, int32_t group_b,
                  int32_t index_b) const {
    const int32_t i = offsets_[group_a] + index_a;
    const int32_t j = offsets_[group_b] + index_b;
    return dist_[static_cast<size_t>(i) * total_ + j];
  }

 private:
  std::vector<std::vector<CousinPairItem>> profiles_;
  std::vector<int32_t> offsets_;
  std::vector<double> dist_;
  int32_t total_ = 0;
};

double TotalPairwise(const DistanceTable& table,
                     const std::vector<int32_t>& selected) {
  double total = 0.0;
  for (size_t a = 0; a < selected.size(); ++a) {
    for (size_t b = a + 1; b < selected.size(); ++b) {
      total += table.Distance(static_cast<int32_t>(a), selected[a],
                              static_cast<int32_t>(b), selected[b]);
    }
  }
  return total;
}

}  // namespace

KernelTreeResult FindKernelTrees(const std::vector<std::vector<Tree>>& groups,
                                 const KernelTreeOptions& options) {
  COUSINS_CHECK(!groups.empty());
  const auto g = static_cast<int32_t>(groups.size());
  DistanceTable table(groups, options);

  KernelTreeResult result;
  result.selected.assign(g, 0);
  if (g == 1) {
    result.exact = true;
    return result;
  }
  const double pairs = static_cast<double>(g) * (g - 1) / 2.0;

  int64_t combinations = 1;
  bool exhaustive = true;
  for (const auto& group : groups) {
    combinations *= static_cast<int64_t>(group.size());
    if (combinations > options.exhaustive_limit) {
      exhaustive = false;
      break;
    }
  }

  if (exhaustive) {
    std::vector<int32_t> current(g, 0);
    std::vector<int32_t> best = current;
    double best_total = TotalPairwise(table, current);
    // Odometer enumeration of the product space.
    while (true) {
      int32_t pos = g - 1;
      while (pos >= 0 &&
             current[pos] + 1 >= static_cast<int32_t>(groups[pos].size())) {
        current[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
      ++current[pos];
      const double total = TotalPairwise(table, current);
      if (total < best_total) {
        best_total = total;
        best = current;
      }
    }
    result.selected = best;
    result.average_pairwise_distance = best_total / pairs;
    result.exact = true;
    return result;
  }

  // Coordinate descent with random restarts: repeatedly re-optimize one
  // group's choice given the others until a fixed point.
  Rng rng(options.seed);
  std::vector<int32_t> best;
  double best_total = std::numeric_limits<double>::infinity();
  for (int32_t restart = 0; restart < options.restarts; ++restart) {
    std::vector<int32_t> current(g);
    for (int32_t a = 0; a < g; ++a) {
      current[a] = restart == 0
                       ? 0
                       : static_cast<int32_t>(rng.Uniform(groups[a].size()));
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (int32_t a = 0; a < g; ++a) {
        double best_sum = std::numeric_limits<double>::infinity();
        int32_t best_choice = current[a];
        for (int32_t i = 0; i < static_cast<int32_t>(groups[a].size());
             ++i) {
          double sum = 0.0;
          for (int32_t b = 0; b < g; ++b) {
            if (b != a) sum += table.Distance(a, i, b, current[b]);
          }
          if (sum < best_sum) {
            best_sum = sum;
            best_choice = i;
          }
        }
        if (best_choice != current[a]) {
          current[a] = best_choice;
          changed = true;
        }
      }
    }
    const double total = TotalPairwise(table, current);
    if (total < best_total) {
      best_total = total;
      best = current;
    }
  }
  result.selected = best;
  result.average_pairwise_distance = best_total / pairs;
  result.exact = false;
  return result;
}

}  // namespace cousins
