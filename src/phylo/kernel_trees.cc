#include "phylo/kernel_trees.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/governance_events.h"
#include "util/check.h"

namespace cousins {
namespace {

/// Pairwise distances between trees of different groups, computed once
/// from precomputed profiles.
class DistanceTable {
 public:
  /// Builds profiles and the pairwise matrix. Profile mining is the
  /// expensive part, so the context is consulted per tree there and per
  /// row of the O(total²) distance fill; a trip surfaces as an error
  /// Result (the caller converts it into a truncated run).
  static Result<DistanceTable> Build(
      const std::vector<std::vector<Tree>>& groups,
      const KernelTreeOptions& options, const MiningContext& context) {
    DistanceTable table;
    table.offsets_.reserve(groups.size() + 1);
    table.offsets_.push_back(0);
    for (const auto& group : groups) {
      table.offsets_.push_back(table.offsets_.back() +
                               static_cast<int32_t>(group.size()));
    }
    table.profiles_.reserve(table.offsets_.back());
    for (const auto& group : groups) {
      for (const Tree& tree : group) {
        COUSINS_RETURN_IF_ERROR(context.Check());
        table.profiles_.push_back(
            CousinProfile(tree, options.abstraction, options.mining));
      }
    }
    const int32_t total = table.offsets_.back();
    table.dist_.assign(static_cast<size_t>(total) * total, 0.0);
    for (int32_t i = 0; i < total; ++i) {
      COUSINS_RETURN_IF_ERROR(context.Check());
      for (int32_t j = i + 1; j < total; ++j) {
        const double d =
            ProfileDistance(table.profiles_[i], table.profiles_[j]);
        table.dist_[static_cast<size_t>(i) * total + j] = d;
        table.dist_[static_cast<size_t>(j) * total + i] = d;
      }
    }
    table.total_ = total;
    return table;
  }

  double Distance(int32_t group_a, int32_t index_a, int32_t group_b,
                  int32_t index_b) const {
    const int32_t i = offsets_[group_a] + index_a;
    const int32_t j = offsets_[group_b] + index_b;
    return dist_[static_cast<size_t>(i) * total_ + j];
  }

 private:
  DistanceTable() = default;

  std::vector<std::vector<CousinPairItem>> profiles_;
  std::vector<int32_t> offsets_;
  std::vector<double> dist_;
  int32_t total_ = 0;
};

double TotalPairwise(const DistanceTable& table,
                     const std::vector<int32_t>& selected) {
  double total = 0.0;
  for (size_t a = 0; a < selected.size(); ++a) {
    for (size_t b = a + 1; b < selected.size(); ++b) {
      total += table.Distance(static_cast<int32_t>(a), selected[a],
                              static_cast<int32_t>(b), selected[b]);
    }
  }
  return total;
}

}  // namespace

Result<KernelTreeRun> FindKernelTreesGoverned(
    const std::vector<std::vector<Tree>>& groups,
    const KernelTreeOptions& options, const MiningContext& context) {
  if (groups.empty()) {
    return Status::InvalidArgument(
        "kernel-tree search needs at least one group");
  }
  for (const auto& group : groups) {
    if (group.empty()) {
      return Status::InvalidArgument(
          "every kernel-tree group must be non-empty");
    }
  }

  KernelTreeRun run;
  const auto g = static_cast<int32_t>(groups.size());
  Result<DistanceTable> table_result =
      DistanceTable::Build(groups, options, context);
  if (!table_result.ok()) {
    Status st = table_result.status();
    obs::RecordGovernanceEvent(st);
    if (!IsGovernanceTrip(st)) return st;
    // Tripped before any selection could be scored: `selected` stays
    // empty, there is no best-so-far to report.
    run.truncated = true;
    run.termination = std::move(st);
    return run;
  }
  const DistanceTable& table = *table_result;

  KernelTreeResult& result = run.result;
  result.selected.assign(g, 0);
  if (g == 1) {
    result.exact = true;
    return run;
  }
  const double pairs = static_cast<double>(g) * (g - 1) / 2.0;

  int64_t combinations = 1;
  bool exhaustive = true;
  for (const auto& group : groups) {
    combinations *= static_cast<int64_t>(group.size());
    if (combinations > options.exhaustive_limit) {
      exhaustive = false;
      break;
    }
  }

  if (exhaustive) {
    std::vector<int32_t> current(g, 0);
    std::vector<int32_t> best = current;
    double best_total = TotalPairwise(table, current);
    // Odometer enumeration of the product space; the context is
    // consulted once per batch of combinations so governed-ungoverned
    // runs stay within noise.
    uint32_t tick = 0;
    while (true) {
      if ((tick++ & 1023u) == 0) {
        Status st = context.Check();
        if (!st.ok()) {
          obs::RecordGovernanceEvent(st);
          run.truncated = true;
          run.termination = std::move(st);
          break;
        }
      }
      int32_t pos = g - 1;
      while (pos >= 0 &&
             current[pos] + 1 >= static_cast<int32_t>(groups[pos].size())) {
        current[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
      ++current[pos];
      const double total = TotalPairwise(table, current);
      if (total < best_total) {
        best_total = total;
        best = current;
      }
    }
    result.selected = best;
    result.average_pairwise_distance = best_total / pairs;
    // A truncated enumeration proves nothing about optimality.
    result.exact = !run.truncated;
    return run;
  }

  // Coordinate descent with random restarts: repeatedly re-optimize one
  // group's choice given the others until a fixed point.
  Rng rng(options.seed);
  std::vector<int32_t> best;
  double best_total = std::numeric_limits<double>::infinity();
  for (int32_t restart = 0; restart < options.restarts && !run.truncated;
       ++restart) {
    std::vector<int32_t> current(g);
    for (int32_t a = 0; a < g; ++a) {
      current[a] = restart == 0
                       ? 0
                       : static_cast<int32_t>(rng.Uniform(groups[a].size()));
    }
    bool changed = true;
    while (changed) {
      Status st = context.Check();
      if (!st.ok()) {
        obs::RecordGovernanceEvent(st);
        run.truncated = true;
        run.termination = std::move(st);
        break;
      }
      changed = false;
      for (int32_t a = 0; a < g; ++a) {
        double best_sum = std::numeric_limits<double>::infinity();
        int32_t best_choice = current[a];
        for (int32_t i = 0; i < static_cast<int32_t>(groups[a].size());
             ++i) {
          double sum = 0.0;
          for (int32_t b = 0; b < g; ++b) {
            if (b != a) sum += table.Distance(a, i, b, current[b]);
          }
          if (sum < best_sum) {
            best_sum = sum;
            best_choice = i;
          }
        }
        if (best_choice != current[a]) {
          current[a] = best_choice;
          changed = true;
        }
      }
    }
    const double total = TotalPairwise(table, current);
    if (total < best_total) {
      best_total = total;
      best = current;
    }
  }
  if (!best.empty()) {
    result.selected = best;
    result.average_pairwise_distance = best_total / pairs;
  }
  result.exact = false;
  return run;
}

KernelTreeResult FindKernelTrees(const std::vector<std::vector<Tree>>& groups,
                                 const KernelTreeOptions& options) {
  Result<KernelTreeRun> run =
      FindKernelTreesGoverned(groups, options, MiningContext::Unlimited());
  COUSINS_CHECK(run.ok() && "kernel-tree search on invalid input");
  return std::move(run->result);
}

}  // namespace cousins
