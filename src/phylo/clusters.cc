#include "phylo/clusters.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "tree/builder.h"

namespace cousins {

Result<TaxonIndex> TaxonIndex::FromTree(const Tree& tree) {
  TaxonIndex idx;
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (!tree.is_leaf(v)) continue;
    if (!tree.has_label(v)) {
      return Status::InvalidArgument("unlabeled leaf (node " +
                                     std::to_string(v) + ")");
    }
    const LabelId label = tree.label(v);
    if (idx.index_.contains(label)) {
      return Status::InvalidArgument("duplicate taxon '" +
                                     tree.label_name(v) + "'");
    }
    idx.InternTaxon(label);
  }
  return idx;
}

Result<TaxonIndex> TaxonIndex::FromTrees(const std::vector<Tree>& trees) {
  if (trees.empty()) {
    return Status::InvalidArgument("no trees given");
  }
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex idx, FromTree(trees[0]));
  for (size_t i = 1; i < trees.size(); ++i) {
    COUSINS_CHECK(trees[i].labels_ptr() == trees[0].labels_ptr());
    COUSINS_ASSIGN_OR_RETURN(TaxonIndex other, FromTree(trees[i]));
    if (other.size() != idx.size()) {
      return Status::InvalidArgument(
          "tree " + std::to_string(i) + " has " +
          std::to_string(other.size()) + " taxa, expected " +
          std::to_string(idx.size()));
    }
    for (int32_t t = 0; t < other.size(); ++t) {
      if (idx.index_of(other.label_of(t)) < 0) {
        return Status::InvalidArgument("tree " + std::to_string(i) +
                                       " has a taxon absent from tree 0");
      }
    }
  }
  return idx;
}

int32_t TaxonIndex::InternTaxon(LabelId label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  const auto i = static_cast<int32_t>(taxa_.size());
  taxa_.push_back(label);
  index_.emplace(label, i);
  return i;
}

Result<std::vector<Bitset>> TreeClusters(const Tree& tree,
                                         const TaxonIndex& taxa) {
  const int32_t n = taxa.size();
  std::vector<Bitset> below(tree.size(), Bitset(n));
  // Ids are preorder, so ascending-id reverse iteration is bottom-up.
  for (NodeId v = tree.size() - 1; v >= 0; --v) {
    if (tree.is_leaf(v)) {
      if (!tree.has_label(v)) {
        return Status::InvalidArgument("unlabeled leaf in tree");
      }
      const int32_t t = taxa.index_of(tree.label(v));
      if (t < 0) {
        return Status::InvalidArgument("leaf taxon '" +
                                       tree.label_name(v) +
                                       "' missing from TaxonIndex");
      }
      below[v].Set(t);
    }
    if (v != tree.root()) below[tree.parent(v)] |= below[v];
  }

  std::unordered_set<Bitset, BitsetHash> seen;
  std::vector<Bitset> clusters;
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (tree.is_leaf(v)) continue;
    const int32_t count = below[v].Count();
    if (count < 2 || count >= n) continue;  // trivial
    if (seen.insert(below[v]).second) clusters.push_back(below[v]);
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

Result<Tree> BuildTreeFromClusters(const std::vector<Bitset>& clusters,
                                   const TaxonIndex& taxa,
                                   std::shared_ptr<LabelTable> labels) {
  const int32_t n = taxa.size();
  if (n == 0) return Status::InvalidArgument("empty taxon set");
  COUSINS_CHECK(labels != nullptr);

  // Deduplicate, drop trivial clusters, sort by size descending so a
  // cluster's parent always precedes it.
  std::vector<Bitset> work;
  {
    std::unordered_set<Bitset, BitsetHash> seen;
    for (const Bitset& c : clusters) {
      COUSINS_CHECK(c.size() == n);
      const int32_t count = c.Count();
      if (count < 2 || count >= n) continue;
      if (seen.insert(c).second) work.push_back(c);
    }
  }
  std::sort(work.begin(), work.end(), [](const Bitset& a, const Bitset& b) {
    if (a.Count() != b.Count()) return a.Count() > b.Count();
    return a < b;  // deterministic tie-break
  });

  for (size_t i = 0; i < work.size(); ++i) {
    for (size_t j = i + 1; j < work.size(); ++j) {
      if (!ClustersCompatible(work[i], work[j])) {
        return Status::FailedPrecondition(
            "cluster set is not pairwise compatible");
      }
    }
  }

  TreeBuilder b(std::move(labels));
  const NodeId root = b.AddRoot();
  // node_of[i] = tree node of work[i]; parent of work[i] is the smallest
  // strictly containing cluster, which (sorted by size desc) is the
  // last-seen superset.
  std::vector<NodeId> node_of(work.size());
  for (size_t i = 0; i < work.size(); ++i) {
    NodeId parent = root;
    for (size_t j = i; j-- > 0;) {
      if (work[i].IsSubsetOf(work[j])) {
        parent = node_of[j];
        break;
      }
    }
    node_of[i] = b.AddChild(parent);
  }
  // Attach each taxon to the smallest cluster containing it.
  for (int32_t t = 0; t < n; ++t) {
    NodeId parent = root;
    // Scanning from smallest (end) up finds the tightest cluster first.
    for (size_t j = work.size(); j-- > 0;) {
      if (work[j].Test(t)) {
        parent = node_of[j];
        break;
      }
    }
    b.AddChildWithLabelId(parent, taxa.label_of(t));
  }
  return std::move(b).Build();
}

}  // namespace cousins
