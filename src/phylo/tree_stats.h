// Descriptive statistics of phylogenies — resolution and balance
// indices used when comparing consensus methods (a fully resolved
// consensus is only better if it is also faithful; Fig. 9's similarity
// score captures faithfulness, these capture resolution).

#ifndef COUSINS_PHYLO_TREE_STATS_H_
#define COUSINS_PHYLO_TREE_STATS_H_

#include <cstdint>

#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

struct TreeStats {
  int32_t num_taxa = 0;
  int32_t num_internal = 0;
  /// Nontrivial clusters present / maximum possible (num_taxa − 2 for a
  /// rooted tree); 1 = fully resolved binary, 0 = star. Defined as 1
  /// for trees with fewer than 3 taxa.
  double resolution = 0.0;
  /// Colless imbalance: Σ over binary internal nodes of |L − R|,
  /// normalized by (n−1)(n−2)/2; 0 = perfectly balanced, 1 =
  /// caterpillar. Multifurcations contribute 0.
  double colless = 0.0;
  /// Sackin index: mean leaf depth.
  double sackin = 0.0;
};

/// Computes the statistics; fails on trees with unlabeled/duplicate
/// leaves (same contract as TaxonIndex).
Result<TreeStats> ComputeTreeStats(const Tree& tree);

}  // namespace cousins

#endif  // COUSINS_PHYLO_TREE_STATS_H_
