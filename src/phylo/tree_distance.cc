#include "phylo/tree_distance.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "core/single_tree_mining.h"

namespace cousins {

std::string AbstractionName(CousinItemAbstraction abstraction) {
  switch (abstraction) {
    case CousinItemAbstraction::kLabelsOnly:
      return "labels";
    case CousinItemAbstraction::kDistance:
      return "dist";
    case CousinItemAbstraction::kOccurrence:
      return "occur";
    case CousinItemAbstraction::kDistanceAndOccurrence:
      return "dist_occur";
  }
  return "unknown";
}

std::vector<CousinPairItem> CousinProfile(const Tree& tree,
                                          CousinItemAbstraction abstraction,
                                          const MiningOptions& options) {
  std::vector<CousinPairItem> items = MineSingleTree(tree, options);
  const bool keep_distance =
      abstraction == CousinItemAbstraction::kDistance ||
      abstraction == CousinItemAbstraction::kDistanceAndOccurrence;
  const bool keep_occurrence =
      abstraction == CousinItemAbstraction::kOccurrence ||
      abstraction == CousinItemAbstraction::kDistanceAndOccurrence;
  if (keep_distance && keep_occurrence) return items;

  // Re-aggregate under the abstraction ("@" wildcards).
  std::map<std::tuple<LabelId, LabelId, int>, int64_t> agg;
  for (const CousinPairItem& item : items) {
    const int d = keep_distance ? item.twice_distance : kAnyDistance;
    agg[{item.label1, item.label2, d}] += item.occurrences;
  }
  std::vector<CousinPairItem> out;
  out.reserve(agg.size());
  for (const auto& [key, occ] : agg) {
    out.push_back(CousinPairItem{std::get<0>(key), std::get<1>(key),
                                 std::get<2>(key),
                                 keep_occurrence ? occ : 1});
  }
  return out;  // map iteration order is canonical
}

double ProfileDistance(const std::vector<CousinPairItem>& a,
                       const std::vector<CousinPairItem>& b) {
  // Merge-join on (label1, label2, distance); occurrences use min/max
  // multiset semantics (paper footnote 2).
  auto key = [](const CousinPairItem& it) {
    return std::tie(it.label1, it.label2, it.twice_distance);
  };
  int64_t inter = 0;
  int64_t uni = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (key(a[i]) < key(b[j])) {
      uni += a[i++].occurrences;
    } else if (key(b[j]) < key(a[i])) {
      uni += b[j++].occurrences;
    } else {
      inter += std::min(a[i].occurrences, b[j].occurrences);
      uni += std::max(a[i].occurrences, b[j].occurrences);
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) uni += a[i].occurrences;
  for (; j < b.size(); ++j) uni += b[j].occurrences;
  if (uni == 0) return 0.0;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double CousinTreeDistance(const Tree& t1, const Tree& t2,
                          CousinItemAbstraction abstraction,
                          const MiningOptions& options) {
  COUSINS_CHECK(t1.labels_ptr() == t2.labels_ptr());
  return ProfileDistance(CousinProfile(t1, abstraction, options),
                         CousinProfile(t2, abstraction, options));
}

}  // namespace cousins
