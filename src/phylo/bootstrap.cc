#include "phylo/bootstrap.h"

#include <unordered_map>

#include "phylo/clusters.h"
#include "seq/neighbor_joining.h"
#include "util/bitset.h"

namespace cousins {

Result<std::vector<ClusterSupport>> BootstrapSupport(
    const Tree& reference, const Alignment& alignment,
    const BootstrapOptions& options, Rng& rng) {
  if (options.replicates <= 0) {
    return Status::InvalidArgument("replicates must be positive");
  }
  if (alignment.num_sites() == 0) {
    return Status::InvalidArgument("empty alignment");
  }
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex taxa, TaxonIndex::FromTree(reference));
  for (int32_t i = 0; i < taxa.size(); ++i) {
    if (alignment.RowOf(reference.labels().Name(taxa.label_of(i))) < 0) {
      return Status::NotFound(
          "taxon '" + reference.labels().Name(taxa.label_of(i)) +
          "' missing from alignment");
    }
  }

  // Reference clusters, keyed for counting, remembering their nodes.
  std::unordered_map<Bitset, int64_t, BitsetHash> hits;
  std::vector<std::pair<NodeId, Bitset>> reference_clusters;
  {
    const int32_t n = taxa.size();
    std::vector<Bitset> below(reference.size(), Bitset(n));
    for (NodeId v = reference.size() - 1; v >= 0; --v) {
      if (reference.is_leaf(v)) {
        below[v].Set(taxa.index_of(reference.label(v)));
      }
      if (v != reference.root()) below[reference.parent(v)] |= below[v];
    }
    for (NodeId v = 0; v < reference.size(); ++v) {
      if (reference.is_leaf(v)) continue;
      const int32_t count = below[v].Count();
      if (count < 2 || count >= n) continue;
      reference_clusters.emplace_back(v, below[v]);
      hits.try_emplace(below[v], 0);
    }
  }

  const int32_t sites = alignment.num_sites();
  for (int32_t r = 0; r < options.replicates; ++r) {
    // Resample columns with replacement.
    Alignment replicate;
    replicate.rows.resize(alignment.rows.size());
    for (size_t row = 0; row < alignment.rows.size(); ++row) {
      replicate.rows[row].taxon = alignment.rows[row].taxon;
      replicate.rows[row].bases.resize(sites);
    }
    for (int32_t s = 0; s < sites; ++s) {
      const auto pick = static_cast<int32_t>(rng.Uniform(sites));
      for (size_t row = 0; row < alignment.rows.size(); ++row) {
        replicate.rows[row].bases[s] = alignment.rows[row].bases[pick];
      }
    }
    Tree tree = NeighborJoiningTree(replicate, reference.labels_ptr());
    COUSINS_ASSIGN_OR_RETURN(std::vector<Bitset> clusters,
                             TreeClusters(tree, taxa));
    for (const Bitset& c : clusters) {
      auto it = hits.find(c);
      if (it != hits.end()) ++it->second;
    }
  }

  std::vector<ClusterSupport> out;
  out.reserve(reference_clusters.size());
  for (const auto& [node, cluster] : reference_clusters) {
    out.push_back(ClusterSupport{
        node, static_cast<double>(hits.at(cluster)) /
                  static_cast<double>(options.replicates)});
  }
  return out;
}

}  // namespace cousins
