#include "phylo/bootstrap.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "phylo/clusters.h"
#include "seq/neighbor_joining.h"
#include "util/bitset.h"
#include "util/fault_injection.h"

namespace cousins {

Result<std::vector<ClusterSupport>> BootstrapSupport(
    const Tree& reference, const Alignment& alignment,
    const BootstrapOptions& options, Rng& rng) {
  return BootstrapSupportDegraded(reference, alignment, options, rng,
                                  DegradedModeConfig{});
}

Result<std::vector<ClusterSupport>> BootstrapSupportDegraded(
    const Tree& reference, const Alignment& alignment,
    const BootstrapOptions& options, Rng& rng,
    const DegradedModeConfig& degraded) {
  if (options.replicates <= 0) {
    return Status::InvalidArgument("replicates must be positive");
  }
  if (alignment.num_sites() == 0) {
    return Status::InvalidArgument("empty alignment");
  }
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex taxa, TaxonIndex::FromTree(reference));
  for (int32_t i = 0; i < taxa.size(); ++i) {
    if (alignment.RowOf(reference.labels().Name(taxa.label_of(i))) < 0) {
      return Status::NotFound(
          "taxon '" + reference.labels().Name(taxa.label_of(i)) +
          "' missing from alignment");
    }
  }

  // Reference clusters, keyed for counting, remembering their nodes.
  std::unordered_map<Bitset, int64_t, BitsetHash> hits;
  std::vector<std::pair<NodeId, Bitset>> reference_clusters;
  {
    const int32_t n = taxa.size();
    std::vector<Bitset> below(reference.size(), Bitset(n));
    for (NodeId v = reference.size() - 1; v >= 0; --v) {
      if (reference.is_leaf(v)) {
        below[v].Set(taxa.index_of(reference.label(v)));
      }
      if (v != reference.root()) below[reference.parent(v)] |= below[v];
    }
    for (NodeId v = 0; v < reference.size(); ++v) {
      if (reference.is_leaf(v)) continue;
      const int32_t count = below[v].Count();
      if (count < 2 || count >= n) continue;
      reference_clusters.emplace_back(v, below[v]);
      hits.try_emplace(below[v], 0);
    }
  }

  const int32_t sites = alignment.num_sites();
  int32_t successes = 0;
  for (int32_t r = 0; r < options.replicates; ++r) {
    // One replicate: resample columns with replacement, rebuild via NJ,
    // collect the rebuilt tree's clusters. Failures (the injected
    // bootstrap.replicate fault, or a real rebuild error) are isolated
    // per replicate.
    const auto run_replicate = [&]() -> Result<std::vector<Bitset>> {
      if (fault::Fired("bootstrap.replicate")) {
        return Status::Internal(
            "injected fault at bootstrap.replicate (replicate " +
            std::to_string(r) + ")");
      }
      Alignment replicate;
      replicate.rows.resize(alignment.rows.size());
      for (size_t row = 0; row < alignment.rows.size(); ++row) {
        replicate.rows[row].taxon = alignment.rows[row].taxon;
        replicate.rows[row].bases.resize(sites);
      }
      for (int32_t s = 0; s < sites; ++s) {
        const auto pick = static_cast<int32_t>(rng.Uniform(sites));
        for (size_t row = 0; row < alignment.rows.size(); ++row) {
          replicate.rows[row].bases[s] = alignment.rows[row].bases[pick];
        }
      }
      Tree tree = NeighborJoiningTree(replicate, reference.labels_ptr());
      return TreeClusters(tree, taxa);
    };
    Result<std::vector<Bitset>> clusters = run_replicate();
    if (!clusters.ok()) {
      if (!degraded.lenient) return clusters.status();
      COUSINS_CHECK(degraded.ledger != nullptr &&
                    "lenient mode requires a quarantine ledger");
      QuarantineEntry entry;
      entry.tree_index = r;
      entry.source = degraded.source_name;
      entry.code = clusters.status().code();
      entry.message = clusters.status().message();
      entry.stage = QuarantineStage::kBootstrap;
      degraded.ledger->Add(std::move(entry));
      COUSINS_METRIC_COUNTER_ADD("degraded.replicates_skipped", 1);
      continue;
    }
    ++successes;
    for (const Bitset& c : *clusters) {
      auto it = hits.find(c);
      if (it != hits.end()) ++it->second;
    }
  }
  if (successes == 0) {
    return Status::InvalidArgument(
        "no bootstrap replicate succeeded (" +
        std::to_string(options.replicates) + " attempted)");
  }

  // Support is normalized over the replicates that actually produced a
  // tree, so a lenient run's fractions stay in [0, 1] and comparable.
  std::vector<ClusterSupport> out;
  out.reserve(reference_clusters.size());
  for (const auto& [node, cluster] : reference_clusters) {
    out.push_back(ClusterSupport{
        node, static_cast<double>(hits.at(cluster)) /
                  static_cast<double>(successes)});
  }
  return out;
}

}  // namespace cousins
