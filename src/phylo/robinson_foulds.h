// Robinson–Foulds distance — the classic same-taxa tree comparison
// measure implemented by COMPONENT [31]. The paper positions the
// cousin-pair distance against it (§5.3: COMPONENT "doesn't work" for
// trees with different taxa) and lists a quantitative comparison as
// future work (§7); this module provides the baseline for that
// comparison (see bench_ablation_distances).

#ifndef COUSINS_PHYLO_ROBINSON_FOULDS_H_
#define COUSINS_PHYLO_ROBINSON_FOULDS_H_

#include <cstdint>

#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

struct RobinsonFouldsResult {
  /// |clusters(T1) Δ clusters(T2)| / 2 over nontrivial clusters.
  double distance = 0.0;
  /// distance normalized by the maximum possible for the input pair
  /// ((|C1| + |C2|) / 2); 0 when both trees are stars.
  double normalized = 0.0;
};

/// Rooted Robinson–Foulds distance. Fails unless both trees are over
/// exactly the same taxon set (the restriction the cousin-pair distance
/// removes).
Result<RobinsonFouldsResult> RobinsonFoulds(const Tree& t1, const Tree& t2);

}  // namespace cousins

#endif  // COUSINS_PHYLO_ROBINSON_FOULDS_H_
