// Supertree assembly from overlapping source phylogenies — the
// application §5.3 motivates: kernel trees "constitute a good starting
// point in building a supertree for the phylogenies in the groups".
//
// Implements the classic BUILD algorithm (Aho, Sagiv, Szymanski &
// Ullman; see also the Semple–Steel treatment): recursively partition
// the taxa by the connected components induced by the source trees'
// root partitions. If the sources are compatible the result displays
// every source tree; otherwise BUILD reports the conflict (strict
// mode) or greedily ignores the minority constraint set at the stuck
// level (greedy mode).

#ifndef COUSINS_PHYLO_SUPERTREE_H_
#define COUSINS_PHYLO_SUPERTREE_H_

#include <vector>

#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

struct SupertreeOptions {
  /// If true, incompatible sources fail with FailedPrecondition; if
  /// false, conflicts are resolved greedily by dropping the
  /// least-supported merge edges at the stuck recursion level.
  bool strict = true;
};

/// Builds a rooted supertree over the union of the sources' taxa. All
/// sources must share one LabelTable and have uniquely-labeled leaves.
/// In strict mode the result provably displays every source tree
/// (restriction of the supertree to a source's taxa refines it).
Result<Tree> BuildSupertree(const std::vector<Tree>& sources,
                            const SupertreeOptions& options = {});

/// True iff `supertree` displays `source`: restricting the supertree to
/// the source's taxa yields every nontrivial cluster of the source.
Result<bool> Displays(const Tree& supertree, const Tree& source);

}  // namespace cousins

#endif  // COUSINS_PHYLO_SUPERTREE_H_
