#include "phylo/similarity.h"

#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "core/single_tree_mining.h"

namespace cousins {
namespace {

struct LabelPairHash {
  size_t operator()(const std::pair<LabelId, LabelId>& p) const {
    return static_cast<size_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(p.first)) << 32 |
         static_cast<uint32_t>(p.second)) *
        0x9E3779B97F4A7C15ULL);
  }
};

/// label pair -> minimum twice-distance among its items.
std::unordered_map<std::pair<LabelId, LabelId>, int, LabelPairHash>
MinDistances(const std::vector<CousinPairItem>& items) {
  std::unordered_map<std::pair<LabelId, LabelId>, int, LabelPairHash> out;
  for (const CousinPairItem& item : items) {
    auto [it, inserted] =
        out.try_emplace({item.label1, item.label2}, item.twice_distance);
    if (!inserted && item.twice_distance < it->second) {
      it->second = item.twice_distance;
    }
  }
  return out;
}

}  // namespace

double CousinSimilarityScore(const std::vector<CousinPairItem>& consensus,
                             const std::vector<CousinPairItem>& original) {
  const auto dist_c = MinDistances(consensus);
  const auto dist_t = MinDistances(original);
  double score = 0.0;
  for (const auto& [pair, dc] : dist_c) {
    auto it = dist_t.find(pair);
    if (it == dist_t.end()) continue;
    // twice-distances halve back to d; |Δd| = |Δ(2d)| / 2.
    const double delta = std::abs(dc - it->second) / 2.0;
    score += std::exp2(-delta);
  }
  return score;
}

double CousinSimilarityScore(const Tree& consensus, const Tree& original,
                             const MiningOptions& options) {
  COUSINS_CHECK(consensus.labels_ptr() == original.labels_ptr());
  return CousinSimilarityScore(MineSingleTree(consensus, options),
                               MineSingleTree(original, options));
}

double AverageSimilarityScore(const Tree& consensus,
                              const std::vector<Tree>& originals,
                              const MiningOptions& options) {
  COUSINS_CHECK(!originals.empty());
  const std::vector<CousinPairItem> consensus_items =
      MineSingleTree(consensus, options);
  double total = 0.0;
  for (const Tree& original : originals) {
    total += CousinSimilarityScore(consensus_items,
                                   MineSingleTree(original, options));
  }
  return total / static_cast<double>(originals.size());
}

}  // namespace cousins
