#include "phylo/similarity.h"

#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "core/single_tree_mining.h"
#include "obs/governance_events.h"

namespace cousins {
namespace {

struct LabelPairHash {
  size_t operator()(const std::pair<LabelId, LabelId>& p) const {
    return static_cast<size_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(p.first)) << 32 |
         static_cast<uint32_t>(p.second)) *
        0x9E3779B97F4A7C15ULL);
  }
};

/// label pair -> minimum twice-distance among its items.
std::unordered_map<std::pair<LabelId, LabelId>, int, LabelPairHash>
MinDistances(const std::vector<CousinPairItem>& items) {
  std::unordered_map<std::pair<LabelId, LabelId>, int, LabelPairHash> out;
  for (const CousinPairItem& item : items) {
    auto [it, inserted] =
        out.try_emplace({item.label1, item.label2}, item.twice_distance);
    if (!inserted && item.twice_distance < it->second) {
      it->second = item.twice_distance;
    }
  }
  return out;
}

}  // namespace

double CousinSimilarityScore(const std::vector<CousinPairItem>& consensus,
                             const std::vector<CousinPairItem>& original) {
  const auto dist_c = MinDistances(consensus);
  const auto dist_t = MinDistances(original);
  double score = 0.0;
  for (const auto& [pair, dc] : dist_c) {
    auto it = dist_t.find(pair);
    if (it == dist_t.end()) continue;
    // twice-distances halve back to d; |Δd| = |Δ(2d)| / 2.
    const double delta = std::abs(dc - it->second) / 2.0;
    score += std::exp2(-delta);
  }
  return score;
}

double CousinSimilarityScore(const Tree& consensus, const Tree& original,
                             const MiningOptions& options) {
  COUSINS_CHECK(consensus.labels_ptr() == original.labels_ptr());
  return CousinSimilarityScore(MineSingleTree(consensus, options),
                               MineSingleTree(original, options));
}

double AverageSimilarityScore(const Tree& consensus,
                              const std::vector<Tree>& originals,
                              const MiningOptions& options) {
  COUSINS_CHECK(!originals.empty());
  const std::vector<CousinPairItem> consensus_items =
      MineSingleTree(consensus, options);
  double total = 0.0;
  for (const Tree& original : originals) {
    total += CousinSimilarityScore(consensus_items,
                                   MineSingleTree(original, options));
  }
  return total / static_cast<double>(originals.size());
}

Result<SimilarityRun> AverageSimilarityScoreGoverned(
    const Tree& consensus, const std::vector<Tree>& originals,
    const MiningOptions& options, const MiningContext& context) {
  if (originals.empty()) {
    return Status::InvalidArgument(
        "consensus evaluation needs at least one original tree");
  }
  for (const Tree& original : originals) {
    if (original.labels_ptr() != consensus.labels_ptr()) {
      return Status::InvalidArgument(
          "consensus and originals must share one LabelTable");
    }
  }

  SimilarityRun run;
  // A half-mined consensus profile would skew every per-original score,
  // so a trip here truncates the whole evaluation at zero originals.
  SingleTreeMiningRun consensus_run =
      MineSingleTreeGovernedUnordered(consensus, options, context);
  if (consensus_run.truncated) {
    obs::RecordGovernanceEvent(consensus_run.termination);
    run.truncated = true;
    run.termination = std::move(consensus_run.termination);
    return run;
  }
  CanonicalizeItems(&consensus_run.items);

  double total = 0.0;
  for (const Tree& original : originals) {
    SingleTreeMiningRun original_run =
        MineSingleTreeGovernedUnordered(original, options, context);
    if (original_run.truncated) {
      obs::RecordGovernanceEvent(original_run.termination);
      run.truncated = true;
      run.termination = std::move(original_run.termination);
      break;
    }
    CanonicalizeItems(&original_run.items);
    total += CousinSimilarityScore(consensus_run.items, original_run.items);
    ++run.originals_scored;
  }
  run.average = run.originals_scored == 0
                    ? 0.0
                    : total / static_cast<double>(run.originals_scored);
  return run;
}

}  // namespace cousins
