// Clusters (taxon bipartitions) — the substrate for all five consensus
// methods of §5.2.
//
// A cluster of a rooted phylogeny is the set of leaf taxa below an
// internal node. Consensus methods operate on the multiset of
// nontrivial clusters (2 <= |C| < #taxa) collected across input trees.

#ifndef COUSINS_PHYLO_CLUSTERS_H_
#define COUSINS_PHYLO_CLUSTERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tree/tree.h"
#include "util/bitset.h"
#include "util/result.h"

namespace cousins {

/// Dense index over the taxa (leaf labels) of a tree set. All consensus
/// inputs must have identical taxon sets; kernel-tree groups may overlap
/// partially and use per-group indices.
class TaxonIndex {
 public:
  /// Index over the leaf labels of `tree`. Fails if a leaf is unlabeled
  /// or a label repeats (phylogeny taxa are unique).
  static Result<TaxonIndex> FromTree(const Tree& tree);

  /// Index over trees[0]'s taxa; fails unless every tree has exactly
  /// the same taxon set.
  static Result<TaxonIndex> FromTrees(const std::vector<Tree>& trees);

  int32_t size() const { return static_cast<int32_t>(taxa_.size()); }

  /// LabelId of taxon i.
  LabelId label_of(int32_t i) const { return taxa_[i]; }

  /// Dense index of a label, or -1 if it is not a taxon here.
  int32_t index_of(LabelId label) const {
    auto it = index_.find(label);
    return it == index_.end() ? -1 : it->second;
  }

  /// Adds a taxon if absent; returns its index. Used by kernel-tree
  /// groups with partially overlapping taxa.
  int32_t InternTaxon(LabelId label);

 private:
  std::vector<LabelId> taxa_;
  std::unordered_map<LabelId, int32_t> index_;
};

/// The nontrivial clusters of `tree` under `taxa`, deduplicated (unary
/// chains collapse) and sorted canonically. Fails if some leaf of `tree`
/// is not in `taxa`.
Result<std::vector<Bitset>> TreeClusters(const Tree& tree,
                                         const TaxonIndex& taxa);

/// Builds the rooted tree realizing a pairwise-compatible cluster set:
/// the root holds all taxa, every cluster becomes an internal node
/// nested inside the smallest cluster containing it, and each taxon
/// hangs from the smallest cluster containing it. Fails on incompatible
/// input. Trivial clusters need not be included.
Result<Tree> BuildTreeFromClusters(const std::vector<Bitset>& clusters,
                                   const TaxonIndex& taxa,
                                   std::shared_ptr<LabelTable> labels);

}  // namespace cousins

#endif  // COUSINS_PHYLO_CLUSTERS_H_
