// Kernel trees (§5.3): given g groups of phylogenies (same taxa within a
// group, partially overlapping taxa across groups), pick one
// representative ("kernel") per group minimizing the average pairwise
// cousin tree distance between the chosen kernels — a starting point for
// supertree construction.
//
// The paper does not spell out the selection algorithm. We provide an
// exact exhaustive search when the product of the group sizes is small
// and a deterministic multi-restart coordinate-descent local search
// otherwise (optimal on every exhaustively-checkable instance we test).

#ifndef COUSINS_PHYLO_KERNEL_TREES_H_
#define COUSINS_PHYLO_KERNEL_TREES_H_

#include <cstdint>
#include <vector>

#include "phylo/tree_distance.h"
#include "tree/tree.h"
#include "util/governance.h"
#include "util/result.h"
#include "util/rng.h"

namespace cousins {

struct KernelTreeOptions {
  /// Tree-distance variant; the paper's kernel experiment uses
  /// t_dist_dist_occur.
  CousinItemAbstraction abstraction =
      CousinItemAbstraction::kDistanceAndOccurrence;
  /// Mining parameters (Table 2 defaults).
  MiningOptions mining;
  /// Use exhaustive search when Π group sizes <= this; local search
  /// otherwise.
  int64_t exhaustive_limit = 200000;
  /// Local-search restarts.
  int32_t restarts = 8;
  /// Seed for the local search (deterministic).
  uint64_t seed = 42;
};

struct KernelTreeResult {
  /// selected[g] = index of the kernel tree within group g.
  std::vector<int32_t> selected;
  /// Average pairwise distance between the selected kernels (0 when
  /// there are fewer than two groups).
  double average_pairwise_distance = 0.0;
  /// True when the exhaustive search ran (result is provably optimal).
  bool exact = false;
};

/// Finds kernel trees. Every group must be non-empty; all trees across
/// all groups must share one LabelTable.
KernelTreeResult FindKernelTrees(const std::vector<std::vector<Tree>>& groups,
                                 const KernelTreeOptions& options = {});

/// Outcome of a governed kernel-tree search. On a trip `result` holds
/// the best selection found so far (best-so-far semantics; `exact` is
/// false on any truncated run). `selected` is empty only when the trip
/// happened before the distance table finished — no selection was
/// evaluated at all.
struct KernelTreeRun {
  KernelTreeResult result;
  bool truncated = false;
  Status termination;
};

/// FindKernelTrees under a resource-governance context. Empty input
/// (no groups, or an empty group) comes back as kInvalidArgument
/// instead of aborting; governance trips come back OK with the best
/// selection found so far, truncated-flagged.
Result<KernelTreeRun> FindKernelTreesGoverned(
    const std::vector<std::vector<Tree>>& groups,
    const KernelTreeOptions& options, const MiningContext& context);

}  // namespace cousins

#endif  // COUSINS_PHYLO_KERNEL_TREES_H_
