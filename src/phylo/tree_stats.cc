#include "phylo/tree_stats.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "phylo/clusters.h"

namespace cousins {

Result<TreeStats> ComputeTreeStats(const Tree& tree) {
  COUSINS_ASSIGN_OR_RETURN(TaxonIndex taxa, TaxonIndex::FromTree(tree));
  TreeStats stats;
  stats.num_taxa = taxa.size();

  // Leaves below each node, bottom-up (preorder ids).
  std::vector<int32_t> leaves_below(tree.size(), 0);
  int64_t depth_sum = 0;
  int64_t colless_sum = 0;
  for (NodeId v = tree.size() - 1; v >= 0; --v) {
    if (tree.is_leaf(v)) {
      leaves_below[v] = 1;
      depth_sum += tree.depth(v);
    } else {
      ++stats.num_internal;
      for (NodeId c : tree.children(v)) leaves_below[v] += leaves_below[c];
      if (tree.children(v).size() == 2) {
        colless_sum += std::abs(leaves_below[tree.children(v)[0]] -
                                leaves_below[tree.children(v)[1]]);
      }
    }
  }

  COUSINS_ASSIGN_OR_RETURN(std::vector<Bitset> clusters,
                           TreeClusters(tree, taxa));
  const int32_t n = stats.num_taxa;
  stats.resolution =
      n < 3 ? 1.0
            : static_cast<double>(clusters.size()) /
                  static_cast<double>(n - 2);
  stats.colless =
      n < 3 ? 0.0
            : static_cast<double>(colless_sum) /
                  (static_cast<double>(n - 1) * (n - 2) / 2.0);
  stats.sackin =
      n == 0 ? 0.0
             : static_cast<double>(depth_sum) / static_cast<double>(n);
  return stats;
}

}  // namespace cousins
