#include "tree/render.h"

#include <cstdio>
#include <vector>

namespace cousins {
namespace {

void RenderNode(const Tree& tree, NodeId v, const std::string& prefix,
                bool last, bool root, const RenderOptions& options,
                std::string* out) {
  *out += prefix;
  if (!root) *out += last ? "└── " : "├── ";
  if (tree.has_label(v)) {
    *out += tree.label_name(v);
  } else {
    *out += "*";
  }
  if (options.show_ids) *out += " (#" + std::to_string(v) + ")";
  if (options.show_branch_lengths && !root) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ":%g", tree.branch_length(v));
    *out += buf;
  }
  *out += '\n';
  const std::vector<NodeId>& kids = tree.children(v);
  for (size_t i = 0; i < kids.size(); ++i) {
    const std::string child_prefix =
        root ? prefix : prefix + (last ? "    " : "│   ");
    RenderNode(tree, kids[i], child_prefix, i + 1 == kids.size(), false,
               options, out);
  }
}

}  // namespace

std::string RenderAscii(const Tree& tree, const RenderOptions& options) {
  std::string out;
  if (tree.empty()) return out;
  RenderNode(tree, tree.root(), "", true, true, options, &out);
  return out;
}

}  // namespace cousins
