// Canonical forms for rooted unordered labeled trees.
//
// Two trees are unordered-isomorphic iff their canonical strings are
// equal (AHU-style encoding with sorted child encodings). Used by tests
// (sibling-order invariance) and by the parsimony search to deduplicate
// equally parsimonious topologies.

#ifndef COUSINS_TREE_CANONICAL_H_
#define COUSINS_TREE_CANONICAL_H_

#include <string>

#include "tree/tree.h"

namespace cousins {

/// AHU canonical string of the subtree rooted at v. Node labels are
/// embedded by their interned ids, so trees must share a label table for
/// their canonical forms to be comparable.
std::string CanonicalForm(const Tree& tree, NodeId v);

/// Canonical string of the whole tree.
inline std::string CanonicalForm(const Tree& tree) {
  return CanonicalForm(tree, tree.root());
}

/// True iff the trees are isomorphic as rooted unordered labeled trees.
/// Requires a shared label table.
bool UnorderedIsomorphic(const Tree& a, const Tree& b);

}  // namespace cousins

#endif  // COUSINS_TREE_CANONICAL_H_
