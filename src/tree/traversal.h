// Traversal orders and per-node aggregates used across the library.

#ifndef COUSINS_TREE_TRAVERSAL_H_
#define COUSINS_TREE_TRAVERSAL_H_

#include <vector>

#include "tree/tree.h"

namespace cousins {

/// Node ids in preorder (parents before children). Because Build()
/// renumbers to preorder this is just 0..n-1, provided for readability.
std::vector<NodeId> PreorderIds(const Tree& tree);

/// Node ids in postorder (children before parents).
std::vector<NodeId> PostorderIds(const Tree& tree);

/// subtree_size[v] = number of nodes in the subtree rooted at v.
std::vector<int32_t> SubtreeSizes(const Tree& tree);

/// Walks `levels` edges toward the root from v; returns kNoNode if the
/// walk passes the root. levels must be >= 0.
NodeId ClimbUp(const Tree& tree, NodeId v, int32_t levels);

/// All labeled-leaf label ids of the subtree rooted at v (unsorted).
std::vector<LabelId> SubtreeLeafLabels(const Tree& tree, NodeId v);

}  // namespace cousins

#endif  // COUSINS_TREE_TRAVERSAL_H_
