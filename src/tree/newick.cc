#include "tree/newick.h"

#include <cctype>
#include <charconv>
#include <utility>

#include "tree/builder.h"
#include "util/strings.h"

namespace cousins {
namespace {

// Characters that terminate an unquoted label.
bool IsStructural(char c) {
  return c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
         c == '[';
}

/// Recursive-descent Newick parser over a string_view cursor.
class NewickParser {
 public:
  NewickParser(std::string_view text, std::shared_ptr<LabelTable> labels)
      : text_(text), labels_(std::move(labels)), builder_(labels_) {}

  Result<Tree> Parse() {
    SkipSpace();
    if (AtEnd()) return Status::InvalidArgument("empty Newick string");
    COUSINS_RETURN_IF_ERROR(ParseNode(kNoNode));
    SkipSpace();
    if (!AtEnd() && Peek() == ';') Advance();
    SkipSpace();
    if (!AtEnd()) {
      return Status::InvalidArgument(
          "trailing characters after Newick tree at offset " +
          std::to_string(pos_));
    }
    return std::move(builder_).Build();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }

  void SkipSpace() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '[') {
        // Bracket comment; unterminated comments consume to the end,
        // which the caller reports as trailing garbage / missing tokens.
        while (!AtEnd() && Peek() != ']') Advance();
        if (!AtEnd()) Advance();
      } else {
        return;
      }
    }
  }

  // node := ['(' node (',' node)* ')'] [label] [':' number]
  Status ParseNode(NodeId parent) {
    SkipSpace();
    NodeId self;
    bool had_children = false;
    if (!AtEnd() && Peek() == '(') {
      had_children = true;
      self = parent == kNoNode ? builder_.AddRoot()
                               : builder_.AddChild(parent);
      Advance();  // '('
      while (true) {
        COUSINS_RETURN_IF_ERROR(ParseNode(self));
        SkipSpace();
        if (AtEnd()) {
          return Status::InvalidArgument("unterminated '(' in Newick");
        }
        if (Peek() == ',') {
          Advance();
          continue;
        }
        if (Peek() == ')') {
          Advance();
          break;
        }
        return Status::InvalidArgument(
            "expected ',' or ')' at offset " + std::to_string(pos_));
      }
    } else {
      self = parent == kNoNode ? builder_.AddRoot()
                               : builder_.AddChild(parent);
    }

    SkipSpace();
    // Optional label.
    std::string label;
    Status st = ParseLabel(&label);
    if (!st.ok()) return st;
    if (!label.empty()) {
      SetLabel(self, label);
    } else if (!had_children && parent != kNoNode) {
      // A bare leaf with no label is legal Newick but almost always a
      // typo like "(a,,b)"; we accept it as an unlabeled leaf.
    }

    SkipSpace();
    if (!AtEnd() && Peek() == ':') {
      Advance();
      double len = 0;
      COUSINS_RETURN_IF_ERROR(ParseNumber(&len));
      SetBranchLength(self, len);
    }
    return Status::OK();
  }

  Status ParseLabel(std::string* out) {
    out->clear();
    if (AtEnd()) return Status::OK();
    if (Peek() == '\'') {
      Advance();
      while (true) {
        if (AtEnd()) {
          return Status::InvalidArgument("unterminated quoted label");
        }
        char c = Peek();
        Advance();
        if (c == '\'') {
          if (!AtEnd() && Peek() == '\'') {  // '' escapes a quote
            out->push_back('\'');
            Advance();
            continue;
          }
          return Status::OK();
        }
        out->push_back(c);
      }
    }
    while (!AtEnd()) {
      char c = Peek();
      if (IsStructural(c) || std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      out->push_back(c);
      Advance();
    }
    return Status::OK();
  }

  Status ParseNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (!AtEnd() && !IsStructural(Peek()) &&
           !std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    std::string_view token = text_.substr(start, pos_ - start);
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), *out);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Status::InvalidArgument("bad branch length '" +
                                     std::string(token) + "'");
    }
    return Status::OK();
  }

  void SetLabel(NodeId v, std::string_view label) {
    builder_.SetLabel(v, label);
  }
  void SetBranchLength(NodeId v, double len) {
    builder_.SetBranchLength(v, len);
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::shared_ptr<LabelTable> labels_;
  TreeBuilder builder_;
};

}  // namespace

Result<Tree> ParseNewick(std::string_view text,
                         std::shared_ptr<LabelTable> labels) {
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  NewickParser parser(text, labels);
  return parser.Parse();
}

Result<std::vector<Tree>> ParseNewickForest(
    std::string_view text, std::shared_ptr<LabelTable> labels) {
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  // Drop '#'-comment lines first; trees are then split on ';'.
  std::string cleaned;
  cleaned.reserve(text.size());
  for (std::string_view line : Split(text, '\n')) {
    if (StripWhitespace(line).empty() || StripWhitespace(line)[0] == '#') {
      continue;
    }
    cleaned.append(line);
    cleaned.push_back('\n');
  }
  std::vector<Tree> out;
  for (std::string_view piece : Split(cleaned, ';')) {
    std::string_view trimmed = StripWhitespace(piece);
    if (trimmed.empty()) continue;
    COUSINS_ASSIGN_OR_RETURN(Tree t, ParseNewick(trimmed, labels));
    out.push_back(std::move(t));
  }
  return out;
}

namespace {

bool NeedsQuoting(const std::string& label) {
  if (label.empty()) return true;
  for (char c : label) {
    if (IsStructural(c) || c == '\'' || c == ')' ||
        std::isspace(static_cast<unsigned char>(c))) {
      return true;
    }
  }
  return false;
}

void AppendLabel(const std::string& label, std::string* out) {
  if (!NeedsQuoting(label)) {
    *out += label;
    return;
  }
  *out += '\'';
  for (char c : label) {
    if (c == '\'') *out += '\'';
    *out += c;
  }
  *out += '\'';
}

void WriteNode(const Tree& tree, NodeId v, const NewickWriteOptions& options,
               std::string* out) {
  const auto& kids = tree.children(v);
  if (!kids.empty()) {
    *out += '(';
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) *out += ',';
      WriteNode(tree, kids[i], options, out);
    }
    *out += ')';
  }
  if (tree.has_label(v) && (kids.empty() || options.write_internal_labels)) {
    AppendLabel(tree.label_name(v), out);
  }
  if (options.write_branch_lengths && v != tree.root()) {
    *out += ':';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", tree.branch_length(v));
    *out += buf;
  }
}

}  // namespace

std::string ToNewick(const Tree& tree, const NewickWriteOptions& options) {
  std::string out;
  if (!tree.empty()) WriteNode(tree, tree.root(), options, &out);
  out += ';';
  return out;
}

}  // namespace cousins
