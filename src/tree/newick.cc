#include "tree/newick.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <functional>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "tree/builder.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace cousins {
namespace {

// Characters that terminate an unquoted label.
bool IsStructural(char c) {
  return c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
         c == '[';
}

/// Maps parser positions back to the user's original input. The forest
/// reader strips '#'-comment lines into an internal buffer before
/// splitting on ';', so a parser offset alone would point into that
/// buffer, not the text the user supplied; errors must instead report
/// the original line/column.
struct SourceContext {
  /// The full original input (error line/column are computed here).
  std::string_view source;
  /// For each char of the internal (comment-stripped) buffer, its
  /// offset in `source`. nullptr when the parsed text IS a slice of
  /// `source` (identity mapping via `base`).
  const std::vector<size_t>* to_source = nullptr;
  /// Offset of the parsed slice: into `source` when to_source is null,
  /// into the internal buffer otherwise.
  size_t base = 0;
  /// When non-null, DescribePosition also records the mapped byte
  /// offset of the described position here — how lenient callers learn
  /// machine-readable error positions without parsing message text.
  size_t* error_offset = nullptr;
  /// Lines preceding `source` when it is a window of a larger input
  /// (ParseNewickForestWindow): added to the line DescribePosition
  /// renders, so messages name whole-file lines. Columns need no bias
  /// because windows start at column 1.
  size_t line_bias = 0;
};

/// "line L, column C" (1-based) of parser offset `local_pos` in the
/// original input. Line accounting treats "\r\n" as one break and a
/// lone '\r' as a break, matching Windows-authored forest files.
std::string DescribePosition(const SourceContext& ctx, size_t local_pos) {
  size_t offset;
  if (ctx.to_source != nullptr) {
    const size_t index = ctx.base + local_pos;
    offset = index < ctx.to_source->size() ? (*ctx.to_source)[index]
                                           : ctx.source.size();
  } else {
    offset = ctx.base + local_pos;
  }
  offset = std::min(offset, ctx.source.size());
  if (ctx.error_offset != nullptr) *ctx.error_offset = offset;
  const TextPosition pos = LineColumnAt(ctx.source, offset);
  return "line " + std::to_string(pos.line + ctx.line_bias) +
         ", column " + std::to_string(pos.column);
}

/// Newick parser over a string_view cursor. Nesting is handled with an
/// explicit heap stack so input depth is bounded only by
/// ParseLimits::max_depth, not by the machine stack.
class NewickParser {
 public:
  NewickParser(std::string_view text, std::shared_ptr<LabelTable> labels,
               SourceContext ctx, const ParseLimits& limits)
      : text_(text),
        ctx_(ctx),
        limits_(limits),
        labels_(std::move(labels)),
        builder_(labels_) {}

  Result<Tree> Parse() {
    COUSINS_RETURN_IF_ERROR(SkipSpace());
    if (AtEnd()) return Status::InvalidArgument("empty Newick string");
    COUSINS_RETURN_IF_ERROR(ParseNode(kNoNode, 1));
    COUSINS_RETURN_IF_ERROR(SkipSpace());
    if (!AtEnd() && Peek() == ';') Advance();
    COUSINS_RETURN_IF_ERROR(SkipSpace());
    if (!AtEnd()) {
      return ErrorAt("trailing characters after Newick tree", pos_);
    }
    return std::move(builder_).Build();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }
  std::string At(size_t pos) const { return DescribePosition(ctx_, pos); }

  /// Error construction is kept out of line so its string temporaries
  /// stay off the parse loop's frame.
  [[gnu::noinline]] Status ErrorAt(const char* what, size_t pos) const {
    return Status::InvalidArgument(std::string(what) + " at " + At(pos));
  }

  /// A tripped ParseLimits cap: same position reporting, but
  /// kResourceExhausted so callers can tell hostile-size input from
  /// malformed input.
  [[gnu::noinline]] Status LimitErrorAt(const char* what,
                                        size_t pos) const {
    return Status::ResourceExhausted(std::string(what) + " at " + At(pos));
  }

  Status SkipSpace() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '[') {
        const size_t open_pos = pos_;
        while (!AtEnd() && Peek() != ']') Advance();
        if (AtEnd()) {
          return ErrorAt("unterminated '[' comment opened", open_pos);
        }
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  // node := ['(' node (',' node)* ')'] [label] [':' number]
  //
  // Iterative with an explicit stack (one small Frame per open '('),
  // NOT recursive descent: nesting depth must be bounded by
  // ParseLimits::max_depth alone, never by the machine stack —
  // sanitizer builds use several-times-larger frames, so a recursive
  // parser would crash on inputs the limit is supposed to refuse
  // cleanly (see robustness_test.cc's 100k hostile-nesting case).
  Status ParseNode(NodeId parent, int32_t depth) {
    struct Frame {
      NodeId node;      // the internal node whose children are open
      size_t open_pos;  // position of its '(' for error reporting
    };
    std::vector<Frame> stack;
    for (;;) {
      // Parse the prefix of one node: descend through '(' or make a
      // leaf. `depth` counts nodes on the path, root = 1.
      if (depth + static_cast<int32_t>(stack.size()) > limits_.max_depth) {
        return LimitErrorAt("nesting depth limit exceeded", pos_);
      }
      COUSINS_RETURN_IF_ERROR(SkipSpace());
      NodeId self = parent == kNoNode ? builder_.AddRoot()
                                      : builder_.AddChild(parent);
      if (builder_.size() > limits_.max_nodes) {
        return LimitErrorAt("node count limit exceeded", pos_);
      }
      if (!AtEnd() && Peek() == '(') {
        stack.push_back({self, pos_});
        Advance();  // '(' — descend to the first child
        parent = self;
        continue;
      }
      // A bare leaf with no label is legal Newick but almost always a
      // typo like "(a,,b)"; we accept it as an unlabeled leaf.
      COUSINS_RETURN_IF_ERROR(ParseSuffix(self));

      // Ascend: close finished parenthesized groups, then either step
      // to the next sibling or return once every '(' is closed.
      for (;;) {
        if (stack.empty()) return Status::OK();
        COUSINS_RETURN_IF_ERROR(SkipSpace());
        if (AtEnd()) {
          return ErrorAt("unterminated '(' opened", stack.back().open_pos);
        }
        if (Peek() == ',') {
          Advance();
          parent = stack.back().node;
          break;  // next sibling
        }
        if (Peek() == ')') {
          Advance();
          const NodeId closed = stack.back().node;
          stack.pop_back();
          COUSINS_RETURN_IF_ERROR(ParseSuffix(closed));
          continue;
        }
        return ErrorAt("expected ',' or ')'", pos_);
      }
    }
  }

  /// The optional [label][':' number] trailer of a node — after a
  /// leaf, or after an internal node's closing ')'.
  Status ParseSuffix(NodeId self) {
    COUSINS_RETURN_IF_ERROR(SkipSpace());
    std::string label;
    COUSINS_RETURN_IF_ERROR(ParseLabel(&label));
    if (!label.empty()) SetLabel(self, label);
    COUSINS_RETURN_IF_ERROR(SkipSpace());
    if (!AtEnd() && Peek() == ':') {
      Advance();
      double len = 0;
      COUSINS_RETURN_IF_ERROR(ParseNumber(&len));
      SetBranchLength(self, len);
    }
    return Status::OK();
  }

  [[gnu::noinline]] Status ParseLabel(std::string* out) {
    out->clear();
    if (AtEnd()) return Status::OK();
    if (Peek() == '\'') {
      const size_t quote_pos = pos_;
      Advance();
      while (true) {
        if (AtEnd()) {
          return ErrorAt("unterminated quoted label starting", quote_pos);
        }
        if (out->size() >= limits_.max_label_bytes) {
          return LimitErrorAt("label length limit exceeded", quote_pos);
        }
        char c = Peek();
        Advance();
        if (c == '\'') {
          if (!AtEnd() && Peek() == '\'') {  // '' escapes a quote
            out->push_back('\'');
            Advance();
            continue;
          }
          return Status::OK();
        }
        out->push_back(c);
      }
    }
    const size_t label_pos = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (IsStructural(c) || std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      if (out->size() >= limits_.max_label_bytes) {
        return LimitErrorAt("label length limit exceeded", label_pos);
      }
      out->push_back(c);
      Advance();
    }
    return Status::OK();
  }

  [[gnu::noinline]] Status ParseNumber(double* out) {
    COUSINS_RETURN_IF_ERROR(SkipSpace());
    size_t start = pos_;
    while (!AtEnd() && !IsStructural(Peek()) &&
           !std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    std::string_view token = text_.substr(start, pos_ - start);
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), *out);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Status::InvalidArgument("bad branch length '" +
                                     std::string(token) + "' at " +
                                     At(start));
    }
    return Status::OK();
  }

  void SetLabel(NodeId v, std::string_view label) {
    builder_.SetLabel(v, label);
  }
  void SetBranchLength(NodeId v, double len) {
    builder_.SetBranchLength(v, len);
  }

  std::string_view text_;
  size_t pos_ = 0;
  SourceContext ctx_;
  ParseLimits limits_;
  std::shared_ptr<LabelTable> labels_;
  TreeBuilder builder_;
};

Result<Tree> ParseNewickImpl(std::string_view text,
                             std::shared_ptr<LabelTable> labels,
                             SourceContext ctx, const ParseLimits& limits) {
  // Stands in for an allocation failure while building the node arrays.
  if (COUSINS_FAULT_FIRED("newick.alloc")) {
    return Status::Internal("injected fault at newick.alloc");
  }
  NewickParser parser(text, std::move(labels), ctx, limits);
  Result<Tree> result = parser.Parse();
  COUSINS_METRIC_COUNTER_ADD("newick.bytes", text.size());
  if (result.ok()) {
    COUSINS_METRIC_COUNTER_ADD("newick.trees_parsed", 1);
  } else {
    COUSINS_METRIC_COUNTER_ADD("newick.parse_errors", 1);
  }
  return result;
}

/// Drops '#'-comment lines from a forest (quote-aware: a quoted label
/// may legally contain '#' or line breaks), recording each retained
/// char's offset in `text` so parse errors can point at the user's
/// input rather than this internal buffer. Line terminators are '\n',
/// "\r\n", or a lone '\r' — Windows- and classic-Mac-authored forests
/// must not have a comment swallow the trees that follow it.
void StripCommentLines(std::string_view text, std::string* cleaned,
                       std::vector<size_t>* to_source) {
  cleaned->reserve(text.size());
  to_source->reserve(text.size());
  bool in_quote = false;
  size_t i = 0;
  while (i < text.size()) {
    if (!in_quote) {
      // At a line start outside quotes: a line whose first non-blank
      // char is '#' is a comment; drop it whole.
      size_t j = i;
      while (j < text.size() && text[j] != '\n' && text[j] != '\r' &&
             std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      if (j < text.size() && text[j] == '#') {
        while (i < text.size() && text[i] != '\n' && text[i] != '\r') {
          ++i;
        }
        if (i < text.size()) {
          // The terminator itself: "\r\n" counts as one.
          if (text[i] == '\r' && i + 1 < text.size() &&
              text[i + 1] == '\n') {
            ++i;
          }
          ++i;
        }
        continue;
      }
    }
    // Copy one line, tracking quote state ('' toggles twice, net
    // unchanged). A line break inside a quote does not end the "line"
    // for comment-detection purposes: the next iteration sees in_quote.
    while (i < text.size()) {
      const char c = text[i];
      cleaned->push_back(c);
      to_source->push_back(i);
      ++i;
      if (c == '\'') in_quote = !in_quote;
      if (c == '\n' || c == '\r') break;
    }
  }
}

/// Invokes `entry(trimmed, base)` for each non-empty ';'-separated
/// entry of the comment-stripped buffer (split is quote-aware); `base`
/// is the entry's offset in `cleaned`. Stops at the first non-OK
/// callback result.
Status ForEachForestEntry(
    const std::string& cleaned,
    const std::function<Status(std::string_view, size_t)>& entry) {
  size_t start = 0;
  bool quoted = false;
  for (size_t k = 0; k <= cleaned.size(); ++k) {
    const bool at_end = k == cleaned.size();
    if (!at_end) {
      if (cleaned[k] == '\'') {
        quoted = !quoted;
        continue;
      }
      if (cleaned[k] != ';' || quoted) continue;
    }
    std::string_view piece(cleaned.data() + start, k - start);
    start = k + 1;
    std::string_view trimmed = StripWhitespace(piece);
    if (trimmed.empty()) continue;
    const size_t base =
        static_cast<size_t>(trimmed.data() - cleaned.data());
    COUSINS_RETURN_IF_ERROR(entry(trimmed, base));
  }
  return Status::OK();
}

}  // namespace

Result<Tree> ParseNewick(std::string_view text,
                         std::shared_ptr<LabelTable> labels,
                         const ParseLimits& limits) {
  return ParseNewickWithErrorOffset(text, std::move(labels), limits,
                                    nullptr);
}

Result<Tree> ParseNewickWithErrorOffset(std::string_view text,
                                        std::shared_ptr<LabelTable> labels,
                                        const ParseLimits& limits,
                                        size_t* error_offset) {
  text = StripUtf8Bom(text);
  if (text.size() > limits.max_input_bytes) {
    return Status::ResourceExhausted(
        "Newick input of " + std::to_string(text.size()) +
        " bytes exceeds the " + std::to_string(limits.max_input_bytes) +
        "-byte limit");
  }
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  return ParseNewickImpl(text, std::move(labels),
                         SourceContext{text, nullptr, 0, error_offset},
                         limits);
}

Result<std::vector<Tree>> ParseNewickForest(
    std::string_view text, std::shared_ptr<LabelTable> labels,
    const ParseLimits& limits) {
  text = StripUtf8Bom(text);
  if (text.size() > limits.max_input_bytes) {
    return Status::ResourceExhausted(
        "Newick input of " + std::to_string(text.size()) +
        " bytes exceeds the " + std::to_string(limits.max_input_bytes) +
        "-byte limit");
  }
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  std::string cleaned;
  std::vector<size_t> to_source;
  StripCommentLines(text, &cleaned, &to_source);
  std::vector<Tree> out;
  COUSINS_RETURN_IF_ERROR(ForEachForestEntry(
      cleaned, [&](std::string_view trimmed, size_t base) -> Status {
        Result<Tree> t = ParseNewickImpl(
            trimmed, labels, SourceContext{text, &to_source, base},
            limits);
        if (!t.ok()) return t.status();
        out.push_back(std::move(t).value());
        return Status::OK();
      }));
  return out;
}

Result<LenientForest> ParseNewickForestLenient(
    std::string_view text, std::shared_ptr<LabelTable> labels,
    const ParseLimits& limits) {
  text = StripUtf8Bom(text);
  // The whole-input cap guards this process, not one tree: it stays a
  // hard error even in lenient mode.
  if (text.size() > limits.max_input_bytes) {
    return Status::ResourceExhausted(
        "Newick input of " + std::to_string(text.size()) +
        " bytes exceeds the " + std::to_string(limits.max_input_bytes) +
        "-byte limit");
  }
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  std::string cleaned;
  std::vector<size_t> to_source;
  StripCommentLines(text, &cleaned, &to_source);
  LenientForest out;
  int64_t entry_index = 0;
  COUSINS_RETURN_IF_ERROR(ForEachForestEntry(
      cleaned, [&](std::string_view trimmed, size_t base) -> Status {
        // Default the error position to the entry's start in `text`
        // for failures that never describe a position.
        size_t error_offset =
            base < to_source.size() ? to_source[base] : text.size();
        SourceContext ctx{text, &to_source, base, &error_offset};
        Result<Tree> t = ParseNewickImpl(trimmed, labels, ctx, limits);
        const int64_t index = entry_index++;
        if (t.ok()) {
          out.trees.push_back(std::move(t).value());
          out.source_indices.push_back(index);
        } else {
          ForestEntryError error;
          error.tree_index = index;
          error.byte_offset = error_offset;
          const TextPosition pos = LineColumnAt(text, error_offset);
          error.line = pos.line;
          error.column = pos.column;
          error.status = t.status();
          error.snippet = TruncateForDisplay(trimmed, 64);
          out.errors.push_back(std::move(error));
        }
        return Status::OK();
      }));
  return out;
}

Status ParseNewickForestWindow(
    std::string_view text, const ForestWindowOrigin& origin,
    std::shared_ptr<LabelTable> labels, const ParseLimits& limits,
    const std::function<Status(Tree, int64_t)>& on_tree,
    std::vector<ForestEntryError>* errors) {
  // No BOM strip here: windows are slices of an already-BOM-stripped
  // input, and a mid-file window that happens to start with the BOM
  // byte sequence holds those bytes as (malformed) content, exactly as
  // the whole-file parse would see them.
  if (text.size() > limits.max_input_bytes) {
    return Status::ResourceExhausted(
        "Newick input of " + std::to_string(text.size()) +
        " bytes exceeds the " + std::to_string(limits.max_input_bytes) +
        "-byte limit");
  }
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  std::string cleaned;
  std::vector<size_t> to_source;
  StripCommentLines(text, &cleaned, &to_source);
  int64_t entry_index = origin.entry_index;
  return ForEachForestEntry(
      cleaned, [&](std::string_view trimmed, size_t base) -> Status {
        size_t error_offset =
            base < to_source.size() ? to_source[base] : text.size();
        SourceContext ctx{text, &to_source, base, &error_offset,
                          origin.line - 1};
        Result<Tree> t = ParseNewickImpl(trimmed, labels, ctx, limits);
        const int64_t index = entry_index++;
        if (t.ok()) return on_tree(std::move(t).value(), index);
        if (errors != nullptr) {
          ForestEntryError error;
          error.tree_index = index;
          error.byte_offset = error_offset + origin.byte_offset;
          const TextPosition pos = LineColumnAt(text, error_offset);
          error.line = pos.line + (origin.line - 1);
          error.column = pos.column;
          error.status = t.status();
          error.snippet = TruncateForDisplay(trimmed, 64);
          errors->push_back(std::move(error));
        }
        return Status::OK();
      });
}

namespace {

bool NeedsQuoting(const std::string& label) {
  if (label.empty()) return true;
  for (char c : label) {
    if (IsStructural(c) || c == '\'' || c == ')' ||
        std::isspace(static_cast<unsigned char>(c))) {
      return true;
    }
  }
  return false;
}

void AppendLabel(const std::string& label, std::string* out) {
  if (!NeedsQuoting(label)) {
    *out += label;
    return;
  }
  *out += '\'';
  for (char c : label) {
    if (c == '\'') *out += '\'';
    *out += c;
  }
  *out += '\'';
}

void WriteNode(const Tree& tree, NodeId v, const NewickWriteOptions& options,
               std::string* out) {
  const auto& kids = tree.children(v);
  if (!kids.empty()) {
    *out += '(';
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) *out += ',';
      WriteNode(tree, kids[i], options, out);
    }
    *out += ')';
  }
  if (tree.has_label(v) && (kids.empty() || options.write_internal_labels)) {
    AppendLabel(tree.label_name(v), out);
  }
  if (options.write_branch_lengths && v != tree.root()) {
    *out += ':';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", tree.branch_length(v));
    *out += buf;
  }
}

}  // namespace

std::string ToNewick(const Tree& tree, const NewickWriteOptions& options) {
  std::string out;
  if (!tree.empty()) WriteNode(tree, tree.root(), options, &out);
  out += ';';
  return out;
}

}  // namespace cousins
