#include "tree/newick.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "tree/builder.h"
#include "util/strings.h"

namespace cousins {
namespace {

// Characters that terminate an unquoted label.
bool IsStructural(char c) {
  return c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
         c == '[';
}

/// Maps parser positions back to the user's original input. The forest
/// reader strips '#'-comment lines into an internal buffer before
/// splitting on ';', so a parser offset alone would point into that
/// buffer, not the text the user supplied; errors must instead report
/// the original line/column.
struct SourceContext {
  /// The full original input (error line/column are computed here).
  std::string_view source;
  /// For each char of the internal (comment-stripped) buffer, its
  /// offset in `source`. nullptr when the parsed text IS a slice of
  /// `source` (identity mapping via `base`).
  const std::vector<size_t>* to_source = nullptr;
  /// Offset of the parsed slice: into `source` when to_source is null,
  /// into the internal buffer otherwise.
  size_t base = 0;
};

/// "line L, column C" (1-based) of parser offset `local_pos` in the
/// original input.
std::string DescribePosition(const SourceContext& ctx, size_t local_pos) {
  size_t offset;
  if (ctx.to_source != nullptr) {
    const size_t index = ctx.base + local_pos;
    offset = index < ctx.to_source->size() ? (*ctx.to_source)[index]
                                           : ctx.source.size();
  } else {
    offset = ctx.base + local_pos;
  }
  offset = std::min(offset, ctx.source.size());
  size_t line = 1;
  size_t column = 1;
  for (size_t i = 0; i < offset; ++i) {
    if (ctx.source[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return "line " + std::to_string(line) + ", column " +
         std::to_string(column);
}

/// Recursive-descent Newick parser over a string_view cursor.
class NewickParser {
 public:
  NewickParser(std::string_view text, std::shared_ptr<LabelTable> labels,
               SourceContext ctx)
      : text_(text),
        ctx_(ctx),
        labels_(std::move(labels)),
        builder_(labels_) {}

  Result<Tree> Parse() {
    SkipSpace();
    if (AtEnd()) return Status::InvalidArgument("empty Newick string");
    COUSINS_RETURN_IF_ERROR(ParseNode(kNoNode));
    SkipSpace();
    if (!AtEnd() && Peek() == ';') Advance();
    SkipSpace();
    if (!AtEnd()) {
      return ErrorAt("trailing characters after Newick tree", pos_);
    }
    return std::move(builder_).Build();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }
  std::string At(size_t pos) const { return DescribePosition(ctx_, pos); }

  /// Error construction is kept out of line so its string temporaries
  /// don't enlarge the recursive ParseNode frame — deep nesting parses
  /// one stack frame per level (see robustness_test.cc's 20k bound).
  [[gnu::noinline]] Status ErrorAt(const char* what, size_t pos) const {
    return Status::InvalidArgument(std::string(what) + " at " + At(pos));
  }

  void SkipSpace() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '[') {
        // Bracket comment; unterminated comments consume to the end,
        // which the caller reports as trailing garbage / missing tokens.
        while (!AtEnd() && Peek() != ']') Advance();
        if (!AtEnd()) Advance();
      } else {
        return;
      }
    }
  }

  // node := ['(' node (',' node)* ')'] [label] [':' number]
  Status ParseNode(NodeId parent) {
    SkipSpace();
    NodeId self;
    bool had_children = false;
    if (!AtEnd() && Peek() == '(') {
      had_children = true;
      self = parent == kNoNode ? builder_.AddRoot()
                               : builder_.AddChild(parent);
      const size_t open_pos = pos_;
      Advance();  // '('
      while (true) {
        COUSINS_RETURN_IF_ERROR(ParseNode(self));
        SkipSpace();
        if (AtEnd()) {
          return ErrorAt("unterminated '(' opened", open_pos);
        }
        if (Peek() == ',') {
          Advance();
          continue;
        }
        if (Peek() == ')') {
          Advance();
          break;
        }
        return ErrorAt("expected ',' or ')'", pos_);
      }
    } else {
      self = parent == kNoNode ? builder_.AddRoot()
                               : builder_.AddChild(parent);
    }

    SkipSpace();
    // Optional label.
    std::string label;
    Status st = ParseLabel(&label);
    if (!st.ok()) return st;
    if (!label.empty()) {
      SetLabel(self, label);
    } else if (!had_children && parent != kNoNode) {
      // A bare leaf with no label is legal Newick but almost always a
      // typo like "(a,,b)"; we accept it as an unlabeled leaf.
    }

    SkipSpace();
    if (!AtEnd() && Peek() == ':') {
      Advance();
      double len = 0;
      COUSINS_RETURN_IF_ERROR(ParseNumber(&len));
      SetBranchLength(self, len);
    }
    return Status::OK();
  }

  /// noinline like ErrorAt: keeps label/number scratch space out of
  /// the recursive ParseNode frame.
  [[gnu::noinline]] Status ParseLabel(std::string* out) {
    out->clear();
    if (AtEnd()) return Status::OK();
    if (Peek() == '\'') {
      const size_t quote_pos = pos_;
      Advance();
      while (true) {
        if (AtEnd()) {
          return ErrorAt("unterminated quoted label starting", quote_pos);
        }
        char c = Peek();
        Advance();
        if (c == '\'') {
          if (!AtEnd() && Peek() == '\'') {  // '' escapes a quote
            out->push_back('\'');
            Advance();
            continue;
          }
          return Status::OK();
        }
        out->push_back(c);
      }
    }
    while (!AtEnd()) {
      char c = Peek();
      if (IsStructural(c) || std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      out->push_back(c);
      Advance();
    }
    return Status::OK();
  }

  [[gnu::noinline]] Status ParseNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (!AtEnd() && !IsStructural(Peek()) &&
           !std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    std::string_view token = text_.substr(start, pos_ - start);
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), *out);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Status::InvalidArgument("bad branch length '" +
                                     std::string(token) + "' at " +
                                     At(start));
    }
    return Status::OK();
  }

  void SetLabel(NodeId v, std::string_view label) {
    builder_.SetLabel(v, label);
  }
  void SetBranchLength(NodeId v, double len) {
    builder_.SetBranchLength(v, len);
  }

  std::string_view text_;
  size_t pos_ = 0;
  SourceContext ctx_;
  std::shared_ptr<LabelTable> labels_;
  TreeBuilder builder_;
};

Result<Tree> ParseNewickImpl(std::string_view text,
                             std::shared_ptr<LabelTable> labels,
                             SourceContext ctx) {
  NewickParser parser(text, std::move(labels), ctx);
  Result<Tree> result = parser.Parse();
  COUSINS_METRIC_COUNTER_ADD("newick.bytes", text.size());
  if (result.ok()) {
    COUSINS_METRIC_COUNTER_ADD("newick.trees_parsed", 1);
  } else {
    COUSINS_METRIC_COUNTER_ADD("newick.parse_errors", 1);
  }
  return result;
}

}  // namespace

Result<Tree> ParseNewick(std::string_view text,
                         std::shared_ptr<LabelTable> labels) {
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  return ParseNewickImpl(text, std::move(labels),
                         SourceContext{text, nullptr, 0});
}

Result<std::vector<Tree>> ParseNewickForest(
    std::string_view text, std::shared_ptr<LabelTable> labels) {
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  // Drop '#'-comment lines first; trees are then split on ';'. Each
  // retained char keeps its offset in `text` so parse errors can point
  // at the user's input rather than this internal buffer.
  std::string cleaned;
  std::vector<size_t> to_source;
  cleaned.reserve(text.size());
  to_source.reserve(text.size());
  for (std::string_view line : Split(text, '\n')) {
    if (StripWhitespace(line).empty() || StripWhitespace(line)[0] == '#') {
      continue;
    }
    const size_t line_offset =
        static_cast<size_t>(line.data() - text.data());
    for (size_t i = 0; i < line.size(); ++i) {
      cleaned.push_back(line[i]);
      to_source.push_back(line_offset + i);
    }
    cleaned.push_back('\n');
    to_source.push_back(line_offset + line.size());
  }
  std::vector<Tree> out;
  for (std::string_view piece : Split(cleaned, ';')) {
    std::string_view trimmed = StripWhitespace(piece);
    if (trimmed.empty()) continue;
    const size_t base =
        static_cast<size_t>(trimmed.data() - cleaned.data());
    COUSINS_ASSIGN_OR_RETURN(
        Tree t, ParseNewickImpl(trimmed, labels,
                                SourceContext{text, &to_source, base}));
    out.push_back(std::move(t));
  }
  return out;
}

namespace {

bool NeedsQuoting(const std::string& label) {
  if (label.empty()) return true;
  for (char c : label) {
    if (IsStructural(c) || c == '\'' || c == ')' ||
        std::isspace(static_cast<unsigned char>(c))) {
      return true;
    }
  }
  return false;
}

void AppendLabel(const std::string& label, std::string* out) {
  if (!NeedsQuoting(label)) {
    *out += label;
    return;
  }
  *out += '\'';
  for (char c : label) {
    if (c == '\'') *out += '\'';
    *out += c;
  }
  *out += '\'';
}

void WriteNode(const Tree& tree, NodeId v, const NewickWriteOptions& options,
               std::string* out) {
  const auto& kids = tree.children(v);
  if (!kids.empty()) {
    *out += '(';
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) *out += ',';
      WriteNode(tree, kids[i], options, out);
    }
    *out += ')';
  }
  if (tree.has_label(v) && (kids.empty() || options.write_internal_labels)) {
    AppendLabel(tree.label_name(v), out);
  }
  if (options.write_branch_lengths && v != tree.root()) {
    *out += ':';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", tree.branch_length(v));
    *out += buf;
  }
}

}  // namespace

std::string ToNewick(const Tree& tree, const NewickWriteOptions& options) {
  std::string out;
  if (!tree.empty()) WriteNode(tree, tree.root(), options, &out);
  out += ';';
  return out;
}

}  // namespace cousins
