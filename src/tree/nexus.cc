#include "tree/nexus.h"

#include <cctype>
#include <unordered_map>
#include <utility>

#include "tree/builder.h"
#include "tree/newick.h"
#include "util/strings.h"

namespace cousins {
namespace {

/// Strips '[...]' comments. When `to_source` is non-null, records each
/// retained char's offset in `text` so lenient error positions can
/// point at the user's input rather than the stripped buffer.
Result<std::string> StripBracketComments(std::string_view text,
                                         std::vector<size_t>* to_source) {
  std::string out;
  out.reserve(text.size());
  if (to_source != nullptr) to_source->reserve(text.size());
  int depth = 0;
  size_t open_pos = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '[') {
      if (depth == 0) open_pos = i;
      ++depth;
    } else if (c == ']') {
      if (depth > 0) --depth;
    } else if (depth == 0) {
      out.push_back(c);
      if (to_source != nullptr) to_source->push_back(i);
    }
  }
  if (depth > 0) {
    // An unterminated comment would silently swallow the rest of the
    // file (including whole TREE statements); reject it instead.
    return Status::InvalidArgument(
        "unterminated '[' comment opened at offset " +
        std::to_string(open_pos));
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)));
  return out;
}

/// Pulls the next whitespace- or quote-delimited token from `s` starting
/// at *pos; returns false at end. Quoted tokens ('' escapes a quote)
/// come back unquoted.
bool NextToken(std::string_view s, size_t* pos, std::string* out) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
  if (*pos >= s.size()) return false;
  out->clear();
  if (s[*pos] == '\'') {
    ++*pos;
    while (*pos < s.size()) {
      char c = s[(*pos)++];
      if (c == '\'') {
        if (*pos < s.size() && s[*pos] == '\'') {
          out->push_back('\'');
          ++*pos;
          continue;
        }
        return true;
      }
      out->push_back(c);
    }
    return true;  // unterminated quote: treat as ending at EOF
  }
  while (*pos < s.size() &&
         !std::isspace(static_cast<unsigned char>(s[*pos])) &&
         s[*pos] != ',' && s[*pos] != '=') {
    out->push_back(s[(*pos)++]);
  }
  return !out->empty();
}

using TranslateMap = std::unordered_map<std::string, std::string>;

/// Splits on `sep` outside single-quoted regions ('' escapes a quote).
std::vector<std::string_view> SplitOutsideQuotes(std::string_view s,
                                                 char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  bool quoted = false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\'') {
      quoted = !quoted;  // '' toggles twice, net unchanged
    } else if (s[i] == sep && !quoted) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(s.substr(start));
  return out;
}

Status ParseTranslate(std::string_view body, TranslateMap* translate,
                      const ParseLimits& limits) {
  // body: "1 Homo_sapiens, 2 'Pan troglodytes', ..." (keyword removed).
  for (std::string_view entry : SplitOutsideQuotes(body, ',')) {
    std::string_view trimmed = StripWhitespace(entry);
    if (trimmed.empty()) continue;
    size_t pos = 0;
    std::string token;
    std::string name;
    if (!NextToken(trimmed, &pos, &token) ||
        !NextToken(trimmed, &pos, &name)) {
      return Status::InvalidArgument(
          "bad TRANSLATE entry '" + std::string(trimmed) + "'");
    }
    if (token.size() > limits.max_label_bytes ||
        name.size() > limits.max_label_bytes) {
      return Status::ResourceExhausted(
          "TRANSLATE entry exceeds the label length limit (" +
          std::to_string(limits.max_label_bytes) + " bytes)");
    }
    (*translate)[token] = name;
  }
  return Status::OK();
}

/// Rebuilds `tree` onto the shared table, mapping labels through the
/// translate table.
Tree ApplyTranslation(const Tree& tree, const TranslateMap& translate,
                      const std::shared_ptr<LabelTable>& labels) {
  TreeBuilder b(labels);
  struct Frame {
    NodeId orig;
    NodeId parent;
  };
  std::vector<Frame> stack = {{tree.root(), kNoNode}};
  while (!stack.empty()) {
    auto [orig, parent] = stack.back();
    stack.pop_back();
    std::string name;
    if (tree.has_label(orig)) {
      name = tree.label_name(orig);
      auto it = translate.find(name);
      if (it != translate.end()) name = it->second;
    }
    NodeId copy = parent == kNoNode
                      ? b.AddRoot(name)
                      : b.AddChild(parent, name,
                                   tree.branch_length(orig));
    for (NodeId c : tree.children(orig)) stack.push_back({c, copy});
  }
  return std::move(b).Build();
}

}  // namespace

std::string ToNexus(const std::vector<NamedTree>& trees,
                    const NexusWriteOptions& options) {
  std::string out = "#NEXUS\nBEGIN TREES;\n";
  NewickWriteOptions newick_options;
  newick_options.write_branch_lengths = options.write_branch_lengths;

  // Number taxa across all trees in first-appearance order.
  std::unordered_map<std::string, int> number_of;
  std::vector<std::string> ordered;
  if (options.use_translate_table) {
    for (const NamedTree& nt : trees) {
      const Tree& t = nt.tree;
      for (NodeId v = 0; v < t.size(); ++v) {
        if (!t.is_leaf(v) || !t.has_label(v)) continue;
        if (number_of.emplace(t.label_name(v),
                              static_cast<int>(ordered.size()) + 1)
                .second) {
          ordered.push_back(t.label_name(v));
        }
      }
    }
    if (!ordered.empty()) {
      out += "  TRANSLATE\n";
      for (size_t i = 0; i < ordered.size(); ++i) {
        out += "    " + std::to_string(i + 1) + " ";
        // Quote names that need it, NEXUS-style.
        bool plain = true;
        for (char c : ordered[i]) {
          if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
              c == ';' || c == '\'' || c == '(' || c == ')') {
            plain = false;
          }
        }
        if (plain && !ordered[i].empty()) {
          out += ordered[i];
        } else {
          out += '\'';
          for (char c : ordered[i]) {
            if (c == '\'') out += '\'';
            out += c;
          }
          out += '\'';
        }
        out += i + 1 < ordered.size() ? ",\n" : ";\n";
      }
    }
  }

  for (size_t i = 0; i < trees.size(); ++i) {
    const NamedTree& nt = trees[i];
    std::string name =
        nt.name.empty() ? "tree_" + std::to_string(i) : nt.name;
    Tree to_write = nt.tree;
    if (options.use_translate_table) {
      // Rebuild with numeric leaf labels on a scratch table.
      TreeBuilder b(std::make_shared<LabelTable>());
      struct Frame {
        NodeId orig;
        NodeId parent;
      };
      std::vector<Frame> stack = {{nt.tree.root(), kNoNode}};
      while (!stack.empty()) {
        auto [orig, parent] = stack.back();
        stack.pop_back();
        std::string label;
        if (nt.tree.has_label(orig)) {
          label = nt.tree.label_name(orig);
          if (nt.tree.is_leaf(orig)) {
            label = std::to_string(number_of.at(label));
          }
        }
        NodeId copy =
            parent == kNoNode
                ? b.AddRoot(label)
                : b.AddChild(parent, label, nt.tree.branch_length(orig));
        for (NodeId c : nt.tree.children(orig)) stack.push_back({c, copy});
      }
      to_write = std::move(b).Build();
    }
    out += "  TREE " + name + " = " + ToNewick(to_write, newick_options) +
           "\n";
  }
  out += "END;\n";
  return out;
}

namespace {

/// Shared body of the strict and lenient NEXUS parsers. In strict mode
/// (`lenient` null) the first bad TREE statement aborts the parse; in
/// lenient mode it is recorded in `lenient->errors` (with its position
/// in `body`, the BOM-stripped input) and skipped. File-level defects
/// (size cap, unterminated comments, bad TRANSLATE) abort both modes.
Status ParseNexusImpl(std::string_view body,
                      std::shared_ptr<LabelTable> labels,
                      const ParseLimits& limits,
                      std::vector<NamedTree>* out,
                      LenientNamedForest* lenient) {
  if (body.size() > limits.max_input_bytes) {
    return Status::ResourceExhausted(
        "NEXUS input of " + std::to_string(body.size()) +
        " bytes exceeds the " + std::to_string(limits.max_input_bytes) +
        "-byte limit");
  }
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  std::vector<size_t> to_source;
  COUSINS_ASSIGN_OR_RETURN(
      const std::string cleaned,
      StripBracketComments(body, lenient != nullptr ? &to_source
                                                    : nullptr));

  // Maps an offset in `cleaned` back to the original `body`.
  auto source_offset = [&](size_t cleaned_offset) {
    return cleaned_offset < to_source.size() ? to_source[cleaned_offset]
                                             : body.size();
  };
  // Records one failed TREE statement in lenient mode.
  auto quarantine = [&](int64_t index, Status status,
                        size_t cleaned_offset,
                        std::string_view statement) {
    ForestEntryError error;
    error.tree_index = index;
    error.byte_offset = source_offset(cleaned_offset);
    const TextPosition pos = LineColumnAt(body, error.byte_offset);
    error.line = pos.line;
    error.column = pos.column;
    error.status = std::move(status);
    error.snippet = TruncateForDisplay(statement, 64);
    lenient->errors.push_back(std::move(error));
  };

  bool in_trees_block = false;
  int64_t tree_index = 0;
  TranslateMap translate;
  for (std::string_view raw : Split(cleaned, ';')) {
    std::string_view statement = StripWhitespace(raw);
    // The "#NEXUS" header is a line, not a ';'-terminated statement, so
    // it prefixes whatever statement follows it; drop such lines. Any
    // of '\n', "\r\n", or lone '\r' ends the header line.
    while (!statement.empty() && statement[0] == '#') {
      const size_t eol = statement.find_first_of("\r\n");
      if (eol == std::string_view::npos) {
        statement = {};
        break;
      }
      statement = StripWhitespace(statement.substr(eol + 1));
    }
    if (statement.empty()) continue;
    const std::string lower = ToLower(statement);

    if (!in_trees_block) {
      if (StartsWith(lower, "begin")) {
        std::string_view rest =
            StripWhitespace(statement.substr(5));
        if (StartsWith(ToLower(rest), "trees")) {
          in_trees_block = true;
          translate.clear();
        }
      }
      continue;
    }
    if (lower == "end" || lower == "endblock") {
      in_trees_block = false;
      continue;
    }
    if (StartsWith(lower, "translate")) {
      COUSINS_RETURN_IF_ERROR(
          ParseTranslate(statement.substr(9), &translate, limits));
      continue;
    }
    if (StartsWith(lower, "tree ") || StartsWith(lower, "tree\t")) {
      const int64_t index = tree_index++;
      const size_t statement_base =
          static_cast<size_t>(statement.data() - cleaned.data());
      const size_t eq = statement.find('=');
      if (eq == std::string_view::npos) {
        Status st = Status::InvalidArgument("TREE statement without '='");
        if (lenient == nullptr) return st;
        quarantine(index, std::move(st), statement_base, statement);
        continue;
      }
      NamedTree named;
      named.name =
          std::string(StripWhitespace(statement.substr(4, eq - 4)));
      std::string_view newick = StripWhitespace(statement.substr(eq + 1));
      // Parse into a scratch table, then rename through TRANSLATE onto
      // the shared table.
      auto scratch = std::make_shared<LabelTable>();
      size_t local_error = 0;
      Result<Tree> parsed = ParseNewickWithErrorOffset(
          newick, scratch, limits,
          lenient != nullptr ? &local_error : nullptr);
      if (!parsed.ok()) {
        if (lenient == nullptr) return parsed.status();
        const size_t newick_base =
            static_cast<size_t>(newick.data() - cleaned.data());
        quarantine(index, parsed.status(), newick_base + local_error,
                   statement);
        continue;
      }
      named.tree = ApplyTranslation(*parsed, translate, labels);
      if (lenient != nullptr) lenient->source_indices.push_back(index);
      out->push_back(std::move(named));
      continue;
    }
    // Other statements inside the block (e.g. LINK) are ignored.
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<NamedTree>> ParseNexusTrees(
    const std::string& text, std::shared_ptr<LabelTable> labels,
    const ParseLimits& limits) {
  std::vector<NamedTree> out;
  COUSINS_RETURN_IF_ERROR(ParseNexusImpl(StripUtf8Bom(text),
                                         std::move(labels), limits, &out,
                                         nullptr));
  return out;
}

Result<LenientNamedForest> ParseNexusForestLenient(
    const std::string& text, std::shared_ptr<LabelTable> labels,
    const ParseLimits& limits) {
  LenientNamedForest out;
  COUSINS_RETURN_IF_ERROR(ParseNexusImpl(StripUtf8Bom(text),
                                         std::move(labels), limits,
                                         &out.trees, &out));
  return out;
}

}  // namespace cousins
