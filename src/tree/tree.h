// Rooted unordered labeled tree — the paper's quadruple T = (V, N, λ, E)
// (§2): V is the node set, N the numbering function (our arena index),
// λ the partial labeling function, E the parent-child relation.
//
// Trees are immutable after construction (build one with TreeBuilder or
// ParseNewick). "Unordered" means sibling order carries no meaning; the
// mining algorithms never depend on it, and tests shuffle sibling order
// to prove it.

#ifndef COUSINS_TREE_TREE_H_
#define COUSINS_TREE_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tree/label_table.h"
#include "util/check.h"

namespace cousins {

/// Dense node identifier; the paper's numbering function N. The root is
/// always id 0 in a built tree.
using NodeId = int32_t;

/// Sentinel for "no node" (parent of the root, missing lookups).
inline constexpr NodeId kNoNode = -1;

class TreeBuilder;

/// An immutable rooted unordered labeled tree. Nodes may or may not carry
/// a label (phylogeny internal nodes typically do not). Optional branch
/// lengths support the weighted-edge extension and the sequence
/// simulator's model trees.
class Tree {
 public:
  Tree() = default;

  /// Number of nodes, the paper's |T|.
  int32_t size() const { return static_cast<int32_t>(parent_.size()); }
  bool empty() const { return parent_.empty(); }

  /// Root node id (0 for any non-empty tree).
  NodeId root() const {
    COUSINS_DCHECK(!empty());
    return 0;
  }

  NodeId parent(NodeId v) const {
    COUSINS_DCHECK(Valid(v));
    return parent_[v];
  }

  const std::vector<NodeId>& children(NodeId v) const {
    COUSINS_DCHECK(Valid(v));
    return children_[v];
  }

  bool is_leaf(NodeId v) const { return children(v).empty(); }

  /// Number of edges from the root (root has depth 0).
  int32_t depth(NodeId v) const {
    COUSINS_DCHECK(Valid(v));
    return depth_[v];
  }

  /// Label id of v, or kNoLabel if v is unlabeled.
  LabelId label(NodeId v) const {
    COUSINS_DCHECK(Valid(v));
    return label_[v];
  }

  bool has_label(NodeId v) const { return label(v) != kNoLabel; }

  /// Label string of a labeled node.
  const std::string& label_name(NodeId v) const {
    return labels().Name(label(v));
  }

  /// Length of the edge (parent(v), v); 1.0 unless set at build time.
  /// The root's value is meaningless and fixed at 0.
  double branch_length(NodeId v) const {
    COUSINS_DCHECK(Valid(v));
    return branch_length_[v];
  }

  /// The shared label table (common to every tree in a forest).
  const LabelTable& labels() const {
    COUSINS_DCHECK(labels_ != nullptr);
    return *labels_;
  }
  const std::shared_ptr<LabelTable>& labels_ptr() const { return labels_; }

  /// Number of leaves.
  int32_t leaf_count() const { return leaf_count_; }

  /// Maximum depth over all nodes (height of the tree in edges).
  int32_t height() const { return height_; }

  bool Valid(NodeId v) const { return v >= 0 && v < size(); }

 private:
  friend class TreeBuilder;

  std::shared_ptr<LabelTable> labels_;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<LabelId> label_;
  std::vector<int32_t> depth_;
  std::vector<double> branch_length_;
  int32_t leaf_count_ = 0;
  int32_t height_ = 0;
};

}  // namespace cousins

#endif  // COUSINS_TREE_TREE_H_
