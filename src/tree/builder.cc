#include "tree/builder.h"

#include <algorithm>
#include <utility>

namespace cousins {

TreeBuilder::TreeBuilder(std::shared_ptr<LabelTable> labels)
    : labels_(labels ? std::move(labels)
                     : std::make_shared<LabelTable>()) {}

NodeId TreeBuilder::AddRoot(std::string_view label) {
  COUSINS_CHECK(parent_.empty());
  parent_.push_back(kNoNode);
  label_.push_back(label.empty() ? kNoLabel : labels_->Intern(label));
  branch_length_.push_back(0.0);
  return 0;
}

NodeId TreeBuilder::AddChild(NodeId parent, std::string_view label,
                             double branch_length) {
  return AddChildWithLabelId(
      parent, label.empty() ? kNoLabel : labels_->Intern(label),
      branch_length);
}

NodeId TreeBuilder::AddChildWithLabelId(NodeId parent, LabelId label,
                                        double branch_length) {
  COUSINS_CHECK(parent >= 0 && parent < size());
  auto id = static_cast<NodeId>(parent_.size());
  parent_.push_back(parent);
  label_.push_back(label);
  branch_length_.push_back(branch_length);
  return id;
}

void TreeBuilder::SetLabel(NodeId v, std::string_view label) {
  COUSINS_CHECK(v >= 0 && v < size());
  label_[v] = label.empty() ? kNoLabel : labels_->Intern(label);
}

void TreeBuilder::SetBranchLength(NodeId v, double branch_length) {
  COUSINS_CHECK(v >= 0 && v < size());
  branch_length_[v] = branch_length;
}

Tree TreeBuilder::Build(std::vector<NodeId>* old_to_new) && {
  Tree t;
  t.labels_ = std::move(labels_);
  const auto n = static_cast<int32_t>(parent_.size());
  if (n == 0) {
    if (old_to_new != nullptr) old_to_new->clear();
    return t;
  }

  // Children lists in insertion order (insertion order is a valid
  // topological order because AddChild requires an existing parent).
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 1; v < n; ++v) children[parent_[v]].push_back(v);

  // Renumber to preorder so the root is 0 and parent(v) < v.
  std::vector<NodeId> order;  // order[new_id] = old_id
  order.reserve(n);
  std::vector<NodeId> stack = {0};
  while (!stack.empty()) {
    NodeId old_id = stack.back();
    stack.pop_back();
    order.push_back(old_id);
    // Push in reverse so the first-added child is visited first; the
    // tree is unordered, this just keeps numbering intuitive.
    for (auto it = children[old_id].rbegin(); it != children[old_id].rend();
         ++it) {
      stack.push_back(*it);
    }
  }
  COUSINS_CHECK(static_cast<int32_t>(order.size()) == n);

  std::vector<NodeId> new_id(n);
  for (NodeId i = 0; i < n; ++i) new_id[order[i]] = i;
  if (old_to_new != nullptr) *old_to_new = new_id;

  t.parent_.resize(n);
  t.children_.resize(n);
  t.label_.resize(n);
  t.depth_.resize(n);
  t.branch_length_.resize(n);
  t.leaf_count_ = 0;
  t.height_ = 0;
  for (NodeId i = 0; i < n; ++i) {
    NodeId old_id = order[i];
    NodeId p = parent_[old_id] == kNoNode ? kNoNode : new_id[parent_[old_id]];
    t.parent_[i] = p;
    t.label_[i] = label_[old_id];
    t.branch_length_[i] = branch_length_[old_id];
    t.depth_[i] = p == kNoNode ? 0 : t.depth_[p] + 1;
    t.height_ = std::max(t.height_, t.depth_[i]);
    if (p != kNoNode) t.children_[p].push_back(i);
    if (children[old_id].empty()) ++t.leaf_count_;
  }
  return t;
}

}  // namespace cousins
