#include "tree/lca.h"

#include <algorithm>
#include <bit>

namespace cousins {

LcaIndex::LcaIndex(const Tree& tree) : tree_(tree) {
  COUSINS_CHECK(!tree.empty());
  const int32_t n = tree.size();
  first_visit_.assign(n, -1);
  euler_.reserve(2 * n);
  euler_depth_.reserve(2 * n);

  // Iterative Euler tour: push (node, next-child-index) frames.
  std::vector<std::pair<NodeId, size_t>> stack;
  stack.emplace_back(tree.root(), 0);
  while (!stack.empty()) {
    auto& [v, next_child] = stack.back();
    if (next_child == 0) {
      first_visit_[v] = static_cast<int32_t>(euler_.size());
      euler_.push_back(v);
      euler_depth_.push_back(tree.depth(v));
    }
    if (next_child < tree.children(v).size()) {
      NodeId c = tree.children(v)[next_child++];
      stack.emplace_back(c, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        euler_.push_back(stack.back().first);
        euler_depth_.push_back(tree.depth(stack.back().first));
      }
    }
  }

  const auto m = static_cast<int32_t>(euler_.size());
  const int levels = std::bit_width(static_cast<uint32_t>(m));
  sparse_.resize(levels);
  sparse_[0].resize(m);
  for (int32_t i = 0; i < m; ++i) sparse_[0][i] = i;
  for (int k = 1; k < levels; ++k) {
    const int32_t span = 1 << k;
    sparse_[k].resize(m - span + 1);
    for (int32_t i = 0; i + span <= m; ++i) {
      int32_t left = sparse_[k - 1][i];
      int32_t right = sparse_[k - 1][i + span / 2];
      sparse_[k][i] =
          euler_depth_[left] <= euler_depth_[right] ? left : right;
    }
  }
}

NodeId LcaIndex::Lca(NodeId u, NodeId v) const {
  COUSINS_DCHECK(tree_.Valid(u) && tree_.Valid(v));
  int32_t a = first_visit_[u];
  int32_t b = first_visit_[v];
  if (a > b) std::swap(a, b);
  const int k = std::bit_width(static_cast<uint32_t>(b - a + 1)) - 1;
  int32_t left = sparse_[k][a];
  int32_t right = sparse_[k][b - (1 << k) + 1];
  return euler_[euler_depth_[left] <= euler_depth_[right] ? left : right];
}

int32_t LcaIndex::PathLength(NodeId u, NodeId v) const {
  NodeId a = Lca(u, v);
  return tree_.depth(u) + tree_.depth(v) - 2 * tree_.depth(a);
}

NodeId NaiveLca(const Tree& tree, NodeId u, NodeId v) {
  while (tree.depth(u) > tree.depth(v)) u = tree.parent(u);
  while (tree.depth(v) > tree.depth(u)) v = tree.parent(v);
  while (u != v) {
    u = tree.parent(u);
    v = tree.parent(v);
  }
  return u;
}

}  // namespace cousins
