// Least common ancestor queries.
//
// The cousin-distance definition (§2, Fig. 2) is phrased in terms of the
// LCA. The naive miner issues O(n²) LCA queries, so we provide the
// classic Euler-tour + sparse-table index with O(n log n) preprocessing
// and O(1) queries (Bender & Farach-Colton [4]), plus a naive
// depth-climbing reference used to validate it.

#ifndef COUSINS_TREE_LCA_H_
#define COUSINS_TREE_LCA_H_

#include <vector>

#include "tree/tree.h"

namespace cousins {

/// O(1)-query LCA index over an immutable tree. The indexed tree must
/// outlive the index.
class LcaIndex {
 public:
  explicit LcaIndex(const Tree& tree);

  /// Least common ancestor of u and v.
  NodeId Lca(NodeId u, NodeId v) const;

  /// Edges on the path between u and v (0 when u == v).
  int32_t PathLength(NodeId u, NodeId v) const;

 private:
  const Tree& tree_;
  std::vector<int32_t> first_visit_;   // node -> first index in euler_
  std::vector<NodeId> euler_;          // Euler tour of nodes
  std::vector<int32_t> euler_depth_;   // depth of euler_[i]
  // sparse_[k][i] = index (into euler_) of the min-depth entry in
  // euler_[i, i + 2^k).
  std::vector<std::vector<int32_t>> sparse_;
};

/// Reference LCA by climbing parents; O(depth) per query.
NodeId NaiveLca(const Tree& tree, NodeId u, NodeId v);

}  // namespace cousins

#endif  // COUSINS_TREE_LCA_H_
