#include "tree/traversal.h"

#include <numeric>

namespace cousins {

std::vector<NodeId> PreorderIds(const Tree& tree) {
  std::vector<NodeId> order(tree.size());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<NodeId> PostorderIds(const Tree& tree) {
  // Reverse preorder with children reversed is a valid postorder; since
  // ids are preorder-numbered, descending id order already puts children
  // before parents.
  std::vector<NodeId> order(tree.size());
  for (NodeId v = 0; v < tree.size(); ++v) order[v] = tree.size() - 1 - v;
  return order;
}

std::vector<int32_t> SubtreeSizes(const Tree& tree) {
  std::vector<int32_t> size(tree.size(), 1);
  for (NodeId v = tree.size() - 1; v > 0; --v) {
    size[tree.parent(v)] += size[v];
  }
  return size;
}

NodeId ClimbUp(const Tree& tree, NodeId v, int32_t levels) {
  COUSINS_CHECK(levels >= 0);
  while (levels-- > 0) {
    if (v == kNoNode) return kNoNode;
    v = tree.parent(v);
  }
  return v;
}

std::vector<LabelId> SubtreeLeafLabels(const Tree& tree, NodeId v) {
  std::vector<LabelId> out;
  std::vector<NodeId> stack = {v};
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    if (tree.is_leaf(u)) {
      if (tree.has_label(u)) out.push_back(tree.label(u));
      continue;
    }
    for (NodeId c : tree.children(u)) stack.push_back(c);
  }
  return out;
}

}  // namespace cousins
