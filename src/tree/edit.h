// Tree surgery used by the parsimony search (NNI moves).

#ifndef COUSINS_TREE_EDIT_H_
#define COUSINS_TREE_EDIT_H_

#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

/// Returns a copy of `tree` with the subtrees rooted at u and v
/// exchanged. Fails if u and v are equal, ancestor-related, or either is
/// the root. Branch lengths travel with their subtrees.
Result<Tree> SwapSubtrees(const Tree& tree, NodeId u, NodeId v);

/// Subtree prune and regraft: detaches the subtree rooted at `prune`
/// (suppressing its parent if left unary) and reattaches it on the edge
/// above `regraft` via a fresh unlabeled node; regrafting above the
/// root creates a new root. Fails if `prune` is the root, `regraft`
/// lies inside the pruned subtree, or `regraft` is the node suppressed
/// by the prune. Node ids refer to the input tree.
Result<Tree> SprMove(const Tree& tree, NodeId prune, NodeId regraft);

}  // namespace cousins

#endif  // COUSINS_TREE_EDIT_H_
