#include "tree/canonical.h"

#include <algorithm>
#include <vector>

namespace cousins {

std::string CanonicalForm(const Tree& tree, NodeId v) {
  std::vector<std::string> child_forms;
  child_forms.reserve(tree.children(v).size());
  for (NodeId c : tree.children(v)) {
    child_forms.push_back(CanonicalForm(tree, c));
  }
  std::sort(child_forms.begin(), child_forms.end());
  std::string out = "(";
  if (tree.has_label(v)) out += std::to_string(tree.label(v));
  for (const std::string& f : child_forms) out += f;
  out += ")";
  return out;
}

bool UnorderedIsomorphic(const Tree& a, const Tree& b) {
  COUSINS_CHECK(a.labels_ptr() == b.labels_ptr());
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return CanonicalForm(a) == CanonicalForm(b);
}

}  // namespace cousins
