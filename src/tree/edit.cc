#include "tree/edit.h"

#include <utility>
#include <vector>

#include "tree/builder.h"

namespace cousins {
namespace {

bool IsAncestor(const Tree& tree, NodeId anc, NodeId v) {
  while (v != kNoNode && tree.depth(v) >= tree.depth(anc)) {
    if (v == anc) return true;
    v = tree.parent(v);
  }
  return false;
}

}  // namespace

Result<Tree> SwapSubtrees(const Tree& tree, NodeId u, NodeId v) {
  if (!tree.Valid(u) || !tree.Valid(v)) {
    return Status::InvalidArgument("invalid node id");
  }
  if (u == v) return Status::InvalidArgument("u == v");
  if (u == tree.root() || v == tree.root()) {
    return Status::InvalidArgument("cannot swap the root");
  }
  if (IsAncestor(tree, u, v) || IsAncestor(tree, v, u)) {
    return Status::InvalidArgument("u and v are ancestor-related");
  }

  // Emit a copy, substituting v's subtree at u's position and vice
  // versa (the substitution applies once; inside a grafted subtree the
  // original structure is kept).
  TreeBuilder b(tree.labels_ptr());
  struct Frame {
    NodeId orig;
    NodeId parent;   // new-tree parent
    bool substitute; // whether the u<->v substitution is still active
  };
  std::vector<Frame> stack = {{tree.root(), kNoNode, true}};
  while (!stack.empty()) {
    auto [orig, parent, substitute] = stack.back();
    stack.pop_back();
    NodeId source = orig;
    bool child_substitute = substitute;
    if (substitute && (orig == u || orig == v)) {
      source = orig == u ? v : u;
      child_substitute = false;
    }
    const NodeId copy =
        parent == kNoNode
            ? b.AddRoot()
            : b.AddChildWithLabelId(parent, tree.label(source),
                                    tree.branch_length(source));
    if (parent == kNoNode && tree.has_label(source)) {
      b.SetLabel(copy, tree.label_name(source));
    }
    for (NodeId c : tree.children(source)) {
      stack.push_back({c, copy, child_substitute});
    }
  }
  return std::move(b).Build();
}

Result<Tree> SprMove(const Tree& tree, NodeId prune, NodeId regraft) {
  if (!tree.Valid(prune) || !tree.Valid(regraft)) {
    return Status::InvalidArgument("invalid node id");
  }
  if (prune == tree.root()) {
    return Status::InvalidArgument("cannot prune the root");
  }
  if (regraft == prune || IsAncestor(tree, prune, regraft)) {
    return Status::InvalidArgument(
        "regraft point lies inside the pruned subtree");
  }

  // Mutable mirror of the topology (original node ids).
  const int32_t n = tree.size();
  std::vector<std::vector<NodeId>> kids(n);
  std::vector<NodeId> parent(n);
  for (NodeId v = 0; v < n; ++v) {
    kids[v] = tree.children(v);
    parent[v] = tree.parent(v);
  }
  NodeId root = tree.root();

  // Detach `prune`.
  NodeId p = parent[prune];
  std::erase(kids[p], prune);
  NodeId suppressed = kNoNode;
  if (kids[p].size() == 1) {
    const NodeId only = kids[p][0];
    if (p == root) {
      root = only;
      parent[only] = kNoNode;
    } else {
      // Splice p out: its remaining child takes its place.
      for (NodeId& c : kids[parent[p]]) {
        if (c == p) c = only;
      }
      parent[only] = parent[p];
    }
    suppressed = p;
  }
  if (regraft == suppressed) {
    return Status::InvalidArgument(
        "regraft edge was suppressed by the prune");
  }

  // Regraft on the edge above `regraft` via a fresh node (id n).
  const NodeId fresh = n;
  kids.emplace_back();
  parent.push_back(kNoNode);
  if (regraft == root) {
    kids[fresh] = {regraft, prune};
    parent[regraft] = fresh;
    parent[prune] = fresh;
    root = fresh;
  } else {
    for (NodeId& c : kids[parent[regraft]]) {
      if (c == regraft) c = fresh;
    }
    parent[fresh] = parent[regraft];
    kids[fresh] = {regraft, prune};
    parent[regraft] = fresh;
    parent[prune] = fresh;
  }

  // Emit (skipping the suppressed node, which is now unreachable).
  TreeBuilder b(tree.labels_ptr());
  struct Frame {
    NodeId orig;
    NodeId parent_copy;
  };
  std::vector<Frame> stack = {{root, kNoNode}};
  while (!stack.empty()) {
    auto [orig, parent_copy] = stack.back();
    stack.pop_back();
    const bool is_fresh = orig == fresh;
    NodeId copy;
    if (parent_copy == kNoNode) {
      copy = b.AddRoot();
      if (!is_fresh && tree.has_label(orig)) {
        b.SetLabel(copy, tree.label_name(orig));
      }
    } else {
      copy = b.AddChildWithLabelId(
          parent_copy, is_fresh ? kNoLabel : tree.label(orig),
          is_fresh ? 1.0 : tree.branch_length(orig));
    }
    for (NodeId c : kids[orig]) stack.push_back({c, copy});
  }
  return std::move(b).Build();
}

}  // namespace cousins
