// ASCII rendering of rooted trees for terminals and logs.

#ifndef COUSINS_TREE_RENDER_H_
#define COUSINS_TREE_RENDER_H_

#include <string>

#include "tree/tree.h"

namespace cousins {

struct RenderOptions {
  /// Show "(#<id>)" next to unlabeled nodes.
  bool show_ids = false;
  /// Append ":<branch length>" to every non-root node.
  bool show_branch_lengths = false;
};

/// Renders `tree` as indented ASCII art, one node per line:
///
///   root
///   ├── a
///   │   ├── x
///   │   └── y
///   └── b
std::string RenderAscii(const Tree& tree, const RenderOptions& options = {});

}  // namespace cousins

#endif  // COUSINS_TREE_RENDER_H_
