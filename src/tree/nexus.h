// Minimal NEXUS TREES-block parser.
//
// TreeBASE — the corpus behind the paper's Figures 7-8 — exchanges
// phylogenies as NEXUS files. This parser handles the subset needed to
// ingest such files: a (case-insensitive) "BEGIN TREES; ... END;" block
// with an optional TRANSLATE table mapping tokens to taxon names and
// one or more "TREE <name> = [&R] <newick>;" statements. Bracket
// comments are stripped; everything outside TREES blocks is ignored.

#ifndef COUSINS_TREE_NEXUS_H_
#define COUSINS_TREE_NEXUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tree/newick.h"
#include "tree/parse_limits.h"
#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

struct NamedTree {
  std::string name;
  Tree tree;
};

/// Parses every TREE statement of every TREES block in `text`, applying
/// TRANSLATE tables. All trees share `labels` (fresh if null).
/// `limits` caps the input size and is forwarded to the embedded
/// Newick parses (node count, nesting depth, label length); an
/// unterminated '[' comment is a parse error. A leading UTF-8 BOM is
/// stripped, and '\n', "\r\n", and lone '\r' all terminate the
/// "#NEXUS" header line.
Result<std::vector<NamedTree>> ParseNexusTrees(
    const std::string& text, std::shared_ptr<LabelTable> labels = nullptr,
    const ParseLimits& limits = ParseLimits());

/// Lenient-parse result for a NEXUS file: the TREE statements that
/// parsed, each one's stable index among the file's TREE statements,
/// and one ForestEntryError (tree/newick.h) per statement that failed.
struct LenientNamedForest {
  std::vector<NamedTree> trees;
  std::vector<int64_t> source_indices;
  std::vector<ForestEntryError> errors;
};

/// Degraded-mode counterpart of ParseNexusTrees: a TREE statement that
/// fails to parse (malformed Newick, missing '=', per-entry limit
/// trip) is recorded with its position in `text` and skipped, and the
/// rest of the file still parses. File-level defects stay hard errors
/// in both modes: whole-input size cap, unterminated '[' comments, and
/// malformed TRANSLATE tables (a broken table would silently mislabel
/// every following tree, which is worse than failing).
Result<LenientNamedForest> ParseNexusForestLenient(
    const std::string& text, std::shared_ptr<LabelTable> labels = nullptr,
    const ParseLimits& limits = ParseLimits());

struct NexusWriteOptions {
  /// Emit a TRANSLATE table (taxa numbered 1..n) instead of inline
  /// taxon names, as TreeBASE exports do.
  bool use_translate_table = true;
  bool write_branch_lengths = false;
};

/// Serializes trees as "#NEXUS\nBEGIN TREES; ... END;". Unnamed trees
/// are called "tree_<i>". Round-trips through ParseNexusTrees.
std::string ToNexus(const std::vector<NamedTree>& trees,
                    const NexusWriteOptions& options = {});

}  // namespace cousins

#endif  // COUSINS_TREE_NEXUS_H_
