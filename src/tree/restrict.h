// Induced subtrees: restrict a phylogeny to a subset of its taxa — the
// operation underlying supertree workflows (§5.3), where studies share
// some but not all taxa.

#ifndef COUSINS_TREE_RESTRICT_H_
#define COUSINS_TREE_RESTRICT_H_

#include <vector>

#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

/// Returns the topology induced on the leaves whose labels appear in
/// `keep`: other leaves are removed, internal nodes left with a single
/// child are suppressed (their branch lengths summed), and empty
/// branches are dropped. Internal labels are preserved on surviving
/// nodes. Fails if no leaf matches.
Result<Tree> RestrictToLabels(const Tree& tree,
                              const std::vector<LabelId>& keep);

}  // namespace cousins

#endif  // COUSINS_TREE_RESTRICT_H_
