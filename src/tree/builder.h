// TreeBuilder: the only way to construct a Tree.
//
// Usage:
//   TreeBuilder b;                       // fresh label table
//   NodeId r = b.AddRoot();              // unlabeled root
//   NodeId a = b.AddChild(r, "a");
//   b.AddChild(a, "x", /*branch_length=*/0.3);
//   Tree t = std::move(b).Build();
//
// Nodes are created in the order added; Build() renumbers to a preorder
// (root = 0) so downstream code can rely on parent(v) < v.

#ifndef COUSINS_TREE_BUILDER_H_
#define COUSINS_TREE_BUILDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "tree/tree.h"

namespace cousins {

class TreeBuilder {
 public:
  /// If `labels` is null a fresh table is created. Pass a shared table
  /// when building a forest whose trees must agree on label ids.
  explicit TreeBuilder(std::shared_ptr<LabelTable> labels = nullptr);

  /// Adds the root; must be the first node added, exactly once.
  NodeId AddRoot(std::string_view label = {});

  /// Adds a child of `parent` (which must already exist).
  NodeId AddChild(NodeId parent, std::string_view label = {},
                  double branch_length = 1.0);

  /// Adds a child with an already-interned label id (kNoLabel allowed).
  NodeId AddChildWithLabelId(NodeId parent, LabelId label,
                             double branch_length = 1.0);

  /// Sets or replaces the label of an existing node (Newick supplies an
  /// internal node's label after its subtree).
  void SetLabel(NodeId v, std::string_view label);

  /// Sets the length of the edge above an existing node.
  void SetBranchLength(NodeId v, double branch_length);

  /// Number of nodes added so far.
  int32_t size() const { return static_cast<int32_t>(parent_.size()); }

  const std::shared_ptr<LabelTable>& labels() const { return labels_; }

  /// Finalizes the tree. The builder is consumed. Build() renumbers
  /// nodes to preorder; if `old_to_new` is non-null it receives the
  /// permutation from builder-time ids to final Tree ids.
  Tree Build(std::vector<NodeId>* old_to_new = nullptr) &&;

 private:
  std::shared_ptr<LabelTable> labels_;
  std::vector<NodeId> parent_;
  std::vector<LabelId> label_;
  std::vector<double> branch_length_;
};

}  // namespace cousins

#endif  // COUSINS_TREE_BUILDER_H_
