#include "tree/tree.h"

// Tree itself is a passive data holder; its behaviour lives in the
// builder, traversal, and canonical-form translation units. This file
// exists so the target has a home for future non-inline members.
