// Newick tree format parser and writer.
//
// TreeBASE and PHYLIP exchange phylogenies as Newick strings, e.g.
//   ((Gnetum,Welwitschia),Ephedra,Outgroup);
// The parser supports the common dialect: unquoted and single-quoted
// labels ('' escapes a quote), internal-node labels, branch lengths
// (":0.5"), bracket comments ("[...]"), and arbitrary whitespace.

#ifndef COUSINS_TREE_NEWICK_H_
#define COUSINS_TREE_NEWICK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tree/parse_limits.h"
#include "tree/tree.h"
#include "util/result.h"
#include "util/status.h"

namespace cousins {

/// Parses one Newick tree (the trailing ';' is optional). Labels are
/// interned into `labels` (a fresh table if null). Parse errors report
/// the 1-based line and column in `text` ("\r\n" and lone '\r' both
/// count as line breaks; a leading UTF-8 BOM is stripped and positions
/// refer to the BOM-less text, matching what editors display). Inputs
/// exceeding `limits` (size, nodes, depth, label length) come back as
/// kResourceExhausted with the same line/column reporting; pass
/// ParseLimits::Unlimited() for trusted input.
Result<Tree> ParseNewick(std::string_view text,
                         std::shared_ptr<LabelTable> labels = nullptr,
                         const ParseLimits& limits = ParseLimits());

/// As ParseNewick; on failure additionally reports the byte offset of
/// the error within the (BOM-stripped) `text` via `error_offset` when
/// non-null. Lenient drivers use this to record machine-readable
/// positions without parsing the message text.
Result<Tree> ParseNewickWithErrorOffset(
    std::string_view text, std::shared_ptr<LabelTable> labels,
    const ParseLimits& limits, size_t* error_offset);

/// Parses a ';'-separated sequence of Newick trees sharing one label
/// table. Tree separators are ';' characters *outside* quoted labels,
/// so a taxon named 'a;b' does not shear its tree in half. Blank
/// entries and '#'-comment lines (again, outside quotes) are skipped;
/// parse errors still report line/column positions in the caller's
/// original `text`, not the internal comment-stripped buffer.
Result<std::vector<Tree>> ParseNewickForest(
    std::string_view text, std::shared_ptr<LabelTable> labels = nullptr,
    const ParseLimits& limits = ParseLimits());

/// One failed entry from a lenient forest parse — everything the
/// quarantine ledger (core/quarantine.h) needs to name the bad tree.
struct ForestEntryError {
  /// Index of the failed entry among the forest's non-empty entries —
  /// the same numbering LenientForest::source_indices uses for the
  /// trees that did parse.
  int64_t tree_index = 0;
  /// Error position in the (BOM-stripped) original input.
  size_t byte_offset = 0;
  size_t line = 1;
  size_t column = 1;
  Status status;
  /// Truncated text of the failed entry, for the health report.
  std::string snippet;
};

/// Result of a lenient forest parse: the trees that parsed, each tree's
/// stable entry index in the input, and one ForestEntryError per entry
/// that failed. trees.size() + errors.size() == number of non-empty
/// entries; source_indices and errors partition [0, that total).
struct LenientForest {
  std::vector<Tree> trees;
  std::vector<int64_t> source_indices;
  std::vector<ForestEntryError> errors;
};

/// Degraded-mode counterpart of ParseNewickForest: instead of aborting
/// at the first malformed entry, records it (with its position and a
/// snippet) and keeps parsing the rest. Only a whole-input limit
/// violation (ParseLimits::max_input_bytes) is still a hard error —
/// per-entry failures, including per-entry limit trips such as an
/// oversized label, are isolated.
Result<LenientForest> ParseNewickForestLenient(
    std::string_view text, std::shared_ptr<LabelTable> labels = nullptr,
    const ParseLimits& limits = ParseLimits());

/// Where a forest window starts inside the whole (BOM-stripped) input:
/// its byte offset, its 1-based line number, and how many non-empty
/// forest entries precede it. The multi-process shard reader slices a
/// large forest file into such windows; this origin lets the windowed
/// parse report positions and indices in whole-file terms.
struct ForestWindowOrigin {
  size_t byte_offset = 0;
  size_t line = 1;
  int64_t entry_index = 0;
};

/// Streaming lenient parse of one window of a larger forest: `on_tree`
/// receives each entry that parses (the tree is moved in and not
/// retained — the parse→mine→release shape of out-of-core mining) with
/// its whole-file entry index; each failed entry is appended to
/// `errors` with exactly the fields ParseNewickForestLenient over the
/// whole input would record (same index, byte offset, line/column,
/// message text, snippet). A non-OK `on_tree` result aborts the scan
/// and is returned.
///
/// The window must begin at the start of a line (column 1), outside any
/// quoted label and outside a '#'-comment line — proc/shard_plan.h cut
/// points guarantee this. Unlike the whole-input entry points, no UTF-8
/// BOM is stripped (the caller strips it once when slicing windows) and
/// `limits.max_input_bytes` caps this window, not the whole file.
Status ParseNewickForestWindow(
    std::string_view text, const ForestWindowOrigin& origin,
    std::shared_ptr<LabelTable> labels, const ParseLimits& limits,
    const std::function<Status(Tree, int64_t)>& on_tree,
    std::vector<ForestEntryError>* errors);

/// Options for Newick serialization.
struct NewickWriteOptions {
  /// Emit ":<branch_length>" after each non-root node.
  bool write_branch_lengths = false;
  /// Emit labels on internal nodes (leaf labels are always written).
  bool write_internal_labels = true;
};

/// Serializes `tree` as a Newick string, including the trailing ';'.
/// Labels needing quotes (spaces, punctuation) are single-quoted.
std::string ToNewick(const Tree& tree, const NewickWriteOptions& options = {});

}  // namespace cousins

#endif  // COUSINS_TREE_NEWICK_H_
