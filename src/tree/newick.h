// Newick tree format parser and writer.
//
// TreeBASE and PHYLIP exchange phylogenies as Newick strings, e.g.
//   ((Gnetum,Welwitschia),Ephedra,Outgroup);
// The parser supports the common dialect: unquoted and single-quoted
// labels ('' escapes a quote), internal-node labels, branch lengths
// (":0.5"), bracket comments ("[...]"), and arbitrary whitespace.

#ifndef COUSINS_TREE_NEWICK_H_
#define COUSINS_TREE_NEWICK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tree/parse_limits.h"
#include "tree/tree.h"
#include "util/result.h"

namespace cousins {

/// Parses one Newick tree (the trailing ';' is optional). Labels are
/// interned into `labels` (a fresh table if null). Parse errors report
/// the 1-based line and column in `text`. Inputs exceeding `limits`
/// (size, nodes, depth, label length) come back as kResourceExhausted
/// with the same line/column reporting; pass ParseLimits::Unlimited()
/// for trusted input.
Result<Tree> ParseNewick(std::string_view text,
                         std::shared_ptr<LabelTable> labels = nullptr,
                         const ParseLimits& limits = ParseLimits());

/// Parses a ';'-separated sequence of Newick trees sharing one label
/// table. Tree separators are ';' characters *outside* quoted labels,
/// so a taxon named 'a;b' does not shear its tree in half. Blank
/// entries and '#'-comment lines (again, outside quotes) are skipped;
/// parse errors still report line/column positions in the caller's
/// original `text`, not the internal comment-stripped buffer.
Result<std::vector<Tree>> ParseNewickForest(
    std::string_view text, std::shared_ptr<LabelTable> labels = nullptr,
    const ParseLimits& limits = ParseLimits());

/// Options for Newick serialization.
struct NewickWriteOptions {
  /// Emit ":<branch_length>" after each non-root node.
  bool write_branch_lengths = false;
  /// Emit labels on internal nodes (leaf labels are always written).
  bool write_internal_labels = true;
};

/// Serializes `tree` as a Newick string, including the trailing ';'.
/// Labels needing quotes (spaces, punctuation) are single-quoted.
std::string ToNewick(const Tree& tree, const NewickWriteOptions& options = {});

}  // namespace cousins

#endif  // COUSINS_TREE_NEWICK_H_
