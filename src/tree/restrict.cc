#include "tree/restrict.h"

#include <unordered_set>
#include <utility>

#include "tree/builder.h"

namespace cousins {
namespace {

/// Bottom-up construction skeleton for the induced tree.
struct Proto {
  LabelId label = kNoLabel;
  double branch_length = 0.0;
  std::vector<int> kids;
};

}  // namespace

Result<Tree> RestrictToLabels(const Tree& tree,
                              const std::vector<LabelId>& keep) {
  if (tree.empty()) return Status::InvalidArgument("empty tree");
  const std::unordered_set<LabelId> kept(keep.begin(), keep.end());

  std::vector<Proto> arena;
  // proto_of[v] = arena index of v's surviving image, or -1.
  std::vector<int> proto_of(tree.size(), -1);
  for (NodeId v = tree.size() - 1; v >= 0; --v) {  // postorder
    if (tree.is_leaf(v)) {
      if (!tree.has_label(v) || !kept.contains(tree.label(v))) continue;
      arena.push_back(
          Proto{tree.label(v), tree.branch_length(v), {}});
      proto_of[v] = static_cast<int>(arena.size()) - 1;
      continue;
    }
    std::vector<int> kids;
    for (NodeId c : tree.children(v)) {
      if (proto_of[c] >= 0) kids.push_back(proto_of[c]);
    }
    if (kids.empty()) continue;
    if (kids.size() == 1) {
      // Unary suppression: the surviving child absorbs this edge.
      arena[kids[0]].branch_length += tree.branch_length(v);
      proto_of[v] = kids[0];
      continue;
    }
    arena.push_back(
        Proto{tree.label(v), tree.branch_length(v), std::move(kids)});
    proto_of[v] = static_cast<int>(arena.size()) - 1;
  }

  const int root_proto = proto_of[tree.root()];
  if (root_proto < 0) {
    return Status::NotFound("no leaf of the tree carries a kept label");
  }

  TreeBuilder b(tree.labels_ptr());
  struct Frame {
    int proto;
    NodeId parent;
  };
  std::vector<Frame> stack = {{root_proto, kNoNode}};
  while (!stack.empty()) {
    auto [p, parent] = stack.back();
    stack.pop_back();
    const Proto& proto = arena[p];
    NodeId v = parent == kNoNode
                   ? b.AddRoot()
                   : b.AddChildWithLabelId(parent, proto.label,
                                           proto.branch_length);
    if (parent == kNoNode && proto.label != kNoLabel) {
      b.SetLabel(v, tree.labels().Name(proto.label));
    }
    for (int kid : proto.kids) stack.push_back({kid, v});
  }
  return std::move(b).Build();
}

}  // namespace cousins
