// Ingestion limits for the Newick and NEXUS parsers.
//
// The parsers accept untrusted input (a production service mines
// user-supplied phylogenies), so every dimension an attacker controls
// is capped: total input size, node count, nesting depth (the
// recursive-descent parser spends one stack frame per level), and
// label length. A tripped limit comes back as a clean
// kResourceExhausted Status with the usual line/column position —
// never a crash, stack overflow, or unbounded allocation.

#ifndef COUSINS_TREE_PARSE_LIMITS_H_
#define COUSINS_TREE_PARSE_LIMITS_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace cousins {

struct ParseLimits {
  /// Default-constructed limits are generous production caps: far above
  /// any real phylogeny (TreeBASE's largest exports are a few MB), far
  /// below anything that could exhaust memory or stack.
  /// Maximum bytes of raw input text.
  size_t max_input_bytes = 256u << 20;  // 256 MiB
  /// Maximum nodes per tree.
  int32_t max_nodes = 16'777'216;
  /// Maximum nesting depth. The recursive parser uses one (small) stack
  /// frame per level; 24000 stays comfortably inside an 8 MiB thread
  /// stack while admitting the 20k-deep chains robustness_test pins.
  int32_t max_depth = 24'000;
  /// Maximum bytes of a single (quoted or unquoted) label.
  size_t max_label_bytes = 1u << 16;  // 64 KiB

  /// No limits — the pre-governance behaviour, for trusted input.
  static ParseLimits Unlimited() {
    ParseLimits limits;
    limits.max_input_bytes = std::numeric_limits<size_t>::max();
    limits.max_nodes = std::numeric_limits<int32_t>::max();
    limits.max_depth = std::numeric_limits<int32_t>::max();
    limits.max_label_bytes = std::numeric_limits<size_t>::max();
    return limits;
  }

  friend bool operator==(const ParseLimits&, const ParseLimits&) = default;
};

}  // namespace cousins

#endif  // COUSINS_TREE_PARSE_LIMITS_H_
