// Label interning. The paper's trees carry string labels from a large
// alphabet (TreeBASE: 18,870 distinct taxa); interning makes cousin-pair
// keys integer pairs, so hashing and comparison are O(1) regardless of
// label length.
//
// The index uses heterogeneous (transparent) lookup: Intern and Find
// hash the caller's string_view directly, so the parse/generate hot
// path never allocates a temporary std::string just to probe the map —
// only genuinely new labels pay an allocation.

#ifndef COUSINS_TREE_LABEL_TABLE_H_
#define COUSINS_TREE_LABEL_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace cousins {

/// Dense integer id of an interned label. Valid ids are >= 0.
using LabelId = int32_t;

/// Sentinel for "this node has no label" (internal phylogeny nodes).
inline constexpr LabelId kNoLabel = -1;

/// Bidirectional string<->LabelId map. A single LabelTable is shared by
/// all trees in a forest so label ids are comparable across trees.
class LabelTable {
 public:
  /// Returns the id of `name`, interning it if new.
  LabelId Intern(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    auto id = static_cast<LabelId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of `name`, or kNoLabel if it was never interned.
  LabelId Find(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kNoLabel : it->second;
  }

  /// The string for a valid label id.
  const std::string& Name(LabelId id) const {
    COUSINS_CHECK(id >= 0 && static_cast<size_t>(id) < names_.size());
    return names_[id];
  }

  size_t size() const { return names_.size(); }

  /// Pre-allocates for `labels` distinct names (e.g. a known corpus
  /// alphabet) so bulk interning does not rehash the index.
  void Reserve(size_t labels) {
    names_.reserve(labels);
    index_.reserve(labels);
  }

 private:
  /// Transparent string hasher: lets unordered_map::find accept a
  /// string_view without materializing a std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  /// Keys are owning std::strings; string_view is only the probe type
  /// (transparent hash + std::equal_to<>, C++20 heterogeneous lookup).
  std::unordered_map<std::string, LabelId, StringHash, std::equal_to<>>
      index_;
};

}  // namespace cousins

#endif  // COUSINS_TREE_LABEL_TABLE_H_
