// Tiny CSV emitter used by the benchmark harnesses so every figure's
// series can be re-plotted directly from bench output.

#ifndef COUSINS_UTIL_CSV_H_
#define COUSINS_UTIL_CSV_H_

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace cousins {

/// Writes rows as comma-separated values to a FILE* (stdout by default).
/// Values containing commas/quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::FILE* out = stdout) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(std::initializer_list<std::string> fields) {
    WriteRow(std::vector<std::string>(fields));
  }

  /// Writes a "# ..." comment line (ignored by CSV readers configured
  /// with comment='#'; used for paper-comparison annotations).
  void WriteComment(const std::string& text);

 private:
  static std::string Escape(const std::string& field);

  std::FILE* out_;
};

}  // namespace cousins

#endif  // COUSINS_UTIL_CSV_H_
