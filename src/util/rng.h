// Deterministic pseudo-random number generation.
//
// All randomized components in this library take an explicit Rng& so that
// tests, examples, and benchmarks are reproducible. The engine is
// xoshiro256**, seeded via splitmix64 (the reference seeding procedure).

#ifndef COUSINS_UTIL_RNG_H_
#define COUSINS_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace cousins {

/// xoshiro256** 1.0 (Blackman & Vigna), deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the full 256-bit state from a 64-bit seed via splitmix64.
  void Seed(uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform over all 64-bit values.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's unbiased
  /// rejection method.
  uint64_t Uniform(uint64_t bound) {
    COUSINS_CHECK(bound > 0);
    // Fast path that is exact for bounds far below 2^64.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    COUSINS_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace cousins

#endif  // COUSINS_UTIL_RNG_H_
