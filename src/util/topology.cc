#include "util/topology.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace cousins {

namespace {

/// Backstop against a runaway _SC_NPROCESSORS_CONF; far above any real
/// box this code targets.
constexpr int kMaxCpus = 4096;

std::vector<int32_t> ReadPackageIds() {
  std::vector<int32_t> ids;
#if defined(__linux__)
  long configured = sysconf(_SC_NPROCESSORS_CONF);
  if (configured < 1) configured = 1;
  if (configured > kMaxCpus) configured = kMaxCpus;
  ids.reserve(static_cast<size_t>(configured));
  for (long cpu = 0; cpu < configured; ++cpu) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu%ld/topology/"
                  "physical_package_id",
                  cpu);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) break;  // offline/sparse cpu range: stop cleanly
    int package = 0;
    const bool ok = std::fscanf(f, "%d", &package) == 1;
    std::fclose(f);
    if (!ok) break;
    ids.push_back(package);
  }
#endif
  return ids;
}

}  // namespace

CpuTopology TopologyFromPackageIds(
    const std::vector<int32_t>& package_ids) {
  CpuTopology topology;
  // Dense re-index in first-seen (CPU id) order, so socket numbering is
  // stable regardless of what ids the firmware picked.
  std::vector<int32_t> seen;
  topology.cpu_socket.reserve(package_ids.size());
  for (int32_t package : package_ids) {
    int32_t dense = -1;
    for (size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] == package) {
        dense = static_cast<int32_t>(i);
        break;
      }
    }
    if (dense < 0) {
      dense = static_cast<int32_t>(seen.size());
      seen.push_back(package);
    }
    topology.cpu_socket.push_back(dense);
  }
  if (!seen.empty()) topology.sockets = static_cast<int32_t>(seen.size());
  return topology;
}

const CpuTopology& CpuTopology::Detect() {
  static const CpuTopology cached = TopologyFromPackageIds(ReadPackageIds());
  return cached;
}

int32_t SocketForWorker(const CpuTopology& topology, int32_t worker,
                        int32_t workers) {
  if (topology.sockets <= 1 || workers <= 0) return 0;
  if (worker < 0) return 0;
  if (worker >= workers) worker = workers - 1;
  return static_cast<int32_t>(static_cast<int64_t>(worker) *
                              topology.sockets / workers);
}

}  // namespace cousins
