// Transparent-hugepage hints for large flat arrays.
//
// The forest-wide tally tables and the per-distance accumulators are
// tens-of-MB open-addressing arrays probed at random slots, so on
// 4 KiB pages the probe stream is also a dTLB-miss stream. Backing the
// arrays with transparent huge pages (madvise(MADV_HUGEPAGE)) removes
// most of those misses without changing a single byte of table
// content. The hint is best-effort and policy-gated: the COUSINS_THP
// environment variable (auto|on|off, default auto) or an explicit
// SetHugePagePolicy() call decides whether ranges get advised at all,
// and small ranges are never advised — a table below the threshold
// cannot span enough huge pages to matter.
//
// This layer has zero observability dependencies by design: it returns
// the number of bytes advised and callers record mem.thp_bytes.

#ifndef COUSINS_UTIL_HUGEPAGE_H_
#define COUSINS_UTIL_HUGEPAGE_H_

#include <cstddef>
#include <string>

namespace cousins {

/// kAuto advises ranges of at least 4 MiB; kOn lowers the threshold to
/// one huge page (2 MiB); kOff never advises.
enum class HugePagePolicy { kAuto, kOn, kOff };

/// "auto" / "on" / "off".
const char* HugePagePolicyName(HugePagePolicy policy);

/// Parses a policy name; returns false (out untouched) on anything
/// else.
bool ParseHugePagePolicy(const std::string& name, HugePagePolicy* out);

/// Process-wide policy override; wins over COUSINS_THP. Takes effect
/// on the next AdviseHugePages call.
void SetHugePagePolicy(HugePagePolicy policy);

/// The policy in force: override > COUSINS_THP env > auto.
HugePagePolicy ActiveHugePagePolicy();

/// Advises the kernel to back [ptr, ptr+bytes) with transparent huge
/// pages, rounding inward to page boundaries. No-op (returns 0) when
/// the policy is off, the range is below the policy's threshold, the
/// platform has no madvise(MADV_HUGEPAGE), or the kernel rejects the
/// hint. Returns the number of bytes actually advised.
size_t AdviseHugePages(const void* ptr, size_t bytes);

}  // namespace cousins

#endif  // COUSINS_UTIL_HUGEPAGE_H_
