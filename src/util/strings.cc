#include "util/strings.h"

#include <cctype>

namespace cousins {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatHalfDistance(int twice_distance) {
  std::string out = std::to_string(twice_distance / 2);
  if (twice_distance % 2 != 0) out += ".5";
  return out;
}

}  // namespace cousins
