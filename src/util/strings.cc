#include "util/strings.h"

#include <cctype>

namespace cousins {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatHalfDistance(int twice_distance) {
  std::string out = std::to_string(twice_distance / 2);
  if (twice_distance % 2 != 0) out += ".5";
  return out;
}

std::string TruncateForDisplay(std::string_view s, size_t max_bytes) {
  if (s.size() <= max_bytes) return std::string(s);
  return std::string(s.substr(0, max_bytes)) + "...";
}

std::string_view StripUtf8Bom(std::string_view s) {
  if (s.size() >= 3 && static_cast<unsigned char>(s[0]) == 0xEF &&
      static_cast<unsigned char>(s[1]) == 0xBB &&
      static_cast<unsigned char>(s[2]) == 0xBF) {
    return s.substr(3);
  }
  return s;
}

TextPosition LineColumnAt(std::string_view text, size_t offset) {
  if (offset > text.size()) offset = text.size();
  TextPosition pos;
  size_t i = 0;
  while (i < offset) {
    char c = text[i];
    if (c == '\r') {
      // "\r\n" is one break; never let the '\n' of a CRLF pair count
      // again, even when `offset` lands between the two bytes.
      if (i + 1 < text.size() && text[i + 1] == '\n' && i + 1 < offset) {
        ++i;
      }
      ++pos.line;
      pos.column = 1;
    } else if (c == '\n') {
      ++pos.line;
      pos.column = 1;
    } else {
      ++pos.column;
    }
    ++i;
  }
  return pos;
}

}  // namespace cousins
