// Dynamic fixed-width bitset used for taxon clusters (bipartitions).

#ifndef COUSINS_UTIL_BITSET_H_
#define COUSINS_UTIL_BITSET_H_

#include <bit>
#include <compare>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace cousins {

/// Fixed-width bitset whose width is chosen at construction. Supports
/// the set algebra consensus methods need: subset/disjointness tests,
/// intersection, popcount, ordering (for canonical output), hashing.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(int32_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  int32_t size() const { return bits_; }

  void Set(int32_t i) {
    COUSINS_DCHECK(i >= 0 && i < bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Reset(int32_t i) {
    COUSINS_DCHECK(i >= 0 && i < bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(int32_t i) const {
    COUSINS_DCHECK(i >= 0 && i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  int32_t Count() const {
    int32_t c = 0;
    for (uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// True if every set bit of *this is set in other.
  bool IsSubsetOf(const Bitset& other) const {
    COUSINS_DCHECK(bits_ == other.bits_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
  }

  bool Intersects(const Bitset& other) const {
    COUSINS_DCHECK(bits_ == other.bits_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  Bitset& operator|=(const Bitset& other) {
    COUSINS_DCHECK(bits_ == other.bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  Bitset& operator&=(const Bitset& other) {
    COUSINS_DCHECK(bits_ == other.bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  friend bool operator==(const Bitset&, const Bitset&) = default;

  /// Lexicographic on (width, words); a stable canonical order.
  friend std::strong_ordering operator<=>(const Bitset& a, const Bitset& b) {
    if (auto c = a.bits_ <=> b.bits_; c != 0) return c;
    for (size_t i = 0; i < a.words_.size(); ++i) {
      if (auto c = a.words_[i] <=> b.words_[i]; c != 0) return c;
    }
    return std::strong_ordering::equal;
  }

  size_t Hash() const {
    uint64_t h = 0x9E3779B97F4A7C15ULL + static_cast<uint32_t>(bits_);
    for (uint64_t w : words_) {
      h ^= w + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }

  /// Indices of all set bits, ascending.
  std::vector<int32_t> Ones() const {
    std::vector<int32_t> out;
    for (int32_t w = 0; w < static_cast<int32_t>(words_.size()); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        out.push_back(w * 64 + bit);
        word &= word - 1;
      }
    }
    return out;
  }

 private:
  int32_t bits_ = 0;
  std::vector<uint64_t> words_;
};

struct BitsetHash {
  size_t operator()(const Bitset& b) const { return b.Hash(); }
};

/// Two clusters are compatible iff they are disjoint or nested — the
/// condition for coexisting in one rooted tree.
inline bool ClustersCompatible(const Bitset& a, const Bitset& b) {
  return !a.Intersects(b) || a.IsSubsetOf(b) || b.IsSubsetOf(a);
}

}  // namespace cousins

#endif  // COUSINS_UTIL_BITSET_H_
