#include "util/csv.h"

namespace cousins {

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) std::fputc(',', out_);
    std::string escaped = Escape(fields[i]);
    std::fwrite(escaped.data(), 1, escaped.size(), out_);
  }
  std::fputc('\n', out_);
  std::fflush(out_);
}

void CsvWriter::WriteComment(const std::string& text) {
  std::fprintf(out_, "# %s\n", text.c_str());
  std::fflush(out_);
}

}  // namespace cousins
