#include "util/retry.h"

#include <atomic>
#include <string>
#include <thread>

#include "util/fault_injection.h"
#include "util/rng.h"

namespace cousins {
namespace {

std::atomic<retry::RetryObserver> g_retry_observer{nullptr};
std::atomic<retry::SleepFn> g_sleep_fn{nullptr};

}  // namespace

namespace retry {

void SetRetryObserver(RetryObserver observer) {
  g_retry_observer.store(observer, std::memory_order_release);
}

void SetSleepFn(SleepFn sleep_fn) {
  g_sleep_fn.store(sleep_fn, std::memory_order_release);
}

}  // namespace retry

Status RetryTransient(const RetryPolicy& policy, const char* op,
                      const std::function<Status()>& fn) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Rng jitter(policy.jitter_seed);
  std::chrono::duration<double, std::milli> delay = policy.initial_delay;
  for (int attempt = 1;; ++attempt) {
    Status st;
    if (fault::Fired("retry.transient")) {
      st = Status::Unavailable(
          std::string("injected fault at retry.transient during ") + op);
    } else {
      st = fn();
    }
    if (st.ok() || !st.IsTransient()) return st;
    const bool will_retry = attempt < attempts;
    if (auto* observer =
            g_retry_observer.load(std::memory_order_acquire)) {
      observer(op, static_cast<uint64_t>(attempt), will_retry);
    }
    if (!will_retry) return st;
    double scale = 1.0;
    if (policy.jitter_fraction > 0) {
      scale += policy.jitter_fraction * (2.0 * jitter.NextDouble() - 1.0);
    }
    const auto sleep_for = delay * scale;
    if (sleep_for.count() > 0) {
      if (auto* sleep_fn = g_sleep_fn.load(std::memory_order_acquire)) {
        sleep_fn(sleep_for);
      } else {
        std::this_thread::sleep_for(sleep_for);
      }
    }
    delay *= policy.backoff_multiplier;
    if (delay > std::chrono::duration<double, std::milli>(
                    policy.max_delay)) {
      delay = policy.max_delay;
    }
  }
}

}  // namespace cousins
