// Saturating integer arithmetic for support counting.
//
// Adversarial corpora can push occurrence tallies past what 64 bits
// hold (occurrences per tree are already O(|T|²), summed over millions
// of trees); rather than wrap around into negative "support", the
// tallies clamp at the numeric limits. Saturation only engages at the
// extremes, so inclusion–exclusion cancellation in the hot accumulator
// remains exact for every realistic count.

#ifndef COUSINS_UTIL_OVERFLOW_H_
#define COUSINS_UTIL_OVERFLOW_H_

#include <cstdint>
#include <limits>

namespace cousins {

/// a + b clamped to [INT64_MIN, INT64_MAX].
inline int64_t SaturatingAdd(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? std::numeric_limits<int64_t>::max()
                 : std::numeric_limits<int64_t>::min();
  }
  return out;
}

/// a + b clamped to [INT_MIN, INT_MAX] (tree-support counters are int).
inline int SaturatingAddInt(int a, int b) {
  int out;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? std::numeric_limits<int>::max()
                 : std::numeric_limits<int>::min();
  }
  return out;
}

/// a - b clamped to [INT64_MIN, INT64_MAX].
inline int64_t SaturatingSub(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_sub_overflow(a, b, &out)) {
    return b < 0 ? std::numeric_limits<int64_t>::max()
                 : std::numeric_limits<int64_t>::min();
  }
  return out;
}

/// a * b clamped to [INT64_MIN, INT64_MAX]. Level-product counting
/// (inclusion–exclusion over descendant multisets) multiplies two
/// per-level multiplicities; adversarial high-multiplicity trees must
/// clamp here instead of wrapping into signed-overflow UB.
inline int64_t SaturatingMul(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    const bool negative = (a < 0) != (b < 0);
    return negative ? std::numeric_limits<int64_t>::min()
                    : std::numeric_limits<int64_t>::max();
  }
  return out;
}

}  // namespace cousins

#endif  // COUSINS_UTIL_OVERFLOW_H_
