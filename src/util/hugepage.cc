#include "util/hugepage.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace cousins {

namespace {

/// THP granule on every supported x86-64/aarch64 Linux configuration.
constexpr size_t kHugePageBytes = size_t{2} << 20;
/// kAuto only bothers the kernel for ranges big enough to span several
/// huge pages.
constexpr size_t kAutoThresholdBytes = size_t{4} << 20;

/// -1 = no SetHugePagePolicy override yet; consult COUSINS_THP.
std::atomic<int> g_policy_override{-1};

HugePagePolicy EnvPolicy() {
  const char* value = std::getenv("COUSINS_THP");
  if (value == nullptr || value[0] == '\0') return HugePagePolicy::kAuto;
  HugePagePolicy policy;
  if (!ParseHugePagePolicy(value, &policy)) {
    std::fprintf(stderr,
                 "cousins: ignoring unrecognized COUSINS_THP=\"%s\" "
                 "(expected auto|on|off)\n",
                 value);
    return HugePagePolicy::kAuto;
  }
  return policy;
}

}  // namespace

const char* HugePagePolicyName(HugePagePolicy policy) {
  switch (policy) {
    case HugePagePolicy::kAuto:
      return "auto";
    case HugePagePolicy::kOn:
      return "on";
    case HugePagePolicy::kOff:
      return "off";
  }
  return "auto";
}

bool ParseHugePagePolicy(const std::string& name, HugePagePolicy* out) {
  if (name == "auto") {
    *out = HugePagePolicy::kAuto;
    return true;
  }
  if (name == "on") {
    *out = HugePagePolicy::kOn;
    return true;
  }
  if (name == "off") {
    *out = HugePagePolicy::kOff;
    return true;
  }
  return false;
}

void SetHugePagePolicy(HugePagePolicy policy) {
  g_policy_override.store(static_cast<int>(policy),
                          std::memory_order_release);
}

HugePagePolicy ActiveHugePagePolicy() {
  const int override_policy =
      g_policy_override.load(std::memory_order_acquire);
  if (override_policy >= 0) {
    return static_cast<HugePagePolicy>(override_policy);
  }
  static const HugePagePolicy env_policy = EnvPolicy();
  return env_policy;
}

size_t AdviseHugePages(const void* ptr, size_t bytes) {
  const HugePagePolicy policy = ActiveHugePagePolicy();
  if (policy == HugePagePolicy::kOff || ptr == nullptr) return 0;
  const size_t threshold =
      policy == HugePagePolicy::kOn ? kHugePageBytes : kAutoThresholdBytes;
  if (bytes < threshold) return 0;
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  const long page = sysconf(_SC_PAGESIZE);
  const uintptr_t page_mask = static_cast<uintptr_t>(page) - 1;
  const uintptr_t begin =
      (reinterpret_cast<uintptr_t>(ptr) + page_mask) & ~page_mask;
  const uintptr_t end =
      (reinterpret_cast<uintptr_t>(ptr) + bytes) & ~page_mask;
  if (end <= begin) return 0;
  const size_t aligned = end - begin;
  if (madvise(reinterpret_cast<void*>(begin), aligned, MADV_HUGEPAGE) != 0) {
    return 0;
  }
  return aligned;
#else
  return 0;
#endif
}

}  // namespace cousins
