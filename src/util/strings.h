// Small string helpers shared by parsers and report writers.

#ifndef COUSINS_UTIL_STRINGS_H_
#define COUSINS_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cousins {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a half-integer cousin distance (stored as 2*d) as "0", "0.5",
/// "1", "1.5", ... — the notation used throughout the paper.
std::string FormatHalfDistance(int twice_distance);

}  // namespace cousins

#endif  // COUSINS_UTIL_STRINGS_H_
