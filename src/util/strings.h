// Small string helpers shared by parsers and report writers.

#ifndef COUSINS_UTIL_STRINGS_H_
#define COUSINS_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cousins {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a half-integer cousin distance (stored as 2*d) as "0", "0.5",
/// "1", "1.5", ... — the notation used throughout the paper.
std::string FormatHalfDistance(int twice_distance);

/// Truncates `s` to at most `max_bytes` bytes for display, appending
/// "..." when anything was dropped.
std::string TruncateForDisplay(std::string_view s, size_t max_bytes);

/// Removes a leading UTF-8 byte-order mark (EF BB BF) if present.
/// Windows editors prepend one; it is never meaningful in Newick/NEXUS.
std::string_view StripUtf8Bom(std::string_view s);

/// A 1-based line/column position inside a text buffer.
struct TextPosition {
  size_t line = 1;
  size_t column = 1;
};

/// Computes the 1-based line/column of byte `offset` in `text`, treating
/// "\r\n" as a single line break and lone '\r' or '\n' as a break each.
/// Offsets past the end clamp to the position one past the last byte.
TextPosition LineColumnAt(std::string_view text, size_t offset);

}  // namespace cousins

#endif  // COUSINS_UTIL_STRINGS_H_
