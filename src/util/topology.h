// CPU socket topology for the NUMA-aware work-stealing scheduler.
//
// Stealing across sockets drags a half-deque of chunk state plus the
// victim's warm tally lines over the interconnect, so the scheduler
// prefers same-socket victims and only then walks the remote ones
// (parallel_mining.cc). All it needs from the platform is "which
// socket does each worker land on" — derived here from sysfs
// (/sys/devices/system/cpu/cpu*/topology/physical_package_id), with a
// graceful single-socket fallback when sysfs is absent (non-Linux,
// sandboxes). On a single-socket machine every worker maps to socket 0
// and the scheduler behaves exactly as before this layer existed.
//
// Detection is cached per process; worker->socket assignment is a pure
// deterministic function so scheduler runs stay reproducible.

#ifndef COUSINS_UTIL_TOPOLOGY_H_
#define COUSINS_UTIL_TOPOLOGY_H_

#include <cstdint>
#include <vector>

namespace cousins {

struct CpuTopology {
  /// Dense socket index (0..sockets-1) per logical CPU id; empty when
  /// detection found nothing (treat as one socket).
  std::vector<int32_t> cpu_socket;
  /// Number of distinct sockets; at least 1.
  int32_t sockets = 1;

  /// The machine's topology, detected once per process and cached.
  static const CpuTopology& Detect();
};

/// Builds a topology from raw physical package ids (one per CPU, any
/// id values) — the deterministic core of Detect(), exposed so tests
/// can exercise multi-socket layouts on single-socket machines.
CpuTopology TopologyFromPackageIds(const std::vector<int32_t>& package_ids);

/// Deterministic worker -> socket assignment: workers are split into
/// contiguous blocks, one block per socket (block sizes differ by at
/// most one). Returns 0 whenever the topology has a single socket.
int32_t SocketForWorker(const CpuTopology& topology, int32_t worker,
                        int32_t workers);

}  // namespace cousins

#endif  // COUSINS_UTIL_TOPOLOGY_H_
