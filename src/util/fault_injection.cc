#include "util/fault_injection.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace cousins::fault {
namespace {

std::atomic<FaultRegistry::TriggerObserver> g_observer{nullptr};

/// splitmix64: the registry's only randomness source, so a seeded
/// random sweep replays identically run to run.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashName(std::string_view name) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  }
  return h;
}

/// Strict uint64 parse of a whole field.
bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (~uint64_t{0} - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry();
    if (const char* spec = std::getenv("COUSINS_FAULT_SPEC");
        spec != nullptr && spec[0] != '\0') {
      Status st = r->ArmFromSpec(spec);
      if (!st.ok()) {
        // A fault drill with a typo'd spec must not silently run
        // fault-free — that would report "all failure paths pass"
        // without testing any.
        std::fprintf(stderr, "fatal: COUSINS_FAULT_SPEC: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
    }
    return r;
  }();
  return *registry;
}

FaultRegistry::FaultRegistry() = default;

void FaultRegistry::Arm(std::string_view site, uint64_t fail_at_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[std::string(site)];
  s.fail_at = fail_at_hit;
  s.hits = 0;
}

void FaultRegistry::ArmRandom(uint64_t seed, uint64_t denominator) {
  std::lock_guard<std::mutex> lock(mu_);
  random_armed_ = denominator > 0;
  random_seed_ = seed;
  random_denominator_ = denominator;
}

Status FaultRegistry::ArmFromSpec(std::string_view spec) {
  for (std::string_view term : Split(spec, ',')) {
    term = StripWhitespace(term);
    if (term.empty()) continue;
    std::vector<std::string_view> parts = Split(term, ':');
    if (parts.size() == 3 && parts[0] == "random") {
      uint64_t seed = 0;
      uint64_t denom = 0;
      if (!ParseU64(parts[1], &seed) || !ParseU64(parts[2], &denom) ||
          denom == 0) {
        return Status::InvalidArgument(
            "bad random fault spec '" + std::string(term) +
            "' (want random:<seed>:<denominator>)");
      }
      ArmRandom(seed, denom);
      continue;
    }
    // "random" is a reserved mode keyword, never a site name: a
    // malformed random term must not silently arm a site called
    // "random" that nothing will ever hit.
    if (parts.size() != 2 || parts[0] == "random") {
      return Status::InvalidArgument(
          "bad fault spec term '" + std::string(term) +
          "' (want <site>:<k> or random:<seed>:<denominator>)");
    }
    uint64_t fail_at = 0;
    if (!ParseU64(parts[1], &fail_at) || fail_at == 0) {
      return Status::InvalidArgument("bad fault hit count in '" +
                                     std::string(term) + "' (want k >= 1)");
    }
    Arm(parts[0], fail_at);
  }
  return Status::OK();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site.fail_at = 0;
  random_armed_ = false;
}

std::vector<std::string> FaultRegistry::SiteNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  return names;  // std::map iterates sorted
}

uint64_t FaultRegistry::Hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::Triggers(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggers;
}

uint64_t FaultRegistry::TotalTriggers() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, site] : sites_) total += site.triggers;
  return total;
}

void FaultRegistry::SetTriggerObserver(TriggerObserver observer) {
  g_observer.store(observer, std::memory_order_relaxed);
}

bool FaultRegistry::Hit(const char* site) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Site& s = sites_[site];
    ++s.hits;
    if (s.fail_at != 0 && s.hits == s.fail_at) {
      s.fail_at = 0;  // exactly one fault per arming
      fire = true;
    } else if (random_armed_) {
      fire = Mix64(random_seed_ ^ HashName(site) ^ s.hits) %
                 random_denominator_ ==
             0;
    }
    if (fire) ++s.triggers;
  }
  if (fire) {
    if (TriggerObserver observer =
            g_observer.load(std::memory_order_relaxed)) {
      observer(site);
    }
  }
  return fire;
}

void InjectionPoint(const char* site) {
  if (FaultRegistry::Global().Hit(site)) {
    throw FaultInjectedError(std::string("injected fault at ") + site);
  }
}

bool Fired(const char* site) { return FaultRegistry::Global().Hit(site); }

}  // namespace cousins::fault
