// Errno-typed file-operation shim: every durable write path (service
// WAL segments, the WAL manifest and snapshots, the shard-lease
// ledger, checkpoints, bench reports) routes its open/write/fsync/
// rename/unlink syscalls through these wrappers, so one deterministic
// seam can fire the disk faults a long-lived daemon will eventually
// see — ENOSPC, EIO, a short write, a failed fsync, or a torn write
// (crash after k bytes) — instead of the scattered boolean "the write
// failed" points the fault registry grew up with.
//
// Each operation taking a `site` consults a family of fault sub-sites
// derived from it (util/fault_injection.h; sites self-register on
// first consult, so a discovery run enumerates the whole family for
// the errno sweep):
//
//   <site>          legacy boolean: fail before the syscall, err = 0
//   <site>.enospc   fail before any byte lands, err = ENOSPC
//   <site>.eio      fail before any byte lands, err = EIO
//
// and WriteAll additionally:
//
//   <site>.short    roughly half the buffer lands, then EIO — the
//                   classic short write a full disk produces
//   <site>.torn     roughly a third lands, then EIO — models a crash
//                   after k bytes; the fd now holds torn bytes
//
// while Fsync consults <site>, <site>.eio and <site>.enospc. Every
// failure reports the errno class it fired (0 for the legacy boolean
// form), so callers can tell "nothing happened" (safe to retry in
// place) from "bytes may have landed" (the fd is poisoned: fsyncgate
// taught that a failed fsync may have dropped dirty pages, so
// retry-fsync-then-ack is never sound).

#ifndef COUSINS_UTIL_FS_OPS_H_
#define COUSINS_UTIL_FS_OPS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace cousins::fs {

/// Symbolic name of an errno class ("ENOSPC", "EIO", ...), falling
/// back to "errno=<n>"; "OK" for 0. Error messages built by this shim
/// always embed it, so tests can assert errno-exact failures.
std::string ErrnoName(int err);

/// Outcome of a write-side operation. `err` is the errno class of the
/// failure (0 for a legacy boolean fault); `maybe_partial` is true
/// when bytes may have reached the file before the failure — the
/// caller must treat the fd as holding torn bytes.
struct IoOutcome {
  Status status;
  int err = 0;
  bool maybe_partial = false;

  bool ok() const { return status.ok(); }
};

/// Opens `path` O_WRONLY|O_CREAT|O_APPEND (O_TRUNC when `truncate`).
/// `*created` (optional) reports whether the file was newly created —
/// callers owning a durability contract must FsyncDirOf after a
/// create, or a crash can lose the file itself. Fault family: <site>,
/// .enospc, .eio. `*err` (optional) receives the errno class.
Result<int> OpenAppend(const char* site, const std::string& path,
                       bool truncate = false, bool* created = nullptr,
                       int* err = nullptr);

/// Opens `path` O_WRONLY|O_CREAT|O_TRUNC (a from-scratch rewrite, the
/// tmp side of an atomic replace). Same fault family as OpenAppend.
Result<int> OpenTrunc(const char* site, const std::string& path,
                      int* err = nullptr);

/// Writes all of `bytes` to `fd` (EINTR-retrying). Fault family:
/// <site>, .enospc, .eio (pre-write), .short, .torn (partial).
IoOutcome WriteAll(const char* site, int fd, std::string_view bytes);

/// fsync(2). Fault family: <site>, .eio, .enospc. Any failure reports
/// maybe_partial: after a failed fsync the kernel may have discarded
/// the dirty pages, so the fd's durable contents are indeterminate.
IoOutcome Fsync(const char* site, int fd);

/// rename(2). The fault fires BEFORE the syscall runs: once rename
/// executes the destination is already replaced, and a "failed"
/// replace that still clobbered the target would break the atomic-
/// replace contract the sweeps drill. Fault family: <site>, .enospc,
/// .eio.
Status Rename(const char* site, const std::string& from,
              const std::string& to, int* err = nullptr);

/// unlink(2); kNotFound when the path does not exist. Fault family:
/// <site>, .eio.
Status Unlink(const char* site, const std::string& path,
              int* err = nullptr);

/// truncate(2) to `size`. Fault family: <site>, .eio.
Status Truncate(const char* site, const std::string& path, int64_t size,
                int* err = nullptr);

/// Opens the directory containing `path` and fsyncs it — the step that
/// makes a create or rename durable (the directory entry lives in the
/// directory's own data). Fault family: <site>, .eio, .enospc.
Status FsyncDirOf(const char* site, const std::string& path,
                  int* err = nullptr);

}  // namespace cousins::fs

#endif  // COUSINS_UTIL_FS_OPS_H_
