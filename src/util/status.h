// Status: lightweight error propagation in the style of RocksDB/Abseil.
//
// Library entry points that can fail on user input (parsers, builders,
// consensus over incompatible inputs) return Status or Result<T>; the hot
// mining paths never allocate a Status on success.

#ifndef COUSINS_UTIL_STATUS_H_
#define COUSINS_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace cousins {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  kInternal,
  // Resource-governance outcomes (see util/governance.h). These three
  // mark a computation that was stopped cooperatively — callers may
  // still hold a partial, truncated-flagged result.
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  // A transient environmental failure (disk hiccup, short write,
  // unreadable file that exists): retrying the same operation may
  // succeed. The retry layer (util/retry.h) only ever retries this
  // code; parse errors, corruption and logic errors are permanent.
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True when the failure is worth retrying (see util/retry.h): the
  /// operation hit a transient environmental condition rather than a
  /// permanent defect in its input or logic.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace cousins

/// Propagates a non-OK Status to the caller.
#define COUSINS_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::cousins::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // COUSINS_UTIL_STATUS_H_
