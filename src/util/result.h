// Result<T>: value-or-Status, in the style of absl::StatusOr.

#ifndef COUSINS_UTIL_RESULT_H_
#define COUSINS_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace cousins {

/// Holds either a T or a non-OK Status. Accessing value() on an error
/// result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversions so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace cousins

#define COUSINS_MACRO_CONCAT_INNER(a, b) a##b
#define COUSINS_MACRO_CONCAT(a, b) COUSINS_MACRO_CONCAT_INNER(a, b)

#define COUSINS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds
/// the value to `lhs`.
#define COUSINS_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  COUSINS_ASSIGN_OR_RETURN_IMPL(                                           \
      COUSINS_MACRO_CONCAT(_cousins_result_tmp_, __LINE__), lhs, rexpr)

#endif  // COUSINS_UTIL_RESULT_H_
