// Resource governance: deadlines, cooperative cancellation, and work /
// memory budgets for the mining stack.
//
// Worst-case blowups are intrinsic to unordered-tree problems (the
// general unordered variants are NP-hard), so a long-running service
// cannot trust its inputs to finish in bounded time or memory. A
// MiningContext carries the caller's limits — a monotonic deadline, a
// CancellationToken, and a ResourceBudget — and the miners check it
// cooperatively at coarse granularity (per source node / per tree, not
// per pair), so the governed hot path stays within noise of the
// ungoverned one and produces bit-identical results when no limit
// trips.
//
// Outcomes reuse the Status vocabulary: kCancelled, kDeadlineExceeded
// and kResourceExhausted are *trips* — the computation stopped early
// but the caller still receives a partial, truncated-flagged tally.
// Anything else non-OK is a hard failure with no usable result.
//
// This layer deliberately has no dependency on obs/: trip *detection*
// lives here, trip *recording* (governance.* counters) happens at the
// entry points that convert a trip into a truncated outcome, via
// obs/governance_events.h.

#ifndef COUSINS_UTIL_GOVERNANCE_H_
#define COUSINS_UTIL_GOVERNANCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace cousins {

/// Cooperative cancellation flag, cheaply copyable; all copies share
/// one flag. A default-constructed token is inert (never cancels), so
/// an ungoverned MiningContext costs nothing to check.
class CancellationToken {
 public:
  /// Inert token: cancelled() is always false, Cancel() is a no-op.
  CancellationToken() = default;

  /// A fresh, live token.
  static CancellationToken Create() {
    CancellationToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// A token that is cancelled when either itself or `parent` (or any
  /// of parent's ancestors) is cancelled. The parallel driver hands
  /// each worker a child of the caller's token so it can stop sibling
  /// shards on a fault without cancelling the caller's token.
  static CancellationToken ChildOf(const CancellationToken& parent) {
    CancellationToken t = Create();
    t.uplinks_ = parent.uplinks_;
    if (parent.flag_ != nullptr) t.uplinks_.push_back(parent.flag_);
    return t;
  }

  /// Requests cancellation. No-op on an inert token; never cancels a
  /// parent.
  void Cancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
      return true;
    }
    for (const auto& up : uplinks_) {
      if (up->load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  /// True when Cancel() can have an effect (token is not inert).
  bool cancellable() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
  std::vector<std::shared_ptr<std::atomic<bool>>> uplinks_;
};

/// Work / memory budgets, all "unlimited" by default. Budgets are
/// enforced approximately and at coarse checkpoints; a trip may happen
/// slightly past the limit, never far past it.
struct ResourceBudget {
  static constexpr int64_t kUnlimited =
      std::numeric_limits<int64_t>::max();

  /// Maximum live entries across a single-tree miner's pair-count
  /// accumulators (bounds the O(|T|²) per-tree working set).
  int64_t max_pair_map_entries = kUnlimited;
  /// Approximate cap on accumulator bytes in a single-tree mining run.
  int64_t max_bytes = kUnlimited;
  /// Maximum mined items (single-tree) or support tallies (multi-tree).
  /// In the sharded parallel miner this is enforced per shard.
  int64_t max_items = kUnlimited;

  bool unlimited() const {
    return max_pair_map_entries == kUnlimited && max_bytes == kUnlimited &&
           max_items == kUnlimited;
  }

  friend bool operator==(const ResourceBudget&,
                         const ResourceBudget&) = default;
};

/// The limits one mining request runs under. Cheap to copy; pass by
/// const reference down the stack. A default-constructed context is
/// ungoverned: Check()/CheckWork() short-circuit on a single bool.
class MiningContext {
 public:
  using Clock = std::chrono::steady_clock;

  MiningContext() = default;

  /// Shared ungoverned context for legacy entry points.
  static const MiningContext& Unlimited();

  MiningContext& set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
    governed_ = true;
    return *this;
  }
  /// Deadline `timeout` from now. A zero or negative timeout is already
  /// expired: the first checkpoint trips.
  MiningContext& set_timeout(std::chrono::nanoseconds timeout) {
    return set_deadline(Clock::now() + timeout);
  }
  MiningContext& set_cancellation(CancellationToken token) {
    cancel_ = std::move(token);
    governed_ = true;
    return *this;
  }
  MiningContext& set_budget(const ResourceBudget& budget) {
    budget_ = budget;
    if (!budget.unlimited()) governed_ = true;
    return *this;
  }

  bool governed() const { return governed_; }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  const CancellationToken& cancellation() const { return cancel_; }
  const ResourceBudget& budget() const { return budget_; }

  /// Derived context for a worker thread: same deadline and budget,
  /// cancellation replaced by `token` (typically a ChildOf the caller's
  /// token, so the driver can stop siblings without the caller).
  MiningContext WithCancellation(CancellationToken token) const {
    MiningContext ctx = *this;
    ctx.cancel_ = std::move(token);
    ctx.governed_ = true;
    return ctx;
  }

  /// Cancellation + deadline check. Call at coarse checkpoints (per
  /// source node batch / per tree). OK means keep going.
  Status Check() const {
    if (!governed_) return Status::OK();
    if (cancel_.cancelled()) {
      return Status::Cancelled("mining cancelled by caller");
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("mining deadline exceeded");
    }
    return Status::OK();
  }

  /// Budget check against the caller's current usage numbers. Pass only
  /// what is tracked; use 0 for dimensions the call site cannot see.
  Status CheckWork(int64_t pair_map_entries, int64_t bytes,
                   int64_t items) const {
    if (!governed_) return Status::OK();
    if (pair_map_entries > budget_.max_pair_map_entries) {
      return Status::ResourceExhausted(
          "pair-map entry budget exceeded (" +
          std::to_string(pair_map_entries) + " > " +
          std::to_string(budget_.max_pair_map_entries) + ")");
    }
    if (bytes > budget_.max_bytes) {
      return Status::ResourceExhausted(
          "memory budget exceeded (" + std::to_string(bytes) + " > " +
          std::to_string(budget_.max_bytes) + " bytes)");
    }
    if (items > budget_.max_items) {
      return Status::ResourceExhausted(
          "mined-item budget exceeded (" + std::to_string(items) + " > " +
          std::to_string(budget_.max_items) + ")");
    }
    return Status::OK();
  }

 private:
  CancellationToken cancel_;
  ResourceBudget budget_;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool governed_ = false;
};

/// True for the three cooperative-stop codes — the computation was cut
/// short but its partial result is well-formed. False for OK and for
/// hard failures.
inline bool IsGovernanceTrip(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace cousins

#endif  // COUSINS_UTIL_GOVERNANCE_H_
