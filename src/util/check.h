// Internal invariant checking. COUSINS_CHECK is active in all build
// types (invariant violations in a mining library are corruption-class
// bugs, not recoverable conditions); COUSINS_DCHECK compiles out in
// release builds.

#ifndef COUSINS_UTIL_CHECK_H_
#define COUSINS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define COUSINS_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define COUSINS_DCHECK(cond) COUSINS_CHECK(cond)
#else
#define COUSINS_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

#endif  // COUSINS_UTIL_CHECK_H_
