#include "util/governance.h"

namespace cousins {

const MiningContext& MiningContext::Unlimited() {
  static const MiningContext* kUnlimited = new MiningContext();
  return *kUnlimited;
}

}  // namespace cousins
