// Deterministic fault injection: a process-wide registry of named fault
// sites planted in failure-prone paths (allocation-heavy mining loops,
// parallel worker bodies, every file write), so tests can prove each
// failure path by firing exactly one fault at an exact point — "fail
// site S on its k-th hit" — and sweeping over every registered site.
//
// Two kinds of site, chosen by how hot the surrounding code is:
//
//  * COUSINS_FAULT_POINT(name) / COUSINS_FAULT_FIRED(name) — macros for
//    hot mining paths (accumulator growth, tally merges, parse loops).
//    Compiled out entirely unless the build sets COUSINS_FAULTS_ENABLED
//    (CMake option COUSINS_FAULTS, default OFF), so the default build's
//    miner hot path is bit-identical to an uninstrumented one.
//  * fault::InjectionPoint(name) / fault::Fired(name) — plain functions
//    for cold control paths (worker spawn, checkpoint/file I/O). Always
//    compiled, so fault-path tests (worker containment, crash/resume)
//    run in every build; a disarmed hit costs one mutexed map lookup on
//    a path that executes at most once per worker/batch/file.
//
// Arming is runtime-only: programmatically via FaultRegistry::Arm /
// ArmRandom, or through the COUSINS_FAULT_SPEC environment variable
// ("site:k[,site:k...]" or "random:<seed>:<denom>"), which is how CLI
// subprocess tests kill a run mid-flight. A triggered site throws
// FaultInjectedError (InjectionPoint / COUSINS_FAULT_POINT) or reports
// true (Fired / COUSINS_FAULT_FIRED) so stream-style call sites can take
// their natural error path instead of unwinding.
//
// Layering: like util/governance.h, this header has no obs/ dependency;
// obs/metrics.cc installs a trigger observer at static-init time that
// mirrors every trigger into the faults.* counters.

#ifndef COUSINS_UTIL_FAULT_INJECTION_H_
#define COUSINS_UTIL_FAULT_INJECTION_H_

#ifndef COUSINS_FAULTS_ENABLED
#define COUSINS_FAULTS_ENABLED 0
#endif

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cousins::fault {

/// Thrown by a triggered throwing-style fault site. Derives from
/// std::runtime_error so existing containment (worker try/catch, the
/// CLI's top-level handler) converts it into a hard Status.
class FaultInjectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide fault-site registry. Sites self-register on first hit,
/// so after one disarmed "discovery" run of a pipeline, SiteNames()
/// enumerates every site on that pipeline's path — the basis of the
/// full-enumeration fault sweep. All methods are thread-safe.
class FaultRegistry {
 public:
  /// The singleton. On first access, arms from the COUSINS_FAULT_SPEC
  /// environment variable if it is set (malformed specs abort: a typo'd
  /// fault drill must not silently run fault-free).
  static FaultRegistry& Global();

  /// Arms `site` to fire on its `fail_at_hit`-th hit from now (1-based),
  /// exactly once. Re-arming a site replaces its previous arming and
  /// restarts its hit count.
  void Arm(std::string_view site, uint64_t fail_at_hit);

  /// Seeded-random mode for sweeps: every hit at every site fires with
  /// probability 1/denominator, deterministically derived from `seed`,
  /// the site name, and the per-site hit index (same seed => same
  /// trigger sequence, run to run and site to site).
  void ArmRandom(uint64_t seed, uint64_t denominator);

  /// Parses and applies an arming spec: comma-separated "site:k" terms
  /// (k >= 1), or "random:<seed>:<denom>". Existing armings stay in
  /// place. Returns InvalidArgument on malformed input.
  Status ArmFromSpec(std::string_view spec);

  /// Disarms every site and the random mode; hit/trigger counters and
  /// site registrations are preserved.
  void DisarmAll();

  /// Names of all sites hit at least once since process start, sorted.
  std::vector<std::string> SiteNames() const;

  uint64_t Hits(std::string_view site) const;
  uint64_t Triggers(std::string_view site) const;
  /// Total triggers across all sites since process start.
  uint64_t TotalTriggers() const;

  /// Called once per trigger with the site name; installed by
  /// obs/metrics.cc to mirror triggers into faults.* counters.
  using TriggerObserver = void (*)(const char* site);
  static void SetTriggerObserver(TriggerObserver observer);

  /// Records a hit at `site` (registering it if new) and returns true
  /// when the site's arming says this hit must fail. Call sites use
  /// InjectionPoint/Fired below rather than calling this directly.
  bool Hit(const char* site);

 private:
  FaultRegistry();

  struct Site {
    uint64_t hits = 0;
    uint64_t triggers = 0;
    /// Hit index (1-based, counted from arming) that fires; 0 = not
    /// armed. Cleared after firing: "exactly one fault".
    uint64_t fail_at = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site, std::less<>> sites_;
  bool random_armed_ = false;
  uint64_t random_seed_ = 0;
  uint64_t random_denominator_ = 0;
};

/// Throwing fault site for cold paths; active in every build. Throws
/// FaultInjectedError when the site's arming fires on this hit.
void InjectionPoint(const char* site);

/// Query-style fault site for cold paths; active in every build.
/// Returns true when the arming fires, so the caller can simulate its
/// natural failure (short write, failed open, ...) instead of throwing.
bool Fired(const char* site);

}  // namespace cousins::fault

// Hot-path fault sites: compiled to nothing unless the build opts in
// with COUSINS_FAULTS_ENABLED=1 (CMake -DCOUSINS_FAULTS=ON), keeping
// the default miner hot path free of any fault-injection overhead.
#if COUSINS_FAULTS_ENABLED
#define COUSINS_FAULT_POINT(site) ::cousins::fault::InjectionPoint(site)
#define COUSINS_FAULT_FIRED(site) ::cousins::fault::Fired(site)
#else
#define COUSINS_FAULT_POINT(site) \
  do {                            \
  } while (0)
#define COUSINS_FAULT_FIRED(site) false
#endif

#endif  // COUSINS_UTIL_FAULT_INJECTION_H_
