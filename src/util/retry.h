// Bounded retry with deterministic backoff for transient-failure
// surfaces (file reads, checkpoint writes, bench-report writes).
//
// Only Status values with IsTransient() == true are ever retried
// (today: kUnavailable — disk hiccups, short writes, files that exist
// but momentarily fail to read). Permanent failures — parse errors,
// corruption, governance trips, logic errors — return immediately on
// the first attempt: retrying them can only waste time or mask bugs.
//
// Backoff is exponential with seeded jitter drawn from util/rng.h, so
// a retry schedule replays bit-identically run to run — the same
// discipline the fault-injection drills rely on. The default policy is
// None() (a single attempt): callers opt in to retry where the ISSUE's
// degraded-mode contract wants it (lenient CLI runs), and strict
// library paths keep failing fast so the fault sweep still proves
// every hard-failure path.
//
// Layering: like util/fault_injection.h, this header has no obs/
// dependency; obs/metrics.cc installs a retry observer at static-init
// time that mirrors retry activity into the retry.* counters.

#ifndef COUSINS_UTIL_RETRY_H_
#define COUSINS_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace cousins {

/// How (and whether) to retry an operation that can fail transiently.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retry entirely.
  int max_attempts = 1;
  /// Delay before the second attempt; later delays multiply by
  /// `backoff_multiplier` and clamp at `max_delay`.
  std::chrono::milliseconds initial_delay{2};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_delay{50};
  /// Each delay is scaled by a factor uniform in
  /// [1 - jitter_fraction, 1 + jitter_fraction], drawn from an Rng
  /// seeded with `jitter_seed` — deterministic, so drills replay.
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 0;

  /// A single attempt, no retry (the default everywhere).
  static RetryPolicy None() { return RetryPolicy{}; }

  /// The lenient-pipeline default: three attempts, short exponential
  /// backoff with deterministic jitter.
  static RetryPolicy Default(uint64_t jitter_seed = 0) {
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.jitter_seed = jitter_seed;
    return policy;
  }
};

namespace retry {

/// Called once per transient failure inside RetryTransient, with the
/// operation name, the 1-based attempt that just failed, and whether
/// another attempt follows. Installed by obs/metrics.cc to mirror
/// retry activity into retry.* counters.
using RetryObserver = void (*)(const char* op, uint64_t attempt,
                               bool will_retry);
void SetRetryObserver(RetryObserver observer);

/// Replaces the real inter-attempt sleep (null restores it). Tests
/// install a recorder so the exact backoff+jitter schedule can be
/// asserted without any wall-clock sleeping — tier-1 runs no sleeps.
using SleepFn = void (*)(std::chrono::duration<double, std::milli> delay);
void SetSleepFn(SleepFn sleep_fn);

}  // namespace retry

/// Runs `fn` up to `policy.max_attempts` times, sleeping with
/// exponential backoff + seeded jitter between attempts. Returns the
/// first OK or permanent Status, or the last transient Status once
/// attempts are exhausted. The cold fault site "retry.transient" is
/// consulted before each attempt; when armed it simulates a transient
/// failure of that attempt without running `fn`.
Status RetryTransient(const RetryPolicy& policy, const char* op,
                      const std::function<Status()>& fn);

/// Result<T>-returning flavor of RetryTransient.
template <typename Fn>
auto RetryTransientValue(const RetryPolicy& policy, const char* op,
                         Fn&& fn) -> decltype(fn()) {
  using ResultT = decltype(fn());
  std::optional<ResultT> out;
  Status st = RetryTransient(policy, op, [&]() -> Status {
    out.emplace(fn());
    return out->ok() ? Status::OK() : out->status();
  });
  if (!st.ok()) return ResultT(std::move(st));
  return std::move(*out);
}

}  // namespace cousins

#endif  // COUSINS_UTIL_RETRY_H_
