// Wall-clock stopwatch for the figure-regeneration harnesses.

#ifndef COUSINS_UTIL_STOPWATCH_H_
#define COUSINS_UTIL_STOPWATCH_H_

#include <chrono>

namespace cousins {

/// Measures elapsed wall time; Restart() returns the lap in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns elapsed seconds and resets the stopwatch.
  double Restart() {
    double s = ElapsedSeconds();
    start_ = Clock::now();
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cousins

#endif  // COUSINS_UTIL_STOPWATCH_H_
