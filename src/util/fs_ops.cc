#include "util/fs_ops.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/fault_injection.h"

namespace cousins::fs {
namespace {

/// Consults the pre-syscall fault family of `site` in a fixed order:
/// the legacy boolean form first (err = 0, preserving the semantics of
/// the scattered fault points this shim replaced), then the typed
/// errno forms. Consulting registers every sub-site with the fault
/// registry, so one disarmed discovery run enumerates the full family.
/// Returns true when a fault fired; *err holds its errno class and
/// *what a human-readable cause.
bool PreFault(const std::string& site, int* err, std::string* what) {
  if (fault::Fired(site.c_str())) {
    *err = 0;
    *what = "injected fault at " + site;
    return true;
  }
  if (fault::Fired((site + ".enospc").c_str())) {
    *err = ENOSPC;
    *what = "injected " + ErrnoName(ENOSPC) + " at " + site;
    return true;
  }
  if (fault::Fired((site + ".eio").c_str())) {
    *err = EIO;
    *what = "injected " + ErrnoName(EIO) + " at " + site;
    return true;
  }
  return false;
}

Status Fail(const std::string& what, int err, int* err_out) {
  if (err_out != nullptr) *err_out = err;
  if (err == 0) return Status::Unavailable(what);
  return Status::Unavailable(what + " (" + ErrnoName(err) + ")");
}

/// EINTR-retrying write(2) of bytes[0, stop). Returns 0 on success or
/// the errno of the failed write; *written reports how many bytes
/// landed either way.
int WriteRange(int fd, std::string_view bytes, size_t stop,
               size_t* written) {
  *written = 0;
  while (*written < stop) {
    const ssize_t n =
        ::write(fd, bytes.data() + *written, stop - *written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno != 0 ? errno : EIO;
    }
    *written += static_cast<size_t>(n);
  }
  return 0;
}

Result<int> OpenCommon(const char* site, const std::string& path,
                       int flags, bool* created, int* err_out) {
  const std::string s(site);
  int err = 0;
  std::string what;
  if (PreFault(s, &err, &what)) {
    return Fail(what + " opening '" + path + "'", err, err_out);
  }
  // O_EXCL-free create detection: probe existence first. The probe and
  // the open are not atomic, but every caller owns its file's
  // directory, so the race is theoretical and the answer only gates an
  // extra (idempotent) directory fsync.
  if (created != nullptr) {
    struct stat st;
    *created = ::stat(path.c_str(), &st) != 0;
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Fail(s + ": cannot open '" + path + "'",
                errno != 0 ? errno : EIO, err_out);
  }
  if (err_out != nullptr) *err_out = 0;
  return fd;
}

}  // namespace

std::string ErrnoName(int err) {
  switch (err) {
    case 0:
      return "OK";
    case EIO:
      return "EIO";
    case ENOSPC:
      return "ENOSPC";
    case ENOENT:
      return "ENOENT";
    case EACCES:
      return "EACCES";
    case EDQUOT:
      return "EDQUOT";
    case EROFS:
      return "EROFS";
    case EINTR:
      return "EINTR";
    case EBADF:
      return "EBADF";
    case EEXIST:
      return "EEXIST";
    case EISDIR:
      return "EISDIR";
    case ENOTDIR:
      return "ENOTDIR";
    default:
      return "errno=" + std::to_string(err);
  }
}

Result<int> OpenAppend(const char* site, const std::string& path,
                       bool truncate, bool* created, int* err) {
  return OpenCommon(site, path,
                    O_WRONLY | O_CREAT | O_APPEND |
                        (truncate ? O_TRUNC : 0),
                    created, err);
}

Result<int> OpenTrunc(const char* site, const std::string& path,
                      int* err) {
  return OpenCommon(site, path, O_WRONLY | O_CREAT | O_TRUNC, nullptr,
                    err);
}

IoOutcome WriteAll(const char* site, int fd, std::string_view bytes) {
  const std::string s(site);
  IoOutcome out;
  std::string what;
  if (PreFault(s, &out.err, &what)) {
    out.status = Fail(what, out.err, nullptr);
    return out;
  }
  // Partial-write faults: land a prefix for real (so replay sees
  // genuinely torn bytes on disk), then report the failure.
  size_t stop = bytes.size();
  int planned_err = 0;
  if (fault::Fired((s + ".short").c_str())) {
    stop = bytes.size() / 2;
    planned_err = EIO;
  } else if (fault::Fired((s + ".torn").c_str())) {
    stop = bytes.size() / 3;
    planned_err = EIO;
  }
  size_t written = 0;
  const int write_err = WriteRange(fd, bytes, stop, &written);
  if (write_err != 0) {
    out.err = write_err;
    out.maybe_partial = written > 0;
    out.status =
        Fail(s + ": write failed after " + std::to_string(written) +
                 " of " + std::to_string(bytes.size()) + " bytes",
             write_err, nullptr);
    return out;
  }
  if (planned_err != 0) {
    out.err = planned_err;
    out.maybe_partial = true;
    out.status = Fail(
        s + ": injected torn write (" + std::to_string(stop) + " of " +
            std::to_string(bytes.size()) + " bytes landed)",
        planned_err, nullptr);
    return out;
  }
  out.status = Status::OK();
  return out;
}

IoOutcome Fsync(const char* site, int fd) {
  const std::string s(site);
  IoOutcome out;
  std::string what;
  if (PreFault(s, &out.err, &what)) {
    // A failed fsync leaves durability indeterminate even when the
    // failure was injected before the syscall: the caller must apply
    // the poisoning rule either way, so the sweep exercises it.
    out.maybe_partial = true;
    out.status = Fail(what + " (fsync)", out.err, nullptr);
    return out;
  }
  if (::fsync(fd) != 0) {
    out.err = errno != 0 ? errno : EIO;
    out.maybe_partial = true;
    out.status = Fail(s + ": fsync failed", out.err, nullptr);
    return out;
  }
  out.status = Status::OK();
  return out;
}

Status Rename(const char* site, const std::string& from,
              const std::string& to, int* err) {
  const std::string s(site);
  int fault_err = 0;
  std::string what;
  if (PreFault(s, &fault_err, &what)) {
    return Fail(what + " renaming '" + from + "' -> '" + to + "'",
                fault_err, err);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Fail(s + ": cannot rename '" + from + "' -> '" + to + "'",
                errno != 0 ? errno : EIO, err);
  }
  if (err != nullptr) *err = 0;
  return Status::OK();
}

Status Unlink(const char* site, const std::string& path, int* err) {
  const std::string s(site);
  if (fault::Fired(s.c_str())) {
    return Fail("injected fault at " + s + " unlinking '" + path + "'",
                0, err);
  }
  if (fault::Fired((s + ".eio").c_str())) {
    return Fail("injected " + ErrnoName(EIO) + " at " + s +
                    " unlinking '" + path + "'",
                EIO, err);
  }
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) {
      if (err != nullptr) *err = ENOENT;
      return Status::NotFound("no such file '" + path + "'");
    }
    return Fail(s + ": cannot unlink '" + path + "'",
                errno != 0 ? errno : EIO, err);
  }
  if (err != nullptr) *err = 0;
  return Status::OK();
}

Status Truncate(const char* site, const std::string& path, int64_t size,
                int* err) {
  const std::string s(site);
  if (fault::Fired(s.c_str())) {
    return Fail("injected fault at " + s + " truncating '" + path + "'",
                0, err);
  }
  if (fault::Fired((s + ".eio").c_str())) {
    return Fail("injected " + ErrnoName(EIO) + " at " + s +
                    " truncating '" + path + "'",
                EIO, err);
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Fail(s + ": cannot truncate '" + path + "' to " +
                    std::to_string(size) + " bytes",
                errno != 0 ? errno : EIO, err);
  }
  if (err != nullptr) *err = 0;
  return Status::OK();
}

Status FsyncDirOf(const char* site, const std::string& path, int* err) {
  const std::string s(site);
  int fault_err = 0;
  std::string what;
  if (PreFault(s, &fault_err, &what)) {
    return Fail(what + " fsyncing directory of '" + path + "'",
                fault_err, err);
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) {
    return Fail(s + ": cannot open directory '" + dir + "'",
                errno != 0 ? errno : EIO, err);
  }
  if (::fsync(dir_fd) != 0) {
    const int sync_err = errno != 0 ? errno : EIO;
    ::close(dir_fd);
    return Fail(s + ": cannot fsync directory '" + dir + "'", sync_err,
                err);
  }
  ::close(dir_fd);
  if (err != nullptr) *err = 0;
  return Status::OK();
}

}  // namespace cousins::fs
