#include "gen/fanout_generator.h"

#include <string>
#include <utility>

#include "tree/builder.h"

namespace cousins {

void InternAlphabet(int32_t alphabet_size, LabelTable* labels) {
  for (int32_t i = 0; i < alphabet_size; ++i) {
    labels->Intern("L" + std::to_string(i));
  }
}

Tree GenerateFanoutTree(const FanoutTreeOptions& options, Rng& rng,
                        std::shared_ptr<LabelTable> labels) {
  COUSINS_CHECK(options.tree_size >= 1);
  COUSINS_CHECK(options.fanout >= 1);
  COUSINS_CHECK(options.alphabet_size >= 1);
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  InternAlphabet(options.alphabet_size, labels.get());

  auto random_label = [&]() -> LabelId {
    if (!rng.NextBool(options.labeled_fraction)) return kNoLabel;
    return labels->Find(
        "L" + std::to_string(rng.Uniform(options.alphabet_size)));
  };

  TreeBuilder b(labels);
  NodeId root = b.AddRoot();
  if (LabelId l = random_label(); l != kNoLabel) {
    b.SetLabel(root, labels->Name(l));
  }
  // Breadth-first attachment: `frontier` is the queue of nodes that have
  // not yet received their children.
  std::vector<NodeId> frontier = {root};
  size_t next = 0;
  while (b.size() < options.tree_size && next < frontier.size()) {
    NodeId parent = frontier[next++];
    for (int32_t i = 0; i < options.fanout && b.size() < options.tree_size;
         ++i) {
      NodeId c = b.AddChildWithLabelId(parent, random_label());
      frontier.push_back(c);
    }
  }
  return std::move(b).Build();
}

}  // namespace cousins
