// TreeBASE-like study corpora. §5.1 applies Multiple_Tree_Mining "to
// the phylogenies associated with each study in TreeBASE": a study is a
// set of related trees (competing hypotheses / equally parsimonious
// variants) over one taxon set. This generator produces corpora with
// that structure — per study, a model phylogeny plus NNI-perturbed
// variants — so per-study pattern mining can be exercised at corpus
// scale without the proprietary dump.

#ifndef COUSINS_GEN_STUDY_CORPUS_H_
#define COUSINS_GEN_STUDY_CORPUS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tree/tree.h"
#include "util/rng.h"

namespace cousins {

struct StudyCorpusOptions {
  int32_t num_studies = 50;
  /// Trees per study, uniform in [min, max].
  int32_t min_trees_per_study = 2;
  int32_t max_trees_per_study = 6;
  /// Taxa per study, uniform in [min, max].
  int32_t min_taxa = 8;
  int32_t max_taxa = 40;
  /// Global taxon pool (TreeBASE: 18,870); studies sample from it, so
  /// taxa recur across studies as in the real corpus.
  int32_t taxon_pool = 18870;
  /// Random subtree swaps applied to derive each variant tree.
  int32_t perturbation_moves = 3;
};

struct Study {
  std::vector<Tree> trees;
};

/// Generates a study-structured corpus over a shared LabelTable (fresh
/// if null). Deterministic given the Rng state.
std::vector<Study> GenerateStudyCorpus(
    const StudyCorpusOptions& options, Rng& rng,
    std::shared_ptr<LabelTable> labels = nullptr);

}  // namespace cousins

#endif  // COUSINS_GEN_STUDY_CORPUS_H_
