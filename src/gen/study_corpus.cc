#include "gen/study_corpus.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "gen/yule_generator.h"
#include "tree/edit.h"

namespace cousins {
namespace {

/// A few random subtree swaps; attempts may fail (ancestor pairs), so
/// bound the retries.
Tree Perturb(const Tree& tree, int32_t moves, Rng& rng) {
  Tree current = tree;
  int32_t applied = 0;
  for (int32_t attempts = 0; applied < moves && attempts < 20 * moves + 20;
       ++attempts) {
    const auto u = static_cast<NodeId>(rng.Uniform(current.size()));
    const auto v = static_cast<NodeId>(rng.Uniform(current.size()));
    Result<Tree> swapped = SwapSubtrees(current, u, v);
    if (swapped.ok()) {
      current = std::move(swapped).value();
      ++applied;
    }
  }
  return current;
}

}  // namespace

std::vector<Study> GenerateStudyCorpus(const StudyCorpusOptions& options,
                                       Rng& rng,
                                       std::shared_ptr<LabelTable> labels) {
  COUSINS_CHECK(options.num_studies >= 0);
  COUSINS_CHECK(options.min_taxa >= 2);
  COUSINS_CHECK(options.max_taxa >= options.min_taxa);
  COUSINS_CHECK(options.min_trees_per_study >= 1);
  COUSINS_CHECK(options.max_trees_per_study >=
                options.min_trees_per_study);
  if (labels == nullptr) labels = std::make_shared<LabelTable>();

  std::vector<Study> corpus;
  corpus.reserve(options.num_studies);
  for (int32_t s = 0; s < options.num_studies; ++s) {
    const auto num_taxa = static_cast<int32_t>(
        rng.UniformInt(options.min_taxa, options.max_taxa));
    // Sample study taxa from the global pool without replacement.
    std::vector<std::string> taxa;
    std::unordered_set<uint64_t> used;
    while (static_cast<int32_t>(taxa.size()) < num_taxa) {
      const uint64_t pick = rng.Uniform(options.taxon_pool);
      if (used.insert(pick).second) {
        taxa.push_back("taxon" + std::to_string(pick));
      }
    }
    Study study;
    Tree model = RandomCoalescentTree(taxa, rng, labels);
    const auto num_trees = static_cast<int32_t>(rng.UniformInt(
        options.min_trees_per_study, options.max_trees_per_study));
    study.trees.push_back(model);
    for (int32_t t = 1; t < num_trees; ++t) {
      study.trees.push_back(
          Perturb(model, options.perturbation_moves, rng));
    }
    corpus.push_back(std::move(study));
  }
  return corpus;
}

}  // namespace cousins
