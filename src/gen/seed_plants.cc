#include "gen/seed_plants.h"

#include "tree/newick.h"
#include "util/check.h"

namespace cousins {

const char* const kSeedPlantTaxa[8] = {
    "Cycadales",   "Ginkgoales", "Coniferales", "Ephedra",
    "Welwitschia", "Gnetum",     "Angiosperms", "Outgroup",
};

// T1: anthophyte hypothesis (gnetophytes sister to angiosperms).
// T2: gnetophytes + (Ephedra, angiosperm) variant.
// T3, T4: hypotheses placing (Ginkgoales, Ephedra) as first cousins
//         once removed (cousin distance 1.5).
const char* const kSeedPlantStudyNewick =
    "(Outgroup,(Cycadales,(Ginkgoales,(Coniferales,(((Gnetum,Welwitschia)"
    ",Ephedra),Angiosperms)))));\n"
    "(Outgroup,(Cycadales,(Ginkgoales,(Coniferales,((Gnetum,Welwitschia),"
    "(Ephedra,Angiosperms))))));\n"
    "(Outgroup,(Angiosperms,((Cycadales,Ginkgoales),(Coniferales,((Gnetum"
    ",Welwitschia),Ephedra)))));\n"
    "(Outgroup,((Cycadales,Ginkgoales),((Coniferales,Angiosperms),((Gnetum"
    ",Welwitschia),Ephedra))));\n";

std::vector<Tree> SeedPlantStudy(std::shared_ptr<LabelTable> labels) {
  Result<std::vector<Tree>> forest =
      ParseNewickForest(kSeedPlantStudyNewick, std::move(labels));
  COUSINS_CHECK(forest.ok());
  COUSINS_CHECK(forest->size() == 4);
  return std::move(forest).value();
}

}  // namespace cousins
