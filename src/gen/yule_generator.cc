#include "gen/yule_generator.h"

#include <cmath>
#include <utility>

#include "tree/builder.h"

namespace cousins {

std::vector<std::string> MakeTaxa(int32_t n) {
  std::vector<std::string> taxa;
  taxa.reserve(n);
  for (int32_t i = 0; i < n; ++i) taxa.push_back("taxon" + std::to_string(i));
  return taxa;
}

Tree GenerateYulePhylogeny(const YulePhylogenyOptions& options, Rng& rng,
                           std::shared_ptr<LabelTable> labels) {
  COUSINS_CHECK(options.min_nodes >= 1);
  COUSINS_CHECK(options.max_nodes >= options.min_nodes);
  COUSINS_CHECK(options.max_children >= 2);
  if (labels == nullptr) labels = std::make_shared<LabelTable>();

  const int32_t target =
      static_cast<int32_t>(rng.UniformInt(options.min_nodes,
                                          options.max_nodes));
  TreeBuilder b(labels);
  std::vector<NodeId> leaves = {b.AddRoot()};
  while (b.size() < target) {
    // Expand a uniformly random current leaf into a speciation event.
    const size_t pick = rng.Uniform(leaves.size());
    const NodeId parent = leaves[pick];
    leaves[pick] = leaves.back();
    leaves.pop_back();
    int32_t k = 2;
    if (options.max_children > 2 && rng.NextBool(options.multifurcation_prob)) {
      k = static_cast<int32_t>(rng.UniformInt(3, options.max_children));
    }
    for (int32_t i = 0; i < k; ++i) {
      leaves.push_back(b.AddChild(parent));
    }
  }
  // Label the final leaves with random taxa; internal nodes stay
  // unlabeled like real phylogenies.
  for (NodeId leaf : leaves) {
    b.SetLabel(leaf,
               "taxon" + std::to_string(rng.Uniform(options.alphabet_size)));
  }
  return std::move(b).Build();
}

namespace {

/// Lightweight top-down emit of a bottom-up (coalescent) structure.
struct Proto {
  std::string taxon;  // empty for internal nodes
  double branch_length = 1.0;
  std::vector<int> kids;  // indices into the proto arena
};

}  // namespace

Tree RandomCoalescentTree(const std::vector<std::string>& taxa, Rng& rng,
                          std::shared_ptr<LabelTable> labels,
                          double branch_scale) {
  COUSINS_CHECK(!taxa.empty());
  if (labels == nullptr) labels = std::make_shared<LabelTable>();

  auto exp_length = [&]() {
    return -std::log(1.0 - rng.NextDouble()) * branch_scale;
  };

  std::vector<Proto> arena;
  std::vector<int> pool;
  arena.reserve(2 * taxa.size());
  for (const std::string& t : taxa) {
    arena.push_back(Proto{t, exp_length(), {}});
    pool.push_back(static_cast<int>(arena.size()) - 1);
  }
  // Coalesce two random lineages until one remains.
  while (pool.size() > 1) {
    const size_t i = rng.Uniform(pool.size());
    const int a = pool[i];
    pool[i] = pool.back();
    pool.pop_back();
    const size_t j = rng.Uniform(pool.size());
    const int c = pool[j];
    arena.push_back(Proto{"", exp_length(), {a, c}});
    pool[j] = static_cast<int>(arena.size()) - 1;
  }

  TreeBuilder b(labels);
  // Iterative preorder emit.
  struct Frame {
    int proto;
    NodeId parent;
  };
  std::vector<Frame> stack = {{pool[0], kNoNode}};
  while (!stack.empty()) {
    auto [p, parent] = stack.back();
    stack.pop_back();
    const Proto& proto = arena[p];
    NodeId v = parent == kNoNode
                   ? b.AddRoot(proto.taxon)
                   : b.AddChild(parent, proto.taxon, proto.branch_length);
    for (int kid : proto.kids) stack.push_back({kid, v});
  }
  return std::move(b).Build();
}

}  // namespace cousins
