// Phylogeny-shaped random trees.
//
// GenerateYulePhylogeny reproduces the TreeBASE corpus statistics the
// paper reports for Figure 7: 50-200 nodes per tree, 2-9 children per
// internal node (most internal nodes binary), leaf labels drawn from an
// 18,870-taxon alphabet, unlabeled internal nodes.
//
// RandomCoalescentTree builds a random binary tree over an explicit
// taxon set with exponential branch lengths — the model trees for the
// sequence-evolution substrate (§5.2-5.3) and start trees for the
// parsimony search.

#ifndef COUSINS_GEN_YULE_GENERATOR_H_
#define COUSINS_GEN_YULE_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/rng.h"

namespace cousins {

struct YulePhylogenyOptions {
  /// Node-count target is drawn uniformly from [min_nodes, max_nodes].
  int32_t min_nodes = 50;
  int32_t max_nodes = 200;
  /// Children per speciation event: 2 with probability
  /// 1 − multifurcation_prob, else uniform in [3, max_children].
  int32_t max_children = 9;
  double multifurcation_prob = 0.15;
  /// Taxon alphabet size (TreeBASE: 18,870). Leaves are labeled
  /// "taxon<i>" with i uniform over the alphabet.
  int32_t alphabet_size = 18870;
};

/// Grows a tree by a Yule process: repeatedly expand a uniformly chosen
/// leaf into a speciation event until the node target is reached.
/// Internal nodes are unlabeled, as in real phylogenies.
Tree GenerateYulePhylogeny(const YulePhylogenyOptions& options, Rng& rng,
                           std::shared_ptr<LabelTable> labels = nullptr);

/// Random binary tree whose leaves are exactly `taxa` (random coalescent
/// topology); edge lengths are Exp(1) · branch_scale.
Tree RandomCoalescentTree(const std::vector<std::string>& taxa, Rng& rng,
                          std::shared_ptr<LabelTable> labels = nullptr,
                          double branch_scale = 0.1);

/// "taxon0".."taxon<n-1>" convenience taxon set.
std::vector<std::string> MakeTaxa(int32_t n);

}  // namespace cousins

#endif  // COUSINS_GEN_YULE_GENERATOR_H_
