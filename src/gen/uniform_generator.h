// Uniform random trees via Prüfer sequences — our stand-in for the
// Holmes–Diaconis random-walk generator [19] the paper used to sample
// "a large number of random trees from the whole tree space".
//
// A uniformly random Prüfer sequence of length n−2 decodes to a
// uniformly random labeled tree on n vertices (Cayley's bijection); we
// root it at vertex 0. Shapes range from paths to stars, exercising the
// miners across the whole tree space rather than one parametric family.

#ifndef COUSINS_GEN_UNIFORM_GENERATOR_H_
#define COUSINS_GEN_UNIFORM_GENERATOR_H_

#include <memory>

#include "tree/tree.h"
#include "util/rng.h"

namespace cousins {

struct UniformTreeOptions {
  int32_t tree_size = 200;
  int32_t alphabet_size = 200;
  /// Fraction of nodes carrying a label.
  double labeled_fraction = 1.0;
};

/// Uniformly random rooted labeled tree on tree_size nodes.
Tree GenerateUniformTree(const UniformTreeOptions& options, Rng& rng,
                         std::shared_ptr<LabelTable> labels = nullptr);

}  // namespace cousins

#endif  // COUSINS_GEN_UNIFORM_GENERATOR_H_
