// Fixed-fanout random labeled trees — the synthetic workload of the
// paper's Table 3 (tree_size, fanout, alphabet_size) used by Figures
// 4-6.

#ifndef COUSINS_GEN_FANOUT_GENERATOR_H_
#define COUSINS_GEN_FANOUT_GENERATOR_H_

#include <memory>

#include "tree/tree.h"
#include "util/rng.h"

namespace cousins {

struct FanoutTreeOptions {
  /// Total number of nodes (Table 3 default 200).
  int32_t tree_size = 200;
  /// Children per internal node (Table 3 default 5). The last internal
  /// node may receive fewer to hit tree_size exactly.
  int32_t fanout = 5;
  /// Size of the label alphabet (Table 3 default 200); labels are drawn
  /// uniformly with replacement and named "L0".."L<n-1>".
  int32_t alphabet_size = 200;
  /// Fraction of nodes that receive a label (1.0 = all, as in the
  /// synthetic experiments).
  double labeled_fraction = 1.0;
};

/// Generates a complete-ish tree: nodes are attached breadth-first, each
/// internal node receiving exactly `fanout` children until `tree_size`
/// nodes exist. Labels are uniform over the alphabet.
Tree GenerateFanoutTree(const FanoutTreeOptions& options, Rng& rng,
                        std::shared_ptr<LabelTable> labels = nullptr);

/// Interns "L0".."L<alphabet_size-1>" into `labels` (idempotent); the
/// generators above call it implicitly, exposed for forest setup.
void InternAlphabet(int32_t alphabet_size, LabelTable* labels);

}  // namespace cousins

#endif  // COUSINS_GEN_FANOUT_GENERATOR_H_
