// The seed-plant study used in the paper's Figure 8 (Doyle & Donoghue
// [11], maintained in TreeBASE): four competing hypotheses over eight
// taxa. The original TreeBASE topologies are not included in the paper,
// so these are hand-encoded hypothesis trees consistent with everything
// the paper reports: (Gnetum, Welwitschia) is a frequent cousin pair at
// distance 0 in all four trees, and (Ginkgoales, Ephedra) at distance
// 1.5 in exactly two of them (see DESIGN.md's substitution table).

#ifndef COUSINS_GEN_SEED_PLANTS_H_
#define COUSINS_GEN_SEED_PLANTS_H_

#include <memory>
#include <vector>

#include "tree/tree.h"

namespace cousins {

/// The eight taxa of the study.
extern const char* const kSeedPlantTaxa[8];

/// The four hypothesis trees as a ';'-separated Newick forest.
extern const char* const kSeedPlantStudyNewick;

/// Parses the study into trees over a shared label table (fresh if
/// null). Aborts on malformed embedded data (programming error).
std::vector<Tree> SeedPlantStudy(
    std::shared_ptr<LabelTable> labels = nullptr);

}  // namespace cousins

#endif  // COUSINS_GEN_SEED_PLANTS_H_
