#include "gen/uniform_generator.h"

#include <string>
#include <utility>
#include <vector>

#include "gen/fanout_generator.h"
#include "tree/builder.h"

namespace cousins {

Tree GenerateUniformTree(const UniformTreeOptions& options, Rng& rng,
                         std::shared_ptr<LabelTable> labels) {
  const int32_t n = options.tree_size;
  COUSINS_CHECK(n >= 1);
  COUSINS_CHECK(options.alphabet_size >= 1);
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  InternAlphabet(options.alphabet_size, labels.get());

  auto random_label = [&]() -> LabelId {
    if (!rng.NextBool(options.labeled_fraction)) return kNoLabel;
    return labels->Find(
        "L" + std::to_string(rng.Uniform(options.alphabet_size)));
  };

  // Decode a uniform Prüfer sequence into adjacency lists.
  std::vector<std::vector<int32_t>> adj(n);
  if (n >= 2) {
    std::vector<int32_t> prufer(n - 2);
    for (int32_t& p : prufer) {
      p = static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(n)));
    }
    std::vector<int32_t> degree(n, 1);
    for (int32_t p : prufer) ++degree[p];
    // Standard linear decode with a moving leaf pointer (the tree being
    // decoded keeps >= 2 leaves at every stage, so the scans stay in
    // bounds; asserted defensively).
    int32_t ptr = 0;
    while (degree[ptr] != 1) ++ptr;
    int32_t leaf = ptr;
    for (int32_t p : prufer) {
      adj[leaf].push_back(p);
      adj[p].push_back(leaf);
      if (--degree[p] == 1 && p < ptr) {
        leaf = p;
      } else {
        ++ptr;
        while (ptr < n && degree[ptr] != 1) ++ptr;
        COUSINS_CHECK(ptr < n);
        leaf = ptr;
      }
    }
    // Join the final two vertices of degree 1: `leaf` and n-1.
    adj[leaf].push_back(n - 1);
    adj[n - 1].push_back(leaf);
  }

  // Root the free tree at vertex 0 by BFS.
  TreeBuilder b(labels);
  std::vector<NodeId> built(n, kNoNode);
  built[0] = b.AddRoot();
  if (LabelId l = random_label(); l != kNoLabel) {
    b.SetLabel(built[0], labels->Name(l));
  }
  std::vector<int32_t> queue = {0};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    int32_t v = queue[qi];
    for (int32_t w : adj[v]) {
      if (built[w] != kNoNode) continue;
      built[w] = b.AddChildWithLabelId(built[v], random_label());
      queue.push_back(w);
    }
  }
  return std::move(b).Build();
}

}  // namespace cousins
