#include "svc/wal.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <limits>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "core/checkpoint.h"
#include "core/miner_variant.h"
#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace cousins::svc {
namespace {

/// The WAL format version this build writes and replays.
constexpr int64_t kWalVersion = 1;

/// CRC32 of a record body, rendered as the 8-hex-digit frame suffix
/// (identical framing to proc/lease_ledger.cc).
std::string CrcSuffix(const std::string& body) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x",
                internal::Crc32(body.data(), body.size()));
  return buf;
}

bool ParseInt(std::string_view token, int64_t* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

uint32_t MiningOptionsFingerprint(const MultiTreeMiningOptions& options) {
  // Every option that changes what a batch tallies into goes into the
  // fingerprint; a new option field defaulting differently will (by
  // design) orphan old WALs rather than silently replay them wrong.
  std::string repr;
  repr += "v=" + std::to_string(static_cast<int>(options.variant));
  repr += ";md=" + std::to_string(options.per_tree.twice_maxdist);
  repr += ";mo=" + std::to_string(options.per_tree.min_occur);
  repr += ";ms=" + std::to_string(options.min_support);
  repr += ";ig=" + std::to_string(options.ignore_distance ? 1 : 0);
  repr += ";gh=" + std::to_string(options.generalized.max_horizontal);
  repr += ";gv=" + std::to_string(options.generalized.max_vertical);
  char bucket[64];
  std::snprintf(bucket, sizeof(bucket), ";wb=%.17g",
                options.weighted.bucket_width);
  repr += bucket;
  return internal::Crc32(repr.data(), repr.size());
}

std::string EscapeWalPayload(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  for (char c : payload) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeWalPayload(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out += escaped[i];
      continue;
    }
    if (i + 1 >= escaped.size()) {
      return Status::Corruption("dangling escape in WAL payload");
    }
    switch (escaped[++i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        return Status::Corruption("unknown escape in WAL payload");
    }
  }
  return out;
}

bool ParseSvcWalLine(std::string_view line, SvcWalRecord* out) {
  const size_t hash = line.find_last_of('#');
  if (hash == std::string_view::npos || hash + 9 != line.size() ||
      hash < 1 || line[hash - 1] != ' ') {
    return false;
  }
  const std::string body(line.substr(0, hash - 1));
  if (CrcSuffix(body) != line.substr(hash + 1)) return false;
  SvcWalRecord record;
  if (StartsWith(body, "SVCWAL ")) {
    std::vector<std::string_view> fields = Split(body, ' ');
    int64_t fingerprint = 0;
    if (fields.size() != 3 || !ParseInt(fields[1], &record.version) ||
        !ParseInt(fields[2], &fingerprint) || fingerprint < 0 ||
        fingerprint > std::numeric_limits<uint32_t>::max()) {
      return false;
    }
    record.kind = SvcWalRecord::Kind::kHeader;
    record.fingerprint = static_cast<uint32_t>(fingerprint);
  } else if (StartsWith(body, "BATCH ")) {
    // "BATCH <id> <escaped payload>": the payload may contain spaces,
    // so only the first two tokens are split off.
    const size_t id_begin = 6;
    const size_t id_end = body.find(' ', id_begin);
    if (id_end == std::string::npos) return false;
    if (!ParseInt(std::string_view(body).substr(id_begin, id_end - id_begin),
                  &record.id)) {
      return false;
    }
    Result<std::string> payload =
        UnescapeWalPayload(std::string_view(body).substr(id_end + 1));
    if (!payload.ok()) return false;
    record.kind = SvcWalRecord::Kind::kBatch;
    record.payload = *std::move(payload);
  } else if (StartsWith(body, "RETRACT ")) {
    std::vector<std::string_view> fields = Split(body, ' ');
    if (fields.size() != 2 || !ParseInt(fields[1], &record.id)) {
      return false;
    }
    record.kind = SvcWalRecord::Kind::kRetract;
  } else {
    return false;
  }
  *out = std::move(record);
  return true;
}

SvcWal::SvcWal(SvcWal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

SvcWal& SvcWal::operator=(SvcWal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

SvcWal::~SvcWal() {
  if (fd_ >= 0) close(fd_);
}

Result<SvcWal> SvcWal::Open(const std::string& path) {
  const int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open service WAL '" + path + "'");
  }
  SvcWal wal;
  wal.fd_ = fd;
  return wal;
}

Status SvcWal::Append(const std::string& body) {
  const std::string line = body + " #" + CrcSuffix(body) + "\n";
  if (fault::Fired("svc.wal.append")) {
    COUSINS_METRIC_COUNTER_ADD("svc.wal_append_failures", 1);
    return Status::Unavailable("injected fault at svc.wal.append");
  }
  // One write(2) per record: the '\n' lands in the same append as the
  // body, so replay's torn-tail rule (an unterminated tail is never a
  // whole record) holds by construction.
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      COUSINS_METRIC_COUNTER_ADD("svc.wal_append_failures", 1);
      return Status::Unavailable("service WAL append failed");
    }
    written += static_cast<size_t>(n);
  }
  // Always durable: the daemon acknowledges nothing it could lose.
  if (fsync(fd_) != 0) {
    COUSINS_METRIC_COUNTER_ADD("svc.wal_append_failures", 1);
    return Status::Unavailable("service WAL fsync failed");
  }
  COUSINS_METRIC_COUNTER_ADD("svc.wal_appends", 1);
  COUSINS_METRIC_COUNTER_ADD("svc.wal_bytes",
                             static_cast<int64_t>(line.size()));
  return Status::OK();
}

Status SvcWal::AppendHeader(uint32_t options_fingerprint) {
  return Append("SVCWAL " + std::to_string(kWalVersion) + " " +
                std::to_string(options_fingerprint));
}

Status SvcWal::AppendBatch(int64_t id, std::string_view payload) {
  return Append("BATCH " + std::to_string(id) + " " +
                EscapeWalPayload(payload));
}

Status SvcWal::AppendRetract(int64_t id) {
  return Append("RETRACT " + std::to_string(id));
}

Result<std::vector<SvcWalRecord>> ReplaySvcWal(
    const std::string& path, uint32_t expected_fingerprint,
    size_t* valid_prefix) {
  COUSINS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  std::vector<SvcWalRecord> records;
  bool saw_header = false;
  size_t pos = 0;
  if (valid_prefix != nullptr) *valid_prefix = 0;
  while (pos < bytes.size()) {
    const size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated tail: the writer ends every record with '\n' in
      // the same write, so this is a torn append of a request that was
      // never acknowledged — drop it.
      COUSINS_METRIC_COUNTER_ADD("svc.wal_torn_tails", 1);
      break;
    }
    const std::string_view line(bytes.data() + pos, nl - pos);
    SvcWalRecord record;
    if (!ParseSvcWalLine(line, &record)) {
      if (nl + 1 >= bytes.size()) {
        COUSINS_METRIC_COUNTER_ADD("svc.wal_torn_tails", 1);
        break;
      }
      return Status::Corruption("corrupt service WAL record in '" + path +
                                "'");
    }
    if (!saw_header) {
      if (record.kind != SvcWalRecord::Kind::kHeader) {
        return Status::Corruption("service WAL '" + path +
                                  "' does not start with a header");
      }
      if (record.version != kWalVersion) {
        return Status::FailedPrecondition(
            "service WAL '" + path + "' has format version " +
            std::to_string(record.version) + ", expected " +
            std::to_string(kWalVersion));
      }
      if (record.fingerprint != expected_fingerprint) {
        return Status::FailedPrecondition(
            "service WAL '" + path +
            "' was written under different mining options");
      }
      saw_header = true;
    } else {
      if (record.kind == SvcWalRecord::Kind::kHeader) {
        return Status::Corruption("duplicate header in service WAL '" +
                                  path + "'");
      }
      records.push_back(std::move(record));
    }
    pos = nl + 1;
    if (valid_prefix != nullptr) *valid_prefix = pos;
  }
  if (!saw_header && valid_prefix != nullptr && *valid_prefix == 0 &&
      !bytes.empty()) {
    // A file holding only a torn header: treat as empty (the create
    // crashed before the header append completed).
    return std::vector<SvcWalRecord>();
  }
  return records;
}

}  // namespace cousins::svc
