#include "svc/wal.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <limits>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include <sys/stat.h>

#include "core/checkpoint.h"
#include "core/miner_variant.h"
#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/fs_ops.h"
#include "util/strings.h"

namespace cousins::svc {
namespace {

/// The v1 (single-file) WAL format version this build replays.
constexpr int64_t kWalVersion = 1;
/// The v2 (segmented) format version this build writes and replays.
constexpr int64_t kSegVersion = 2;

/// CRC32 of a record body, rendered as the 8-hex-digit frame suffix
/// (identical framing to proc/lease_ledger.cc).
std::string CrcSuffix(std::string_view body) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x",
                internal::Crc32(body.data(), body.size()));
  return buf;
}

bool ParseInt(std::string_view token, int64_t* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

uint32_t MiningOptionsFingerprint(const MultiTreeMiningOptions& options) {
  // Every option that changes what a batch tallies into goes into the
  // fingerprint; a new option field defaulting differently will (by
  // design) orphan old WALs rather than silently replay them wrong.
  std::string repr;
  repr += "v=" + std::to_string(static_cast<int>(options.variant));
  repr += ";md=" + std::to_string(options.per_tree.twice_maxdist);
  repr += ";mo=" + std::to_string(options.per_tree.min_occur);
  repr += ";ms=" + std::to_string(options.min_support);
  repr += ";ig=" + std::to_string(options.ignore_distance ? 1 : 0);
  repr += ";gh=" + std::to_string(options.generalized.max_horizontal);
  repr += ";gv=" + std::to_string(options.generalized.max_vertical);
  char bucket[64];
  std::snprintf(bucket, sizeof(bucket), ";wb=%.17g",
                options.weighted.bucket_width);
  repr += bucket;
  return internal::Crc32(repr.data(), repr.size());
}

std::string EscapeWalPayload(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  for (char c : payload) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeWalPayload(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out += escaped[i];
      continue;
    }
    if (i + 1 >= escaped.size()) {
      return Status::Corruption("dangling escape in WAL payload");
    }
    switch (escaped[++i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        return Status::Corruption("unknown escape in WAL payload");
    }
  }
  return out;
}

std::string FrameWalLine(std::string_view body) {
  std::string line(body);
  line += " #";
  line += CrcSuffix(body);
  line += "\n";
  return line;
}

bool UnframeWalLine(std::string_view line, std::string_view* body) {
  const size_t hash = line.find_last_of('#');
  if (hash == std::string_view::npos || hash + 9 != line.size() ||
      hash < 1 || line[hash - 1] != ' ') {
    return false;
  }
  const std::string_view candidate = line.substr(0, hash - 1);
  if (CrcSuffix(candidate) != line.substr(hash + 1)) return false;
  *body = candidate;
  return true;
}

bool ParseSvcWalLine(std::string_view line, SvcWalRecord* out) {
  std::string_view framed_body;
  if (!UnframeWalLine(line, &framed_body)) return false;
  const std::string body(framed_body);
  SvcWalRecord record;
  if (StartsWith(body, "SVCWAL ")) {
    std::vector<std::string_view> fields = Split(body, ' ');
    int64_t fingerprint = 0;
    if (fields.size() != 3 || !ParseInt(fields[1], &record.version) ||
        !ParseInt(fields[2], &fingerprint) || fingerprint < 0 ||
        fingerprint > std::numeric_limits<uint32_t>::max()) {
      return false;
    }
    record.kind = SvcWalRecord::Kind::kHeader;
    record.fingerprint = static_cast<uint32_t>(fingerprint);
  } else if (StartsWith(body, "SVCSEG ")) {
    std::vector<std::string_view> fields = Split(body, ' ');
    int64_t fingerprint = 0;
    if (fields.size() != 4 || !ParseInt(fields[1], &record.version) ||
        !ParseInt(fields[2], &fingerprint) || fingerprint < 0 ||
        fingerprint > std::numeric_limits<uint32_t>::max() ||
        !ParseInt(fields[3], &record.id) || record.id < 0) {
      return false;
    }
    record.kind = SvcWalRecord::Kind::kSegHeader;
    record.fingerprint = static_cast<uint32_t>(fingerprint);
  } else if (StartsWith(body, "BATCH ")) {
    // "BATCH <id> <escaped payload>": the payload may contain spaces,
    // so only the first two tokens are split off.
    const size_t id_begin = 6;
    const size_t id_end = body.find(' ', id_begin);
    if (id_end == std::string::npos) return false;
    if (!ParseInt(std::string_view(body).substr(id_begin, id_end - id_begin),
                  &record.id)) {
      return false;
    }
    Result<std::string> payload =
        UnescapeWalPayload(std::string_view(body).substr(id_end + 1));
    if (!payload.ok()) return false;
    record.kind = SvcWalRecord::Kind::kBatch;
    record.payload = *std::move(payload);
  } else if (StartsWith(body, "RETRACT ")) {
    std::vector<std::string_view> fields = Split(body, ' ');
    if (fields.size() != 2 || !ParseInt(fields[1], &record.id)) {
      return false;
    }
    record.kind = SvcWalRecord::Kind::kRetract;
  } else {
    return false;
  }
  *out = std::move(record);
  return true;
}

SvcWal::SvcWal(SvcWal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      poisoned_(std::exchange(other.poisoned_, false)),
      last_errno_(std::exchange(other.last_errno_, 0)),
      acked_bytes_(std::exchange(other.acked_bytes_, 0)) {}

SvcWal& SvcWal::operator=(SvcWal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    poisoned_ = std::exchange(other.poisoned_, false);
    last_errno_ = std::exchange(other.last_errno_, 0);
    acked_bytes_ = std::exchange(other.acked_bytes_, 0);
  }
  return *this;
}

SvcWal::~SvcWal() {
  if (fd_ >= 0) close(fd_);
}

Result<SvcWal> SvcWal::Open(const std::string& path, bool truncate,
                            int* err) {
  if (err != nullptr) *err = 0;
  bool created = false;
  COUSINS_ASSIGN_OR_RETURN(
      const int fd, fs::OpenAppend("svc.wal.open", path, truncate,
                                   &created, err));
  // A freshly created journal exists only in its directory's data
  // until the directory is fsync'd: without this, a crash right after
  // creation loses the file — and every mutation acked into it.
  if (created) {
    Status dir_synced = fs::FsyncDirOf("svc.wal.dirsync", path, err);
    if (!dir_synced.ok()) {
      close(fd);
      ::unlink(path.c_str());
      return dir_synced;
    }
  }
  SvcWal wal;
  wal.fd_ = fd;
  if (!truncate) {
    struct stat st;
    if (fstat(fd, &st) == 0) {
      wal.acked_bytes_ = static_cast<int64_t>(st.st_size);
    }
  }
  return wal;
}

Status SvcWal::Append(const std::string& body) {
  if (poisoned_) {
    return Status::Unavailable(
        "WAL segment poisoned by an earlier write/fsync failure (" +
        fs::ErrnoName(last_errno_) +
        "); refusing append — compaction or rotation required");
  }
  // One write(2) per record: the '\n' lands in the same append as the
  // body, so replay's torn-tail rule (an unterminated tail is never a
  // whole record) holds by construction.
  const std::string line = FrameWalLine(body);
  fs::IoOutcome wrote = fs::WriteAll("svc.wal.append", fd_, line);
  if (!wrote.ok()) {
    COUSINS_METRIC_COUNTER_ADD("svc.wal_append_failures", 1);
    // Bytes may have landed: the file now carries a torn record, so
    // the handle is poisoned and never appended to again. A pre-write
    // failure (legacy boolean fault, or ENOSPC before any byte) left
    // the file exactly as acked — no poison, safe to retry in place.
    if (wrote.maybe_partial) poisoned_ = true;
    last_errno_ = wrote.err;
    return wrote.status;
  }
  // Always durable: the daemon acknowledges nothing it could lose. A
  // failed fsync may have dropped the dirty pages (fsyncgate): durable
  // contents are indeterminate, so the segment is poisoned outright —
  // never retry-fsync-then-ack.
  fs::IoOutcome synced = fs::Fsync("svc.wal.fsync", fd_);
  if (!synced.ok()) {
    COUSINS_METRIC_COUNTER_ADD("svc.wal_append_failures", 1);
    poisoned_ = true;
    last_errno_ = synced.err;
    return synced.status;
  }
  last_errno_ = 0;
  acked_bytes_ += static_cast<int64_t>(line.size());
  COUSINS_METRIC_COUNTER_ADD("svc.wal_appends", 1);
  COUSINS_METRIC_COUNTER_ADD("svc.wal_bytes",
                             static_cast<int64_t>(line.size()));
  return Status::OK();
}

Status SvcWal::AppendHeader(uint32_t options_fingerprint) {
  return Append("SVCWAL " + std::to_string(kWalVersion) + " " +
                std::to_string(options_fingerprint));
}

Status SvcWal::AppendSegHeader(uint32_t options_fingerprint,
                               int64_t seq) {
  return Append("SVCSEG " + std::to_string(kSegVersion) + " " +
                std::to_string(options_fingerprint) + " " +
                std::to_string(seq));
}

Status SvcWal::AppendBatch(int64_t id, std::string_view payload) {
  return Append("BATCH " + std::to_string(id) + " " +
                EscapeWalPayload(payload));
}

Status SvcWal::AppendRetract(int64_t id) {
  return Append("RETRACT " + std::to_string(id));
}

Result<std::vector<SvcWalRecord>> ReplaySvcWal(
    const std::string& path, uint32_t expected_fingerprint,
    size_t* valid_prefix) {
  COUSINS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  std::vector<SvcWalRecord> records;
  bool saw_header = false;
  size_t pos = 0;
  if (valid_prefix != nullptr) *valid_prefix = 0;
  while (pos < bytes.size()) {
    const size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated tail: the writer ends every record with '\n' in
      // the same write, so this is a torn append of a request that was
      // never acknowledged — drop it.
      COUSINS_METRIC_COUNTER_ADD("svc.wal_torn_tails", 1);
      break;
    }
    const std::string_view line(bytes.data() + pos, nl - pos);
    SvcWalRecord record;
    if (!ParseSvcWalLine(line, &record)) {
      if (nl + 1 >= bytes.size()) {
        COUSINS_METRIC_COUNTER_ADD("svc.wal_torn_tails", 1);
        break;
      }
      return Status::Corruption("corrupt service WAL record in '" + path +
                                "'");
    }
    if (!saw_header) {
      if (record.kind != SvcWalRecord::Kind::kHeader) {
        return Status::Corruption("service WAL '" + path +
                                  "' does not start with a header");
      }
      if (record.version != kWalVersion) {
        return Status::FailedPrecondition(
            "service WAL '" + path + "' has format version " +
            std::to_string(record.version) + ", expected " +
            std::to_string(kWalVersion));
      }
      if (record.fingerprint != expected_fingerprint) {
        return Status::FailedPrecondition(
            "service WAL '" + path +
            "' was written under different mining options");
      }
      saw_header = true;
    } else {
      if (record.kind == SvcWalRecord::Kind::kHeader) {
        return Status::Corruption("duplicate header in service WAL '" +
                                  path + "'");
      }
      records.push_back(std::move(record));
    }
    pos = nl + 1;
    if (valid_prefix != nullptr) *valid_prefix = pos;
  }
  if (!saw_header && valid_prefix != nullptr && *valid_prefix == 0 &&
      !bytes.empty()) {
    // A file holding only a torn header: treat as empty (the create
    // crashed before the header append completed).
    return std::vector<SvcWalRecord>();
  }
  return records;
}

}  // namespace cousins::svc
