// Segmented WAL v2 store for the resident daemon: numbered segment
// files plus an atomically swapped manifest, with snapshot-anchored
// compaction so recovery replays a bounded tail instead of the
// daemon's whole uptime.
//
// On-disk layout (`dir` is ServiceConfig::wal_path, now a directory):
//
//   MANIFEST            one framed line (wal.h framing):
//                       "SVCMANIFEST 2 <fp> <compaction_id>
//                        <snapshot-file|-> <seg,seg,...> #crc"
//                       replaced atomically (core/checkpoint.h
//                       WriteFileAtomic under the svc.manifest.*
//                       fault family) — the manifest swap IS the
//                       commit point for rotation and compaction.
//   seg-NNNNNN.wal      append-only record segments; first record
//                       "SVCSEG 2 <fp> <seq>", then BATCH/RETRACT
//                       lines (svc/wal.h).
//   snap-NNNNNN.ckpt    opaque service snapshot blobs (the daemon's
//                       serialized acked state), written under the
//                       svc.snapshot.* fault family.
//
// Rotation (active segment exceeded config.segment_bytes): create and
// fsync the next segment + its header, fsync the directory, then swap
// a manifest listing it — a crash between the steps leaves an orphan
// file the next open deletes, never a listed-but-missing segment.
//
// Compaction: write the snapshot blob (atomic), create a fresh
// segment, then swap a manifest naming {snapshot, [fresh]} with a
// bumped compaction id; only after that commit point are the old
// segments and snapshot retired (unlink failures are tolerated — the
// files are unreferenced orphans). Compaction discards any poisoned
// segment wholesale, which is the one sanctioned exit from the
// fsyncgate poisoning rule and from the daemon's read-only mode.
//
// Recovery: load the manifest (fingerprint mismatch =
// kFailedPrecondition), hand the caller the snapshot blob, then replay
// the listed segments in order. A torn tail is legal only in the FINAL
// segment (the only one ever appended to) and is truncated away;
// torn/empty bytes anywhere else are kCorruption. A header-only or
// empty segment mid-list is legal (rotation can race a quiet period).
// kill -9 at any instant — mid-append, mid-rotation, mid-compaction —
// recovers to a state containing every acked record.

#ifndef COUSINS_SVC_WAL_STORE_H_
#define COUSINS_SVC_WAL_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "svc/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace cousins::svc {

struct WalStoreConfig {
  /// Rotate the active segment once its acked bytes reach this.
  int64_t segment_bytes = 4ll << 20;
};

/// What Open recovered for the caller to rebuild state from.
struct WalRecovery {
  /// The snapshot blob anchored by the manifest; empty when none.
  std::string snapshot_bytes;
  /// Tail records (BATCH/RETRACT, headers excluded) from the listed
  /// segments, in append order.
  std::vector<SvcWalRecord> tail;
  /// == tail.size(): what the health report exposes as
  /// storage.replayed_records.
  int64_t replayed_records = 0;
  int64_t segments = 0;
};

class WalStore {
 public:
  /// Opens (or initializes) the segmented store at directory `dir`.
  /// A missing directory is created; a directory with no manifest is
  /// (re-)initialized idempotently — a crash mid-initialization just
  /// re-runs it. When `dir` is missing but "<dir>.migrate" holds a
  /// complete store, the interrupted v1 migration is finished first
  /// (rename into place). kFailedPrecondition when the manifest was
  /// written under a different options fingerprint; kCorruption on
  /// damaged non-final segments.
  static Result<WalStore> Open(const std::string& dir,
                               uint32_t fingerprint,
                               const WalStoreConfig& config,
                               WalRecovery* recovery);

  /// Migrates a v1 single-file WAL at `path` into a v2 store in place:
  /// builds "<path>.migrate" completely (snapshot + fresh segment +
  /// manifest, all fsync'd), unlinks the v1 file, then renames the
  /// directory over `path`. `snapshot_bytes` is the caller's
  /// serialized state after replaying the v1 file. Crash-safe at every
  /// step: v1 file still present => migration re-runs from scratch;
  /// v1 gone + .migrate present => Open completes the rename.
  static Result<WalStore> MigrateFromV1(const std::string& path,
                                        uint32_t fingerprint,
                                        const WalStoreConfig& config,
                                        const std::string& snapshot_bytes);

  WalStore() = default;
  WalStore(WalStore&&) = default;
  WalStore& operator=(WalStore&&) = default;
  WalStore(const WalStore&) = delete;
  WalStore& operator=(const WalStore&) = delete;

  /// Appends one record to the active segment, rotating first when the
  /// segment is full. A failure that may have landed bytes (or any
  /// failed fsync) poisons the active segment; `degraded()` turns true
  /// on every errno-carrying failure and the store refuses mutations
  /// until Compact succeeds.
  Status AppendBatch(int64_t id, std::string_view payload);
  Status AppendRetract(int64_t id);

  /// Snapshot-anchored compaction: folds `snapshot_bytes` into a new
  /// snapshot file, opens a fresh segment, commits both via the
  /// manifest swap, then retires every old segment and snapshot.
  /// Success clears poisoning and degraded mode. On failure the prior
  /// store state (manifest, segments) is untouched.
  Status Compact(const std::string& snapshot_bytes);

  int64_t segment_count() const {
    return static_cast<int64_t>(sealed_.size()) + 1;
  }
  /// Acked bytes across sealed segments + the active one.
  int64_t total_bytes() const {
    return sealed_bytes_ + active_.acked_bytes();
  }
  int64_t sealed_bytes() const { return sealed_bytes_; }
  int64_t last_compaction_id() const { return compaction_id_; }
  bool poisoned() const { return active_.poisoned(); }
  /// True after any errno-carrying storage failure (typed fault or
  /// real disk error) or poisoning; cleared by a successful Compact.
  bool degraded() const { return degraded_; }
  /// errno class behind degraded(); 0 when the cause carried none
  /// (e.g. a poisoning legacy-boolean fsync fault).
  int last_errno() const { return last_errno_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Sealed {
    int64_t seq = 0;
    int64_t bytes = 0;
  };

  static std::string SegName(int64_t seq);
  static std::string SnapName(int64_t seq);
  std::string PathOf(const std::string& name) const;

  Status Append(bool retract, int64_t id, std::string_view payload);
  /// Creates + fsyncs segment `seq` (truncating any orphan), writes
  /// its header, fsyncs the directory. On success *out holds the
  /// open handle.
  Status CreateSegment(int64_t seq, SvcWal* out);
  /// Renders and atomically swaps the manifest for the given layout.
  Status CommitManifest(int64_t compaction_id,
                        const std::string& snapshot_name,
                        const std::vector<std::string>& segment_names,
                        int* err);
  Status Rotate();
  void NoteFailure(int err, bool poisoned_now);
  /// Unlinks every seg-*/snap-* file in dir_ not in `keep` (plus any
  /// stale "*.tmp"); failures tolerated — orphans are unreferenced.
  void RetireExcept(const std::vector<std::string>& keep);

  std::string dir_;
  uint32_t fingerprint_ = 0;
  WalStoreConfig config_;
  std::vector<Sealed> sealed_;
  int64_t sealed_bytes_ = 0;
  SvcWal active_;
  int64_t active_seq_ = 0;
  std::string snapshot_name_;  // empty = none
  int64_t compaction_id_ = 0;
  int64_t next_seq_ = 1;
  bool degraded_ = false;
  int last_errno_ = 0;
};

}  // namespace cousins::svc

#endif  // COUSINS_SVC_WAL_STORE_H_
