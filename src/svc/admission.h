// Admission control for the resident mining daemon: a pure-logic
// controller bounding in-flight work by request count (queue depth)
// and by admitted payload bytes (a memory watermark), so overload
// sheds cheap kUnavailable + Retry-After responses instead of queueing
// until the process OOMs. HEALTH bypasses admission by design — the
// daemon must stay observable exactly when it is refusing work.

#ifndef COUSINS_SVC_ADMISSION_H_
#define COUSINS_SVC_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>

namespace cousins::svc {

struct AdmissionConfig {
  /// Maximum concurrently admitted requests (INGEST/RETRACT/QUERY).
  int max_inflight = 4;
  /// Watermark over the payload bytes of admitted requests: a new
  /// request is shed while admitted bytes + its bytes would exceed
  /// this.
  int64_t max_inflight_bytes = 256ll << 20;
  /// Advisory Retry-After for shed responses.
  int retry_after_ms = 50;
};

struct AdmissionDecision {
  bool admitted = false;
  int retry_after_ms = 0;
  std::string reason;  // why the request was shed (empty if admitted)
};

/// Thread-safe. Every TryAdmit that returns admitted=true must be
/// paired with exactly one Release(bytes) with the same byte count —
/// callers hold an AdmissionSlot (below) to make that structural.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  AdmissionDecision TryAdmit(int64_t bytes);
  void Release(int64_t bytes);

  int inflight() const;
  int64_t inflight_bytes() const;
  /// Total requests shed since construction (== every rejection this
  /// controller ever issued; the overload contract's accounting).
  int64_t shed() const;
  int64_t admitted_total() const;

 private:
  const AdmissionConfig config_;
  mutable std::mutex mu_;
  int inflight_ = 0;
  int64_t inflight_bytes_ = 0;
  int64_t shed_ = 0;
  int64_t admitted_total_ = 0;
};

/// RAII admission slot: releases on destruction when admitted.
class AdmissionSlot {
 public:
  AdmissionSlot(AdmissionController& controller, int64_t bytes)
      : controller_(controller),
        bytes_(bytes),
        decision_(controller.TryAdmit(bytes)) {}
  ~AdmissionSlot() {
    if (decision_.admitted) controller_.Release(bytes_);
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  const AdmissionDecision& decision() const { return decision_; }
  bool admitted() const { return decision_.admitted; }

 private:
  AdmissionController& controller_;
  int64_t bytes_;
  AdmissionDecision decision_;
};

}  // namespace cousins::svc

#endif  // COUSINS_SVC_ADMISSION_H_
