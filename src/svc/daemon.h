// The resident mining daemon (`cousinsd`): a long-lived CousinService
// keeping one MultiTreeMiner (any MinerVariant) warm across requests,
// with crash safety, retraction, admission control and graceful drain.
//
// Request handling (svc/protocol.h verbs):
//
//   INGEST  [deadline-ms=N]   payload = Newick batch text
//   RETRACT <batch-id> [deadline-ms=N]
//   QUERY   frequent-pairs | support <label1> <label2> <distance>
//   HEALTH
//   DRAIN
//
// Durability: an ingest batch is mined into a staging miner first (a
// failed or tripped batch leaves the resident tallies untouched), then
// appended to the WAL (svc/wal.h) and fsync'd, then merged and
// published — so the WAL holds exactly the accepted mutations, every
// acknowledged request is durable, and a kill -9 at any point replays
// into a state whose query answers are byte-identical to a batch run
// over the acknowledged batches. A batch that reached the WAL but
// whose acknowledgement was lost (crash in the ack window, or an
// injected svc.swap fault) is the standard WAL ambiguity: it replays
// as accepted.
//
// Concurrency: INGEST/RETRACT/DRAIN serialize on one mutation mutex;
// QUERY and HEALTH read the RCU snapshot (svc/snapshot.h) and shared
// counters only, so they answer concurrently with an in-flight ingest
// and never block it. Admission (svc/admission.h) bounds in-flight
// mutations and queries; HEALTH bypasses admission so the daemon stays
// observable under overload.

#ifndef COUSINS_SVC_DAEMON_H_
#define COUSINS_SVC_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/multi_tree_mining.h"
#include "core/quarantine.h"
#include "svc/admission.h"
#include "svc/protocol.h"
#include "svc/snapshot.h"
#include "svc/wal.h"
#include "tree/parse_limits.h"
#include "util/governance.h"
#include "util/result.h"

namespace cousins::svc {

struct ServiceConfig {
  MultiTreeMiningOptions mining;
  /// Path of the write-ahead log (required). Replayed on Start.
  std::string wal_path;
  /// Optional final-checkpoint path, written by FinishDrain.
  std::string checkpoint_path;
  /// Optional final health-report path, written by FinishDrain.
  std::string health_report_path;
  /// Lenient ingest: malformed forest entries are quarantined (batch
  /// id recorded as the source) instead of rejecting the batch.
  bool lenient = false;
  /// Per-entry parse limits for ingest payloads.
  ParseLimits parse_limits;
  AdmissionConfig admission;
  /// Per-INGEST payload cap (admission watermark aside): a single
  /// batch larger than this is kInvalidArgument, not shed.
  int64_t max_batch_bytes = 64ll << 20;
  /// Server-side ceiling on any request's mining deadline, combined
  /// with the client's deadline-ms argument (the tighter one wins).
  /// 0 = no server ceiling.
  int64_t max_request_ms = 0;
  /// Server-side resource budget folded into every request's
  /// MiningContext.
  ResourceBudget budget;
};

/// The resident service. Thread-safe Handle; create via Start (which
/// replays or creates the WAL).
class CousinService {
 public:
  /// Opens/replays the WAL and builds the initial snapshot. Refuses a
  /// corrupt WAL (kCorruption) or one written under different mining
  /// options (kFailedPrecondition); a torn final record is trimmed.
  static Result<std::unique_ptr<CousinService>> Start(
      const ServiceConfig& config);

  /// Handles one parsed request; never throws. DRAIN flips the service
  /// into draining (subsequent mutations are refused kUnavailable) —
  /// the serve loop is responsible for stopping accepts and calling
  /// FinishDrain once in-flight requests are done.
  Response Handle(const Request& request);

  /// Writes the final checkpoint and health report (when configured)
  /// and marks the drain complete. Idempotent.
  Status FinishDrain();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  void BeginDrain() { draining_.store(true, std::memory_order_relaxed); }

  std::shared_ptr<const ServiceSnapshot> snapshot() const {
    return snapshot_cell_.Load();
  }
  int64_t replayed_batches() const { return replayed_batches_; }
  const AdmissionController& admission() const { return admission_; }
  const ServiceConfig& config() const { return config_; }

 private:
  explicit CousinService(const ServiceConfig& config);

  Response HandleIngest(const Request& request);
  Response HandleRetract(const Request& request);
  Response HandleQuery(const Request& request) const;
  Response HandleHealth() const;
  Response HandleDrain();

  /// Mines `payload` into a staging miner over the shared label table.
  /// On success *staging holds exactly the batch's contribution.
  Status MineBatch(int64_t batch_id, const std::string& payload,
                   const MiningContext& context, MultiTreeMiner* staging,
                   QuarantineLedger* quarantine);

  /// Applies one WAL record during Start (no WAL append, no deadline).
  Status ApplyReplayRecord(const SvcWalRecord& record);

  /// Renders and atomically publishes a fresh snapshot. Fault site
  /// svc.swap simulates a failed publish (the mutation stays applied
  /// and durable; the snapshot catches up on the next publish).
  Status PublishSnapshot();

  /// MiningContext from the request's deadline-ms argument and the
  /// server's ceiling/budget.
  MiningContext ContextFor(const Request& request) const;

  std::string HealthJson() const;

  const ServiceConfig config_;
  const uint32_t fingerprint_;

  /// Serializes all state mutation (miner, WAL, batches_, publish).
  std::mutex mutate_mu_;
  std::shared_ptr<LabelTable> labels_;
  MultiTreeMiner miner_;
  SvcWal wal_;
  QuarantineLedger quarantine_;
  /// Live (non-retracted) batches by id; RETRACT re-mines the stored
  /// payload to subtract exactly what the batch contributed.
  struct BatchInfo {
    std::string payload;
    int trees = 0;
  };
  std::map<int64_t, BatchInfo> batches_;
  int64_t next_batch_id_ = 1;
  int64_t replayed_batches_ = 0;

  SnapshotCell snapshot_cell_;
  std::atomic<int64_t> snapshot_version_{0};
  AdmissionController admission_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<int64_t> requests_{0};
};

/// Serves one connection: reads frames, handles requests, writes
/// responses, until EOF, a stream error, or a served DRAIN (which also
/// sets *stop when non-null). Read/write faults close the connection;
/// they never take the service down.
void ServeConnection(int in_fd, int out_fd, CousinService& service,
                     std::atomic<bool>* stop);

/// Unix-socket accept loop: binds `socket_path` (unlinking any stale
/// socket), serves each connection on its own thread, and returns once
/// `stop` is set (by DRAIN, or externally e.g. from a signal handler)
/// with all connection threads joined. Fault site svc.accept simulates
/// a transient accept failure (connection dropped, loop continues).
Status RunUnixServer(const std::string& socket_path,
                     CousinService& service, std::atomic<bool>* stop);

}  // namespace cousins::svc

#endif  // COUSINS_SVC_DAEMON_H_
