// The resident mining daemon (`cousinsd`): a long-lived CousinService
// keeping one MultiTreeMiner (any MinerVariant) warm across requests,
// with crash safety, retraction, admission control and graceful drain.
//
// Request handling (svc/protocol.h verbs):
//
//   INGEST  [deadline-ms=N]   payload = Newick batch text
//   RETRACT <batch-id> [deadline-ms=N]
//   QUERY   frequent-pairs | support <label1> <label2> <distance>
//   HEALTH
//   COMPACT
//   DRAIN
//
// Durability: an ingest batch is mined into a staging miner first (a
// failed or tripped batch leaves the resident tallies untouched), then
// appended to the segmented WAL (svc/wal_store.h) and fsync'd, then
// merged and published — so the WAL holds exactly the accepted
// mutations, every acknowledged request is durable, and a kill -9 at
// any point replays into a state whose query answers are
// byte-identical to a batch run over the acknowledged batches. A batch
// that reached the WAL but whose acknowledgement was lost (crash in
// the ack window, or an injected svc.swap fault) is the standard WAL
// ambiguity: it replays as accepted.
//
// Storage: the WAL is a directory of numbered segments anchored by a
// snapshot (svc/wal_store.h) — recovery loads the snapshot and replays
// only the tail, so restart cost tracks segment size, not uptime.
// COMPACT (or auto-compaction past wal_compact_bytes) folds the acked
// state into a fresh snapshot and retires the old segments. A failed
// fsync poisons its segment (durability indeterminate — never
// retry-fsync-then-ack); any errno-carrying storage failure flips the
// daemon READ-ONLY: mutations are shed kUnavailable with a
// retry-after while QUERY/HEALTH keep answering from the RCU
// snapshot, and a successful COMPACT (which discards the poisoned
// segment) is the way back out.
//
// Concurrency: INGEST/RETRACT/COMPACT/DRAIN serialize on one mutation
// mutex; QUERY and HEALTH read the RCU snapshot (svc/snapshot.h) and
// shared counters only, so they answer concurrently with an in-flight
// ingest and never block it. Admission (svc/admission.h) bounds
// in-flight mutations and queries; HEALTH and COMPACT bypass
// admission so the daemon stays observable and recoverable under
// overload.

#ifndef COUSINS_SVC_DAEMON_H_
#define COUSINS_SVC_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/multi_tree_mining.h"
#include "core/quarantine.h"
#include "svc/admission.h"
#include "svc/protocol.h"
#include "svc/snapshot.h"
#include "svc/wal.h"
#include "svc/wal_store.h"
#include "tree/parse_limits.h"
#include "util/governance.h"
#include "util/result.h"

namespace cousins::svc {

struct ServiceConfig {
  MultiTreeMiningOptions mining;
  /// Path of the write-ahead log (required): a v2 segment directory.
  /// A v1 single-file WAL at this path is migrated in place on Start.
  std::string wal_path;
  /// Rotate the active WAL segment once its acked bytes reach this.
  int64_t wal_segment_bytes = 4ll << 20;
  /// Auto-compact after a mutation once the sealed (non-active) WAL
  /// bytes reach this. 0 = only explicit COMPACT requests compact.
  int64_t wal_compact_bytes = 0;
  /// Retraction retention horizon: at compaction, only the N
  /// most-recent live batches keep their payloads (retractable);
  /// older batches stay tallied but RETRACT of one is
  /// kFailedPrecondition. 0 = retain every payload.
  int64_t retain_batches = 0;
  /// Optional final-checkpoint path, written by FinishDrain.
  std::string checkpoint_path;
  /// Optional final health-report path, written by FinishDrain.
  std::string health_report_path;
  /// Lenient ingest: malformed forest entries are quarantined (batch
  /// id recorded as the source) instead of rejecting the batch.
  bool lenient = false;
  /// Per-entry parse limits for ingest payloads.
  ParseLimits parse_limits;
  AdmissionConfig admission;
  /// Per-INGEST payload cap (admission watermark aside): a single
  /// batch larger than this is kInvalidArgument, not shed.
  int64_t max_batch_bytes = 64ll << 20;
  /// Server-side ceiling on any request's mining deadline, combined
  /// with the client's deadline-ms argument (the tighter one wins).
  /// 0 = no server ceiling.
  int64_t max_request_ms = 0;
  /// Server-side resource budget folded into every request's
  /// MiningContext.
  ResourceBudget budget;
};

/// The resident service. Thread-safe Handle; create via Start (which
/// replays or creates the WAL).
class CousinService {
 public:
  /// Opens/replays the WAL and builds the initial snapshot. Refuses a
  /// corrupt WAL (kCorruption) or one written under different mining
  /// options (kFailedPrecondition); a torn final record is trimmed.
  static Result<std::unique_ptr<CousinService>> Start(
      const ServiceConfig& config);

  /// Handles one parsed request; never throws. DRAIN flips the service
  /// into draining (subsequent mutations are refused kUnavailable) —
  /// the serve loop is responsible for stopping accepts and calling
  /// FinishDrain once in-flight requests are done.
  Response Handle(const Request& request);

  /// Writes the final checkpoint and health report (when configured)
  /// and marks the drain complete. Idempotent.
  Status FinishDrain();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  void BeginDrain() { draining_.store(true, std::memory_order_relaxed); }

  std::shared_ptr<const ServiceSnapshot> snapshot() const {
    return snapshot_cell_.Load();
  }
  int64_t replayed_batches() const { return replayed_batches_; }
  /// Tail records replayed from WAL segments at Start (batches +
  /// retracts, snapshot-restored batches excluded) — the measure of
  /// how well compaction bounds recovery.
  int64_t replayed_records() const { return replayed_records_; }
  /// True while storage is degraded: mutations are shed, QUERY/HEALTH
  /// keep serving. Cleared by a successful COMPACT.
  bool read_only() const {
    return read_only_.load(std::memory_order_relaxed);
  }
  const AdmissionController& admission() const { return admission_; }
  const ServiceConfig& config() const { return config_; }

 private:
  explicit CousinService(const ServiceConfig& config);

  Response HandleIngest(const Request& request);
  Response HandleRetract(const Request& request);
  Response HandleQuery(const Request& request) const;
  Response HandleHealth() const;
  Response HandleCompact();
  Response HandleDrain();

  /// Mines `payload` into a staging miner over the shared label table.
  /// On success *staging holds exactly the batch's contribution.
  Status MineBatch(int64_t batch_id, const std::string& payload,
                   const MiningContext& context, MultiTreeMiner* staging,
                   QuarantineLedger* quarantine);

  /// Applies one WAL record during Start (no WAL append, no deadline).
  Status ApplyReplayRecord(const SvcWalRecord& record);

  /// Renders and atomically publishes a fresh snapshot. Fault site
  /// svc.swap simulates a failed publish (the mutation stays applied
  /// and durable; the snapshot catches up on the next publish).
  Status PublishSnapshot();

  /// MiningContext from the request's deadline-ms argument and the
  /// server's ceiling/budget.
  MiningContext ContextFor(const Request& request) const;

  std::string HealthJson() const;

  /// Serializes the acked service state (miner tallies + quarantine +
  /// live batches + next id) into an opaque snapshot blob for
  /// WalStore::Compact / MigrateFromV1. Caller holds mutate_mu_ (or is
  /// single-threaded Start).
  std::string SerializeServiceSnapshot() const;
  /// Inverse of SerializeServiceSnapshot, applied during Start before
  /// tail replay. kCorruption on damage, kFailedPrecondition on a
  /// fingerprint from different mining options.
  Status RestoreServiceSnapshot(const std::string& bytes);

  /// Compaction body (caller holds mutate_mu_): applies the retention
  /// horizon, folds the acked state into WalStore::Compact, and on
  /// success exits read-only mode.
  Status CompactLocked();
  /// Flips the daemon read-only with an operator-facing reason.
  void EnterReadOnly(const std::string& reason);
  std::string ReadOnlyReason() const;
  /// Refreshes the storage health atomics from store_ (caller holds
  /// mutate_mu_) so HEALTH stays lock-free.
  void UpdateStorageStats();

  const ServiceConfig config_;
  const uint32_t fingerprint_;

  /// Serializes all state mutation (miner, WAL, batches_, publish).
  std::mutex mutate_mu_;
  std::shared_ptr<LabelTable> labels_;
  MultiTreeMiner miner_;
  WalStore store_;
  QuarantineLedger quarantine_;
  /// Live (non-retracted) batches by id; RETRACT re-mines the stored
  /// payload to subtract exactly what the batch contributed. A batch
  /// compacted past the retention horizon keeps its tallies but drops
  /// its payload (retained=false) and can no longer be retracted.
  struct BatchInfo {
    std::string payload;
    int trees = 0;
    bool retained = true;
  };
  std::map<int64_t, BatchInfo> batches_;
  int64_t next_batch_id_ = 1;
  int64_t replayed_batches_ = 0;
  int64_t replayed_records_ = 0;
  int64_t recovery_ms_ = 0;

  SnapshotCell snapshot_cell_;
  std::atomic<int64_t> snapshot_version_{0};
  AdmissionController admission_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<int64_t> requests_{0};

  /// Storage health, mirrored into atomics by UpdateStorageStats so
  /// HandleHealth never takes mutate_mu_.
  std::atomic<bool> read_only_{false};
  std::atomic<int64_t> storage_segments_{0};
  std::atomic<int64_t> storage_wal_bytes_{0};
  std::atomic<int64_t> storage_sealed_bytes_{0};
  std::atomic<int64_t> storage_compaction_id_{0};
  mutable std::mutex reason_mu_;
  std::string read_only_reason_;
};

/// Serves one connection: reads frames, handles requests, writes
/// responses, until EOF, a stream error, or a served DRAIN (which also
/// sets *stop when non-null). Read/write faults close the connection;
/// they never take the service down.
void ServeConnection(int in_fd, int out_fd, CousinService& service,
                     std::atomic<bool>* stop);

/// Unix-socket accept loop: binds `socket_path` (unlinking any stale
/// socket), serves each connection on its own thread, and returns once
/// `stop` is set (by DRAIN, or externally e.g. from a signal handler)
/// with all connection threads joined. Fault site svc.accept simulates
/// a transient accept failure (connection dropped, loop continues).
Status RunUnixServer(const std::string& socket_path,
                     CousinService& service, std::atomic<bool>* stop);

}  // namespace cousins::svc

#endif  // COUSINS_SVC_DAEMON_H_
