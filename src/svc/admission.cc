#include "svc/admission.h"

#include "obs/metrics.h"

namespace cousins::svc {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

AdmissionDecision AdmissionController::TryAdmit(int64_t bytes) {
  AdmissionDecision decision;
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ >= config_.max_inflight) {
    decision.reason = "admission queue full (" +
                      std::to_string(inflight_) + " in flight)";
  } else if (inflight_bytes_ + bytes > config_.max_inflight_bytes) {
    decision.reason = "admission byte watermark exceeded (" +
                      std::to_string(inflight_bytes_ + bytes) + " > " +
                      std::to_string(config_.max_inflight_bytes) + ")";
  } else {
    decision.admitted = true;
    ++inflight_;
    inflight_bytes_ += bytes;
    ++admitted_total_;
    COUSINS_METRIC_COUNTER_ADD("svc.admitted", 1);
    return decision;
  }
  decision.retry_after_ms = config_.retry_after_ms;
  ++shed_;
  COUSINS_METRIC_COUNTER_ADD("svc.shed", 1);
  return decision;
}

void AdmissionController::Release(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  --inflight_;
  inflight_bytes_ -= bytes;
}

int AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

int64_t AdmissionController::inflight_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_bytes_;
}

int64_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

int64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_total_;
}

}  // namespace cousins::svc
