// Wire protocol of the resident mining daemon: length-prefixed,
// CRC-guarded frames over a byte stream (a Unix socket or a
// stdin/stdout pipe pair), each frame carrying one line-oriented
// request or response.
//
// Frame layout (all integers little-endian):
//
//   uint32 body_length | uint32 crc32(body) | body bytes
//
// The CRC catches stream desynchronization (a torn write, a client
// speaking the wrong protocol) before a garbage length can drive a
// huge allocation; bodies over kMaxFrameBytes are refused outright.
//
// Request body: the first line is "<VERB> [args...]"; everything after
// the first '\n' is the payload (the Newick batch text of INGEST).
// Response body: the first line is "OK [k=v...]" or
// "ERR <CodeName> [retry-after-ms=N] <message>"; everything after the
// first '\n' is the response payload (query CSV, health JSON).

#ifndef COUSINS_SVC_PROTOCOL_H_
#define COUSINS_SVC_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cousins::svc {

/// Upper bound on a frame body — an INGEST batch, so generous, but
/// small enough that a desynchronized length word cannot OOM the
/// daemon.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Writes one frame with retrying short writes. kUnavailable on any
/// stream error; fault site svc.write simulates one.
Status WriteFrame(int fd, std::string_view body);

/// Reads one frame into `body`. Returns false on clean EOF at a frame
/// boundary (client closed the connection); kCorruption on a torn
/// frame, CRC mismatch or oversized length; kUnavailable on a stream
/// error (fault site svc.read simulates one).
Result<bool> ReadFrame(int fd, std::string* body);

/// One parsed request frame.
struct Request {
  std::string verb;               // uppercased command word
  std::vector<std::string> args;  // remaining first-line tokens
  std::string payload;            // bytes after the first '\n'
};

/// Splits a request body into verb / args / payload. A missing or
/// empty first line is kInvalidArgument.
Result<Request> ParseRequest(std::string_view body);

/// One response, produced by CousinService::Handle and rendered to a
/// frame body for the wire.
struct Response {
  Status status;
  std::string payload;
  /// Advisory client back-off for shed (kUnavailable) responses;
  /// rendered as "retry-after-ms=N" on the status line when > 0.
  int retry_after_ms = 0;
};

/// Renders "OK\n<payload>" or "ERR <code> [retry-after-ms=N] <msg>\n".
std::string RenderResponse(const Response& response);

/// Parses a rendered response back into status-code name, retry hint,
/// message and payload (the client side). Returns kCorruption on a
/// malformed status line.
struct ParsedResponse {
  bool ok = false;
  std::string code_name;  // "OK" or the ERR code name
  std::string message;
  std::string payload;
  int retry_after_ms = 0;
};
Result<ParsedResponse> ParseResponse(std::string_view body);

}  // namespace cousins::svc

#endif  // COUSINS_SVC_PROTOCOL_H_
