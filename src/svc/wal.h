// Write-ahead log of the resident mining daemon (svc/daemon.h): an
// append-only, CRC-framed journal of every acknowledged state mutation
// (ingest batches and retractions), using the same line framing and
// crash discipline as the shard-lease ledger (proc/lease_ledger.h).
//
// Every record is one line "BODY #crc32hex\n" appended with a single
// write(2) on an O_APPEND descriptor and fsync'd before the daemon
// acknowledges the request — so an acknowledged mutation is always
// durable, and the only crash artifact an append-only file can carry
// is a torn final line. Replay mirrors the lease-ledger semantics
// exactly: a torn or CRC-bad *final* line is dropped silently (it was
// never acknowledged), while bad bytes followed by more content mean
// the journal body itself is damaged and replay refuses with
// kCorruption rather than trusting any of it.
//
// The first record pins the WAL format version and a fingerprint of
// the mining options, so a daemon restarted with different options
// refuses the journal (kFailedPrecondition) instead of replaying
// batches into a miner that would tally them differently.

#ifndef COUSINS_SVC_WAL_H_
#define COUSINS_SVC_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/multi_tree_mining.h"
#include "util/result.h"
#include "util/status.h"

namespace cousins::svc {

/// Stable CRC32 fingerprint over every field of the mining options —
/// the WAL header value that ties a journal to the option set its
/// batches were tallied under.
uint32_t MiningOptionsFingerprint(const MultiTreeMiningOptions& options);

/// Escapes a Newick batch payload into a single WAL line fragment:
/// '\\' -> "\\\\", '\n' -> "\\n", '\r' -> "\\r". Lossless inverse
/// below; everything else passes through unchanged.
std::string EscapeWalPayload(std::string_view payload);

/// Inverse of EscapeWalPayload. Fails on a dangling or unknown escape.
Result<std::string> UnescapeWalPayload(std::string_view escaped);

/// One parsed WAL record.
struct SvcWalRecord {
  enum class Kind : uint8_t {
    kHeader,   // SVCWAL <version> <options_fingerprint>
    kBatch,    // BATCH <id> <escaped payload>
    kRetract,  // RETRACT <id>
  };
  Kind kind = Kind::kHeader;
  int64_t id = 0;
  /// kHeader: format version / fingerprint.
  int64_t version = 0;
  uint32_t fingerprint = 0;
  /// kBatch: the unescaped Newick batch text.
  std::string payload;
};

/// Decodes one framed WAL line (without the trailing '\n'). Returns
/// false on any framing, CRC or field error.
bool ParseSvcWalLine(std::string_view line, SvcWalRecord* out);

/// Append side of the WAL. Movable; closes its descriptor on
/// destruction. Every append is durable (fsync'd) — the daemon never
/// acknowledges from a volatile buffer. Fault site svc.wal.append
/// simulates a failed append (kUnavailable).
class SvcWal {
 public:
  /// Opens `path` for appending, creating it if missing. Never
  /// truncates — the daemon trims a replayed journal to its valid
  /// prefix before reopening (see ReplaySvcWal).
  static Result<SvcWal> Open(const std::string& path);

  SvcWal() = default;
  SvcWal(SvcWal&& other) noexcept;
  SvcWal& operator=(SvcWal&& other) noexcept;
  SvcWal(const SvcWal&) = delete;
  SvcWal& operator=(const SvcWal&) = delete;
  ~SvcWal();

  Status AppendHeader(uint32_t options_fingerprint);
  Status AppendBatch(int64_t id, std::string_view payload);
  Status AppendRetract(int64_t id);

  bool valid() const { return fd_ >= 0; }

 private:
  Status Append(const std::string& body);

  int fd_ = -1;
};

/// Replays a WAL file. The first record must be a header carrying the
/// supported format version and `expected_fingerprint`, else
/// kFailedPrecondition. A torn or CRC-bad final line is dropped
/// silently (crash artifact of an unacknowledged append); any bad line
/// followed by more content is kCorruption; a missing file is
/// kNotFound. `valid_prefix`, when non-null, receives the byte length
/// of the decodable prefix — the daemon truncates the file to it so
/// new appends never land after torn bytes. The returned records
/// exclude the header.
Result<std::vector<SvcWalRecord>> ReplaySvcWal(
    const std::string& path, uint32_t expected_fingerprint,
    size_t* valid_prefix = nullptr);

}  // namespace cousins::svc

#endif  // COUSINS_SVC_WAL_H_
