// Write-ahead log of the resident mining daemon (svc/daemon.h): an
// append-only, CRC-framed journal of every acknowledged state mutation
// (ingest batches and retractions), using the same line framing and
// crash discipline as the shard-lease ledger (proc/lease_ledger.h).
//
// Every record is one line "BODY #crc32hex\n" appended with a single
// write(2) on an O_APPEND descriptor and fsync'd before the daemon
// acknowledges the request — so an acknowledged mutation is always
// durable, and the only crash artifact an append-only file can carry
// is a torn final line. Replay mirrors the lease-ledger semantics
// exactly: a torn or CRC-bad *final* line is dropped silently (it was
// never acknowledged), while bad bytes followed by more content mean
// the journal body itself is damaged and replay refuses with
// kCorruption rather than trusting any of it.
//
// Two formats share the framing:
//
//  * v1 — one unbounded file whose first record "SVCWAL 1 <fp>" pins
//    the format version and an options fingerprint. Read-only legacy:
//    svc/wal_store.h migrates a v1 file into the segmented layout on
//    first open.
//  * v2 — numbered segment files, each starting with "SVCSEG 2 <fp>
//    <seq>", listed by an atomically swapped manifest (wal_store.h).
//    This header owns the per-segment append handle and the record
//    codec; the store owns segments, rotation and compaction.
//
// Failure discipline (the fsyncgate rule): a failed write that may
// have landed bytes, or ANY failed fsync, poisons the segment handle —
// the durable contents of the fd are indeterminate, so the handle
// refuses every further append rather than retry-fsync-then-ack. The
// store recovers by rotating to a fresh segment or compacting; the
// poisoned file is never appended to again.

#ifndef COUSINS_SVC_WAL_H_
#define COUSINS_SVC_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/multi_tree_mining.h"
#include "util/result.h"
#include "util/status.h"

namespace cousins::svc {

/// Stable CRC32 fingerprint over every field of the mining options —
/// the WAL header value that ties a journal to the option set its
/// batches were tallied under.
uint32_t MiningOptionsFingerprint(const MultiTreeMiningOptions& options);

/// Escapes a Newick batch payload into a single WAL line fragment:
/// '\\' -> "\\\\", '\n' -> "\\n", '\r' -> "\\r". Lossless inverse
/// below; everything else passes through unchanged.
std::string EscapeWalPayload(std::string_view payload);

/// Inverse of EscapeWalPayload. Fails on a dangling or unknown escape.
Result<std::string> UnescapeWalPayload(std::string_view escaped);

/// Frames a record body as one journal line "BODY #crc32hex\n" —
/// shared by WAL records, segment headers and the store manifest.
std::string FrameWalLine(std::string_view body);

/// Inverse of FrameWalLine for one line (without the trailing '\n'):
/// checks the CRC suffix and yields the body. False on framing or CRC
/// mismatch.
bool UnframeWalLine(std::string_view line, std::string_view* body);

/// One parsed WAL record.
struct SvcWalRecord {
  enum class Kind : uint8_t {
    kHeader,     // SVCWAL <version> <options_fingerprint>       (v1)
    kSegHeader,  // SVCSEG <version> <options_fingerprint> <seq> (v2)
    kBatch,      // BATCH <id> <escaped payload>
    kRetract,    // RETRACT <id>
  };
  Kind kind = Kind::kHeader;
  /// kBatch/kRetract: the batch id. kSegHeader: the segment sequence
  /// number (must match the file name it was read from).
  int64_t id = 0;
  /// kHeader/kSegHeader: format version / options fingerprint.
  int64_t version = 0;
  uint32_t fingerprint = 0;
  /// kBatch: the unescaped Newick batch text.
  std::string payload;
};

/// Decodes one framed WAL line (without the trailing '\n'). Returns
/// false on any framing, CRC or field error.
bool ParseSvcWalLine(std::string_view line, SvcWalRecord* out);

/// Append side of one WAL file (a v2 segment, or a whole v1 journal).
/// Movable; closes its descriptor on destruction. Every append is
/// durable (fsync'd) — the daemon never acknowledges from a volatile
/// buffer. All file operations route through util/fs_ops.h: fault
/// families svc.wal.open, svc.wal.dirsync, svc.wal.append and
/// svc.wal.fsync (each with errno-typed sub-sites).
class SvcWal {
 public:
  /// Opens `path` for appending, creating it if missing (truncating
  /// when `truncate`, for a fresh segment). A newly created file is
  /// made durable by fsyncing its directory before any append — a
  /// crash right after creation must not lose the journal itself.
  /// `err`, when non-null, receives the errno class behind a failure
  /// (0 for none / a legacy boolean fault).
  static Result<SvcWal> Open(const std::string& path,
                             bool truncate = false, int* err = nullptr);

  SvcWal() = default;
  SvcWal(SvcWal&& other) noexcept;
  SvcWal& operator=(SvcWal&& other) noexcept;
  SvcWal(const SvcWal&) = delete;
  SvcWal& operator=(const SvcWal&) = delete;
  ~SvcWal();

  Status AppendHeader(uint32_t options_fingerprint);  // v1 header
  Status AppendSegHeader(uint32_t options_fingerprint, int64_t seq);
  Status AppendBatch(int64_t id, std::string_view payload);
  Status AppendRetract(int64_t id);

  bool valid() const { return fd_ >= 0; }
  /// True once a write may have landed partial bytes or an fsync
  /// failed: the durable contents are indeterminate and every further
  /// append is refused (kUnavailable). Only discarding the segment
  /// (rotation/compaction) recovers.
  bool poisoned() const { return poisoned_; }
  /// errno class of the last failed operation (0 = none, or a legacy
  /// boolean fault that failed before touching the file).
  int last_errno() const { return last_errno_; }
  /// Bytes acknowledged durable in this file (initial size at open
  /// plus every fsync'd append) — the store's rotation threshold input.
  int64_t acked_bytes() const { return acked_bytes_; }

 private:
  Status Append(const std::string& body);

  int fd_ = -1;
  bool poisoned_ = false;
  int last_errno_ = 0;
  int64_t acked_bytes_ = 0;
};

/// Replays a v1 WAL file. The first record must be a header carrying
/// the supported format version and `expected_fingerprint`, else
/// kFailedPrecondition. A torn or CRC-bad final line is dropped
/// silently (crash artifact of an unacknowledged append); any bad line
/// followed by more content is kCorruption; a missing file is
/// kNotFound. `valid_prefix`, when non-null, receives the byte length
/// of the decodable prefix — the caller truncates the file to it so
/// new appends never land after torn bytes. The returned records
/// exclude the header.
Result<std::vector<SvcWalRecord>> ReplaySvcWal(
    const std::string& path, uint32_t expected_fingerprint,
    size_t* valid_prefix = nullptr);

}  // namespace cousins::svc

#endif  // COUSINS_SVC_WAL_H_
