// RCU-style query snapshot of the resident miner. After every applied
// mutation (ingest batch, retraction, WAL replay) the daemon renders
// the miner's results into an immutable ServiceSnapshot and atomically
// publishes it; queries load the current pointer and read without any
// coordination with in-flight ingest — a query observes either the
// state before a batch or after it, never a half-folded table.
//
// The cell is a mutex-guarded shared_ptr rather than
// std::atomic<shared_ptr> for portability; the critical section is two
// pointer operations, so readers never block for longer than a swap.

#ifndef COUSINS_SVC_SNAPSHOT_H_
#define COUSINS_SVC_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace cousins::svc {

/// Immutable, pre-rendered view of the miner at one publish point.
struct ServiceSnapshot {
  /// Monotone publish counter (0 = the empty pre-ingest snapshot).
  int64_t version = 0;
  int64_t trees = 0;
  int64_t live_batches = 0;
  int64_t tallies = 0;
  /// Variant-matched CSV of the frequent pairs (what QUERY
  /// frequent-pairs returns, and the byte-comparison target of the
  /// crash drill).
  std::string frequent_csv;
  /// Same CSV shape over every tally regardless of min_support —
  /// QUERY support scans this.
  std::string all_csv;
};

/// The publish/load cell.
class SnapshotCell {
 public:
  SnapshotCell()
      : current_(std::make_shared<const ServiceSnapshot>()) {}

  std::shared_ptr<const ServiceSnapshot> Load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  void Store(std::shared_ptr<const ServiceSnapshot> next) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(next);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServiceSnapshot> current_;
};

}  // namespace cousins::svc

#endif  // COUSINS_SVC_SNAPSHOT_H_
