#include "svc/wal_store.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "util/fs_ops.h"
#include "util/strings.h"

namespace cousins::svc {
namespace {

constexpr int64_t kManifestVersion = 2;
constexpr int64_t kSegVersion = 2;

struct Manifest {
  int64_t compaction_id = 0;
  std::string snapshot;  // empty = none
  std::vector<std::string> segments;
};

bool ParseInt64(std::string_view token, int64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const std::string owned(token);
  *out = std::strtoll(owned.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// Parses the sequence number out of "seg-NNNNNN.wal" /
/// "snap-NNNNNN.ckpt"; -1 for anything else.
int64_t SeqOfName(std::string_view name) {
  std::string_view rest;
  if (StartsWith(name, "seg-") && name.size() > 8 &&
      name.substr(name.size() - 4) == ".wal") {
    rest = name.substr(4, name.size() - 8);
  } else if (StartsWith(name, "snap-") && name.size() > 10 &&
             name.substr(name.size() - 5) == ".ckpt") {
    rest = name.substr(5, name.size() - 10);
  } else {
    return -1;
  }
  int64_t seq = -1;
  if (!ParseInt64(rest, &seq)) return -1;
  return seq;
}

Status ParseManifest(const std::string& bytes, uint32_t fingerprint,
                     Manifest* out) {
  std::string_view line(bytes);
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  std::string_view body;
  if (line.find('\n') != std::string_view::npos ||
      !UnframeWalLine(line, &body)) {
    return Status::Corruption("corrupt WAL manifest");
  }
  std::vector<std::string_view> fields = Split(body, ' ');
  int64_t version = 0;
  int64_t manifest_fp = 0;
  if (fields.size() != 6 || fields[0] != "SVCMANIFEST" ||
      !ParseInt64(fields[1], &version) ||
      !ParseInt64(fields[2], &manifest_fp) ||
      !ParseInt64(fields[3], &out->compaction_id)) {
    return Status::Corruption("malformed WAL manifest record");
  }
  if (version != kManifestVersion) {
    return Status::FailedPrecondition(
        "WAL manifest has format version " + std::to_string(version) +
        ", expected " + std::to_string(kManifestVersion));
  }
  if (manifest_fp != static_cast<int64_t>(fingerprint)) {
    return Status::FailedPrecondition(
        "WAL was written under different mining options");
  }
  out->snapshot = fields[4] == "-" ? "" : std::string(fields[4]);
  out->segments.clear();
  if (fields[5] != "-") {
    for (std::string_view seg : Split(fields[5], ',')) {
      if (SeqOfName(seg) < 0) {
        return Status::Corruption("manifest lists malformed segment '" +
                                  std::string(seg) + "'");
      }
      out->segments.emplace_back(seg);
    }
  }
  if (out->segments.empty()) {
    return Status::Corruption("WAL manifest lists no segments");
  }
  return Status::OK();
}

/// Replays one segment's bytes. Torn bytes (an unterminated tail or a
/// bad final line) are legal only when `final` — only the last listed
/// segment was ever appended to. *valid_prefix receives the decodable
/// byte length; *saw_header reports whether the segment header landed
/// (a zero-byte or torn-header-only FINAL segment replays as empty —
/// the crash hit between creation and the header fsync).
Status ReplaySegmentBytes(const std::string& bytes, const std::string& name,
                          uint32_t fingerprint, int64_t expected_seq,
                          bool final, std::vector<SvcWalRecord>* records,
                          size_t* valid_prefix, bool* saw_header) {
  *valid_prefix = 0;
  *saw_header = false;
  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t nl = bytes.find('\n', pos);
    const bool unterminated = nl == std::string::npos;
    SvcWalRecord record;
    bool parsed = false;
    if (!unterminated) {
      parsed = ParseSvcWalLine(
          std::string_view(bytes.data() + pos, nl - pos), &record);
    }
    if (unterminated || !parsed) {
      const bool is_tail = unterminated || nl + 1 >= bytes.size();
      if (final && is_tail) {
        COUSINS_METRIC_COUNTER_ADD("svc.wal_torn_tails", 1);
        return Status::OK();
      }
      return Status::Corruption("corrupt WAL record in segment '" + name +
                                "'");
    }
    if (!*saw_header) {
      if (record.kind != SvcWalRecord::Kind::kSegHeader) {
        return Status::Corruption("segment '" + name +
                                  "' does not start with SVCSEG");
      }
      if (record.version != kSegVersion) {
        return Status::FailedPrecondition(
            "segment '" + name + "' has format version " +
            std::to_string(record.version) + ", expected " +
            std::to_string(kSegVersion));
      }
      if (record.fingerprint != fingerprint) {
        return Status::FailedPrecondition(
            "segment '" + name +
            "' was written under different mining options");
      }
      if (record.id != expected_seq) {
        return Status::Corruption(
            "segment '" + name + "' carries sequence number " +
            std::to_string(record.id) + ", expected " +
            std::to_string(expected_seq));
      }
      *saw_header = true;
    } else if (record.kind == SvcWalRecord::Kind::kSegHeader ||
               record.kind == SvcWalRecord::Kind::kHeader) {
      return Status::Corruption("duplicate header in segment '" + name +
                                "'");
    } else {
      records->push_back(std::move(record));
    }
    pos = nl + 1;
    *valid_prefix = pos;
  }
  return Status::OK();
}

}  // namespace

std::string WalStore::SegName(int64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06lld.wal",
                static_cast<long long>(seq));
  return buf;
}

std::string WalStore::SnapName(int64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap-%06lld.ckpt",
                static_cast<long long>(seq));
  return buf;
}

std::string WalStore::PathOf(const std::string& name) const {
  return dir_ + "/" + name;
}

void WalStore::NoteFailure(int err, bool poisoned_now) {
  if (err != 0 || poisoned_now) {
    degraded_ = true;
    last_errno_ = err;
  }
}

Status WalStore::CreateSegment(int64_t seq, SvcWal* out) {
  // O_TRUNC: the name may exist as an orphan of a failed rotation or
  // compaction — a fresh segment always starts from its header.
  int err = 0;
  Result<SvcWal> wal =
      SvcWal::Open(PathOf(SegName(seq)), /*truncate=*/true, &err);
  if (!wal.ok()) {
    NoteFailure(err, false);
    return wal.status();
  }
  Status header = wal->AppendSegHeader(fingerprint_, seq);
  if (!header.ok()) {
    NoteFailure(wal->last_errno(), false);
    return header;
  }
  *out = std::move(*wal);
  return Status::OK();
}

Status WalStore::CommitManifest(int64_t compaction_id,
                                const std::string& snapshot_name,
                                const std::vector<std::string>& segment_names,
                                int* err) {
  std::string body = "SVCMANIFEST " + std::to_string(kManifestVersion) +
                     " " + std::to_string(fingerprint_) + " " +
                     std::to_string(compaction_id) + " " +
                     (snapshot_name.empty() ? "-" : snapshot_name) + " ";
  for (size_t i = 0; i < segment_names.size(); ++i) {
    if (i > 0) body += ",";
    body += segment_names[i];
  }
  return WriteFileAtomic(PathOf("MANIFEST"), FrameWalLine(body),
                         "svc.manifest", err);
}

void WalStore::RetireExcept(const std::vector<std::string>& keep) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name == "MANIFEST") continue;
    const bool stale_tmp =
        name.size() > 4 && name.substr(name.size() - 4) == ".tmp";
    if (SeqOfName(name) < 0 && !stale_tmp) continue;
    bool kept = false;
    for (const std::string& k : keep) kept = kept || k == name;
    if (kept) continue;
    // Unreferenced by the manifest: failures are tolerated — the file
    // stays an inert orphan and the next open retries.
    (void)fs::Unlink("svc.wal.retire", entry.path().string());
  }
}

Status WalStore::Rotate() {
  const int64_t seq = next_seq_++;
  SvcWal fresh;
  COUSINS_RETURN_IF_ERROR(CreateSegment(seq, &fresh));
  // Segment + header are durable before the manifest names them: a
  // listed segment always exists with a valid header; a crash here
  // leaves only an orphan file.
  std::vector<std::string> names;
  names.reserve(sealed_.size() + 2);
  for (const Sealed& s : sealed_) names.push_back(SegName(s.seq));
  names.push_back(SegName(active_seq_));
  names.push_back(SegName(seq));
  int err = 0;
  Status committed =
      CommitManifest(compaction_id_, snapshot_name_, names, &err);
  if (!committed.ok()) {
    NoteFailure(err, false);
    return committed;
  }
  sealed_.push_back(Sealed{active_seq_, active_.acked_bytes()});
  sealed_bytes_ += active_.acked_bytes();
  active_ = std::move(fresh);
  active_seq_ = seq;
  COUSINS_METRIC_COUNTER_ADD("svc.wal_rotations", 1);
  return Status::OK();
}

Status WalStore::Append(bool retract, int64_t id,
                        std::string_view payload) {
  if (degraded_) {
    return Status::Unavailable(
        "WAL store degraded (" + fs::ErrnoName(last_errno_) +
        "); mutations refused until compaction reclaims the log");
  }
  if (active_.acked_bytes() >= config_.segment_bytes &&
      !active_.poisoned()) {
    COUSINS_RETURN_IF_ERROR(Rotate());
  }
  Status appended =
      retract ? active_.AppendRetract(id) : active_.AppendBatch(id, payload);
  if (!appended.ok()) {
    NoteFailure(active_.last_errno(), active_.poisoned());
  }
  return appended;
}

Status WalStore::AppendBatch(int64_t id, std::string_view payload) {
  return Append(/*retract=*/false, id, payload);
}

Status WalStore::AppendRetract(int64_t id) {
  return Append(/*retract=*/true, id, "");
}

Status WalStore::Compact(const std::string& snapshot_bytes) {
  const int64_t snap_seq = next_seq_++;
  const std::string snap = SnapName(snap_seq);
  int err = 0;
  Status wrote =
      WriteFileAtomic(PathOf(snap), snapshot_bytes, "svc.snapshot", &err);
  if (!wrote.ok()) {
    NoteFailure(err, false);
    return wrote;
  }
  const int64_t seg_seq = next_seq_++;
  SvcWal fresh;
  Status created = CreateSegment(seg_seq, &fresh);
  if (!created.ok()) {
    ::unlink(PathOf(snap).c_str());
    return created;
  }
  // The manifest swap is the commit point: before it, recovery sees
  // the old {snapshot, segments}; after it, exactly the new pair.
  Status committed =
      CommitManifest(compaction_id_ + 1, snap, {SegName(seg_seq)}, &err);
  if (!committed.ok()) {
    NoteFailure(err, false);
    ::unlink(PathOf(snap).c_str());
    ::unlink(PathOf(SegName(seg_seq)).c_str());
    return committed;
  }
  ++compaction_id_;
  snapshot_name_ = snap;
  sealed_.clear();
  sealed_bytes_ = 0;
  active_ = std::move(fresh);
  active_seq_ = seg_seq;
  // Compaction is the sanctioned exit from poisoning and degraded
  // mode: the poisoned segment is no longer referenced by anything.
  degraded_ = false;
  last_errno_ = 0;
  RetireExcept({snap, SegName(seg_seq)});
  COUSINS_METRIC_COUNTER_ADD("svc.wal_compactions", 1);
  return Status::OK();
}

Result<WalStore> WalStore::Open(const std::string& dir,
                                uint32_t fingerprint,
                                const WalStoreConfig& config,
                                WalRecovery* recovery) {
  namespace fsys = std::filesystem;
  std::error_code ec;
  if (!fsys::exists(dir, ec)) {
    // A missing store with a complete "<dir>.migrate" sibling is an
    // interrupted v1 migration caught between unlink(v1) and the
    // directory rename: finish the rename and open normally.
    const std::string migrate = dir + ".migrate";
    if (fsys::exists(migrate + "/MANIFEST", ec)) {
      COUSINS_RETURN_IF_ERROR(fs::Rename("svc.wal.migrate", migrate, dir));
      COUSINS_RETURN_IF_ERROR(fs::FsyncDirOf("svc.wal.dirsync", dir));
    }
  }
  if (!fsys::exists(dir, ec)) {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Unavailable("cannot create WAL directory '" + dir +
                                 "' (" + fs::ErrnoName(errno) + ")");
    }
    COUSINS_RETURN_IF_ERROR(fs::FsyncDirOf("svc.wal.dirsync", dir));
  }

  WalStore store;
  store.dir_ = dir;
  store.fingerprint_ = fingerprint;
  store.config_ = config;

  // Seed the sequence counter past every file present — including
  // orphans of interrupted rotations/compactions — so new names never
  // collide with bytes already on disk.
  int64_t max_seq = 0;
  for (const auto& entry : fsys::directory_iterator(dir, ec)) {
    const int64_t seq = SeqOfName(entry.path().filename().string());
    if (seq > max_seq) max_seq = seq;
  }
  store.next_seq_ = max_seq + 1;

  Result<std::string> manifest_bytes =
      ReadFileToString(store.PathOf("MANIFEST"), "svc.manifest.read");
  if (!manifest_bytes.ok()) {
    if (manifest_bytes.status().code() != StatusCode::kNotFound) {
      return manifest_bytes.status();
    }
    // Fresh (or partially initialized) store: initialize from scratch.
    // Idempotent — a crash mid-initialization re-runs it; nothing was
    // ever acked without a committed manifest.
    const int64_t seq = store.next_seq_++;
    COUSINS_RETURN_IF_ERROR(store.CreateSegment(seq, &store.active_));
    store.active_seq_ = seq;
    int err = 0;
    COUSINS_RETURN_IF_ERROR(
        store.CommitManifest(0, "", {SegName(seq)}, &err));
    store.RetireExcept({SegName(seq)});
    if (recovery != nullptr) recovery->segments = 1;
    return store;
  }

  Manifest manifest;
  COUSINS_RETURN_IF_ERROR(
      ParseManifest(*manifest_bytes, fingerprint, &manifest));
  store.compaction_id_ = manifest.compaction_id;
  store.snapshot_name_ = manifest.snapshot;
  if (!manifest.snapshot.empty() && recovery != nullptr) {
    Result<std::string> snapshot = ReadFileToString(
        store.PathOf(manifest.snapshot), "svc.snapshot.read");
    if (!snapshot.ok()) {
      if (snapshot.status().code() == StatusCode::kNotFound) {
        return Status::Corruption("manifest anchors missing snapshot '" +
                                  manifest.snapshot + "'");
      }
      return snapshot.status();
    }
    recovery->snapshot_bytes = *std::move(snapshot);
  }

  std::vector<SvcWalRecord> tail;
  bool need_header = false;
  for (size_t i = 0; i < manifest.segments.size(); ++i) {
    const std::string& name = manifest.segments[i];
    const bool final = i + 1 == manifest.segments.size();
    const std::string path = store.PathOf(name);
    const int64_t seq = SeqOfName(name);
    Result<std::string> bytes = ReadFileToString(path, "svc.wal.read");
    if (!bytes.ok()) {
      if (bytes.status().code() == StatusCode::kNotFound) {
        return Status::Corruption("manifest lists missing segment '" +
                                  name + "'");
      }
      return bytes.status();
    }
    size_t valid_prefix = 0;
    bool saw_header = false;
    COUSINS_RETURN_IF_ERROR(ReplaySegmentBytes(*bytes, name, fingerprint,
                                               seq, final, &tail,
                                               &valid_prefix, &saw_header));
    if (!final) {
      // Sealed segments were fsync'd whole before the manifest listed
      // a successor; anything undecodable in one is real damage.
      if (!saw_header || valid_prefix != bytes->size()) {
        return Status::Corruption("sealed segment '" + name +
                                  "' is damaged");
      }
      store.sealed_.push_back(
          Sealed{seq, static_cast<int64_t>(bytes->size())});
      store.sealed_bytes_ += static_cast<int64_t>(bytes->size());
      continue;
    }
    // Final segment: trim any torn tail so new appends never land
    // after junk bytes. A segment whose header never landed (zero-byte
    // file, or a torn header-only line) replays as empty and gets a
    // fresh header on reopen.
    if (valid_prefix != bytes->size()) {
      COUSINS_RETURN_IF_ERROR(
          fs::Truncate("svc.wal.trim", path,
                       static_cast<int64_t>(valid_prefix)));
    }
    need_header = !saw_header;
    store.active_seq_ = seq;
  }
  COUSINS_ASSIGN_OR_RETURN(
      store.active_,
      SvcWal::Open(store.PathOf(SegName(store.active_seq_)),
                   /*truncate=*/false));
  if (need_header) {
    COUSINS_RETURN_IF_ERROR(
        store.active_.AppendSegHeader(fingerprint, store.active_seq_));
  }
  std::vector<std::string> keep = manifest.segments;
  if (!manifest.snapshot.empty()) keep.push_back(manifest.snapshot);
  store.RetireExcept(keep);
  if (recovery != nullptr) {
    recovery->replayed_records = static_cast<int64_t>(tail.size());
    recovery->segments = static_cast<int64_t>(manifest.segments.size());
    recovery->tail = std::move(tail);
  }
  return store;
}

Result<WalStore> WalStore::MigrateFromV1(const std::string& path,
                                         uint32_t fingerprint,
                                         const WalStoreConfig& config,
                                         const std::string& snapshot_bytes) {
  namespace fsys = std::filesystem;
  const std::string migrate = path + ".migrate";
  // The v1 file is still the source of truth: any stale half-built
  // migration directory is discarded and rebuilt from scratch.
  std::error_code ec;
  fsys::remove_all(migrate, ec);
  if (::mkdir(migrate.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable("cannot create migration directory '" +
                               migrate + "' (" + fs::ErrnoName(errno) +
                               ")");
  }
  COUSINS_RETURN_IF_ERROR(fs::FsyncDirOf("svc.wal.dirsync", migrate));

  WalStore store;
  store.dir_ = migrate;
  store.fingerprint_ = fingerprint;
  store.config_ = config;
  const int64_t snap_seq = store.next_seq_++;
  const std::string snap = SnapName(snap_seq);
  int err = 0;
  COUSINS_RETURN_IF_ERROR(WriteFileAtomic(store.PathOf(snap),
                                          snapshot_bytes, "svc.snapshot",
                                          &err));
  const int64_t seg_seq = store.next_seq_++;
  COUSINS_RETURN_IF_ERROR(store.CreateSegment(seg_seq, &store.active_));
  store.active_seq_ = seg_seq;
  COUSINS_RETURN_IF_ERROR(
      store.CommitManifest(1, snap, {SegName(seg_seq)}, &err));
  store.compaction_id_ = 1;
  store.snapshot_name_ = snap;

  // The migration directory is complete and durable; now retire the
  // v1 file and rename the directory over its path. Crash windows:
  // before the unlink is durable the v1 file survives and migration
  // re-runs; after it, Open finds "<path>.migrate" and finishes the
  // rename.
  Status unlinked = fs::Unlink("svc.wal.retire", path);
  if (!unlinked.ok() && unlinked.code() != StatusCode::kNotFound) {
    return unlinked;
  }
  COUSINS_RETURN_IF_ERROR(fs::FsyncDirOf("svc.wal.dirsync", path));
  COUSINS_RETURN_IF_ERROR(fs::Rename("svc.wal.migrate", migrate, path));
  COUSINS_RETURN_IF_ERROR(fs::FsyncDirOf("svc.wal.dirsync", path));
  // The open segment fd tracks its inode, not its path: the rename of
  // the parent directory leaves it valid.
  store.dir_ = path;
  COUSINS_METRIC_COUNTER_ADD("svc.wal_migrations", 1);
  return store;
}

}  // namespace cousins::svc
