#include "svc/protocol.h"

#include <cctype>
#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace cousins::svc {
namespace {

void PutU32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("frame write failed");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. Returns 1 on success, 0 on EOF before
/// the first byte, -1 (with *error set) on stream error or mid-read
/// EOF.
int ReadAll(int fd, char* data, size_t size, Status* error) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Status::Unavailable("frame read failed");
      return -1;
    }
    if (n == 0) {
      if (got == 0) return 0;
      *error = Status::Corruption("torn frame: stream ended mid-frame");
      return -1;
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

Status WriteFrame(int fd, std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame body exceeds kMaxFrameBytes");
  }
  if (fault::Fired("svc.write")) {
    COUSINS_METRIC_COUNTER_ADD("svc.write_failures", 1);
    return Status::Unavailable("injected fault at svc.write");
  }
  char header[8];
  PutU32(header, static_cast<uint32_t>(body.size()));
  PutU32(header + 4, internal::Crc32(body.data(), body.size()));
  // Header and body in one buffer, one write path: interleaving with a
  // concurrent writer on the same fd is not supported (each connection
  // has one handler thread).
  std::string frame;
  frame.reserve(sizeof(header) + body.size());
  frame.append(header, sizeof(header));
  frame.append(body);
  return WriteAll(fd, frame.data(), frame.size());
}

Result<bool> ReadFrame(int fd, std::string* body) {
  if (fault::Fired("svc.read")) {
    COUSINS_METRIC_COUNTER_ADD("svc.read_failures", 1);
    return Status::Unavailable("injected fault at svc.read");
  }
  char header[8];
  Status error;
  const int rc = ReadAll(fd, header, sizeof(header), &error);
  if (rc == 0) return false;
  if (rc < 0) return error;
  const uint32_t length = GetU32(header);
  const uint32_t crc = GetU32(header + 4);
  if (length > kMaxFrameBytes) {
    return Status::Corruption("frame length exceeds kMaxFrameBytes");
  }
  body->resize(length);
  if (length > 0) {
    const int rc_body = ReadAll(fd, body->data(), length, &error);
    if (rc_body <= 0) {
      return rc_body == 0
                 ? Status::Corruption("torn frame: stream ended mid-frame")
                 : error;
    }
  }
  if (internal::Crc32(body->data(), body->size()) != crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  return true;
}

Result<Request> ParseRequest(std::string_view body) {
  const size_t nl = body.find('\n');
  const std::string_view first =
      nl == std::string_view::npos ? body : body.substr(0, nl);
  Request request;
  if (nl != std::string_view::npos) {
    request.payload.assign(body.substr(nl + 1));
  }
  for (std::string_view token : Split(StripWhitespace(first), ' ')) {
    if (token.empty()) continue;
    if (request.verb.empty()) {
      request.verb.assign(token);
      for (char& c : request.verb) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
    } else {
      request.args.emplace_back(token);
    }
  }
  if (request.verb.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  return request;
}

std::string RenderResponse(const Response& response) {
  std::string out;
  if (response.status.ok()) {
    out = "OK";
  } else {
    out = "ERR ";
    out += StatusCodeName(response.status.code());
    if (response.retry_after_ms > 0) {
      out += " retry-after-ms=" + std::to_string(response.retry_after_ms);
    }
    // The message rides the status line; real newlines would shear the
    // line/payload split.
    std::string message(response.status.message());
    for (char& c : message) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    if (!message.empty()) out += " " + message;
  }
  out += "\n";
  out += response.payload;
  return out;
}

Result<ParsedResponse> ParseResponse(std::string_view body) {
  const size_t nl = body.find('\n');
  if (nl == std::string_view::npos) {
    return Status::Corruption("response has no status line");
  }
  const std::string_view first = body.substr(0, nl);
  ParsedResponse parsed;
  parsed.payload.assign(body.substr(nl + 1));
  if (first == "OK" || StartsWith(first, "OK ")) {
    parsed.ok = true;
    parsed.code_name = "OK";
    return parsed;
  }
  if (!StartsWith(first, "ERR ")) {
    return Status::Corruption("malformed response status line");
  }
  std::string_view rest = first.substr(4);
  const size_t sp = rest.find(' ');
  parsed.code_name.assign(sp == std::string_view::npos ? rest
                                                       : rest.substr(0, sp));
  if (parsed.code_name.empty()) {
    return Status::Corruption("malformed response status line");
  }
  rest = sp == std::string_view::npos ? std::string_view()
                                      : rest.substr(sp + 1);
  constexpr std::string_view kRetryPrefix = "retry-after-ms=";
  if (StartsWith(rest, kRetryPrefix)) {
    size_t end = rest.find(' ');
    const std::string token(
        rest.substr(kRetryPrefix.size(),
                    (end == std::string_view::npos ? rest.size() : end) -
                        kRetryPrefix.size()));
    parsed.retry_after_ms = std::atoi(token.c_str());
    rest = end == std::string_view::npos ? std::string_view()
                                         : rest.substr(end + 1);
  }
  parsed.message.assign(rest);
  return parsed;
}

}  // namespace cousins::svc
