#include "svc/daemon.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/checkpoint.h"
#include "core/item_io.h"
#include "obs/metrics.h"
#include "tree/newick.h"
#include "util/fault_injection.h"
#include "util/fs_ops.h"
#include "util/strings.h"

namespace cousins::svc {
namespace {

constexpr std::string_view kDeadlineArgPrefix = "deadline-ms=";

/// How long a client should back off before retrying a mutation shed
/// by read-only mode — compaction (the exit) is operator-paced.
constexpr int64_t kReadOnlyRetryMs = 1000;

Response ErrorResponse(Status status) {
  Response response;
  response.status = std::move(status);
  return response;
}

Response ShedResponse(const AdmissionDecision& decision) {
  Response response;
  response.status = Status::Unavailable("request shed: " + decision.reason);
  response.retry_after_ms = decision.retry_after_ms;
  return response;
}

Response ReadOnlyResponse(const std::string& reason) {
  Response response;
  response.status = Status::Unavailable(
      "service is read-only (" + reason +
      "); mutations shed until compaction reclaims storage");
  response.retry_after_ms = kReadOnlyRetryMs;
  return response;
}

/// The lenient-mode quarantine source name of a batch — batch-local,
/// so replayed re-mining reproduces byte-identical ledger entries.
std::string BatchSource(int64_t batch_id) {
  return "batch:" + std::to_string(batch_id);
}

// --- service-snapshot codec ------------------------------------------
//
// The opaque blob WalStore anchors a compaction on: magic "SVCSNAP1",
// then little-endian fields
//   u32 fingerprint, i64 next_batch_id,
//   u64 miner-checkpoint length + bytes (core checkpoint codec,
//       quarantine ledger included),
//   u64 batch count, then per live batch
//     i64 id, u8 retained, i32 trees, [u64 payload length + bytes
//     when retained],
// and a trailing u32 CRC32 over everything before it.

constexpr std::string_view kSnapMagic = "SVCSNAP1";

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}
void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}
void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}
void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

/// Bounds-checked reader over the snapshot body (CRC already checked;
/// kept as defense in depth against codec bugs).
struct SnapReader {
  const char* data;
  size_t size;
  size_t pos = 0;

  Status Need(size_t n) {
    if (pos + n > size) {
      return Status::Corruption("truncated service snapshot body");
    }
    return Status::OK();
  }
  Status ReadU32(uint32_t* v) {
    COUSINS_RETURN_IF_ERROR(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(
                static_cast<unsigned char>(data[pos + i]))
            << (8 * i);
    }
    pos += 4;
    return Status::OK();
  }
  Status ReadU64(uint64_t* v) {
    COUSINS_RETURN_IF_ERROR(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(
                static_cast<unsigned char>(data[pos + i]))
            << (8 * i);
    }
    pos += 8;
    return Status::OK();
  }
  Status ReadI64(int64_t* v) {
    uint64_t u = 0;
    COUSINS_RETURN_IF_ERROR(ReadU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }
  Status ReadI32(int32_t* v) {
    uint32_t u = 0;
    COUSINS_RETURN_IF_ERROR(ReadU32(&u));
    *v = static_cast<int32_t>(u);
    return Status::OK();
  }
  Status ReadU8(uint8_t* v) {
    COUSINS_RETURN_IF_ERROR(Need(1));
    *v = static_cast<unsigned char>(data[pos++]);
    return Status::OK();
  }
  Status ReadBytes(size_t n, std::string* out) {
    COUSINS_RETURN_IF_ERROR(Need(n));
    out->assign(data + pos, n);
    pos += n;
    return Status::OK();
  }
};

/// Minimal JSON string escape for the health report's read-only
/// reason (our own status messages: quotes and backslashes only).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

CousinService::CousinService(const ServiceConfig& config)
    : config_(config),
      // The lenient flag changes which entries of a batch tally, so it
      // is part of the WAL identity alongside the mining options.
      fingerprint_(MiningOptionsFingerprint(config.mining) ^
                   (config.lenient ? 0x5CACADAFu : 0u)),
      labels_(std::make_shared<LabelTable>()),
      miner_(config.mining),
      admission_(config.admission) {
  miner_.BindLabels(labels_);
}

Result<std::unique_ptr<CousinService>> CousinService::Start(
    const ServiceConfig& config) {
  if (config.wal_path.empty()) {
    return Status::InvalidArgument("service requires a WAL path");
  }
  COUSINS_RETURN_IF_ERROR(ValidateVariantOptions(config.mining));
  std::unique_ptr<CousinService> service(new CousinService(config));
  const auto recovery_start = std::chrono::steady_clock::now();

  WalStoreConfig wal_config;
  wal_config.segment_bytes = config.wal_segment_bytes;

  struct stat st;
  const bool v1_file = ::stat(config.wal_path.c_str(), &st) == 0 &&
                       S_ISREG(st.st_mode);
  if (v1_file) {
    // A v1 single-file WAL from an older build: replay it fully (it
    // has no snapshot anchor), then migrate it in place into the
    // segmented layout — its replayed state becomes the first
    // snapshot, and the v1 file is retired only once the new store is
    // durable.
    COUSINS_ASSIGN_OR_RETURN(
        std::vector<SvcWalRecord> replay,
        ReplaySvcWal(config.wal_path, service->fingerprint_));
    for (const SvcWalRecord& record : replay) {
      COUSINS_RETURN_IF_ERROR(service->ApplyReplayRecord(record));
    }
    service->replayed_records_ = static_cast<int64_t>(replay.size());
    COUSINS_ASSIGN_OR_RETURN(
        service->store_,
        WalStore::MigrateFromV1(config.wal_path, service->fingerprint_,
                                wal_config,
                                service->SerializeServiceSnapshot()));
  } else {
    WalRecovery recovery;
    COUSINS_ASSIGN_OR_RETURN(
        service->store_,
        WalStore::Open(config.wal_path, service->fingerprint_, wal_config,
                       &recovery));
    if (!recovery.snapshot_bytes.empty()) {
      COUSINS_RETURN_IF_ERROR(
          service->RestoreServiceSnapshot(recovery.snapshot_bytes));
    }
    for (const SvcWalRecord& record : recovery.tail) {
      COUSINS_RETURN_IF_ERROR(service->ApplyReplayRecord(record));
    }
    service->replayed_records_ = recovery.replayed_records;
  }
  service->recovery_ms_ =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - recovery_start)
          .count();
  service->UpdateStorageStats();
  COUSINS_METRIC_COUNTER_ADD("svc.replayed_batches",
                             service->replayed_batches_);
  COUSINS_METRIC_COUNTER_ADD("svc.replayed_records",
                             service->replayed_records_);
  COUSINS_RETURN_IF_ERROR(service->PublishSnapshot());
  return service;
}

std::string CousinService::SerializeServiceSnapshot() const {
  std::string out(kSnapMagic);
  PutU32(fingerprint_, &out);
  PutI64(next_batch_id_, &out);
  const std::string ckpt = miner_.SerializeCheckpoint(&quarantine_);
  PutU64(ckpt.size(), &out);
  out += ckpt;
  PutU64(batches_.size(), &out);
  for (const auto& [id, info] : batches_) {
    PutI64(id, &out);
    out.push_back(info.retained ? 1 : 0);
    PutI32(info.trees, &out);
    if (info.retained) {
      PutU64(info.payload.size(), &out);
      out += info.payload;
    }
  }
  PutU32(internal::Crc32(out.data(), out.size()), &out);
  return out;
}

Status CousinService::RestoreServiceSnapshot(const std::string& bytes) {
  if (bytes.size() < kSnapMagic.size() + 4 ||
      std::string_view(bytes).substr(0, kSnapMagic.size()) != kSnapMagic) {
    return Status::Corruption("service snapshot magic mismatch");
  }
  const size_t body_end = bytes.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(
                      static_cast<unsigned char>(bytes[body_end + i]))
                  << (8 * i);
  }
  if (internal::Crc32(bytes.data(), body_end) != stored_crc) {
    return Status::Corruption("service snapshot CRC mismatch");
  }
  SnapReader reader{bytes.data() + kSnapMagic.size(),
                    body_end - kSnapMagic.size()};
  uint32_t fp = 0;
  COUSINS_RETURN_IF_ERROR(reader.ReadU32(&fp));
  if (fp != fingerprint_) {
    return Status::FailedPrecondition(
        "service snapshot was written under different mining options");
  }
  int64_t next_id = 0;
  COUSINS_RETURN_IF_ERROR(reader.ReadI64(&next_id));
  uint64_t ckpt_len = 0;
  COUSINS_RETURN_IF_ERROR(reader.ReadU64(&ckpt_len));
  std::string ckpt;
  COUSINS_RETURN_IF_ERROR(reader.ReadBytes(ckpt_len, &ckpt));
  COUSINS_ASSIGN_OR_RETURN(
      MultiTreeMiner restored,
      MultiTreeMiner::RestoreFromCheckpoint(ckpt, config_.mining, labels_,
                                            &quarantine_));
  miner_ = std::move(restored);
  uint64_t count = 0;
  COUSINS_RETURN_IF_ERROR(reader.ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    int64_t id = 0;
    uint8_t retained = 0;
    BatchInfo info;
    COUSINS_RETURN_IF_ERROR(reader.ReadI64(&id));
    COUSINS_RETURN_IF_ERROR(reader.ReadU8(&retained));
    COUSINS_RETURN_IF_ERROR(reader.ReadI32(&info.trees));
    info.retained = retained != 0;
    if (info.retained) {
      uint64_t len = 0;
      COUSINS_RETURN_IF_ERROR(reader.ReadU64(&len));
      COUSINS_RETURN_IF_ERROR(reader.ReadBytes(len, &info.payload));
    }
    batches_[id] = std::move(info);
  }
  if (reader.pos != reader.size) {
    return Status::Corruption("trailing bytes after service snapshot");
  }
  next_batch_id_ = next_id;
  // Snapshot-restored batches count as replayed state for the health
  // report's svc.replayed_batches; the storage section's
  // replayed_records tracks only the post-snapshot tail.
  replayed_batches_ += static_cast<int64_t>(count);
  return Status::OK();
}

MiningContext CousinService::ContextFor(const Request& request) const {
  MiningContext context;
  // The client's deadline-ms and the server ceiling combine tighter-
  // wins; a client asking for 0 ms is already expired (the first
  // governance checkpoint trips), it is not "no deadline".
  int64_t deadline_ms = -1;
  for (const std::string& arg : request.args) {
    if (StartsWith(arg, kDeadlineArgPrefix)) {
      const int64_t client_ms =
          std::atoll(arg.c_str() + kDeadlineArgPrefix.size());
      if (client_ms >= 0 && (deadline_ms < 0 || client_ms < deadline_ms)) {
        deadline_ms = client_ms;
      }
    }
  }
  if (config_.max_request_ms > 0 &&
      (deadline_ms < 0 || config_.max_request_ms < deadline_ms)) {
    deadline_ms = config_.max_request_ms;
  }
  if (deadline_ms >= 0) {
    context.set_timeout(std::chrono::milliseconds(deadline_ms));
  }
  context.set_budget(config_.budget);
  return context;
}

Status CousinService::MineBatch(int64_t batch_id, const std::string& payload,
                                const MiningContext& context,
                                MultiTreeMiner* staging,
                                QuarantineLedger* quarantine) {
  staging->BindLabels(labels_);
  if (config_.lenient) {
    COUSINS_ASSIGN_OR_RETURN(
        LenientForest forest,
        ParseNewickForestLenient(payload, labels_, config_.parse_limits));
    const std::string source = BatchSource(batch_id);
    for (const ForestEntryError& error : forest.errors) {
      QuarantineParseError(source, error, quarantine);
    }
    DegradedModeConfig degraded;
    degraded.lenient = true;
    degraded.ledger = quarantine;
    degraded.source_name = source;
    for (size_t i = 0; i < forest.trees.size(); ++i) {
      COUSINS_RETURN_IF_ERROR(staging->AddTreeDegraded(
          forest.trees[i], forest.source_indices[i], context, degraded));
    }
    return Status::OK();
  }
  COUSINS_ASSIGN_OR_RETURN(
      std::vector<Tree> trees,
      ParseNewickForest(payload, labels_, config_.parse_limits));
  for (const Tree& tree : trees) {
    COUSINS_RETURN_IF_ERROR(staging->AddTreeGoverned(tree, context));
  }
  return Status::OK();
}

Status CousinService::ApplyReplayRecord(const SvcWalRecord& record) {
  if (record.kind == SvcWalRecord::Kind::kBatch) {
    MultiTreeMiner staging(config_.mining);
    COUSINS_RETURN_IF_ERROR(MineBatch(record.id, record.payload,
                                      MiningContext::Unlimited(), &staging,
                                      &quarantine_));
    miner_.MergeFrom(staging);
    batches_[record.id] =
        BatchInfo{record.payload, staging.tree_count()};
    if (record.id >= next_batch_id_) next_batch_id_ = record.id + 1;
    ++replayed_batches_;
    return Status::OK();
  }
  if (record.kind == SvcWalRecord::Kind::kRetract) {
    auto it = batches_.find(record.id);
    if (it == batches_.end()) {
      return Status::Corruption(
          "WAL retracts unknown batch " + std::to_string(record.id));
    }
    if (!it->second.retained) {
      // The daemon refuses RETRACT of a batch past the retention
      // horizon, so a tail retract of one can only be damage.
      return Status::Corruption(
          "WAL retracts batch " + std::to_string(record.id) +
          " whose payload was compacted away");
    }
    MultiTreeMiner staging(config_.mining);
    QuarantineLedger scratch;
    COUSINS_RETURN_IF_ERROR(MineBatch(record.id, it->second.payload,
                                      MiningContext::Unlimited(), &staging,
                                      &scratch));
    miner_.SubtractFrom(staging);
    batches_.erase(it);
    return Status::OK();
  }
  return Status::Corruption("unexpected WAL record kind");
}

Status CousinService::PublishSnapshot() {
  const auto start = std::chrono::steady_clock::now();
  if (fault::Fired("svc.swap")) {
    COUSINS_METRIC_COUNTER_ADD("svc.swap_failures", 1);
    return Status::Unavailable(
        "injected fault at svc.swap; state is durable and will surface "
        "on the next publish or restart");
  }
  auto next = std::make_shared<ServiceSnapshot>();
  next->version = snapshot_version_.fetch_add(1,
                                              std::memory_order_relaxed) +
                  1;
  next->trees = miner_.tree_count();
  next->live_batches = static_cast<int64_t>(batches_.size());
  next->tallies = miner_.accumulator_stats().tally_entries;
  switch (config_.mining.variant) {
    case MinerVariant::kCousin:
    case MinerVariant::kFreeTree:
      next->frequent_csv =
          FrequentPairsToCsv(*labels_, miner_.FrequentPairs());
      next->all_csv = FrequentPairsToCsv(*labels_, miner_.AllTallies());
      break;
    case MinerVariant::kGeneralized:
      next->frequent_csv = GeneralizedPairsToCsv(
          *labels_, miner_.FrequentGeneralizedPairs());
      next->all_csv =
          GeneralizedPairsToCsv(*labels_, miner_.AllGeneralizedTallies());
      break;
    case MinerVariant::kWeighted:
      next->frequent_csv =
          WeightedPairsToCsv(*labels_, miner_.FrequentWeightedPairs());
      next->all_csv =
          WeightedPairsToCsv(*labels_, miner_.AllWeightedTallies());
      break;
  }
  snapshot_cell_.Store(std::move(next));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  COUSINS_METRIC_COUNTER_ADD("svc.swaps", 1);
  COUSINS_METRIC_HISTOGRAM_RECORD(
      "svc.swap_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count());
  return Status::OK();
}

void CousinService::EnterReadOnly(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(reason_mu_);
    read_only_reason_ = reason;
  }
  if (!read_only_.exchange(true, std::memory_order_relaxed)) {
    COUSINS_METRIC_COUNTER_ADD("svc.read_only_entries", 1);
  }
}

void CousinService::UpdateStorageStats() {
  storage_segments_.store(store_.segment_count(),
                          std::memory_order_relaxed);
  storage_wal_bytes_.store(store_.total_bytes(),
                           std::memory_order_relaxed);
  storage_sealed_bytes_.store(store_.sealed_bytes(),
                              std::memory_order_relaxed);
  storage_compaction_id_.store(store_.last_compaction_id(),
                               std::memory_order_relaxed);
}

std::string CousinService::ReadOnlyReason() const {
  std::lock_guard<std::mutex> lock(reason_mu_);
  return read_only_reason_;
}

Response CousinService::HandleIngest(const Request& request) {
  if (draining()) {
    return ErrorResponse(
        Status::Unavailable("service is draining; not accepting ingest"));
  }
  if (read_only()) return ReadOnlyResponse(ReadOnlyReason());
  if (static_cast<int64_t>(request.payload.size()) >
      config_.max_batch_bytes) {
    return ErrorResponse(Status::InvalidArgument(
        "batch exceeds max_batch_bytes (" +
        std::to_string(request.payload.size()) + " > " +
        std::to_string(config_.max_batch_bytes) + ")"));
  }
  AdmissionSlot slot(admission_,
                     static_cast<int64_t>(request.payload.size()));
  if (!slot.admitted()) return ShedResponse(slot.decision());
  const MiningContext context = ContextFor(request);

  std::lock_guard<std::mutex> lock(mutate_mu_);
  const int64_t id = next_batch_id_;
  MultiTreeMiner staging(config_.mining);
  QuarantineLedger batch_quarantine;
  Status mined =
      MineBatch(id, request.payload, context, &staging, &batch_quarantine);
  if (!mined.ok()) {
    // Staging discarded: a rejected or tripped batch leaves the
    // resident tallies, the WAL and the quarantine ledger untouched.
    COUSINS_METRIC_COUNTER_ADD("svc.ingest_rejected", 1);
    return ErrorResponse(std::move(mined));
  }
  Status appended = store_.AppendBatch(id, request.payload);
  if (!appended.ok()) {
    COUSINS_METRIC_COUNTER_ADD("svc.ingest_rejected", 1);
    // The id was never acked, so it is not consumed — and when the
    // failure carried an errno class (real disk error or typed fault)
    // the store is degraded: flip read-only so no later ingest can
    // reuse the id against indeterminate durable bytes. A plain
    // injected fault (no errno, nothing landed) stays retryable in
    // place.
    if (store_.degraded()) {
      EnterReadOnly(appended.message());
      UpdateStorageStats();
      Response response = ErrorResponse(std::move(appended));
      response.retry_after_ms = kReadOnlyRetryMs;
      return response;
    }
    return ErrorResponse(std::move(appended));
  }
  // Point of no return: the batch is durable. Everything after must
  // succeed or leave a state the WAL replay converges to.
  for (QuarantineEntry& entry : batch_quarantine.Entries()) {
    quarantine_.Add(std::move(entry));
  }
  const int trees = staging.tree_count();
  miner_.MergeFrom(staging);
  batches_[id] = BatchInfo{request.payload, trees};
  next_batch_id_ = id + 1;
  COUSINS_METRIC_COUNTER_ADD("svc.ingest_batches", 1);
  COUSINS_METRIC_COUNTER_ADD("svc.ingest_trees", trees);
  if (config_.wal_compact_bytes > 0 &&
      store_.sealed_bytes() >= config_.wal_compact_bytes) {
    // Auto-compaction keeps recovery bounded without an operator in
    // the loop; a failure is non-fatal — the ingest itself is durable
    // and a later COMPACT (or the next threshold crossing) retries.
    Status compacted = CompactLocked();
    if (!compacted.ok()) {
      COUSINS_METRIC_COUNTER_ADD("svc.auto_compact_failures", 1);
    }
  }
  UpdateStorageStats();
  Status published = PublishSnapshot();
  if (!published.ok()) return ErrorResponse(std::move(published));
  Response response;
  response.payload = "id=" + std::to_string(id) +
                     " trees=" + std::to_string(trees) + "\n";
  return response;
}

Response CousinService::HandleRetract(const Request& request) {
  if (draining()) {
    return ErrorResponse(
        Status::Unavailable("service is draining; not accepting retract"));
  }
  if (read_only()) return ReadOnlyResponse(ReadOnlyReason());
  if (request.args.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("RETRACT requires a batch id"));
  }
  AdmissionSlot slot(admission_, 0);
  if (!slot.admitted()) return ShedResponse(slot.decision());
  const int64_t id = std::atoll(request.args[0].c_str());
  const MiningContext context = ContextFor(request);

  std::lock_guard<std::mutex> lock(mutate_mu_);
  auto it = batches_.find(id);
  if (it == batches_.end()) {
    return ErrorResponse(Status::NotFound(
        "batch " + std::to_string(id) + " is not live (never ingested, "
        "or already retracted)"));
  }
  if (!it->second.retained) {
    return ErrorResponse(Status::FailedPrecondition(
        "batch " + std::to_string(id) +
        " is beyond the retention horizon (payload compacted away); it "
        "stays tallied and cannot be retracted"));
  }
  MultiTreeMiner staging(config_.mining);
  // Re-mining reproduces exactly the tallies the batch contributed;
  // its quarantine entries were recorded at ingest, so the re-parse
  // failures go to a throwaway ledger.
  QuarantineLedger scratch;
  Status mined =
      MineBatch(id, it->second.payload, context, &staging, &scratch);
  if (!mined.ok()) return ErrorResponse(std::move(mined));
  Status appended = store_.AppendRetract(id);
  if (!appended.ok()) {
    if (store_.degraded()) {
      EnterReadOnly(appended.message());
      UpdateStorageStats();
      Response response = ErrorResponse(std::move(appended));
      response.retry_after_ms = kReadOnlyRetryMs;
      return response;
    }
    return ErrorResponse(std::move(appended));
  }
  const int trees = staging.tree_count();
  miner_.SubtractFrom(staging);
  batches_.erase(it);
  COUSINS_METRIC_COUNTER_ADD("svc.retracts", 1);
  UpdateStorageStats();
  Status published = PublishSnapshot();
  if (!published.ok()) return ErrorResponse(std::move(published));
  Response response;
  response.payload = "id=" + std::to_string(id) +
                     " trees=" + std::to_string(trees) + "\n";
  return response;
}

Response CousinService::HandleQuery(const Request& request) const {
  if (request.args.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "QUERY requires a mode: frequent-pairs | support"));
  }
  AdmissionSlot slot(const_cast<AdmissionController&>(admission_), 0);
  if (!slot.admitted()) return ShedResponse(slot.decision());
  std::shared_ptr<const ServiceSnapshot> snapshot = snapshot_cell_.Load();
  Response response;
  if (request.args[0] == "frequent-pairs") {
    response.payload = snapshot->frequent_csv;
    return response;
  }
  if (request.args[0] == "support") {
    if (request.args.size() < 4) {
      return ErrorResponse(Status::InvalidArgument(
          "QUERY support requires <label1> <label2> <distance>"));
    }
    // Row match over the all-tallies CSV: the first three fields are
    // label1, label2 and the rendered distance for every variant's CSV
    // shape. Labels containing commas or quotes are matched by their
    // CSV-escaped form.
    const std::string needle =
        request.args[1] + "," + request.args[2] + "," + request.args[3] + ",";
    bool first = true;
    for (std::string_view line : Split(snapshot->all_csv, '\n')) {
      if (first) {
        // Header row.
        response.payload.assign(line);
        response.payload += "\n";
        first = false;
        continue;
      }
      if (StartsWith(line, needle)) {
        response.payload.append(line);
        response.payload += "\n";
      }
    }
    return response;
  }
  return ErrorResponse(Status::InvalidArgument(
      "unknown QUERY mode '" + request.args[0] + "'"));
}

Status CousinService::CompactLocked() {
  // Retention horizon: only the N most-recent live batches keep their
  // payloads past this compaction. Older batches stay tallied (the
  // snapshot carries the miner state) but can no longer be retracted.
  if (config_.retain_batches > 0 &&
      static_cast<int64_t>(batches_.size()) > config_.retain_batches) {
    int64_t drop =
        static_cast<int64_t>(batches_.size()) - config_.retain_batches;
    for (auto it = batches_.begin(); drop > 0 && it != batches_.end();
         ++it, --drop) {
      if (!it->second.retained) continue;
      it->second.payload.clear();
      it->second.payload.shrink_to_fit();
      it->second.retained = false;
      COUSINS_METRIC_COUNTER_ADD("svc.retention_dropped", 1);
    }
  }
  // The snapshot serializes the ACKED in-memory state: a phantom
  // record (durable in the old segments but never acknowledged, e.g.
  // a crash-window append) is resolved toward "not accepted" here —
  // the old segments are retired and the phantom with them.
  COUSINS_RETURN_IF_ERROR(store_.Compact(SerializeServiceSnapshot()));
  if (read_only_.exchange(false, std::memory_order_relaxed)) {
    COUSINS_METRIC_COUNTER_ADD("svc.read_only_exits", 1);
  }
  {
    std::lock_guard<std::mutex> lock(reason_mu_);
    read_only_reason_.clear();
  }
  UpdateStorageStats();
  return Status::OK();
}

Response CousinService::HandleCompact() {
  // No admission gate and no draining check: COMPACT is the recovery
  // path out of read-only mode and must stay reachable exactly when
  // the daemon is otherwise refusing work.
  std::lock_guard<std::mutex> lock(mutate_mu_);
  Status compacted = CompactLocked();
  if (!compacted.ok()) {
    UpdateStorageStats();
    return ErrorResponse(std::move(compacted));
  }
  Response response;
  response.payload =
      "compaction=" + std::to_string(store_.last_compaction_id()) +
      " segments=" + std::to_string(store_.segment_count()) +
      " wal_bytes=" + std::to_string(store_.total_bytes()) + "\n";
  return response;
}

std::string CousinService::HealthJson() const {
  std::shared_ptr<const ServiceSnapshot> snapshot = snapshot_cell_.Load();
  std::string out = "{\"svc\":{";
  out += "\"draining\":" + std::string(draining() ? "true" : "false");
  out += ",\"trees\":" + std::to_string(snapshot->trees);
  out += ",\"live_batches\":" + std::to_string(snapshot->live_batches);
  out += ",\"tallies\":" + std::to_string(snapshot->tallies);
  out += ",\"snapshot_version\":" + std::to_string(snapshot->version);
  out += ",\"replayed_batches\":" + std::to_string(replayed_batches_);
  out += ",\"requests\":" +
         std::to_string(requests_.load(std::memory_order_relaxed));
  out += ",\"admission\":{";
  out += "\"inflight\":" + std::to_string(admission_.inflight());
  out += ",\"inflight_bytes\":" +
         std::to_string(admission_.inflight_bytes());
  out += ",\"shed\":" + std::to_string(admission_.shed());
  out += ",\"admitted\":" + std::to_string(admission_.admitted_total());
  out += "},\"storage\":{";
  out += "\"segments\":" +
         std::to_string(storage_segments_.load(std::memory_order_relaxed));
  out += ",\"wal_bytes\":" +
         std::to_string(storage_wal_bytes_.load(std::memory_order_relaxed));
  out += ",\"sealed_bytes\":" +
         std::to_string(
             storage_sealed_bytes_.load(std::memory_order_relaxed));
  out += ",\"last_compaction\":" +
         std::to_string(
             storage_compaction_id_.load(std::memory_order_relaxed));
  out += ",\"replayed_records\":" + std::to_string(replayed_records_);
  out += ",\"recovery_ms\":" + std::to_string(recovery_ms_);
  out += ",\"read_only\":" + std::string(read_only() ? "true" : "false");
  out += ",\"reason\":\"" + JsonEscape(ReadOnlyReason()) + "\"";
  out += "}}}";
  return out;
}

Response CousinService::HandleHealth() const {
  // No admission, no mutation mutex: HEALTH answers even when the
  // service is saturated or mid-ingest.
  Response response;
  response.payload = HealthJson() + "\n";
  return response;
}

Response CousinService::HandleDrain() {
  BeginDrain();
  Response response;
  response.payload = "draining\n";
  return response;
}

Response CousinService::Handle(const Request& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  COUSINS_METRIC_COUNTER_ADD("svc.requests", 1);
  if (request.verb == "INGEST") return HandleIngest(request);
  if (request.verb == "RETRACT") return HandleRetract(request);
  if (request.verb == "QUERY") return HandleQuery(request);
  if (request.verb == "HEALTH") return HandleHealth();
  if (request.verb == "COMPACT") return HandleCompact();
  if (request.verb == "DRAIN") return HandleDrain();
  return ErrorResponse(
      Status::InvalidArgument("unknown verb '" + request.verb + "'"));
}

Status CousinService::FinishDrain() {
  if (drained_.exchange(true)) return Status::OK();
  BeginDrain();
  std::lock_guard<std::mutex> lock(mutate_mu_);
  if (!config_.checkpoint_path.empty()) {
    COUSINS_RETURN_IF_ERROR(WriteFileAtomic(
        config_.checkpoint_path, miner_.SerializeCheckpoint(&quarantine_)));
  }
  if (!config_.health_report_path.empty()) {
    COUSINS_RETURN_IF_ERROR(
        WriteFileAtomic(config_.health_report_path, HealthJson() + "\n"));
  }
  COUSINS_METRIC_COUNTER_ADD("svc.drains", 1);
  return Status::OK();
}

void ServeConnection(int in_fd, int out_fd, CousinService& service,
                     std::atomic<bool>* stop) {
  std::string body;
  for (;;) {
    Result<bool> got = ReadFrame(in_fd, &body);
    if (!got.ok()) {
      // A torn frame or injected read fault drops this connection
      // only; the daemon (and every other connection) keeps serving.
      COUSINS_METRIC_COUNTER_ADD("svc.conn_errors", 1);
      break;
    }
    if (!*got) break;  // clean EOF
    Response response;
    Result<Request> request = ParseRequest(body);
    bool served_drain = false;
    if (!request.ok()) {
      response.status = request.status();
    } else {
      response = service.Handle(*request);
      served_drain = request->verb == "DRAIN" && response.status.ok();
    }
    Status written = WriteFrame(out_fd, RenderResponse(response));
    if (!written.ok()) {
      COUSINS_METRIC_COUNTER_ADD("svc.conn_errors", 1);
      break;
    }
    if (served_drain) {
      if (stop != nullptr) stop->store(true, std::memory_order_relaxed);
      break;
    }
  }
}

Status RunUnixServer(const std::string& socket_path,
                     CousinService& service, std::atomic<bool>* stop) {
  const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Unavailable("cannot create unix socket");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    close(listen_fd);
    return Status::InvalidArgument("socket path too long");
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(listen_fd);
    return Status::Unavailable("cannot bind unix socket '" + socket_path +
                               "'");
  }
  if (listen(listen_fd, 16) != 0) {
    close(listen_fd);
    return Status::Unavailable("cannot listen on '" + socket_path + "'");
  }
  std::vector<std::thread> connections;
  while (stop == nullptr || !stop->load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      COUSINS_METRIC_COUNTER_ADD("svc.accept_failures", 1);
      continue;
    }
    if (fault::Fired("svc.accept")) {
      // Simulated transient accept failure: the client sees a dropped
      // connection; the accept loop keeps serving.
      COUSINS_METRIC_COUNTER_ADD("svc.accept_failures", 1);
      close(conn);
      continue;
    }
    COUSINS_METRIC_COUNTER_ADD("svc.accepts", 1);
    connections.emplace_back([conn, &service, stop] {
      ServeConnection(conn, conn, service, stop);
      close(conn);
    });
  }
  close(listen_fd);
  // Graceful drain: every in-flight connection finishes its requests
  // before the caller writes the final checkpoint.
  for (std::thread& t : connections) t.join();
  ::unlink(socket_path.c_str());
  return Status::OK();
}

}  // namespace cousins::svc
