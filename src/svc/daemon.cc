#include "svc/daemon.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/checkpoint.h"
#include "core/item_io.h"
#include "obs/metrics.h"
#include "tree/newick.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace cousins::svc {
namespace {

constexpr std::string_view kDeadlineArgPrefix = "deadline-ms=";

Response ErrorResponse(Status status) {
  Response response;
  response.status = std::move(status);
  return response;
}

Response ShedResponse(const AdmissionDecision& decision) {
  Response response;
  response.status = Status::Unavailable("request shed: " + decision.reason);
  response.retry_after_ms = decision.retry_after_ms;
  return response;
}

/// The lenient-mode quarantine source name of a batch — batch-local,
/// so replayed re-mining reproduces byte-identical ledger entries.
std::string BatchSource(int64_t batch_id) {
  return "batch:" + std::to_string(batch_id);
}

}  // namespace

CousinService::CousinService(const ServiceConfig& config)
    : config_(config),
      // The lenient flag changes which entries of a batch tally, so it
      // is part of the WAL identity alongside the mining options.
      fingerprint_(MiningOptionsFingerprint(config.mining) ^
                   (config.lenient ? 0x5CACADAFu : 0u)),
      labels_(std::make_shared<LabelTable>()),
      miner_(config.mining),
      admission_(config.admission) {
  miner_.BindLabels(labels_);
}

Result<std::unique_ptr<CousinService>> CousinService::Start(
    const ServiceConfig& config) {
  if (config.wal_path.empty()) {
    return Status::InvalidArgument("service requires a WAL path");
  }
  COUSINS_RETURN_IF_ERROR(ValidateVariantOptions(config.mining));
  std::unique_ptr<CousinService> service(new CousinService(config));

  size_t valid_prefix = 0;
  Result<std::vector<SvcWalRecord>> replay =
      ReplaySvcWal(config.wal_path, service->fingerprint_, &valid_prefix);
  bool need_header = false;
  if (replay.ok()) {
    // Trim any torn tail so new appends never land after junk bytes.
    if (::truncate(config.wal_path.c_str(),
                   static_cast<off_t>(valid_prefix)) != 0) {
      return Status::Unavailable("cannot trim service WAL '" +
                                 config.wal_path + "'");
    }
    need_header = valid_prefix == 0;
    for (const SvcWalRecord& record : *replay) {
      COUSINS_RETURN_IF_ERROR(service->ApplyReplayRecord(record));
    }
  } else if (replay.status().code() == StatusCode::kNotFound) {
    need_header = true;
  } else {
    return replay.status();
  }

  COUSINS_ASSIGN_OR_RETURN(service->wal_, SvcWal::Open(config.wal_path));
  if (need_header) {
    COUSINS_RETURN_IF_ERROR(service->wal_.AppendHeader(service->fingerprint_));
  }
  COUSINS_METRIC_COUNTER_ADD("svc.replayed_batches",
                             service->replayed_batches_);
  COUSINS_RETURN_IF_ERROR(service->PublishSnapshot());
  return service;
}

MiningContext CousinService::ContextFor(const Request& request) const {
  MiningContext context;
  // The client's deadline-ms and the server ceiling combine tighter-
  // wins; a client asking for 0 ms is already expired (the first
  // governance checkpoint trips), it is not "no deadline".
  int64_t deadline_ms = -1;
  for (const std::string& arg : request.args) {
    if (StartsWith(arg, kDeadlineArgPrefix)) {
      const int64_t client_ms =
          std::atoll(arg.c_str() + kDeadlineArgPrefix.size());
      if (client_ms >= 0 && (deadline_ms < 0 || client_ms < deadline_ms)) {
        deadline_ms = client_ms;
      }
    }
  }
  if (config_.max_request_ms > 0 &&
      (deadline_ms < 0 || config_.max_request_ms < deadline_ms)) {
    deadline_ms = config_.max_request_ms;
  }
  if (deadline_ms >= 0) {
    context.set_timeout(std::chrono::milliseconds(deadline_ms));
  }
  context.set_budget(config_.budget);
  return context;
}

Status CousinService::MineBatch(int64_t batch_id, const std::string& payload,
                                const MiningContext& context,
                                MultiTreeMiner* staging,
                                QuarantineLedger* quarantine) {
  staging->BindLabels(labels_);
  if (config_.lenient) {
    COUSINS_ASSIGN_OR_RETURN(
        LenientForest forest,
        ParseNewickForestLenient(payload, labels_, config_.parse_limits));
    const std::string source = BatchSource(batch_id);
    for (const ForestEntryError& error : forest.errors) {
      QuarantineParseError(source, error, quarantine);
    }
    DegradedModeConfig degraded;
    degraded.lenient = true;
    degraded.ledger = quarantine;
    degraded.source_name = source;
    for (size_t i = 0; i < forest.trees.size(); ++i) {
      COUSINS_RETURN_IF_ERROR(staging->AddTreeDegraded(
          forest.trees[i], forest.source_indices[i], context, degraded));
    }
    return Status::OK();
  }
  COUSINS_ASSIGN_OR_RETURN(
      std::vector<Tree> trees,
      ParseNewickForest(payload, labels_, config_.parse_limits));
  for (const Tree& tree : trees) {
    COUSINS_RETURN_IF_ERROR(staging->AddTreeGoverned(tree, context));
  }
  return Status::OK();
}

Status CousinService::ApplyReplayRecord(const SvcWalRecord& record) {
  if (record.kind == SvcWalRecord::Kind::kBatch) {
    MultiTreeMiner staging(config_.mining);
    COUSINS_RETURN_IF_ERROR(MineBatch(record.id, record.payload,
                                      MiningContext::Unlimited(), &staging,
                                      &quarantine_));
    miner_.MergeFrom(staging);
    batches_[record.id] =
        BatchInfo{record.payload, staging.tree_count()};
    if (record.id >= next_batch_id_) next_batch_id_ = record.id + 1;
    ++replayed_batches_;
    return Status::OK();
  }
  if (record.kind == SvcWalRecord::Kind::kRetract) {
    auto it = batches_.find(record.id);
    if (it == batches_.end()) {
      return Status::Corruption(
          "WAL retracts unknown batch " + std::to_string(record.id));
    }
    MultiTreeMiner staging(config_.mining);
    QuarantineLedger scratch;
    COUSINS_RETURN_IF_ERROR(MineBatch(record.id, it->second.payload,
                                      MiningContext::Unlimited(), &staging,
                                      &scratch));
    miner_.SubtractFrom(staging);
    batches_.erase(it);
    return Status::OK();
  }
  return Status::Corruption("unexpected WAL record kind");
}

Status CousinService::PublishSnapshot() {
  const auto start = std::chrono::steady_clock::now();
  if (fault::Fired("svc.swap")) {
    COUSINS_METRIC_COUNTER_ADD("svc.swap_failures", 1);
    return Status::Unavailable(
        "injected fault at svc.swap; state is durable and will surface "
        "on the next publish or restart");
  }
  auto next = std::make_shared<ServiceSnapshot>();
  next->version = snapshot_version_.fetch_add(1,
                                              std::memory_order_relaxed) +
                  1;
  next->trees = miner_.tree_count();
  next->live_batches = static_cast<int64_t>(batches_.size());
  next->tallies = miner_.accumulator_stats().tally_entries;
  switch (config_.mining.variant) {
    case MinerVariant::kCousin:
    case MinerVariant::kFreeTree:
      next->frequent_csv =
          FrequentPairsToCsv(*labels_, miner_.FrequentPairs());
      next->all_csv = FrequentPairsToCsv(*labels_, miner_.AllTallies());
      break;
    case MinerVariant::kGeneralized:
      next->frequent_csv = GeneralizedPairsToCsv(
          *labels_, miner_.FrequentGeneralizedPairs());
      next->all_csv =
          GeneralizedPairsToCsv(*labels_, miner_.AllGeneralizedTallies());
      break;
    case MinerVariant::kWeighted:
      next->frequent_csv =
          WeightedPairsToCsv(*labels_, miner_.FrequentWeightedPairs());
      next->all_csv =
          WeightedPairsToCsv(*labels_, miner_.AllWeightedTallies());
      break;
  }
  snapshot_cell_.Store(std::move(next));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  COUSINS_METRIC_COUNTER_ADD("svc.swaps", 1);
  COUSINS_METRIC_HISTOGRAM_RECORD(
      "svc.swap_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count());
  return Status::OK();
}

Response CousinService::HandleIngest(const Request& request) {
  if (draining()) {
    return ErrorResponse(
        Status::Unavailable("service is draining; not accepting ingest"));
  }
  if (static_cast<int64_t>(request.payload.size()) >
      config_.max_batch_bytes) {
    return ErrorResponse(Status::InvalidArgument(
        "batch exceeds max_batch_bytes (" +
        std::to_string(request.payload.size()) + " > " +
        std::to_string(config_.max_batch_bytes) + ")"));
  }
  AdmissionSlot slot(admission_,
                     static_cast<int64_t>(request.payload.size()));
  if (!slot.admitted()) return ShedResponse(slot.decision());
  const MiningContext context = ContextFor(request);

  std::lock_guard<std::mutex> lock(mutate_mu_);
  const int64_t id = next_batch_id_;
  MultiTreeMiner staging(config_.mining);
  QuarantineLedger batch_quarantine;
  Status mined =
      MineBatch(id, request.payload, context, &staging, &batch_quarantine);
  if (!mined.ok()) {
    // Staging discarded: a rejected or tripped batch leaves the
    // resident tallies, the WAL and the quarantine ledger untouched.
    COUSINS_METRIC_COUNTER_ADD("svc.ingest_rejected", 1);
    return ErrorResponse(std::move(mined));
  }
  Status appended = wal_.AppendBatch(id, request.payload);
  if (!appended.ok()) {
    COUSINS_METRIC_COUNTER_ADD("svc.ingest_rejected", 1);
    return ErrorResponse(std::move(appended));
  }
  // Point of no return: the batch is durable. Everything after must
  // succeed or leave a state the WAL replay converges to.
  for (QuarantineEntry& entry : batch_quarantine.Entries()) {
    quarantine_.Add(std::move(entry));
  }
  const int trees = staging.tree_count();
  miner_.MergeFrom(staging);
  batches_[id] = BatchInfo{request.payload, trees};
  next_batch_id_ = id + 1;
  COUSINS_METRIC_COUNTER_ADD("svc.ingest_batches", 1);
  COUSINS_METRIC_COUNTER_ADD("svc.ingest_trees", trees);
  Status published = PublishSnapshot();
  if (!published.ok()) return ErrorResponse(std::move(published));
  Response response;
  response.payload = "id=" + std::to_string(id) +
                     " trees=" + std::to_string(trees) + "\n";
  return response;
}

Response CousinService::HandleRetract(const Request& request) {
  if (draining()) {
    return ErrorResponse(
        Status::Unavailable("service is draining; not accepting retract"));
  }
  if (request.args.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("RETRACT requires a batch id"));
  }
  AdmissionSlot slot(admission_, 0);
  if (!slot.admitted()) return ShedResponse(slot.decision());
  const int64_t id = std::atoll(request.args[0].c_str());
  const MiningContext context = ContextFor(request);

  std::lock_guard<std::mutex> lock(mutate_mu_);
  auto it = batches_.find(id);
  if (it == batches_.end()) {
    return ErrorResponse(Status::NotFound(
        "batch " + std::to_string(id) + " is not live (never ingested, "
        "or already retracted)"));
  }
  MultiTreeMiner staging(config_.mining);
  // Re-mining reproduces exactly the tallies the batch contributed;
  // its quarantine entries were recorded at ingest, so the re-parse
  // failures go to a throwaway ledger.
  QuarantineLedger scratch;
  Status mined =
      MineBatch(id, it->second.payload, context, &staging, &scratch);
  if (!mined.ok()) return ErrorResponse(std::move(mined));
  Status appended = wal_.AppendRetract(id);
  if (!appended.ok()) return ErrorResponse(std::move(appended));
  const int trees = staging.tree_count();
  miner_.SubtractFrom(staging);
  batches_.erase(it);
  COUSINS_METRIC_COUNTER_ADD("svc.retracts", 1);
  Status published = PublishSnapshot();
  if (!published.ok()) return ErrorResponse(std::move(published));
  Response response;
  response.payload = "id=" + std::to_string(id) +
                     " trees=" + std::to_string(trees) + "\n";
  return response;
}

Response CousinService::HandleQuery(const Request& request) const {
  if (request.args.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "QUERY requires a mode: frequent-pairs | support"));
  }
  AdmissionSlot slot(const_cast<AdmissionController&>(admission_), 0);
  if (!slot.admitted()) return ShedResponse(slot.decision());
  std::shared_ptr<const ServiceSnapshot> snapshot = snapshot_cell_.Load();
  Response response;
  if (request.args[0] == "frequent-pairs") {
    response.payload = snapshot->frequent_csv;
    return response;
  }
  if (request.args[0] == "support") {
    if (request.args.size() < 4) {
      return ErrorResponse(Status::InvalidArgument(
          "QUERY support requires <label1> <label2> <distance>"));
    }
    // Row match over the all-tallies CSV: the first three fields are
    // label1, label2 and the rendered distance for every variant's CSV
    // shape. Labels containing commas or quotes are matched by their
    // CSV-escaped form.
    const std::string needle =
        request.args[1] + "," + request.args[2] + "," + request.args[3] + ",";
    bool first = true;
    for (std::string_view line : Split(snapshot->all_csv, '\n')) {
      if (first) {
        // Header row.
        response.payload.assign(line);
        response.payload += "\n";
        first = false;
        continue;
      }
      if (StartsWith(line, needle)) {
        response.payload.append(line);
        response.payload += "\n";
      }
    }
    return response;
  }
  return ErrorResponse(Status::InvalidArgument(
      "unknown QUERY mode '" + request.args[0] + "'"));
}

std::string CousinService::HealthJson() const {
  std::shared_ptr<const ServiceSnapshot> snapshot = snapshot_cell_.Load();
  std::string out = "{\"svc\":{";
  out += "\"draining\":" + std::string(draining() ? "true" : "false");
  out += ",\"trees\":" + std::to_string(snapshot->trees);
  out += ",\"live_batches\":" + std::to_string(snapshot->live_batches);
  out += ",\"tallies\":" + std::to_string(snapshot->tallies);
  out += ",\"snapshot_version\":" + std::to_string(snapshot->version);
  out += ",\"replayed_batches\":" + std::to_string(replayed_batches_);
  out += ",\"requests\":" +
         std::to_string(requests_.load(std::memory_order_relaxed));
  out += ",\"admission\":{";
  out += "\"inflight\":" + std::to_string(admission_.inflight());
  out += ",\"inflight_bytes\":" +
         std::to_string(admission_.inflight_bytes());
  out += ",\"shed\":" + std::to_string(admission_.shed());
  out += ",\"admitted\":" + std::to_string(admission_.admitted_total());
  out += "}}}";
  return out;
}

Response CousinService::HandleHealth() const {
  // No admission, no mutation mutex: HEALTH answers even when the
  // service is saturated or mid-ingest.
  Response response;
  response.payload = HealthJson() + "\n";
  return response;
}

Response CousinService::HandleDrain() {
  BeginDrain();
  Response response;
  response.payload = "draining\n";
  return response;
}

Response CousinService::Handle(const Request& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  COUSINS_METRIC_COUNTER_ADD("svc.requests", 1);
  if (request.verb == "INGEST") return HandleIngest(request);
  if (request.verb == "RETRACT") return HandleRetract(request);
  if (request.verb == "QUERY") return HandleQuery(request);
  if (request.verb == "HEALTH") return HandleHealth();
  if (request.verb == "DRAIN") return HandleDrain();
  return ErrorResponse(
      Status::InvalidArgument("unknown verb '" + request.verb + "'"));
}

Status CousinService::FinishDrain() {
  if (drained_.exchange(true)) return Status::OK();
  BeginDrain();
  std::lock_guard<std::mutex> lock(mutate_mu_);
  if (!config_.checkpoint_path.empty()) {
    COUSINS_RETURN_IF_ERROR(WriteFileAtomic(
        config_.checkpoint_path, miner_.SerializeCheckpoint(&quarantine_)));
  }
  if (!config_.health_report_path.empty()) {
    COUSINS_RETURN_IF_ERROR(
        WriteFileAtomic(config_.health_report_path, HealthJson() + "\n"));
  }
  COUSINS_METRIC_COUNTER_ADD("svc.drains", 1);
  return Status::OK();
}

void ServeConnection(int in_fd, int out_fd, CousinService& service,
                     std::atomic<bool>* stop) {
  std::string body;
  for (;;) {
    Result<bool> got = ReadFrame(in_fd, &body);
    if (!got.ok()) {
      // A torn frame or injected read fault drops this connection
      // only; the daemon (and every other connection) keeps serving.
      COUSINS_METRIC_COUNTER_ADD("svc.conn_errors", 1);
      break;
    }
    if (!*got) break;  // clean EOF
    Response response;
    Result<Request> request = ParseRequest(body);
    bool served_drain = false;
    if (!request.ok()) {
      response.status = request.status();
    } else {
      response = service.Handle(*request);
      served_drain = request->verb == "DRAIN" && response.status.ok();
    }
    Status written = WriteFrame(out_fd, RenderResponse(response));
    if (!written.ok()) {
      COUSINS_METRIC_COUNTER_ADD("svc.conn_errors", 1);
      break;
    }
    if (served_drain) {
      if (stop != nullptr) stop->store(true, std::memory_order_relaxed);
      break;
    }
  }
}

Status RunUnixServer(const std::string& socket_path,
                     CousinService& service, std::atomic<bool>* stop) {
  const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Unavailable("cannot create unix socket");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    close(listen_fd);
    return Status::InvalidArgument("socket path too long");
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(listen_fd);
    return Status::Unavailable("cannot bind unix socket '" + socket_path +
                               "'");
  }
  if (listen(listen_fd, 16) != 0) {
    close(listen_fd);
    return Status::Unavailable("cannot listen on '" + socket_path + "'");
  }
  std::vector<std::thread> connections;
  while (stop == nullptr || !stop->load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      COUSINS_METRIC_COUNTER_ADD("svc.accept_failures", 1);
      continue;
    }
    if (fault::Fired("svc.accept")) {
      // Simulated transient accept failure: the client sees a dropped
      // connection; the accept loop keeps serving.
      COUSINS_METRIC_COUNTER_ADD("svc.accept_failures", 1);
      close(conn);
      continue;
    }
    COUSINS_METRIC_COUNTER_ADD("svc.accepts", 1);
    connections.emplace_back([conn, &service, stop] {
      ServeConnection(conn, conn, service, stop);
      close(conn);
    });
  }
  close(listen_fd);
  // Graceful drain: every in-flight connection finishes its requests
  // before the caller writes the final checkpoint.
  for (std::thread& t : connections) t.join();
  ::unlink(socket_path.c_str());
  return Status::OK();
}

}  // namespace cousins::svc
