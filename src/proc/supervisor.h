// Crash-isolated multi-process forest mining.
//
// MineForestMultiProcess forks N worker processes and hands out
// file-shard leases (proc/shard_plan.h) through a crash-safe lease
// journal (proc/lease_ledger.h) kept next to the checkpoint. Each
// worker mines its shard out-of-core — the mmap'd forest is inherited
// across fork, parsed through the windowed lenient parser in a bounded
// parse→mine→release loop — snapshots its shard tally as a
// checkpoint-v3 file, appends DONE, and heartbeats through the journal.
// The supervisor reaps exits (normal, nonzero, signaled), expires stale
// leases, and re-issues a dead or stalled worker's shard to a survivor;
// shards are all-or-nothing, so a kill -9 at any instant loses at most
// uncommitted shard work that simply gets re-mined.
//
// Determinism contract: each worker parses its shard into a FRESH label
// table and its snapshot serializes that table in first-occurrence
// order; the supervisor merges snapshots in shard-id order, re-interning
// into one shared table — which reproduces the sequential whole-file
// intern order exactly, so label IDs, tally sort order, the CSV, the
// quarantine ledger and the final merged checkpoint are byte-identical
// to the sequential governed run, no matter which workers died when.
//
// Supervisor crash: every trust-changing journal record (PLAN, GRANT,
// DONE, REVOKE) is fsync'd, so `resume = true` replays the journal,
// refuses a changed input (plan fingerprint mismatch), readopts DONE
// shards whose snapshots still validate, and re-mines the rest —
// completing with the same byte-identical outputs.

#ifndef COUSINS_PROC_SUPERVISOR_H_
#define COUSINS_PROC_SUPERVISOR_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/multi_tree_mining.h"
#include "core/quarantine.h"
#include "proc/shard_plan.h"
#include "tree/parse_limits.h"
#include "util/result.h"
#include "util/retry.h"

namespace cousins::proc {

/// Path of the lease journal kept next to `checkpoint_path`.
std::string LeaseJournalPath(const std::string& checkpoint_path);

/// Path of shard `shard`'s snapshot file next to the journal.
std::string ShardSnapshotPath(const std::string& journal_path,
                              int64_t shard);

struct MultiProcessOptions {
  /// Worker processes to fork. Must be >= 1.
  int workers = 2;
  /// A lease whose last heartbeat is STRICTLY older than this is
  /// expired: its holder is SIGKILLed and the shard re-issued.
  std::chrono::milliseconds lease_timeout{10'000};
  /// Shard plan knobs (proc/shard_plan.h). min_shards <= 0 defaults to
  /// 4 * workers so every worker gets several leases and a reissued
  /// shard is a small loss.
  int64_t target_shard_bytes = 0;
  int64_t min_shards = 0;
  /// Resume a previous run from its lease journal: DONE shards with
  /// validating snapshots are readopted, the rest re-mined. A missing
  /// journal is a fresh start; a plan-fingerprint mismatch (changed
  /// input or shard options) is kFailedPrecondition.
  bool resume = false;
  /// Final-checkpoint destination; required (the journal and shard
  /// snapshots live next to it). The merged checkpoint written here on
  /// completion is byte-identical to the sequential run's final one.
  std::string checkpoint_path;
  /// Degraded-mode policy, mirroring DegradedModeConfig: lenient
  /// quarantines parse and per-tree mining failures instead of failing
  /// the run; `source_name` is recorded in ledger entries; `retry`
  /// governs the transient I/O (snapshot reads/writes, the final
  /// checkpoint write).
  bool lenient = false;
  std::string source_name;
  RetryPolicy retry = RetryPolicy::None();
  ParseLimits parse_limits;
  /// Crash-loop bounds. A run may respawn at most `max_respawns`
  /// replacement workers in total; one shard may be granted at most
  /// `max_grants_per_shard` times before it is declared poisonous
  /// (kInternal naming the shard) — both turn a pathological kill loop
  /// into a clean error instead of an unbounded fork storm.
  int max_respawns = 8;
  int max_grants_per_shard = 4;
};

/// Per-worker-slot accounting for the health report. A slot keeps its
/// report across respawns: `pid` is the last incarnation, `restarts`
/// how many replacements the slot needed.
struct WorkerReport {
  int slot = 0;
  int64_t pid = 0;
  std::vector<int64_t> shards_mined;
  /// Final exit status of the last incarnation: `exit_code` >= 0 for a
  /// normal exit, else `term_signal` > 0 for a signaled death.
  int exit_code = -1;
  int term_signal = 0;
  int restarts = 0;
};

struct MultiProcessRun {
  /// The mined result, bit-identical to the sequential governed run.
  MultiTreeMiningRun mining;
  /// The merged label table the result's LabelIds refer to — identical
  /// contents and order to the sequential run's table.
  std::shared_ptr<LabelTable> labels;
  std::vector<WorkerReport> workers;
  int64_t shards_total = 0;
  /// DONE shards readopted from the journal by a resume.
  int64_t shards_recovered = 0;
  int64_t workers_died = 0;
  int64_t leases_reissued = 0;
  /// Max resident set over supervisor and reaped workers, in KiB.
  int64_t rss_peak_kb = 0;
};

/// Mines the forest file at `forest_path` with `proc.workers` forked
/// worker processes. `ledger` collects quarantine entries (required
/// non-null when `proc.lenient`); entries come out identical to the
/// sequential lenient run's. Counters: proc.workers_died,
/// proc.leases_reissued, proc.leases_expired, proc.shards_mined,
/// proc.shards_recovered, proc.rss_peak_kb. Fault sites: proc.mmap,
/// proc.journal.append, proc.spawn, proc.kill_worker (SIGKILL a
/// just-granted worker), proc.stop_worker (SIGSTOP it — a genuine
/// stall, recovered via lease expiry), proc.worker.crash (worker-side
/// _exit before mining), proc.supervisor.die (supervisor _exit(137)
/// after a DONE — drillable end-to-end with --resume).
Result<MultiProcessRun> MineForestMultiProcess(
    const std::string& forest_path, const MultiTreeMiningOptions& options,
    const MultiProcessOptions& proc, QuarantineLedger* ledger);

}  // namespace cousins::proc

#endif  // COUSINS_PROC_SUPERVISOR_H_
